(* Tests for ftss_fuzz: genome validity under mutation, the
   Schedule_enum -> genome injection round-trip, corpus persistence,
   genome shrinking, and the headline differential oracle — on the seed
   phase alone the fuzzer must rediscover exactly the violation set the
   exhaustive checker finds, with shrunken counterexamples no larger
   than the exhaustive minima. *)

open Ftss_util
module S = Ftss_check.Schedule_enum
module P = Ftss_check.Property
module E = Ftss_check.Explore
module Shrink = Ftss_check.Shrink
module M = Ftss_fuzz.Mutate
module C = Ftss_fuzz.Corpus
module F = Ftss_fuzz.Fuzz

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let to_alcotest = QCheck_alcotest.to_alcotest

let full n rounds f = { S.n; rounds; f; intervals = true; drops = true }

let property ~name ~inject =
  match P.find ~name ~inject with Ok p -> p | Error m -> failwith m

let genome_params n rounds f = { M.n; rounds; f; allow_drops = true }

let fuzz_config ?corpus_dir ~seed ~budget ~domains params =
  { F.seed; budget; domains; params; corpus_dir }

let run_fuzz ?corpus_dir ~seed ~budget ~domains params prop =
  match F.run (fuzz_config ?corpus_dir ~seed ~budget ~domains params) prop with
  | Ok stats -> stats
  | Error m -> Alcotest.failf "fuzz: %s" m

(* --- Mutate: injection and validity --- *)

let test_of_schedule_valid () =
  List.iter
    (fun p ->
      Array.iter
        (fun case ->
          let g = M.of_schedule case in
          (match M.validate g with
          | Ok () -> ()
          | Error m -> Alcotest.failf "invalid injected genome: %s" m);
          check "params match the enumeration" true
            (g.M.params = M.params_of_schedule p))
        (S.enumerate p))
    [ full 3 3 1; { (full 3 2 1) with S.intervals = false; drops = false } ]

(* The load-bearing fact under the differential oracle: injecting a
   catalogue case into the genome space and evaluating it through the
   adversary interface reproduces the exact execution fingerprint of the
   catalogue run — the compiled fault schedules answer every drop query
   identically and declare the identical faulty set. *)
let test_roundtrip_fingerprints () =
  List.iter
    (fun (name, inject) ->
      let prop = property ~name ~inject in
      let sp = prop.P.restrict (full 3 2 1) in
      Array.iteri
        (fun i case ->
          let direct = prop.P.run case in
          let injected = prop.P.run_adv (M.to_adversary (M.of_schedule case)) in
          if direct.P.fingerprint <> injected.P.fingerprint then
            Alcotest.failf "%s/%s case %d: fingerprint changed under injection"
              name inject i;
          let dv = Lazy.force direct.P.verdict
          and iv = Lazy.force injected.P.verdict in
          if dv.P.ok <> iv.P.ok then
            Alcotest.failf "%s/%s case %d: verdict changed under injection" name
              inject i)
        (S.enumerate sp))
    [ ("theorem3", "frozen-exchange"); ("theorem4", "none") ]

let random_genome rng =
  let p = full 3 4 1 in
  let cases = S.enumerate p in
  let g = M.of_schedule cases.(Rng.int rng (Array.length cases)) in
  let steps = Rng.int rng 8 in
  let rec go g k = if k = 0 then g else go (M.mutate rng g) (k - 1) in
  go g steps

let prop_mutants_stay_valid =
  QCheck.Test.make ~name:"mutants of valid genomes are valid" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1) in
      let g = random_genome rng in
      let rec go g k =
        k = 0
        ||
        let g' = M.mutate rng g in
        M.is_valid g' && g'.M.params = g.M.params && go g' (k - 1)
      in
      go g 12)

let prop_splice_stays_valid =
  QCheck.Test.make ~name:"splices of valid genomes are valid" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 101) in
      let a = random_genome rng and b = random_genome rng in
      let s = M.splice rng a b in
      M.is_valid s && s.M.params = a.M.params)

let test_mutate_deterministic () =
  let trail seed =
    let rng = Rng.create seed in
    let g = ref (M.of_schedule (S.enumerate (full 3 4 1)).(7)) in
    List.init 50 (fun _ ->
        g := M.mutate rng !g;
        !g)
  in
  check "same seed, same mutation trail" true
    (List.equal M.equal (trail 42) (trail 42));
  check "different seeds diverge" true
    (not (List.equal M.equal (trail 42) (trail 43)))

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string round-trips" ~count:80
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 201) in
      let g = random_genome rng in
      match M.of_string (M.to_string g) with
      | Ok g' -> M.equal g g'
      | Error _ -> false)

(* --- Corpus persistence --- *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ftss_fuzz_test_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else Sys.mkdir dir 0o755;
    dir

let test_corpus_save_load_identity () =
  let rng = Rng.create 9 in
  let corpus = C.create () in
  let admitted = ref [] in
  for i = 0 to 19 do
    let g = random_genome rng in
    (* Synthetic coverage: a fresh fingerprint per genome admits all. *)
    let fp = Printf.sprintf "%08x" (1000 + i) in
    if C.observe corpus ~genome:g ~fingerprint:fp ~signature:[| i |] then
      admitted := g :: !admitted
  done;
  let admitted = List.rev !admitted in
  check_int "all synthetic entries admitted" 20 (List.length admitted);
  let dir = temp_dir () in
  C.save corpus ~dir;
  match C.load ~dir with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok loaded ->
    check_int "same cardinality" (List.length admitted) (List.length loaded);
    (* Files load in name order; compare as sets of genomes. *)
    let sort = List.sort M.compare in
    check "same genomes" true (List.equal M.equal (sort admitted) (sort loaded))

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

let test_corpus_garbage_file_is_an_error () =
  let dir = temp_dir () in
  let path = Filename.concat dir "bad.genome" in
  let oc = open_out path in
  output_string oc "this is not a genome";
  close_out oc;
  match C.load ~dir with
  | Ok _ -> Alcotest.fail "garbage corpus file loaded"
  | Error m -> check "error names the file" true (contains ~affix:"bad.genome" m)

let test_corpus_truncated_file_is_an_error () =
  let dir = temp_dir () in
  let g = M.of_schedule (S.enumerate (full 3 3 1)).(42) in
  let s = M.to_string g in
  let oc = open_out (Filename.concat dir "cut.genome") in
  output_string oc (String.sub s 0 (String.length s / 2));
  close_out oc;
  match C.load ~dir with
  | Ok _ -> Alcotest.fail "truncated corpus file loaded"
  | Error m -> check "error names the file" true (contains ~affix:"cut.genome" m)

let test_corpus_missing_dir_is_empty () =
  match C.load ~dir:"/nonexistent/ftss/corpus" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom entries"
  | Error m -> Alcotest.failf "missing dir should be empty, got error: %s" m

(* The corpus file format is pinned by a golden file: a format change
   that breaks persisted corpora must show up as a diff here. *)
let golden_genome =
  {
    M.params = { M.n = 3; rounds = 4; f = 1; allow_drops = true };
    faulty = Pidset.of_list [ 1 ];
    crashes = [ (1, 4) ];
    drops = [ (2, 0, 1); (3, 1, 0); (3, 1, 2) ];
    corrupt = [ (0, 42); (2, 999983) ];
  }

let golden_path () =
  (* cwd is _build/default/test under `dune runtest` but the repo root
     under `dune exec test/test_main.exe`. *)
  if Sys.file_exists "golden.genome" then "golden.genome"
  else Filename.concat "test" "golden.genome"

let test_corpus_golden_format () =
  let ic = open_in (golden_path ()) in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "serialization matches the pinned file" s
    (M.to_string golden_genome);
  match M.of_string s with
  | Ok g -> check "pinned file parses back" true (M.equal g golden_genome)
  | Error m -> Alcotest.failf "golden file: %s" m

(* --- Shrinking --- *)

let test_fixpoint_generic_termination () =
  (* Candidates strictly decrease; fixpoint must land on the least
     failing value reachable by single steps. *)
  let candidates n = if n > 0 then [ n - 1 ] else [] in
  check_int "descends to the boundary" 4
    (Shrink.fixpoint ~fails:(fun n -> n > 3) ~candidates 10);
  check_int "already minimal" 0
    (Shrink.fixpoint ~fails:(fun _ -> true) ~candidates 0)

let test_reductions_strictly_decrease () =
  let rng = Rng.create 77 in
  for _ = 1 to 40 do
    let g = random_genome rng in
    List.iter
      (fun g' ->
        check "reduction is valid" true (M.is_valid g');
        check "reduction strictly smaller" true (M.size g' < M.size g))
      (M.reductions g)
  done

let first_violation prop sp =
  let cases = S.enumerate sp in
  let rec go i =
    if i >= Array.length cases then Alcotest.fail "no violation in space"
    else if P.fails prop cases.(i) then cases.(i)
    else go (i + 1)
  in
  go 0

let test_genome_shrink_deterministic_local_minimum () =
  let prop = property ~name:"theorem3" ~inject:"frozen-exchange" in
  let case = first_violation prop (prop.P.restrict (full 3 3 1)) in
  let g = M.of_schedule case in
  check "injected violation still fails" true (F.genome_fails prop g);
  let s1 = F.shrink_genome prop g in
  let s2 = F.shrink_genome prop g in
  check "shrinking is deterministic" true (M.equal s1 s2);
  check "shrunk genome still fails" true (F.genome_fails prop s1);
  check "shrinking twice is a fixpoint" true
    (M.equal s1 (F.shrink_genome prop s1));
  (* Local minimum: no single reduction still fails. *)
  List.iter
    (fun g' -> check "reduction of the minimum passes" true (not (F.genome_fails prop g')))
    (M.reductions s1)

(* --- The differential oracle --- *)

let fingerprint_set l = List.sort_uniq String.compare l

let exhaustive_violations prop sp =
  let stats, results = E.run ~domains:2 prop (S.enumerate sp) in
  List.map (fun i -> (i, results.(i).E.fingerprint)) stats.E.violations

(* Seed phase only (budget = case count): the fuzzer must find exactly
   the violation set the exhaustive checker finds — both directions —
   and its shrunken genomes must be no larger than the exhaustive
   minima mapped into the genome space. *)
let oracle_one ~name ~inject ~n ~rounds ~f ~expect_violations =
  let prop = property ~name ~inject in
  let sp = prop.P.restrict (full n rounds f) in
  let cases = S.enumerate sp in
  let exhaustive = exhaustive_violations prop sp in
  check_int
    (Printf.sprintf "%s/%s (%d,%d,%d): exhaustive violation count" name inject n
       rounds f)
    expect_violations (List.length exhaustive);
  let stats =
    run_fuzz ~seed:7 ~budget:(F.Cases (Array.length cases)) ~domains:2
      (genome_params n rounds f) prop
  in
  check_int "budget covered exactly the seed phase" (Array.length cases)
    stats.F.seed_execs;
  check_int "no mutation executions" stats.F.seed_execs stats.F.execs;
  List.iter
    (fun (v : F.violation) ->
      check "every violation found during seeding" true v.F.v_seed)
    stats.F.violations;
  let fuzz_fps =
    fingerprint_set (List.map (fun v -> v.F.v_fingerprint) stats.F.violations)
  in
  let exhaustive_fps = fingerprint_set (List.map snd exhaustive) in
  Alcotest.(check (list string))
    (Printf.sprintf "%s/%s (%d,%d,%d): identical violation sets" name inject n
       rounds f)
    exhaustive_fps fuzz_fps;
  (* Size comparison against the exhaustive minimum per fingerprint. *)
  List.iter
    (fun (v : F.violation) ->
      let i, _ =
        List.find (fun (_, fp) -> fp = v.F.v_fingerprint) exhaustive
      in
      let catalogue_min = Shrink.shrink ~property:prop cases.(i) in
      check "fuzz minimum no larger than the exhaustive minimum" true
        (M.size v.F.v_shrunk <= M.size (M.of_schedule catalogue_min));
      check "shrunk genome replays as a violation" true
        (F.genome_fails prop v.F.v_shrunk))
    stats.F.violations

let test_oracle_frozen_exchange_empty () =
  oracle_one ~name:"theorem3" ~inject:"frozen-exchange" ~n:3 ~rounds:2 ~f:1
    ~expect_violations:0

let test_oracle_frozen_exchange_violating () =
  (* The pinned parameterization: 82 violating cases of 500. *)
  oracle_one ~name:"theorem3" ~inject:"frozen-exchange" ~n:3 ~rounds:3 ~f:1
    ~expect_violations:82

let test_oracle_no_suspect_filter_small () =
  (* E11's negative result: no single-behaviour catalogue case breaks
     the unfiltered suspect rule — the oracle must agree on emptiness. *)
  oracle_one ~name:"theorem4" ~inject:"no-suspect-filter" ~n:3 ~rounds:2 ~f:1
    ~expect_violations:0

let test_oracle_no_suspect_filter_larger () =
  oracle_one ~name:"theorem4" ~inject:"no-suspect-filter" ~n:3 ~rounds:3 ~f:1
    ~expect_violations:0

(* The fuzzer's reason to exist: with mutation enabled it escapes the
   catalogue. no-suspect-filter is unbreakable by any single-behaviour
   case (E11), but the E8a insidious adversary — mute toward all but one
   witness, then a timed reveal — lives in the genome space, and the
   fuzzer finds it. *)
let test_fuzzer_beats_the_catalogue () =
  let prop = property ~name:"theorem4" ~inject:"no-suspect-filter" in
  let sp = prop.P.restrict (full 3 6 1) in
  let exhaustive = exhaustive_violations prop sp in
  check_int "the catalogue finds nothing at (3,6,1)" 0 (List.length exhaustive);
  let stats =
    run_fuzz ~seed:1 ~budget:(F.Cases 4000) ~domains:2 (genome_params 3 6 1)
      prop
  in
  check "mutation finds composite-adversary violations" true
    (stats.F.violations <> []);
  List.iter
    (fun (v : F.violation) ->
      check "found beyond the seed phase" true (not v.F.v_seed);
      check "shrunk violation replays" true (F.genome_fails prop v.F.v_shrunk);
      check "shrunk violation needs drops" true (v.F.v_shrunk.M.drops <> []))
    stats.F.violations

let test_fuzz_deterministic_across_domains () =
  let prop = property ~name:"theorem3" ~inject:"frozen-exchange" in
  let run domains =
    run_fuzz ~seed:3 ~budget:(F.Cases 700) ~domains (genome_params 3 3 1) prop
  in
  let a = run 1 and b = run 4 in
  check_int "same executions" a.F.execs b.F.execs;
  check_int "same coverage points" a.F.coverage_points b.F.coverage_points;
  check "same coverage curve" true (a.F.coverage_curve = b.F.coverage_curve);
  check "same corpus" true (List.equal M.equal a.F.corpus b.F.corpus);
  Alcotest.(check (list string))
    "same violations in the same order"
    (List.map (fun v -> v.F.v_fingerprint) a.F.violations)
    (List.map (fun v -> v.F.v_fingerprint) b.F.violations);
  check "same shrunk genomes" true
    (List.equal M.equal
       (List.map (fun v -> v.F.v_shrunk) a.F.violations)
       (List.map (fun v -> v.F.v_shrunk) b.F.violations))

(* Every violation must survive persist -> reload -> replay -> shrink,
   deterministically — the reproducibility contract the CLI self-checks
   and CI enforces. *)
let test_violation_persist_replay_shrink () =
  let prop = property ~name:"theorem3" ~inject:"frozen-exchange" in
  let stats =
    run_fuzz ~seed:7 ~budget:(F.Cases 500) ~domains:2 (genome_params 3 3 1) prop
  in
  check "violations found" true (stats.F.violations <> []);
  List.iteri
    (fun i (v : F.violation) ->
      if i < 5 then begin
        match M.of_string (M.to_string v.F.v_genome) with
        | Error m -> Alcotest.failf "violation %d does not reload: %s" i m
        | Ok g ->
          check "reloaded genome identical" true (M.equal g v.F.v_genome);
          check "reloaded genome still fails" true (F.genome_fails prop g);
          let s1 = F.shrink_genome prop g and s2 = F.shrink_genome prop g in
          check "reloaded shrink deterministic" true (M.equal s1 s2);
          check "reloaded shrink matches the run's" true (M.equal s1 v.F.v_shrunk)
      end)
    stats.F.violations

let test_fuzz_corpus_dir_round_trip () =
  let prop = property ~name:"theorem3" ~inject:"frozen-exchange" in
  let dir = temp_dir () in
  let stats =
    run_fuzz ~corpus_dir:dir ~seed:11 ~budget:(F.Cases 600) ~domains:2
      (genome_params 3 3 1) prop
  in
  (match C.load ~dir with
  | Error m -> Alcotest.failf "saved corpus does not reload: %s" m
  | Ok loaded ->
    check_int "saved corpus has every admitted entry" stats.F.corpus_size
      (List.length loaded));
  (* A second run re-seeds from the saved corpus. Every violation of the
     first run was admitted (a violating execution has a new fingerprint,
     which is coverage growth), so with a budget covering all seeds the
     second run must rediscover at least the first run's violation set. *)
  let stats' =
    run_fuzz ~corpus_dir:dir ~seed:12 ~budget:(F.Cases 2000) ~domains:2
      (genome_params 3 3 1) prop
  in
  let fps r = fingerprint_set (List.map (fun v -> v.F.v_fingerprint) r.F.violations) in
  check "persisted corpus reproduces every earlier violation" true
    (List.for_all (fun fp -> List.mem fp (fps stats')) (fps stats))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "fuzz-mutate",
      [
        tc "of_schedule injections are valid" `Quick test_of_schedule_valid;
        tc "injection preserves fingerprints" `Quick test_roundtrip_fingerprints;
        tc "mutation is deterministic" `Quick test_mutate_deterministic;
        to_alcotest prop_mutants_stay_valid;
        to_alcotest prop_splice_stays_valid;
        to_alcotest prop_sexp_roundtrip;
      ] );
    ( "fuzz-corpus",
      [
        tc "save/load identity" `Quick test_corpus_save_load_identity;
        tc "garbage file is a clear error" `Quick test_corpus_garbage_file_is_an_error;
        tc "truncated file is a clear error" `Quick test_corpus_truncated_file_is_an_error;
        tc "missing directory is empty" `Quick test_corpus_missing_dir_is_empty;
        tc "golden file format" `Quick test_corpus_golden_format;
      ] );
    ( "fuzz-shrink",
      [
        tc "fixpoint terminates on decreasing measures" `Quick
          test_fixpoint_generic_termination;
        tc "reductions strictly decrease" `Quick test_reductions_strictly_decrease;
        tc "genome shrink: deterministic local minimum" `Quick
          test_genome_shrink_deterministic_local_minimum;
      ] );
    ( "fuzz-oracle",
      [
        tc "differential oracle: frozen-exchange (3,2,1) empty" `Quick
          test_oracle_frozen_exchange_empty;
        tc "differential oracle: frozen-exchange (3,3,1)" `Quick
          test_oracle_frozen_exchange_violating;
        tc "differential oracle: no-suspect-filter (3,2,1)" `Quick
          test_oracle_no_suspect_filter_small;
        tc "differential oracle: no-suspect-filter (3,3,1)" `Quick
          test_oracle_no_suspect_filter_larger;
        tc "mutation escapes the catalogue (E8a rediscovered)" `Quick
          test_fuzzer_beats_the_catalogue;
        tc "deterministic across domain counts" `Quick
          test_fuzz_deterministic_across_domains;
        tc "violations persist, replay and shrink deterministically" `Quick
          test_violation_persist_replay_shrink;
        tc "corpus directory round trip" `Quick test_fuzz_corpus_dir_round_trip;
      ] );
  ]
