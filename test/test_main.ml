let () =
  Alcotest.run "ftss"
    (List.concat
       [ Test_util.suite; Test_sync.suite; Test_history.suite; Test_core.suite; Test_protocols.suite; Test_async.suite; Test_extensions.suite; Test_properties.suite; Test_check.suite; Test_fuzz.suite; Test_obs.suite; Test_prov.suite; Test_service.suite; Test_monitor.suite; Test_profile.suite ])
