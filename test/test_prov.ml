(* Tests for the causal provenance engine: the differential check that
   cone-derived knowledge sets coincide with Ftss_history.Causality on
   synchronous traces (over a whole adversary corpus), drop-pruning and
   blame chaining, destabilizing-event detection with connecting deliver
   edges, stamped JSONL round-trips, selector parsing, DOT export, and an
   asynchronous consensus smoke test. *)

open Ftss_util
open Ftss_sync
open Ftss_obs
open Ftss_check
module Prov = Ftss_prov.Prov

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counter_protocol : (int, int) Protocol.t =
  {
    Protocol.name = "counter";
    init = (fun _ -> 0);
    broadcast = (fun _ c -> c);
    step = (fun _ c _ -> c + 1);
  }

(* Run [faults] for [rounds] rounds, traced and stamped, returning the
   runner's trace (for Causality) and the provenance index built from the
   very same event stream. *)
let run_indexed ~n ~rounds faults =
  let ring = Sink.ring ~capacity:100_000 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] ~stamp:n () in
  let trace = Runner.run ~obs ~faults ~rounds counter_protocol in
  (trace, Prov.of_events (Sink.ring_contents ring))

(* --- the differential test: cones vs Causality over a corpus --- *)

let test_differential_against_causality () =
  let params =
    { Schedule_enum.n = 3; rounds = 3; f = 1; intervals = true; drops = true }
  in
  let cases = Schedule_enum.enumerate params in
  check "corpus is non-trivial" true (Array.length cases > 50);
  Array.iter
    (fun case ->
      let adv = Property.adversary_of_case case in
      let trace, t = run_indexed ~n:adv.Property.adv_n ~rounds:adv.Property.adv_rounds adv.Property.adv_faults in
      let c = Ftss_history.Causality.analyze trace in
      let rounds = Ftss_history.Causality.length c in
      for r = 0 to rounds do
        for p = 0 to adv.Property.adv_n - 1 do
          if not (Pidset.equal (Prov.knows t ~round:r p) (Ftss_history.Causality.knows c ~round:r p))
          then
            Alcotest.failf "K_%d(%d) differs on case %s: prov %s, causality %s" r p
              (Format.asprintf "%a" Schedule_enum.pp case)
              (Format.asprintf "%a" Pidset.pp (Prov.knows t ~round:r p))
              (Format.asprintf "%a" Pidset.pp (Ftss_history.Causality.knows c ~round:r p))
        done;
        let correct = Ftss_history.Causality.correct c in
        if not (Pidset.equal (Prov.coterie t ~round:r ~correct) (Ftss_history.Causality.coterie c ~round:r))
        then
          Alcotest.failf "coterie at %d differs on case %s" r
            (Format.asprintf "%a" Schedule_enum.pp case)
      done;
      (* Destabilizing events coincide with Causality.changes. *)
      let correct = Ftss_history.Causality.correct c in
      let changes = Ftss_history.Causality.changes c in
      let growth = Prov.growth t ~correct in
      if
        List.length changes <> List.length growth
        || not
             (List.for_all2
                (fun (r1, s1) (r2, s2) -> r1 = r2 && Pidset.equal s1 s2)
                changes growth)
      then
        Alcotest.failf "growth differs on case %s" (Format.asprintf "%a" Schedule_enum.pp case);
      (* Stamps are consistent along every edge. *)
      match Prov.stamps_consistent t with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "stamps inconsistent on case %s: %s"
          (Format.asprintf "%a" Schedule_enum.pp case) msg)
    cases

(* --- drop pruning --- *)

let test_drop_pruning () =
  (* p1 is muted for the whole run: its messages to others are all
     dropped (self-delivery survives, paper footnote 1). *)
  let n = 3 and rounds = 3 in
  let faults =
    Faults.of_events ~n
      (List.concat_map
         (fun r -> [ Faults.Drop { src = 1; dst = 0; round = r }; Faults.Drop { src = 1; dst = 2; round = r } ])
         [ 1; 2; 3 ])
  in
  let _trace, t = run_indexed ~n ~rounds faults in
  (* Nobody but p1 ever hears from p1. *)
  check "p0 never knows p1" false (Pidset.mem 1 (Prov.knows t ~round:rounds 0));
  check "p2 never knows p1" false (Pidset.mem 1 (Prov.knows t ~round:rounds 2));
  check "p1 knows everyone" true
    (Pidset.equal (Prov.knows t ~round:rounds 1) (Pidset.full n));
  (* No drop node appears in any located event's cone, and none of p1's
     events appear in p0's cone. *)
  let drops =
    List.filteri (fun i _ -> match (Prov.event t i).Event.body with
        | Event.Drop _ -> true | _ -> false)
      (List.init (Prov.length t) Fun.id)
  in
  check "the run has drops" true (drops <> []);
  for p = 0 to n - 1 do
    match Prov.last_at t p with
    | None -> Alcotest.failf "p%d has no events" p
    | Some last ->
      let cone = Prov.cone t [ last ] in
      List.iter
        (fun d -> check "drop pruned from cone" false (List.mem d cone))
        drops;
      if p = 0 then
        List.iter
          (fun i ->
            if Prov.located t i = Some 1 then
              check "p1's events pruned from p0's cone" false (List.mem i cone))
          cone
  done;
  (* Every drop consumed a send and chains blame to a faulty endpoint. *)
  let pruned = Prov.pruned_drops t in
  check_int "all drops paired" (List.length drops) (List.length pruned);
  List.iter
    (fun (d, sup) ->
      check "drop consumed its suppressed send" true (sup <> None);
      check "blamed on the muted endpoint" true (Prov.blame_of_drop t d = Some 1))
    pruned

(* --- destabilizing events and connecting delivers --- *)

let test_growth_and_connecting_delivers () =
  (* p0 is isolated from others in round 1 (both directions): K_1(0) =
     {0} and p0 is in nobody else's K_1, so the round-1 coterie is empty
     and the whole system enters at round 2 — one destabilizing event,
     whose connecting deliver edges from p0 must land in the cones of
     the correct observers' last events. *)
  let n = 3 and rounds = 3 in
  let faults =
    Faults.of_events ~n
      [
        Faults.Drop { src = 0; dst = 1; round = 1 };
        Faults.Drop { src = 0; dst = 2; round = 1 };
        Faults.Drop { src = 1; dst = 0; round = 1 };
        Faults.Drop { src = 2; dst = 0; round = 1 };
      ]
  in
  let _trace, t = run_indexed ~n ~rounds faults in
  let correct = Prov.inferred_correct t in
  let growth = Prov.growth t ~correct in
  check "one growth round" true (List.length growth = 1);
  let r2, entered = List.hd growth in
  check_int "the coterie forms at round 2" 2 r2;
  check "everyone enters together" true (Pidset.equal entered (Pidset.full n));
  let ds = Prov.connecting_delivers t ~round:2 ~entered:0 ~correct in
  check "connecting delivers found" true (ds <> []);
  List.iter
    (fun i ->
      (match (Prov.event t i).Event.body with
      | Event.Deliver { src = 0; _ } -> ()
      | _ -> Alcotest.fail "connecting edge is not a deliver from p0");
      check_int "at the growth round" 2 (Prov.event t i).Event.time)
    ds;
  (* The acceptance check: the newly-connecting edge is in the cone of a
     correct observer's last event. *)
  let in_some_cone =
    List.exists
      (fun i ->
        Pidset.exists
          (fun q ->
            match Prov.last_at t q with
            | None -> false
            | Some last -> List.mem i (Prov.cone t [ last ]))
          correct)
      ds
  in
  check "connecting deliver lies in an observer's cone" true in_some_cone

(* --- stamped JSONL round-trip --- *)

let test_jsonl_round_trip () =
  let n = 3 and rounds = 3 in
  let faults = Faults.of_events ~n [ Faults.Crash { pid = 2; round = 2 } ] in
  let path = Filename.temp_file "ftss_prov" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let obs =
        Obs.create ~sinks:[ Sink.jsonl_file path ] ~stamp:n ()
      in
      let _trace = Runner.run ~obs ~faults ~rounds counter_protocol in
      Obs.close obs;
      match Prov.load path with
      | Error msg -> Alcotest.failf "load: %s" msg
      | Ok t ->
        check "n inferred" true (Prov.n t = n);
        check "stamps survive the file" true (Prov.eid t 0 <> None);
        check "stamps consistent after reload" true
          (Prov.stamps_consistent t = Ok ());
        check "crash recorded" true (Pidset.mem 2 (Prov.crashed t));
        (* Resolving by stamp eid finds the exact event. *)
        (match Prov.eid t 5 with
        | None -> Alcotest.fail "event 5 unstamped"
        | Some e -> (
          match Prov.resolve t (Prov.Id e) with
          | Ok [ i ] -> check_int "eid resolves to its event" 5 i
          | Ok _ | Error _ -> Alcotest.fail "eid did not resolve")))

(* --- selector parsing --- *)

let test_selector_parsing () =
  check "last-decide" true (Prov.parse_target "last-decide" = Ok Prov.Last_decide);
  check "last-window" true
    (Prov.parse_target "last-window" = Ok Prov.Last_window_close);
  check "numeric id" true (Prov.parse_target "17" = Ok (Prov.Id 17));
  check "suspect pair" true
    (Prov.parse_target "suspect:1,2" = Ok (Prov.Suspect (1, 2)));
  check "garbage rejected" true (Result.is_error (Prov.parse_target "warp"));
  check "malformed suspect rejected" true
    (Result.is_error (Prov.parse_target "suspect:1"))

(* --- DOT export --- *)

let test_dot_export () =
  let n = 3 and rounds = 2 in
  let _trace, t = run_indexed ~n ~rounds (Faults.of_events ~n []) in
  match Prov.last_at t 0 with
  | None -> Alcotest.fail "no events"
  | Some last ->
    let cone = Prov.cone t [ last ] in
    let dot = Prov.to_dot ~targets:[ last ] t cone in
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check "digraph" true (contains "digraph" dot);
    check "process lanes as clusters" true (contains "cluster" dot);
    check "target highlighted" true (contains "gold" dot);
    check "has edges" true (contains "->" dot)

(* --- asynchronous smoke: consensus decides, the decide explains --- *)

let test_async_consensus_smoke () =
  let open Ftss_async in
  let n = 3 in
  let config =
    {
      (Sim.default_config ~n ~seed:7) with
      Sim.gst = 50;
      horizon = 1500;
      tick_interval = 10;
    }
  in
  let ring = Sink.ring ~capacity:1_000_000 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] ~stamp:n () in
  let oracle =
    Ewfd.make (Rng.create 3) ~n
      ~crashed:(fun _ -> None)
      ~gst:config.Sim.gst ~trusted:0 ~noise:0.1
  in
  let _result =
    Sim.run ~obs config
      (Consensus.process ~obs ~n ~style:Consensus.self_stabilizing
         ~propose:(fun p i -> (100 * i) + p)
         ~oracle ())
  in
  let t = Prov.of_events (Sink.ring_contents ring) in
  check "stamps consistent on the async trace" true
    (Prov.stamps_consistent t = Ok ());
  match Prov.resolve t Prov.Last_decide with
  | Error msg -> Alcotest.failf "no decide to explain: %s" msg
  | Ok targets ->
    let cone = Prov.cone t targets in
    check "decide has a non-trivial causal past" true (List.length cone > 10);
    (* A decision in round-based consensus rests on messages from a
       quorum: the cone must span more than the decider's own lane. *)
    check "cone spans several processes" true
      (Pidset.cardinal (Prov.cone_pids t cone) >= 2)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "prov",
      [
        tc "cones match Causality over the corpus" `Slow test_differential_against_causality;
        tc "omitted messages are pruned, blame chains" `Quick test_drop_pruning;
        tc "growth rounds and connecting delivers" `Quick test_growth_and_connecting_delivers;
        tc "stamped jsonl round-trips through load" `Quick test_jsonl_round_trip;
        tc "selector parsing" `Quick test_selector_parsing;
        tc "dot export renders the cone" `Quick test_dot_export;
        tc "async consensus decide explains" `Quick test_async_consensus_smoke;
      ] );
  ]
