(* Unit tests for the observability layer: JSON encode/parse round-trips,
   the event taxonomy, sinks, the metrics registry, the hub, the trace
   summarizer, and the instrumentation of the runner / simulator /
   explorer (including that traced runs match their untraced reports). *)

open Ftss_util
open Ftss_sync
open Ftss_obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Json --- *)

let test_json_round_trip () =
  let docs =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "plain";
      Json.String "esc \" \\ \n \t \x01 中";
      Json.List [ Json.Int 1; Json.Null; Json.String "x" ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("l", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun doc ->
      match Json.of_string (Json.to_string doc) with
      | Ok doc' -> check "round-trips" true (doc = doc')
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    docs

let test_json_rejects_garbage () =
  List.iter
    (fun s -> check (Printf.sprintf "rejects %S" s) true (Result.is_error (Json.of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "nul"; "\"unterminated" ]

let test_json_accessors () =
  match Json.of_string {|{"i":3,"f":2.5,"s":"v","b":true,"l":[1]}|} with
  | Error msg -> Alcotest.failf "parse error: %s" msg
  | Ok doc ->
    check "int member" true (Option.bind (Json.member "i" doc) Json.to_int_opt = Some 3);
    check "float member" true
      (Option.bind (Json.member "f" doc) Json.to_float_opt = Some 2.5);
    check "int as float" true
      (Option.bind (Json.member "i" doc) Json.to_float_opt = Some 3.0);
    check "missing member" true (Json.member "zzz" doc = None)

(* --- Event --- *)

let all_events =
  [
    Event.make ~time:1 Event.Round_begin;
    Event.make ~time:1 Event.Round_end;
    Event.make ~time:2 (Event.Send { src = 0; dst = None });
    Event.make ~time:2 (Event.Send { src = 0; dst = Some 1 });
    Event.make ~time:3 (Event.Deliver { src = 0; dst = 1 });
    Event.make ~time:3 (Event.Drop { src = 0; dst = 1; blame = Some 0 });
    Event.make ~time:3 (Event.Drop { src = 1; dst = 2; blame = None });
    Event.make ~time:4 (Event.Crash { pid = 2 });
    Event.make ~time:0 (Event.Corrupt { pid = 1 });
    Event.make ~time:5 (Event.Suspect_add { observer = 0; subject = 2 });
    Event.make ~time:6 (Event.Suspect_remove { observer = 0; subject = 2 });
    Event.make ~time:7 (Event.Decide { pid = 0; instance = 3; value = 55 });
    Event.make ~time:8 Event.Window_open;
    Event.make ~time:9 (Event.Window_close { opened = 8; measured = 2 });
    Event.make ~time:0 (Event.Case_start { case = 7 });
    Event.make ~time:0
      (Event.Case_verdict { case = 7; ok = true; dedup = false; states = 12 });
    Event.make ~time:0 (Event.Coverage { execs = 100; corpus = 9; points = 42 });
    Event.make ~time:10 (Event.Submit { pid = 0; ops = 5 });
    Event.make ~time:11 (Event.Commit { pid = 1; slot = 0; ops = 3 });
    Event.make ~time:12 (Event.Apply { pid = 1; slot = 0; digest = 99 });
    Event.make ~time:13 (Event.Recover { pid = 2; slots = 4 });
  ]

(* The same bodies stamped: totality of the JSON codec must cover the
   stamped envelope too. *)
let all_events_stamped =
  List.mapi
    (fun i ev ->
      let vc = [| i; i + 1; 2 * i |] in
      Event.make ~stamp:{ Stamp.eid = i; vc } ~time:ev.Event.time ev.Event.body)
    all_events

let test_event_round_trip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Some ev' -> check (Event.kind ev ^ " round-trips") true (ev = ev')
      | None -> Alcotest.failf "%s did not decode" (Event.kind ev))
    (all_events @ all_events_stamped);
  (* Every declared kind is exercised above. *)
  let seen = List.sort_uniq compare (List.map Event.kind all_events) in
  check_int "all kinds covered" (List.length Event.kinds) (List.length seen)

let test_event_rejects_unknown () =
  check "unknown tag" true
    (Event.of_json (Json.Obj [ ("t", Json.Int 0); ("ev", Json.String "warp") ]) = None);
  check "missing field" true
    (Event.of_json (Json.Obj [ ("t", Json.Int 0); ("ev", Json.String "crash") ]) = None)

(* --- Sinks --- *)

let test_ring_eviction () =
  let ring = Sink.ring ~capacity:3 in
  let sink = Sink.ring_sink ring in
  List.iteri
    (fun i body -> sink.Sink.emit (Event.make ~time:i body))
    [ Event.Round_begin; Event.Round_end; Event.Window_open; Event.Round_begin;
      Event.Round_end ];
  check_int "seen counts everything" 5 (Sink.ring_seen ring);
  let kept = Sink.ring_contents ring in
  check_int "capacity bounds retention" 3 (List.length kept);
  Alcotest.(check (list int))
    "oldest evicted, order oldest-first" [ 2; 3; 4 ]
    (List.map (fun e -> e.Event.time) kept)

let test_jsonl_and_load_round_trip () =
  let path = Filename.temp_file "ftss_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl_file path in
      List.iter sink.Sink.emit all_events;
      sink.Sink.close ();
      match Trace_summary.load path with
      | Error msg -> Alcotest.failf "load: %s" msg
      | Ok t ->
        check_int "every event loaded" (List.length all_events) (Trace_summary.length t);
        check "events identical" true (Trace_summary.events t = all_events))

(* The golden fixture pins the wire format: every event kind, plain and
   stamped, exactly as [Sink.jsonl_file] writes it today. A diff here means
   the JSONL encoding changed and every stored trace in the wild silently
   re-reads differently — bump deliberately, never by accident. *)
let test_golden_jsonl () =
  let golden =
    if Sys.file_exists "golden_events.jsonl" then "golden_events.jsonl"
    else Filename.concat "test" "golden_events.jsonl"
  in
  let ic = open_in golden in
  let expected =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec lines acc =
          match input_line ic with
          | line -> lines (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        lines [])
  in
  let actual =
    List.map (fun ev -> Json.to_string (Event.to_json ev))
      (all_events @ all_events_stamped)
  in
  check_int "fixture line count" (List.length actual) (List.length expected);
  List.iteri
    (fun i (a, e) -> check_string (Printf.sprintf "line %d" (i + 1)) e a)
    (List.combine actual expected);
  (* And the fixture still decodes to the same events. *)
  match Trace_summary.load golden with
  | Error msg -> Alcotest.failf "golden fixture unreadable: %s" msg
  | Ok t ->
    check "fixture decodes to the source events" true
      (Trace_summary.events t = all_events @ all_events_stamped)

let test_coverage_summary () =
  let cov ~time execs corpus points =
    Event.make ~time (Event.Coverage { execs; corpus; points })
  in
  let t =
    Trace_summary.of_events
      [
        Event.make ~time:0 Event.Round_begin;
        cov ~time:1 10 2 5;
        cov ~time:2 50 3 8;
        cov ~time:3 100 3 8;
        Event.make ~time:3 Event.Round_end;
      ]
  in
  Alcotest.(check (list (triple int int int)))
    "curve in emission order"
    [ (10, 2, 5); (50, 3, 8); (100, 3, 8) ]
    (Trace_summary.coverage_curve t);
  check "final sample" true (Trace_summary.final_coverage t = Some (100, 3, 8));
  (* Two samples fall into the same tail bucket: the later one wins. *)
  Alcotest.(check (list (pair int int)))
    "buckets keep the last sample per cell"
    [ (10, 5); (50, 8); (100, 8) ]
    (Trace_summary.coverage_buckets ~buckets:4 t);
  check "no coverage -> none" true
    (Trace_summary.final_coverage (Trace_summary.of_events [ Event.make ~time:0 Event.Round_begin ])
    = None);
  (* The census mentions coverage so [ftss trace] surfaces fuzzing runs. *)
  let report = Format.asprintf "%a" Trace_summary.pp t in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "report shows final coverage" true (contains "coverage: 100 execs" report)

let test_load_reports_bad_line () =
  let path = Filename.temp_file "ftss_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"t\":0,\"ev\":\"round_begin\"}\nnot json\n";
      close_out oc;
      match Trace_summary.load path with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error msg ->
        check "error names line 2" true
          (let rec contains i =
             i + 6 <= String.length msg
             && (String.sub msg i 6 = "line 2" || contains (i + 1))
           in
           contains 0))

let test_console_filter () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  let sink = Sink.console ~kinds:[ "crash" ] ppf in
  List.iter sink.Sink.emit all_events;
  sink.Sink.close ();
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check "crash printed" true
    (List.exists (fun l -> l <> "") (String.split_on_char '\n' out));
  check "everything else filtered" false
    (let rec contains i =
       i + 6 <= String.length out && (String.sub out i 6 = "decide" || contains (i + 1))
     in
     contains 0)

(* --- Metrics --- *)

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  check "fresh registry is empty" true (Metrics.is_empty m);
  let c = Metrics.counter m "hits" in
  Metrics.inc c;
  Metrics.add c 4;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  check_int "get-or-create returns same instrument" 5
    (Metrics.counter_value (Metrics.counter m "hits"));
  Metrics.set (Metrics.gauge m "level") 2.5;
  check "gauge holds last value" true (Metrics.gauge_value (Metrics.gauge m "level") = 2.5);
  check "registry no longer empty" false (Metrics.is_empty m)

let test_metrics_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  check_int "count" 100 (Metrics.histogram_count h);
  check "sum" true (Metrics.histogram_sum h = 5050.0);
  check "p50 nearest-rank" true (Metrics.percentile h 50.0 = 50.0);
  check "p95 nearest-rank" true (Metrics.percentile h 95.0 = 95.0);
  check "p100 is max" true (Metrics.percentile h 100.0 = 100.0);
  check "empty histogram is nan" true
    (Float.is_nan (Metrics.percentile (Metrics.histogram m "empty") 50.0));
  Alcotest.check_raises "percentile range checked"
    (Invalid_argument "Metrics.percentile: p outside [0, 100]") (fun () ->
      ignore (Metrics.percentile h 101.0))

let test_lhist_percentiles_bounded_error () =
  let h = Metrics.lhist_create () in
  for i = 1 to 10_000 do
    Metrics.lobserve h (float_of_int i)
  done;
  check_int "count exact" 10_000 (Metrics.lhist_count h);
  check "sum exact" true (Metrics.lhist_sum h = 50_005_000.0);
  check "min exact" true (Metrics.lhist_min h = 1.0);
  check "max exact" true (Metrics.lhist_max h = 10_000.0);
  (* Every estimate within the documented relative-error bound of the
     exact nearest-rank answer — on a stream far past any reservoir. *)
  List.iter
    (fun p ->
      let exact = float_of_int 10_000 *. p /. 100.0 in
      let est = Metrics.lpercentile h p in
      let rel = Float.abs (est -. exact) /. exact in
      if rel > Metrics.lhist_error then
        Alcotest.failf "p%g: estimate %g vs exact %g (rel err %.3f > %.3f)" p
          est exact rel Metrics.lhist_error)
    [ 50.0; 90.0; 99.0; 99.9 ];
  check "p100 clamps to exact max" true (Metrics.lpercentile h 100.0 = 10_000.0);
  check "empty lhist is nan" true
    (Float.is_nan (Metrics.lpercentile (Metrics.lhist_create ()) 50.0));
  Alcotest.check_raises "percentile range checked"
    (Invalid_argument "Metrics.lpercentile: p outside [0, 100]") (fun () ->
      ignore (Metrics.lpercentile h 101.0))

let test_lhist_no_reservoir_bias () =
  (* The first-N reservoir goes blind after [reservoir_capacity] samples;
     the log-bucket histogram keeps tracking. Feed small values first,
     then a late shift to large ones: the reservoir still reports the
     early distribution, the lhist sees the shift. *)
  let m = Metrics.create () in
  let r = Metrics.histogram m "r" in
  let l = Metrics.lhist m "l" in
  for _ = 1 to Metrics.reservoir_capacity do
    Metrics.observe r 1.0;
    Metrics.lobserve l 1.0
  done;
  for _ = 1 to 9 * Metrics.reservoir_capacity do
    Metrics.observe r 1000.0;
    Metrics.lobserve l 1000.0
  done;
  check "reservoir stuck on the early phase" true
    (Metrics.percentile r 99.0 = 1.0);
  check "lhist tracks the shift" true (Metrics.lpercentile l 99.0 > 900.0);
  (* Registry export: same field set as reservoir histograms plus the
     kind tag, so bench-diff and snapshot consumers read both alike. *)
  let doc = Metrics.to_json m in
  let field h name = Option.bind (Json.member name h) Json.to_float_opt in
  let lh =
    match Option.bind (Json.member "histograms" doc) (Json.member "l") with
    | Some h -> h
    | None -> Alcotest.fail "lhist missing from histograms export"
  in
  check "kind tagged" true
    (Option.bind (Json.member "kind" lh) Json.to_string_opt = Some "logbucket");
  check "count exported" true
    (Option.bind (Json.member "count" lh) Json.to_int_opt
    = Some (10 * Metrics.reservoir_capacity));
  List.iter
    (fun name -> check (name ^ " exported") true (field lh name <> None))
    [ "sum"; "min"; "max"; "mean"; "p50"; "p95"; "p99"; "p999" ]

let test_lhist_merge_edges () =
  (* empty ⊎ empty stays empty (and nan extremes stay nan, not 0). *)
  let a = Metrics.lhist_create () and b = Metrics.lhist_create () in
  Metrics.lhist_merge a b;
  check_int "empty+empty count" 0 (Metrics.lhist_count a);
  check "empty+empty min is nan" true (Float.is_nan (Metrics.lhist_min a));
  check "empty+empty p50 is nan" true
    (Float.is_nan (Metrics.lpercentile a 50.0));
  (* empty ⊎ nonempty adopts the source exactly, in both directions. *)
  let src = Metrics.lhist_create () in
  List.iter (Metrics.lobserve src) [ 3.0; 7.0; 11.0 ];
  let into = Metrics.lhist_create () in
  Metrics.lhist_merge into src;
  check_int "empty into adopts count" 3 (Metrics.lhist_count into);
  check "adopts sum" true (Metrics.lhist_sum into = 21.0);
  check "adopts min" true (Metrics.lhist_min into = 3.0);
  check "adopts max" true (Metrics.lhist_max into = 11.0);
  let nonempty = Metrics.lhist_create () in
  Metrics.lobserve nonempty 5.0;
  Metrics.lhist_merge nonempty (Metrics.lhist_create ());
  check_int "merging empty is identity" 1 (Metrics.lhist_count nonempty);
  check "identity min" true (Metrics.lhist_min nonempty = 5.0);
  (* single-bucket populations: same value everywhere collapses to one
     bucket; the merge must keep exact extremes and the clamped p50. *)
  let s1 = Metrics.lhist_create () and s2 = Metrics.lhist_create () in
  for _ = 1 to 10 do
    Metrics.lobserve s1 42.0;
    Metrics.lobserve s2 42.0
  done;
  Metrics.lhist_merge s1 s2;
  check_int "single-bucket count adds" 20 (Metrics.lhist_count s1);
  check "single-bucket p50 clamps exact" true
    (Metrics.lpercentile s1 50.0 = 42.0);
  (* from is untouched by the merge. *)
  check_int "source untouched" 10 (Metrics.lhist_count s2);
  (* percentile agreement: a stream split across two shards and merged
     must estimate every percentile identically to the unsplit stream —
     log bucketing makes the merge lossless. *)
  let whole = Metrics.lhist_create () in
  let sh1 = Metrics.lhist_create () and sh2 = Metrics.lhist_create () in
  let rng = ref 9973 in
  for i = 1 to 4_000 do
    rng := (!rng * 48271) mod 0x7fffffff;
    let v = float_of_int (1 + (!rng mod 10_000)) in
    Metrics.lobserve whole v;
    Metrics.lobserve (if i mod 2 = 0 then sh1 else sh2) v
  done;
  Metrics.lhist_merge sh1 sh2;
  check_int "merged count matches" (Metrics.lhist_count whole)
    (Metrics.lhist_count sh1);
  check "merged sum matches" true
    (Metrics.lhist_sum whole = Metrics.lhist_sum sh1);
  check "merged min matches" true
    (Metrics.lhist_min whole = Metrics.lhist_min sh1);
  check "merged max matches" true
    (Metrics.lhist_max whole = Metrics.lhist_max sh1);
  List.iter
    (fun p ->
      let w = Metrics.lpercentile whole p and m = Metrics.lpercentile sh1 p in
      if w <> m then
        Alcotest.failf "p%g diverges after merge: %g vs %g" p w m)
    [ 0.0; 50.0; 90.0; 99.0; 99.9; 100.0 ]

let test_metrics_record_event_and_json () =
  let m = Metrics.create () in
  List.iter (Metrics.record_event m) all_events;
  let doc = Metrics.to_json m in
  let counter name =
    match Option.bind (Json.member "counters" doc) (Json.member name) with
    | Some j -> Json.to_int_opt j
    | None -> None
  in
  check "messages_sent" true (counter "messages_sent" = Some 2);
  check "messages_dropped" true (counter "messages_dropped" = Some 2);
  check "per-link drop counter" true (counter "link_dropped.0->1" = Some 1);
  check "suspicion churn" true (counter "suspicion_churn" = Some 2);
  check "decisions" true (counter "decisions" = Some 1);
  (* The stabilization histogram was fed by the window close. *)
  let stab =
    Option.bind (Json.member "histograms" doc) (Json.member "stabilization")
  in
  check "stabilization histogram present" true (stab <> None);
  check "measured d recorded" true
    (Option.bind stab (fun h -> Option.bind (Json.member "max" h) Json.to_float_opt)
    = Some 2.0);
  (* The whole snapshot is parseable JSON. *)
  check "snapshot round-trips" true
    (match Json.of_string (Json.to_string doc) with Ok d -> d = doc | Error _ -> false);
  (* And the text summary renders. *)
  check "pp_summary renders" true
    (String.length (Format.asprintf "%a" Metrics.pp_summary m) > 0)

(* --- Obs hub --- *)

let test_obs_fan_out_and_suspect_diff () =
  let ring = Sink.ring ~capacity:16 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] () in
  Obs.suspect_diff obs ~time:9 ~observer:0
    ~before:(Pidset.of_list [ 1 ])
    ~after:(Pidset.of_list [ 2 ]);
  let kinds = List.map Event.kind (Sink.ring_contents ring) in
  check "one add and one remove" true
    (List.sort compare kinds = [ "suspect_add"; "suspect_remove" ]);
  check_int "metrics recorded too" 2
    (Metrics.counter_value (Metrics.counter (Obs.metrics obs) "suspicion_churn"))

let test_obs_emit_windows () =
  let ring = Sink.ring ~capacity:16 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] () in
  Obs.emit_windows obs [ ((0, 10), 1); ((12, 30), 3) ];
  let evs = Sink.ring_contents ring in
  check_int "two pairs" 4 (List.length evs);
  let t = Trace_summary.of_events evs in
  Alcotest.(check (list (triple int int int)))
    "windows reconstructed"
    [ (0, 10, 1); (12, 30, 3) ]
    (Trace_summary.windows t);
  check "measured stabilization is the max" true
    (Trace_summary.measured_stabilization t = Some 3)

(* --- Trace_summary analyses --- *)

let test_service_summary () =
  let t =
    Trace_summary.of_events
      [
        Event.make ~time:1 (Event.Submit { pid = 0; ops = 10 });
        Event.make ~time:2 (Event.Submit { pid = 1; ops = 4 });
        Event.make ~time:3 (Event.Commit { pid = 0; slot = 0; ops = 8 });
        Event.make ~time:3 (Event.Apply { pid = 0; slot = 0; digest = 7 });
        Event.make ~time:4 (Event.Commit { pid = 0; slot = 1; ops = 6 });
        Event.make ~time:4 (Event.Apply { pid = 0; slot = 1; digest = 9 });
        Event.make ~time:9 (Event.Recover { pid = 1; slots = 2 });
      ]
  in
  (match Trace_summary.service_totals t with
  | Some (submitted, slots, ops, applied, recovered) ->
    check_int "submitted ops" 14 submitted;
    check_int "committed slots" 2 slots;
    check_int "committed ops" 14 ops;
    check_int "applied slots" 2 applied;
    check_int "recoveries" 1 recovered
  | None -> Alcotest.fail "service totals absent");
  Alcotest.(check (list (triple int int int)))
    "recovery timeline" [ (9, 1, 2) ]
    (Trace_summary.recovery_timeline t);
  (* Non-service traces omit the section entirely. *)
  check "no service events -> none" true
    (Trace_summary.service_totals
       (Trace_summary.of_events [ Event.make ~time:0 Event.Round_begin ])
    = None);
  (* And [ftss trace]'s census mentions the service pipeline. *)
  let report = Format.asprintf "%a" Trace_summary.pp t in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "report shows service totals" true (contains "service:" report);
  check "report shows recoveries" true (contains "recover" report)

let test_suspicion_timeline_and_blame () =
  let t =
    Trace_summary.of_events
      [
        Event.make ~time:1 (Event.Suspect_add { observer = 0; subject = 2 });
        Event.make ~time:4 (Event.Suspect_remove { observer = 0; subject = 2 });
        Event.make ~time:2 (Event.Suspect_add { observer = 1; subject = 0 });
        Event.make ~time:3 (Event.Drop { src = 1; dst = 0; blame = Some 1 });
        Event.make ~time:5 (Event.Drop { src = 1; dst = 0; blame = Some 1 });
        Event.make ~time:6 (Event.Drop { src = 0; dst = 2; blame = Some 2 });
      ]
  in
  (match Trace_summary.suspicion_timeline t with
  | [ (0, changes0); (1, changes1) ] ->
    check "observer 0 transitions" true (changes0 = [ (1, 2, true); (4, 2, false) ]);
    check "observer 1 transitions" true (changes1 = [ (2, 0, true) ])
  | other -> Alcotest.failf "unexpected timeline shape (%d observers)" (List.length other));
  match Trace_summary.blame_matrix t with
  | [ ((0, 2), (c1, b1)); ((1, 0), (c2, b2)) ] ->
    check_int "0->2 count" 1 c1;
    check "0->2 blames receiver" true (b1 = Some 2);
    check_int "1->0 count" 2 c2;
    check "1->0 blames sender" true (b2 = Some 1)
  | other -> Alcotest.failf "unexpected matrix shape (%d links)" (List.length other)

(* --- Instrumented components --- *)

let counter_protocol : (int, int) Protocol.t =
  {
    Protocol.name = "counter";
    init = (fun _ -> 0);
    broadcast = (fun _ c -> c);
    step = (fun _ c _ -> c + 1);
  }

let test_runner_events_match_trace () =
  let n = 3 and rounds = 5 in
  let faults =
    Faults.of_events ~n
      [
        Faults.Drop { src = 1; dst = 0; round = 2 };
        Faults.Drop { src = 1; dst = 2; round = 4 };
        Faults.Crash { pid = 2; round = 5 };
      ]
  in
  let ring = Sink.ring ~capacity:4096 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] () in
  let trace = Runner.run ~obs ~faults ~rounds counter_protocol in
  let evs = Sink.ring_contents ring in
  let count k = List.length (List.filter (fun e -> Event.kind e = k) evs) in
  check_int "one round_begin per round" rounds (count "round_begin");
  check_int "one round_end per round" rounds (count "round_end");
  check_int "one crash" 1 (count "crash");
  (* Drop events mirror trace.omissions exactly. *)
  let dropped =
    List.filter_map
      (fun e ->
        match e.Event.body with
        | Event.Drop { src; dst; _ } -> Some (e.Event.time, src, dst)
        | _ -> None)
      evs
  in
  Alcotest.(check (list (triple int int int)))
    "drops mirror the recorded omissions" trace.Trace.omissions dropped;
  (* Every drop is blamed on a declared-faulty endpoint. *)
  List.iter
    (fun e ->
      match e.Event.body with
      | Event.Drop { blame = Some b; _ } ->
        check "blame declared faulty" true (Pidset.mem b trace.Trace.declared_faulty)
      | Event.Drop { blame = None; _ } -> Alcotest.fail "unblamed drop"
      | _ -> ())
    evs;
  (* Deliveries: every live pair minus the drops (self-deliveries are
     never droppable). The metrics registry agrees. *)
  check_int "delivered counter matches events"
    (count "deliver")
    (Metrics.counter_value (Metrics.counter (Obs.metrics obs) "messages_delivered"))

let test_untraced_runner_unchanged () =
  let n = 3 and rounds = 4 in
  let faults =
    Faults.of_events ~n [ Faults.Drop { src = 0; dst = 1; round = 2 } ]
  in
  let obs = Obs.create () in
  let t1 = Runner.run ~faults ~rounds counter_protocol in
  let t2 = Runner.run ~obs ~faults ~rounds counter_protocol in
  check "traced run records the same history" true (t1 = t2)

let test_sim_events_match_result () =
  let open Ftss_async in
  let n = 3 in
  let config =
    {
      (Sim.default_config ~n ~seed:5) with
      Sim.gst = 50;
      horizon = 400;
      tick_interval = 10;
      crashes = [ (2, 200) ];
    }
  in
  let ring = Sink.ring ~capacity:100_000 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] () in
  let oracle =
    Ewfd.make (Rng.create 3) ~n
      ~crashed:(fun p -> List.assoc_opt p config.Sim.crashes)
      ~gst:config.Sim.gst ~trusted:0 ~noise:0.2
  in
  let result = Sim.run ~obs config (Esfd.process ~obs ~n ~oracle ()) in
  let evs = Sink.ring_contents ring in
  let count k = List.length (List.filter (fun e -> Event.kind e = k) evs) in
  check_int "deliver events match the simulator's count" result.Sim.delivered
    (count "deliver");
  check_int "crash emitted once" 1 (count "crash");
  check "suspicion changes were emitted" true (count "suspect_add" > 0);
  (* The observation log's suspect-set changes and the event stream agree
     in count: every logged change produces at least one add/remove. *)
  check "adds+removes cover log entries" true
    (count "suspect_add" + count "suspect_remove" >= 1)

let test_explore_case_events () =
  let open Ftss_check in
  let prop =
    match Property.find ~name:"theorem3" ~inject:"none" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let params =
    prop.Property.restrict
      { Schedule_enum.n = 3; rounds = 2; f = 1; intervals = true; drops = true }
  in
  let cases = Schedule_enum.enumerate params in
  let ring = Sink.ring ~capacity:100_000 in
  let obs = Obs.create ~sinks:[ Sink.ring_sink ring ] () in
  let stats, _ = Explore.run ~obs ~domains:2 prop cases in
  let evs = Sink.ring_contents ring in
  let count k = List.length (List.filter (fun e -> Event.kind e = k) evs) in
  check_int "a start per case" (Array.length cases) (count "case_start");
  check_int "a verdict per case" (Array.length cases) (count "case_verdict");
  check_int "per-domain stats cover all cases" stats.Explore.cases
    (Array.fold_left (fun a d -> a + d.Explore.d_cases) 0 stats.Explore.per_domain);
  check_int "per-domain states sum" stats.Explore.states
    (Array.fold_left (fun a d -> a + d.Explore.d_states) 0 stats.Explore.per_domain);
  (* Bespoke gauges landed in the registry. *)
  let m = Obs.metrics obs in
  check "runs/sec gauge" true
    (Metrics.gauge_value (Metrics.gauge m "explore_runs_per_sec") > 0.0);
  (* stats JSON parses back. *)
  check "stats json parses" true
    (match Json.of_string (Json.to_string (Explore.to_json stats)) with
    | Ok _ -> true
    | Error _ -> false)

let test_explore_stats_unchanged_by_obs () =
  let open Ftss_check in
  let prop =
    match Property.find ~name:"theorem3" ~inject:"none" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let params =
    prop.Property.restrict
      { Schedule_enum.n = 3; rounds = 2; f = 1; intervals = true; drops = true }
  in
  let cases = Schedule_enum.enumerate params in
  let s1, r1 = Explore.run ~domains:1 prop cases in
  let s2, r2 = Explore.run ~obs:(Obs.create ()) ~domains:1 prop cases in
  check "verdicts identical" true (r1 = r2);
  check_int "distinct identical" s1.Explore.distinct s2.Explore.distinct;
  check_int "dedup identical" s1.Explore.dedup_hits s2.Explore.dedup_hits

(* --- Bench_diff --- *)

let snapshot ?experiment ?(schema = 2) gauges =
  { Bench_diff.experiment; schema; gauges }

let test_bench_diff_directions () =
  let open Bench_diff in
  check "per_sec is higher-better" true
    (direction "gauge.states_per_sec" = Higher_better);
  check "ns_per_call is lower-better" true
    (direction "ns_per_call.ftss round (n=4)" = Lower_better);
  check "elapsed is lower-better" true (direction "elapsed_seconds" = Lower_better);
  check "unknown units are informational" true
    (direction "gauge.corpus_size" = Informational)

let test_bench_diff_identity () =
  let s = snapshot ~experiment:"M1" [ ("ns_per_call.x", 100.); ("y.per_sec", 5.) ] in
  let r = Bench_diff.diff ~old_:s ~new_:s in
  check "no regressions on identity" true
    (Bench_diff.regressions r ~max_regress:0.0 = []);
  check_int "both gauges compared" 2 (List.length r.Bench_diff.entries)

let test_bench_diff_regression () =
  let old_ =
    snapshot [ ("ns_per_call.x", 100.); ("y.per_sec", 10.); ("corpus", 4.) ]
  in
  (* x doubled (lower-better: 100% worse), y halved (higher-better: 100%
     worse), corpus doubled (informational: never flagged). *)
  let new_ =
    snapshot [ ("ns_per_call.x", 200.); ("y.per_sec", 5.); ("corpus", 8.) ]
  in
  let r = Bench_diff.diff ~old_ ~new_ in
  let regs = Bench_diff.regressions r ~max_regress:25.0 in
  Alcotest.(check (list string))
    "both directed gauges flagged, informational spared"
    [ "ns_per_call.x"; "y.per_sec" ]
    (List.map (fun e -> e.Bench_diff.name) regs);
  List.iter
    (fun e ->
      check (e.Bench_diff.name ^ " is 100% worse") true
        (abs_float (e.Bench_diff.worse_pct -. 100.) < 1e-9))
    regs;
  (* A 20% slowdown survives a 25% gate but not a 10% one. *)
  let mild = snapshot [ ("ns_per_call.x", 120.) ] in
  let r = Bench_diff.diff ~old_:(snapshot [ ("ns_per_call.x", 100.) ]) ~new_:mild in
  check "within tolerance" true (Bench_diff.regressions r ~max_regress:25.0 = []);
  check "beyond a tighter gate" true
    (Bench_diff.regressions r ~max_regress:10.0 <> [])

let test_bench_diff_schema_envelope () =
  (* Schema-2 envelope and bare schema-1 metrics both decode. *)
  let parse s =
    match Json.of_string s with
    | Ok d -> Bench_diff.load_json d
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let v2 =
    parse {|{"experiment":"M1","schema":2,"gauges":{"ns_per_call.x":100}}|}
  in
  check "experiment read" true (v2.Bench_diff.experiment = Some "M1");
  check_int "schema 2" 2 v2.Bench_diff.schema;
  check "gauges read" true (v2.Bench_diff.gauges = [ ("ns_per_call.x", 100.) ]);
  let v1 = parse {|{"gauges":{"ns_per_call.x":100},"counters":{}}|} in
  check "schema defaults to 1" true (v1.Bench_diff.schema = 1);
  check "no experiment on schema 1" true (v1.Bench_diff.experiment = None);
  (* Disjoint gauge sets surface as only_old / only_new, not as entries. *)
  let r =
    Bench_diff.diff
      ~old_:(snapshot [ ("a", 1.); ("b", 2.) ])
      ~new_:(snapshot [ ("b", 2.); ("c", 3.) ])
  in
  Alcotest.(check (list string)) "only old" [ "a" ] r.Bench_diff.only_old;
  Alcotest.(check (list string)) "only new" [ "c" ] r.Bench_diff.only_new;
  check_int "shared compared" 1 (List.length r.Bench_diff.entries)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "obs",
      [
        tc "json round-trips" `Quick test_json_round_trip;
        tc "json rejects garbage" `Quick test_json_rejects_garbage;
        tc "json accessors" `Quick test_json_accessors;
        tc "event json round-trips every kind" `Quick test_event_round_trip;
        tc "event decode is total" `Quick test_event_rejects_unknown;
        tc "ring buffer bounds and evicts" `Quick test_ring_eviction;
        tc "jsonl write/load round-trips" `Quick test_jsonl_and_load_round_trip;
        tc "golden jsonl fixture pins the wire format" `Quick test_golden_jsonl;
        tc "coverage events fold into the summary" `Quick test_coverage_summary;
        tc "load names the malformed line" `Quick test_load_reports_bad_line;
        tc "console sink filters by kind" `Quick test_console_filter;
        tc "counters and gauges" `Quick test_metrics_counters_and_gauges;
        tc "histogram percentiles" `Quick test_metrics_histogram_percentiles;
        tc "log-bucket percentiles within error bound" `Quick
          test_lhist_percentiles_bounded_error;
        tc "log-bucket histogram outlives the reservoir" `Quick
          test_lhist_no_reservoir_bias;
        tc "lhist_merge edge cases and percentile agreement" `Quick
          test_lhist_merge_edges;
        tc "record_event derivations + json snapshot" `Quick test_metrics_record_event_and_json;
        tc "hub fan-out and suspect_diff" `Quick test_obs_fan_out_and_suspect_diff;
        tc "emit_windows round-trips" `Quick test_obs_emit_windows;
        tc "service totals and recovery timeline" `Quick test_service_summary;
        tc "suspicion timeline and blame matrix" `Quick test_suspicion_timeline_and_blame;
        tc "runner events mirror the trace" `Quick test_runner_events_match_trace;
        tc "tracing does not change the history" `Quick test_untraced_runner_unchanged;
        tc "sim events match the result" `Quick test_sim_events_match_result;
        tc "explorer case events and per-domain stats" `Quick test_explore_case_events;
        tc "explorer verdicts unchanged by tracing" `Quick test_explore_stats_unchanged_by_obs;
        tc "bench-diff direction heuristics" `Quick test_bench_diff_directions;
        tc "bench-diff identity is clean" `Quick test_bench_diff_identity;
        tc "bench-diff flags 2x regressions both ways" `Quick test_bench_diff_regression;
        tc "bench-diff reads both schemas" `Quick test_bench_diff_schema_envelope;
      ] );
  ]
