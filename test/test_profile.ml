(* The span profiler (lib/profile).

   The unit cases pin the contracts the instrumented layers lean on: the
   closed phase registry round-trips; disarmed lanes are inert (no spans,
   no totals, chained ticks flow through unchanged); nesting-aware
   self-time keeps every lane's phase sum at or under its wall time
   (Profile.check); the buffered span cap drops spans but never calls;
   coalesced phases flush their open window into exact totals; and the
   three export surfaces (Chrome-trace JSON, folded stacks, bench
   gauges) agree with the totals they are derived from. *)

open Ftss_obs
module P = Ftss_profile.Profile

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Busy-wait so spans have a measurable, strictly positive width without
   sleeping the scheduler. *)
let spin ns =
  let t0 = P.now_ns () in
  while P.now_ns () - t0 < ns do
    ()
  done

(* --- phase registry --- *)

let test_phase_registry () =
  check_int "closed registry size" 14 P.Phase.count;
  check_int "all lists every phase" 14 (List.length P.Phase.all);
  let names = List.map P.Phase.name P.Phase.all in
  check "names are distinct" true
    (List.length (List.sort_uniq compare names) = P.Phase.count);
  List.iter
    (fun p ->
      match P.Phase.of_name (P.Phase.name p) with
      | Some p' -> check (P.Phase.name p ^ " round-trips") true (p = p')
      | None -> Alcotest.failf "of_name failed for %s" (P.Phase.name p))
    P.Phase.all;
  check "unknown name rejected" true (P.Phase.of_name "no_such_phase" = None);
  (* The per-event hot paths coalesce; the millisecond-scale ones buffer. *)
  check "sim_pop coalesces" true (P.Phase.coalesced P.Phase.sim_pop);
  check "svc_audit buffers" false (P.Phase.coalesced P.Phase.svc_audit)

(* --- disarmed lanes are inert --- *)

let test_disarmed_noop () =
  let t = P.create ~enabled:false () in
  let l = P.lane t "off" in
  P.enter l P.Phase.svc_audit;
  check_int "leave returns 0 disarmed" 0 (P.leave l);
  check_int "lap returns since disarmed" 42 (P.lap l P.Phase.sim_pop ~since:42);
  P.enter_at l P.Phase.sim_deliver ~at:7;
  ignore (P.leave l);
  check_int "span still runs f" 5 (P.span l P.Phase.fuzz_seed (fun () -> 5));
  check "no totals" true (P.totals t = []);
  check_int "no dropped spans" 0 (P.dropped_spans t);
  check "gauges carry only the drop counter" true
    (P.gauges t = [ ("profile_dropped_spans", 0.) ])

(* --- nesting-aware self time --- *)

let test_nesting_self_le_wall () =
  let t = P.create () in
  let l = P.lane t "svc.tower" in
  (* parent (svc_slot) containing two children (svc_integrity). *)
  P.enter l P.Phase.svc_slot;
  spin 200_000;
  P.enter l P.Phase.svc_integrity;
  spin 300_000;
  ignore (P.leave l);
  P.enter l P.Phase.svc_integrity;
  spin 300_000;
  ignore (P.leave l);
  spin 200_000;
  ignore (P.leave l);
  let tot = P.totals t in
  check_int "two phases" 2 (List.length tot);
  let self p =
    let pt = List.find (fun pt -> pt.P.pt_phase = p) tot in
    pt.P.pt_self_ns
  in
  let parent = self P.Phase.svc_slot and child = self P.Phase.svc_integrity in
  check "child self covers both spins" true (child >= 600_000);
  check "parent self excludes children" true (parent < P.wall_ns t - child + 1);
  check "self sums to at most wall" true (parent + child <= P.wall_ns t);
  check "check holds" true (P.check t = [])

let test_span_exception_safe () =
  let t = P.create () in
  let l = P.lane t "svc.tower" in
  (try P.span l P.Phase.svc_audit (fun () -> failwith "boom")
   with Failure _ -> ());
  (* The frame must have been closed: a fresh balanced pair still works
     and the totals attribute one call to each phase. *)
  P.enter l P.Phase.svc_catchup;
  ignore (P.leave l);
  let calls p =
    match List.find_opt (fun pt -> pt.P.pt_phase = p) (P.totals t) with
    | Some pt -> pt.P.pt_calls
    | None -> 0
  in
  check_int "raising span recorded" 1 (calls P.Phase.svc_audit);
  check_int "next span recorded" 1 (calls P.Phase.svc_catchup);
  check "check holds after exception" true (P.check t = [])

(* --- coalesced window flush --- *)

let test_window_flush_exact_calls () =
  let t = P.create () in
  let l = P.lane t "shards.d0" in
  let n = 10_000 in
  let tick = ref (P.now_ns ()) in
  for _ = 1 to n do
    tick := P.lap l P.Phase.sim_pop ~since:!tick
  done;
  (* The window is still open (10k laps take well under the ~10 ms flush
     threshold); totals must flush it and report the exact count. *)
  match List.find_opt (fun pt -> pt.P.pt_phase = P.Phase.sim_pop) (P.totals t) with
  | None -> Alcotest.fail "sim_pop missing from totals"
  | Some pt ->
    check_int "exact calls through flush" n pt.P.pt_calls;
    check "laps accumulated time" true (pt.P.pt_self_ns > 0)

(* --- span-buffer cap --- *)

let test_buffer_cap_drops_spans_not_calls () =
  let t = P.create ~max_spans_per_lane:64 () in
  let l = P.lane t "fuzz" in
  let n = 200 in
  for _ = 1 to n do
    P.enter l P.Phase.fuzz_verify;
    ignore (P.leave l)
  done;
  check "spans dropped beyond cap" true (P.dropped_spans t > 0);
  (match List.find_opt (fun pt -> pt.P.pt_phase = P.Phase.fuzz_verify) (P.totals t) with
  | None -> Alcotest.fail "fuzz_verify missing from totals"
  | Some pt -> check_int "accumulators keep exact calls" n pt.P.pt_calls);
  match List.assoc_opt "profile_dropped_spans" (P.gauges t) with
  | Some d -> check "gauge mirrors drop counter" true (int_of_float d > 0)
  | None -> Alcotest.fail "profile_dropped_spans gauge missing"

(* --- exports --- *)

(* A small two-lane workload exercising both recording strategies. *)
let exercised () =
  let t = P.create () in
  let a = P.lane t "svc.tower" in
  let b = P.lane t "explore.d0" in
  P.enter a P.Phase.svc_slot;
  spin 100_000;
  P.enter a P.Phase.svc_integrity;
  spin 100_000;
  ignore (P.leave a);
  ignore (P.leave a);
  let tick = ref (P.now_ns ()) in
  for _ = 1 to 100 do
    tick := P.lap b P.Phase.chunk_claim ~since:!tick
  done;
  P.span b P.Phase.chunk_execute (fun () -> spin 100_000);
  t

let test_chrome_json_round_trip () =
  let t = exercised () in
  let doc = P.chrome_json t in
  (* The export must survive its own serializer. *)
  let reparsed =
    match Json.of_string (Json.to_string doc) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome JSON does not reparse: %s" e
  in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List es) -> es
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let field name e =
    match Json.member name e with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let phs = List.filter_map (field "ph") events in
  check "has complete X events" true (List.mem "X" phs);
  check "has metadata events" true (List.mem "M" phs);
  (* Every exercised phase appears as at least one slice name. *)
  let names = List.filter_map (field "name") events in
  List.iter
    (fun p ->
      let n = P.Phase.name p in
      check (n ^ " present in trace") true (List.mem n names))
    [ P.Phase.svc_slot; P.Phase.svc_integrity; P.Phase.chunk_claim;
      P.Phase.chunk_execute ];
  (* Both track groups surface as process_name metadata. *)
  let meta_args =
    List.filter_map
      (fun e ->
        if field "ph" e = Some "M" && field "name" e = Some "process_name" then
          Json.member "args" e
        else None)
      events
  in
  let procs =
    List.filter_map
      (fun a ->
        match Json.member "name" a with
        | Some (Json.String s) -> Some s
        | _ -> None)
      meta_args
  in
  check "svc process row" true (List.mem "svc" procs);
  check "explore process row" true (List.mem "explore" procs)

let test_folded_matches_totals () =
  let t = exercised () in
  let lines = String.split_on_char '\n' (String.trim (P.folded t)) in
  check "folded non-empty" true (lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line lacks a count: %S" line
      | Some i ->
        let stack = String.sub line 0 i in
        let count =
          String.sub line (i + 1) (String.length line - i - 1)
        in
        check "count is numeric" true (int_of_string_opt count <> None);
        check "stack has lane;...;phase frames" true
          (String.contains stack ';'))
    lines;
  (* The nested phase folds under its parent. *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "nested frame path present" true
    (List.exists (contains ~needle:"svc_slot;svc_integrity") lines)

let test_gauges_match_totals () =
  let t = exercised () in
  let gs = P.gauges t in
  List.iter
    (fun pt ->
      let n = P.Phase.name pt.P.pt_phase in
      (match List.assoc_opt (Printf.sprintf "profile_calls.%s" n) gs with
      | Some c -> check_int ("calls gauge " ^ n) pt.P.pt_calls (int_of_float c)
      | None -> Alcotest.failf "profile_calls.%s missing" n);
      match List.assoc_opt (Printf.sprintf "profile_self_ms.%s" n) gs with
      | Some ms ->
        check ("self gauge " ^ n) true
          (abs_float (ms -. (float_of_int pt.P.pt_self_ns /. 1e6)) < 1e-6)
      | None -> Alcotest.failf "profile_self_ms.%s missing" n)
    (P.totals t)

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "phase registry round-trips" `Quick
          test_phase_registry;
        Alcotest.test_case "disarmed lanes are inert" `Quick
          test_disarmed_noop;
        Alcotest.test_case "nested self-times sum under wall" `Quick
          test_nesting_self_le_wall;
        Alcotest.test_case "span closes frame on exception" `Quick
          test_span_exception_safe;
        Alcotest.test_case "coalesced window flushes exact calls" `Quick
          test_window_flush_exact_calls;
        Alcotest.test_case "span cap drops spans, never calls" `Quick
          test_buffer_cap_drops_spans_not_calls;
        Alcotest.test_case "chrome trace reparses with all phases" `Quick
          test_chrome_json_round_trip;
        Alcotest.test_case "folded stacks carry lane;phase frames" `Quick
          test_folded_matches_totals;
        Alcotest.test_case "gauges mirror totals" `Quick
          test_gauges_match_totals;
      ] );
  ]
