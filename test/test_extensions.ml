(* Tests for the extension modules: the heartbeat ◇W implementation, the
   oracle-free detector stack, terminating reliable broadcast, and the
   ablation variants (suspect-filter-off compiler, partial consensus
   styles). *)

open Ftss_util
open Ftss_async

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Heartbeat ◇W --- *)

let test_heartbeat_pure_machine () =
  let t = Heartbeat.create ~n:3 ~initial_timeout:20 ~backoff:10 in
  (* Silence past the timeout: suspected. *)
  let t = Heartbeat.tick t ~self:0 ~now:25 in
  check "silent peer suspected" true (Heartbeat.suspected t 1);
  check "never self-suspects" false (Heartbeat.suspected t 0);
  (* A heartbeat clears the suspicion and backs off the timeout. *)
  let t = Heartbeat.heard t ~src:1 ~now:26 in
  check "heartbeat clears suspicion" false (Heartbeat.suspected t 1);
  (* Now a silence of 25 < 20+10 does not re-suspect. *)
  let t = Heartbeat.tick t ~self:0 ~now:51 in
  check "timeout grew after false suspicion" false (Heartbeat.suspected t 1);
  let t = Heartbeat.tick t ~self:0 ~now:57 in
  check "but a longer silence does" true (Heartbeat.suspected t 1)

let test_heartbeat_future_corruption_clamped () =
  let t = Heartbeat.create ~n:2 ~initial_timeout:10 ~backoff:5 in
  let rng = Rng.create 3 in
  let t = Heartbeat.corrupt rng ~time_bound:1_000_000 ~timeout_bound:10 t in
  (* Whatever the corruption claimed, after a tick at now=5 and silence
     through now=100 the peer must be suspected. *)
  let t = Heartbeat.tick t ~self:0 ~now:5 in
  let t = Heartbeat.tick t ~self:0 ~now:100 in
  check "corrupted future last-heard clamps and times out" true (Heartbeat.suspected t 1)

let hb_config ~seed ~n ~crashes =
  {
    (Sim.default_config ~n ~seed) with
    Sim.gst = 300;
    horizon = 3000;
    tick_interval = 10;
    delay_before_gst = (1, 80);
    delay_after_gst = (1, 5);
    crashes;
  }

let test_heartbeat_detector_converges () =
  let config = hb_config ~seed:21 ~n:5 ~crashes:[ (4, 200) ] in
  let result =
    Sim.run config (Heartbeat.process ~n:5 ~initial_timeout:30 ~backoff:20)
  in
  let report = Heartbeat.analyze result ~config in
  check "completeness" true (report.Heartbeat.completeness_from <> None);
  check "accuracy (eventually strong)" true (report.Heartbeat.accuracy_from <> None)

let test_heartbeat_detector_converges_from_corruption () =
  for seed = 0 to 8 do
    let config = hb_config ~seed:(40 + seed) ~n:4 ~crashes:[ (3, 150) ] in
    let rng = Rng.create (seed + 900) in
    let corrupt _ t = Heartbeat.corrupt rng ~time_bound:10_000 ~timeout_bound:200 t in
    let result =
      Sim.run ~corrupt config (Heartbeat.process ~n:4 ~initial_timeout:30 ~backoff:20)
    in
    let report = Heartbeat.analyze result ~config in
    check
      (Printf.sprintf "corrupted start converges (seed %d)" seed)
      true
      (report.Heartbeat.completeness_from <> None && report.Heartbeat.accuracy_from <> None)
  done

(* --- Detector stack (no oracle anywhere) --- *)

let test_stack_clean () =
  let config = hb_config ~seed:5 ~n:5 ~crashes:[ (4, 200); (3, 700) ] in
  let result =
    Sim.run config (Detector_stack.process ~n:5 ~initial_timeout:30 ~backoff:20)
  in
  let report = Detector_stack.analyze result ~config in
  check "stack converges to ◇S" true (report.Detector_stack.convergence_time <> None)

let test_stack_with_both_layers_corrupted () =
  for seed = 0 to 8 do
    let config = hb_config ~seed:(60 + seed) ~n:5 ~crashes:[ (4, 150) ] in
    let rng = Rng.create (seed + 77) in
    let corrupt =
      Detector_stack.corrupt rng ~time_bound:10_000 ~timeout_bound:150 ~num_bound:5_000
    in
    let result =
      Sim.run ~corrupt config (Detector_stack.process ~n:5 ~initial_timeout:30 ~backoff:20)
    in
    let report = Detector_stack.analyze result ~config in
    check
      (Printf.sprintf "corrupted stack converges (seed %d)" seed)
      true
      (report.Detector_stack.convergence_time <> None)
  done

(* --- Terminating reliable broadcast --- *)

open Ftss_sync
open Ftss_core
open Ftss_protocols

let run_ft pi ~faults =
  let protocol = Canonical.to_protocol pi in
  let rounds = pi.Canonical.final_round in
  let trace = Runner.run ~faults ~rounds protocol in
  List.filter_map
    (fun p ->
      match Trace.state_after trace ~round:rounds p with
      | Some st -> Canonical.ft_decision pi st
      | None -> None)
    (Pid.all (Faults.n faults))

let test_trb_correct_sender_delivers () =
  let pi = Reliable_broadcast.make ~n:4 ~f:1 ~sender:2 ~value:99 in
  let outcomes = run_ft pi ~faults:(Faults.none 4) in
  check_int "everyone delivers" 4 (List.length outcomes);
  check "all deliver the value" true (List.for_all (fun o -> o = Some 99) outcomes)

let test_trb_crashed_sender_agreement () =
  (* Sender crashes before sending anything: everyone delivers ⊥. *)
  let pi = Reliable_broadcast.make ~n:4 ~f:1 ~sender:2 ~value:99 in
  let faults = Faults.of_events ~n:4 [ Faults.Crash { pid = 2; round = 1 } ] in
  let outcomes = run_ft pi ~faults in
  check "survivors agree on bottom" true (List.for_all (fun o -> o = None) outcomes)

let test_trb_omission_sender_agreement () =
  (* A sender that reveals its value to one process in the last round:
     the suspect filter forces a common outcome among correct processes. *)
  for seed = 0 to 30 do
    let rng = Rng.create (500 + seed) in
    let n = Rng.int_in rng 3 6 in
    let f = Rng.int_in rng 1 (max 1 (n - 2)) in
    let sender = Rng.int rng n in
    let pi = Reliable_broadcast.make ~n ~f ~sender ~value:7 in
    let faults =
      Faults.random_omission rng ~n ~f ~p_drop:0.6 ~rounds:pi.Canonical.final_round
    in
    let trace = Runner.run ~faults ~rounds:pi.Canonical.final_round (Canonical.to_protocol pi) in
    let correct_outcomes =
      List.filter_map
        (fun p ->
          if Pidset.mem p (Faults.faulty faults) then None
          else
            match Trace.state_after trace ~round:pi.Canonical.final_round p with
            | Some st -> Canonical.ft_decision pi st
            | None -> None)
        (Pid.all n)
    in
    (match correct_outcomes with
    | [] -> ()
    | first :: rest ->
      check
        (Printf.sprintf "agreement (seed %d)" seed)
        true
        (List.for_all (fun o -> o = first) rest));
    (* Validity: a correct sender's value is always delivered. *)
    if not (Pidset.mem sender (Faults.faulty faults)) then
      check
        (Printf.sprintf "validity (seed %d)" seed)
        true
        (List.for_all (fun o -> o = Some 7) correct_outcomes)
  done

let test_trb_compiles () =
  let n = 4 in
  let pi = Reliable_broadcast.make ~n ~f:1 ~sender:1 ~value:42 in
  let compiled = Compiler.compile ~n pi in
  let rng = Rng.create 11 in
  let corrupt =
    Compiler.corrupt rng ~pi ~n ~c_bound:500 ~corrupt_s:(fun rng _ s ->
        if Rng.bool rng then { s with Reliable_broadcast.relayed = Some (Rng.int rng 1000) }
        else s)
  in
  let trace = Runner.run ~corrupt ~faults:(Faults.none n) ~rounds:30 compiled in
  let valid = function Some 42 | None -> true | Some _ -> false in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  check "compiled TRB ftss-solves Σ⁺" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace)

let test_trb_rejects_bad_sender () =
  Alcotest.check_raises "bad sender"
    (Invalid_argument "Reliable_broadcast.make: sender out of range") (fun () ->
      ignore (Reliable_broadcast.make ~n:3 ~f:1 ~sender:3 ~value:0))

(* --- Ablation variants --- *)

let test_unfiltered_compiler_breaks_under_stale_messages () =
  (* The E8a scenario, as a regression test: plain flooding compiled
     without the suspect filter disagrees forever; with the filter it is
     fine. *)
  let n = 3 in
  let propose p = 50 + p in
  let pi = Flooding_consensus.make ~f:1 ~propose in
  let rounds = 30 in
  let faults =
    Faults.of_events ~n
      (Faults.Deaf { pid = 0; first = 1; last = rounds }
      :: List.concat_map
           (fun r ->
             Faults.Drop { src = 0; dst = 1; round = r }
             :: (if r mod pi.Canonical.final_round <> 0 then
                   [ Faults.Drop { src = 0; dst = 2; round = r } ]
                 else []))
           (List.init rounds (fun i -> i + 1)))
  in
  let corrupt p (st : _ Compiler.state) =
    if p = 0 then { st with Compiler.c = 5 } else st
  in
  let spec =
    Repeated.round_and_sigma ~final_round:pi.Canonical.final_round
      ~valid:(fun d -> d >= 50 && d < 53)
      ()
  in
  let run ~suspect_filter =
    let compiled = Compiler.compile ~suspect_filter ~n pi in
    let trace = Runner.run ~corrupt ~faults ~rounds compiled in
    Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace
  in
  check "with filter: Theorem 4 holds" true (run ~suspect_filter:true);
  check "without filter: broken" false (run ~suspect_filter:false)

let propose_async p i = 100 + (((p * 13) + (i * 7)) mod 50)

let run_style ?corrupt ?(noise = 0.2) ~style ~seed () =
  let n = 5 in
  let config =
    {
      (Sim.default_config ~n ~seed) with
      Sim.gst = 300;
      horizon = 4000;
      tick_interval = 10;
      delay_before_gst = (1, 60);
      delay_after_gst = (1, 4);
    }
  in
  let oracle =
    Ewfd.make (Rng.create (seed + 7)) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst
      ~trusted:1 ~noise
  in
  let result =
    Sim.run ?corrupt config (Consensus.process ~n ~style ~propose:propose_async ~oracle ())
  in
  (config, result)

let decided_after_gst (config, result) =
  Consensus.fully_decided_after (Consensus.decisions result)
    ~correct:(Sim.correct_set config) ~from:config.Sim.gst

let test_retransmit_only_dissolves_parked () =
  let parked = Consensus.corrupt_parked ~round:6 in
  let r =
    run_style ~corrupt:parked ~noise:0.0 ~style:Consensus.retransmit_only ~seed:9 ()
  in
  check "retransmission alone dissolves the parked deadlock" true (decided_after_gst r > 0)

let test_round_agreement_only_stays_parked () =
  let parked = Consensus.corrupt_parked ~round:6 in
  let r =
    run_style ~corrupt:parked ~noise:0.0 ~style:Consensus.round_agreement_only ~seed:9 ()
  in
  check_int "round agreement alone cannot dissolve the parked deadlock" 0
    (decided_after_gst r)

let test_all_styles_work_from_clean_state () =
  List.iter
    (fun style ->
      let r = run_style ~style ~seed:12 () in
      check "clean progress" true (decided_after_gst r > 0))
    Consensus.[ baseline; retransmit_only; round_agreement_only; self_stabilizing ]

(* --- Oracle-free consensus: the whole §3 stack on partial synchrony --- *)

let test_consensus_over_heartbeats () =
  (* No scripted detector anywhere: heartbeats implement ◇W, Figure 4
     lifts it to ◇S, and the self-stabilizing consensus runs on top —
     from a randomly corrupted state. *)
  let n = 5 in
  let config =
    {
      (Sim.default_config ~n ~seed:91) with
      Sim.gst = 300;
      horizon = 5000;
      tick_interval = 10;
      delay_before_gst = (1, 60);
      delay_after_gst = (1, 4);
      crashes = [ (4, 600) ];
    }
  in
  let rng = Rng.create 19 in
  let corrupt =
    Consensus.corrupt_random rng ~n ~instance_bound:15 ~round_bound:20 ~value_bound:90
  in
  let result =
    Sim.run ~corrupt config
      (Consensus.process_with ~n ~style:Consensus.self_stabilizing ~propose:propose_async
         ~detector:(Consensus.Heartbeats { initial_timeout = 30; backoff = 20 }) ())
  in
  let correct = Sim.correct_set config in
  match Consensus.stabilization_time result ~correct ~propose:propose_async ~n with
  | None -> Alcotest.fail "oracle-free consensus did not stabilize"
  | Some from ->
    check "oracle-free consensus does useful work" true
      (Consensus.fully_decided_after (Consensus.decisions result) ~correct ~from >= 2)

let test_consensus_over_heartbeats_many_seeds () =
  for seed = 0 to 5 do
    let n = 4 in
    let config =
      {
        (Sim.default_config ~n ~seed:(seed + 400)) with
        Sim.gst = 300;
        horizon = 4000;
        tick_interval = 10;
        delay_before_gst = (1, 60);
        delay_after_gst = (1, 4);
      }
    in
    let result =
      Sim.run config
        (Consensus.process_with ~n ~style:Consensus.self_stabilizing ~propose:propose_async
           ~detector:(Consensus.Heartbeats { initial_timeout = 30; backoff = 20 }) ())
    in
    let correct = Sim.correct_set config in
    let grouped = Consensus.per_instance (Consensus.decisions result) ~correct in
    check (Printf.sprintf "progress (seed %d)" seed) true (List.length grouped >= 3);
    Alcotest.(check (list int))
      (Printf.sprintf "agreement (seed %d)" seed)
      [] (Consensus.disagreements grouped)
  done

(* --- Spurious channel messages (the KP90 channel-corruption concern) --- *)

let test_ss_consensus_survives_forged_round_tags () =
  (* A systemic failure can leave junk in the channels too: plant forged
     ROUND heartbeats claiming an absurdly high (instance, round). The
     self-stabilizing protocol jumps there and simply continues from that
     point — useful work resumes at the forged instance. *)
  let n = 5 in
  let forged = { Consensus.instance = 5_000; round = 17 } in
  let spurious =
    List.map (fun p -> (5, 0, p, Consensus.forged_round forged)) (Pid.all n)
  in
  let config =
    {
      (Sim.default_config ~n ~seed:44) with
      Sim.gst = 300;
      horizon = 4000;
      tick_interval = 10;
      delay_before_gst = (1, 60);
      delay_after_gst = (1, 4);
    }
  in
  let oracle =
    Ewfd.make (Rng.create 51) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst ~trusted:1
      ~noise:0.2
  in
  let result =
    Sim.run ~spurious config
      (Consensus.process ~n ~style:Consensus.self_stabilizing ~propose:propose_async ~oracle ())
  in
  let correct = Sim.correct_set config in
  let ds = Consensus.decisions result in
  let high_instances = List.filter (fun d -> d.Consensus.d_instance >= 5_000) ds in
  check "work resumed beyond the forged tag" true (List.length high_instances > 0);
  let grouped = Consensus.per_instance ds ~correct in
  Alcotest.(check (list int)) "no disagreement anywhere" [] (Consensus.disagreements grouped)

let test_ss_consensus_survives_forged_decide () =
  (* A forged DECIDE with an illegal value for a far-future instance: the
     victims adopt it (it is indistinguishable from a legitimate
     decision), producing one invalid instance — and every later instance
     is clean again. *)
  let n = 5 in
  let spurious = [ (5, 0, 2, Consensus.forged_decide ~instance:900 ~value:(-1)) ] in
  let config =
    {
      (Sim.default_config ~n ~seed:45) with
      Sim.gst = 300;
      horizon = 4000;
      tick_interval = 10;
      delay_before_gst = (1, 60);
      delay_after_gst = (1, 4);
    }
  in
  let oracle =
    Ewfd.make (Rng.create 52) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst ~trusted:1
      ~noise:0.2
  in
  let result =
    Sim.run ~spurious config
      (Consensus.process ~n ~style:Consensus.self_stabilizing ~propose:propose_async ~oracle ())
  in
  let correct = Sim.correct_set config in
  match Consensus.stabilization_time result ~correct ~propose:propose_async ~n with
  | None -> Alcotest.fail "did not stabilize after the forged decide"
  | Some from ->
    check "useful work after the forgery" true
      (Consensus.fully_decided_after (Consensus.decisions result) ~correct ~from >= 1)

(* --- Repeated destabilization (rolling mute) --- *)

let test_rolling_mute_schedule_shape () =
  let faults = Faults.rolling_mute ~n:3 ~victim:2 ~period:4 ~rounds:20 in
  (* Silent in rounds 1-4, 9-12, 17-20; talking in 5-8, 13-16. *)
  check "silent at 1" true (Faults.drops faults ~round:1 ~src:2 ~dst:0);
  check "silent at 4" true (Faults.drops faults ~round:4 ~src:2 ~dst:0);
  check "talking at 5" false (Faults.drops faults ~round:5 ~src:2 ~dst:0);
  check "silent again at 9" true (Faults.drops faults ~round:9 ~src:2 ~dst:0);
  check "talking at 13" false (Faults.drops faults ~round:13 ~src:2 ~dst:0);
  check "receives unaffected" false (Faults.drops faults ~round:1 ~src:0 ~dst:2)

let test_round_agreement_under_repeated_destabilization () =
  (* The coterie is monotone, so only the victim's *first* reveal is a
     destabilizing event; every later mute/talk cycle must be absorbed
     with the spec intact (the victim is faulty and exempt, but its
     reappearing messages must not perturb the correct processes). *)
  for period = 2 to 6 do
    let n = 4 in
    let rounds = 8 * period in
    let faults = Faults.rolling_mute ~n ~victim:(n - 1) ~period ~rounds in
    let corrupt p c = c + (p * 1000) in
    let trace = Runner.run ~corrupt ~faults ~rounds Round_agreement.protocol in
    let windows = Solve.stable_windows trace in
    check (Printf.sprintf "multiple stable windows (period %d)" period) true
      (List.length windows >= 3);
    check
      (Printf.sprintf "ftss across repeated destabilizations (period %d)" period)
      true
      (Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace)
  done

let test_compiled_consensus_under_repeated_destabilization () =
  let n = 4 and f = 1 in
  let propose p = 50 + p in
  let pi = Omission_consensus.make ~n ~f ~propose in
  let valid d = d >= 50 && d < 50 + n in
  let compiled = Compiler.compile ~n pi in
  let rounds = 60 in
  let faults = Faults.rolling_mute ~n ~victim:(n - 1) ~period:7 ~rounds in
  let rng = Rng.create 5 in
  let corrupt =
    Compiler.corrupt rng ~pi ~n ~c_bound:1000 ~corrupt_s:(fun rng p s ->
        Omission_consensus.corrupt_state rng ~n ~value_bound:49 p s)
  in
  let trace = Runner.run ~corrupt ~faults ~rounds compiled in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  check "Theorem 4 across repeated destabilizations" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace)

(* --- Drift round agreement (synchronous, not perfectly synchronized) --- *)

let drift_config ~seed ~n ~crashes =
  {
    (Sim.default_config ~n ~seed) with
    (* Always-synchronous but imperfect: bounded delays below the local
       round length, staggered phases; no GST regime change. *)
    Sim.gst = 0;
    horizon = 2000;
    tick_interval = 10;
    delay_before_gst = (1, 8);
    delay_after_gst = (1, 8);
    crashes;
  }

let test_drift_converges_from_corruption () =
  for seed = 0 to 10 do
    let config = drift_config ~seed:(seed + 70) ~n:5 ~crashes:[] in
    let rng = Rng.create (seed + 7) in
    let result =
      Sim.run ~corrupt:(Drift.corrupt rng ~bound:1_000_000) config Drift.process
    in
    let report = Drift.analyze result ~config in
    check
      (Printf.sprintf "neighbourhood agreement (seed %d)" seed)
      true
      (report.Drift.converged_from <> None);
    check
      (Printf.sprintf "final spread within bound (seed %d)" seed)
      true
      (report.Drift.final_spread <= Drift.spread_bound config)
  done

let test_drift_tolerates_crashes () =
  let config = drift_config ~seed:3 ~n:5 ~crashes:[ (4, 300); (0, 900) ] in
  let rng = Rng.create 17 in
  let result = Sim.run ~corrupt:(Drift.corrupt rng ~bound:5_000) config Drift.process in
  let report = Drift.analyze result ~config in
  check "survivors reach neighbourhood agreement" true (report.Drift.converged_from <> None)

(* --- Compiler corner cases --- *)

let test_compiler_final_round_one () =
  (* fr = 1: every round is an iteration boundary; the compiled protocol
     degenerates gracefully (constant resets, round agreement intact). *)
  let n = 3 in
  let pi =
    {
      Canonical.name = "echo";
      final_round = 1;
      s_init = (fun p -> p);
      transition = (fun _ s _ _ -> s);
      decide = (fun s -> Some s);
    }
  in
  let rng = Rng.create 77 in
  let corrupt = Compiler.corrupt rng ~pi ~n ~c_bound:100 ~corrupt_s:(fun _ _ s -> s) in
  let trace = Runner.run ~corrupt ~faults:(Faults.none n) ~rounds:10 (Compiler.compile ~n pi) in
  check "round agreement ftss with fr=1" true
    (Solve.ftss_solves (Compiler.round_spec ()) ~stabilization:1 trace);
  (* Every process completes an iteration every round. *)
  let cs = Repeated.completions trace in
  check "one completion per process per round (after round 1)" true
    (List.length cs >= n * 8)

let test_compiled_consensus_with_crashes () =
  (* Crashes mid-run: sigma_plus exempts the dead; survivors keep
     agreeing. *)
  let n = 5 and f = 2 in
  let propose p = 50 + p in
  let pi = Omission_consensus.make ~n ~f ~propose in
  let valid d = d >= 50 && d < 50 + n in
  let faults =
    Faults.of_events ~n
      [ Faults.Crash { pid = 4; round = 7 }; Faults.Crash { pid = 3; round = 19 } ]
  in
  let trace = Runner.run ~faults ~rounds:40 (Compiler.compile ~n pi) in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  check "Theorem 4 with crash faults" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace);
  check "trace records both crashes" true (Pidset.cardinal (Trace.crashed trace) = 2)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "heartbeat-fd",
      [
        tc "pure machine: suspicion and backoff" `Quick test_heartbeat_pure_machine;
        tc "future corruption clamped" `Quick test_heartbeat_future_corruption_clamped;
        tc "converges in partial synchrony" `Quick test_heartbeat_detector_converges;
        tc "converges from corruption" `Quick test_heartbeat_detector_converges_from_corruption;
      ] );
    ( "detector-stack",
      [
        tc "clean stack reaches ◇S" `Quick test_stack_clean;
        tc "both layers corrupted still reaches ◇S" `Quick test_stack_with_both_layers_corrupted;
      ] );
    ( "reliable-broadcast",
      [
        tc "correct sender delivers everywhere" `Quick test_trb_correct_sender_delivers;
        tc "crashed sender: common bottom" `Quick test_trb_crashed_sender_agreement;
        tc "omission sender: agreement + validity" `Quick test_trb_omission_sender_agreement;
        tc "compiles to a self-stabilizing channel" `Quick test_trb_compiles;
        tc "rejects bad sender" `Quick test_trb_rejects_bad_sender;
      ] );
    ( "ablations",
      [
        tc "suspect filter is load-bearing (E8a)" `Quick test_unfiltered_compiler_breaks_under_stale_messages;
        tc "retransmit-only dissolves parked" `Quick test_retransmit_only_dissolves_parked;
        tc "round-agreement-only stays parked" `Quick test_round_agreement_only_stays_parked;
        tc "all styles work from clean state" `Quick test_all_styles_work_from_clean_state;
      ] );
    ( "oracle-free-consensus",
      [
        tc "recovers from corruption with a crash" `Quick test_consensus_over_heartbeats;
        tc "agreement across seeds" `Quick test_consensus_over_heartbeats_many_seeds;
      ] );
    ( "channel-corruption",
      [
        tc "forged round tags survived" `Quick test_ss_consensus_survives_forged_round_tags;
        tc "forged decide survived" `Quick test_ss_consensus_survives_forged_decide;
      ] );
    ( "compiler-corners",
      [
        tc "final_round = 1" `Quick test_compiler_final_round_one;
        tc "crashes mid-run" `Quick test_compiled_consensus_with_crashes;
      ] );
    ( "drift-round-agreement",
      [
        tc "converges from corruption" `Quick test_drift_converges_from_corruption;
        tc "tolerates crashes" `Quick test_drift_tolerates_crashes;
      ] );
    ( "repeated-destabilization",
      [
        tc "rolling mute schedule shape" `Quick test_rolling_mute_schedule_shape;
        tc "round agreement across reveals" `Quick test_round_agreement_under_repeated_destabilization;
        tc "compiled consensus across reveals" `Quick test_compiled_consensus_under_repeated_destabilization;
      ] );
  ]
