(* Unit tests for the synchronous substrate: fault schedules, the lockstep
   runner, trace recording and sub-histories. *)

open Ftss_util
open Ftss_sync

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A protocol that accumulates the set of pids heard from, ever. *)
let gossip : (Pidset.t, Pidset.t) Protocol.t =
  {
    Protocol.name = "gossip";
    init = (fun p -> Pidset.singleton p);
    broadcast = (fun _ s -> s);
    step =
      (fun _ s deliveries ->
        List.fold_left
          (fun acc { Protocol.src; payload } -> Pidset.add src (Pidset.union acc payload))
          s deliveries);
  }

let counter : (int, int) Protocol.t =
  {
    Protocol.name = "counter";
    init = (fun _ -> 0);
    broadcast = (fun _ c -> c);
    step = (fun _ c _ -> c + 1);
  }

let state_exn trace ~round p =
  match Trace.state_before trace ~round p with
  | Some s -> s
  | None -> Alcotest.fail "process unexpectedly crashed"

let final_state_exn trace p =
  match Trace.state_after trace ~round:(Trace.length trace) p with
  | Some s -> s
  | None -> Alcotest.fail "process unexpectedly crashed"

let test_failure_free_gossip () =
  let trace = Runner.run ~faults:(Faults.none 4) ~rounds:3 gossip in
  (* After one round everyone has heard everyone. *)
  List.iter
    (fun p ->
      check "full knowledge after round 1" true
        (Pidset.equal (Pidset.full 4) (state_exn trace ~round:2 p)))
    (Pid.all 4)

let test_self_delivery_not_droppable () =
  (* Even a fully isolated process keeps receiving its own broadcast. *)
  let faults = Faults.of_events ~n:3 [ Faults.Isolate { pid = 2; first = 1; last = 5 } ] in
  let trace = Runner.run ~faults ~rounds:5 gossip in
  check "isolated process still knows itself" true
    (Pidset.mem 2 (final_state_exn trace 2));
  check "isolated process learned nothing else" true
    (Pidset.equal (Pidset.singleton 2) (final_state_exn trace 2));
  check "others never heard the isolated process" true
    (not (Pidset.mem 2 (final_state_exn trace 0)))

let test_crash_semantics () =
  let faults = Faults.of_events ~n:3 [ Faults.Crash { pid = 1; round = 2 } ] in
  let trace = Runner.run ~faults ~rounds:4 counter in
  check "alive before crash" true (Trace.alive trace ~round:1 1);
  check "dead at crash round" false (Trace.alive trace ~round:2 1);
  check "state is None after crash" true (Trace.state_before trace ~round:3 1 = None);
  (* The crashed process broadcast in round 1 but not in round 2. *)
  let r1 = Trace.record trace ~round:1 and r2 = Trace.record trace ~round:2 in
  check "sent in round 1" true (r1.Trace.sent.(1) <> None);
  check "silent in round 2" true (r2.Trace.sent.(1) = None)

let test_crash_in_round_1_means_no_participation () =
  let faults = Faults.of_events ~n:2 [ Faults.Crash { pid = 0; round = 1 } ] in
  let trace = Runner.run ~faults ~rounds:2 gossip in
  check "other never hears crashed" true
    (not (Pidset.mem 0 (final_state_exn trace 1)))

let test_drop_is_directional () =
  let faults = Faults.of_events ~n:2 [ Faults.Drop { src = 0; dst = 1; round = 1 } ] in
  let trace = Runner.run ~faults ~rounds:1 gossip in
  let r = Trace.record trace ~round:1 in
  let senders_to p =
    List.map (fun { Protocol.src; _ } -> src) r.Trace.delivered.(p)
  in
  check "1 did not hear 0" true (not (List.mem 0 (senders_to 1)));
  check "0 heard 1" true (List.mem 1 (senders_to 0));
  check_int "omission recorded" 1 (List.length trace.Trace.omissions)

let test_mute_deaf_isolate () =
  let n = 3 in
  let muted = Faults.of_events ~n [ Faults.Mute { pid = 0; first = 1; last = 2 } ] in
  check "mute drops sends" true (Faults.drops muted ~round:1 ~src:0 ~dst:1);
  check "mute does not drop receives" false (Faults.drops muted ~round:1 ~src:1 ~dst:0);
  check "mute expires" false (Faults.drops muted ~round:3 ~src:0 ~dst:1);
  let deaf = Faults.of_events ~n [ Faults.Deaf { pid = 0; first = 1; last = 2 } ] in
  check "deaf drops receives" true (Faults.drops deaf ~round:2 ~src:1 ~dst:0);
  check "deaf does not drop sends" false (Faults.drops deaf ~round:2 ~src:0 ~dst:1);
  let iso = Faults.of_events ~n [ Faults.Isolate { pid = 0; first = 1; last = 2 } ] in
  check "isolate drops both" true
    (Faults.drops iso ~round:1 ~src:0 ~dst:1 && Faults.drops iso ~round:1 ~src:1 ~dst:0)

let test_self_message_never_dropped_by_schedule () =
  let faults = Faults.of_events ~n:2 [ Faults.Isolate { pid = 0; first = 1; last = 9 } ] in
  check "self message survives isolation" false (Faults.drops faults ~round:1 ~src:0 ~dst:0)

let test_declared_faulty_covers_events () =
  let faults =
    Faults.of_events ~n:4
      [
        Faults.Crash { pid = 0; round = 3 };
        Faults.Mute { pid = 1; first = 1; last = 2 };
        Faults.Drop { src = 2; dst = 3; round = 1 };
      ]
  in
  check "crashed declared" true (Pidset.mem 0 (Faults.faulty faults));
  check "muted declared" true (Pidset.mem 1 (Faults.faulty faults));
  check "drop sender declared" true (Pidset.mem 2 (Faults.faulty faults));
  check_int "f counts declared set" 3 (Faults.f faults)

let test_observed_faulty_subset_of_declared () =
  let rng = Rng.create 99 in
  let faults = Faults.random_omission rng ~n:6 ~f:2 ~p_drop:0.5 ~rounds:10 in
  let trace = Runner.run ~faults ~rounds:10 gossip in
  check "trace blames only declared-faulty processes" true (Trace.blames_declared trace);
  check "crashes covered by declared set" true
    (Faults.consistent faults ~observed:(Trace.crashed trace))

let test_random_omission_spares_correct_links () =
  let rng = Rng.create 4 in
  let faults = Faults.random_omission rng ~n:5 ~f:2 ~p_drop:1.0 ~rounds:5 in
  let correct = Faults.correct faults in
  Pidset.iter
    (fun p ->
      Pidset.iter
        (fun q ->
          if not (Pid.equal p q) then
            check "correct-correct link reliable" false
              (Faults.drops faults ~round:3 ~src:p ~dst:q))
        correct)
    correct

let test_corruption_applies_at_round_1 () =
  let trace =
    Runner.run
      ~corrupt:(fun p _ -> Pidset.of_list [ p; 61 ])
      ~faults:(Faults.none 2) ~rounds:1 gossip
  in
  check "corrupted state visible in round 1" true
    (Pidset.mem 61 (state_exn trace ~round:1 0))

let test_corrupt_at_mid_run () =
  let trace =
    Runner.run
      ~corrupt_at:[ (3, fun _ _ -> 100) ]
      ~faults:(Faults.none 2) ~rounds:5 counter
  in
  check_int "counter reset mid-run" 100 (state_exn trace ~round:3 0);
  check_int "counts on from injected value" 102 (state_exn trace ~round:5 0)

let test_sub_trace () =
  let faults = Faults.of_events ~n:3 [ Faults.Crash { pid = 2; round = 4 } ] in
  let trace = Runner.run ~faults ~rounds:6 counter in
  let sub = Trace.sub trace ~first:3 ~last:5 in
  check_int "length" 3 (Trace.length sub);
  check_int "renumbered rounds" 1 (Trace.record sub ~round:1).Trace.round;
  check_int "states preserved" 2 (state_exn sub ~round:1 0);
  (* Crash at original round 4 becomes round 2 of the sub-trace. *)
  check "alive at sub round 1" true (Trace.alive sub ~round:1 2);
  check "crashed at sub round 2" false (Trace.alive sub ~round:2 2)

let test_sub_trace_bad_interval_raises () =
  let trace = Runner.run ~faults:(Faults.none 2) ~rounds:3 counter in
  Alcotest.check_raises "empty interval" (Invalid_argument "Trace.sub: empty interval")
    (fun () -> ignore (Trace.sub trace ~first:3 ~last:2))

let test_runner_rejects_zero_rounds () =
  Alcotest.check_raises "rounds < 1" (Invalid_argument "Runner.run: rounds < 1")
    (fun () -> ignore (Runner.run ~faults:(Faults.none 2) ~rounds:0 counter))

let test_pp_rounds_renders () =
  let faults = Faults.of_events ~n:3 [ Faults.Crash { pid = 2; round = 2 } ] in
  let trace = Runner.run ~faults ~rounds:3 counter in
  let s = Format.asprintf "%a" (Trace.pp_rounds Format.pp_print_int) trace in
  check "mentions every round" true
    (List.for_all (fun r -> String.length s > 0 && String.length r > 0) [ "r1"; "r2"; "r3" ]);
  (* The crashed process is marked. *)
  check "marks the crash" true
    (String.split_on_char '!' s |> List.length > 1)

let test_deliveries_ordered_by_sender () =
  let trace = Runner.run ~faults:(Faults.none 5) ~rounds:1 gossip in
  let r = Trace.record trace ~round:1 in
  let senders = List.map (fun { Protocol.src; _ } -> src) r.Trace.delivered.(3) in
  check "sorted" true (senders = List.sort compare senders)

(* Properties. *)

let prop_failure_free_counter_lockstep =
  QCheck.Test.make ~name:"failure-free counter stays in lockstep" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 20))
    (fun (n, rounds) ->
      let trace = Runner.run ~faults:(Faults.none n) ~rounds counter in
      List.for_all
        (fun p -> state_exn trace ~round:rounds p = rounds - 1)
        (Pid.all n))

let prop_gossip_monotone =
  QCheck.Test.make ~name:"gossip knowledge only grows" ~count:50
    QCheck.(triple (int_range 2 6) (int_range 2 10) small_nat)
    (fun (n, rounds, seed) ->
      let rng = Rng.create seed in
      let faults = Faults.random_omission rng ~n ~f:(n / 2) ~p_drop:0.4 ~rounds in
      let trace = Runner.run ~faults ~rounds gossip in
      List.for_all
        (fun p ->
          let rec mono r =
            if r >= rounds then true
            else
              match (Trace.state_before trace ~round:r p, Trace.state_before trace ~round:(r + 1) p) with
              | Some a, Some b -> Pidset.subset a b && mono (r + 1)
              | _ -> true
          in
          mono 1)
        (Pid.all n))

(* --- Trace.sub boundary remapping --- *)

let sub_fixture () =
  (* 8 rounds, p2 crashes at round 4, scattered omissions on p1's links
     (p1 declared faulty). *)
  let n = 3 in
  let faults =
    Faults.of_events ~n
      [
        Faults.Crash { pid = 2; round = 4 };
        Faults.Drop { src = 1; dst = 0; round = 2 };
        Faults.Drop { src = 1; dst = 0; round = 5 };
        Faults.Drop { src = 0; dst = 1; round = 7 };
      ]
  in
  Runner.run ~faults ~rounds:8 counter

let test_sub_crash_before_window () =
  (* Crash round 4 < window 6..8: the process enters the window already
     dead, so its remapped crash round clamps to 1. *)
  let s = Trace.sub (sub_fixture ()) ~first:6 ~last:8 in
  check_int "clamped crash round" 1
    (match s.Trace.crashed_at.(2) with Some r -> r | None -> -1);
  check "still observed crashed" true (Pidset.mem 2 (Trace.crashed s));
  check "no state once crashed" true (Trace.state_before s ~round:1 2 = None)

let test_sub_crash_inside_window () =
  (* Crash round 4 within window 3..8 remaps to 4 - 3 + 1 = 2. *)
  let s = Trace.sub (sub_fixture ()) ~first:3 ~last:8 in
  check_int "remapped crash round" 2
    (match s.Trace.crashed_at.(2) with Some r -> r | None -> -1);
  check "alive before the remapped round" true (Trace.alive s ~round:1 2);
  check "dead from the remapped round" false (Trace.alive s ~round:2 2)

let test_sub_crash_after_window () =
  (* Crash round 4 > window 1..3: inside the sub-history the process
     never crashes. *)
  let s = Trace.sub (sub_fixture ()) ~first:1 ~last:3 in
  check "crash erased" true (s.Trace.crashed_at.(2) = None);
  check "not observed crashed in the window" false (Pidset.mem 2 (Trace.crashed s));
  (* The *declared* faulty set is the schedule's — sub keeps it. *)
  check "still declared faulty" false (Pidset.mem 2 (Trace.correct s));
  check "alive through the window" true (Trace.alive s ~round:3 2)

let test_sub_omission_filtering () =
  let t = sub_fixture () in
  (* Window 4..6 keeps only the round-5 drop, renumbered to round 2. *)
  let s = Trace.sub t ~first:4 ~last:6 in
  Alcotest.(check (list (triple int int int)))
    "only in-window omissions, renumbered"
    [ (2, 1, 0) ] s.Trace.omissions;
  (* Window 1..2 keeps only the round-2 drop. *)
  let s = Trace.sub t ~first:1 ~last:2 in
  Alcotest.(check (list (triple int int int)))
    "prefix omissions unchanged"
    [ (2, 1, 0) ] s.Trace.omissions;
  (* A window between the drops records none. *)
  let s = Trace.sub t ~first:3 ~last:4 in
  check_int "no omissions in a quiet window" 0 (List.length s.Trace.omissions);
  (* The declared faulty set is the schedule's, not the window's. *)
  check "declared faulty preserved" true (Pidset.mem 1 s.Trace.declared_faulty)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp_summary_and_rounds () =
  let t = sub_fixture () in
  let summary = Format.asprintf "%a" Trace.pp_summary t in
  List.iter
    (fun needle ->
      check (Printf.sprintf "summary mentions %S" needle) true (contains summary needle))
    [ "counter"; "n=3"; "rounds=8"; "omissions=3" ];
  let rounds = Format.asprintf "%a" (Trace.pp_rounds Format.pp_print_int) t in
  let lines = String.split_on_char '\n' rounds in
  check "one line per round" true (List.length lines >= 8);
  (* The crash marker appears once p2 is dead. *)
  check "crash marker printed" true (contains rounds "!")

(* --- Golden determinism: seeded executions pinned to the digests the
   pre-overhaul (defensively-copying, Marshal-fingerprinting) engine
   produced, so any behavioural drift in the runner hot path fails
   loudly rather than silently shifting every downstream result. --- *)

let md5 s = Digest.to_hex (Digest.string s)

let omissions_string t =
  String.concat ";"
    (List.map (fun (r, s, d) -> Printf.sprintf "%d,%d,%d" r s d) t.Trace.omissions)

let test_golden_counter () =
  let faults =
    Faults.of_events ~n:3
      [
        Faults.Crash { pid = 2; round = 4 };
        Faults.Drop { src = 1; dst = 0; round = 2 };
        Faults.Drop { src = 1; dst = 0; round = 5 };
        Faults.Drop { src = 0; dst = 1; round = 7 };
      ]
  in
  let t = Runner.run ~faults ~rounds:8 counter in
  let rendered = Format.asprintf "%a" (Trace.pp_rounds Format.pp_print_int) t in
  check_int "rendered length" 381 (String.length rendered);
  Alcotest.(check string) "pp_rounds digest" "25cb1776676e826558f01aa009b8e943"
    (md5 rendered);
  Alcotest.(check string) "summary"
    "counter: n=3 rounds=8 faulty={p1,p2} omissions=3"
    (Format.asprintf "%a" Trace.pp_summary t);
  Alcotest.(check string) "omissions" "2,1,0;5,1,0;7,0,1" (omissions_string t);
  (* The content hash is a pure function of the execution: re-running the
     same schedule reproduces it, and [sub] recomputes a consistent one. *)
  let t' = Runner.run ~faults ~rounds:8 counter in
  check_int "hash deterministic" (Trace.hash t) (Trace.hash t');
  check "sub changes the hash of a strict sub-history" true
    (Trace.hash (Trace.sub t ~first:2 ~last:6) <> Trace.hash t)

let test_golden_gossip () =
  let faults =
    Faults.of_events ~n:4
      [
        Faults.Isolate { pid = 3; first = 2; last = 4 };
        Faults.Drop { src = 0; dst = 2; round = 1 };
      ]
  in
  let t = Runner.run ~faults ~rounds:5 gossip in
  List.iter
    (fun p ->
      Alcotest.(check string)
        (Printf.sprintf "final state of p%d" p)
        "{p0,p1,p2,p3}"
        (match Trace.state_after t ~round:5 p with
        | Some s -> Pidset.to_string s
        | None -> "crashed"))
    (Pid.all 4);
  Alcotest.(check string) "omissions"
    "1,0,2;2,3,0;2,3,1;2,3,2;2,0,3;2,1,3;2,2,3;3,3,0;3,3,1;3,3,2;3,0,3;3,1,3;3,2,3;4,3,0;4,3,1;4,3,2;4,0,3;4,1,3;4,2,3"
    (omissions_string t)

(* --- Faults across the table-representation switch: [precompile]
   emits single-int rows up to 62 processes and multi-word rows beyond;
   the two must be observationally identical to the query path. --- *)

let faults_at_width n =
  let rounds = 5 in
  List.for_all
    (fun seed ->
      let rng = Rng.create seed in
      let t = Faults.random_omission rng ~n ~f:3 ~p_drop:0.5 ~rounds in
      let faulty = Faults.faulty t and correct = Faults.correct t in
      (* correct is exactly the complement of faulty in the universe. *)
      Pidset.equal correct (Pidset.diff (Pidset.full n) faulty)
      && Pidset.cardinal correct + Pidset.cardinal faulty = n
      && Pidset.disjoint correct faulty
      && (let tbl = Faults.precompile t ~rounds in
          (* Differential: the table agrees with the query path on every
             link with a faulty endpoint (the only links that can drop)
             and on a stride of correct-correct links. *)
          let agree ~round ~src ~dst =
            Faults.table_drops tbl ~round ~src ~dst
            = Faults.drops t ~round ~src ~dst
          in
          let ok = ref true in
          for round = 1 to rounds do
            Pidset.iter
              (fun p ->
                List.iter
                  (fun q ->
                    if not (agree ~round ~src:p ~dst:q) then ok := false;
                    if not (agree ~round ~src:q ~dst:p) then ok := false)
                  (Pid.all n))
              faulty;
            (* quiet_round iff no query in the round drops. *)
            let any = ref false in
            Pidset.iter
              (fun p ->
                List.iter
                  (fun q ->
                    if
                      Faults.drops t ~round ~src:p ~dst:q
                      || Faults.drops t ~round ~src:q ~dst:p
                    then any := true)
                  (Pid.all n))
              faulty;
            if Faults.quiet_round tbl ~round <> not !any then ok := false
          done;
          !ok))
    [ 7; 21; 908 ]

let test_faults_widths () =
  List.iter
    (fun n ->
      check (Printf.sprintf "faults tables at n=%d" n) true (faults_at_width n))
    [ 61; 62; 63; 200 ]

(* --- Trace.hash pins: values captured from the pre-width-overhaul
   engine (one-word Pidset, single-int fault rows). The width-polymorphic
   Pidset keeps small sets as immediate ints precisely so that these
   structural hashes — and with them every golden digest downstream —
   are bit-identical for all n <= 61 universes and for one-word-sized
   sets inside larger ones. --- *)

let test_trace_hash_pins () =
  let open Ftss_core in
  let pin name expected h =
    Alcotest.(check string) name (Printf.sprintf "0x%x" expected) (Printf.sprintf "0x%x" h)
  in
  List.iter
    (fun (n, expected) ->
      let t = Runner.run ~faults:(Faults.none n) ~rounds:4 Round_agreement.protocol in
      pin (Printf.sprintf "round agreement n=%d clean" n) expected (Trace.hash t))
    [
      (3, 0x1d8b35108af0f0f);
      (16, 0x27648fb334272661);
      (61, 0xdac479ff9991004);
      (62, 0x2a88eb15526b05c6);
    ];
  let faults =
    Faults.of_events ~n:5
      [
        Faults.Crash { pid = 1; round = 2 };
        Faults.Mute { pid = 3; first = 1; last = 2 };
        Faults.Drop { src = 0; dst = 2; round = 1 };
      ]
  in
  let t =
    Runner.run
      ~corrupt:(fun p c -> c + (97 * (p + 1)))
      ~faults ~rounds:5 Round_agreement.protocol
  in
  pin "round agreement n=5 corrupt+faults" 0xea8038d455e64d4 (Trace.hash t);
  let n = 4 in
  let pi = Ftss_protocols.Omission_consensus.make ~n ~f:1 ~propose:(fun p -> 50 + p) in
  let compiled = Compiler.compile ~n pi in
  let t = Runner.run ~faults:(Faults.none n) ~rounds:6 compiled in
  pin "compiled consensus n=4 clean" 0x265eb86be14ed56c (Trace.hash t)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sync",
      [
        tc "failure-free gossip floods in one round" `Quick test_failure_free_gossip;
        tc "self delivery survives isolation" `Quick test_self_delivery_not_droppable;
        tc "crash semantics" `Quick test_crash_semantics;
        tc "crash in round 1" `Quick test_crash_in_round_1_means_no_participation;
        tc "drop is directional and recorded" `Quick test_drop_is_directional;
        tc "mute/deaf/isolate" `Quick test_mute_deaf_isolate;
        tc "schedule cannot drop self messages" `Quick test_self_message_never_dropped_by_schedule;
        tc "declared faulty covers events" `Quick test_declared_faulty_covers_events;
        tc "observed faulty within declared" `Quick test_observed_faulty_subset_of_declared;
        tc "random omission spares correct links" `Quick test_random_omission_spares_correct_links;
        tc "sub remaps crash before window" `Quick test_sub_crash_before_window;
        tc "sub remaps crash inside window" `Quick test_sub_crash_inside_window;
        tc "sub erases crash after window" `Quick test_sub_crash_after_window;
        tc "sub filters and renumbers omissions" `Quick test_sub_omission_filtering;
        tc "pp_summary and pp_rounds" `Quick test_pp_summary_and_rounds;
        tc "corruption applies at round 1" `Quick test_corruption_applies_at_round_1;
        tc "mid-run corruption" `Quick test_corrupt_at_mid_run;
        tc "sub-trace" `Quick test_sub_trace;
        tc "sub-trace rejects empty interval" `Quick test_sub_trace_bad_interval_raises;
        tc "runner rejects zero rounds" `Quick test_runner_rejects_zero_rounds;
        tc "deliveries ordered by sender" `Quick test_deliveries_ordered_by_sender;
        tc "pp_rounds renders" `Quick test_pp_rounds_renders;
        tc "golden: counter under crash+drops" `Quick test_golden_counter;
        tc "golden: gossip under isolation" `Quick test_golden_gossip;
        tc "faults tables across the width switch" `Quick test_faults_widths;
        tc "golden: Trace.hash pinned across the Pidset overhaul" `Quick
          test_trace_hash_pins;
        QCheck_alcotest.to_alcotest prop_failure_free_counter_lockstep;
        QCheck_alcotest.to_alcotest prop_gossip_monotone;
      ] );
  ]
