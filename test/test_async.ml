(* Tests for the asynchronous substrate: the event engine, the ◇W oracle,
   the Figure-4 ◇S transform (Theorem 5) and repeated consensus (§3),
   including the baseline-deadlock vs self-stabilizing-recovery contrast. *)

open Ftss_util
open Ftss_async

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Event queue --- *)

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "c";
  Event_queue.push q ~time:1 "a";
  Event_queue.push q ~time:3 "b";
  Alcotest.(check (option (pair int string))) "first" (Some (1, "a")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "second" (Some (3, "b")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "third" (Some (5, "c")) (Event_queue.pop q);
  check "empty" true (Event_queue.pop q = None)

let test_queue_ties_resolve_by_insertion () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.push q ~time:7 s) [ "x"; "y"; "z" ];
  let drained = List.init 3 (fun _ -> Option.get (Event_queue.pop q) |> snd) in
  Alcotest.(check (list string)) "FIFO within a time" [ "x"; "y"; "z" ] drained

let test_queue_interleaved_operations () =
  let q = Event_queue.create () in
  for i = 100 downto 1 do
    Event_queue.push q ~time:i i
  done;
  check_int "size" 100 (Event_queue.size q);
  check_int "peek" 1 (Option.get (Event_queue.peek_time q));
  let rec drain last n =
    match Event_queue.pop q with
    | None -> n
    | Some (t, _) ->
      check "non-decreasing" true (t >= last);
      drain t (n + 1)
  in
  check_int "drains all" 100 (drain 0 0)

let test_queue_rejects_negative_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.push: negative time")
    (fun () -> Event_queue.push q ~time:(-1) ())

(* --- Differential suite: calendar queue vs. the reference heap ---

   The Reference module is the seed binary heap; the calendar queue must
   produce the identical (time, payload) stream on every schedule that
   exercises its structural cases: same-time FIFO runs, epoch rollover,
   overflow promotion, pushes into the past (window rewind), clear and
   reuse. Payloads are unique ints so FIFO order within a time is pinned
   exactly, not just up to time. *)

let drain_both q r =
  let rec loop acc =
    match (Event_queue.pop q, Event_queue.Reference.pop r) with
    | None, None -> List.rev acc
    | Some (t, v), Some (t', v') ->
      Alcotest.(check (pair int int)) "pop agrees" (t', v') (t, v);
      loop ((t, v) :: acc)
    | Some _, None -> Alcotest.fail "calendar has events the heap lacks"
    | None, Some _ -> Alcotest.fail "heap has events the calendar lacks"
  in
  loop []

let test_queue_differential_random () =
  (* Interleaved push/pop across several rngs and scales, with times
     spanning far past the initial window so rollover, overflow and
     bucket growth all trigger; a mid-run drain-to-empty exercises the
     epoch jump, and each queue pair is cleared and reused once. *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let q = Event_queue.create ~initial_capacity:16 () in
      let r = Event_queue.Reference.create () in
      let now = ref 0 in
      for round = 0 to 1 do
        for i = 0 to 2_000 do
          (* Mostly future pushes; occasionally land exactly at [now] or
             behind it (legal: only negative absolute time is rejected),
             which drives the rewind path. *)
          let time =
            match Rng.int rng 10 with
            | 0 -> max 0 (!now - Rng.int rng 50)
            | 1 -> !now + Rng.int rng 10_000 (* deep overflow *)
            | _ -> !now + Rng.int rng 300
          in
          let v = (round * 1_000_000) + i in
          Event_queue.push q ~time v;
          Event_queue.Reference.push r ~time v;
          if Rng.int rng 3 = 0 then begin
            match (Event_queue.pop q, Event_queue.Reference.pop r) with
            | Some (t, a), Some (t', b) ->
              Alcotest.(check (pair int int)) "interleaved pop" (t', b) (t, a);
              now := t
            | _ -> Alcotest.fail "queues diverged on emptiness"
          end
        done;
        check_int "sizes agree" (Event_queue.Reference.size r) (Event_queue.size q);
        ignore (drain_both q r);
        now := 0;
        (* Round 2 runs on the cleared arena. *)
        Event_queue.clear q
      done)
    [ 7; 19; 233 ]

let test_queue_differential_same_time_runs () =
  (* Bursts of equal timestamps interleaved with pops: FIFO within each
     time must match the heap's insertion-sequence order exactly. *)
  let rng = Rng.create 5 in
  let q = Event_queue.create () in
  let r = Event_queue.Reference.create () in
  let v = ref 0 in
  for _ = 0 to 200 do
    let t = Rng.int rng 40 in
    for _ = 0 to Rng.int rng 8 do
      incr v;
      Event_queue.push q ~time:t !v;
      Event_queue.Reference.push r ~time:t !v
    done
  done;
  ignore (drain_both q r)

let test_queue_differential_epoch_rollover () =
  (* A strictly advancing hold pattern that walks the window over many
     epochs, repeatedly promoting from overflow. *)
  let rng = Rng.create 91 in
  let q = Event_queue.create ~initial_capacity:16 () in
  let r = Event_queue.Reference.create () in
  let seed_times = Array.init 64 (fun _ -> Rng.int rng 100) in
  Array.iteri
    (fun i t ->
      Event_queue.push q ~time:t i;
      Event_queue.Reference.push r ~time:t i)
    seed_times;
  let rng_q = Rng.create 17 and rng_r = Rng.create 17 in
  for i = 64 to 5_000 do
    (match Event_queue.pop q with
    | Some (t, _) -> Event_queue.push q ~time:(t + 1 + Rng.int rng_q 700) i
    | None -> Alcotest.fail "calendar drained early");
    match Event_queue.Reference.pop r with
    | Some (t, _) -> Event_queue.Reference.push r ~time:(t + 1 + Rng.int rng_r 700) i
    | None -> Alcotest.fail "heap drained early"
  done;
  ignore (drain_both q r)

let test_queue_clear_retains_nothing () =
  let q = Event_queue.create () in
  for i = 0 to 999 do
    Event_queue.push q ~time:(i * 3) i
  done;
  Event_queue.clear q;
  check "empty after clear" true (Event_queue.is_empty q);
  check_int "size 0" 0 (Event_queue.size q);
  check "pop None" true (Event_queue.pop q = None);
  Event_queue.push q ~time:4 42;
  Alcotest.(check (option (pair int int))) "usable after clear" (Some (4, 42))
    (Event_queue.pop q)

(* --- Sim engine --- *)

(* Each process counts ticks and echoes received ints back incremented. *)
let echo_process : (int, int, int) Sim.process =
  {
    Sim.name = "echo";
    init = (fun _ -> 0);
    on_tick =
      (fun ctx count ->
        if count = 0 && Sim.self ctx = 0 then Sim.send ctx 1 1;
        count + 1);
    on_message =
      (fun ctx st ~src msg ->
        Sim.observe ctx msg;
        if msg < 5 then Sim.send ctx src (msg + 1);
        st);
  }

let small_config ~seed =
  {
    (Sim.default_config ~n:2 ~seed) with
    Sim.gst = 50;
    horizon = 400;
    tick_interval = 10;
    delay_before_gst = (1, 20);
    delay_after_gst = (1, 3);
  }

let test_sim_delivers_and_logs () =
  let result = Sim.run (small_config ~seed:1) echo_process in
  let echoed = List.map (fun (_, _, v) -> v) result.Sim.log in
  Alcotest.(check (list int)) "ping-pong sequence" [ 1; 2; 3; 4; 5 ] echoed;
  check "messages delivered" true (result.Sim.delivered >= 5)

let test_sim_deterministic () =
  let r1 = Sim.run (small_config ~seed:42) echo_process in
  let r2 = Sim.run (small_config ~seed:42) echo_process in
  check "same log" true (r1.Sim.log = r2.Sim.log);
  check_int "same deliveries" r1.Sim.delivered r2.Sim.delivered

let test_sim_seed_changes_schedule () =
  let r1 = Sim.run (small_config ~seed:1) echo_process in
  let r2 = Sim.run (small_config ~seed:2) echo_process in
  (* Same logical behaviour, different timings. *)
  check "same echoes" true
    (List.map (fun (_, _, v) -> v) r1.Sim.log = List.map (fun (_, _, v) -> v) r2.Sim.log);
  check "different times" true
    (List.map (fun (t, _, _) -> t) r1.Sim.log <> List.map (fun (t, _, _) -> t) r2.Sim.log)

let test_sim_crash_stops_processing () =
  let config = { (small_config ~seed:3) with Sim.crashes = [ (1, 60) ] } in
  let result = Sim.run config echo_process in
  check "crashed final state is None" true (result.Sim.final_states.(1) = None);
  check "other process survives" true (result.Sim.final_states.(0) <> None);
  (* Ticks stop: process 1's tick count is frozen well below process 0's. *)
  check "messages to the dead are dropped" true (result.Sim.dropped_after_crash >= 0)

let test_sim_corrupt_initial_state () =
  let config = small_config ~seed:4 in
  let result =
    Sim.run ~corrupt:(fun p s -> if p = 0 then 1000 else s) config echo_process
  in
  (* Corrupted counter means process 0 never fires its count=0 send: no
     echoes at all. *)
  check "corruption suppressed the ping" true (result.Sim.log = []);
  match result.Sim.final_states.(0) with
  | Some c -> check "still ticking from corrupted value" true (c > 1000)
  | None -> Alcotest.fail "process 0 should be alive"

let test_sim_spurious_messages_delivered () =
  let config = small_config ~seed:5 in
  let result = Sim.run ~spurious:[ (1, 1, 1, 3) ] config echo_process in
  (* The planted message 3 gets echoed 3,4,5. *)
  let echoed = List.map (fun (_, _, v) -> v) result.Sim.log in
  check "spurious message processed" true (List.mem 3 echoed)

let test_sim_validates_config () =
  Alcotest.check_raises "tick_interval" (Invalid_argument "Sim.run: tick_interval < 1")
    (fun () ->
      ignore (Sim.run { (small_config ~seed:0) with Sim.tick_interval = 0 } echo_process));
  Alcotest.check_raises "n beyond the tag width"
    (Invalid_argument (Printf.sprintf "Sim.run: n outside 1..%d" Sim.max_n))
    (fun () ->
      ignore (Sim.run { (small_config ~seed:0) with Sim.n = Sim.max_n + 1 } echo_process))

(* --- Large-n smoke: the packed event tags carry 12-bit pid fields, so
   runs far beyond the old 62-process wall must route every message to
   the right process. Gossip-style: each process pings its successor ring
   neighbour once per tick until it has heard from its predecessor. --- *)

let test_sim_large_n () =
  let n = 200 in
  let ring : (bool, int, int) Sim.process =
    {
      Sim.name = "ring";
      init = (fun _ -> false);
      on_tick =
        (fun ctx heard ->
          if not heard then Sim.send ctx ((Sim.self ctx + 1) mod n) (Sim.self ctx);
          heard);
      on_message =
        (fun ctx heard ~src msg ->
          (* The tag round-trip: the delivered source must match the payload
             the sender stamped, for every pid up to n-1. *)
          if src <> msg then Alcotest.failf "tag corrupted: src %d payload %d" src msg;
          if not heard then Sim.observe ctx msg;
          true);
    }
  in
  let config =
    {
      (Sim.default_config ~n ~seed:11) with
      Sim.gst = 50;
      horizon = 2000;
      tick_interval = 10;
      delay_before_gst = (1, 20);
      delay_after_gst = (1, 3);
    }
  in
  let result = Sim.run config ring in
  (* Every process eventually hears exactly its ring predecessor. *)
  let heard = Array.make n false in
  List.iter
    (fun (_, p, msg) ->
      check_int (Printf.sprintf "p%d heard its predecessor" p) ((p + n - 1) mod n) msg;
      heard.(p) <- true)
    result.Sim.log;
  check "every process heard" true (Array.for_all Fun.id heard);
  check "no process crashed" true (Array.for_all Option.is_some result.Sim.final_states);
  (* Deterministic at this width too. *)
  let result' = Sim.run config ring in
  check "large-n run replays bit-identically" true (result.Sim.log = result'.Sim.log)

(* --- ◇W oracle --- *)

let oracle_setup ~seed ~n ~crashes ~gst ~trusted =
  let crashed p = List.assoc_opt p crashes in
  Ewfd.make (Rng.create seed) ~n ~crashed ~gst ~trusted ~noise:0.3

let test_ewfd_trusted_never_suspected_after_gst () =
  let oracle = oracle_setup ~seed:1 ~n:5 ~crashes:[ (4, 100) ] ~gst:200 ~trusted:2 in
  for at = 200 to 400 do
    List.iter
      (fun observer ->
        if observer <> 4 then
          check "trusted clear" false (Ewfd.detect oracle ~at ~observer ~subject:2))
      (Pid.all 5)
  done

let test_ewfd_weak_completeness_after_gst () =
  let oracle = oracle_setup ~seed:2 ~n:5 ~crashes:[ (4, 100) ] ~gst:200 ~trusted:2 in
  (* The designated observer (lowest-pid correct = 0) suspects the crashed
     process at every query after gst. *)
  for at = 200 to 300 do
    check "designated suspects crashed" true (Ewfd.detect oracle ~at ~observer:0 ~subject:4)
  done;
  (* And only the designated one. *)
  for at = 200 to 300 do
    check "others do not" false (Ewfd.detect oracle ~at ~observer:1 ~subject:4)
  done

let test_ewfd_rejects_crashed_trusted () =
  Alcotest.check_raises "trusted crashed"
    (Invalid_argument "Ewfd.make: the trusted process must be correct")
    (fun () -> ignore (oracle_setup ~seed:3 ~n:3 ~crashes:[ (1, 5) ] ~gst:10 ~trusted:1))

let test_ewfd_never_self_suspects () =
  let oracle = oracle_setup ~seed:4 ~n:3 ~crashes:[] ~gst:10 ~trusted:0 in
  for at = 0 to 50 do
    List.iter
      (fun p -> check "no self suspicion" false (Ewfd.detect oracle ~at ~observer:p ~subject:p))
      (Pid.all 3)
  done

(* --- Esfd pure machine --- *)

let test_esfd_merge_rule () =
  let t = Esfd.create ~n:3 in
  let t = Esfd.receive t [ { Esfd.subject = 1; num = 5; status = Esfd.Dead } ] in
  check "higher num adopted" true (Esfd.suspected t 1);
  let t = Esfd.receive t [ { Esfd.subject = 1; num = 3; status = Esfd.Alive } ] in
  check "lower num ignored" true (Esfd.suspected t 1);
  let t = Esfd.receive t [ { Esfd.subject = 1; num = 6; status = Esfd.Alive } ] in
  check "newer alive wins" false (Esfd.suspected t 1)

let test_esfd_tick_actions () =
  let t = Esfd.create ~n:3 in
  let t, msg = Esfd.tick t ~self:0 ~detect:(fun s -> s = 2) in
  check "self alive" false (Esfd.suspected t 0);
  check "detected subject dead" true (Esfd.suspected t 2);
  check "undetected unchanged" false (Esfd.suspected t 1);
  check_int "message covers all subjects" 3 (List.length msg)

let test_esfd_corruption_washed_out_by_merge () =
  (* A corrupted peer claiming a huge alive counter for a crashed process
     is overtaken once its table is merged and the observer keeps
     detecting. *)
  let rng = Rng.create 7 in
  let observer = Esfd.create ~n:2 in
  let corrupted = Esfd.corrupt rng ~num_bound:1_000 (Esfd.create ~n:2) in
  let _, claim = Esfd.tick corrupted ~self:1 ~detect:(fun _ -> false) in
  let observer = Esfd.receive observer claim in
  (* Keep detecting subject 0 as dead: after enough ticks num exceeds any
     corrupted claim... one tick suffices because the merge lifted the
     observer to the corrupted maximum first. *)
  let observer, _ = Esfd.tick observer ~self:1 ~detect:(fun s -> s = 0) in
  check "detection overtakes corrupted counter" true (Esfd.suspected observer 0)

(* --- Theorem 5 end-to-end --- *)

let esfd_config ~seed ~n ~crashes =
  {
    (Sim.default_config ~n ~seed) with
    Sim.gst = 300;
    horizon = 2500;
    tick_interval = 10;
    delay_before_gst = (1, 80);
    delay_after_gst = (1, 5);
    crashes;
  }

let run_esfd ?corrupt ?drop ~seed ~n ~crashes ~trusted () =
  let config = esfd_config ~seed ~n ~crashes in
  let crashed p = List.assoc_opt p crashes in
  let oracle =
    Ewfd.make (Rng.create (seed + 1)) ~n ~crashed ~gst:config.Sim.gst ~trusted ~noise:0.3
  in
  let result = Sim.run ?corrupt ?drop config (Esfd.process ~n ~oracle ()) in
  Esfd.analyze result ~config ~trusted

(* A fuzz-style omission adversary: a deterministic pseudo-random drop
   matrix over (epoch, link) cells, active only before the GST — exactly
   the partial-synchrony contract, under which the theorems must still
   hold. *)
let drop_matrix ~seed ~gst ~rate ~time ~src ~dst =
  time < gst && Hashtbl.hash (seed, time / 50, src, dst) mod 100 < rate

let test_theorem5_clean_start () =
  let report = run_esfd ~seed:11 ~n:5 ~crashes:[ (3, 150); (4, 700) ] ~trusted:1 () in
  check "converged" true (report.Esfd.convergence_time <> None);
  check "completeness" true (report.Esfd.completeness_from <> None);
  check "accuracy" true (report.Esfd.accuracy_from <> None)

let test_theorem5_corrupted_start () =
  (* Figure 4 requires no initialization: corrupt every counter and status
     and the transform still converges. *)
  for seed = 0 to 10 do
    let rng = Rng.create (100 + seed) in
    let corrupt _ t = Esfd.corrupt rng ~num_bound:5_000 t in
    let report =
      run_esfd ~corrupt ~seed:(200 + seed) ~n:5 ~crashes:[ (4, 100) ] ~trusted:2 ()
    in
    check
      (Printf.sprintf "Theorem 5 under corruption (seed %d)" seed)
      true
      (report.Esfd.convergence_time <> None)
  done

let test_theorem5_strong_completeness_is_the_transforms_work () =
  (* The ◇W oracle deliberately lets only one designated observer suspect
     the crashed process; every OTHER correct process's final detector
     state must still mark it dead — that propagation is exactly what the
     Figure 4 transform adds (weak -> strong completeness). *)
  let n = 5 and crashes = [ (4, 150) ] in
  let config = esfd_config ~seed:61 ~n ~crashes in
  let crashed p = List.assoc_opt p crashes in
  let oracle =
    Ewfd.make (Rng.create 62) ~n ~crashed ~gst:config.Sim.gst ~trusted:2 ~noise:0.0
  in
  let result = Sim.run config (Esfd.process ~n ~oracle ()) in
  (* With zero noise, only the designated observer (p0, the lowest-pid
     correct process) ever receives detect = true; p1..p3 rely entirely on
     the broadcast-merge. *)
  List.iter
    (fun p ->
      match result.Sim.final_states.(p) with
      | Some t ->
        Alcotest.(check bool)
          (Printf.sprintf "p%d suspects the crashed process" p)
          true (Esfd.suspected t 4)
      | None -> ())
    [ 0; 1; 2; 3 ]

let test_theorem5_no_crashes () =
  let report = run_esfd ~seed:31 ~n:4 ~crashes:[] ~trusted:0 () in
  check "accuracy alone also converges" true (report.Esfd.convergence_time <> None)

let test_sim_adversary_drops_are_counted_and_deterministic () =
  let config = small_config ~seed:8 in
  let drop = drop_matrix ~seed:8 ~gst:config.Sim.gst ~rate:40 in
  let r1 = Sim.run ~drop config echo_process in
  let r2 = Sim.run ~drop config echo_process in
  check "adversary dropped something" true (r1.Sim.dropped_by_adversary > 0);
  check_int "drop count deterministic" r1.Sim.dropped_by_adversary
    r2.Sim.dropped_by_adversary;
  check "survivor schedule deterministic" true (r1.Sim.log = r2.Sim.log);
  let clean = Sim.run config echo_process in
  check_int "no adversary, no adversary drops" 0 clean.Sim.dropped_by_adversary

let prop_theorem5_under_random_drop_matrices =
  QCheck.Test.make
    ~name:"Theorem 5: eventual strong accuracy and completeness under drops"
    ~count:8 QCheck.small_nat
    (fun seed ->
      let crashes = [ (4, 150) ] in
      let drop = drop_matrix ~seed ~gst:300 ~rate:30 in
      let report =
        run_esfd ~drop ~seed:(500 + seed) ~n:5 ~crashes ~trusted:1 ()
      in
      (* Drops cease at the GST, so the transform must still converge:
         every correct process eventually suspects the crashed one and
         permanently trusts the correct ones. *)
      report.Esfd.convergence_time <> None
      && report.Esfd.completeness_from <> None
      && report.Esfd.accuracy_from <> None)

(* --- Repeated consensus --- *)

let propose p i = 100 + (((p * 13) + (i * 7)) mod 50)

let consensus_config ~seed ~n ~crashes =
  {
    (Sim.default_config ~n ~seed) with
    Sim.gst = 300;
    horizon = 4000;
    tick_interval = 10;
    delay_before_gst = (1, 60);
    delay_after_gst = (1, 4);
    crashes;
  }

let run_consensus ?corrupt ?drop ?(noise = 0.2) ~style ~seed ~n ~crashes ~trusted () =
  let config = consensus_config ~seed ~n ~crashes in
  let crashed p = List.assoc_opt p crashes in
  let oracle =
    Ewfd.make (Rng.create (seed + 7)) ~n ~crashed ~gst:config.Sim.gst ~trusted ~noise
  in
  let result =
    Sim.run ?corrupt ?drop config (Consensus.process ~n ~style ~propose ~oracle ())
  in
  (config, result)

let test_consensus_baseline_clean_decides () =
  let config, result =
    run_consensus ~style:Consensus.baseline ~seed:5 ~n:5 ~crashes:[] ~trusted:1 ()
  in
  let correct = Sim.correct_set config in
  let ds = Consensus.decisions result in
  let grouped = Consensus.per_instance ds ~correct in
  check "instances decided" true (List.length grouped >= 3);
  Alcotest.(check (list int)) "no disagreement" [] (Consensus.disagreements grouped);
  Alcotest.(check (list int)) "all valid" [] (Consensus.invalid_instances grouped ~propose ~n:5)

let test_consensus_ss_clean_decides () =
  let config, result =
    run_consensus ~style:Consensus.self_stabilizing ~seed:6 ~n:5 ~crashes:[] ~trusted:1 ()
  in
  let correct = Sim.correct_set config in
  let grouped = Consensus.per_instance (Consensus.decisions result) ~correct in
  check "instances decided" true (List.length grouped >= 3);
  Alcotest.(check (list int)) "no disagreement" [] (Consensus.disagreements grouped);
  Alcotest.(check (list int)) "all valid" [] (Consensus.invalid_instances grouped ~propose ~n:5)

let test_consensus_ss_tolerates_crashes () =
  let crashes = [ (0, 200); (4, 800) ] in
  let config, result =
    run_consensus ~style:Consensus.self_stabilizing ~seed:7 ~n:5 ~crashes ~trusted:2 ()
  in
  let correct = Sim.correct_set config in
  let ds = Consensus.decisions result in
  let grouped = Consensus.per_instance ds ~correct in
  Alcotest.(check (list int)) "no disagreement" [] (Consensus.disagreements grouped);
  check "progress after both crashes" true
    (Consensus.fully_decided_after ds ~correct ~from:1000 >= 2)

let test_consensus_ss_recovers_from_random_corruption () =
  for seed = 0 to 8 do
    let rng = Rng.create (300 + seed) in
    let corrupt =
      Consensus.corrupt_random rng ~n:5 ~instance_bound:20 ~round_bound:30 ~value_bound:90
    in
    let config, result =
      run_consensus ~corrupt ~style:Consensus.self_stabilizing ~seed:(400 + seed) ~n:5
        ~crashes:[ (4, 600) ] ~trusted:2 ()
    in
    let correct = Sim.correct_set config in
    let stab = Consensus.stabilization_time result ~correct ~propose ~n:5 in
    check (Printf.sprintf "stabilizes (seed %d)" seed) true (stab <> None);
    let from = Option.get stab in
    check
      (Printf.sprintf "useful work after stabilization (seed %d)" seed)
      true
      (Consensus.fully_decided_after (Consensus.decisions result) ~correct ~from >= 1)
  done

let test_consensus_baseline_deadlocks_when_parked () =
  (* Park everyone mid-round waiting for messages that were never sent,
     with the coordinator of that round being a never-suspected correct
     process. The detector is perfectly accurate (noise 0 — which ◇W
     permits), so no spurious suspicion ever unblocks the wait: the
     baseline makes no further progress, ever. This is exactly the
     deadlock [KP90] identified and the reason the paper's protocol
     re-sends until a phase completes. *)
  let n = 5 in
  let trusted = 1 in
  let round = 6 in
  (* coord(6) = 1 = trusted *)
  let _, result =
    run_consensus
      ~corrupt:(Consensus.corrupt_parked ~round)
      ~noise:0.0 ~style:Consensus.baseline ~seed:9 ~n ~crashes:[] ~trusted ()
  in
  check_int "no decisions at all" 0 (List.length (Consensus.decisions result))

let test_consensus_ss_dissolves_the_same_deadlock () =
  let n = 5 in
  let trusted = 1 in
  let round = 6 in
  let config, result =
    run_consensus
      ~corrupt:(Consensus.corrupt_parked ~round)
      ~noise:0.0 ~style:Consensus.self_stabilizing ~seed:9 ~n ~crashes:[] ~trusted ()
  in
  let correct = Sim.correct_set config in
  let grouped = Consensus.per_instance (Consensus.decisions result) ~correct in
  check "retransmission dissolves the deadlock" true (List.length grouped >= 3);
  Alcotest.(check (list int)) "no disagreement" [] (Consensus.disagreements grouped)

let test_consensus_deterministic () =
  let _, r1 =
    run_consensus ~style:Consensus.self_stabilizing ~seed:10 ~n:4 ~crashes:[] ~trusted:0 ()
  in
  let _, r2 =
    run_consensus ~style:Consensus.self_stabilizing ~seed:10 ~n:4 ~crashes:[] ~trusted:0 ()
  in
  check "identical logs" true (r1.Sim.log = r2.Sim.log)

let prop_consensus_agreement_under_random_drop_matrices =
  QCheck.Test.make
    ~name:"consensus agreement and validity under drop matrices" ~count:8
    QCheck.small_nat
    (fun seed ->
      let drop = drop_matrix ~seed:(seed * 31) ~gst:300 ~rate:25 in
      let config, result =
        run_consensus ~drop ~style:Consensus.self_stabilizing ~seed:(600 + seed)
          ~n:5 ~crashes:[] ~trusted:(seed mod 5) ()
      in
      let correct = Sim.correct_set config in
      let grouped = Consensus.per_instance (Consensus.decisions result) ~correct in
      (* Safety must hold whatever the adversary dropped, and the
         post-GST drop-free suffix must restore progress. *)
      Consensus.disagreements grouped = []
      && Consensus.invalid_instances grouped ~propose ~n:5 = []
      && List.length grouped >= 1)

let prop_ss_consensus_random_corruption =
  QCheck.Test.make ~name:"ss consensus stabilizes under random corruption" ~count:10
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.create ((seed * 97) + 5) in
      let n = 3 + (seed mod 3) in
      let corrupt =
        Consensus.corrupt_random rng ~n ~instance_bound:10 ~round_bound:20 ~value_bound:90
      in
      let config, result =
        run_consensus ~corrupt ~style:Consensus.self_stabilizing ~seed:(seed + 800) ~n
          ~crashes:[] ~trusted:(seed mod n) ()
      in
      let correct = Sim.correct_set config in
      match Consensus.stabilization_time result ~correct ~propose ~n with
      | None -> false
      | Some from ->
        Consensus.fully_decided_after (Consensus.decisions result) ~correct ~from >= 1)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "event-queue",
      [
        tc "orders by time" `Quick test_queue_orders_by_time;
        tc "ties resolve by insertion" `Quick test_queue_ties_resolve_by_insertion;
        tc "interleaved operations" `Quick test_queue_interleaved_operations;
        tc "rejects negative time" `Quick test_queue_rejects_negative_time;
        tc "differential vs reference heap (random)" `Quick test_queue_differential_random;
        tc "differential same-time FIFO runs" `Quick test_queue_differential_same_time_runs;
        tc "differential epoch rollover + overflow" `Quick test_queue_differential_epoch_rollover;
        tc "clear retains nothing" `Quick test_queue_clear_retains_nothing;
      ] );
    ( "sim",
      [
        tc "delivers and logs" `Quick test_sim_delivers_and_logs;
        tc "deterministic" `Quick test_sim_deterministic;
        tc "seed changes schedule only" `Quick test_sim_seed_changes_schedule;
        tc "crash stops processing" `Quick test_sim_crash_stops_processing;
        tc "corrupt initial state" `Quick test_sim_corrupt_initial_state;
        tc "spurious messages delivered" `Quick test_sim_spurious_messages_delivered;
        tc "validates config" `Quick test_sim_validates_config;
        tc "large-n ring routes every tag (n=200)" `Quick test_sim_large_n;
        tc "adversary drops counted and deterministic" `Quick
          test_sim_adversary_drops_are_counted_and_deterministic;
      ] );
    ( "ewfd",
      [
        tc "trusted never suspected after gst" `Quick test_ewfd_trusted_never_suspected_after_gst;
        tc "weak completeness after gst" `Quick test_ewfd_weak_completeness_after_gst;
        tc "rejects crashed trusted" `Quick test_ewfd_rejects_crashed_trusted;
        tc "never self-suspects" `Quick test_ewfd_never_self_suspects;
      ] );
    ( "esfd",
      [
        tc "merge rule" `Quick test_esfd_merge_rule;
        tc "tick actions" `Quick test_esfd_tick_actions;
        tc "corruption washed out" `Quick test_esfd_corruption_washed_out_by_merge;
        tc "Theorem 5: clean start" `Quick test_theorem5_clean_start;
        tc "Theorem 5: corrupted start" `Quick test_theorem5_corrupted_start;
        tc "Theorem 5: no crashes" `Quick test_theorem5_no_crashes;
        tc "Theorem 5: strong completeness is the transform's work" `Quick
          test_theorem5_strong_completeness_is_the_transforms_work;
        QCheck_alcotest.to_alcotest prop_theorem5_under_random_drop_matrices;
      ] );
    ( "async-consensus",
      [
        tc "baseline decides from clean state" `Quick test_consensus_baseline_clean_decides;
        tc "ss decides from clean state" `Quick test_consensus_ss_clean_decides;
        tc "ss tolerates crashes" `Quick test_consensus_ss_tolerates_crashes;
        tc "ss recovers from random corruption" `Quick test_consensus_ss_recovers_from_random_corruption;
        tc "baseline deadlocks when parked" `Quick test_consensus_baseline_deadlocks_when_parked;
        tc "ss dissolves the same deadlock" `Quick test_consensus_ss_dissolves_the_same_deadlock;
        tc "deterministic" `Quick test_consensus_deterministic;
        QCheck_alcotest.to_alcotest prop_ss_consensus_random_corruption;
        QCheck_alcotest.to_alcotest prop_consensus_agreement_under_random_drop_matrices;
      ] );
  ]
