(* Tests for the canonical example protocols and the Σ⁺ machinery:
   ft-correctness of the Π baselines, the omission counterexample against
   plain flooding, and Theorem 4 end-to-end (compiled protocols ftss-solve
   Σ⁺). *)

open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run the ft-baseline (Figure 2 verbatim) of a canonical protocol and
   collect each non-crashed process's decision. *)
let run_ft pi ~faults =
  let protocol = Canonical.to_protocol pi in
  let rounds = pi.Canonical.final_round in
  let trace = Runner.run ~faults ~rounds protocol in
  List.filter_map
    (fun p ->
      match Trace.state_after trace ~round:rounds p with
      | Some st -> Option.map (fun d -> (p, d)) (Canonical.ft_decision pi st)
      | None -> None)
    (Pid.all (Faults.n faults))

let correct_decisions decisions ~faulty =
  List.filter (fun (p, _) -> not (Pidset.mem p faulty)) decisions

let agree decisions =
  match decisions with
  | [] -> true
  | (_, d) :: rest -> List.for_all (fun (_, d') -> d' = d) rest

(* --- Flooding consensus (crash model) --- *)

let test_flooding_failure_free () =
  let pi = Flooding_consensus.make ~f:1 ~propose:(fun p -> 10 + p) in
  let decisions = run_ft pi ~faults:(Faults.none 3) in
  check_int "everyone decides" 3 (List.length decisions);
  check "agreement" true (agree decisions);
  check_int "decides the minimum proposal" 10 (snd (List.hd decisions))

let test_flooding_tolerates_crashes () =
  for seed = 0 to 30 do
    let rng = Rng.create seed in
    let n = Rng.int_in rng 2 7 in
    let f = Rng.int rng n in
    let pi = Flooding_consensus.make ~f ~propose:(fun p -> 100 + p) in
    let faults = Faults.random_crashes rng ~n ~f ~rounds:pi.Canonical.final_round in
    let decisions = run_ft pi ~faults in
    let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
    check (Printf.sprintf "crash agreement (seed %d)" seed) true (agree correct);
    check
      (Printf.sprintf "validity (seed %d)" seed)
      true
      (List.for_all (fun (_, d) -> d >= 100 && d < 100 + n) correct)
  done

let test_flooding_broken_by_omission () =
  (* The documented counterexample: plain flooding disagrees under general
     omission. This is the negative result that motivates the suspect
     filter. *)
  let faults, propose = Flooding_consensus.omission_counterexample () in
  let pi = Flooding_consensus.make ~f:1 ~propose in
  let decisions = run_ft pi ~faults in
  let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
  check_int "both correct processes decide" 2 (List.length correct);
  check "plain flooding disagrees under omission" false (agree correct)

(* --- Omission consensus (general omission model) --- *)

let test_omission_survives_counterexample () =
  let faults, propose = Flooding_consensus.omission_counterexample () in
  let pi = Omission_consensus.make ~n:3 ~f:1 ~propose in
  let decisions = run_ft pi ~faults in
  let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
  check_int "both correct processes decide" 2 (List.length correct);
  check "suspect filter restores agreement" true (agree correct);
  (* The withheld minimum is rejected: the agreed value is a correct
     process's proposal. *)
  check "decision proposed by a correct process" true
    (List.for_all (fun (_, d) -> d = 10 || d = 11) correct)

let test_omission_random_adversaries () =
  for seed = 0 to 60 do
    let rng = Rng.create (1000 + seed) in
    let n = Rng.int_in rng 2 7 in
    let f = Rng.int rng n in
    let pi = Omission_consensus.make ~n ~f ~propose:(fun p -> 50 + p) in
    let faults =
      Faults.random_omission rng ~n ~f ~p_drop:0.5 ~rounds:pi.Canonical.final_round
    in
    let decisions = run_ft pi ~faults in
    let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
    check (Printf.sprintf "omission agreement (seed %d)" seed) true (agree correct);
    check
      (Printf.sprintf "omission validity (seed %d)" seed)
      true
      (List.for_all (fun (_, d) -> d >= 50 && d < 50 + n) correct)
  done

let test_omission_mixed_crash_and_omission () =
  for seed = 0 to 30 do
    let rng = Rng.create (2000 + seed) in
    let n = Rng.int_in rng 3 7 in
    let f = Rng.int rng (n / 2 + 1) in
    let pi = Omission_consensus.make ~n ~f ~propose:(fun p -> p * 7) in
    let rounds = pi.Canonical.final_round in
    (* Half the faulty budget crashes, half omits. *)
    let crash_victims = Rng.sample rng (f / 2) (Pid.all n) in
    let crash_events =
      List.map
        (fun pid -> Faults.Crash { pid; round = Rng.int_in rng 1 rounds })
        crash_victims
    in
    let remaining = List.filter (fun p -> not (List.mem p crash_victims)) (Pid.all n) in
    let omit_victims = Rng.sample rng (f - List.length crash_victims) remaining in
    let omit_events =
      List.map
        (fun pid ->
          Faults.Mute { pid; first = Rng.int_in rng 1 rounds; last = rounds })
        omit_victims
    in
    let faults = Faults.of_events ~n (crash_events @ omit_events) in
    let decisions = run_ft pi ~faults in
    let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
    check (Printf.sprintf "mixed agreement (seed %d)" seed) true (agree correct)
  done

(* --- Interactive consistency --- *)

let test_ic_failure_free_full_vector () =
  let n = 4 in
  let pi = Interactive_consistency.make ~n ~f:1 ~propose:(fun p -> p * p) in
  let decisions = run_ft pi ~faults:(Faults.none n) in
  check "agreement" true (agree decisions);
  let vector = snd (List.hd decisions) in
  Alcotest.(check (list (option int)))
    "every entry learned"
    [ Some 0; Some 1; Some 4; Some 9 ]
    vector

let test_ic_random_omission_agreement () =
  for seed = 0 to 40 do
    let rng = Rng.create (3000 + seed) in
    let n = Rng.int_in rng 2 6 in
    let f = Rng.int rng n in
    let pi = Interactive_consistency.make ~n ~f ~propose:(fun p -> 1000 + p) in
    let faults =
      Faults.random_omission rng ~n ~f ~p_drop:0.4 ~rounds:pi.Canonical.final_round
    in
    let decisions = run_ft pi ~faults in
    let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
    check (Printf.sprintf "vector agreement (seed %d)" seed) true (agree correct);
    (* Correct processes' entries are always present and correct. *)
    let correct_set = Faults.correct faults in
    List.iter
      (fun (_, vector) ->
        List.iteri
          (fun owner entry ->
            if Pidset.mem owner correct_set then
              check "correct entry learned" true (entry = Some (1000 + owner)))
          vector)
      correct
  done

(* --- Leader election --- *)

let test_leader_failure_free_elects_zero () =
  let pi = Leader_election.make ~n:5 ~f:1 in
  let decisions = run_ft pi ~faults:(Faults.none 5) in
  check "agreement" true (agree decisions);
  check_int "leader is min pid" 0 (snd (List.hd decisions))

let test_leader_random_omission_agreement () =
  for seed = 0 to 40 do
    let rng = Rng.create (4000 + seed) in
    let n = Rng.int_in rng 2 6 in
    let f = Rng.int rng n in
    let pi = Leader_election.make ~n ~f in
    let faults =
      Faults.random_omission rng ~n ~f ~p_drop:0.5 ~rounds:pi.Canonical.final_round
    in
    let decisions = run_ft pi ~faults in
    let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
    check (Printf.sprintf "leader agreement (seed %d)" seed) true (agree correct);
    check
      (Printf.sprintf "leader is a pid (seed %d)" seed)
      true
      (List.for_all (fun (_, d) -> Pid.is_valid ~n d) correct)
  done

(* --- Atomic commitment --- *)

let test_ac_all_yes_commits () =
  let pi = Atomic_commit.make ~n:4 ~f:1 ~vote:(fun _ -> Atomic_commit.Yes) in
  let decisions = run_ft pi ~faults:(Faults.none 4) in
  check "agreement" true (agree decisions);
  check "all-yes failure-free commits" true
    (List.for_all (fun (_, o) -> o = Atomic_commit.Commit) decisions)

let test_ac_single_no_aborts_everywhere () =
  let pi =
    Atomic_commit.make ~n:4 ~f:1 ~vote:(fun p ->
        if p = 2 then Atomic_commit.No else Atomic_commit.Yes)
  in
  let decisions = run_ft pi ~faults:(Faults.none 4) in
  check "one No aborts everywhere" true
    (List.for_all (fun (_, o) -> o = Atomic_commit.Abort) decisions)

let test_ac_withheld_vote_aborts () =
  (* All vote Yes but the faulty voter stays mute: conservative Abort,
     agreed by all correct processes. *)
  let pi = Atomic_commit.make ~n:4 ~f:1 ~vote:(fun _ -> Atomic_commit.Yes) in
  let faults =
    Faults.of_events ~n:4
      [ Faults.Mute { pid = 3; first = 1; last = pi.Canonical.final_round } ]
  in
  let decisions = run_ft pi ~faults in
  let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
  check "agreement" true (agree correct);
  check "withheld vote forces abort" true
    (List.for_all (fun (_, o) -> o = Atomic_commit.Abort) correct)

let test_ac_random_omission_agreement () =
  for seed = 0 to 40 do
    let rng = Rng.create (7000 + seed) in
    let n = Rng.int_in rng 2 6 in
    let f = Rng.int rng n in
    let vote p = if (p * 31) mod 3 = 0 then Atomic_commit.Yes else Atomic_commit.No in
    let pi = Atomic_commit.make ~n ~f ~vote in
    let faults =
      Faults.random_omission rng ~n ~f ~p_drop:0.5 ~rounds:pi.Canonical.final_round
    in
    let decisions = run_ft pi ~faults in
    let correct = correct_decisions decisions ~faulty:(Faults.faulty faults) in
    check (Printf.sprintf "commit agreement (seed %d)" seed) true (agree correct)
  done

let test_ac_compiles_with_corrupted_votes () =
  let n = 4 in
  let pi = Atomic_commit.make ~n ~f:1 ~vote:(fun _ -> Atomic_commit.Yes) in
  let compiled = Compiler.compile ~n pi in
  let rng = Rng.create 88 in
  let corrupt =
    Compiler.corrupt rng ~pi ~n ~c_bound:300 ~corrupt_s:(fun rng _ s ->
        {
          s with
          Atomic_commit.votes =
            Pidmap.init n (fun _ ->
                if Rng.bool rng then Atomic_commit.Yes else Atomic_commit.No);
        })
  in
  let trace = Runner.run ~corrupt ~faults:(Faults.none n) ~rounds:30 compiled in
  let spec =
    Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid:(fun _ -> true) ()
  in
  check "compiled atomic commit ftss-solves Σ⁺" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace);
  (* Post-stabilization iterations commit (everyone votes Yes). *)
  let cs = Repeated.completions trace in
  let late = List.filter (fun c -> c.Repeated.round > 10) cs in
  check "late iterations commit" true
    (late <> []
    && List.for_all (fun c -> c.Repeated.decision = Some Atomic_commit.Commit) late)

(* --- KP90: terminating protocols cannot self-stabilize --- *)

let test_kp90_contrast () =
  let r = Impossibility.Kp90.run ~n:4 ~f:1 ~rounds:25 in
  check "corrupted-halted baseline never decides" false
    r.Impossibility.Kp90.baseline_ever_decides;
  check "compiled repetition decides repeatedly" true
    r.Impossibility.Kp90.compiled_decides_repeatedly;
  check "claim confirmed" true (Impossibility.Kp90.confirms_claim r)

(* --- Theorem 4 end-to-end: Π⁺ ftss-solves Σ⁺ --- *)

let compiled_omission_consensus ~n ~f =
  let propose p = 50 + p in
  let pi = Omission_consensus.make ~n ~f ~propose in
  let valid d = d >= 50 && d < 50 + n in
  (pi, Compiler.compile ~n pi, valid)

let corrupt_compiled rng ~n ~pi =
  Compiler.corrupt rng ~pi ~n ~c_bound:997
    ~corrupt_s:(fun rng p s -> Omission_consensus.corrupt_state rng ~n ~value_bound:49 p s)

let test_theorem4_failure_free_from_corruption () =
  let n = 4 in
  let pi, compiled, valid = compiled_omission_consensus ~n ~f:1 in
  let rng = Rng.create 77 in
  let trace =
    Runner.run
      ~corrupt:(corrupt_compiled rng ~n ~pi)
      ~faults:(Faults.none n) ~rounds:30 compiled
  in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  check "ftss-solves Σ⁺ with bound 2*final_round" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace);
  (* And iterations actually complete with agreeing decisions. *)
  let completed, agreeing =
    Repeated.count_agreeing_iterations trace ~faulty:Pidset.empty ~valid
  in
  check "several iterations completed" true (completed >= 5);
  (* Corrupted early iterations may disagree; late ones must all agree. *)
  check "most iterations agree" true (agreeing >= completed - 2)

let test_theorem4_random_adversaries () =
  for seed = 0 to 40 do
    let rng = Rng.create (5000 + seed) in
    let n = Rng.int_in rng 2 6 in
    let f = Rng.int rng n in
    let pi, compiled, valid = compiled_omission_consensus ~n ~f in
    let rounds = Rng.int_in rng 10 60 in
    let faults = Faults.random_omission rng ~n ~f ~p_drop:0.4 ~rounds in
    let trace =
      Runner.run ~corrupt:(corrupt_compiled rng ~n ~pi) ~faults ~rounds compiled
    in
    let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
    check
      (Printf.sprintf "Theorem 4 (seed %d)" seed)
      true
      (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace)
  done

let test_theorem4_late_reveal_destabilizes_briefly () =
  (* A process mute through round 12 reveals itself with a huge round
     variable; Σ⁺ must hold in both stable windows. *)
  let n = 4 in
  let pi, compiled, valid = compiled_omission_consensus ~n ~f:1 in
  let corrupt p (st : _ Compiler.state) =
    if p = 3 then { st with Compiler.c = 1_000_000 } else st
  in
  let faults = Faults.of_events ~n [ Faults.Mute { pid = 3; first = 1; last = 12 } ] in
  let trace = Runner.run ~corrupt ~faults ~rounds:40 compiled in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  check "ftss across the reveal" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace);
  (* The correct processes end up at the revealed (huge) round numbers. *)
  (match Trace.state_after trace ~round:40 0 with
  | Some st -> check "adopted the revealed round" true (st.Compiler.c > 1_000_000)
  | None -> Alcotest.fail "process crashed unexpectedly")

let test_repeated_completions_mechanics () =
  let n = 3 in
  let pi, compiled, _ = compiled_omission_consensus ~n ~f:1 in
  let fr = pi.Canonical.final_round in
  let trace = Runner.run ~faults:(Faults.none n) ~rounds:(3 * fr) compiled in
  let cs = Repeated.completions trace in
  (* From the good initial state (c = 1), iteration k completes when the
     round variable wraps: at actual rounds fr, 2*fr, 3*fr. *)
  check_int "three iterations x three processes" (3 * n) (List.length cs);
  List.iter
    (fun c ->
      check "completion rounds are multiples of final_round" true
        (c.Repeated.round mod fr = 0);
      check "decision present" true (c.Repeated.decision <> None))
    cs

let test_sigma_plus_detects_disagreement () =
  (* Sanity-check the checker itself: a trace in which two correct
     processes complete with different decisions must violate sigma_plus.
     Systemic corruption of Π's internal trust state produces one: process
     0 starts its first iteration distrusting process 1, so it rejects
     process 1's smaller proposal while process 1 decides it. *)
  let n = 2 in
  let propose p = if p = 0 then 5 else 3 in
  let pi = Omission_consensus.make ~n ~f:0 ~propose in
  let compiled = Compiler.compile ~n pi in
  let corrupt p (st : _ Compiler.state) =
    if p = 0 then
      { st with Compiler.s = { st.Compiler.s with Omission_consensus.distrusted = Pidset.singleton 1 } }
    else st
  in
  let trace = Runner.run ~corrupt ~faults:(Faults.none n) ~rounds:pi.Canonical.final_round compiled in
  let spec = Repeated.sigma_plus ~final_round:pi.Canonical.final_round ~valid:(fun _ -> true) () in
  check "sigma_plus flags the disagreement" false
    (spec.Spec.holds trace ~faulty:Pidset.empty)

let test_repeated_async_drivers_agree () =
  (* Both drivers consume the same proposal stream; shared and rebuilt
     heaps must each decide every instance. *)
  let n = 4 and instances = 3 in
  let propose p i = 100 + (((p * 13) + (i * 7)) mod 50) in
  let style = Ftss_async.Consensus.self_stabilizing in
  let shared =
    Repeated.run_async_shared ~n ~seed:3 ~style ~propose ~instances
      ~horizon_per_instance:300 ()
  in
  let rebuilt =
    Repeated.run_async_rebuilt ~n ~seed:3 ~style ~propose ~instances
      ~horizon_per_instance:300 ()
  in
  check_int "shared heap decides every instance" instances
    shared.Repeated.instances_decided;
  check_int "rebuilt heaps decide every instance" instances
    rebuilt.Repeated.instances_decided;
  check "decisions recorded" true
    (shared.Repeated.decisions > 0 && rebuilt.Repeated.decisions > 0)

let prop_theorem4_sweep =
  QCheck.Test.make ~name:"Theorem 4 under random corruption and omission" ~count:40
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.create ((seed * 131) + 17) in
      let n = Rng.int_in rng 2 6 in
      let f = Rng.int rng n in
      let pi, compiled, valid = compiled_omission_consensus ~n ~f in
      let rounds = Rng.int_in rng 5 50 in
      let faults = Faults.random_omission rng ~n ~f ~p_drop:0.6 ~rounds in
      let trace =
        Runner.run ~corrupt:(corrupt_compiled rng ~n ~pi) ~faults ~rounds compiled
      in
      let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
      Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "flooding-consensus",
      [
        tc "failure-free decides minimum" `Quick test_flooding_failure_free;
        tc "tolerates crashes" `Quick test_flooding_tolerates_crashes;
        tc "broken by omission (negative)" `Quick test_flooding_broken_by_omission;
      ] );
    ( "omission-consensus",
      [
        tc "survives the flooding counterexample" `Quick test_omission_survives_counterexample;
        tc "random omission adversaries" `Quick test_omission_random_adversaries;
        tc "mixed crash and omission" `Quick test_omission_mixed_crash_and_omission;
      ] );
    ( "interactive-consistency",
      [
        tc "failure-free full vector" `Quick test_ic_failure_free_full_vector;
        tc "random omission agreement" `Quick test_ic_random_omission_agreement;
      ] );
    ( "leader-election",
      [
        tc "failure-free elects min pid" `Quick test_leader_failure_free_elects_zero;
        tc "random omission agreement" `Quick test_leader_random_omission_agreement;
      ] );
    ( "atomic-commit",
      [
        tc "all-yes commits" `Quick test_ac_all_yes_commits;
        tc "single no aborts everywhere" `Quick test_ac_single_no_aborts_everywhere;
        tc "withheld vote aborts" `Quick test_ac_withheld_vote_aborts;
        tc "random omission agreement" `Quick test_ac_random_omission_agreement;
        tc "compiles with corrupted votes" `Quick test_ac_compiles_with_corrupted_votes;
      ] );
    ( "kp90",
      [ tc "terminating vs repeated contrast" `Quick test_kp90_contrast ] );
    ( "theorem-4",
      [
        tc "failure-free from corruption" `Quick test_theorem4_failure_free_from_corruption;
        tc "random adversaries" `Quick test_theorem4_random_adversaries;
        tc "late reveal destabilizes briefly" `Quick test_theorem4_late_reveal_destabilizes_briefly;
        tc "completions mechanics" `Quick test_repeated_completions_mechanics;
        tc "sigma_plus detects disagreement" `Quick test_sigma_plus_detects_disagreement;
        tc "async shared vs rebuilt heaps" `Quick test_repeated_async_drivers_agree;
        QCheck_alcotest.to_alcotest prop_theorem4_sweep;
      ] );
  ]
