(* Tests for the paper's core: round agreement (Fig. 1 / Thm 3), the
   solving definitions (Defs. 2.1-2.4), the compiler (Fig. 3 / Thm 4
   mechanics) and the impossibility scenarios (Thms 1-2). *)

open Ftss_util
open Ftss_sync
open Ftss_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_ra ?corrupt ?corrupt_at ~faults ~rounds () =
  Runner.run ?corrupt ?corrupt_at ~faults ~rounds Round_agreement.protocol

let c_exn trace ~round p =
  match Trace.state_before trace ~round p with
  | Some c -> c
  | None -> Alcotest.fail "unexpected crash"

(* --- Round agreement / Theorem 3 --- *)

let test_ra_failure_free_converges_in_one_round () =
  let rng = Rng.create 1 in
  let trace =
    run_ra
      ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:1_000_000)
      ~faults:(Faults.none 5) ~rounds:6 ()
  in
  let reference = c_exn trace ~round:2 0 in
  List.iter
    (fun p -> check_int "agreement at round 2" reference (c_exn trace ~round:2 p))
    (Pid.all 5);
  (* and the rate condition holds thereafter *)
  List.iter
    (fun p -> check_int "rate" (reference + 1) (c_exn trace ~round:3 p))
    (Pid.all 5)

let test_ra_jumps_to_max_plus_one () =
  let corrupt p _ = if p = 0 then 100 else 5 in
  let trace = run_ra ~corrupt ~faults:(Faults.none 2) ~rounds:2 () in
  check_int "max+1 adopted by both" 101 (c_exn trace ~round:2 0);
  check_int "max+1 adopted by both" 101 (c_exn trace ~round:2 1)

let test_ra_ftss_solves_with_stabilization_1 () =
  (* Random omissions + random corruption: Def. 2.4 with r = 1 must hold. *)
  for seed = 0 to 20 do
    let rng = Rng.create seed in
    let n = Rng.int_in rng 2 7 in
    let rounds = Rng.int_in rng 5 25 in
    let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.4 ~rounds in
    let trace =
      run_ra ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:1000) ~faults ~rounds ()
    in
    check
      (Printf.sprintf "ftss-solves (seed %d)" seed)
      true
      (Solve.ftss_solves Round_agreement.spec
         ~stabilization:Round_agreement.stabilization_time trace)
  done

let test_ra_measured_stabilization_at_most_1 () =
  for seed = 21 to 40 do
    let rng = Rng.create seed in
    let n = Rng.int_in rng 2 7 in
    let rounds = Rng.int_in rng 8 30 in
    let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.3 ~rounds in
    let trace =
      run_ra ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:10_000) ~faults ~rounds ()
    in
    let measured = Solve.measured_stabilization Round_agreement.spec trace in
    check (Printf.sprintf "measured <= 1 (seed %d)" seed) true (measured <= 1)
  done

let test_ra_reveal_destabilizes_then_restabilizes () =
  (* A mute process reveals at round 6 with a huge round variable: agreement
     must break briefly and re-establish within 1 round of the coterie
     change. *)
  let corrupt p _ = if p = 2 then 500 else 7 in
  let faults = Faults.of_events ~n:3 [ Faults.Mute { pid = 2; first = 1; last = 5 } ] in
  let trace = run_ra ~corrupt ~faults ~rounds:12 () in
  (* At round 7 the revealed value has propagated: all correct agree. *)
  check "disagreement at reveal" true (c_exn trace ~round:6 0 <> 500 + 5);
  let reference = c_exn trace ~round:7 0 in
  check_int "re-agreement one round after reveal" reference (c_exn trace ~round:7 1);
  check "ftss-solves across the reveal" true
    (Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace)

let test_ra_ss_solves_failure_free () =
  let rng = Rng.create 5 in
  let trace =
    run_ra
      ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:999)
      ~faults:(Faults.none 4) ~rounds:10 ()
  in
  check "ss-solves with stabilization 1" true
    (Solve.ss_solves Round_agreement.spec ~stabilization:1 trace);
  check "does not ss-solve with stabilization 0" false
    (Solve.ss_solves Round_agreement.spec ~stabilization:0 trace)

let test_ra_ft_solves_from_good_state () =
  (* From the protocol-specified initial state, with crash faults only,
     Assumption 1 holds on the whole history (Def. 2.1). *)
  let faults = Faults.of_events ~n:4 [ Faults.Crash { pid = 3; round = 2 } ] in
  let trace = run_ra ~faults ~rounds:8 () in
  check "ft-solves" true (Solve.ft_solves Round_agreement.spec trace)

(* --- Spec machinery --- *)

let test_spec_agreement_detects_violation () =
  let corrupt p _ = p in
  let faults =
    Faults.of_events ~n:3 [ Faults.Isolate { pid = 2; first = 1; last = 4 } ]
  in
  let trace = run_ra ~corrupt ~faults ~rounds:4 () in
  let spec = Spec.round_agreement ~round_of:(fun c -> c) in
  check "correct pair agrees from round 2, but round 1 differs" false
    (spec.Spec.holds trace ~faulty:(Pidset.singleton 2))

let test_spec_rate_detects_jump () =
  let corrupt p _ = if p = 0 then 50 else 1 in
  let trace = run_ra ~corrupt ~faults:(Faults.none 2) ~rounds:2 () in
  let rate = Spec.round_rate ~round_of:(fun c -> c) in
  (* Process 1 jumps from 1 to 51: rate violated. *)
  check "rate violated by jump" false (rate.Spec.holds trace ~faulty:Pidset.empty)

let test_spec_faulty_processes_exempt () =
  let corrupt p _ = if p = 2 then 1000 else 1 in
  let faults = Faults.of_events ~n:3 [ Faults.Isolate { pid = 2; first = 1; last = 6 } ] in
  let trace = run_ra ~corrupt ~faults ~rounds:6 () in
  let spec = Round_agreement.spec in
  check "holds when deviant is declared faulty" true
    (spec.Spec.holds trace ~faulty:(Pidset.singleton 2));
  check "fails when deviant is considered correct" false
    (spec.Spec.holds trace ~faulty:Pidset.empty)

let test_uniformity_spec () =
  let spec = Spec.uniformity ~round_of:(fun c -> c) ~halted:(fun c -> c = min_int) in
  let corrupt p _ = if p = 1 then 99 else 1 in
  let faults = Faults.of_events ~n:2 [ Faults.Isolate { pid = 1; first = 1; last = 3 } ] in
  let trace = run_ra ~corrupt ~faults ~rounds:3 () in
  check "disagreeing unhalted faulty process violates uniformity" false
    (spec.Spec.holds trace ~faulty:(Pidset.singleton 1))

(* --- Compiler mechanics --- *)

let test_normalize () =
  check_int "good initial state runs round 1" 1 (Compiler.normalize ~final_round:3 1);
  check_int "c=fr runs the final round" 3 (Compiler.normalize ~final_round:3 3);
  check_int "wraps to a new iteration" 1 (Compiler.normalize ~final_round:3 4);
  check_int "corrupted zero" 3 (Compiler.normalize ~final_round:3 0);
  check_int "negative corrupted value" 2 (Compiler.normalize ~final_round:3 (-1));
  check_int "fr=1 constant" 1 (Compiler.normalize ~final_round:1 12345)

let test_iteration_index () =
  check_int "first iteration" 0 (Compiler.iteration ~final_round:3 2);
  check_int "c=fr still first iteration" 0 (Compiler.iteration ~final_round:3 3);
  check_int "c=fr+1 second iteration" 1 (Compiler.iteration ~final_round:3 4);
  check_int "negative floors" (-1) (Compiler.iteration ~final_round:3 (-1))

(* A toy canonical protocol: after k rounds of full-information exchange,
   decide the minimum pid whose state was ever received. *)
let toy_pi ~final_round : (Pidset.t, Pid.t) Canonical.t =
  {
    Canonical.name = "toy-min";
    final_round;
    s_init = (fun p -> Pidset.singleton p);
    transition =
      (fun _ s deliveries _k ->
        List.fold_left
          (fun acc { Protocol.payload; _ } -> Pidset.union acc payload)
          s deliveries);
    decide = (fun s -> Pidset.min_elt_opt s);
  }

let run_compiled ?corrupt ~n ~faults ~rounds pi =
  Runner.run ?corrupt ~faults ~rounds (Compiler.compile ~n pi)

let compiled_state_exn trace ~round p =
  match Trace.state_before trace ~round p with
  | Some st -> st
  | None -> Alcotest.fail "unexpected crash"

let test_compiled_failure_free_iterates () =
  let pi = toy_pi ~final_round:3 in
  let trace = run_compiled ~n:3 ~faults:(Faults.none 3) ~rounds:10 pi in
  (* Round variables advance in lockstep from the good initial state. *)
  List.iter
    (fun p ->
      let st = compiled_state_exn trace ~round:10 p in
      check_int "round variable" 10 st.Compiler.c)
    (Pid.all 3);
  (* c=1,2 -> k=2,3; reset when c reaches 3 (normalize 3 = 1): first
     iteration completes at end of the round where k=3 ran. c starts at 1 so
     k = normalize 1 = 2... *)
  ignore pi

let test_compiled_decisions_agree () =
  let pi = toy_pi ~final_round:4 in
  let trace = run_compiled ~n:4 ~faults:(Faults.none 4) ~rounds:16 pi in
  let decisions =
    List.filter_map
      (fun p ->
        let st = compiled_state_exn trace ~round:16 p in
        st.Compiler.last_decision)
      (Pid.all 4)
  in
  check_int "everyone decided" 4 (List.length decisions);
  check "all equal" true (List.for_all (fun d -> d = List.hd decisions) decisions);
  check_int "decided min pid" 0 (List.hd decisions)

let test_compiled_round_spec_ftss () =
  for seed = 50 to 65 do
    let rng = Rng.create seed in
    let n = Rng.int_in rng 2 6 in
    let fr = Rng.int_in rng 2 5 in
    let pi = toy_pi ~final_round:fr in
    let rounds = Rng.int_in rng 10 40 in
    let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.3 ~rounds in
    let corrupt =
      Compiler.corrupt rng ~pi ~n ~c_bound:1000 ~corrupt_s:(fun rng _ _ ->
          Pidset.of_pred n (fun _ -> Rng.bool rng))
    in
    let trace = run_compiled ~corrupt ~n ~faults ~rounds pi in
    check
      (Printf.sprintf "compiled round agreement ftss (seed %d)" seed)
      true
      (Solve.ftss_solves (Compiler.round_spec ()) ~stabilization:1 trace)
  done

let test_compiled_reset_clears_suspects () =
  let pi = toy_pi ~final_round:2 in
  (* Corrupt every suspect set to "everyone"; within one completed iteration
     the sets must be reset to empty. *)
  let corrupt _ (st : (Pidset.t, Pid.t) Compiler.state) =
    { st with Compiler.suspects = Pidset.full 3 }
  in
  let trace = run_compiled ~corrupt ~n:3 ~faults:(Faults.none 3) ~rounds:6 pi in
  let st = compiled_state_exn trace ~round:6 0 in
  check "suspects empty after reset" true (Pidset.is_empty st.Compiler.suspects)

let test_compiled_suspects_stale_round_sender () =
  (* One process starts with a lagging round variable: everyone else must
     suspect it (its tags disagree), and its messages must be filtered,
     until the next iteration boundary resets suspicion. *)
  let pi = toy_pi ~final_round:5 in
  (* c = 6 keeps the next value (7) inside the same iteration, so the
     suspect set survives to the start of round 2. *)
  let corrupt p (st : (Pidset.t, Pid.t) Compiler.state) =
    if p = 2 then { st with Compiler.c = 0 } else { st with Compiler.c = 6 }
  in
  let trace = run_compiled ~corrupt ~n:3 ~faults:(Faults.none 3) ~rounds:2 pi in
  let st0 = compiled_state_exn trace ~round:2 0 in
  check "stale sender suspected" true (Pidset.mem 2 st0.Compiler.suspects);
  (* The lagging process heard round tag 6 and adopts 7. *)
  let st2 = compiled_state_exn trace ~round:2 2 in
  check_int "lagging process adopts max+1" 7 st2.Compiler.c

(* --- Impossibility scenarios --- *)

let test_theorem1_confirmed () =
  let report = Impossibility.Theorem1.run ~isolation:5 ~c_p:17 ~c_q:3 ~suffix:6 in
  check "gap persists" true (report.Impossibility.Theorem1.gap_at_suffix > 0);
  check "suffix = fresh run" true report.Impossibility.Theorem1.suffix_matches_fresh_run;
  check "reconciliation violates rate" true
    (report.Impossibility.Theorem1.rate_violation_round <> None);
  check "rate-obeying never agrees" true
    report.Impossibility.Theorem1.rate_obeying_never_agrees;
  check "theorem confirmed" true (Impossibility.Theorem1.confirms_theorem report)

let test_theorem1_various_parameters () =
  List.iter
    (fun (iso, cp, cq, suf) ->
      let report = Impossibility.Theorem1.run ~isolation:iso ~c_p:cp ~c_q:cq ~suffix:suf in
      check
        (Printf.sprintf "confirmed for iso=%d" iso)
        true
        (Impossibility.Theorem1.confirms_theorem report))
    [ (1, 2, 9, 4); (3, 1000, 1, 8); (10, 5, 6, 2) ]

let test_theorem1_rejects_equal_rounds () =
  Alcotest.check_raises "equal c" (Invalid_argument "Theorem1.run: round variables must differ")
    (fun () -> ignore (Impossibility.Theorem1.run ~isolation:2 ~c_p:4 ~c_q:4 ~suffix:4))

let test_theorem2_confirmed () =
  let report = Impossibility.Theorem2.run ~silence_threshold:3 ~c_p:11 ~c_q:2 ~rounds:10 in
  check "views identical" true report.Impossibility.Theorem2.views_identical;
  check "halting strawman halts a correct process" true
    report.Impossibility.Theorem2.self_checking_halts_correct_process;
  check "non-halting strawman violates uniformity" true
    report.Impossibility.Theorem2.never_halting_violates_uniformity;
  check "theorem confirmed" true (Impossibility.Theorem2.confirms_theorem report)

let prop_ra_ftss_random =
  QCheck.Test.make ~name:"round agreement ftss-solves under random adversaries" ~count:60
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed * 7919) in
      let n = Rng.int_in rng 2 8 in
      let rounds = Rng.int_in rng 3 30 in
      let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.6 ~rounds in
      let trace =
        Runner.run
          ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:100_000)
          ~faults ~rounds Round_agreement.protocol
      in
      Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace)

let prop_compiled_round_agreement_random =
  QCheck.Test.make ~name:"compiled protocol round variables ftss-agree" ~count:40
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.create ((seed * 31) + 1) in
      let n = Rng.int_in rng 2 6 in
      let fr = Rng.int_in rng 1 6 in
      let pi = toy_pi ~final_round:fr in
      let rounds = Rng.int_in rng 5 30 in
      let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.5 ~rounds in
      let corrupt =
        Compiler.corrupt rng ~pi ~n ~c_bound:500 ~corrupt_s:(fun rng _ _ ->
            Pidset.of_pred n (fun _ -> Rng.bool rng))
      in
      let trace = Runner.run ~corrupt ~faults ~rounds (Compiler.compile ~n pi) in
      Solve.ftss_solves (Compiler.round_spec ()) ~stabilization:1 trace)

(* --- Golden determinism: seeded core executions pinned to the exact
   renderings the pre-overhaul engine produced. A drift anywhere in the
   runner, the compiler step, or the RNG consumption order changes the
   digest and fails here first. --- *)

let md5 s = Digest.to_hex (Digest.string s)

let test_golden_round_agreement () =
  let rng = Rng.create 9 in
  let faults = Faults.random_omission rng ~n:4 ~f:2 ~p_drop:0.45 ~rounds:12 in
  let trace =
    Runner.run
      ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:1000)
      ~faults ~rounds:12 Round_agreement.protocol
  in
  let rendered = Format.asprintf "%a" (Trace.pp_rounds Format.pp_print_int) trace in
  check_int "rendered length" 1011 (String.length rendered);
  Alcotest.(check string) "pp_rounds digest" "8184f9f9355b5362bd7d78878221fa26"
    (md5 rendered);
  check_int "measured stabilization" 0
    (Solve.measured_stabilization Round_agreement.spec trace);
  check "ftss-solves with stabilization 1" true
    (Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace)

let test_golden_compiled_consensus () =
  let open Ftss_protocols in
  let pi = Omission_consensus.make ~n:3 ~f:1 ~propose:(fun p -> 50 + p) in
  let compiled = Compiler.compile ~n:3 pi in
  let faults =
    Faults.of_events ~n:3
      [
        Faults.Mute { pid = 1; first = 1; last = 2 };
        Faults.Drop { src = 2; dst = 0; round = 5 };
      ]
  in
  let corrupt p (st : _ Compiler.state) = { st with Compiler.c = 1 + ((p + 1) * 97) } in
  let trace = Runner.run ~corrupt ~faults ~rounds:10 compiled in
  let proj =
    String.concat "\n"
      (List.concat_map
         (fun round ->
           List.map
             (fun p ->
               match Trace.state_after trace ~round p with
               | None -> Printf.sprintf "r%d p%d !" round p
               | Some st ->
                 Printf.sprintf "r%d p%d c=%d completed=%d last=%s suspects=%s" round p
                   st.Compiler.c st.Compiler.completed
                   (match st.Compiler.last_decision with
                   | None -> "-"
                   | Some d -> string_of_int d)
                   (Pidset.to_string st.Compiler.suspects))
             (Pid.all 3))
         (List.init 10 (fun i -> i + 1)))
  in
  check_int "projection length" 1348 (String.length proj);
  Alcotest.(check string) "state projection digest"
    "107fd1fcd25142cea3da242601ead305" (md5 proj);
  let valid d = d >= 50 && d < 53 in
  let completed, agreeing =
    Repeated.count_agreeing_iterations trace ~faulty:(Faults.faulty faults) ~valid
  in
  check_int "completed iterations" 3 completed;
  check_int "agreeing iterations" 3 agreeing;
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  check "ftss-solves at the compiler's bound" true
    (Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "round-agreement",
      [
        tc "failure-free convergence in one round" `Quick test_ra_failure_free_converges_in_one_round;
        tc "jumps to max+1" `Quick test_ra_jumps_to_max_plus_one;
        tc "ftss-solves, stabilization 1 (Thm 3)" `Quick test_ra_ftss_solves_with_stabilization_1;
        tc "measured stabilization <= 1" `Quick test_ra_measured_stabilization_at_most_1;
        tc "reveal destabilizes then restabilizes" `Quick test_ra_reveal_destabilizes_then_restabilizes;
        tc "ss-solves failure-free" `Quick test_ra_ss_solves_failure_free;
        tc "ft-solves from good state" `Quick test_ra_ft_solves_from_good_state;
        QCheck_alcotest.to_alcotest prop_ra_ftss_random;
      ] );
    ( "spec",
      [
        tc "agreement detects violation" `Quick test_spec_agreement_detects_violation;
        tc "rate detects jump" `Quick test_spec_rate_detects_jump;
        tc "faulty processes exempt" `Quick test_spec_faulty_processes_exempt;
        tc "uniformity spec" `Quick test_uniformity_spec;
      ] );
    ( "compiler",
      [
        tc "normalize" `Quick test_normalize;
        tc "iteration index" `Quick test_iteration_index;
        tc "failure-free lockstep" `Quick test_compiled_failure_free_iterates;
        tc "decisions agree across processes" `Quick test_compiled_decisions_agree;
        tc "round spec ftss under adversaries" `Quick test_compiled_round_spec_ftss;
        tc "reset clears corrupted suspects" `Quick test_compiled_reset_clears_suspects;
        tc "stale-round sender suspected" `Quick test_compiled_suspects_stale_round_sender;
        QCheck_alcotest.to_alcotest prop_compiled_round_agreement_random;
      ] );
    ( "impossibility",
      [
        tc "Theorem 1 confirmed" `Quick test_theorem1_confirmed;
        tc "Theorem 1 parameter sweep" `Quick test_theorem1_various_parameters;
        tc "Theorem 1 rejects equal rounds" `Quick test_theorem1_rejects_equal_rounds;
        tc "Theorem 2 confirmed" `Quick test_theorem2_confirmed;
      ] );
    ( "golden",
      [
        tc "round agreement under seeded omissions" `Quick test_golden_round_agreement;
        tc "compiled omission consensus" `Quick test_golden_compiled_consensus;
      ] );
  ]
