(* Streaming SLO monitors and the flight recorder (lib/monitor).

   The end-to-end cases replay the serve scenarios: a seeded corruption
   storm against tight budgets must fire alarms and produce a flight
   snapshot whose causal cone contains the triggering event; a clean run
   against the same budgets stays silent; and attaching monitors must
   not perturb the run itself (identical report digest). The unit cases
   pin the pieces those runs rest on: the unboxed ring encoding, the
   budget parser, the heal watchdog's episode logic, and the
   OpenMetrics exposition. *)

open Ftss_obs
open Ftss_monitor
module Workload = Ftss_service.Workload
module Service = Ftss_service.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- budget parsing --- *)

let test_budgets_of_string () =
  (match Monitor.budgets_of_string "stab=40,heal=120, p99=800.5 ,drop=0.2,churn=0.05" with
  | Error e -> Alcotest.failf "full spec rejected: %s" e
  | Ok b ->
    check "stab" true (b.Monitor.stab = Some 40);
    check "heal" true (b.Monitor.heal = Some 120);
    check "p99" true (b.Monitor.p99 = Some 800.5);
    check "drop" true (b.Monitor.drop_rate = Some 0.2);
    check "churn" true (b.Monitor.churn = Some 0.05));
  (match Monitor.budgets_of_string "heal=7" with
  | Error e -> Alcotest.failf "partial spec rejected: %s" e
  | Ok b ->
    check "only heal set" true
      (b.Monitor.heal = Some 7 && b.Monitor.stab = None && b.Monitor.p99 = None
     && b.Monitor.drop_rate = None && b.Monitor.churn = None));
  let rejected s = Result.is_error (Monitor.budgets_of_string s) in
  check "unknown key" true (rejected "latency=5");
  check "missing =" true (rejected "stab");
  check "non-integer stab" true (rejected "stab=4.5");
  check "negative heal" true (rejected "heal=-1");
  check "non-numeric p99" true (rejected "p99=fast");
  check "empty spec" true (rejected "");
  check "only commas" true (rejected " , ,")

(* --- flight-recorder ring --- *)

let one_of_each =
  (* Every Event.body constructor once, with distinctive payloads —
     pins the ring's pack/unpack across the whole taxonomy. *)
  [
    Event.Round_begin;
    Event.Round_end;
    Event.Send { src = 3; dst = Some 1 };
    Event.Send { src = 2; dst = None };
    Event.Deliver { src = 1; dst = 4 };
    Event.Drop { src = 0; dst = 2; blame = Some 2 };
    Event.Drop { src = 4; dst = 3; blame = None };
    Event.Crash { pid = 2 };
    Event.Corrupt { pid = 4 };
    Event.Suspect_add { observer = 0; subject = 3 };
    Event.Suspect_remove { observer = 3; subject = 0 };
    Event.Decide { pid = 1; instance = 17; value = 42 };
    Event.Window_open;
    Event.Window_close { opened = 5; measured = 9 };
    Event.Case_start { case = 12345 };
    Event.Case_verdict { case = 12345; ok = true; dedup = false; states = 88 };
    Event.Case_verdict { case = 6; ok = false; dedup = true; states = 3 };
    Event.Coverage { execs = 1000; corpus = 22; points = 640 };
    Event.Submit { pid = 2; ops = 5 };
    Event.Commit { pid = 2; slot = 31; ops = 5 };
    Event.Apply { pid = 3; slot = 31; digest = 987654 };
    Event.Recover { pid = 4; slots = 30 };
  ]

let test_ring_round_trip () =
  let mon = Monitor.create ~n:5 Monitor.no_budgets in
  let evs = List.mapi (fun i body -> Event.make ~time:(100 + i) body) one_of_each in
  List.iter (Monitor.subscriber mon) evs;
  check_int "all pushed" (List.length evs) (Monitor.ring_seen mon);
  let got = Monitor.ring_events mon in
  check_int "all decoded" (List.length evs) (List.length got);
  List.iter2
    (fun (want : Event.t) (have : Event.t) ->
      if have <> want then
        Alcotest.failf "ring round-trip: wanted %s, got %s"
          (Json.to_string (Event.to_json want))
          (Json.to_string (Event.to_json have)))
    evs got

let test_ring_eviction () =
  let mon = Monitor.create ~ring_capacity:8 ~n:3 Monitor.no_budgets in
  for i = 1 to 20 do
    Monitor.subscriber mon (Event.make ~time:i (Event.Submit { pid = 0; ops = i }))
  done;
  check_int "seen counts evictions" 20 (Monitor.ring_seen mon);
  let got = Monitor.ring_events mon in
  check_int "bounded by capacity" 8 (List.length got);
  let times = List.map (fun (e : Event.t) -> e.Event.time) got in
  check "keeps the newest, oldest first" true
    (times = [ 13; 14; 15; 16; 17; 18; 19; 20 ]);
  Alcotest.check_raises "capacity validated"
    (Invalid_argument "Monitor.create: ring_capacity < 1") (fun () ->
      ignore (Monitor.create ~ring_capacity:0 ~n:3 Monitor.no_budgets))

(* --- heal watchdog episode logic, driven synthetically --- *)

let heal_budgets = { Monitor.no_budgets with Monitor.heal = Some 5 }

let test_heal_watchdog_on_apply () =
  (* Late heal: the Apply that closes the episode is past budget. *)
  let mon = Monitor.create ~n:3 heal_budgets in
  let feed t body = Monitor.subscriber mon (Event.make ~time:t body) in
  feed 10 (Event.Corrupt { pid = 1 });
  feed 12 (Event.Apply { pid = 0; slot = 0; digest = 1 });
  check_int "clean replica's apply is no heal" 0 (Monitor.alarm_count mon);
  feed 13 (Event.Apply { pid = 1; slot = 0; digest = 1 });
  check_int "gap 3 <= budget 5: no alarm" 0 (Monitor.alarm_count mon);
  check_int "heal recorded" 3 (Monitor.worst_heal mon);
  feed 20 (Event.Corrupt { pid = 1 });
  feed 30 (Event.Apply { pid = 1; slot = 1; digest = 2 });
  check_int "gap 10 > budget 5: alarm" 1 (Monitor.alarm_count mon);
  (match Monitor.alarms mon with
  | [ a ] ->
    check_string "heal monitor" "heal" a.Monitor.monitor;
    check_int "alarm time" 30 a.Monitor.time
  | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l));
  check_int "worst heal tracked" 10 (Monitor.worst_heal mon)

let test_heal_watchdog_overdue_and_crash () =
  (* Overdue without any Apply: the lazy check against event time fires
     once per episode; a crash closes an episode without alarm. *)
  let mon = Monitor.create ~n:3 heal_budgets in
  let feed t body = Monitor.subscriber mon (Event.make ~time:t body) in
  feed 10 (Event.Corrupt { pid = 1 });
  feed 14 Event.Round_begin;
  check_int "within budget: silent" 0 (Monitor.alarm_count mon);
  feed 16 Event.Round_begin;
  check_int "overdue alarm from unrelated event" 1 (Monitor.alarm_count mon);
  feed 40 Event.Round_begin;
  check_int "one alarm per episode" 1 (Monitor.alarm_count mon);
  feed 50 (Event.Corrupt { pid = 2 });
  feed 52 (Event.Crash { pid = 2 });
  feed 80 Event.Round_begin;
  check_int "crash closes the episode silently" 1 (Monitor.alarm_count mon);
  (* finalize sweeps replicas still dirty at the horizon. *)
  let mon2 = Monitor.create ~n:3 heal_budgets in
  Monitor.subscriber mon2 (Event.make ~time:10 (Event.Corrupt { pid = 0 }));
  Monitor.finalize mon2 ~end_time:100;
  check_int "finalize flags the unhealed replica" 1 (Monitor.alarm_count mon2)

let test_interval_hook () =
  let mon = Monitor.create ~n:3 Monitor.no_budgets in
  let fires = ref [] in
  Monitor.set_interval mon ~every:10 (fun _ ~time -> fires := time :: !fires);
  List.iter
    (fun t -> Monitor.subscriber mon (Event.make ~time:t Event.Round_begin))
    [ 1; 9; 10; 11; 25; 26; 61 ];
  (* Fires on the first event at or past each multiple of [every];
     skipped multiples collapse into the next event. *)
  check "fired at cadence" true (List.rev !fires = [ 10; 25; 61 ]);
  Alcotest.check_raises "cadence validated"
    (Invalid_argument "Monitor.set_interval: every < 1") (fun () ->
      Monitor.set_interval mon ~every:0 (fun _ ~time:_ -> ()))

(* --- end-to-end: seeded storm vs. tight budgets --- *)

let storm_spec =
  {
    Workload.default_spec with
    Workload.ops = 4_000;
    sessions = 50_000;
    keys = 512;
    window = 1_500;
    seed = 5;
  }

let storm_params n =
  {
    (Service.default_params ~n ~seed:9) with
    Service.faults =
      { Service.no_faults with Service.storms = [ (700, 2) ] };
  }

let run_armed ?on_alarm n budgets =
  let wl = Workload.create ~n storm_spec in
  let obs = Obs.create ~record:false ~threadsafe:false () in
  let mon = Monitor.create ~n budgets in
  (match on_alarm with None -> () | Some f -> Monitor.set_on_alarm mon f);
  Monitor.attach mon obs;
  let r = Service.run ~obs ~wl (storm_params n) in
  Monitor.finalize mon ~end_time:r.Service.end_time;
  (r, mon)

(* Zero budgets: any measurable disorder — a repair at positive distance
   from its fault, any corruption-to-apply gap — is a violation. The
   storm guarantees both, whatever the recovery speed. *)
let zero_budgets = { Monitor.no_budgets with Monitor.stab = Some 0; heal = Some 0 }

let test_storm_fires_alarm_with_snapshot () =
  let n = 5 in
  (* Snapshot the flight recorder inside the alarm hook, as serve does:
     by the end of the run the triggering event has long been evicted. *)
  let prefix = Filename.concat (Filename.get_temp_dir_name ()) "ftss_test_flight" in
  let first_seen = ref None in
  let snapshot = ref None in
  let r, mon =
    run_armed n zero_budgets ~on_alarm:(fun mon a ->
        if !first_seen = None then begin
          first_seen := Some a;
          snapshot := Some (Recorder.snapshot mon a ~prefix)
        end)
  in
  check "run still converged" true r.Service.converged;
  check "alarms fired" true (Monitor.alarm_count mon > 0);
  let first = List.hd (Monitor.alarms mon) in
  check "hook saw the first alarm" true (!first_seen = Some first);
  check "stabilization breached the budget" true
    (List.exists
       (fun (a : Monitor.alarm) -> a.Monitor.monitor = "stab")
       (Monitor.alarms mon));
  check "disorder was measured" true (Monitor.measured_d mon > 0);
  let snap = match !snapshot with Some s -> s | None -> Alcotest.fail "no snapshot" in
  check "ring dumped" true (snap.Recorder.events > 0);
  check "trigger found in ring" true snap.Recorder.target_found;
  check "cone is non-empty" true (snap.Recorder.cone > 0);
  let slurp path =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let jsonl = slurp snap.Recorder.jsonl_path in
  check "jsonl non-empty" true (String.length jsonl > 0);
  (* Every line of the snapshot decodes back to an event. *)
  String.split_on_char '\n' jsonl
  |> List.filter (fun l -> l <> "")
  |> List.iteri (fun i line ->
         match Json.of_string line with
         | Error e -> Alcotest.failf "snapshot line %d unparseable: %s" i e
         | Ok j ->
           if Event.of_json j = None then
             Alcotest.failf "snapshot line %d not an event" i);
  let dot = slurp snap.Recorder.dot_path in
  check "dot renders a digraph" true
    (String.length dot >= 7 && String.sub dot 0 7 = "digraph");
  Sys.remove snap.Recorder.jsonl_path;
  Sys.remove snap.Recorder.dot_path

let test_clean_run_is_silent () =
  let n = 5 in
  let wl = Workload.create ~n storm_spec in
  let obs = Obs.create ~record:false ~threadsafe:false () in
  let mon = Monitor.create ~n zero_budgets in
  Monitor.attach mon obs;
  let r = Service.run ~obs ~wl (Service.default_params ~n ~seed:9) in
  Monitor.finalize mon ~end_time:r.Service.end_time;
  check "converged" true r.Service.converged;
  check_int "fault-free run fires nothing" 0 (Monitor.alarm_count mon);
  check_int "no stabilization measured" 0 (Monitor.measured_d mon);
  check "commits were observed" true
    (Metrics.lhist_count (Monitor.latency mon) > 0)

let test_monitoring_does_not_perturb_run () =
  (* Same seeds, with and without the armed hub: identical digest. *)
  let n = 5 in
  let wl = Workload.create ~n storm_spec in
  let bare = Service.run ~wl (storm_params n) in
  let armed, mon = run_armed n zero_budgets in
  check_int "identical report digest"
    (Service.report_digest bare)
    (Service.report_digest armed);
  check "monitor saw the whole run" true
    (Monitor.ring_seen mon > armed.Service.unique_ops)

(* --- rendering --- *)

let test_statuses_and_openmetrics () =
  let _, mon = run_armed 5 zero_budgets in
  let sts = Monitor.statuses mon in
  check_int "five monitors" 5 (List.length sts);
  List.iter
    (fun (s : Monitor.status) ->
      check (s.Monitor.name ^ " armed flag") true
        (s.Monitor.armed = (s.Monitor.name = "stab" || s.Monitor.name = "heal")))
    sts;
  let stab = List.find (fun s -> s.Monitor.name = "stab") sts in
  check "stab fired" true (stab.Monitor.firing > 0);
  let om = Monitor.openmetrics mon in
  let ends_with suffix s =
    let ls = String.length suffix and l = String.length s in
    l >= ls && String.sub s (l - ls) ls = suffix
  in
  check "openmetrics terminated" true (ends_with "# EOF\n" om);
  let contains hay sub =
    let lh = String.length hay and ls = String.length sub in
    let rec go i = i + ls <= lh && (String.sub hay i ls = sub || go (i + 1)) in
    go 0
  in
  check "alarm counter exposed" true
    (contains om "ftss_monitor_alarms_total{monitor=\"stab\"}");
  check "latency summary exposed" true
    (contains om "ftss_commit_latency_ticks{quantile=\"0.99\"}");
  check "dashboard names the alarm" true
    (contains (Monitor.dashboard_string mon) "ALARM")

let suite =
  [
    ( "monitor",
      [
        Alcotest.test_case "budget spec parsing" `Quick test_budgets_of_string;
        Alcotest.test_case "ring round-trips every event kind" `Quick
          test_ring_round_trip;
        Alcotest.test_case "ring evicts oldest first" `Quick test_ring_eviction;
        Alcotest.test_case "heal watchdog on apply" `Quick test_heal_watchdog_on_apply;
        Alcotest.test_case "heal watchdog overdue + crash" `Quick
          test_heal_watchdog_overdue_and_crash;
        Alcotest.test_case "interval hook cadence" `Quick test_interval_hook;
        Alcotest.test_case "storm fires alarm with flight snapshot" `Quick
          test_storm_fires_alarm_with_snapshot;
        Alcotest.test_case "clean run is silent" `Quick test_clean_run_is_silent;
        Alcotest.test_case "monitoring does not perturb the run" `Quick
          test_monitoring_does_not_perturb_run;
        Alcotest.test_case "statuses and openmetrics" `Quick
          test_statuses_and_openmetrics;
      ] );
  ]
