(* Unit and property tests for ftss_util. *)

open Ftss_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_pid_all () =
  check_int "all 4 has 4 pids" 4 (List.length (Pid.all 4));
  check_int "all 0 is empty" 0 (List.length (Pid.all 0));
  check "validity" true (Pid.is_valid ~n:3 2);
  check "invalid above" false (Pid.is_valid ~n:3 3);
  check "invalid below" false (Pid.is_valid ~n:3 (-1));
  Alcotest.check_raises "negative size" (Invalid_argument "Pid.all: negative system size")
    (fun () -> ignore (Pid.all (-1)))

let test_pidset_helpers () =
  let s = Pidset.of_pred 5 (fun p -> p mod 2 = 0) in
  check_int "evens below 5" 3 (Pidset.cardinal s);
  check "full contains all" true (Pidset.equal (Pidset.full 3) (Pidset.of_list [ 0; 1; 2 ]));
  check "pp does not raise" true (String.length (Pidset.to_string s) > 0)

let test_pidmap_init () =
  let m = Pidmap.init 4 (fun p -> p * p) in
  check_int "bindings" 4 (Pidmap.cardinal m);
  check_int "value" 9 (Pidmap.find 3 m)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  check "equal streams from equal seeds" true (xs = ys)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.int a 10 in
  let b = Rng.copy a in
  check_int "copy continues identically" (Rng.int b 1000000) (Rng.int a 1000000)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  check "split streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check "int in bound" true (0 <= x && x < 7);
    let y = Rng.int_in rng (-3) 3 in
    check "int_in in range" true (-3 <= y && y <= 3)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_sample () =
  let rng = Rng.create 11 in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample rng 5 xs in
  check_int "sample size" 5 (List.length s);
  check "sample distinct" true (List.length (List.sort_uniq compare s) = 5);
  check "sample subset" true (List.for_all (fun x -> List.mem x xs) s);
  check "oversample is identity" true (Rng.sample rng 50 xs = xs)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 13 in
  let xs = List.init 30 Fun.id in
  let s = Rng.shuffle rng xs in
  check "same elements" true (List.sort compare s = xs)

let test_rng_chance_extremes () =
  let rng = Rng.create 5 in
  check "p=0 never" false (Rng.chance rng 0.0);
  check "p=1 always" true (Rng.chance rng 1.0)

let test_stats_basics () =
  let open Stats in
  Alcotest.(check (float 1e-9)) "mean" 2.0 (mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev of constant" 0.0 (stddev [ 4.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p100 is max" 3.0 (percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.max [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (mean []))

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:int_of_float [ 1.1; 1.9; 2.5; 3.0 ] in
  Alcotest.(check (list (pair int int))) "buckets" [ (1, 2); (2, 1); (3, 1) ] h

let test_table_renders () =
  let t = Table.create ~title:"demo" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "333" ];
  let s = Format.asprintf "%a" Table.pp t in
  check "contains title" true (String.length s > 0);
  check "contains cell" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0))

(* --- Width-polymorphic Pidset: boundary behaviour across the one-word /
   multi-word representation switch, and differential testing against
   the reference [Set.Make (Pid)]. --- *)

module Pidref = Set.Make (Pid)

let test_pidset_boundaries () =
  check_int "one-word cap is 61" 61 Pidset.max_small;
  let top = Pidset.singleton Pidset.max_small in
  check "pid 61 representable" true (Pidset.mem 61 top);
  check_int "full at the word cap" 62 (Pidset.cardinal (Pidset.full 62));
  check_int "of_pred at the word cap" 31
    (Pidset.cardinal (Pidset.of_pred 62 (fun p -> p mod 2 = 0)));
  (* The historic one-word wall is gone: pid 62 and beyond now live in
     the multi-word representation. *)
  check "pid 62 representable" true (Pidset.mem 62 (Pidset.singleton 62));
  check_int "full beyond the word cap" 63 (Pidset.cardinal (Pidset.full 63));
  check_int "full at n=200" 200 (Pidset.cardinal (Pidset.full 200));
  check "of_list spanning the boundary" true
    (Pidset.equal (Pidset.of_list [ 0; 61; 62; 199 ])
       (Pidset.add 199 (Pidset.add 62 (Pidset.add 61 (Pidset.singleton 0)))));
  (* Out-of-range elements are rejected uniformly at the sanity bound. *)
  let oob p =
    Invalid_argument (Printf.sprintf "Pidset: pid %d outside 0..%d" p Pidset.max_pid)
  in
  Alcotest.check_raises "add beyond the sanity bound" (oob (Pidset.max_pid + 1))
    (fun () -> ignore (Pidset.add (Pidset.max_pid + 1) Pidset.empty));
  Alcotest.check_raises "singleton beyond the sanity bound" (oob (Pidset.max_pid + 1))
    (fun () -> ignore (Pidset.singleton (Pidset.max_pid + 1)));
  Alcotest.check_raises "negative pid" (oob (-1)) (fun () ->
      ignore (Pidset.add (-1) Pidset.empty));
  Alcotest.check_raises "of_pred beyond the sanity bound"
    (Invalid_argument
       (Printf.sprintf "Pidset.of_pred: n %d outside 0..%d" (Pidset.max_pid + 2)
          (Pidset.max_pid + 1)))
    (fun () -> ignore (Pidset.of_pred (Pidset.max_pid + 2) (fun _ -> true)));
  Alcotest.check_raises "of_pred negative"
    (Invalid_argument
       (Printf.sprintf "Pidset.of_pred: n -1 outside 0..%d" (Pidset.max_pid + 1)))
    (fun () -> ignore (Pidset.of_pred (-1) (fun _ -> true)));
  Alcotest.check_raises "full beyond the sanity bound"
    (Invalid_argument
       (Printf.sprintf "Pidset.full: n %d outside 0..%d" (Pidset.max_pid + 2)
          (Pidset.max_pid + 1)))
    (fun () -> ignore (Pidset.full (Pidset.max_pid + 2)));
  (* Queries never raise out of range — in either representation. *)
  check "mem out of range is false (one-word)" false
    (Pidset.mem 99 (Pidset.full 62));
  check "mem negative is false (one-word)" false
    (Pidset.mem (-5) (Pidset.full 62));
  check "mem out of range is false (multi-word)" false
    (Pidset.mem 4096 (Pidset.full 200));
  check "mem huge is false (multi-word)" false
    (Pidset.mem max_int (Pidset.full 200));
  check "mem negative is false (multi-word)" false
    (Pidset.mem (-5) (Pidset.full 200));
  check "remove out of range is identity (one-word)" true
    (Pidset.equal (Pidset.full 62) (Pidset.remove 99 (Pidset.full 62)));
  check "remove out of range is identity (multi-word)" true
    (Pidset.equal (Pidset.full 200) (Pidset.remove 4096 (Pidset.full 200)));
  (* Canonical form: a wide set shrunk back under the word cap is
     structurally equal to the set built narrow — the invariant that
     keeps [Stdlib.compare], hashing and trace fingerprints stable. *)
  let shrunk = Pidset.remove 199 (Pidset.add 199 (Pidset.of_list [ 1; 40; 61 ])) in
  check "shrinking re-canonicalizes" true
    (shrunk = Pidset.of_list [ 1; 40; 61 ]);
  check "diff re-canonicalizes" true
    (Pidset.diff (Pidset.full 200) (Pidset.of_pred 200 (fun p -> p >= 10))
    = Pidset.full 10);
  check "inter re-canonicalizes" true
    (Pidset.inter (Pidset.full 200) (Pidset.full 7) = Pidset.full 7)

(* One differential pass of every Pidset operation against the reference
   set implementation, over elements drawn from [0..n-1]. Instantiated
   at the widths bracketing the representation switch (61, 62, 63) and
   deep into multi-word territory (200). *)
let pidset_vs_reference ~n (xs, ys) =
  let clamp = List.filter (fun p -> p < n) in
  let xs = clamp xs and ys = clamp ys in
  let b = Pidset.of_list xs and b' = Pidset.of_list ys in
  let r = Pidref.of_list xs and r' = Pidref.of_list ys in
  let same s m = Pidset.elements s = Pidref.elements m in
  let even p = p mod 2 = 0 in
  let top = n - 1 in
  same b r && same b' r'
  && same (Pidset.union b b') (Pidref.union r r')
  && same (Pidset.inter b b') (Pidref.inter r r')
  && same (Pidset.diff b b') (Pidref.diff r r')
  && same (Pidset.add 17 b) (Pidref.add 17 r)
  && same (Pidset.remove 17 b) (Pidref.remove 17 r)
  && same (Pidset.add top b) (Pidref.add top r)
  && same (Pidset.remove top b) (Pidref.remove top r)
  && same (Pidset.singleton top) (Pidref.singleton top)
  && same (Pidset.filter even b) (Pidref.filter even r)
  && Pidset.is_empty b = Pidref.is_empty r
  && Pidset.cardinal b = Pidref.cardinal r
  && Pidset.equal b b' = Pidref.equal r r'
  (* [Pidset.compare] promises only a total order consistent with
     [equal], so compare the zero/non-zero outcome, not the sign. *)
  && (Pidset.compare b b' = 0) = (Pidref.compare r r' = 0)
  && Pidset.subset b b' = Pidref.subset r r'
  && Pidset.disjoint b b' = Pidref.disjoint r r'
  && List.for_all (fun p -> Pidset.mem p b = Pidref.mem p r) (Pid.all n)
  && Pidset.to_list b = Pidref.to_list r
  && (let acc = ref [] in
      Pidset.iter (fun p -> acc := p :: !acc) b;
      !acc = Pidref.fold (fun p acc -> p :: acc) r [])
  && Pidset.fold (fun p acc -> p :: acc) b []
     = Pidref.fold (fun p acc -> p :: acc) r []
  && Pidset.for_all even b = Pidref.for_all even r
  && Pidset.exists even b = Pidref.exists even r
  && Pidset.min_elt_opt b = Pidref.min_elt_opt r
  && Pidset.max_elt_opt b = Pidref.max_elt_opt r
  (* [Set.choose_opt] picks an unspecified element; only demand that
     ours is a member of the same set. *)
  && (match Pidset.choose_opt b with
     | None -> Pidref.is_empty r
     | Some p -> Pidref.mem p r)

let prop_pidset_matches_reference ~n =
  let pid_list = QCheck.(list_of_size Gen.(0 -- 40) (int_bound (n - 1))) in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "Pidset agrees with Set.Make (Pid) on every operation at n=%d" n)
    ~count:300
    QCheck.(pair pid_list pid_list)
    (pidset_vs_reference ~n)

(* Mixed-width differential pass: one operand below the representation
   switch, the other above, so every cross-representation branch of
   union/inter/diff/subset/disjoint/compare is exercised. *)
let prop_pidset_mixed_widths =
  let narrow = QCheck.(list_of_size Gen.(0 -- 20) (int_bound 61)) in
  let wide = QCheck.(list_of_size Gen.(0 -- 40) (int_bound 199)) in
  QCheck.Test.make
    ~name:"Pidset agrees with the reference across mixed representations"
    ~count:300
    QCheck.(pair narrow wide)
    (pidset_vs_reference ~n:200)

(* Pidmap keyed by pids on either side of the Pidset representation
   switch: the map itself is width-free, but the protocols pair it with
   Pidset universes, so pin the interop at each width. *)
let pidmap_at_width n =
  let m = Pidmap.init n (fun p -> p * p) in
  Pidmap.cardinal m = n
  && Pidmap.find (n - 1) m = (n - 1) * (n - 1)
  && Pidmap.find_opt n m = None
  && (let keys = Pidmap.fold (fun k _ acc -> k :: acc) m [] in
      List.rev keys = Pid.all n)
  && (let evens = Pidmap.filter (fun k _ -> k mod 2 = 0) m in
      Pidmap.cardinal evens = (n + 1) / 2)
  && (* round-trip through the set of keys *)
  Pidset.equal
    (Pidset.of_list (List.map fst (Pidmap.bindings m)))
    (Pidset.full n)

let test_pidmap_widths () =
  List.iter
    (fun n ->
      check (Printf.sprintf "pidmap interop at n=%d" n) true (pidmap_at_width n))
    [ 61; 62; 63; 200 ]

(* Property tests. *)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile lies within sample bounds" ~count:200
    QCheck.(pair (float_bound_inclusive 100.0) (list_of_size Gen.(1 -- 30) (float_bound_inclusive 50.0)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      v >= Stats.min xs && v <= Stats.max xs)

let prop_sample_subset =
  QCheck.Test.make ~name:"Rng.sample yields a distinct subset" ~count:200
    QCheck.(pair small_nat (small_list small_int))
    (fun (k, xs) ->
      let xs = List.mapi (fun i x -> (i, x)) xs in
      let rng = Rng.create (k + List.length xs) in
      let s = Rng.sample rng k xs in
      List.length (List.sort_uniq compare s) = List.length s
      && List.for_all (fun x -> List.mem x xs) s)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "util",
      [
        tc "pid.all and validity" `Quick test_pid_all;
        tc "pidset helpers" `Quick test_pidset_helpers;
        tc "pidset bitset boundaries" `Quick test_pidset_boundaries;
        QCheck_alcotest.to_alcotest (prop_pidset_matches_reference ~n:61);
        QCheck_alcotest.to_alcotest (prop_pidset_matches_reference ~n:62);
        QCheck_alcotest.to_alcotest (prop_pidset_matches_reference ~n:63);
        QCheck_alcotest.to_alcotest (prop_pidset_matches_reference ~n:200);
        QCheck_alcotest.to_alcotest prop_pidset_mixed_widths;
        tc "pidmap init" `Quick test_pidmap_init;
        tc "pidmap widths across the representation switch" `Quick test_pidmap_widths;
        tc "rng determinism" `Quick test_rng_determinism;
        tc "rng copy" `Quick test_rng_copy_independent;
        tc "rng split" `Quick test_rng_split;
        tc "rng bounds" `Quick test_rng_bounds;
        tc "rng sample" `Quick test_rng_sample;
        tc "rng shuffle" `Quick test_rng_shuffle_permutes;
        tc "rng chance extremes" `Quick test_rng_chance_extremes;
        tc "stats basics" `Quick test_stats_basics;
        tc "stats histogram" `Quick test_stats_histogram;
        tc "table renders" `Quick test_table_renders;
        QCheck_alcotest.to_alcotest prop_percentile_bounded;
        QCheck_alcotest.to_alcotest prop_sample_subset;
      ] );
  ]
