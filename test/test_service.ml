(* Tests for the service tower: the KV state machine and its digests, the
   workload generator, the multivalued consensus engine, and end-to-end
   Service runs — fault-free, under the full crash/omission/storm mix
   (the convergence property test), and a golden determinism pin. *)

open Ftss_util
open Ftss_service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Kv --- *)

let test_kv_semantics () =
  let t = Kv.create () in
  check_int "absent reads 0" 0 (Kv.get t 7);
  check "absent" false (Kv.mem t 7);
  Kv.apply t { Kv.id = 0; kind = Kv.Put; key = 7; v1 = 42; v2 = 0 };
  check_int "put" 42 (Kv.get t 7);
  Kv.apply t { Kv.id = 1; kind = Kv.Cas; key = 7; v1 = 41; v2 = 99 };
  check_int "cas miss" 42 (Kv.get t 7);
  Kv.apply t { Kv.id = 2; kind = Kv.Cas; key = 7; v1 = 42; v2 = 99 };
  check_int "cas hit" 99 (Kv.get t 7);
  Kv.apply t { Kv.id = 3; kind = Kv.Delete; key = 7; v1 = 0; v2 = 0 };
  check "deleted" false (Kv.mem t 7);
  (* put 0 is a distinct state from absent *)
  let a = Kv.create () and b = Kv.create () in
  Kv.apply a { Kv.id = 0; kind = Kv.Put; key = 1; v1 = 0; v2 = 0 };
  check "put0 <> absent" true (Kv.digest a <> Kv.digest b)

let test_kv_incremental_digest_matches_recompute () =
  let t = Kv.create () in
  let rng = Rng.create 11 in
  for id = 0 to 4999 do
    let kind =
      match Rng.int rng 4 with 0 -> Kv.Put | 1 -> Kv.Get | 2 -> Kv.Cas | _ -> Kv.Delete
    in
    Kv.apply t
      { Kv.id; kind; key = Rng.int rng 64; v1 = Rng.int rng 16; v2 = Rng.int rng 100 }
  done;
  check_int "incremental = recompute" (Kv.recompute_digest t) (Kv.digest t);
  Kv.corrupt rng ~keys:64 t;
  (* after raw scrambling, recompute is the ground truth the audit uses *)
  check "recompute independent of field" true (Kv.recompute_digest t >= 0)

let test_kv_order_independence () =
  (* state digest is order-independent; batch digest is order-dependent *)
  let a = Kv.create () and b = Kv.create () in
  let o1 = { Kv.id = 0; kind = Kv.Put; key = 1; v1 = 10; v2 = 0 } in
  let o2 = { Kv.id = 1; kind = Kv.Put; key = 2; v1 = 20; v2 = 0 } in
  Kv.apply a o1;
  Kv.apply a o2;
  Kv.apply b o2;
  Kv.apply b o1;
  check_int "state digest order-free" (Kv.digest a) (Kv.digest b);
  check "batch digest order-sensitive" true
    (Kv.batch_digest [| o1; o2 |] <> Kv.batch_digest [| o2; o1 |])

(* --- Workload --- *)

let small_spec =
  {
    Workload.ops = 4_000;
    sessions = 50_000;
    keys = 512;
    theta = 0.9;
    window = 1_500;
    burst_every = 300;
    burst_len = 50;
    burst_mult = 4.0;
    seed = 5;
  }

let test_workload_shape () =
  let n = 3 in
  let wl = Workload.create ~n small_spec in
  check_int "total" small_spec.Workload.ops (Workload.total wl);
  let seen = Array.make n 0 in
  for i = 0 to Workload.total wl - 1 do
    check "ascending arrivals" true
      (i = 0 || Workload.arrival wl i >= Workload.arrival wl (i - 1));
    check "arrival in window" true
      (Workload.arrival wl i >= 1 && Workload.arrival wl i <= small_spec.Workload.window);
    let o = Workload.origin wl i in
    seen.(o) <- seen.(o) + 1;
    let op = Workload.op wl i in
    check_int "id = index" i op.Kv.id;
    check "key in range" true (op.Kv.key >= 0 && op.Kv.key < small_spec.Workload.keys)
  done;
  check_int "origins partition the ops" (Workload.total wl)
    (Array.fold_left ( + ) 0 seen);
  Array.iteri
    (fun p c -> check_int "per_replica sizes" c (Array.length (Workload.per_replica wl p)))
    seen

let test_workload_determinism () =
  let a = Workload.create ~n:3 small_spec in
  let b = Workload.create ~n:3 small_spec in
  let c = Workload.create ~n:3 { small_spec with Workload.seed = 6 } in
  check_int "same seed, same trace" (Workload.digest a) (Workload.digest b);
  check "different seed, different trace" true (Workload.digest a <> Workload.digest c)

(* --- Mv_consensus, hand-routed --- *)

let test_mv_agreement () =
  let n = 3 in
  let proposals = [| [| 10 |]; [| 20; 21 |]; [| 30 |] |] in
  let engines = Array.make n None in
  let queue = Queue.create () in
  let route src outs =
    List.iter
      (function
        | Mv_consensus.To (d, m) -> Queue.add (src, d, m) queue
        | Mv_consensus.All m ->
          for d = 0 to n - 1 do
            Queue.add (src, d, m) queue
          done)
      outs
  in
  for p = 0 to n - 1 do
    let e, outs =
      Mv_consensus.create ~n ~self:p ~base:0 ~weight:Array.length
        ~proposal:proposals.(p)
    in
    engines.(p) <- Some e;
    route p outs
  done;
  let decided = ref [] in
  let steps = ref 0 in
  while (not (Queue.is_empty queue)) && !steps < 10_000 do
    incr steps;
    let src, dst, m = Queue.pop queue in
    let e = Option.get engines.(dst) in
    let e, outs, verdict = Mv_consensus.receive e ~src m in
    engines.(dst) <- Some e;
    route dst outs;
    match verdict with
    | Mv_consensus.Decided v -> decided := v :: !decided
    | Mv_consensus.Continue -> ()
  done;
  check "someone decided" true (!decided <> []);
  let v0 = List.hd !decided in
  check "agreement" true (List.for_all (fun v -> v = v0) !decided);
  check "validity" true (Array.exists (fun p -> p = v0) proposals)

(* --- end-to-end service runs --- *)

let tiny_wl ?(seed = 5) ?(ops = 4_000) ?(window = 1_500) n =
  Workload.create ~n
    { small_spec with Workload.ops; window; seed }

let test_service_fault_free () =
  let n = 3 in
  let wl = tiny_wl n in
  let r = Service.run ~wl (Service.default_params ~n ~seed:42) in
  check "converged" true r.Service.converged;
  check_int "all ops committed" (Workload.total wl) r.Service.unique_ops;
  check_int "all slots agree" r.Service.slots_checked r.Service.slots_agreeing;
  check "made slots" true (r.Service.committed_slots > 0);
  check "latency measured" true (r.Service.latency <> None);
  check "all committed ops measured" true (r.Service.measured_ops >= r.Service.unique_ops)

(* The convergence property: under injected crash, omission and
   corruption-storm faults, the self-stabilizing tower still converges —
   equal logs and KV digests on every live replica, and every fully
   shared slot applied with the same digest everywhere (the quiescent
   points of the run). *)
let test_service_converges_under_faults () =
  let n = 5 in
  let wl = tiny_wl ~seed:8 ~ops:5_000 ~window:2_000 n in
  let params =
    {
      (Service.default_params ~n ~seed:9) with
      Service.faults =
        {
          Service.storms = [ (900, 2); (1_400, 2) ];
          omission = [ (600, 800, 0.3) ];
          crashes = [ (4, 1_000) ];
        };
    }
  in
  let r = Service.run ~wl params in
  check "converged under faults" true r.Service.converged;
  check_int "every shared slot agrees" r.Service.slots_checked r.Service.slots_agreeing;
  (* Ops whose origin replica crashes may never enter the system (their
     ingress died — an open-system client would retry); every op
     originating at a live replica must be committed exactly once. *)
  let live_origin_ops = ref 0 in
  for i = 0 to Workload.total wl - 1 do
    if Workload.origin wl i <> 4 then incr live_origin_ops
  done;
  check "no live-origin op lost" true (r.Service.unique_ops >= !live_origin_ops);
  check "no op duplicated across ids" true (r.Service.unique_ops <= Workload.total wl);
  check "storms triggered repairs" true (r.Service.recoveries > 0);
  check "storm recovery measured" true
    (List.exists (fun (_, resumed, _) -> resumed <> None) r.Service.storm_recovery)

let test_service_baseline_has_no_repair () =
  let n = 5 in
  let wl = tiny_wl ~seed:8 ~ops:2_000 n in
  let params =
    {
      (Service.default_params ~n ~seed:9) with
      Service.style = Tob.baseline;
      faults = { Service.no_faults with Service.storms = [ (900, 2) ] };
    }
  in
  let r = Service.run ~wl params in
  check_int "baseline never repairs" 0 r.Service.recoveries

(* Golden determinism: the full run — workload, simulation, fault
   schedule, measurement — is a pure function of its seeds. The digest
   below was produced by this test's first run and must never change by
   accident; an intentional protocol change updates it deliberately. *)
let golden_digest = 1501098962929763131

let test_service_golden_determinism () =
  let n = 4 in
  let wl = tiny_wl ~seed:13 ~ops:3_000 n in
  let params =
    {
      (Service.default_params ~n ~seed:21) with
      Service.faults =
        { Service.no_faults with Service.storms = [ (800, 1) ]; omission = [ (500, 600, 0.2) ] };
    }
  in
  let r1 = Service.run ~wl params in
  let r2 = Service.run ~wl params in
  check_int "replayable" (Service.report_digest r1) (Service.report_digest r2);
  check "converged" true r1.Service.converged;
  check_int "pinned digest" golden_digest (Service.report_digest r1)

(* Sharded golden: the merged report is a pure function of
   (spec, params, shards) — the executing domain count must be
   invisible. Run the same 4-shard partition on 1, 2 and 4 domains and
   pin the digests to each other and to the single-shard law that every
   shard converges. *)
let test_service_sharded_domain_independent () =
  let n = 4 in
  let spec = { small_spec with Workload.ops = 3_000; window = 1_200; seed = 31 } in
  let params =
    {
      (Service.default_params ~n ~seed:57) with
      Service.faults =
        { Service.no_faults with Service.storms = [ (700, 1) ] };
    }
  in
  let run domains =
    Service.run_sharded ~domains ~shards:4 ~spec params
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check "converged" true r1.Service.converged;
  check "ops committed" true (r1.Service.unique_ops > 0);
  check_int "2 domains = 1 domain"
    (Service.report_digest r1) (Service.report_digest r2);
  check_int "4 domains = 1 domain"
    (Service.report_digest r1) (Service.report_digest r4);
  (* The merge itself is replayable. *)
  check_int "replayable" (Service.report_digest r1) (Service.report_digest (run 1))

let suite =
  [
    ( "service",
      [
        Alcotest.test_case "kv semantics" `Quick test_kv_semantics;
        Alcotest.test_case "kv incremental digest" `Quick
          test_kv_incremental_digest_matches_recompute;
        Alcotest.test_case "kv digest order (in)dependence" `Quick
          test_kv_order_independence;
        Alcotest.test_case "workload shape" `Quick test_workload_shape;
        Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
        Alcotest.test_case "mv consensus agreement" `Quick test_mv_agreement;
        Alcotest.test_case "fault-free run converges" `Quick test_service_fault_free;
        Alcotest.test_case "faulted run converges (property)" `Quick
          test_service_converges_under_faults;
        Alcotest.test_case "baseline never repairs" `Quick
          test_service_baseline_has_no_repair;
        Alcotest.test_case "golden determinism" `Quick test_service_golden_determinism;
        Alcotest.test_case "sharded runs are domain-count independent" `Quick
          test_service_sharded_domain_independent;
      ] );
  ]
