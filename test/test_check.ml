(* Tests for the ftss_check model-checker: closed-form enumeration
   counts, index decoding, fault compilation, explorer determinism
   across domain counts, shrinking, and counterexample replay files. *)

open Ftss_util
open Ftss_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let to_alcotest = QCheck_alcotest.to_alcotest

let full n rounds f = { Schedule_enum.n; rounds; f; intervals = true; drops = true }

let crash_only_params n rounds f =
  { Schedule_enum.n; rounds; f; intervals = false; drops = false }

let theorem3 ~inject =
  match Property.find ~name:"theorem3" ~inject with
  | Ok p -> p
  | Error msg -> failwith msg

(* --- Closed-form counts --- *)

let test_counts () =
  (* n=3, rounds=3, f=1: 3 crashes + 3*(3*4/2)=18 intervals +
     2*3*(3-1)=12 point drops = 33 behaviours per process;
     schedules = C(3,0) + C(3,1)*33 = 100; cases = 100 * 5. *)
  let p = full 3 3 1 in
  check_int "behaviours (3,3,1)" 33 (Schedule_enum.behaviors_per_process p);
  check_int "schedules (3,3,1)" 100 (Schedule_enum.count_schedules p);
  check_int "corruption classes" 5 (List.length (Schedule_enum.corruptions p));
  check_int "cases (3,3,1)" 500 (Schedule_enum.count p);
  (* Crash-only: 3 behaviours; 1 + 3*3 = 10 schedules; 50 cases. *)
  let p = crash_only_params 3 3 1 in
  check_int "crash-only behaviours" 3 (Schedule_enum.behaviors_per_process p);
  check_int "crash-only schedules" 10 (Schedule_enum.count_schedules p);
  check_int "crash-only cases" 50 (Schedule_enum.count p);
  (* n=4, rounds=2, f=2: 2 + 3*(2*3/2)=9 + 2*2*3=12 = 23 behaviours;
     schedules = 1 + 4*23 + C(4,2)*23^2 = 3267. *)
  let p = full 4 2 2 in
  check_int "behaviours (4,2,2)" 23 (Schedule_enum.behaviors_per_process p);
  check_int "schedules (4,2,2)" 3267 (Schedule_enum.count_schedules p);
  check_int "cases (4,2,2)" 16335 (Schedule_enum.count p)

let test_enumerate_matches_count () =
  List.iter
    (fun p ->
      check_int "enumerate length" (Schedule_enum.count p)
        (Array.length (Schedule_enum.enumerate p)))
    [ full 3 3 1; full 3 2 2; crash_only_params 4 3 2 ]

let test_cases_distinct_and_within_budget () =
  let p = full 3 3 1 in
  let cases = Schedule_enum.enumerate p in
  let seen = Hashtbl.create (Array.length cases) in
  Array.iter
    (fun (c : Schedule_enum.t) ->
      Hashtbl.replace seen c ();
      check "budget" true (List.length c.Schedule_enum.behaviors <= p.Schedule_enum.f);
      let pids = List.map fst c.Schedule_enum.behaviors in
      check "pids ascending" true (List.sort_uniq compare pids = pids))
    cases;
  check_int "all cases structurally distinct" (Array.length cases) (Hashtbl.length seen)

let test_get_deterministic () =
  let p = full 4 2 2 in
  for i = 0 to Schedule_enum.count p - 1 do
    if Schedule_enum.get p i <> Schedule_enum.get p i then
      Alcotest.failf "get %d not deterministic" i
  done

let test_to_faults_budget () =
  let p = full 3 3 1 in
  Array.iter
    (fun c ->
      let faults = Schedule_enum.to_faults c in
      check "declared faulty within budget" true
        (Pidset.cardinal (Ftss_sync.Faults.faulty faults) <= p.Schedule_enum.f))
    (Schedule_enum.enumerate p)

let test_corrupt_int_classes () =
  let n = 4 in
  let pids = Pid.all n in
  check_int "clean is identity" 7 (Schedule_enum.corrupt_int Schedule_enum.Clean 2 7);
  List.iter
    (fun q -> check_int "zero" 0 (Schedule_enum.corrupt_int Schedule_enum.Zero q 7))
    pids;
  let distinct = List.map (fun q -> Schedule_enum.corrupt_int Schedule_enum.Distinct q 7) pids in
  check_int "distinct values pairwise distinct" n
    (List.length (List.sort_uniq compare distinct))

(* --- Explorer: determinism across domain counts --- *)

let test_explore_deterministic_across_domains () =
  let p = full 3 3 1 in
  let cases = Schedule_enum.enumerate p in
  let prop = theorem3 ~inject:"frozen-exchange" in
  let s1, r1 = Explore.run ~domains:1 prop cases in
  let s2, r2 = Explore.run ~domains:2 prop cases in
  check_int "same distinct" s1.Explore.distinct s2.Explore.distinct;
  check "same violations" true (s1.Explore.violations = s2.Explore.violations);
  check "same fingerprints and verdicts" true
    (Array.for_all2
       (fun (a : Explore.result) (b : Explore.result) ->
         a.Explore.fingerprint = b.Explore.fingerprint && a.Explore.ok = b.Explore.ok)
       r1 r2);
  check_int "dedup accounting" s1.Explore.cases
    (s1.Explore.distinct + s1.Explore.dedup_hits)

let test_theorem3_holds_exhaustively () =
  let cases = Schedule_enum.enumerate (full 3 2 1) in
  let stats, _ = Explore.run (theorem3 ~inject:"none") cases in
  check "no violations" true (stats.Explore.violations = [])

(* --- Shrinking --- *)

let failing_cases prop cases =
  Array.to_list cases |> List.filter (Property.fails prop)

let test_shrink_reaches_minimum () =
  let prop = theorem3 ~inject:"frozen-exchange" in
  let cases = Schedule_enum.enumerate (full 3 3 1) in
  match failing_cases prop cases with
  | [] -> Alcotest.fail "frozen-exchange injection found no violations"
  | failures ->
    List.iter
      (fun case ->
        let small = Shrink.shrink ~property:prop case in
        check "shrunk still fails" true (Property.fails prop small);
        check "shrunk no larger" true
          (Schedule_enum.size small <= Schedule_enum.size case);
        (* Frozen exchange only breaks reconciliation of distinct round
           variables, so every counterexample bottoms out at the pure
           systemic failure: empty schedule, distinct corruption. *)
        check "minimal schedule" true (small.Schedule_enum.behaviors = []);
        check "minimal corruption" true
          (small.Schedule_enum.corruption = Schedule_enum.Distinct))
      failures

let test_candidates_strictly_smaller () =
  let case =
    {
      Schedule_enum.params = full 3 3 1;
      behaviors = [ (1, Schedule_enum.Isolate (1, 3)) ];
      corruption = Schedule_enum.Max;
    }
  in
  List.iter
    (fun c ->
      check "candidate strictly smaller" true
        (Schedule_enum.size c < Schedule_enum.size case))
    (Shrink.candidates case)

(* --- Replay files --- *)

let roundtrip t =
  match Replay.of_string (Replay.to_string t) with
  | Ok t' -> check "replay roundtrip" true (t = t')
  | Error msg -> Alcotest.failf "replay parse failed: %s" msg

let test_replay_roundtrip_all_behaviours () =
  let params = full 4 3 2 in
  let mk behaviors corruption =
    { Replay.property = "theorem3"; inject = "none";
      case = { Schedule_enum.params; behaviors; corruption } }
  in
  List.iter roundtrip
    [
      mk [] Schedule_enum.Clean;
      mk [ (0, Schedule_enum.Crash 2) ] Schedule_enum.Zero;
      mk [ (1, Schedule_enum.Mute (1, 3)) ] Schedule_enum.Max;
      mk [ (2, Schedule_enum.Deaf (2, 2)) ] (Schedule_enum.Parked 2);
      mk [ (3, Schedule_enum.Isolate (1, 2)) ] Schedule_enum.Distinct;
      mk
        [ (0, Schedule_enum.Send_drop (3, 1)); (2, Schedule_enum.Recv_drop (1, 3)) ]
        Schedule_enum.Distinct;
    ]

let test_replay_rejects_malformed () =
  let reject label s =
    match Replay.of_string s with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  reject "garbage" "(not-a-counterexample)";
  reject "unknown property"
    "(ftss-counterexample (version 1) (property theoremX) (inject none)\n\
    \ (params (n 3) (rounds 3) (f 1) (intervals true) (drops true))\n\
    \ (corruption clean) (schedule))";
  reject "pid out of range"
    "(ftss-counterexample (version 1) (property theorem3) (inject none)\n\
    \ (params (n 3) (rounds 3) (f 1) (intervals true) (drops true))\n\
    \ (corruption clean) (schedule (crash (pid 7) (round 1))))";
  reject "fault budget exceeded"
    "(ftss-counterexample (version 1) (property theorem3) (inject none)\n\
    \ (params (n 3) (rounds 3) (f 1) (intervals true) (drops true))\n\
    \ (corruption clean)\n\
    \ (schedule (crash (pid 0) (round 1)) (crash (pid 1) (round 1))))"

let test_replay_reproduces () =
  let prop = theorem3 ~inject:"frozen-exchange" in
  let cases = Schedule_enum.enumerate (full 3 3 1) in
  match failing_cases prop cases with
  | [] -> Alcotest.fail "no violation to replay"
  | case :: _ ->
    let t =
      { Replay.property = "theorem3"; inject = "frozen-exchange";
        case = Shrink.shrink ~property:prop case }
    in
    (match Replay.of_string (Replay.to_string t) with
    | Error msg -> Alcotest.failf "parse: %s" msg
    | Ok t' -> (
      match Replay.replay t' with
      | Ok v -> check "counterexample reproduces" false v.Property.ok
      | Error msg -> Alcotest.failf "replay: %s" msg))

(* --- Golden determinism: explorer verdicts pinned to the exact
   violation sets and dedup counts the pre-overhaul Marshal-digest
   fingerprints produced. --- *)

let md5 s = Digest.to_hex (Digest.string s)

let test_golden_explorer_verdicts () =
  let prop = theorem3 ~inject:"frozen-exchange" in
  let stats, _ = Explore.run ~domains:1 prop (Schedule_enum.enumerate (full 3 3 1)) in
  check_int "frozen-exchange violations" 82 (List.length stats.Explore.violations);
  Alcotest.(check string) "violation indices digest"
    "a6103c173e5435d3a49ff3fb4a50607e"
    (md5 (String.concat "," (List.map string_of_int stats.Explore.violations)));
  check_int "frozen-exchange distinct traces" 500 stats.Explore.distinct;
  let stats, _ =
    Explore.run ~domains:1 (theorem3 ~inject:"none") (Schedule_enum.enumerate (full 3 2 1))
  in
  check_int "t3 cases" 290 stats.Explore.cases;
  check_int "t3 distinct" 290 stats.Explore.distinct;
  check_int "t3 violations" 0 (List.length stats.Explore.violations);
  let theorem4 =
    match Property.find ~name:"theorem4" ~inject:"none" with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let stats, _ = Explore.run ~domains:1 theorem4 (Schedule_enum.enumerate (full 3 4 1)) in
  check_int "t4 cases" 755 stats.Explore.cases;
  check_int "t4 distinct" 755 stats.Explore.distinct;
  check_int "t4 violations" 0 (List.length stats.Explore.violations)

(* --- Canonicalization under pid permutation: the orbit representative
   is well-defined (idempotent, invariant under relabelling the input)
   and the canonical explorer reproduces the uncanonical verdicts
   exactly over the golden corpus. --- *)

(* The n! permutations of {0..n-1}, small n only. *)
let all_permutations n =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l)))
        l
  in
  perms (List.init n Fun.id)

let test_canonical_well_defined () =
  let params = full 3 3 1 in
  let cases = Schedule_enum.enumerate params in
  let perms =
    List.map (fun l -> let a = Array.of_list l in fun p -> a.(p)) (all_permutations 3)
  in
  Array.iter
    (fun case ->
      let c = Schedule_enum.canonical case in
      (* Idempotent. *)
      check "canonical is idempotent" true (Schedule_enum.canonical c = c);
      (* Params and corruption class are untouched (corruption classes
         are permutation-invariant as classes). *)
      check "params preserved" true (c.Schedule_enum.params = params);
      check "corruption preserved" true
        (c.Schedule_enum.corruption = case.Schedule_enum.corruption);
      (* Invariant across the whole orbit: every relabelling of the case
         canonicalizes to the same representative. *)
      List.iter
        (fun perm ->
          check "orbit members share their canonical form" true
            (Schedule_enum.canonical (Schedule_enum.permute perm case) = c))
        perms;
      (* The representative's support is packed onto an initial segment. *)
      let s = Schedule_enum.support c in
      check "support packed onto 0..m-1" true (s = List.init (List.length s) Fun.id))
    cases

let test_support_and_permute () =
  let case =
    {
      Schedule_enum.params = full 5 3 2;
      behaviors =
        [ (1, Schedule_enum.Recv_drop (2, 4)); (3, Schedule_enum.Crash 1) ];
      corruption = Schedule_enum.Clean;
    }
  in
  Alcotest.(check (list int)) "support = owners + drop peers" [ 1; 3; 4 ]
    (Schedule_enum.support case);
  let swapped = Schedule_enum.permute (fun p -> if p = 1 then 3 else if p = 3 then 1 else p) case in
  Alcotest.(check (list int)) "permuted support" [ 1; 3; 4 ]
    (Schedule_enum.support swapped);
  check "behaviors re-sorted by owner" true
    (swapped.Schedule_enum.behaviors
    = [ (1, Schedule_enum.Crash 1); (3, Schedule_enum.Recv_drop (2, 4)) ])

let test_golden_canonical_equivalence () =
  (* The acceptance gate: over the 500-case golden corpus the canonical
     explorer must reproduce the uncanonical verdicts exactly — same 82
     violations at the same indices — while executing strictly fewer
     runs. *)
  let prop = theorem3 ~inject:"frozen-exchange" in
  let cases = Schedule_enum.enumerate (full 3 3 1) in
  let stats, results = Explore.run ~domains:1 prop cases in
  let cstats, cresults = Explore.run ~domains:1 ~canonical:true prop cases in
  check_int "same corpus size" stats.Explore.cases cstats.Explore.cases;
  Alcotest.(check (list int)) "identical violation indices"
    stats.Explore.violations cstats.Explore.violations;
  Alcotest.(check string) "violation indices digest"
    "a6103c173e5435d3a49ff3fb4a50607e"
    (md5 (String.concat "," (List.map string_of_int cstats.Explore.violations)));
  Array.iteri
    (fun i (r : Explore.result) ->
      check "per-case verdict identical" true (r.Explore.ok = cresults.(i).Explore.ok))
    results;
  (* The collapse is real and pinned: 500 cases fall into 140 orbits. *)
  check_int "uncanonical executes every case" 500 stats.Explore.orbits;
  check_int "orbit count" 140 cstats.Explore.orbits;
  check "reduction factor > 1" true (Explore.symmetry_reduction cstats > 1.);
  (* theorem4 breaks pid symmetry (propose p = 50 + p), so its verdicts
     must come from the full enumeration — document by construction that
     canonical mode is an opt-in for symmetric properties only. *)
  ()

(* --- The content hash partitions executions exactly as the structural
   Marshal digest it replaced: over a corpus of runner executions, two
   traces share a [Trace.hash] iff their marshalled representations are
   byte-identical. One direction is the generator argument (trace.mli);
   the other is collision-freedom on the corpus. --- *)

let hash_partition_matches_marshal traces =
  let digest_of_hash = Hashtbl.create 256 in
  List.iter
    (fun trace ->
      let digest = Digest.string (Marshal.to_string trace []) in
      let h = Ftss_sync.Trace.hash trace in
      match Hashtbl.find_opt digest_of_hash h with
      | None -> Hashtbl.add digest_of_hash h digest
      | Some d ->
        Alcotest.(check string) "equal hashes imply identical executions" d digest)
    traces;
  let digests = Hashtbl.fold (fun _ d acc -> d :: acc) digest_of_hash [] in
  check_int "identical executions imply equal hashes"
    (Hashtbl.length digest_of_hash)
    (List.length (List.sort_uniq compare digests))

let test_hash_partition_over_adversary_corpus () =
  let params = full 3 3 1 in
  let traces =
    Array.to_list (Schedule_enum.enumerate params)
    |> List.map (fun (case : Schedule_enum.t) ->
           Ftss_sync.Runner.run
             ~corrupt:(Schedule_enum.corrupt_int case.Schedule_enum.corruption)
             ~faults:(Schedule_enum.to_faults case)
             ~rounds:params.Schedule_enum.rounds
             Ftss_core.Round_agreement.protocol)
  in
  hash_partition_matches_marshal traces

let test_hash_partition_with_mid_run_corruption () =
  (* Exercises the [corrupt_at] generator rounds of the hash: schedules
     differing only in when (or how) a mid-run corruption strikes. *)
  let open Ftss_sync in
  let traces =
    List.concat_map
      (fun r ->
        List.map
          (fun k ->
            let faults =
              Faults.of_events ~n:3 [ Faults.Drop { src = 1; dst = 0; round = 2 } ]
            in
            Runner.run
              ~corrupt_at:[ (r, fun p c -> c + (k * (p + 1))) ]
              ~faults ~rounds:5 Ftss_core.Round_agreement.protocol)
          [ 0; 1; 7; 100 ])
      [ 1; 2; 3; 4; 5 ]
  in
  hash_partition_matches_marshal traces

(* --- QCheck: shrinking from random failing cases --- *)

let prop_shrink_preserves_failure =
  let prop = theorem3 ~inject:"frozen-exchange" in
  let params = full 3 3 1 in
  QCheck.Test.make ~name:"shrunk counterexamples still falsify, no larger" ~count:60
    QCheck.(int_range 0 (Schedule_enum.count params - 1))
    (fun i ->
      let case = Schedule_enum.get params i in
      QCheck.assume (Property.fails prop case);
      let small = Shrink.shrink ~property:prop case in
      Property.fails prop small
      && Schedule_enum.size small <= Schedule_enum.size case)

let prop_random_draws_in_space =
  QCheck.Test.make ~name:"random draws decode to valid cases" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let params = full 3 3 1 in
      let case = Schedule_enum.random (Rng.create seed) params in
      List.length case.Schedule_enum.behaviors <= params.Schedule_enum.f
      && List.mem case.Schedule_enum.corruption (Schedule_enum.corruptions params))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "check",
      [
        tc "closed-form counts" `Quick test_counts;
        tc "enumerate length = count" `Quick test_enumerate_matches_count;
        tc "cases distinct, within budget" `Quick test_cases_distinct_and_within_budget;
        tc "get is deterministic" `Quick test_get_deterministic;
        tc "to_faults respects budget" `Quick test_to_faults_budget;
        tc "corruption classes" `Quick test_corrupt_int_classes;
        tc "explorer deterministic across domains" `Quick
          test_explore_deterministic_across_domains;
        tc "theorem 3 holds exhaustively (n=3,r=2,f=1)" `Quick
          test_theorem3_holds_exhaustively;
        tc "shrink reaches the minimal counterexample" `Slow test_shrink_reaches_minimum;
        tc "shrink candidates strictly smaller" `Quick test_candidates_strictly_smaller;
        tc "replay roundtrip covers every clause" `Quick test_replay_roundtrip_all_behaviours;
        tc "replay rejects malformed input" `Quick test_replay_rejects_malformed;
        tc "replayed counterexample reproduces" `Quick test_replay_reproduces;
        tc "golden: explorer verdicts" `Quick test_golden_explorer_verdicts;
        tc "canonical form well-defined over the corpus" `Quick
          test_canonical_well_defined;
        tc "support and permute" `Quick test_support_and_permute;
        tc "golden: canonical explorer = full enumeration" `Quick
          test_golden_canonical_equivalence;
        tc "hash partition = marshal partition (adversary corpus)" `Quick
          test_hash_partition_over_adversary_corpus;
        tc "hash partition = marshal partition (mid-run corruption)" `Quick
          test_hash_partition_with_mid_run_corruption;
        to_alcotest prop_shrink_preserves_failure;
        to_alcotest prop_random_draws_in_space;
      ] );
  ]
