(* The initialization-free ◇W → ◇S transform of Figure 4 (Theorem 5).

   We corrupt every process's detector tables — huge counters, arbitrary
   dead/alive statuses — crash two processes, and watch the transform
   converge: eventually every correct process permanently suspects every
   crashed process (strong completeness) while the designated trusted
   process is never suspected again (eventual weak accuracy).

   Run with: dune exec examples/failure_detector.exe *)

open Ftss_util
open Ftss_async

let () =
  let n = 6 in
  let seed = 11 in
  let crashes = [ (4, 150); (5, 900) ] in
  let trusted = 2 in
  let config =
    {
      (Sim.default_config ~n ~seed) with
      Sim.gst = 300;
      horizon = 3000;
      tick_interval = 10;
      delay_before_gst = (1, 80);
      delay_after_gst = (1, 5);
      crashes;
    }
  in
  let crashed p = List.assoc_opt p crashes in
  let oracle =
    Ewfd.make (Rng.create (seed + 1)) ~n ~crashed ~gst:config.Sim.gst ~trusted ~noise:0.3
  in
  let rng = Rng.create 99 in
  let corrupt _ t = Esfd.corrupt rng ~num_bound:10_000 t in

  Format.printf "n=%d, crashes at t=150 (p4) and t=900 (p5), GST=%d, trusted=%a@."
    n config.Sim.gst Pid.pp trusted;
  Format.printf "every process starts with corrupted num/state tables@.@.";

  let result = Sim.run ~corrupt config (Esfd.process ~n ~oracle ()) in

  (* Print a sampled timeline of process 0's suspect set. *)
  Format.printf "=== suspect set of p0 over time (sampled) ===@.";
  let last_printed = ref (-200) in
  List.iter
    (fun (time, pid, Esfd.Suspects set) ->
      if pid = 0 && time - !last_printed >= 200 then begin
        Format.printf "  t=%4d: %a@." time Pidset.pp set;
        last_printed := time
      end)
    result.Sim.log;

  let report = Esfd.analyze result ~config ~trusted in
  let show = function Some t -> string_of_int t | None -> "never (within horizon)" in
  Format.printf "@.strong completeness holds from: t=%s@." (show report.Esfd.completeness_from);
  Format.printf "eventual weak accuracy holds from: t=%s@." (show report.Esfd.accuracy_from);
  Format.printf "Theorem 5 convergence: t=%s@." (show report.Esfd.convergence_time);
  if report.Esfd.convergence_time = None then exit 1
