(* Asynchronous repeated consensus tolerant of both failure types (§3).

   Two runs from the same systemically-corrupted state — every process
   parked mid-round, believing its phase messages were already sent, with
   a perfectly accurate failure detector (so no spurious suspicion ever
   breaks the wait):

   - the baseline Chandra-Toueg protocol deadlocks forever (the situation
     [KP90] identified);
   - the paper's protocol — the same machine plus periodic retransmission
     and round agreement superimposed — dissolves the deadlock and then
     decides instance after instance.

   A third run corrupts everything randomly (round variables, estimates,
   timestamps, forged decisions, detector tables) and measures the
   stabilization time of the self-stabilizing protocol.

   Run with: dune exec examples/async_consensus.exe *)

open Ftss_util
open Ftss_async

let propose p i = 100 + (((p * 13) + (i * 7)) mod 50)

let run ?corrupt ?(noise = 0.2) ~style ~seed ~n ~trusted () =
  let config =
    {
      (Sim.default_config ~n ~seed) with
      Sim.gst = 300;
      horizon = 4000;
      tick_interval = 10;
      delay_before_gst = (1, 60);
      delay_after_gst = (1, 4);
    }
  in
  let oracle =
    Ewfd.make (Rng.create (seed + 7)) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst
      ~trusted ~noise
  in
  let result = Sim.run ?corrupt config (Consensus.process ~n ~style ~propose ~oracle ()) in
  (config, result)

let () =
  let n = 5 and trusted = 1 in
  let parked = Consensus.corrupt_parked ~round:6 (* coord(6) = trusted: nobody nacks *) in

  Format.printf "=== 1. baseline CT consensus from the parked state ===@.";
  let _, base = run ~corrupt:parked ~noise:0.0 ~style:Consensus.baseline ~seed:9 ~n ~trusted () in
  Format.printf "decisions in %d time units: %d  (deadlock)@.@." base.Sim.end_time
    (List.length (Consensus.decisions base));

  Format.printf "=== 2. self-stabilizing protocol from the same state ===@.";
  let config, ss =
    run ~corrupt:parked ~noise:0.0 ~style:Consensus.self_stabilizing ~seed:9 ~n ~trusted ()
  in
  let correct = Sim.correct_set config in
  let grouped = Consensus.per_instance (Consensus.decisions ss) ~correct in
  Format.printf "instances decided: %d, disagreements: %d@.@." (List.length grouped)
    (List.length (Consensus.disagreements grouped));

  Format.printf "=== 3. self-stabilizing protocol from random corruption ===@.";
  let rng = Rng.create 123 in
  let corrupt =
    Consensus.corrupt_random rng ~n ~instance_bound:20 ~round_bound:30 ~value_bound:90
  in
  let config, ss2 = run ~corrupt ~style:Consensus.self_stabilizing ~seed:31 ~n ~trusted () in
  let correct = Sim.correct_set config in
  let ds = Consensus.decisions ss2 in
  let grouped = Consensus.per_instance ds ~correct in
  Format.printf "instances decided: %d@." (List.length grouped);
  Format.printf "disagreeing instances (stabilization debris): %d@."
    (List.length (Consensus.disagreements grouped));
  (match Consensus.stabilization_time ss2 ~correct ~propose ~n with
  | Some t ->
    Format.printf "stabilized at: t=%d (GST was %d)@." t config.Sim.gst;
    Format.printf "instances fully decided after stabilization: %d@."
      (Consensus.fully_decided_after ds ~correct ~from:t)
  | None ->
    Format.printf "did not stabilize within the horizon@.";
    exit 1);
  if List.length (Consensus.decisions base) > 0 then exit 1
