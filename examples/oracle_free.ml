(* The whole §3 stack with no oracle anywhere.

   The paper assumes an Eventually Weak failure detector is given. This
   example discharges that assumption inside the model and runs the full
   tower from partial synchrony alone:

       heartbeats + adaptive timeouts      (an implemented ◇W)
         → Figure 4 transform              (◇S, Theorem 5)
           → repeated CT consensus         (§3, both superimpositions)

   with *every* layer's state corrupted by the systemic failure: heartbeat
   deadlines and timeouts, the transform's num/state tables, and the
   consensus instance/round/estimate/timestamp state.

   Run with: dune exec examples/oracle_free.exe *)

open Ftss_util
open Ftss_async

let propose p i = 100 + (((p * 13) + (i * 7)) mod 50)

let () =
  let n = 5 in
  let config =
    {
      (Sim.default_config ~n ~seed:2026) with
      Sim.gst = 300;
      horizon = 5000;
      tick_interval = 10;
      delay_before_gst = (1, 60);
      delay_after_gst = (1, 4);
      crashes = [ (4, 700) ];
    }
  in

  (* First: the detector stack alone, fully corrupted. *)
  let rng = Rng.create 31 in
  let corrupt_stack =
    Detector_stack.corrupt rng ~time_bound:10_000 ~timeout_bound:150 ~num_bound:5_000
  in
  let stack_result =
    Sim.run ~corrupt:corrupt_stack config
      (Detector_stack.process ~n ~initial_timeout:30 ~backoff:20)
  in
  let report = Detector_stack.analyze stack_result ~config in
  let show = function Some t -> string_of_int t | None -> "never" in
  Format.printf "=== detector stack (heartbeat ◇W -> Figure 4 ◇S), all state corrupted ===@.";
  Format.printf "strong completeness from: t=%s@." (show report.Detector_stack.completeness_from);
  Format.printf "eventual weak accuracy from: t=%s@." (show report.Detector_stack.accuracy_from);
  Format.printf "◇S convergence: t=%s@.@." (show report.Detector_stack.convergence_time);

  (* Then: consensus over the same construction, also corrupted. *)
  let rng = Rng.create 32 in
  let corrupt =
    Consensus.corrupt_random rng ~n ~instance_bound:15 ~round_bound:25 ~value_bound:90
  in
  let result =
    Sim.run ~corrupt config
      (Consensus.process_with ~n ~style:Consensus.self_stabilizing ~propose
         ~detector:(Consensus.Heartbeats { initial_timeout = 30; backoff = 20 }) ())
  in
  let correct = Sim.correct_set config in
  let ds = Consensus.decisions result in
  let grouped = Consensus.per_instance ds ~correct in
  Format.printf "=== oracle-free self-stabilizing repeated consensus ===@.";
  Format.printf "instances decided by correct processes: %d@." (List.length grouped);
  Format.printf "disagreeing instances: %d@." (List.length (Consensus.disagreements grouped));
  (match Consensus.stabilization_time result ~correct ~propose ~n with
  | Some t ->
    Format.printf "stabilized at: t=%d (GST %d, crash at 700)@." t config.Sim.gst;
    Format.printf "instances fully decided after stabilization: %d@."
      (Consensus.fully_decided_after ds ~correct ~from:t)
  | None ->
    Format.printf "did not stabilize within the horizon@.";
    exit 1);
  if report.Detector_stack.convergence_time = None then exit 1
