(* ftss — command-line driver for the protocols and experiments.

   Subcommands:
     round-agreement   run Figure 1 under corruption + omission faults
     compile           run a compiled protocol (Figure 3) and check Σ⁺
     esfd              run the Figure 4 detector transform (Theorem 5)
     consensus         run asynchronous repeated consensus (§3)
     impossibility     execute the Theorem 1 / Theorem 2 scenarios
     check             exhaustively model-check a theorem over every
                       enumerated schedule × corruption class (ftss_check)
     replay            re-execute a shrunk counterexample file
     explain           causal provenance of an outcome event in a trace
     serve             run the replicated service tower under a workload
                       (--slo arms streaming monitors; alarms fail the run)
     watch             serve with a live monitor-plane dashboard
     profile           self-profile the stack; export Perfetto/flamegraph
     bench-diff        compare two BENCH_*.json gauge snapshots

   Every subcommand exits non-zero when its theorem check fails, so the
   CLI doubles as a CI gate. *)

open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols
open Cmdliner

(* --- shared options --- *)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let f_arg =
  Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc:"Bound on faulty processes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let rounds_arg =
  Arg.(value & opt int 40 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to simulate.")

let p_drop_arg =
  Arg.(
    value
    & opt float 0.4
    & info [ "p-drop" ] ~docv:"P" ~doc:"Per-link omission probability for faulty links.")


(* --- observability options (every subcommand) --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.jsonl"
        ~doc:"Write the run's structured event trace as JSON Lines to $(docv).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE.json"
        ~doc:"Write the metrics registry snapshot as JSON to $(docv).")

(* Builds the hub (when either output was requested), runs [f] with it,
   then flushes the trace sink and writes the metrics snapshot. Without
   either flag [f None] runs with zero instrumentation overhead.
   [~stamp:n] attaches a causal stamper over n processes, so every traced
   event carries the vector clock [ftss explain] consumes. *)
let with_obs ?stamp trace_out metrics_out f =
  match (trace_out, metrics_out) with
  | None, None -> f None
  | _ ->
    let obs = Ftss_obs.Obs.create ?stamp () in
    (match trace_out with
    | Some path -> Ftss_obs.Obs.add_sink obs (Ftss_obs.Sink.jsonl_file path)
    | None -> ());
    Fun.protect
      ~finally:(fun () ->
        Ftss_obs.Obs.close obs;
        match metrics_out with
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Ftss_obs.Json.to_string (Ftss_obs.Metrics.to_json (Ftss_obs.Obs.metrics obs)));
          output_char oc '\n';
          close_out oc
        | None -> ())
      (fun () -> f (Some obs))

(* --- provenance helpers (ftss explain, counterexample explanations) --- *)

module Prov = Ftss_prov.Prov

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE.dot"
        ~doc:"Write the provenance cone of the outcome as Graphviz to $(docv).")

let last_located_event t =
  let rec go i =
    if i < 0 then None
    else match Prov.located t i with Some _ -> Some i | None -> go (i - 1)
  in
  go (Prov.length t - 1)

(* The outcome to explain when none was named: the last decision if the
   trace has one, else the last located event. *)
let default_targets t =
  match Prov.resolve t Prov.Last_decide with
  | Ok ids -> Some ids
  | Error _ -> Option.map (fun i -> [ i ]) (last_located_event t)

let write_dot path t targets =
  let ids = Prov.cone t targets in
  let oc = open_out path in
  output_string oc (Prov.to_dot ~targets t ids);
  close_out oc

(* Re-runs a counterexample under an in-memory stamped hub and prints the
   causal explanation of its outcome; optionally exports the cone. *)
let explain_counterexample ?dot ~n f =
  let ring = Ftss_obs.Sink.ring ~capacity:1_000_000 in
  let obs =
    Ftss_obs.Obs.create ~sinks:[ Ftss_obs.Sink.ring_sink ring ] ~stamp:n ()
  in
  f obs;
  let t = Prov.of_events (Ftss_obs.Sink.ring_contents ring) in
  match default_targets t with
  | None -> Format.printf "explanation: trace recorded no located events@."
  | Some targets ->
    Format.printf "why (causal provenance of the outcome):@.%a@." Prov.pp_explain
      (t, targets);
    (match dot with
    | Some path ->
      write_dot path t targets;
      Format.printf "provenance cone written to %s (Graphviz)@." path
    | None -> ())

(* --- round-agreement --- *)

let dump_arg =
  Arg.(value & flag & info [ "dump" ] ~doc:"Dump the full round-by-round trace.")

let round_agreement_cmd =
  let run n f seed rounds p_drop dump trace_out metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let rng = Rng.create seed in
    let faults = Faults.random_omission rng ~n ~f ~p_drop ~rounds in
    let trace =
      Runner.run ?obs
        ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:1_000_000)
        ~faults ~rounds Round_agreement.protocol
    in
    Format.printf "%a@." Trace.pp_summary trace;
    if dump then Format.printf "%a@." (Trace.pp_rounds Format.pp_print_int) trace;
    List.iter
      (fun (x, y) -> Format.printf "coterie-stable window: %d..%d@." x y)
      (Solve.stable_windows trace);
    let ok = Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace in
    let per_window = Solve.measured_per_window Round_agreement.spec trace in
    (match obs with
    | Some o -> Ftss_obs.Obs.emit_windows o per_window
    | None -> ());
    let measured = Solve.measured_stabilization Round_agreement.spec trace in
    Format.printf "ftss-solves round agreement (stabilization 1): %b@." ok;
    Format.printf "measured stabilization: %d@." measured;
    if ok then 0 else 1
  in
  let term =
    Term.(
      const run $ n_arg $ f_arg $ seed_arg $ rounds_arg $ p_drop_arg $ dump_arg
      $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "round-agreement"
       ~doc:"Run the Figure 1 round agreement protocol under systemic corruption and omission faults; check Theorem 3.")
    term

(* --- compile --- *)

let protocol_arg =
  Arg.(
    value
    & opt (enum [ ("consensus", `Consensus); ("ic", `Ic); ("leader", `Leader) ]) `Consensus
    & info [ "protocol" ] ~docv:"P"
        ~doc:"Canonical protocol to compile: $(b,consensus), $(b,ic) or $(b,leader).")

let compile_cmd =
  let run n f seed rounds p_drop which trace_out metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let rng = Rng.create seed in
    let faults = Faults.random_omission rng ~n ~f ~p_drop ~rounds in
    let check (type s d) (pi : (s, d) Canonical.t) ~(corrupt_s : Rng.t -> Pid.t -> s -> s)
        ~(valid : d -> bool) =
      let compiled = Compiler.compile ~n pi in
      let corrupt = Compiler.corrupt rng ~pi ~n ~c_bound:1000 ~corrupt_s in
      let trace = Runner.run ?obs ~corrupt ~faults ~rounds compiled in
      let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
      let bound = Compiler.stabilization_bound pi in
      let ok = Solve.ftss_solves spec ~stabilization:bound trace in
      (match obs with
      | Some o -> Ftss_obs.Obs.emit_windows o (Solve.measured_per_window spec trace)
      | None -> ());
      let measured = Solve.measured_stabilization spec trace in
      let completed, agreeing =
        Repeated.count_agreeing_iterations trace ~faulty:(Faults.faulty faults) ~valid
      in
      Format.printf "Π = %s, final_round = %d, Π⁺ stabilization bound = %d@."
        pi.Canonical.name pi.Canonical.final_round bound;
      Format.printf "%a@." Trace.pp_summary trace;
      Format.printf "iterations completed: %d, with full agreement: %d@." completed agreeing;
      Format.printf "Theorem 4 (ftss-solves Σ⁺): %b; measured stabilization: %d@." ok measured;
      if ok then 0 else 1
    in
    match which with
    | `Consensus ->
      let propose p = 50 + p in
      check
        (Omission_consensus.make ~n ~f ~propose)
        ~corrupt_s:(fun rng p s -> Omission_consensus.corrupt_state rng ~n ~value_bound:49 p s)
        ~valid:(fun d -> d >= 50 && d < 50 + n)
    | `Ic ->
      let propose p = 1000 + p in
      check
        (Interactive_consistency.make ~n ~f ~propose)
        ~corrupt_s:(fun _ _ s -> s)
        ~valid:(fun vector ->
          List.for_all (function Some v -> v >= 1000 && v < 1000 + n | None -> true) vector)
    | `Leader ->
      check (Leader_election.make ~n ~f)
        ~corrupt_s:(fun _ _ s -> s)
        ~valid:(fun leader -> Pid.is_valid ~n leader)
  in
  let term =
    Term.(
      const run $ n_arg $ f_arg $ seed_arg $ rounds_arg $ p_drop_arg $ protocol_arg
      $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a canonical protocol with the Figure 3 compiler, run it under corruption + faults, and check Theorem 4.")
    term

(* --- esfd --- *)

let gst_arg =
  Arg.(value & opt int 300 & info [ "gst" ] ~docv:"T" ~doc:"Global stabilization time.")

let horizon_arg =
  Arg.(value & opt int 3000 & info [ "horizon" ] ~docv:"T" ~doc:"Simulation horizon.")

let crashes_arg =
  Arg.(
    value
    & opt_all (pair ~sep:':' int int) []
    & info [ "crash" ] ~docv:"PID:TIME" ~doc:"Crash process PID at TIME (repeatable).")

let esfd_cmd =
  let run n seed gst horizon crashes trace_out metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let open Ftss_async in
    let config =
      {
        (Sim.default_config ~n ~seed) with
        Sim.gst;
        horizon;
        crashes;
        delay_before_gst = (1, 80);
        delay_after_gst = (1, 5);
      }
    in
    let crashed p = List.assoc_opt p crashes in
    let trusted =
      match List.find_opt (fun p -> crashed p = None) (Pid.all n) with
      | Some p -> p
      | None -> failwith "no correct process"
    in
    let oracle = Ewfd.make (Rng.create (seed + 1)) ~n ~crashed ~gst ~trusted ~noise:0.3 in
    let rng = Rng.create (seed + 2) in
    let corrupt _ t = Esfd.corrupt rng ~num_bound:10_000 t in
    let result = Sim.run ?obs ~corrupt config (Esfd.process ?obs ~n ~oracle ()) in
    let report = Esfd.analyze result ~config ~trusted in
    let show = function Some t -> string_of_int t | None -> "none" in
    Format.printf "messages delivered: %d@." result.Sim.delivered;
    Format.printf "strong completeness from: %s@." (show report.Esfd.completeness_from);
    Format.printf "eventual weak accuracy from: %s@." (show report.Esfd.accuracy_from);
    Format.printf "Theorem 5 convergence: %s@." (show report.Esfd.convergence_time);
    if report.Esfd.convergence_time <> None then 0 else 1
  in
  let term =
    Term.(
      const run $ n_arg $ seed_arg $ gst_arg $ horizon_arg $ crashes_arg $ trace_out_arg
      $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "esfd"
       ~doc:"Run the Figure 4 ◇W→◇S transform from corrupted detector state; check Theorem 5.")
    term

(* --- stack: oracle-free detector (heartbeats + Figure 4) --- *)

let stack_cmd =
  let run n seed gst horizon crashes trace_out metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let open Ftss_async in
    let config =
      {
        (Sim.default_config ~n ~seed) with
        Sim.gst;
        horizon;
        crashes;
        delay_before_gst = (1, 80);
        delay_after_gst = (1, 5);
      }
    in
    let rng = Rng.create (seed + 13) in
    let corrupt =
      Detector_stack.corrupt rng ~time_bound:10_000 ~timeout_bound:150 ~num_bound:5_000
    in
    let result =
      Sim.run ?obs ~corrupt config (Detector_stack.process ~n ~initial_timeout:30 ~backoff:20)
    in
    let report = Detector_stack.analyze result ~config in
    let show = function Some t -> string_of_int t | None -> "none" in
    Format.printf "strong completeness from: %s@."
      (show report.Detector_stack.completeness_from);
    Format.printf "eventual weak accuracy from: %s@."
      (show report.Detector_stack.accuracy_from);
    Format.printf "stack (heartbeat ◇W + Fig. 4 ◇S) convergence: %s@."
      (show report.Detector_stack.convergence_time);
    if report.Detector_stack.convergence_time <> None then 0 else 1
  in
  let term =
    Term.(
      const run $ n_arg $ seed_arg $ gst_arg $ horizon_arg $ crashes_arg $ trace_out_arg
      $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "stack"
       ~doc:"Run the oracle-free detector stack (heartbeat ◇W + Figure 4 ◇S) from fully corrupted state.")
    term

(* --- consensus --- *)

let style_arg =
  Arg.(
    value
    & opt (enum [ ("baseline", Ftss_async.Consensus.baseline); ("ss", Ftss_async.Consensus.self_stabilizing) ])
        Ftss_async.Consensus.self_stabilizing
    & info [ "style" ] ~docv:"S" ~doc:"$(b,baseline) or $(b,ss) (self-stabilizing).")

let corruption_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("random", `Random); ("parked", `Parked) ]) `Random
    & info [ "corruption" ] ~docv:"C"
        ~doc:"Systemic failure to inject: $(b,none), $(b,random) or $(b,parked) (the deadlock state).")

let detector_arg =
  Arg.(
    value
    & opt (enum [ ("oracle", `Oracle); ("heartbeats", `Heartbeats) ]) `Oracle
    & info [ "detector" ] ~docv:"D"
        ~doc:"◇W source: the scripted $(b,oracle) or live $(b,heartbeats) (oracle-free).")

let consensus_cmd =
  let run n seed gst horizon crashes style corruption detector_kind trace_out metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let open Ftss_async in
    let propose p i = 100 + (((p * 13) + (i * 7)) mod 50) in
    let config =
      {
        (Sim.default_config ~n ~seed) with
        Sim.gst;
        horizon;
        crashes;
        delay_before_gst = (1, 60);
        delay_after_gst = (1, 4);
      }
    in
    let crashed p = List.assoc_opt p crashes in
    let trusted =
      match List.find_opt (fun p -> crashed p = None) (Pid.all n) with
      | Some p -> p
      | None -> failwith "no correct process"
    in
    let noise = match corruption with `Parked -> 0.0 | `None | `Random -> 0.2 in
    let oracle = Ewfd.make (Rng.create (seed + 7)) ~n ~crashed ~gst ~trusted ~noise in
    let corrupt =
      match corruption with
      | `None -> None
      | `Random ->
        Some
          (Consensus.corrupt_random (Rng.create (seed + 3)) ~n ~instance_bound:20
             ~round_bound:30 ~value_bound:90)
      | `Parked -> Some (Consensus.corrupt_parked ~round:(n + trusted))
    in
    let detector =
      match detector_kind with
      | `Oracle -> Consensus.Oracle oracle
      | `Heartbeats -> Consensus.Heartbeats { initial_timeout = 30; backoff = 20 }
    in
    let result =
      Sim.run ?obs ?corrupt config (Consensus.process_with ?obs ~n ~style ~propose ~detector ())
    in
    let correct = Sim.correct_set config in
    let ds = Consensus.decisions result in
    let grouped = Consensus.per_instance ds ~correct in
    Format.printf "instances decided (by correct processes): %d@." (List.length grouped);
    Format.printf "disagreeing instances: %d@." (List.length (Consensus.disagreements grouped));
    Format.printf "invalid-value instances: %d@."
      (List.length (Consensus.invalid_instances grouped ~propose ~n));
    let stab = Consensus.stabilization_time result ~correct ~propose ~n in
    (* One whole-run stability window: the async analogue of a coterie-stable
       interval is the full horizon, with the measured d from Definition
       2.4's piece-wise reading — the last agreement/validity violation
       plus one. *)
    (match (obs, stab) with
    | Some o, Some t -> Ftss_obs.Obs.emit_windows o [ ((0, result.Sim.end_time), t) ]
    | _ -> ());
    (match stab with
    | Some t ->
      Format.printf "stabilized at: t=%d@." t;
      Format.printf "instances fully decided after stabilization: %d@."
        (Consensus.fully_decided_after ds ~correct ~from:t)
    | None -> Format.printf "did not stabilize within the horizon@.");
    (* CI gate: pre-stabilization debris (invalid or disagreeing
       decisions before the measured stabilization time) is exactly what
       Definition 2.4 tolerates; the failure modes are not stabilizing
       within the horizon, or making no progress afterwards. The baseline
       style under corruption is *expected* to exit non-zero — that is
       the paper's point. *)
    match stab with
    | Some t when Consensus.fully_decided_after ds ~correct ~from:t > 0 -> 0
    | Some _ | None -> 1
  in
  let term =
    Term.(
      const run $ n_arg $ seed_arg $ gst_arg
      $ Arg.(value & opt int 4000 & info [ "horizon" ] ~docv:"T" ~doc:"Simulation horizon.")
      $ crashes_arg $ style_arg $ corruption_arg $ detector_arg $ trace_out_arg
      $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "consensus"
       ~doc:"Run asynchronous repeated consensus (baseline or self-stabilizing) under systemic corruption.")
    term

(* --- impossibility --- *)

let impossibility_cmd =
  let run trace_out metrics_out =
    (* Nothing emits here; the flags exist so every subcommand accepts
       them and scripted wrappers need no special case. *)
    with_obs trace_out metrics_out @@ fun _obs ->
    let r1 = Impossibility.Theorem1.run ~isolation:8 ~c_p:42 ~c_q:7 ~suffix:10 in
    let r2 = Impossibility.Theorem2.run ~silence_threshold:4 ~c_p:13 ~c_q:2 ~rounds:12 in
    Format.printf "Theorem 1 confirmed: %b@." (Impossibility.Theorem1.confirms_theorem r1);
    Format.printf "Theorem 2 confirmed: %b@." (Impossibility.Theorem2.confirms_theorem r2);
    if
      Impossibility.Theorem1.confirms_theorem r1
      && Impossibility.Theorem2.confirms_theorem r2
    then 0
    else 1
  in
  Cmd.v
    (Cmd.info "impossibility" ~doc:"Execute the Theorem 1 and Theorem 2 scenario pairs.")
    Term.(const run $ trace_out_arg $ metrics_out_arg)

(* --- check: exhaustive adversary model-checking (ftss_check) --- *)

let property_arg =
  Arg.(
    value
    & opt string "theorem3"
    & info [ "property" ] ~docv:"P"
        ~doc:
          "Property to model-check: $(b,theorem3) (round agreement), $(b,theorem4) \
           (the compiler) or $(b,theorem5) (the \xE2\x97\x87W\xE2\x86\x92\xE2\x97\x87S transform; crash schedules only).")

let inject_arg =
  Arg.(
    value
    & opt string "none"
    & info [ "inject" ] ~docv:"I"
        ~doc:
          "Seeded violation to inject: $(b,none), $(b,frozen-exchange) (theorem3) or \
           $(b,no-suspect-filter) (theorem4). A violation is expected to be found, \
           shrunk and written out.")

let domains_arg =
  Arg.(
    value
    & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the parallel explorer; 0 means auto — every available \
           core ($(b,Explore.available ())). With more than one domain a \
           single-domain pass also runs, to report the per-domain speedup.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the shrunk counterexample (if any) to FILE instead of stdout.")

let check_rounds_arg =
  Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Schedule horizon in rounds.")

let json_arg =
  Arg.(
    value
    & flag
    & info [ "json" ]
        ~doc:
          "Print the explorer statistics as a single JSON object on stdout and nothing \
           else (the single-domain comparison pass and counterexample shrinking are \
           skipped). Exit codes are unchanged.")

let canonical_arg =
  Arg.(
    value
    & flag
    & info [ "canonical" ]
        ~doc:
          "Collapse pid-permutation-symmetric cases: group the adversary space into \
           orbits under process relabelling, execute one canonical representative per \
           orbit and scatter its verdict to every member. Sound for pid-symmetric \
           properties (theorem3); the orbit count and reduction factor are reported \
           in the statistics.")

let check_cmd =
  let run n f rounds property inject domains canonical out json dot trace_out
      metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let open Ftss_check in
    match Property.find ~name:property ~inject with
    | Error msg ->
      Format.eprintf "check: %s@." msg;
      2
    | Ok prop -> (
      match
        let params =
          prop.Property.restrict
            { Schedule_enum.n; rounds; f; intervals = true; drops = true }
        in
        Schedule_enum.validate params;
        params
      with
      | exception Invalid_argument msg ->
        Format.eprintf "check: %s@." msg;
        2
      | params ->
        let cases = Schedule_enum.enumerate params in
        if not json then begin
          Format.printf "property: %s (inject: %s)@." prop.Property.name
            prop.Property.inject;
          Format.printf "parameters: n=%d rounds=%d f=%d (intervals=%b drops=%b)@."
            params.Schedule_enum.n params.Schedule_enum.rounds params.Schedule_enum.f
            params.Schedule_enum.intervals params.Schedule_enum.drops;
          Format.printf "adversary space: %d schedules x %d corruption classes = %d cases@."
            (Schedule_enum.count_schedules params)
            (List.length (Schedule_enum.corruptions params))
            (Array.length cases)
        end;
        let domains = if domains <= 0 then Explore.available () else domains in
        let stats, results = Explore.run ?obs ~domains ~canonical prop cases in
        if json then begin
          print_endline (Ftss_obs.Json.to_string (Explore.to_json stats));
          match stats.Explore.violations with [] -> 0 | _ :: _ -> 1
        end
        else begin
          Format.printf "%a@." Explore.pp_stats stats;
          if stats.Explore.domains > 1 then begin
            let stats1, _ = Explore.run ~domains:1 ~canonical prop cases in
            Format.printf
              "single-domain elapsed: %.3f s -> speedup %.2fx at %d domains@."
              stats1.Explore.elapsed
              (if stats.Explore.elapsed > 0. then
                 stats1.Explore.elapsed /. stats.Explore.elapsed
               else 0.)
              stats.Explore.domains
          end;
          match stats.Explore.violations with
          | [] ->
            Format.printf
              "verdict: %s holds over the exhaustive bounded adversary space@."
              prop.Property.name;
            0
          | first :: _ ->
            let case = cases.(first) in
            Format.printf "verdict: VIOLATED (first counterexample, case %d)@." first;
            Format.printf "  %a@." Schedule_enum.pp case;
            Format.printf "  %s@." results.(first).Explore.detail;
            let shrunk = Shrink.shrink ~property:prop case in
            Format.printf "shrunk counterexample (size %d -> %d):@."
              (Schedule_enum.size case) (Schedule_enum.size shrunk);
            Format.printf "  %a@." Schedule_enum.pp shrunk;
            let replayable =
              { Replay.property = prop.Property.name; inject = prop.Property.inject;
                case = shrunk }
            in
            (match out with
            | Some path ->
              Replay.save path replayable;
              Format.printf "replay file written to %s (ftss_cli replay %s)@." path path
            | None -> Format.printf "%s" (Replay.to_string replayable));
            (* Traced, stamped re-run of the shrunk counterexample: the
               causal cone of its outcome ships with the report. *)
            explain_counterexample ?dot ~n (fun o ->
                ignore (prop.Property.run ~obs:o shrunk));
            1
        end)
  in
  let term =
    (* Long aliases so the CI-style spelling "check --n 3 --f 1" parses
       (cmdliner resolves --n and --f as unambiguous long-option
       prefixes). *)
    let n_arg =
      Arg.(
        value
        & opt int 3
        & info [ "n"; "num-processes" ] ~docv:"N" ~doc:"Number of processes.")
    in
    let f_arg =
      Arg.(
        value
        & opt int 1
        & info [ "f"; "faults" ] ~docv:"F" ~doc:"Bound on faulty processes.")
    in
    Term.(
      const run $ n_arg $ f_arg $ check_rounds_arg $ property_arg $ inject_arg
      $ domains_arg $ canonical_arg $ out_arg $ json_arg $ dot_arg $ trace_out_arg
      $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check a theorem over every enumerated fault schedule and \
          corruption class, in parallel across domains; shrink any counterexample to \
          a minimal replayable file.")
    term

(* --- fuzz: coverage-guided adversary fuzzing (ftss_fuzz) --- *)

let budget_conv =
  let parse s =
    let open Ftss_fuzz.Fuzz in
    let len = String.length s in
    if len > 1 && s.[len - 1] = 's' then
      match float_of_string_opt (String.sub s 0 (len - 1)) with
      | Some x when x > 0. -> Ok (Seconds x)
      | _ -> Error (`Msg (Printf.sprintf "invalid budget %S (want N or Ns)" s))
    else
      match int_of_string_opt s with
      | Some k when k > 0 -> Ok (Cases k)
      | _ -> Error (`Msg (Printf.sprintf "invalid budget %S (want N or Ns)" s))
  in
  let print ppf = function
    | Ftss_fuzz.Fuzz.Cases k -> Format.fprintf ppf "%d" k
    | Ftss_fuzz.Fuzz.Seconds x -> Format.fprintf ppf "%gs" x
  in
  Arg.conv (parse, print)

let budget_arg =
  Arg.(
    value
    & opt budget_conv (Ftss_fuzz.Fuzz.Cases 5000)
    & info [ "budget" ] ~docv:"N|Ns"
        ~doc:
          "Fuzzing budget: a case count ($(b,5000)) or a wall-clock time in seconds \
           ($(b,30s)). The seed phase — the exhaustive catalogue plus any persisted \
           corpus — always runs to completion under a time budget.")

let corpus_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the corpus: entries in $(docv) seed the run, and every input that \
           grew coverage is written back, one S-expression file per execution \
           fingerprint.")

let fuzz_cmd =
  let run n f rounds property inject seed budget corpus_dir domains json trace_out
      metrics_out =
    with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
    let open Ftss_check in
    let module M = Ftss_fuzz.Mutate in
    let module F = Ftss_fuzz.Fuzz in
    match Property.find ~name:property ~inject with
    | Error msg ->
      Format.eprintf "fuzz: %s@." msg;
      2
    | Ok prop -> (
      let config =
        {
          F.seed;
          budget;
          domains;
          params = { M.n; rounds; f; allow_drops = true };
          corpus_dir;
        }
      in
      match F.run ?obs config prop with
      | exception Invalid_argument msg ->
        Format.eprintf "fuzz: %s@." msg;
        2
      | Error msg ->
        Format.eprintf "fuzz: %s@." msg;
        2
      | Ok stats ->
        (* Self-verification: every reported violation must survive
           persist -> reload -> replay, and shrink deterministically to a
           still-failing local minimum. A violation that does not is a
           fuzzer bug, not a protocol bug — distinct exit code. *)
        let reproducible (v : F.violation) =
          (match M.of_string (M.to_string v.F.v_genome) with
          | Ok g -> M.equal g v.F.v_genome && F.genome_fails prop g
          | Error _ -> false)
          && F.genome_fails prop v.F.v_shrunk
          && M.equal v.F.v_shrunk (F.shrink_genome prop v.F.v_genome)
        in
        let broken = List.filter (fun v -> not (reproducible v)) stats.F.violations in
        if json then print_endline (Ftss_obs.Json.to_string (F.to_json stats))
        else begin
          Format.printf "property: %s (inject: %s)@." prop.Property.name
            prop.Property.inject;
          Format.printf "parameters: n=%d rounds=%d f=%d@." n rounds f;
          Format.printf "%a@." F.pp_stats stats;
          List.iter
            (fun (v : F.violation) ->
              Format.printf "violation (%s phase): %a@."
                (if v.F.v_seed then "seed" else "mutation")
                M.pp v.F.v_genome;
              Format.printf "  shrunk (size %d -> %d): %a@." (M.size v.F.v_genome)
                (M.size v.F.v_shrunk) M.pp v.F.v_shrunk;
              Format.printf "  %s@." v.F.v_detail;
              explain_counterexample ~n (fun o ->
                  ignore (prop.Property.run_adv ~obs:o (M.to_adversary v.F.v_shrunk))))
            stats.F.violations
        end;
        match (broken, stats.F.violations) with
        | _ :: _, _ ->
          List.iter
            (fun (v : F.violation) ->
              Format.eprintf "fuzz: violation %s did not reproduce or re-shrink@."
                v.F.v_fingerprint)
            broken;
          3
        | [], [] -> 0
        | [], _ :: _ -> 1)
  in
  let term =
    let n_arg =
      Arg.(
        value
        & opt int 3
        & info [ "n"; "num-processes" ] ~docv:"N" ~doc:"Number of processes.")
    in
    let f_arg =
      Arg.(
        value
        & opt int 1
        & info [ "f"; "faults" ] ~docv:"F" ~doc:"Bound on faulty processes.")
    in
    Term.(
      const run $ n_arg $ f_arg $ check_rounds_arg $ property_arg $ inject_arg
      $ seed_arg $ budget_arg $ corpus_dir_arg $ domains_arg $ json_arg
      $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided adversary fuzzing over arbitrary drop matrices, crash points \
          and raw state corruptions — seeded with the exhaustive catalogue, so the \
          seed phase alone rediscovers everything $(b,check) finds, then mutation \
          searches beyond it. Violations are auto-shrunk and self-verified \
          (persist, reload, replay); exit 1 = reproducible violations found, \
          3 = a violation failed self-verification.")
    term

(* --- replay --- *)

let replay_cmd =
  let run path dot trace_out metrics_out =
    let open Ftss_check in
    match Replay.load path with
    | Error msg ->
      Format.eprintf "replay: %s@." msg;
      2
    | Ok t -> (
      let n = t.Replay.case.Schedule_enum.params.Schedule_enum.n in
      with_obs ~stamp:n trace_out metrics_out @@ fun obs ->
      Format.printf "property: %s (inject: %s)@." t.Replay.property t.Replay.inject;
      Format.printf "case: %a@." Schedule_enum.pp t.Replay.case;
      match Replay.replay ?obs t with
      | Error msg ->
        Format.eprintf "replay: %s@." msg;
        2
      | Ok verdict ->
        Format.printf "%s@." verdict.Property.detail;
        if verdict.Property.ok then begin
          Format.printf "counterexample did NOT reproduce (property holds)@.";
          1
        end
        else begin
          Format.printf "counterexample reproduced@.";
          explain_counterexample ?dot ~n (fun o -> ignore (Replay.replay ~obs:o t));
          0
        end)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Counterexample file written by $(b,check --out).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Deterministically re-execute a shrunk counterexample file and confirm it \
             still falsifies its property; a reproduced counterexample is explained \
             through its causal provenance.")
    Term.(const run $ file_arg $ dot_arg $ trace_out_arg $ metrics_out_arg)

(* --- trace: summarize a JSONL event file --- *)

let trace_cmd =
  let run path dump_events kind =
    match Ftss_obs.Trace_summary.load path with
    | Error msg ->
      Format.eprintf "trace: %s@." msg;
      2
    | Ok t ->
      if dump_events || kind <> None then begin
        let wanted ev =
          match kind with None -> true | Some k -> Ftss_obs.Event.kind ev = k
        in
        List.iter
          (fun ev -> if wanted ev then Format.printf "%a@." Ftss_obs.Event.pp ev)
          (Ftss_obs.Trace_summary.events t)
      end
      else Format.printf "%a@." Ftss_obs.Trace_summary.pp t;
      0
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE.jsonl" ~doc:"Event trace written by $(b,--trace-out).")
  in
  let events_arg =
    Arg.(
      value & flag
      & info [ "events" ] ~doc:"Dump every event, one per line, instead of the summary.")
  in
  let kind_arg =
    Arg.(
      value
      & opt (some (enum (List.map (fun k -> (k, k)) Ftss_obs.Event.kinds))) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"With or without $(b,--events): dump only events of this kind.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Summarize a JSON Lines event trace: event census, coterie-stable windows with \
          measured stabilization, per-process suspicion timeline, and the omission \
          blame matrix.")
    Term.(const run $ file_arg $ events_arg $ kind_arg)

(* --- explain: causal provenance of an outcome event --- *)

let explain_cmd =
  let run path selector dot =
    match Prov.load path with
    | Error msg ->
      Format.eprintf "explain: %s@." msg;
      2
    | Ok t -> (
      match Prov.parse_target selector with
      | Error msg ->
        Format.eprintf "explain: %s@." msg;
        2
      | Ok target -> (
        match Prov.resolve t target with
        | Error msg ->
          Format.eprintf "explain: %s@." msg;
          2
        | Ok targets ->
          Format.printf "%a@." Prov.pp_explain (t, targets);
          (match Prov.stamps_consistent t with
          | Ok () -> ()
          | Error msg ->
            Format.eprintf "explain: warning: inconsistent causal stamps (%s)@." msg);
          (match dot with
          | Some p ->
            write_dot p t targets;
            Format.printf "provenance cone written to %s (Graphviz)@." p
          | None -> ());
          0))
  in
  let trace_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.jsonl"
          ~doc:"Event trace written by $(b,--trace-out).")
  in
  let event_arg =
    Arg.(
      value
      & opt string "last-decide"
      & info [ "event" ] ~docv:"SEL"
          ~doc:
            "Outcome event to explain: an event id, $(b,last-decide), \
             $(b,last-window), or $(b,suspect:P,Q) (the last suspicion change of P \
             about Q).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain an outcome event of a trace through its causal (happened-before) \
          cone: which events of which processes it depends on, which omitted messages \
          were pruned with their blame chains, and which coterie-growth \
          (destabilizing) events the run contains.")
    Term.(const run $ trace_arg $ event_arg $ dot_arg)

(* --- serve / watch: the replicated service tower end to end --- *)

module Monitor = Ftss_monitor.Monitor
module Recorder = Ftss_monitor.Recorder

(* Shared driver for [serve] and [watch]: builds the workload and fault
   mix, arms the hub + monitor plane exactly as requested (nothing at
   all when no observability flag is given), runs the tower, finalizes
   the monitors at the simulated horizon, and renders. Exit code is
   non-zero when the service gate fails or any SLO alarm fired. *)
let tower_run ~n ~seed ~ops ~sessions ~keys ~window ~baseline ~storm_at
    ~storm_victims ~omit ~trace_out ~metrics_out ~slo ~prom_out ~prom_every
    ~flight_out ~watch ~watch_json ~shards ~domains =
  let open Ftss_service in
  match
    match slo with
    | None -> Ok Monitor.no_budgets
    | Some s -> Monitor.budgets_of_string s
  with
  | Error msg ->
    Format.eprintf "ftss: bad --slo spec: %s@." msg;
    2
  | Ok budgets ->
    (* One shard per domain when only --domains was given. *)
    let shards = match shards with Some s -> s | None -> max 1 domains in
    let spec =
      { Workload.default_spec with Workload.ops; sessions; keys; window; seed }
    in
    let params =
      {
        (Service.default_params ~n ~seed:(seed + 1)) with
        Service.style = (if baseline then Tob.baseline else Tob.self_stabilizing);
        faults =
          {
            Service.no_faults with
            Service.storms =
              (match storm_at with Some t -> [ (t, storm_victims) ] | None -> []);
            omission = (match omit with Some w -> [ w ] | None -> []);
          };
      }
    in
    let need_monitor =
      slo <> None || prom_out <> None || flight_out <> None || watch <> None
    in
    if shards > 1 || domains > 1 then begin
      (* Sharded towers run without the per-event monitor plane (shard
         simulations emit no event streams); summary gauges still land in
         --metrics-out. *)
      if need_monitor || trace_out <> None then begin
        Format.eprintf
          "ftss: --shards/--domains cannot be combined with --slo, --prom-out, \
           --flight-out, --trace-out or watch@.";
        2
      end
      else begin
        let obs =
          match metrics_out with
          | Some _ -> Some (Ftss_obs.Obs.create ~record:true ~threadsafe:false ())
          | None -> None
        in
        let r = Service.run_sharded ?obs ~domains ~shards ~spec params in
        (match (metrics_out, obs) with
        | Some path, Some obs ->
          let oc = open_out path in
          output_string oc
            (Ftss_obs.Json.to_string
               (Ftss_obs.Metrics.to_json (Ftss_obs.Obs.metrics obs)));
          output_char oc '\n';
          close_out oc;
          Ftss_obs.Obs.close obs
        | _ -> ());
        Format.printf "%a@." Service.pp_report r;
        Format.printf "shards=%d domains=%d digest=%d@." shards domains
          (Service.report_digest r);
        if r.Service.unique_ops > 0 && r.Service.converged then 0 else 1
      end
    end
    else
    let wl = Workload.create ~n spec in
    if (not need_monitor) && trace_out = None && metrics_out = None then begin
      let r = Service.run ~wl params in
      Format.printf "%a@." Service.pp_report r;
      if r.Service.unique_ops > 0 && r.Service.converged then 0 else 1
    end
    else begin
      (* The monitor plane keeps its own state: fold events into the
         metrics registry only when a snapshot was asked for, stamp only
         when a trace is written — the armed hot path stays lean. *)
      let record = metrics_out <> None in
      let stamp = if trace_out <> None then Some n else None in
      (* single-domain driver: skip the per-event hub lock *)
      let obs = Ftss_obs.Obs.create ?stamp ~record ~threadsafe:false () in
      (match trace_out with
      | Some path -> Ftss_obs.Obs.add_sink obs (Ftss_obs.Sink.jsonl_file path)
      | None -> ());
      let monitor = if need_monitor then Some (Monitor.create ~n budgets) else None in
      let snap = ref None in
      let write_prom m =
        match prom_out with Some p -> Monitor.write_openmetrics m p | None -> ()
      in
      (* With --json each frame is one JSON object (a line on stdout, or
         the whole file under --out) instead of the text dashboard. *)
      let render_frame m =
        let frame () =
          if watch_json then
            Ftss_obs.Json.to_string (Monitor.dashboard_json m) ^ "\n"
          else Monitor.dashboard_string m
        in
        match watch with
        | Some (_, Some path) ->
          let oc = open_out path in
          output_string oc (frame ());
          close_out oc
        | Some (_, None) -> print_string (frame ())
        | None -> ()
      in
      (* When JSON frames stream to stdout, keep stdout machine-readable:
         the human-facing report and monitor table are suppressed (the
         final frame carries the same quantities). *)
      let json_stdout =
        watch_json && match watch with Some (_, None) -> true | _ -> false
      in
      (match monitor with
      | Some m ->
        Monitor.set_on_alarm m (fun m a ->
            Format.eprintf "ALARM %a@." Monitor.pp_alarm a;
            match flight_out with
            | Some prefix when !snap = None ->
              snap := Some (Recorder.snapshot m a ~prefix)
            | _ -> ());
        (match
           match watch with
           | Some (every, _) -> Some every
           | None -> if prom_out <> None then Some prom_every else None
         with
        | Some every ->
          Monitor.set_interval m ~every (fun m ~time:_ ->
              render_frame m;
              write_prom m)
        | None -> ());
        Monitor.attach m obs
      | None -> ());
      let r = Service.run ~obs ~wl params in
      (match monitor with
      | Some m ->
        Monitor.finalize m ~end_time:r.Service.end_time;
        write_prom m;
        render_frame m
      | None -> ());
      Ftss_obs.Obs.close obs;
      (match metrics_out with
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Ftss_obs.Json.to_string
             (Ftss_obs.Metrics.to_json (Ftss_obs.Obs.metrics obs)));
        output_char oc '\n';
        close_out oc
      | None -> ());
      if not json_stdout then Format.printf "%a@." Service.pp_report r;
      let alarm_count =
        match monitor with Some m -> Monitor.alarm_count m | None -> 0
      in
      (match monitor with
      | Some _ when json_stdout -> ()
      | Some m when slo <> None || alarm_count > 0 ->
        Format.printf "@[<v>monitors:@,%a@]@."
          (Format.pp_print_list (fun ppf (s : Monitor.status) ->
               Format.fprintf ppf "  %-12s %-9s %s" s.Monitor.name
                 (if s.Monitor.firing > 0 then
                    Printf.sprintf "ALARM(%d)" s.Monitor.firing
                  else if s.Monitor.armed then "ok"
                  else "off")
                 s.Monitor.value))
          (Monitor.statuses m);
        if alarm_count > 0 then
          Format.printf "slo: %d alarm%s fired@." alarm_count
            (if alarm_count = 1 then "" else "s")
        else Format.printf "slo: all budgets met@."
      | _ -> ());
      (match !snap with
      | Some s when not json_stdout -> Format.printf "%a@." Recorder.pp_snapshot s
      | _ -> ());
      if r.Service.unique_ops > 0 && r.Service.converged && alarm_count = 0 then 0
      else 1
    end

let slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Arm SLO monitors with budgets: comma-separated key=value with keys \
           $(b,stab) (online stabilization time d, ticks), $(b,heal) \
           (corruption-to-apply ticks), $(b,p99) (commit-latency ticks), $(b,drop) \
           (per-link omission EWMA), $(b,churn) (suspicion changes/tick). Example: \
           $(b,heal=120,stab=400,p99=800). Any fired alarm makes the command exit \
           non-zero.")

let prom_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom-out" ] ~docv:"FILE"
        ~doc:
          "Write an OpenMetrics text exposition of the monitor plane to $(docv), \
           rewritten on every interval and at the end of the run.")

let prom_every_arg =
  Arg.(
    value & opt int 1_000
    & info [ "prom-every" ] ~docv:"T"
        ~doc:"Simulated ticks between $(b,--prom-out) rewrites.")

let flight_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-out" ] ~docv:"PREFIX"
        ~doc:
          "On the first alarm, snapshot the flight recorder: the event ring to \
           $(docv).jsonl and the causal cone of the triggering event to \
           $(docv).dot.")

let omit_window_arg =
  let omit_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ a; b; p ] -> (
        match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt p) with
        | Some a, Some b, Some p when a >= 0 && b > a && p >= 0. && p <= 1. ->
          Ok (a, b, p)
        | _ -> Error (`Msg "expected T0:T1:P with T0 < T1 and P in [0,1]"))
      | _ -> Error (`Msg "expected T0:T1:P")
    in
    Arg.conv (parse, fun ppf (a, b, p) -> Format.fprintf ppf "%d:%d:%g" a b p)
  in
  Arg.(
    value
    & opt (some omit_conv) None
    & info [ "omit-window" ] ~docv:"T0:T1:P"
        ~doc:"Drop each message with probability P between times T0 and T1.")

let ops_arg =
  Arg.(
    value & opt int 20_000
    & info [ "ops" ] ~docv:"OPS" ~doc:"Client operations to generate.")

let sessions_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "sessions" ] ~docv:"S" ~doc:"Simulated client sessions.")

let keys_arg =
  Arg.(
    value & opt int 65_536
    & info [ "keys" ] ~docv:"K" ~doc:"Key-space size (Zipfian-distributed).")

let window_arg =
  Arg.(
    value & opt int 2_000
    & info [ "window" ] ~docv:"T"
        ~doc:"Arrival window in simulated time units; the run drains afterwards.")

let baseline_arg =
  Arg.(
    value & flag
    & info [ "baseline" ]
        ~doc:"Run the non-stabilizing baseline tower instead of the default \
              self-stabilizing one.")

let storm_at_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "storm-at" ] ~docv:"T" ~doc:"Inject a corruption storm at time $(docv).")

let storm_victims_arg =
  Arg.(
    value & opt int 2
    & info [ "storm-victims" ] ~docv:"V"
        ~doc:"Replicas scrambled by the storm (with $(b,--storm-at)).")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition the workload over $(docv) independent replica towers and \
           merge their reports. Defaults to $(b,--domains) so each domain gets \
           one shard. The merged digest depends only on the shard count, never \
           on $(b,--domains).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Run shards on $(docv) parallel domains. Results are bit-identical \
           for every value of $(docv); only wall-clock time changes.")

let serve_cmd =
  let run n seed ops sessions keys window baseline storm_at storm_victims omit
      trace_out metrics_out slo prom_out prom_every flight_out shards domains =
    tower_run ~n ~seed ~ops ~sessions ~keys ~window ~baseline ~storm_at
      ~storm_victims ~omit ~trace_out ~metrics_out ~slo ~prom_out ~prom_every
      ~flight_out ~watch:None ~watch_json:false ~shards ~domains
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the replicated service tower (total-order broadcast over repeated \
          multivalued consensus, applying a key-value log) under a generated \
          client workload, and report commit latency, throughput and \
          convergence. With $(b,--shards)/$(b,--domains) the workload is \
          partitioned over independent towers executed in parallel, with \
          deterministic, domain-count-independent results. Exits non-zero \
          unless operations were committed, every live replica converged, and \
          no $(b,--slo) alarm fired.")
    Term.(
      const run $ n_arg $ seed_arg $ ops_arg $ sessions_arg $ keys_arg
      $ window_arg $ baseline_arg $ storm_at_arg $ storm_victims_arg
      $ omit_window_arg $ trace_out_arg $ metrics_out_arg $ slo_arg $ prom_out_arg
      $ prom_every_arg $ flight_out_arg $ shards_arg $ domains_arg)

let watch_cmd =
  let run n seed ops sessions keys window baseline storm_at storm_victims omit
      every out json slo prom_out prom_every flight_out =
    tower_run ~n ~seed ~ops ~sessions ~keys ~window ~baseline ~storm_at
      ~storm_victims ~omit ~trace_out:None ~metrics_out:None ~slo ~prom_out
      ~prom_every ~flight_out ~watch:(Some (every, out)) ~watch_json:json
      ~shards:(Some 1) ~domains:1
  in
  let every_arg =
    Arg.(
      value & opt int 500
      & info [ "every" ] ~docv:"T"
          ~doc:"Simulated ticks between dashboard frames.")
  in
  let watch_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Rewrite each dashboard frame to $(docv) instead of printing frames \
             to stdout (tail it from another terminal).")
  in
  let watch_json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit each dashboard frame as one JSON object instead of the text \
             dashboard: a JSON line per frame on stdout (the human-readable \
             report and monitor table are suppressed so stdout stays \
             machine-readable), or the whole $(b,--out) file rewritten per \
             frame. Exit codes are unchanged.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Run the service tower like $(b,serve) while rendering a live dashboard \
          of the streaming monitor plane every $(b,--every) ticks: throughput, \
          commit-latency quantiles, omission and suspicion-churn EWMAs, online \
          stabilization time, heal watchdog and alarm states.")
    Term.(
      const run $ n_arg $ seed_arg $ ops_arg $ sessions_arg $ keys_arg
      $ window_arg $ baseline_arg $ storm_at_arg $ storm_victims_arg
      $ omit_window_arg $ every_arg $ watch_out_arg $ watch_json_arg $ slo_arg
      $ prom_out_arg $ prom_every_arg $ flight_out_arg)

(* --- profile: a representative workload under the span profiler --- *)

let profile_cmd =
  let run n seed ops window out folded_out summary =
    let module Prof = Ftss_profile.Profile in
    let open Ftss_service in
    let prof = Prof.create () in
    (* Tower section: the sim_* event-loop phases plus every svc_*
       replica phase. The mid-window storm forces repair traffic, so the
       recovery phases (audit repairs, pull catch-up) appear even on a
       short run. *)
    let spec = { Workload.default_spec with Workload.ops; seed; window } in
    let params =
      {
        (Service.default_params ~n ~seed:(seed + 1)) with
        Service.faults =
          {
            Service.no_faults with
            Service.storms = [ (window / 2, max 1 (n / 2)) ];
          };
      }
    in
    let wl = Workload.create ~n spec in
    let r = Service.run ~profile:(Prof.lane prof "svc.tower") ~wl params in
    (* Explorer section: the chunk_* work-queue phases, two domains. *)
    match Ftss_check.Property.find ~name:"theorem3" ~inject:"none" with
    | Error msg ->
      Format.eprintf "profile: %s@." msg;
      2
    | Ok prop -> (
      let module S = Ftss_check.Schedule_enum in
      let sp =
        prop.Ftss_check.Property.restrict
          { S.n = 3; rounds = 2; f = 1; intervals = true; drops = true }
      in
      S.validate sp;
      let cases = S.enumerate sp in
      let _ = Ftss_check.Explore.run ~profile:prof ~domains:2 prop cases in
      (* Fuzzer section: the whole seed catalogue plus enough budget for
         mutation batches, so fuzz_mutate appears alongside fuzz_seed and
         fuzz_verify. *)
      let module F = Ftss_fuzz.Fuzz in
      let fconfig =
        {
          F.seed;
          budget = F.Cases (Array.length cases + 256);
          domains = 1;
          params = { Ftss_fuzz.Mutate.n = 3; rounds = 2; f = 1; allow_drops = true };
          corpus_dir = None;
        }
      in
      match F.run ~profile:prof fconfig prop with
      | Error msg ->
        Format.eprintf "profile: %s@." msg;
        2
      | Ok _ ->
        let totals = Prof.totals prof in
        let missing =
          List.filter
            (fun p ->
              not (List.exists (fun t -> t.Prof.pt_phase = p) totals))
            Prof.Phase.all
        in
        let bad = Prof.check prof in
        (match out with
        | Some path ->
          let oc = open_out path in
          output_string oc (Ftss_obs.Json.to_string (Prof.chrome_json prof));
          output_char oc '\n';
          close_out oc;
          Format.printf "trace written to %s (load in ui.perfetto.dev or \
                         chrome://tracing)@."
            path
        | None -> ());
        (match folded_out with
        | Some path ->
          let oc = open_out path in
          output_string oc (Prof.folded prof);
          close_out oc;
          Format.printf "folded stacks written to %s (flamegraph.pl input)@." path
        | None -> ());
        if summary then Format.printf "%a@." Prof.pp_summary prof;
        Format.printf
          "profiled %d lanes over %.3f s (%d committed ops, %d cases, %d+ fuzz \
           execs); phases covered: %d/%d@."
          (List.length (Prof.lanes prof))
          (float_of_int (Prof.wall_ns prof) /. 1e9)
          r.Service.unique_ops (Array.length cases) (Array.length cases)
          (Prof.Phase.count - List.length missing)
          Prof.Phase.count;
        List.iter
          (fun p ->
            Format.eprintf "profile: phase %s never recorded@." (Prof.Phase.name p))
          missing;
        List.iter
          (fun (l, s, w) ->
            Format.eprintf "profile: lane %s self-time %d ns exceeds wall %d ns@."
              l s w)
          bad;
        if missing = [] && bad = [] && r.Service.unique_ops > 0 then 0 else 1)
  in
  let ops_arg =
    Arg.(
      value & opt int 4_000
      & info [ "ops" ] ~docv:"OPS" ~doc:"Client operations in the tower section.")
  in
  let window_arg =
    Arg.(
      value & opt int 1_500
      & info [ "window" ] ~docv:"T" ~doc:"Tower arrival window in simulated ticks.")
  in
  let profile_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the merged multi-lane timeline as Chrome-trace/Perfetto JSON \
             to $(docv): one process row per track group (svc, explore, fuzz), \
             one thread lane per domain or shard, aggregated window slices for \
             the per-event phases.")
  in
  let folded_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded-out" ] ~docv:"FILE"
          ~doc:
            "Write folded stacks (one $(b,lane;parent;phase self_ns) line per \
             stack) to $(docv), ready for flamegraph.pl / inferno.")
  in
  let summary_arg =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "Print the per-phase self-time table (calls, self time, share, \
             allocation) — the same figures E17 exports as bench gauges.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Self-profile the stack: run the service tower (with a mid-run \
          corruption storm), a two-domain exhaustive exploration and a short \
          fuzz campaign under the span profiler, then export per-phase \
          time/allocation attribution. Exits non-zero when any registered \
          phase never fired or a lane's self-times exceed its wall time — the \
          CI smoke gate.")
    Term.(
      const run $ n_arg $ seed_arg $ ops_arg $ window_arg $ profile_out_arg
      $ folded_out_arg $ summary_arg)

(* --- bench-diff: compare two gauge snapshots --- *)

let bench_diff_cmd =
  let run old_path new_path max_regress =
    let module B = Ftss_obs.Bench_diff in
    match (B.load old_path, B.load new_path) with
    | Error msg, _ | _, Error msg ->
      Format.eprintf "bench-diff: %s@." msg;
      2
    | Ok o, Ok nw ->
      let report = B.diff ~old_:o ~new_:nw in
      Format.printf "%a@." (B.pp ~max_regress) report;
      (match report.B.only_old with
      | [] -> ()
      | missing ->
        Format.printf
          "warning: %d baseline gauge%s missing from the candidate snapshot: %s@."
          (List.length missing)
          (if List.length missing = 1 then "" else "s")
          (String.concat ", " missing));
      (match report.B.only_new with
      | [] -> ()
      | fresh ->
        Format.printf
          "warning: %d candidate gauge%s missing from the baseline snapshot \
           (ungated until the baseline is refreshed): %s@."
          (List.length fresh)
          (if List.length fresh = 1 then "" else "s")
          (String.concat ", " fresh));
      let regs = B.regressions report ~max_regress in
      if regs = [] then begin
        Format.printf "no regressions beyond %.0f%%@." max_regress;
        0
      end
      else begin
        Format.printf "%d regression%s beyond %.0f%%@." (List.length regs)
          (if List.length regs = 1 then "" else "s")
          max_regress;
        1
      end
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline gauge snapshot (BENCH_*.json).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW.json" ~doc:"Fresh gauge snapshot to compare.")
  in
  let max_regress_arg =
    Arg.(
      value
      & opt float 25.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Tolerated worsening per gauge, in percent (direction-aware: throughput \
             gauges must not fall, latency gauges must not rise, by more than \
             $(docv)).")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two benchmark gauge snapshots (schema-2 envelopes or bare metrics \
          files) and exit non-zero when any gauge regressed beyond the tolerance.")
    Term.(const run $ old_arg $ new_arg $ max_regress_arg)

let () =
  let doc = "Unifying self-stabilization and fault-tolerance (PODC 1993) — simulator and experiments" in
  let info = Cmd.info "ftss" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            round_agreement_cmd; compile_cmd; esfd_cmd; stack_cmd; consensus_cmd;
            impossibility_cmd; check_cmd; fuzz_cmd; replay_cmd; trace_cmd;
            explain_cmd; serve_cmd; watch_cmd; profile_cmd; bench_diff_cmd;
          ]))
