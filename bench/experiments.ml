(* The experiment harness: one experiment per figure/theorem of the paper.
   Each experiment prints a table in the shape a systems paper would
   report; EXPERIMENTS.md records paper-claim vs. measured for each. *)

open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols
module M = Ftss_obs.Metrics

let trials = 25

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1 / Theorem 3: round agreement stabilizes in 1 round.   *)
(* ------------------------------------------------------------------ *)

let e1 m =
  let table =
    Table.create
      ~title:
        "E1 (Fig. 1 / Thm 3) Round agreement: measured stabilization over coterie-stable \
         windows (claim: <= 1 round)"
      [ "n"; "f"; "corrupt bound"; "trials"; "max measured"; "ftss holds" ]
  in
  List.iter
    (fun (n, f) ->
      List.iter
        (fun bound ->
          let measured = ref [] and holds = ref 0 in
          for seed = 1 to trials do
            let rng = Rng.create ((seed * 7919) + n + bound) in
            let rounds = Rng.int_in rng 15 40 in
            let faults = Faults.random_omission rng ~n ~f ~p_drop:0.45 ~rounds in
            let trace =
              Runner.run
                ~corrupt:(Round_agreement.corrupt_uniform rng ~bound)
                ~faults ~rounds Round_agreement.protocol
            in
            let d = float_of_int (Solve.measured_stabilization Round_agreement.spec trace) in
            measured := d :: !measured;
            M.observe (M.histogram m "measured_stabilization") d;
            M.inc (M.counter m "trials");
            if Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace then begin
              incr holds;
              M.inc (M.counter m "ftss_holds")
            end
          done;
          Table.add_row table
            [
              string_of_int n;
              string_of_int f;
              string_of_int bound;
              string_of_int trials;
              Printf.sprintf "%.0f" (Stats.max !measured);
              Printf.sprintf "%d/%d" !holds trials;
            ])
        [ 10; 1_000; 1_000_000 ])
    [ (3, 1); (5, 2); (8, 3); (12, 5); (16, 7) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E2 — Figures 2-3 / Theorem 4: the compiler.                         *)
(* ------------------------------------------------------------------ *)

let e2 m =
  let table =
    Table.create
      ~title:
        "E2 (Fig. 2-3 / Thm 4) Compiled repeated consensus: measured stabilization vs the \
         2*final_round bound; iteration agreement"
      [ "n"; "f"; "final_round"; "bound"; "max measured"; "ftss holds"; "iters ok" ]
  in
  List.iter
    (fun (n, f) ->
      let propose p = 50 + p in
      let pi = Omission_consensus.make ~n ~f ~propose in
      let valid d = d >= 50 && d < 50 + n in
      let compiled = Compiler.compile ~n pi in
      let bound = Compiler.stabilization_bound pi in
      let measured = ref [] and holds = ref 0 in
      let total_iters = ref 0 and agreeing_iters = ref 0 in
      for seed = 1 to trials do
        let rng = Rng.create ((seed * 131) + n) in
        let rounds = Rng.int_in rng 30 60 in
        let faults = Faults.random_omission rng ~n ~f ~p_drop:0.4 ~rounds in
        let corrupt =
          Compiler.corrupt rng ~pi ~n ~c_bound:1000 ~corrupt_s:(fun rng p s ->
              Omission_consensus.corrupt_state rng ~n ~value_bound:49 p s)
        in
        let trace = Runner.run ~corrupt ~faults ~rounds compiled in
        let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
        let d = float_of_int (Solve.measured_stabilization spec trace) in
        measured := d :: !measured;
        M.observe (M.histogram m "measured_stabilization") d;
        if Solve.ftss_solves spec ~stabilization:bound trace then incr holds;
        let completed, agreeing =
          Repeated.count_agreeing_iterations trace ~faulty:(Faults.faulty faults) ~valid
        in
        total_iters := !total_iters + completed;
        agreeing_iters := !agreeing_iters + agreeing;
        M.add (M.counter m "iterations") completed;
        M.add (M.counter m "agreeing_iterations") agreeing
      done;
      Table.add_row table
        [
          string_of_int n;
          string_of_int f;
          string_of_int pi.Canonical.final_round;
          string_of_int bound;
          Printf.sprintf "%.0f" (Stats.max !measured);
          Printf.sprintf "%d/%d" !holds trials;
          Printf.sprintf "%d/%d" !agreeing_iters !total_iters;
        ])
    [ (3, 1); (5, 1); (5, 2); (8, 3); (12, 4) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 1: the impossibility scenario.                          *)
(* ------------------------------------------------------------------ *)

let e3 m =
  let table =
    Table.create
      ~title:
        "E3 (Thm 1) Tentative-definition impossibility: suffix indistinguishable from a \
         fresh run; reconciliation vs rate dichotomy"
      [ "isolation"; "gap"; "suffix = fresh run"; "rate violated at"; "rate-obeying agrees"; "confirmed" ]
  in
  List.iter
    (fun (isolation, c_p, c_q) ->
      let r = Impossibility.Theorem1.run ~isolation ~c_p ~c_q ~suffix:10 in
      if Impossibility.Theorem1.confirms_theorem r then M.inc (M.counter m "theorem1_confirmed");
      Table.add_row table
        [
          string_of_int isolation;
          string_of_int r.Impossibility.Theorem1.gap_at_suffix;
          string_of_bool r.Impossibility.Theorem1.suffix_matches_fresh_run;
          (match r.Impossibility.Theorem1.rate_violation_round with
          | Some x -> "suffix round " ^ string_of_int x
          | None -> "never");
          string_of_bool (not r.Impossibility.Theorem1.rate_obeying_never_agrees);
          string_of_bool (Impossibility.Theorem1.confirms_theorem r);
        ])
    [ (1, 2, 9); (4, 100, 3); (8, 42, 7); (16, 1_000_000, 1); (32, 5, 6) ];
  Table.print table;
  print_newline ();
  (* The companion restriction (§2, [KP90]): terminating protocols cannot
     tolerate systemic failures — the halt state is absorbing. *)
  let kp90 =
    Table.create
      ~title:
        "E3b ([KP90] / §2) Terminating protocols cannot self-stabilize: corrupted-halted \
         baseline vs the compiled repetition, same Π"
      [ "n"; "f"; "rounds"; "baseline ever decides"; "compiled decides repeatedly"; "claim confirmed" ]
  in
  List.iter
    (fun (n, f) ->
      let rounds = 25 in
      let r = Impossibility.Kp90.run ~n ~f ~rounds in
      if Impossibility.Kp90.confirms_claim r then M.inc (M.counter m "kp90_confirmed");
      kp90 |> fun t ->
      Table.add_row t
        [
          string_of_int n;
          string_of_int f;
          string_of_int rounds;
          string_of_bool r.Impossibility.Kp90.baseline_ever_decides;
          string_of_bool r.Impossibility.Kp90.compiled_decides_repeatedly;
          string_of_bool (Impossibility.Kp90.confirms_claim r);
        ])
    [ (2, 0); (3, 1); (5, 2); (8, 3) ];
  Table.print kp90

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 2: uniformity impossibility.                            *)
(* ------------------------------------------------------------------ *)

let e4 m =
  let table =
    Table.create
      ~title:
        "E4 (Thm 2) Uniform (halt-before-harm) protocols: identical views force halting a \
         correct process; never halting violates uniformity"
      [ "silence threshold"; "views identical"; "halts correct"; "uniformity violated"; "confirmed" ]
  in
  List.iter
    (fun threshold ->
      let r =
        Impossibility.Theorem2.run ~silence_threshold:threshold ~c_p:13 ~c_q:2
          ~rounds:(threshold + 8)
      in
      if Impossibility.Theorem2.confirms_theorem r then M.inc (M.counter m "theorem2_confirmed");
      Table.add_row table
        [
          string_of_int threshold;
          string_of_bool r.Impossibility.Theorem2.views_identical;
          string_of_bool r.Impossibility.Theorem2.self_checking_halts_correct_process;
          string_of_bool r.Impossibility.Theorem2.never_halting_violates_uniformity;
          string_of_bool (Impossibility.Theorem2.confirms_theorem r);
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E5 — Figure 4 / Theorem 5: the ◇W → ◇S transform.                    *)
(* ------------------------------------------------------------------ *)

let e5 m =
  let open Ftss_async in
  let table =
    Table.create
      ~title:
        "E5 (Fig. 4 / Thm 5) Initialization-free ESFD: convergence after GST, from clean \
         vs corrupted detector tables (GST = 300; times are sim units past GST)"
      [ "n"; "crashes"; "corrupt bound"; "trials"; "converged"; "mean conv - GST"; "p95" ]
  in
  let gst = 300 in
  List.iter
    (fun (n, crash_count) ->
      List.iter
        (fun num_bound ->
          let convs = ref [] and converged = ref 0 in
          let sub_trials = 15 in
          for seed = 1 to sub_trials do
            let crashes = List.init crash_count (fun i -> (n - 1 - i, 100 + (i * 150))) in
            let config =
              {
                (Sim.default_config ~n ~seed) with
                Sim.gst;
                horizon = 3000;
                tick_interval = 10;
                delay_before_gst = (1, 80);
                delay_after_gst = (1, 5);
                crashes;
              }
            in
            let crashed p = List.assoc_opt p crashes in
            let trusted = 0 in
            let oracle =
              Ewfd.make (Rng.create (seed + 1)) ~n ~crashed ~gst ~trusted ~noise:0.3
            in
            let rng = Rng.create (seed + 2) in
            let corrupt =
              if num_bound = 0 then None
              else Some (fun _ t -> Esfd.corrupt rng ~num_bound t)
            in
            let result = Sim.run ?corrupt config (Esfd.process ~n ~oracle ()) in
            M.inc (M.counter m "trials");
            match (Esfd.analyze result ~config ~trusted).Esfd.convergence_time with
            | Some t ->
              incr converged;
              M.inc (M.counter m "converged");
              M.observe (M.histogram m "convergence_after_gst") (float_of_int (max 0 (t - gst)));
              convs := float_of_int (max 0 (t - gst)) :: !convs
            | None -> ()
          done;
          Table.add_row table
            [
              string_of_int n;
              string_of_int crash_count;
              (if num_bound = 0 then "clean" else string_of_int num_bound);
              string_of_int sub_trials;
              Printf.sprintf "%d/%d" !converged sub_trials;
              (if !convs = [] then "-" else Printf.sprintf "%.0f" (Stats.mean !convs));
              (if !convs = [] then "-" else Printf.sprintf "%.0f" (Stats.percentile 95.0 !convs));
            ])
        [ 0; 1_000; 100_000 ])
    [ (3, 1); (5, 1); (5, 2); (9, 4) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E6 — §3: asynchronous repeated consensus, ss vs baseline.            *)
(* ------------------------------------------------------------------ *)

let e6 m =
  let open Ftss_async in
  let propose p i = 100 + (((p * 13) + (i * 7)) mod 50) in
  let table =
    Table.create
      ~title:
        "E6 (§3) Repeated consensus from systemic corruption: baseline CT vs the \
         self-stabilizing superimposition (n=5, GST=300, horizon=4000)"
      [ "style"; "corruption"; "decided"; "disagree"; "invalid"; "stabilized at"; "decided after stab" ]
  in
  let n = 5 and trusted = 1 in
  let run ~style ~corruption ~noise ~seed =
    let config =
      {
        (Sim.default_config ~n ~seed) with
        Sim.gst = 300;
        horizon = 4000;
        tick_interval = 10;
        delay_before_gst = (1, 60);
        delay_after_gst = (1, 4);
      }
    in
    let oracle =
      Ewfd.make (Rng.create (seed + 7)) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst
        ~trusted ~noise
    in
    let corrupt =
      match corruption with
      | `None -> None
      | `Random ->
        Some
          (Consensus.corrupt_random (Rng.create (seed + 3)) ~n ~instance_bound:20
             ~round_bound:30 ~value_bound:90)
      | `Parked -> Some (Consensus.corrupt_parked ~round:6)
    in
    let result = Sim.run ?corrupt config (Consensus.process ~n ~style ~propose ~oracle ()) in
    (config, result)
  in
  List.iter
    (fun (style, style_name) ->
      List.iter
        (fun (corruption, corruption_name, noise) ->
          let config, result = run ~style ~corruption ~noise ~seed:9 in
          let correct = Sim.correct_set config in
          let ds = Consensus.decisions result in
          let grouped = Consensus.per_instance ds ~correct in
          let stab = Consensus.stabilization_time result ~correct ~propose ~n in
          M.add (M.counter m "decided_instances") (List.length grouped);
          (match stab with
          | Some t -> M.observe (M.histogram m "stabilized_at") (float_of_int t)
          | None -> M.inc (M.counter m "never_stabilized"));
          Table.add_row table
            [
              style_name;
              corruption_name;
              string_of_int (List.length grouped);
              string_of_int (List.length (Consensus.disagreements grouped));
              string_of_int (List.length (Consensus.invalid_instances grouped ~propose ~n));
              (match stab with Some t -> "t=" ^ string_of_int t | None -> "never");
              (match stab with
              | Some t -> string_of_int (Consensus.fully_decided_after ds ~correct ~from:t)
              | None -> "-");
            ])
        [ (`None, "none", 0.2); (`Random, "random", 0.2); (`Parked, "parked (deadlock)", 0.0) ])
    [ (Consensus.baseline, "baseline"); (Consensus.self_stabilizing, "self-stab") ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E7 — §2.3: destabilization by late revelation; re-stabilization.     *)
(* ------------------------------------------------------------------ *)

let e7 m =
  let table =
    Table.create
      ~title:
        "E7 (§2.3) Piece-wise stability: a mute process reveals itself at round R with a \
         corrupted round variable; agreement re-established within the stabilization time"
      [ "protocol"; "reveal round"; "windows"; "max measured stab"; "ftss holds" ]
  in
  let reveal_rounds = [ 5; 10; 20; 40 ] in
  (* Round agreement under a late reveal. *)
  List.iter
    (fun reveal ->
      let n = 4 in
      let rounds = reveal + 25 in
      let corrupt p c = if p = n - 1 then 500_000 else c + (p * 7) in
      let faults =
        Faults.of_events ~n [ Faults.Mute { pid = n - 1; first = 1; last = reveal - 1 } ]
      in
      let trace = Runner.run ~corrupt ~faults ~rounds Round_agreement.protocol in
      let windows = Solve.stable_windows trace in
      let measured = Solve.measured_stabilization Round_agreement.spec trace in
      let holds = Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace in
      M.observe (M.histogram m "measured_stabilization") (float_of_int measured);
      Table.add_row table
        [
          "round-agreement";
          string_of_int reveal;
          string_of_int (List.length windows);
          string_of_int measured;
          string_of_bool holds;
        ])
    reveal_rounds;
  Table.add_separator table;
  (* A *partial* reveal: the revealed message reaches only some correct
     processes in the reveal round and must be relayed — the case that
     genuinely consumes Theorem 3's one-round stabilization allowance. *)
  List.iter
    (fun reveal ->
      let n = 4 in
      let rounds = reveal + 25 in
      let corrupt p c = if p = n - 1 then 500_000 else c + (p * 7) in
      let faults =
        Faults.of_events ~n
          (Faults.Mute { pid = n - 1; first = 1; last = reveal - 1 }
          :: [ Faults.Drop { src = n - 1; dst = 0; round = reveal } ])
      in
      let trace = Runner.run ~corrupt ~faults ~rounds Round_agreement.protocol in
      let windows = Solve.stable_windows trace in
      let measured = Solve.measured_stabilization Round_agreement.spec trace in
      let holds = Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace in
      M.observe (M.histogram m "measured_stabilization") (float_of_int measured);
      Table.add_row table
        [
          "round-agreement (partial reveal)";
          string_of_int reveal;
          string_of_int (List.length windows);
          string_of_int measured;
          string_of_bool holds;
        ])
    reveal_rounds;
  Table.add_separator table;
  (* Rolling mute: the victim alternates silence and participation.
     Because the coterie is monotone (happened-before only grows), only
     the *first* reveal is a destabilizing event; every later mute/talk
     cycle must be absorbed with the spec intact — which is what the
     constant window count (3) and the ftss verdict certify. *)
  List.iter
    (fun period ->
      let n = 4 in
      let rounds = 8 * period in
      let faults = Faults.rolling_mute ~n ~victim:(n - 1) ~period ~rounds in
      let corrupt p c = c + (p * 1000) in
      let trace = Runner.run ~corrupt ~faults ~rounds Round_agreement.protocol in
      let windows = Solve.stable_windows trace in
      let measured = Solve.measured_stabilization Round_agreement.spec trace in
      let holds = Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace in
      M.observe (M.histogram m "measured_stabilization") (float_of_int measured);
      Table.add_row table
        [
          "round-agreement (rolling mute)";
          Printf.sprintf "every %d" (2 * period);
          string_of_int (List.length windows);
          string_of_int measured;
          string_of_bool holds;
        ])
    [ 2; 4; 6 ];
  Table.add_separator table;
  (* Compiled consensus under a late reveal. *)
  List.iter
    (fun reveal ->
      let n = 4 and f = 1 in
      let propose p = 50 + p in
      let pi = Omission_consensus.make ~n ~f ~propose in
      let valid d = d >= 50 && d < 50 + n in
      let compiled = Compiler.compile ~n pi in
      let rounds = reveal + 30 in
      let corrupt p (st : _ Compiler.state) =
        if p = n - 1 then { st with Compiler.c = 1_000_000 } else st
      in
      let faults =
        Faults.of_events ~n [ Faults.Mute { pid = n - 1; first = 1; last = reveal - 1 } ]
      in
      let trace = Runner.run ~corrupt ~faults ~rounds compiled in
      let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
      let windows = Solve.stable_windows trace in
      let measured = Solve.measured_stabilization spec trace in
      let holds =
        Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace
      in
      M.observe (M.histogram m "measured_stabilization") (float_of_int measured);
      Table.add_row table
        [
          "compiled consensus";
          string_of_int reveal;
          string_of_int (List.length windows);
          string_of_int measured;
          string_of_bool holds;
        ])
    reveal_rounds;
  Table.print table

(* ------------------------------------------------------------------ *)
(* E8 — ablations of the paper's mechanisms.                            *)
(* ------------------------------------------------------------------ *)

(* E8a: the compiler's suspect filter (§2.4's "insidious" case).
   A faulty process q is deaf forever, so its round variable diverges and
   every message it sends is out-of-date. The adversary delivers q's
   stale state (which carries the globally minimal value) to exactly one
   correct process, and only in the final round of each Π iteration — too
   late for the full-information exchange to relay it to the other
   correct process. With the filter, q's wrong round tags put it in every
   suspect set and its state is ignored symmetrically. Without the
   filter, one correct process decides q's stale minimum and the other
   does not: agreement breaks in iteration after iteration, forever. *)
let e8_compiler m =
  let table =
    Table.create
      ~title:
        "E8a Ablation: the Figure 3 suspect filter (faulty deaf process feeding stale \
         state to one process in each iteration's last round; claim: filter necessary)"
      [ "suspect filter"; "rounds"; "iterations"; "agreeing"; "Σ⁺ ftss holds" ]
  in
  let n = 3 and f = 1 in
  (* Π is *plain* flooding — no internal filter of its own, so the
     compiler's suspect set is its only protection (using the
     suspect-filtered Π here would mask the ablation: its internal
     distrust performs the same job). q = 0 proposes the global minimum;
     p1 never hears it; p2 hears it only in final-iteration rounds
     (k = final_round at rounds ≡ 0 mod final_round from the clean
     start c = 1). *)
  let propose p = 50 + p in
  let pi = Flooding_consensus.make ~f ~propose in
  let valid d = d >= 50 && d < 50 + n in
  let rounds = 60 in
  let faults =
    Faults.of_events ~n
      (Faults.Deaf { pid = 0; first = 1; last = rounds }
      :: List.concat_map
           (fun r ->
             Faults.Drop { src = 0; dst = 1; round = r }
             :: (if r mod pi.Canonical.final_round <> 0 then
                   [ Faults.Drop { src = 0; dst = 2; round = r } ]
                 else []))
           (List.init rounds (fun i -> i + 1)))
  in
  (* q's round variable starts out of step and, being deaf, never
     reconciles. *)
  let corrupt p (st : _ Compiler.state) =
    if p = 0 then { st with Compiler.c = 5 } else st
  in
  List.iter
    (fun suspect_filter ->
      let compiled = Compiler.compile ~suspect_filter ~n pi in
      let trace = Runner.run ~corrupt ~faults ~rounds compiled in
      let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
      let holds =
        Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace
      in
      let completed, agreeing =
        Repeated.count_agreeing_iterations trace ~faulty:(Faults.faulty faults) ~valid
      in
      M.set
        (M.gauge m (Printf.sprintf "e8a_agreeing.filter=%b" suspect_filter))
        (float_of_int agreeing);
      Table.add_row table
        [
          string_of_bool suspect_filter;
          string_of_int rounds;
          string_of_int completed;
          string_of_int agreeing;
          string_of_bool holds;
        ])
    [ true; false ];
  Table.print table

(* E8b: the two superimpositions of the §3 consensus protocol, ablated
   independently, against the two corruption patterns. Retransmission is
   what dissolves the parked deadlock; round agreement is what lets
   processes scattered across (instance, round) positions find each
   other. The paper's protocol needs both. *)
let e8_consensus m =
  let open Ftss_async in
  let propose p i = 100 + (((p * 13) + (i * 7)) mod 50) in
  let table =
    Table.create
      ~title:
        "E8b Ablation: retransmission vs round agreement in §3 consensus (n=5, \
         instances fully decided by all correct processes after GST=300)"
      [ "retransmit"; "round agreement"; "clean"; "parked"; "random scatter" ]
  in
  let n = 5 and trusted = 1 in
  let run ~style ~corruption ~seed =
    let config =
      {
        (Sim.default_config ~n ~seed) with
        Sim.gst = 300;
        horizon = 4000;
        tick_interval = 10;
        delay_before_gst = (1, 60);
        delay_after_gst = (1, 4);
      }
    in
    let noise = match corruption with `Parked -> 0.0 | `None | `Random -> 0.2 in
    let oracle =
      Ewfd.make (Rng.create (seed + 7)) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst
        ~trusted ~noise
    in
    let corrupt =
      match corruption with
      | `None -> None
      | `Random ->
        Some
          (Consensus.corrupt_random (Rng.create (seed + 3)) ~n ~instance_bound:20
             ~round_bound:30 ~value_bound:90)
      | `Parked -> Some (Consensus.corrupt_parked ~round:6)
    in
    let result = Sim.run ?corrupt config (Consensus.process ~n ~style ~propose ~oracle ()) in
    let correct = Sim.correct_set config in
    Consensus.fully_decided_after (Consensus.decisions result) ~correct
      ~from:config.Sim.gst
  in
  List.iter
    (fun style ->
      let cell name corruption =
        let v = run ~style ~corruption ~seed:9 in
        M.set
          (M.gauge m
             (Printf.sprintf "e8b_decided.rt=%b,ra=%b.%s" style.Consensus.retransmit
                style.Consensus.round_agreement name))
          (float_of_int v);
        string_of_int v
      in
      Table.add_row table
        [
          string_of_bool style.Consensus.retransmit;
          string_of_bool style.Consensus.round_agreement;
          cell "clean" `None;
          cell "parked" `Parked;
          cell "random" `Random;
        ])
    Consensus.[ baseline; retransmit_only; round_agreement_only; self_stabilizing ];
  Table.print table

let e8 m =
  e8_compiler m;
  print_newline ();
  e8_consensus m

(* ------------------------------------------------------------------ *)
(* E9 — the oracle-free detector stack (extension).                     *)
(* ------------------------------------------------------------------ *)

(* The paper assumes a ◇W detector is given; E9 discharges the
   assumption inside the model: heartbeats with adaptive timeouts
   implement ◇W, Figure 4 transforms it to ◇S, and the whole stack —
   with deadlines, timeouts and num/state tables all corrupted — still
   converges. *)
let e9 m =
  let open Ftss_async in
  let table =
    Table.create
      ~title:
        "E9 Oracle-free stack: heartbeat ◇W + Figure 4 ◇S, clean vs fully-corrupted \
         detector state (GST=300; convergence in sim units past GST)"
      [ "n"; "crashes"; "corrupted"; "trials"; "converged"; "mean conv - GST"; "p95" ]
  in
  let gst = 300 in
  List.iter
    (fun (n, crash_count) ->
      List.iter
        (fun corrupted ->
          let convs = ref [] and converged = ref 0 in
          let sub_trials = 15 in
          for seed = 1 to sub_trials do
            let crashes = List.init crash_count (fun i -> (n - 1 - i, 100 + (i * 100))) in
            let config =
              {
                (Sim.default_config ~n ~seed) with
                Sim.gst;
                horizon = 3000;
                tick_interval = 10;
                delay_before_gst = (1, 80);
                delay_after_gst = (1, 5);
                crashes;
              }
            in
            let rng = Rng.create (seed + 13) in
            let corrupt =
              if corrupted then
                Some
                  (Detector_stack.corrupt rng ~time_bound:10_000 ~timeout_bound:150
                     ~num_bound:5_000)
              else None
            in
            let result =
              Sim.run ?corrupt config
                (Detector_stack.process ~n ~initial_timeout:30 ~backoff:20)
            in
            M.inc (M.counter m "trials");
            match (Detector_stack.analyze result ~config).Detector_stack.convergence_time with
            | Some t ->
              incr converged;
              M.inc (M.counter m "converged");
              M.observe (M.histogram m "convergence_after_gst") (float_of_int (max 0 (t - gst)));
              convs := float_of_int (max 0 (t - gst)) :: !convs
            | None -> ()
          done;
          Table.add_row table
            [
              string_of_int n;
              string_of_int crash_count;
              string_of_bool corrupted;
              string_of_int sub_trials;
              Printf.sprintf "%d/%d" !converged sub_trials;
              (if !convs = [] then "-" else Printf.sprintf "%.0f" (Stats.mean !convs));
              (if !convs = [] then "-" else Printf.sprintf "%.0f" (Stats.percentile 95.0 !convs));
            ])
        [ false; true ])
    [ (3, 1); (5, 1); (5, 2); (9, 4) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E10 — §3 remark: synchronous but not perfectly synchronized.         *)
(* ------------------------------------------------------------------ *)

let e10 m =
  let open Ftss_async in
  let table =
    Table.create
      ~title:
        "E10 (§3 remark) Round agreement with staggered steps and bounded delays: \
         neighbourhood agreement (spread <= 2 + ceil(delay/round)) from corrupted state"
      [ "n"; "max delay"; "round len"; "bound"; "trials"; "converged"; "max final spread" ]
  in
  List.iter
    (fun (n, max_delay, tick) ->
      let sub_trials = 15 in
      let converged = ref 0 and worst = ref 0 in
      let bound = ref 0 in
      for seed = 1 to sub_trials do
        let config =
          {
            (Sim.default_config ~n ~seed) with
            Sim.gst = 0;
            horizon = 2000;
            tick_interval = tick;
            delay_before_gst = (1, max_delay);
            delay_after_gst = (1, max_delay);
          }
        in
        bound := Drift.spread_bound config;
        let rng = Rng.create (seed + 99) in
        let result =
          Sim.run ~corrupt:(Drift.corrupt rng ~bound:1_000_000) config Drift.process
        in
        let report = Drift.analyze result ~config in
        if report.Drift.converged_from <> None then begin
          incr converged;
          M.inc (M.counter m "converged")
        end;
        M.observe (M.histogram m "final_spread") (float_of_int report.Drift.final_spread);
        worst := max !worst report.Drift.final_spread
      done;
      Table.add_row table
        [
          string_of_int n;
          string_of_int max_delay;
          string_of_int tick;
          string_of_int !bound;
          string_of_int sub_trials;
          Printf.sprintf "%d/%d" !converged sub_trials;
          string_of_int !worst;
        ])
    [ (3, 5, 10); (5, 8, 10); (5, 15, 10); (9, 8, 10); (9, 30, 10) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E11 — ftss_check: exhaustive adversary exploration vs. randomized    *)
(* sampling, with parallel-explorer speedup.                            *)
(* ------------------------------------------------------------------ *)

let e11 m =
  let open Ftss_check in
  let table =
    Table.create
      ~title:
        "E11 (ftss_check) Exhaustive adversary exploration: verdicts, dedup \
         hit-rate, equal-budget random-sampling coverage, domain speedup"
      [
        "property"; "inject"; "n"; "r"; "f"; "cases"; "distinct"; "dedup%"; "viol";
        "rand cov%"; "t x1 (s)"; "t xN (s)"; "speedup";
      ]
  in
  let domains_n = max 2 (Explore.available ()) in
  let row name inject n rounds f =
    match Property.find ~name ~inject with
    | Error msg -> failwith msg
    | Ok prop ->
      let params =
        prop.Property.restrict
          { Schedule_enum.n; rounds; f; intervals = true; drops = true }
      in
      let cases = Schedule_enum.enumerate params in
      let total = Array.length cases in
      let stats1, _ = Explore.run ~domains:1 prop cases in
      let stats_n, _ = Explore.run ~domains:domains_n prop cases in
      (* Equal-budget random sampling: how much of the space do [total]
         independent draws even visit? Coupon-collector says about
         1 - 1/e ~ 63% — the gap is what exhaustiveness buys. *)
      let rng = Rng.create 42 in
      let seen = Hashtbl.create total in
      for _ = 1 to total do
        Hashtbl.replace seen (Rng.int rng total) ()
      done;
      let coverage =
        100. *. float_of_int (Hashtbl.length seen) /. float_of_int total
      in
      let speedup =
        if stats_n.Explore.elapsed > 0. then
          stats1.Explore.elapsed /. stats_n.Explore.elapsed
        else 0.
      in
      M.add (M.counter m "cases") total;
      M.add (M.counter m "states") stats1.Explore.states;
      M.observe (M.histogram m "speedup") speedup;
      (* Single-domain throughput per row, so BENCH_E11.json tracks the
         engine's per-case cost over time. *)
      M.set
        (M.gauge m (Printf.sprintf "runs_per_sec_x1.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        (Explore.runs_per_sec stats1);
      M.set
        (M.gauge m (Printf.sprintf "states_per_sec_x1.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        (Explore.states_per_sec stats1);
      Table.add_row table
        [
          name; inject; string_of_int n; string_of_int rounds; string_of_int f;
          string_of_int total;
          string_of_int stats1.Explore.distinct;
          Printf.sprintf "%.1f" (100. *. Explore.dedup_rate stats1);
          string_of_int (List.length stats1.Explore.violations);
          Printf.sprintf "%.1f" coverage;
          Printf.sprintf "%.2f" stats1.Explore.elapsed;
          Printf.sprintf "%.2f" stats_n.Explore.elapsed;
          Printf.sprintf "%.2fx @ %d" speedup domains_n;
        ]
  in
  row "theorem3" "none" 3 3 1;
  row "theorem3" "none" 4 2 2;
  row "theorem3" "frozen-exchange" 3 3 1;
  row "theorem4" "none" 3 9 1;
  row "theorem4" "no-suspect-filter" 3 9 1;
  row "theorem5" "none" 3 3 1;
  Table.print table;
  (* Symmetry-reduced exploration: the same sweeps with [~canonical:true]
     execute one representative per pid-permutation orbit and scatter the
     verdict. At enumeration-sized spaces the full pass double-checks the
     verdict equivalence; at n=200 the orbit collapse is what makes an
     exhaustive theorem-3 sweep feasible at all (the full pass would be
     hundreds of thousands of 200-process runs, so it is skipped). *)
  let ctable =
    Table.create
      ~title:
        "E11b (ftss_check) Symmetry-reduced exploration: orbit collapse and \
         verdict equivalence under --canonical"
      [
        "property"; "inject"; "n"; "r"; "f"; "cases"; "orbits"; "reduction";
        "viol"; "=full"; "t canon (s)";
      ]
  in
  let crow name inject n rounds f =
    match Property.find ~name ~inject with
    | Error msg -> failwith msg
    | Ok prop ->
      let params =
        prop.Property.restrict
          { Schedule_enum.n; rounds; f; intervals = true; drops = true }
      in
      let cases = Schedule_enum.enumerate params in
      let total = Array.length cases in
      let cstats, _ = Explore.run ~domains:1 ~canonical:true prop cases in
      let equal_to_full =
        if total > 10_000 then "skipped"
        else begin
          let stats, _ = Explore.run ~domains:1 prop cases in
          if stats.Explore.violations = cstats.Explore.violations then "yes"
          else "NO"
        end
      in
      M.set
        (M.gauge m (Printf.sprintf "canonical_orbits.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        (float_of_int cstats.Explore.orbits);
      M.set
        (M.gauge m
           (Printf.sprintf "canonical_runs_per_sec.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        (Explore.runs_per_sec cstats);
      Table.add_row ctable
        [
          name; inject; string_of_int n; string_of_int rounds; string_of_int f;
          string_of_int total;
          string_of_int cstats.Explore.orbits;
          Printf.sprintf "%.1fx" (Explore.symmetry_reduction cstats);
          string_of_int (List.length cstats.Explore.violations);
          equal_to_full;
          Printf.sprintf "%.2f" cstats.Explore.elapsed;
        ]
  in
  crow "theorem3" "none" 3 3 1;
  crow "theorem3" "frozen-exchange" 3 3 1;
  crow "theorem3" "none" 200 2 1;
  Table.print ctable

(* E12 — ftss_fuzz: coverage-guided fuzzing vs. the exhaustive checker.  *)

let e12 m =
  let open Ftss_check in
  let module Mu = Ftss_fuzz.Mutate in
  let module F = Ftss_fuzz.Fuzz in
  let table =
    Table.create
      ~title:
        "E12 (ftss_fuzz) Coverage-guided adversary fuzzing: throughput, corpus \
         growth, the seed-phase differential oracle against the exhaustive \
         checker, and beyond-catalogue violations found by mutation"
      [
        "property"; "inject"; "n"; "r"; "f"; "budget"; "execs/s"; "corpus";
        "cov pts"; "exh viol"; "seed viol"; "oracle"; "mut viol"; "min size";
      ]
  in
  let row name inject n rounds f ~extra =
    match Property.find ~name ~inject with
    | Error msg -> failwith msg
    | Ok prop ->
      let sp =
        prop.Property.restrict
          { Schedule_enum.n; rounds; f; intervals = true; drops = true }
      in
      let cases = Schedule_enum.enumerate sp in
      let stats_exh, results = Explore.run ~domains:1 prop cases in
      let exh_fps =
        List.sort_uniq String.compare
          (List.map (fun i -> results.(i).Explore.fingerprint) stats_exh.Explore.violations)
      in
      let budget = Array.length cases + extra in
      let config =
        {
          F.seed = 1;
          budget = F.Cases budget;
          domains = 0;
          params = { Mu.n; rounds; f; allow_drops = true };
          corpus_dir = None;
        }
      in
      let stats =
        match F.run config prop with Ok s -> s | Error msg -> failwith msg
      in
      let seed_v, mut_v =
        List.partition (fun v -> v.F.v_seed) stats.F.violations
      in
      let seed_fps =
        List.sort_uniq String.compare (List.map (fun v -> v.F.v_fingerprint) seed_v)
      in
      (* The differential oracle: the seed phase alone must rediscover
         exactly the exhaustive violation set. *)
      let oracle = seed_fps = exh_fps in
      let min_size =
        match stats.F.violations with
        | [] -> "-"
        | vs ->
          string_of_int
            (List.fold_left (fun acc v -> min acc (Mu.size v.F.v_shrunk)) max_int vs)
      in
      M.add (M.counter m "execs") stats.F.execs;
      M.add (M.counter m "mutation_violations") (List.length mut_v);
      M.set
        (M.gauge m (Printf.sprintf "oracle_agreement.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        (if oracle then 1. else 0.);
      M.set
        (M.gauge m (Printf.sprintf "execs_per_sec.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        stats.F.execs_per_sec;
      M.set
        (M.gauge m (Printf.sprintf "coverage_points.%s.%s.n%d.r%d.f%d" name inject n rounds f))
        (float_of_int stats.F.coverage_points);
      Table.add_row table
        [
          name; inject; string_of_int n; string_of_int rounds; string_of_int f;
          string_of_int budget;
          Printf.sprintf "%.0f" stats.F.execs_per_sec;
          string_of_int stats.F.corpus_size;
          string_of_int stats.F.coverage_points;
          string_of_int (List.length exh_fps);
          string_of_int (List.length seed_fps);
          (if oracle then "agree" else "DISAGREE");
          string_of_int (List.length mut_v);
          min_size;
        ]
  in
  row "theorem3" "none" 3 3 1 ~extra:1500;
  row "theorem3" "frozen-exchange" 3 3 1 ~extra:1500;
  row "theorem4" "none" 3 4 1 ~extra:1500;
  (* E11's negative result: no single-behaviour catalogue case violates
     the unfiltered suspect rule. The fuzzer's mutation phase escapes
     the catalogue and finds the E8a composite adversary. *)
  row "theorem4" "no-suspect-filter" 3 6 1 ~extra:4000;
  row "theorem5" "none" 3 3 1 ~extra:300;
  Table.print table

(* ------------------------------------------------------------------ *)
(* E14 — the service tower: self-stabilizing total-order broadcast +   *)
(* replicated KV under a million-session open workload with burst      *)
(* arrivals, mid-run corruption storms, omission windows and crashes.  *)
(* ------------------------------------------------------------------ *)

let e14 m =
  let module W = Ftss_service.Workload in
  let module T = Ftss_service.Tob in
  let module S = Ftss_service.Service in
  let table =
    Table.create
      ~title:
        "E14 (service tower) TOB + replicated KV, n=5: end-to-end commit latency, \
         throughput, convergence and recovery under corruption storms / omission / \
         crashes"
      [
        "row"; "style"; "ops"; "unique committed"; "slots"; "converged"; "agree";
        "p50"; "p99"; "ops/s"; "recov"; "heal (max ticks)";
      ]
  in
  let n = 5 in
  let headline_report = ref None in
  let row ~label ~style ~ops ~sessions ~window ~batch_max ~faults ~headline () =
    let wl =
      W.create ~n
        { W.default_spec with W.ops; sessions; window; seed = 101 }
    in
    let params =
      { (S.default_params ~n ~seed:202) with S.style; batch_max; faults }
    in
    let r = S.run ~wl params in
    if headline then headline_report := Some r;
    let lat f = match r.S.latency with Some l -> f l | None -> Float.nan in
    let heal =
      List.fold_left
        (fun acc (_, _, h) -> match h with Some h -> max acc h | None -> acc)
        0 r.S.storm_recovery
    in
    (* Gauges: throughput is the tracked (higher-better) headline number;
       latency, recovery and integrity numbers ride along informationally. *)
    M.set (M.gauge m (Printf.sprintf "committed_ops_per_sec.%s.n%d" label n)) r.S.throughput;
    M.set (M.gauge m (Printf.sprintf "latency_ticks_p50.%s" label)) (lat (fun l -> l.S.p50));
    M.set (M.gauge m (Printf.sprintf "latency_ticks_p99.%s" label)) (lat (fun l -> l.S.p99));
    M.set
      (M.gauge m (Printf.sprintf "unique_committed.%s" label))
      (float_of_int r.S.unique_ops);
    M.set
      (M.gauge m (Printf.sprintf "converged.%s" label))
      (if r.S.converged then 1.0 else 0.0);
    M.set
      (M.gauge m (Printf.sprintf "recovery_heal_ticks.%s" label))
      (float_of_int heal);
    M.inc (M.counter m "rows");
    Table.add_row table
      [
        label;
        (if style.T.recover then "self-stab" else "baseline");
        string_of_int ops;
        string_of_int r.S.unique_ops;
        string_of_int r.S.committed_slots;
        (if r.S.converged then "yes" else "NO");
        Printf.sprintf "%d/%d" r.S.slots_agreeing r.S.slots_checked;
        Printf.sprintf "%.0f" (lat (fun l -> l.S.p50));
        Printf.sprintf "%.0f" (lat (fun l -> l.S.p99));
        Printf.sprintf "%.0f" r.S.throughput;
        string_of_int r.S.recoveries;
        (if heal > 0 then string_of_int heal else "-");
      ]
  in
  (* The headline: one bench invocation pushing >= 1M client operations
     end-to-end through consensus -> TOB -> KV, with two mid-run
     corruption storms and an omission window, measured for latency,
     throughput and post-storm recovery. *)
  row ~label:"headline" ~style:T.self_stabilizing ~ops:1_000_000 ~sessions:1_000_000
    ~window:20_000 ~batch_max:1_024
    ~faults:
      {
        S.storms = [ (8_000, 2); (14_000, 2) ];
        omission = [ (5_000, 5_600, 0.25) ];
        crashes = [];
      }
    ~headline:true ();
  (* Recovery time vs. corruption-storm size, at a lighter op count. *)
  List.iter
    (fun victims ->
      row
        ~label:(Printf.sprintf "storm_victims%d" victims)
        ~style:T.self_stabilizing ~ops:100_000 ~sessions:1_000_000 ~window:6_000
        ~batch_max:1_024
        ~faults:{ S.no_faults with S.storms = [ (3_000, victims) ] }
        ~headline:false ())
    [ 1; 2 ];
  (* Fault-free reference, and the ablation: the baseline style (no
     retransmission, no recovery machinery) hit by the same storm. *)
  row ~label:"fault_free" ~style:T.self_stabilizing ~ops:100_000 ~sessions:1_000_000
    ~window:6_000 ~batch_max:1_024 ~faults:S.no_faults ~headline:false ();
  row ~label:"baseline_storm" ~style:T.baseline ~ops:100_000 ~sessions:1_000_000
    ~window:6_000 ~batch_max:1_024
    ~faults:{ S.no_faults with S.storms = [ (3_000, 2) ] }
    ~headline:false ();
  (* Crash + storm + omission combined, as in the convergence property
     test: live-origin ops all commit, live replicas converge. *)
  row ~label:"crash_storm" ~style:T.self_stabilizing ~ops:100_000 ~sessions:1_000_000
    ~window:6_000 ~batch_max:1_024
    ~faults:
      {
        S.storms = [ (3_000, 2) ];
        omission = [ (2_000, 2_400, 0.25) ];
        crashes = [ (4, 3_500) ];
      }
    ~headline:false ();
  Table.print table;
  match !headline_report with
  | Some r -> Format.printf "@.%a@." S.pp_report r
  | None -> ()

(* ------------------------------------------------------------------ *)
(* E15 — monitor-plane overhead: the E14 storm scenario with every     *)
(* streaming SLO monitor armed (flight-recorder ring included) vs. no  *)
(* observability at all. Budget: the armed tower stays within 5%.      *)
(* ------------------------------------------------------------------ *)

let e15 m =
  let module W = Ftss_service.Workload in
  let module S = Ftss_service.Service in
  let module Mon = Ftss_monitor.Monitor in
  let table =
    Table.create
      ~title:
        "E15 (monitor overhead) service tower with streaming SLO monitors + flight \
         recorder armed vs. monitors off (budget: <= 5% throughput cost)"
      [ "row"; "ops/s"; "vs off"; "alarms"; "ring seen"; "wall s" ]
  in
  let n = 5 in
  let wl =
    W.create ~n
      { W.default_spec with W.ops = 300_000; sessions = 1_000_000; window = 10_000; seed = 101 }
  in
  let params =
    {
      (S.default_params ~n ~seed:202) with
      S.batch_max = 1_024;
      faults =
        {
          S.storms = [ (4_000, 2); (7_000, 2) ];
          omission = [ (2_500, 2_800, 0.25) ];
          crashes = [];
        };
    }
  in
  (* Loose budgets: every monitor armed and evaluating, none firing —
     the steady-state production configuration. *)
  let loose =
    {
      Mon.stab = Some 1_000_000;
      heal = Some 1_000_000;
      p99 = Some 1e9;
      drop_rate = Some 1.0;
      churn = Some 1e9;
    }
  in
  (* Tight budgets: the same run with alarms actually firing (and the
     damping logic exercised) — alarm cost is not on the happy path. *)
  let tight =
    {
      Mon.stab = Some 5;
      heal = Some 2;
      p99 = Some 5.;
      drop_rate = Some 0.2;
      churn = Some 0.001;
    }
  in
  let bare () = (S.run ~wl params, None) in
  let armed budgets () =
    let obs = Ftss_obs.Obs.create ~record:false ~threadsafe:false () in
    let mon = Mon.create ~n budgets in
    Mon.attach mon obs;
    let r = S.run ~obs ~wl params in
    Mon.finalize mon ~end_time:r.S.end_time;
    (r, Some mon)
  in
  (* Interleaved trials, mean of the top-3 throughputs per config:
     wall-clock noise is one-sided (interference only ever slows a trial
     down), so the fast tail estimates each config's true cost floor —
     averaging the top 3 keeps one freak-fast trial from skewing the
     ratio. Running configs back to back in rotating order (instead of
     one cold config first) keeps GC/cache state comparable. *)
  let configs =
    [
      ("monitors off", "monitors_off", bare);
      ("armed (loose budgets)", "armed", armed loose);
      ("armed (tight, alarms firing)", "armed_tight", armed tight);
    ]
  in
  let results = Hashtbl.create 4 in
  List.iter (fun (label, _, _) -> Hashtbl.replace results label []) configs;
  let nconf = List.length configs in
  for round = 0 to 8 do
    (* Rotate the starting position each round so no config always runs
       in the same (coldest or warmest) slot of the interleave. *)
    for i = 0 to nconf - 1 do
      let label, _, f = List.nth configs ((round + i) mod nconf) in
      Hashtbl.replace results label (f () :: Hashtbl.find results label)
    done
  done;
  let best label =
    let rs =
      List.sort
        (fun ((a : S.report), _) ((b : S.report), _) ->
          compare b.S.throughput a.S.throughput)
        (Hashtbl.find results label)
    in
    let top3 = [ List.nth rs 0; List.nth rs 1; List.nth rs 2 ] in
    let tp =
      List.fold_left (fun acc ((r : S.report), _) -> acc +. r.S.throughput) 0. top3
      /. 3.
    in
    (tp, List.hd rs)
  in
  let off_tp = fst (best "monitors off") in
  let row (label, gauge, _) =
    let tp, (r, mon) = best label in
    let vs = if off_tp > 0. then (tp -. off_tp) /. off_tp *. 100. else 0. in
    M.set (M.gauge m (Printf.sprintf "committed_ops_per_sec.%s" gauge)) tp;
    (match mon with
    | Some mon ->
      M.set (M.gauge m (Printf.sprintf "overhead_pct.%s" gauge)) (-.vs);
      M.set
        (M.gauge m (Printf.sprintf "alarms.%s" gauge))
        (float_of_int (Mon.alarm_count mon))
    | None -> ());
    M.inc (M.counter m "rows");
    Table.add_row table
      [
        label;
        Printf.sprintf "%.0f" tp;
        (match mon with None -> "-" | Some _ -> Printf.sprintf "%+.1f%%" vs);
        (match mon with
        | None -> "-"
        | Some mon -> string_of_int (Mon.alarm_count mon));
        (match mon with
        | None -> "-"
        | Some mon -> string_of_int (Mon.ring_seen mon));
        Printf.sprintf "%.2f" r.S.wall_seconds;
      ]
  in
  List.iter row configs;
  Table.print table;
  (* The deterministic number underneath the noisy wall-clock ratio: the
     armed subscriber's marginal cost per event, measured over a tight
     20M-event loop. At the tower's event rate (~0.5M events/s) every
     15ns here is ~0.75% of throughput. *)
  let mon = Mon.create ~n Mon.no_budgets in
  let sub = Mon.subscriber mon in
  let module E = Ftss_obs.Event in
  let evs =
    [|
      E.make ~time:100 (E.Send { src = 0; dst = Some 1 });
      E.make ~time:101 (E.Deliver { src = 0; dst = 1 });
      E.make ~time:101 (E.Send { src = 1; dst = Some 2 });
      E.make ~time:102 (E.Deliver { src = 1; dst = 2 });
      E.make ~time:102 (E.Submit { pid = 0; ops = 3 });
      E.make ~time:103 (E.Commit { pid = 0; slot = 1; ops = 3 });
    |]
  in
  let iters = 20_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    sub (Array.unsafe_get evs (i land 5))
  done;
  let ns = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9 in
  M.set (M.gauge m "subscriber_ns_per_call.armed") ns;
  Format.printf "monitor subscriber: %.1f ns/event (%d events through every monitor + ring)@."
    ns iters

(* ------------------------------------------------------------------ *)
(* E16 — simulator engine throughput: calendar queue vs. the seed      *)
(* binary heap on a hold-model workload, end-to-end simulation event   *)
(* rate, and sharded-service scaling with the digest-equality check.   *)
(* ------------------------------------------------------------------ *)

let e16 m =
  let module Q = Ftss_async.Event_queue in
  let module Sim = Ftss_async.Sim in
  let module W = Ftss_service.Workload in
  let module S = Ftss_service.Service in
  let table =
    Table.create
      ~title:
        "E16 (engine throughput) calendar queue vs. seed binary heap (hold model, \
         pop-one/push-one at standing population n*1000), end-to-end sim rate, and \
         sharded-service domain scaling (gate: >= 10x on the n=16 queue row; \
         sharded digests must be domain-count independent)"
      [ "row"; "events/s"; "vs heap"; "note" ]
  in
  (* Hold model: the standing population stays constant while events
     cycle pop-one/push-one with the simulator's post-GST-like delay
     profile. Wall noise is one-sided, so take the best of 3 trials. *)
  let pops = 1_000_000 in
  let best_of_3 f =
    let best = ref 0.0 in
    for _ = 1 to 3 do
      let r = f () in
      if r > !best then best := r
    done;
    !best
  in
  let hold_heap ~population () =
    let rng = Rng.create 42 in
    let q = Q.Reference.create () in
    for _ = 1 to population do
      Q.Reference.push q ~time:(1 + Rng.int rng 120) ()
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to pops do
      match Q.Reference.pop q with
      | Some (t, ()) -> Q.Reference.push q ~time:(t + 1 + Rng.int rng 120) ()
      | None -> assert false
    done;
    float_of_int pops /. (Unix.gettimeofday () -. t0)
  in
  let hold_calendar ~population () =
    let rng = Rng.create 42 in
    let q = Q.create ~initial_capacity:population () in
    for _ = 1 to population do
      Q.push_tagged q ~time:(1 + Rng.int rng 120) ~tag:0 ()
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to pops do
      if not (Q.pop_step q) then assert false;
      Q.push_tagged q ~time:(Q.out_time q + 1 + Rng.int rng 120) ~tag:0 ()
    done;
    float_of_int pops /. (Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun n ->
      let population = n * 1000 in
      let heap = best_of_3 (hold_heap ~population) in
      let cal = best_of_3 (hold_calendar ~population) in
      let speedup = cal /. heap in
      M.set (M.gauge m (Printf.sprintf "queue_events_per_sec.heap.n%d" n)) heap;
      M.set (M.gauge m (Printf.sprintf "queue_events_per_sec.calendar.n%d" n)) cal;
      M.set (M.gauge m (Printf.sprintf "queue_speedup.n%d" n)) speedup;
      (* The headline gate is the machine-independent ratio: a wall-clock
         regression moves both rows, a queue regression only one. *)
      if n = 16 && speedup < 10.0 then
        failwith
          (Printf.sprintf
             "E16: calendar queue speedup at n=16 is %.1fx, below the 10x gate"
             speedup);
      M.inc (M.counter m "rows");
      M.inc (M.counter m "rows");
      Table.add_row table
        [
          Printf.sprintf "heap hold n=%d (pop %dk)" n (population / 1000);
          Printf.sprintf "%.2e" heap; "1.0x"; "seed binary heap";
        ];
      Table.add_row table
        [
          Printf.sprintf "calendar hold n=%d" n;
          Printf.sprintf "%.2e" cal;
          Printf.sprintf "%.1fx" speedup;
          (if n = 16 && speedup < 10.0 then "GATE FAIL (< 10x)" else "calendar queue");
        ])
    [ 5; 16; 61 ];
  (* End-to-end: a full async consensus simulation, measured as delivered
     messages + ticks per wall second — the engine rate the queue speedup
     actually buys once protocol work is included. *)
  let sim_rate ~n =
    let propose p i = 100 + (((p * 13) + (i * 7)) mod 50) in
    let config =
      {
        (Sim.default_config ~n ~seed:3) with
        Sim.gst = 50;
        horizon = 3_000;
        tick_interval = 10;
        delay_before_gst = (1, 20);
        delay_after_gst = (1, 4);
      }
    in
    let oracle =
      Ftss_async.Ewfd.make (Rng.create 5) ~n ~crashed:(fun _ -> None)
        ~gst:config.Sim.gst ~trusted:0 ~noise:0.1
    in
    best_of_3 (fun () ->
        let t0 = Unix.gettimeofday () in
        let r =
          Sim.run config
            (Ftss_async.Consensus.process ~n
               ~style:Ftss_async.Consensus.self_stabilizing ~propose ~oracle ())
        in
        float_of_int r.Sim.delivered /. (Unix.gettimeofday () -. t0))
  in
  List.iter
    (fun n ->
      let rate = sim_rate ~n in
      M.set (M.gauge m (Printf.sprintf "sim_events_per_sec.n%d" n)) rate;
      M.inc (M.counter m "rows");
      Table.add_row table
        [
          Printf.sprintf "end-to-end consensus n=%d" n;
          Printf.sprintf "%.2e" rate; "-"; "delivered msgs/s, full protocol";
        ])
    [ 5; 16 ];
  (* Sharded service tower: same partition executed on 1, 2 and 4
     domains. The digests must match exactly — sharding is a fixed
     logical partition, domains pure executor parallelism. *)
  let spec =
    { W.default_spec with W.ops = 60_000; sessions = 1_000_000; window = 4_000; seed = 101 }
  in
  let params = { (S.default_params ~n:5 ~seed:202) with S.batch_max = 1_024 } in
  let shard_runs =
    List.map
      (fun domains ->
        let r = S.run_sharded ~domains ~shards:4 ~spec params in
        (domains, r))
      [ 1; 2; 4 ]
  in
  let d1_digest =
    match shard_runs with (_, r) :: _ -> S.report_digest r | [] -> 0
  in
  let d1_wall =
    match shard_runs with (_, r) :: _ -> r.S.wall_seconds | [] -> 0.0
  in
  List.iter
    (fun (domains, (r : S.report)) ->
      let same = S.report_digest r = d1_digest in
      if not same then
        failwith
          (Printf.sprintf
             "E16: sharded digest diverged at domains=%d (%d vs %d)" domains
             (S.report_digest r) d1_digest);
      M.set
        (M.gauge m (Printf.sprintf "sharded_ops_per_sec.d%d" domains))
        r.S.throughput;
      M.inc (M.counter m "rows");
      Table.add_row table
        [
          Printf.sprintf "service 4 shards, %d domain%s" domains
            (if domains = 1 then "" else "s");
          Printf.sprintf "%.2e" r.S.throughput;
          Printf.sprintf "%.2fx" (d1_wall /. r.S.wall_seconds);
          Printf.sprintf "digest=%d (matches d1: %b)" (S.report_digest r) same;
        ])
    shard_runs;
  Table.print table

(* ------------------------------------------------------------------ *)
(* E17 — span-profiler overhead: the E14 headline workload bare vs. a  *)
(* disarmed profiler (lane wired, enabled=false) vs. armed. Hard       *)
(* gates: disarmed <= 1%, armed <= 5%, identical report digests, and   *)
(* per-lane self-times summing to <= wall. The armed run's per-phase   *)
(* self-time gauges land in the envelope so bench-diff can gate        *)
(* per-phase regressions, plus span-op microbenches.                   *)
(* ------------------------------------------------------------------ *)

let e17 m =
  let module W = Ftss_service.Workload in
  let module S = Ftss_service.Service in
  let module P = Ftss_profile.Profile in
  let table =
    Table.create
      ~title:
        "E17 (profiler overhead) E14 headline workload: bare vs. disarmed vs. armed \
         span profiler (budget: disarmed <= 1%, armed <= 5%)"
      [ "row"; "ops/s"; "vs bare"; "spans"; "profiled ms"; "wall s" ]
  in
  let n = 5 in
  (* The E14 headline scenario verbatim: >= 1M ops through the tower
     with two corruption storms and an omission window. *)
  let wl =
    W.create ~n
      {
        W.default_spec with
        W.ops = 1_000_000;
        sessions = 1_000_000;
        window = 20_000;
        seed = 101;
      }
  in
  let params =
    {
      (S.default_params ~n ~seed:202) with
      S.batch_max = 1_024;
      faults =
        {
          S.storms = [ (8_000, 2); (14_000, 2) ];
          omission = [ (5_000, 5_600, 0.25) ];
          crashes = [];
        };
    }
  in
  let bare () = (S.run ~wl params, None) in
  let profiled ~enabled () =
    let prof = P.create ~enabled () in
    let r = S.run ~profile:(P.lane prof "svc.tower") ~wl params in
    (r, Some prof)
  in
  (* Interleaved trials in rotating order, mean of the top-3 throughputs
     per config — the same one-sided-noise estimator as E15. *)
  let configs =
    [
      ("bare (no ?profile)", "profiler_bare", bare);
      ("disarmed (enabled=false)", "profiler_off", profiled ~enabled:false);
      ("armed", "profiler_armed", profiled ~enabled:true);
    ]
  in
  let rounds = 5 in
  let results = Hashtbl.create 4 in
  List.iter
    (fun (label, _, _) -> Hashtbl.replace results label (Array.make rounds None))
    configs;
  let nconf = List.length configs in
  for round = 0 to rounds - 1 do
    for i = 0 to nconf - 1 do
      let label, _, f = List.nth configs ((round + i) mod nconf) in
      (* Armed trials retire ~60 MB of span buffers; compacting before
         every trial stops one config's heap shape from taxing the next. *)
      Gc.compact ();
      (Hashtbl.find results label).(round) <- Some (f ())
    done
  done;
  let trials label =
    Array.map
      (function Some t -> t | None -> assert false)
      (Hashtbl.find results label)
  in
  let bare_label = "bare (no ?profile)" in
  let best label =
    let rs =
      List.sort
        (fun ((a : S.report), _) ((b : S.report), _) ->
          compare b.S.throughput a.S.throughput)
        (Array.to_list (trials label))
    in
    let top3 = [ List.nth rs 0; List.nth rs 1; List.nth rs 2 ] in
    let tp =
      List.fold_left (fun acc ((r : S.report), _) -> acc +. r.S.throughput) 0. top3
      /. 3.
    in
    (tp, List.hd rs)
  in
  (* Single-trial wall-clock noise here runs whole percents — far above
     the 1% budget under test. Two end-to-end estimators are reported as
     diagnostics (the {e floor} comparison of each config's best trial
     against the bare best, and the median of per-round paired
     slowdowns); the budget gates themselves use the derived
     instrumentation cost computed below, which wall-clock noise cannot
     touch. *)
  let floor_tp label =
    Array.fold_left
      (fun acc ((r : S.report), _) -> max acc r.S.throughput)
      0. (trials label)
  in
  let floor_overhead label =
    let b = floor_tp bare_label in
    (b -. floor_tp label) /. b *. 100.
  in
  let paired_overhead label =
    let b = trials bare_label and c = trials label in
    let ds =
      Array.init rounds (fun r ->
          let (rb : S.report), _ = b.(r) and (rc : S.report), _ = c.(r) in
          (rb.S.throughput -. rc.S.throughput) /. rb.S.throughput *. 100.)
    in
    Array.sort compare ds;
    ds.(rounds / 2)
  in
  let bare_digest =
    match (trials bare_label).(0) with r, _ -> S.report_digest r
  in
  let overheads = Hashtbl.create 4 in
  let row (label, gauge, _) =
    let tp, (r, prof) = best label in
    let vs = if label = bare_label then 0. else floor_overhead label in
    (* Profiling must not perturb the simulation: every config commits
       the identical deterministic report. *)
    if S.report_digest r <> bare_digest then
      failwith
        (Printf.sprintf "E17: %s changed the report digest (%d vs %d)" label
           (S.report_digest r) bare_digest);
    M.set (M.gauge m (Printf.sprintf "committed_ops_per_sec.%s" gauge)) tp;
    (match prof with
    | Some _ ->
      Hashtbl.replace overheads gauge vs;
      M.set (M.gauge m (Printf.sprintf "overhead_pct.%s" gauge)) vs
    | None -> ());
    M.inc (M.counter m "rows");
    let profiled_ms, spans =
      match prof with
      | Some p when P.enabled p ->
        let self =
          List.fold_left (fun acc t -> acc + t.P.pt_self_ns) 0 (P.totals p)
        in
        ( Printf.sprintf "%.1f" (float_of_int self /. 1e6),
          string_of_int
            (List.fold_left (fun acc t -> acc + t.P.pt_calls) 0 (P.totals p)) )
      | _ -> ("-", "-")
    in
    Table.add_row table
      [
        label;
        Printf.sprintf "%.0f" tp;
        (match prof with None -> "-" | Some _ -> Printf.sprintf "%+.1f%%" (-.vs));
        spans;
        profiled_ms;
        Printf.sprintf "%.2f" r.S.wall_seconds;
      ];
    prof
  in
  let profs = List.map row configs in
  Table.print table;
  (* The armed run with the best throughput supplies the per-phase
     gauges ([profile_self_ms.<phase>] and friends) tracked by
     bench-diff, and must satisfy the self <= wall invariant per lane. *)
  let armed_prof =
    match List.filter_map Fun.id profs with
    | [ _; armed_prof ] -> armed_prof
    | _ -> assert false
  in
  (match P.check armed_prof with
  | [] -> ()
  | (lane, self, wall) :: _ ->
    failwith
      (Printf.sprintf "E17: lane %s self-time %d ns exceeds wall %d ns" lane
         self wall));
  List.iter (fun (name, v) -> M.set (M.gauge m name) v) (P.gauges armed_prof);
  (* The deterministic numbers underneath the wall-clock ratios: the
     cost of one chained lap and one enter/leave pair, armed and
     disarmed, over a tight loop. *)
  let iters = 5_000_000 in
  (* Best of three repetitions: tight-loop floors are stable to a few
     percent where single repetitions jitter well past bench-diff's
     regression threshold. *)
  let measure f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
    in
    min (once ()) (min (once ()) (once ()))
  in
  let micro ~enabled suffix =
    let prof = P.create ~enabled () in
    let lane = P.lane prof "bench.micro" in
    let lap_ns =
      measure (fun () ->
          let tick = ref (P.now_ns ()) in
          for _ = 1 to iters do
            tick := P.lap lane P.Phase.sim_pop ~since:!tick
          done)
    in
    let pair_ns =
      measure (fun () ->
          for _ = 1 to iters do
            P.enter lane P.Phase.svc_slot;
            ignore (P.leave lane)
          done)
    in
    M.set (M.gauge m (Printf.sprintf "lap_ns_per_call.%s" suffix)) lap_ns;
    M.set (M.gauge m (Printf.sprintf "span_pair_ns_per_call.%s" suffix)) pair_ns;
    Format.printf "span ops (%s): lap %.1f ns, enter+leave %.1f ns@." suffix
      lap_ns pair_ns;
    (lap_ns, pair_ns)
  in
  let lap_armed, pair_armed = micro ~enabled:true "armed" in
  let lap_off, pair_off = micro ~enabled:false "disarmed" in
  (* The budget gates. End-to-end trial throughput on a shared machine
     swings whole percents between adjacent trials (the floor and
     paired-median figures above routinely disagree on sign), so a 1%
     budget cannot be resolved by comparing wall clocks. The gated
     figure is instead {e derived}: the measured per-operation span cost
     times the exact number of span operations the armed headline run
     performed, over the bare run's CPU time. It overestimates the true
     cost (in the simulator loop adjacent spans chain clock reads; the
     microbench pair pays both), so passing it implies the budget
     held. *)
  let lap_calls =
    List.fold_left
      (fun acc t ->
        if t.P.pt_phase = P.Phase.sim_pop || t.P.pt_phase = P.Phase.chunk_claim
        then acc + t.P.pt_calls
        else acc)
      0 (P.totals armed_prof)
  in
  let pair_calls =
    List.fold_left (fun acc t -> acc + t.P.pt_calls) 0 (P.totals armed_prof)
    - lap_calls
  in
  let bare_wall_ns =
    match best bare_label with _, ((r : S.report), _) -> r.S.wall_seconds *. 1e9
  in
  let derived ~lap_ns ~pair_ns =
    ((lap_ns *. float_of_int lap_calls) +. (pair_ns *. float_of_int pair_calls))
    /. bare_wall_ns *. 100.
  in
  let off_overhead = derived ~lap_ns:lap_off ~pair_ns:pair_off in
  let armed_overhead = derived ~lap_ns:lap_armed ~pair_ns:pair_armed in
  M.set (M.gauge m "overhead_pct.derived_off") off_overhead;
  M.set (M.gauge m "overhead_pct.derived_armed") armed_overhead;
  Format.printf
    "profiler overhead, derived from %d lap + %d pair ops: disarmed %.3f%%, \
     armed %.2f%% (gates: 1%% / 5%%)@."
    lap_calls pair_calls off_overhead armed_overhead;
  Format.printf
    "end-to-end (noisy): floor %+.2f%% / %+.2f%%, paired medians %+.2f%% / \
     %+.2f%%@."
    (Hashtbl.find overheads "profiler_off")
    (Hashtbl.find overheads "profiler_armed")
    (paired_overhead "disarmed (enabled=false)")
    (paired_overhead "armed");
  if off_overhead > 1.0 then
    failwith
      (Printf.sprintf "E17: disarmed profiler costs %.3f%% (> 1%% budget)"
         off_overhead);
  if armed_overhead > 5.0 then
    failwith
      (Printf.sprintf "E17: armed profiler costs %.2f%% (> 5%% budget)"
         armed_overhead)

let all =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E14", e14);
    ("E15", e15); ("E16", e16); ("E17", e17);
  ]
