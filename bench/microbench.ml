(* M1 — bechamel microbenchmarks: the per-round / per-event costs of each
   building block, so the simulator's capacity is documented. *)

open Bechamel
open Toolkit
open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols

let round_agreement_round ~n =
  let faults = Faults.none n in
  Test.make
    ~name:(Printf.sprintf "round-agreement round (n=%d)" n)
    (Staged.stage (fun () ->
         ignore (Runner.run ~faults ~rounds:1 Round_agreement.protocol)))

let compiled_round ~n =
  let propose p = 50 + p in
  let pi = Omission_consensus.make ~n ~f:1 ~propose in
  let compiled = Compiler.compile ~n pi in
  let faults = Faults.none n in
  Test.make
    ~name:(Printf.sprintf "compiled consensus round (n=%d)" n)
    (Staged.stage (fun () -> ignore (Runner.run ~faults ~rounds:1 compiled)))

let coterie_analysis ~n ~rounds =
  let faults = Faults.none n in
  let trace = Runner.run ~faults ~rounds Round_agreement.protocol in
  Test.make
    ~name:(Printf.sprintf "coterie analysis (n=%d, %d rounds)" n rounds)
    (Staged.stage (fun () -> ignore (Ftss_history.Causality.analyze trace)))

let esfd_tick ~n =
  let open Ftss_async in
  let t = Esfd.create ~n in
  Test.make
    ~name:(Printf.sprintf "esfd tick+merge (n=%d)" n)
    (Staged.stage (fun () ->
         let t', msg = Esfd.tick t ~self:0 ~detect:(fun s -> s = n - 1) in
         ignore (Esfd.receive t' msg)))

let async_consensus_run ~n =
  let open Ftss_async in
  let propose p i = 100 + (((p * 13) + (i * 7)) mod 50) in
  let config =
    {
      (Sim.default_config ~n ~seed:3) with
      Sim.gst = 50;
      horizon = 500;
      tick_interval = 10;
      delay_before_gst = (1, 20);
      delay_after_gst = (1, 4);
    }
  in
  let oracle =
    Ewfd.make (Rng.create 5) ~n ~crashed:(fun _ -> None) ~gst:config.Sim.gst ~trusted:0
      ~noise:0.1
  in
  Test.make
    ~name:(Printf.sprintf "async consensus 500 time units (n=%d)" n)
    (Staged.stage (fun () ->
         ignore
           (Sim.run config
              (Consensus.process ~n ~style:Consensus.self_stabilizing ~propose ~oracle ()))))

(* Repeated consensus: the same k instances driven through one shared
   simulator heap vs. a heap rebuilt per instance. The difference between
   the two rows is the per-instance price of rebuilding (config, channels,
   event queue, detector oracle) that the service tower avoids. *)
let repeated_propose p i = 100 + (((p * 13) + (i * 7)) mod 50)

let repeated_shared_heap ~n ~instances =
  Test.make
    ~name:(Printf.sprintf "repeated shared-heap x%d (n=%d)" instances n)
    (Staged.stage (fun () ->
         ignore
           (Repeated.run_async_shared ~n ~seed:3
              ~style:Ftss_async.Consensus.self_stabilizing
              ~propose:repeated_propose ~instances ~horizon_per_instance:150 ())))

let repeated_rebuilt_heap ~n ~instances =
  Test.make
    ~name:(Printf.sprintf "repeated rebuilt-heap x%d (n=%d)" instances n)
    (Staged.stage (fun () ->
         ignore
           (Repeated.run_async_rebuilt ~n ~seed:3
              ~style:Ftss_async.Consensus.self_stabilizing
              ~propose:repeated_propose ~instances ~horizon_per_instance:150 ())))

(* The rebuilt driver again, but clearing and reusing one queue arena
   across instances: the gap to the rebuilt row is the queue's share of
   the rebuild price. *)
let repeated_pooled_queue ~n ~instances =
  Test.make
    ~name:(Printf.sprintf "repeated pooled-queue x%d (n=%d)" instances n)
    (Staged.stage (fun () ->
         ignore
           (Repeated.run_async_pooled ~n ~seed:3
              ~style:Ftss_async.Consensus.self_stabilizing
              ~propose:repeated_propose ~instances ~horizon_per_instance:150 ())))

(* The queue hot path in isolation: one pop-one/push-one cycle at a
   standing population of 4096, calendar vs. the seed binary heap. *)
let queue_cycle_calendar =
  let open Ftss_async in
  let rng = Rng.create 11 in
  let q = Event_queue.create ~initial_capacity:4096 () in
  for _ = 1 to 4096 do
    Event_queue.push_tagged q ~time:(1 + Rng.int rng 120) ~tag:0 ()
  done;
  Test.make ~name:"event-queue cycle calendar (pop 4096)"
    (Staged.stage (fun () ->
         ignore (Event_queue.pop_step q);
         Event_queue.push_tagged q
           ~time:(Event_queue.out_time q + 1 + Rng.int rng 120)
           ~tag:0 ()))

let queue_cycle_heap =
  let open Ftss_async in
  let rng = Rng.create 11 in
  let q = Event_queue.Reference.create () in
  for _ = 1 to 4096 do
    Event_queue.Reference.push q ~time:(1 + Rng.int rng 120) ()
  done;
  Test.make ~name:"event-queue cycle heap (pop 4096)"
    (Staged.stage (fun () ->
         match Event_queue.Reference.pop q with
         | Some (t, ()) ->
           Event_queue.Reference.push q ~time:(t + 1 + Rng.int rng 120) ()
         | None -> assert false))

(* The Pidset hot path at both representations: a mixed
   union/inter/diff/cardinal/mem workload over fixed operands — one-word
   (n <= 62: immediate ints, single-instruction ops) and multi-word
   (n = 200). The one-word row gates, via bench-diff, that the width
   polymorphism left the historic fast path untouched. *)
let pidset_ops ~n =
  let a = Pidset.of_pred n (fun p -> p mod 3 = 0) in
  let b = Pidset.of_pred n (fun p -> p mod 2 = 0) in
  Test.make
    ~name:(Printf.sprintf "pidset mixed ops (n=%d)" n)
    (Staged.stage (fun () ->
         let u = Pidset.union a b in
         let i = Pidset.inter u a in
         let d = Pidset.diff u b in
         ignore (Pidset.cardinal i + Pidset.cardinal d);
         ignore (Pidset.mem (n - 1) u)))

(* [Explore.run ~domains:d] spawns d-1 worker domains inside every call,
   so a multi-domain row measures spawn+join cost plus the workload — on a
   ~3 ms workload the spawns dominate and the row must not be read as the
   explorer's parallel speedup (E5 measures that, amortized over large
   case sets). The row is named "spawn+run" accordingly, and the
   [domain_spawn_join] baseline prices the spawns alone so the two can be
   subtracted. *)
let explorer_throughput ~domains =
  let open Ftss_check in
  let prop =
    match Property.find ~name:"theorem3" ~inject:"none" with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let params =
    { Schedule_enum.n = 3; rounds = 3; f = 1; intervals = true; drops = true }
  in
  let cases = Schedule_enum.enumerate params in
  Test.make
    ~name:
      (if domains = 1 then
         Printf.sprintf "explorer theorem3 %d cases (1 domain)" (Array.length cases)
       else
         Printf.sprintf "explorer theorem3 %d cases (spawn+run, %d domains)"
           (Array.length cases) domains)
    (Staged.stage (fun () -> ignore (Explore.run ~domains prop cases)))

let domain_spawn_join ~spawns =
  Test.make
    ~name:(Printf.sprintf "domain spawn+join x%d" spawns)
    (Staged.stage (fun () ->
         let ds = List.init spawns (fun _ -> Domain.spawn (fun () -> ())) in
         List.iter Domain.join ds))

let tests =
  Test.make_grouped ~name:"ftss" ~fmt:"%s %s"
    [
      round_agreement_round ~n:4;
      round_agreement_round ~n:16;
      compiled_round ~n:4;
      compiled_round ~n:16;
      coterie_analysis ~n:8 ~rounds:50;
      esfd_tick ~n:5;
      esfd_tick ~n:9;
      async_consensus_run ~n:5;
      repeated_shared_heap ~n:4 ~instances:8;
      repeated_rebuilt_heap ~n:4 ~instances:8;
      repeated_pooled_queue ~n:4 ~instances:8;
      queue_cycle_calendar;
      queue_cycle_heap;
      pidset_ops ~n:61;
      pidset_ops ~n:200;
      explorer_throughput ~domains:1;
      explorer_throughput ~domains:(max 2 (Ftss_check.Explore.available ()));
      domain_spawn_join ~spawns:(max 2 (Ftss_check.Explore.available ()) - 1);
    ]

let run m =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let table =
    Table.create ~title:"M1 Microbenchmarks (monotonic clock, OLS estimate per call)"
      [ "benchmark"; "ns/call" ]
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
        in
        (name, estimate) :: acc)
      clock []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, est) ->
      Ftss_obs.Metrics.set
        (Ftss_obs.Metrics.gauge m (Printf.sprintf "ns_per_call.%s" name))
        est;
      Table.add_row table [ name; Printf.sprintf "%.0f" est ])
    rows;
  Table.print table
