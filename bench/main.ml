(* Benchmark harness: regenerates every experiment table (E1-E7, one per
   figure/theorem of the paper — see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for paper-claim vs measured) and runs the bechamel
   microbenchmark suite (M1). Each experiment also writes its headline
   aggregates as BENCH_<name>.json in the working directory.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- E1 E5   # a subset
     dune exec bench/main.exe -- M1      # microbenchmarks only

   [--meta-rev REV] and [--meta-date DATE] stamp the envelopes with the
   producing revision and date (CI passes them), so committed baselines
   are self-describing. *)

let () =
  let rec parse_args acc rev date = function
    | [] -> (List.rev acc, rev, date)
    | "--meta-rev" :: v :: rest -> parse_args acc (Some v) date rest
    | "--meta-date" :: v :: rest -> parse_args acc rev (Some v) rest
    | ("--meta-rev" | "--meta-date") :: [] ->
      prerr_endline "bench: --meta-rev/--meta-date need a value";
      exit 2
    | x :: rest -> parse_args (x :: acc) rev date rest
  in
  let requested, meta_rev, meta_date =
    parse_args [] None None (List.tl (Array.to_list Sys.argv))
  in
  let valid = List.map fst Experiments.all @ [ "M1" ] in
  let unknown = List.filter (fun r -> not (List.mem r valid)) requested in
  if unknown <> [] then begin
    Printf.eprintf "bench: unknown experiment%s: %s\nvalid names: %s\n"
      (if List.length unknown = 1 then "" else "s")
      (String.concat ", " unknown)
      (String.concat " " valid);
    exit 2
  end;
  let wanted name = requested = [] || List.mem name requested in
  (* Run metadata: where and how a baseline was produced. The bench-diff
     loader ignores unknown envelope fields, so older readers still load
     stamped files. *)
  let meta =
    let opt k v = match v with None -> [] | Some v -> [ (k, Ftss_obs.Json.String v) ] in
    Ftss_obs.Json.Obj
      (opt "git_rev" meta_rev
      @ opt "date" meta_date
      @ [ ("domains", Ftss_obs.Json.Int (Ftss_check.Explore.available ())) ])
  in
  let with_metrics name experiment =
    let m = Ftss_obs.Metrics.create () in
    let t0 = Unix.gettimeofday () in
    experiment m;
    Ftss_obs.Metrics.set
      (Ftss_obs.Metrics.gauge m "elapsed_seconds")
      (Unix.gettimeofday () -. t0);
    let path = Printf.sprintf "BENCH_%s.json" name in
    (* Schema-2 envelope: the experiment's name and a schema tag wrap the
       metrics snapshot, so [ftss bench-diff] can refuse cross-experiment
       comparisons. Bare schema-1 files (no envelope) remain readable. *)
    let doc =
      match Ftss_obs.Metrics.to_json m with
      | Ftss_obs.Json.Obj fields ->
        Ftss_obs.Json.Obj
          (("experiment", Ftss_obs.Json.String name)
          :: ("schema", Ftss_obs.Json.Int 2)
          :: ("meta", meta)
          :: fields)
      | other -> other
    in
    let oc = open_out path in
    output_string oc (Ftss_obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc
  in
  List.iter
    (fun (name, experiment) ->
      if wanted name then begin
        with_metrics name experiment;
        print_newline ()
      end)
    Experiments.all;
  if wanted "M1" then with_metrics "M1" Microbench.run
