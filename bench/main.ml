(* Benchmark harness: regenerates every experiment table (E1-E7, one per
   figure/theorem of the paper — see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for paper-claim vs measured) and runs the bechamel
   microbenchmark suite (M1). Each experiment also writes its headline
   aggregates as BENCH_<name>.json in the working directory.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- E1 E5   # a subset
     dune exec bench/main.exe -- M1      # microbenchmarks only

   [--meta-rev REV] and [--meta-date DATE] stamp the envelopes with the
   producing revision and date, so committed baselines are
   self-describing. When a flag is omitted the harness asks git for the
   checked-out revision and commit date, so locally regenerated baselines
   are stamped too, not only CI's. *)

(* First line of [cmd]'s stdout, or [None] when the command fails (not a
   git checkout, no git in PATH) — the stamp is best-effort metadata. *)
let command_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let git_rev () = command_line "git rev-parse --short HEAD 2>/dev/null"
let git_date () = command_line "git log -1 --format=%cs 2>/dev/null"

let () =
  let rec parse_args acc rev date = function
    | [] -> (List.rev acc, rev, date)
    | "--meta-rev" :: v :: rest -> parse_args acc (Some v) date rest
    | "--meta-date" :: v :: rest -> parse_args acc rev (Some v) rest
    | ("--meta-rev" | "--meta-date") :: [] ->
      prerr_endline "bench: --meta-rev/--meta-date need a value";
      exit 2
    | x :: rest -> parse_args (x :: acc) rev date rest
  in
  let requested, meta_rev, meta_date =
    parse_args [] None None (List.tl (Array.to_list Sys.argv))
  in
  let meta_rev = match meta_rev with Some _ as r -> r | None -> git_rev () in
  let meta_date = match meta_date with Some _ as d -> d | None -> git_date () in
  let valid = List.map fst Experiments.all @ [ "M1" ] in
  let unknown = List.filter (fun r -> not (List.mem r valid)) requested in
  if unknown <> [] then begin
    Printf.eprintf "bench: unknown experiment%s: %s\nvalid names: %s\n"
      (if List.length unknown = 1 then "" else "s")
      (String.concat ", " unknown)
      (String.concat " " valid);
    exit 2
  end;
  let wanted name = requested = [] || List.mem name requested in
  (* Run metadata: where and how a baseline was produced. The bench-diff
     loader ignores unknown envelope fields, so older readers still load
     stamped files. *)
  let meta =
    let opt k v = match v with None -> [] | Some v -> [ (k, Ftss_obs.Json.String v) ] in
    Ftss_obs.Json.Obj
      (opt "git_rev" meta_rev
      @ opt "date" meta_date
      @ [ ("domains", Ftss_obs.Json.Int (Ftss_check.Explore.available ())) ])
  in
  let with_metrics name experiment =
    let m = Ftss_obs.Metrics.create () in
    let t0 = Unix.gettimeofday () in
    experiment m;
    Ftss_obs.Metrics.set
      (Ftss_obs.Metrics.gauge m "elapsed_seconds")
      (Unix.gettimeofday () -. t0);
    let path = Printf.sprintf "BENCH_%s.json" name in
    (* Schema-2 envelope: the experiment's name and a schema tag wrap the
       metrics snapshot, so [ftss bench-diff] can refuse cross-experiment
       comparisons. Bare schema-1 files (no envelope) remain readable. *)
    let doc =
      match Ftss_obs.Metrics.to_json m with
      | Ftss_obs.Json.Obj fields ->
        Ftss_obs.Json.Obj
          (("experiment", Ftss_obs.Json.String name)
          :: ("schema", Ftss_obs.Json.Int 2)
          :: ("meta", meta)
          :: fields)
      | other -> other
    in
    let oc = open_out path in
    output_string oc (Ftss_obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc
  in
  List.iter
    (fun (name, experiment) ->
      if wanted name then begin
        with_metrics name experiment;
        print_newline ()
      end)
    Experiments.all;
  if wanted "M1" then with_metrics "M1" Microbench.run
