(** Bounded exhaustive enumeration of adversaries.

    The theorem checks in E1-E10 sample randomized fault schedules, so a
    "pass" is only as strong as the adversaries the RNG happened to draw.
    The paper's claims (Theorems 3/4/5) quantify over {e all} schedules
    with at most [f] general-omission-faulty processes and {e all} initial
    states. For small parameters both spaces can be made finite and walked
    completely:

    - {b schedules}: each faulty process is assigned one adversarial
      behaviour from a finite catalogue — a crash round, a send-omission
      (mute) interval, a receive-omission (deaf) interval, a general-
      omission (isolate) interval, or a single point send/receive drop —
      and every subset of at most [f] processes is considered;
    - {b corruptions}: arbitrary initial states are covered by canonical
      corruption classes (clean, all-zero, all-maximal, parked at a common
      round, per-pid-distinct) — the representative shapes systemic
      failures take for round-variable-style state. The classes are
      exhaustive up to the symmetries the protocols under test actually
      distinguish: equal-everywhere values (any magnitude) and
      distinct-everywhere values.

    A {!t} (one schedule plus one corruption class) is called a {e case};
    cases are indexable, so the whole space can be enumerated, counted in
    closed form ({!count}), and sampled uniformly ({!random}) for
    coverage comparisons. *)

open Ftss_util

(** One faulty process's behaviour. Rounds are 1-based. *)
type behavior =
  | Crash of int  (** crash at that round *)
  | Mute of int * int  (** send omission over an inclusive round interval *)
  | Deaf of int * int  (** receive omission over an inclusive interval *)
  | Isolate of int * int  (** mute and deaf combined *)
  | Send_drop of int * Pid.t  (** [(round, dst)]: drop the one message owner->dst *)
  | Recv_drop of int * Pid.t  (** [(round, src)]: drop the one message src->owner *)

(** Canonical corruption class applied to every process's initial state. *)
type corruption =
  | Clean  (** no systemic failure *)
  | Zero  (** every round variable forced to 0 *)
  | Max  (** every round variable forced to a huge common value *)
  | Parked of int  (** every round variable parked at the given round *)
  | Distinct  (** pairwise-distinct per-pid values *)

type params = {
  n : int;  (** system size *)
  rounds : int;  (** schedule horizon (and simulated rounds) *)
  f : int;  (** fault budget: schedules touch at most [f] processes *)
  intervals : bool;  (** include mute/deaf/isolate interval behaviours *)
  drops : bool;  (** include single point-drop behaviours *)
}

(** A case: a fault schedule (at most one behaviour per faulty process,
    pids ascending) plus a corruption class. *)
type t = {
  params : params;
  behaviors : (Pid.t * behavior) list;
  corruption : corruption;
}

(** [validate params] raises [Invalid_argument] unless [n >= 2],
    [rounds >= 1] and [0 <= f < n]. *)
val validate : params -> unit

(** Size of the per-process behaviour catalogue:
    [rounds] crashes, plus (when [intervals]) [3 * rounds*(rounds+1)/2]
    intervals, plus (when [drops]) [2 * rounds * (n-1)] point drops. *)
val behaviors_per_process : params -> int

(** Number of distinct schedules:
    [sum_{k=0..f} C(n,k) * behaviors_per_process^k]. *)
val count_schedules : params -> int

(** The corruption classes explored: clean, zero, max, parked at
    [params.rounds], distinct — 5 classes. *)
val corruptions : params -> corruption list

(** Total cases: [count_schedules * List.length corruptions]. *)
val count : params -> int

(** [get params i] is the [i]-th case, [0 <= i < count params].
    Deterministic: equal arguments yield structurally equal cases. *)
val get : params -> int -> t

(** The whole space, [Array.init (count params) (get params)]. *)
val enumerate : params -> t array

(** [random rng params] draws a case uniformly from the enumerated space. *)
val random : Rng.t -> params -> t

(** Compile a case's schedule into a {!Ftss_sync.Faults.t}. Point drops
    are charged to the behaviour's owner (a [Blame] event precedes the
    [Drop]), so receive omissions blame the receiver as the paper's
    general-omission model requires. *)
val to_faults : t -> Ftss_sync.Faults.t

(** [corrupt_int corruption p v] applies the class to an integer round
    variable ([v] is the clean value, returned unchanged by [Clean]). *)
val corrupt_int : corruption -> Pid.t -> int -> int

(** [crashes t] is the [(pid, round)] crash events of the schedule, in
    pid order — the projection used by the asynchronous (Theorem 5)
    adapter. *)
val crashes : t -> (Pid.t * int) list

(** [crash_only t] is true iff every behaviour is a [Crash]. *)
val crash_only : t -> bool

(** {2 Canonicalization under pid permutation}

    Relabelling processes maps a case to an adversarially equivalent one:
    the corruption classes are permutation-closed and a schedule's
    behaviours mention pids only as labels. {!canonical} picks one
    deterministic representative of each such orbit, so an explorer can
    collapse permutation-symmetric adversaries instead of enumerating
    them (sound for properties whose verdict is invariant under pid
    relabelling — the golden equivalence suite pins this for the
    corpora the checker gates on). *)

(** The pids a case mentions — behaviour owners plus the peers of point
    drops — ascending. At most [2f] of them. *)
val support : t -> Pid.t list

(** [permute perm t] relabels every pid mention through [perm] (which
    must be injective on the support and stay within [0..n-1]),
    re-sorting behaviours into owner order. *)
val permute : (Pid.t -> Pid.t) -> t -> t

(** The orbit representative: the support is packed onto pids
    [0..m-1] and, for supports of at most 8 pids (always, at the
    enumerated fault budgets), the structurally least case over all [m!]
    relabellings is chosen. Two cases have equal canonical forms iff one
    is a pid permutation of the other; [canonical] is idempotent. *)
val canonical : t -> t

(** {2 Sizes (the shrinking order)} *)

(** Rounds of misbehaviour a behaviour schedules: a crash at round [r]
    counts [rounds - r + 1], an interval its length (doubled for
    [Isolate]), a point drop 1. *)
val behavior_size : rounds:int -> behavior -> int

(** [Clean] 0, [Zero] 1, [Parked _] 2, [Max] 3, [Distinct] 4. *)
val corruption_weight : corruption -> int

(** Total schedule size plus corruption weight — the measure
    {!Shrink.shrink} strictly decreases. *)
val size : t -> int

val pp_behavior : rounds:int -> Format.formatter -> behavior -> unit
val pp_corruption : Format.formatter -> corruption -> unit
val pp : Format.formatter -> t -> unit
