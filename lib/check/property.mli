(** The paper's theorems as checkable properties over enumerated cases.

    A property packages: build the fault schedule and corruption of a
    {!Schedule_enum.t} case, execute the protocol under it, fingerprint
    the resulting execution (so {!Explore} can deduplicate isomorphic
    runs), and — lazily, because deduplicated runs skip it — evaluate the
    theorem's predicate.

    Three properties are provided, one per machine-checkable theorem:

    - [theorem3]: the Figure 1 round-agreement protocol ftss-solves
      Assumption 1 with stabilization time 1 ({!Ftss_core.Solve.ftss_solves});
    - [theorem4]: the Figure 3 compilation of suspect-filtered omission
      consensus ftss-solves Σ⁺ within the [2·final_round] bound;
    - [theorem5]: the Figure 4 ◇W → ◇S transform converges (strong
      completeness + eventual weak accuracy) from corrupted detector
      state, on the asynchronous simulator under the case's crash
      schedule (the case must be crash-only; [restrict] arranges that).

    {b Injections} deliberately break a mechanism so the explorer provably
    finds (and {!Shrink} minimizes) a counterexample:

    - ["frozen-exchange"] (theorem 3): processes ignore every delivery
      and just increment — round agreement cannot reconcile distinct
      corrupted round variables;
    - ["no-suspect-filter"] (theorem 4): the Figure 3 suspect filter is
      disabled, re-admitting §2.4's insidious out-of-date messages. *)

type verdict = { ok : bool; detail : string }

(** One executed case. [fingerprint] is a content digest of the recorded
    execution: equal fingerprints imply equal verdicts, so the verdict of
    a duplicate run may be reused without forcing [verdict]. [states] is
    the number of process-round states the run simulated (the unit of the
    explorer's throughput report). [signature] is the run's per-round
    behavioural signature ({!Ftss_sync.Trace.round_signature} under a
    theorem-specific observable projection; a coarse convergence profile
    for the asynchronous theorem 5) — the fuzzer's coverage signal, lazy
    because the explorer never forces it. *)
type run = {
  fingerprint : string;
  states : int;
  signature : int array Lazy.t;
  verdict : verdict Lazy.t;
}

(** The adversary interface the theorem runners consume — what any case,
    catalogued or fuzzed, compiles down to: a fault schedule, the raw
    integer corruption used by the synchronous theorems, the (rng seed,
    magnitude bound) corruption used by the asynchronous theorem 5
    ([None] = clean), and the crash view theorem 5 needs ([adv_crash_only]
    must hold for it). *)
type adversary = {
  adv_n : int;
  adv_rounds : int;
  adv_f : int;
  adv_faults : Ftss_sync.Faults.t;
  adv_corrupt_int : Ftss_util.Pid.t -> int -> int;
  adv_corrupt_bound : (int * int) option;
  adv_crashes : (Ftss_util.Pid.t * int) list;
  adv_crash_only : bool;
}

(** [adversary_of_case case] compiles a catalogue case to the adversary
    interface. [run_adv (adversary_of_case case) ≡ run case] by
    construction, so fingerprints agree between the two front-ends. *)
val adversary_of_case : Schedule_enum.t -> adversary

type t = {
  name : string;
  inject : string;  (** active injection, ["none"] when checking the paper *)
  restrict : Schedule_enum.params -> Schedule_enum.params;
      (** narrows the enumeration to the schedules the property can
          interpret (e.g. crash-only for the asynchronous theorem 5) *)
  run_adv : ?obs:Ftss_obs.Obs.t -> adversary -> run;
      (** the evaluator proper; the fuzzer's entry point. With [?obs]
          the theorem's substrate run is traced (and stamped, when the
          hub carries a stamper), and the stable windows of the
          execution are emitted — the provenance path for explaining a
          counterexample *)
  run : ?obs:Ftss_obs.Obs.t -> Schedule_enum.t -> run;
      (** [run_adv ∘ adversary_of_case] *)
}

(** [theorem3 ~inject:`Frozen_exchange ()] is the injected variant. *)
val theorem3 : ?inject:[ `None | `Frozen_exchange ] -> unit -> t

(** [theorem4 ~suspect_filter:false ()] is the injected variant. *)
val theorem4 : ?suspect_filter:bool -> unit -> t

val theorem5 : unit -> t

(** All (property, injection) pairs accepted by {!find}. *)
val known : (string * string) list

(** [find ~name ~inject] resolves a CLI / replay-file selector, e.g.
    [find ~name:"theorem3" ~inject:"frozen-exchange"]. *)
val find : name:string -> inject:string -> (t, string) result

(** [fails t case] forces the verdict and reports whether the case is a
    counterexample. *)
val fails : t -> Schedule_enum.t -> bool
