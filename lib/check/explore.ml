type result = { fingerprint : string; ok : bool; detail : string; states : int }

type stats = {
  cases : int;
  distinct : int;
  dedup_hits : int;
  violations : int list;
  states : int;
  elapsed : float;
  domains : int;
}

let available () = Domain.recommended_domain_count ()

(* The verdict cache. Verdicts are pure functions of the fingerprinted
   execution, so a cached verdict is exactly what re-evaluation would
   produce; the race where two domains evaluate the same fingerprint
   concurrently is benign (both store the same value). The cache only
   short-circuits work — the reported dedup statistics are recomputed
   deterministically from the merged per-case fingerprints. *)
type cache = { table : (string, Property.verdict) Hashtbl.t; mutex : Mutex.t }

let cache_find cache key =
  Mutex.lock cache.mutex;
  let v = Hashtbl.find_opt cache.table key in
  Mutex.unlock cache.mutex;
  v

let cache_store cache key v =
  Mutex.lock cache.mutex;
  if not (Hashtbl.mem cache.table key) then Hashtbl.add cache.table key v;
  Mutex.unlock cache.mutex

let run ?(domains = 1) (property : Property.t) cases =
  let len = Array.length cases in
  let domains = max 1 (min domains 64) in
  let results = Array.make len None in
  let cache = { table = Hashtbl.create (max 16 len); mutex = Mutex.create () } in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < len then begin
        let r = property.Property.run cases.(i) in
        let verdict =
          match cache_find cache r.Property.fingerprint with
          | Some v -> v
          | None ->
            let v = Lazy.force r.Property.verdict in
            cache_store cache r.Property.fingerprint v;
            v
        in
        results.(i) <-
          Some
            {
              fingerprint = r.Property.fingerprint;
              ok = verdict.Property.ok;
              detail = verdict.Property.detail;
              states = r.Property.states;
            };
        loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  if domains = 1 then worker ()
  else begin
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned
  end;
  let elapsed = Unix.gettimeofday () -. t0 in
  let results =
    Array.map
      (function Some r -> r | None -> assert false (* every index was claimed *))
      results
  in
  let seen = Hashtbl.create (max 16 len) in
  let distinct = ref 0 and states = ref 0 and violations = ref [] in
  Array.iteri
    (fun i r ->
      if not (Hashtbl.mem seen r.fingerprint) then begin
        Hashtbl.add seen r.fingerprint ();
        incr distinct
      end;
      states := !states + r.states;
      if not r.ok then violations := i :: !violations)
    results;
  ( {
      cases = len;
      distinct = !distinct;
      dedup_hits = len - !distinct;
      violations = List.rev !violations;
      states = !states;
      elapsed;
      domains;
    },
    results )

let runs_per_sec s = if s.elapsed > 0. then float_of_int s.cases /. s.elapsed else 0.

let states_per_sec s =
  if s.elapsed > 0. then float_of_int s.states /. s.elapsed else 0.

let dedup_rate s =
  if s.cases = 0 then 0. else float_of_int s.dedup_hits /. float_of_int s.cases

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>runs explored: %d, distinct traces: %d, dedup hits: %d (%.1f%%)@,\
     states simulated: %d@,\
     violations: %d@,\
     elapsed: %.3f s at %d domain%s (%.0f runs/s, %.0f states/s)@]"
    s.cases s.distinct s.dedup_hits
    (100. *. dedup_rate s)
    s.states
    (List.length s.violations)
    s.elapsed s.domains
    (if s.domains = 1 then "" else "s")
    (runs_per_sec s) (states_per_sec s)
