module Prof = Ftss_profile.Profile

type result = { fingerprint : string; ok : bool; detail : string; states : int }

type domain_stat = { d_cases : int; d_states : int; d_busy : float }

type stats = {
  cases : int;
  orbits : int;
  distinct : int;
  dedup_hits : int;
  violations : int list;
  states : int;
  elapsed : float;
  domains : int;
  per_domain : domain_stat array;
}

let available () = Domain.recommended_domain_count ()

let run ?obs ?profile ?(domains = 1) ?(canonical = false) (property : Property.t)
    cases =
  let full_len = Array.length cases in
  (* Symmetry reduction: group the cases by their canonical form under
     pid permutation and execute one representative per orbit. Grouping
     by a canonical member is always sound as a partition (two cases
     share a key iff one is a relabelling of the other); collapsing
     {e verdicts} across an orbit additionally assumes the property is
     pid-symmetric — which is why the mode is opt-in and pinned by the
     golden equivalence suite rather than assumed. *)
  let reps, rep_of =
    if not canonical then (None, [||])
    else begin
      let tbl = Hashtbl.create (max 16 full_len) in
      let rev_reps = ref [] and nreps = ref 0 in
      let rep_of = Array.make full_len 0 in
      Array.iteri
        (fun i c ->
          let key = Schedule_enum.canonical c in
          match Hashtbl.find_opt tbl key with
          | Some r -> rep_of.(i) <- r
          | None ->
            let r = !nreps in
            Hashtbl.add tbl key r;
            incr nreps;
            rev_reps := i :: !rev_reps;
            rep_of.(i) <- r)
        cases;
      (Some (Array.of_list (List.rev !rev_reps)), rep_of)
    end
  in
  let cases =
    match reps with None -> cases | Some r -> Array.map (fun i -> cases.(i)) r
  in
  let len = Array.length cases in
  let domains = max 1 (min domains 64) in
  let results = Array.make len None in
  let next = Atomic.make 0 in
  (* Chunked work claiming: one [fetch_and_add] hands a domain [chunk]
     consecutive cases, so cache-line contention on the cursor is paid
     once per chunk rather than once per case. Small enough chunks keep
     the tail balanced across domains. *)
  let chunk = max 1 (min 64 (len / (domains * 8))) in
  let traced = Option.is_some obs in
  let emit ev = match obs with Some o -> Ftss_obs.Obs.emit o ev | None -> () in
  (* Obs.emit and Obs.with_metrics serialize on the hub mutex, so the
     worker domains may share one hub; event construction is guarded on
     [traced] to keep the no-hub path allocation-free. *)
  let worker d () =
    (* Lane per domain: claim latency ([chunk_claim]) and chunk execution
       ([chunk_execute]) are attributed without any cross-domain
       synchronization beyond lane creation itself. *)
    let lane =
      Option.map (fun t -> Prof.lane t (Printf.sprintf "explore.d%d" d)) profile
    in
    (* The verdict cache, one per domain — no lock on the per-case path.
       Verdicts are pure functions of the fingerprinted execution, so a
       domain recomputing a fingerprint another domain has already seen
       produces the identical verdict; per-domain caching costs at most
       that recomputation and never changes a result. The reported dedup
       statistics are not read from these caches: they are recomputed
       deterministically from the merged per-case fingerprints below. *)
    let cache = Hashtbl.create 256 in
    let my_cases = ref 0 and my_states = ref 0 and my_busy = ref 0. in
    let case i =
      if traced then begin
        emit (Ftss_obs.Event.make ~time:i (Ftss_obs.Event.Case_start { case = i }));
        match obs with
        | Some o ->
          Ftss_obs.Obs.with_metrics o (fun m ->
              Ftss_obs.Metrics.observe
                (Ftss_obs.Metrics.histogram m "explore_queue_depth")
                (float_of_int (len - i)))
        | None -> ()
      end;
      let r = property.Property.run cases.(i) in
      let cached = Hashtbl.find_opt cache r.Property.fingerprint in
      let verdict =
        match cached with
        | Some v -> v
        | None ->
          let v = Lazy.force r.Property.verdict in
          Hashtbl.add cache r.Property.fingerprint v;
          v
      in
      incr my_cases;
      my_states := !my_states + r.Property.states;
      if traced then
        emit
          (Ftss_obs.Event.make ~time:i
             (Ftss_obs.Event.Case_verdict
                {
                  case = i;
                  ok = verdict.Property.ok;
                  dedup = Option.is_some cached;
                  states = r.Property.states;
                }));
      results.(i) <-
        Some
          {
            fingerprint = r.Property.fingerprint;
            ok = verdict.Property.ok;
            detail = verdict.Property.detail;
            states = r.Property.states;
          }
    in
    let rec claim () =
      let c0 = match lane with Some _ -> Prof.now_ns () | None -> 0 in
      let first = Atomic.fetch_and_add next chunk in
      (match lane with
      | Some l -> ignore (Prof.lap l Prof.Phase.chunk_claim ~since:c0)
      | None -> ());
      if first < len then begin
        let limit = min len (first + chunk) in
        (* The clock is read once per chunk, not once per case. *)
        let t0 = Unix.gettimeofday () in
        (match lane with
        | Some l -> Prof.enter l Prof.Phase.chunk_execute
        | None -> ());
        for i = first to limit - 1 do
          case i
        done;
        (match lane with Some l -> ignore (Prof.leave l) | None -> ());
        my_busy := !my_busy +. (Unix.gettimeofday () -. t0);
        claim ()
      end
    in
    claim ();
    { d_cases = !my_cases; d_states = !my_states; d_busy = !my_busy }
  in
  let t0 = Unix.gettimeofday () in
  let per_domain =
    if domains = 1 then [| worker 0 () |]
    else begin
      let spawned =
        Array.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
      in
      let mine = worker 0 () in
      Array.append [| mine |] (Array.map Domain.join spawned)
    end
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let merge_lane = Option.map (fun t -> Prof.lane t "explore.main") profile in
  (match merge_lane with
  | Some l -> Prof.enter l Prof.Phase.chunk_merge
  | None -> ());
  let results =
    Array.map
      (function Some r -> r | None -> assert false (* every index was claimed *))
      results
  in
  (* Execution statistics (distinct fingerprints, dedup, simulated
     states) describe the runs actually performed — the orbit
     representatives under [canonical]; the verdicts are then scattered
     to every orbit member so the result array and violation indices
     stay aligned with the caller's case array either way. *)
  let seen = Hashtbl.create (max 16 len) in
  let distinct = ref 0 and states = ref 0 in
  Array.iter
    (fun r ->
      if not (Hashtbl.mem seen r.fingerprint) then begin
        Hashtbl.add seen r.fingerprint ();
        incr distinct
      end;
      states := !states + r.states)
    results;
  let results =
    match reps with
    | None -> results
    | Some _ -> Array.init full_len (fun i -> results.(rep_of.(i)))
  in
  let violations = ref [] in
  Array.iteri (fun i r -> if not r.ok then violations := i :: !violations) results;
  let stats =
    {
      cases = full_len;
      orbits = len;
      distinct = !distinct;
      dedup_hits = len - !distinct;
      violations = List.rev !violations;
      states = !states;
      elapsed;
      domains;
      per_domain;
    }
  in
  (match merge_lane with Some l -> ignore (Prof.leave l) | None -> ());
  (match obs with
  | None -> ()
  | Some o ->
    Ftss_obs.Obs.with_metrics o (fun m ->
        let set name v = Ftss_obs.Metrics.set (Ftss_obs.Metrics.gauge m name) v in
        set "explore_runs_per_sec"
          (if elapsed > 0. then float_of_int len /. elapsed else 0.);
        set "explore_states_per_sec"
          (if elapsed > 0. then float_of_int !states /. elapsed else 0.);
        Array.iteri
          (fun d ds ->
            set
              (Printf.sprintf "explore_domain_utilization.%d" d)
              (if elapsed > 0. then ds.d_busy /. elapsed else 0.))
          per_domain));
  (stats, results)

(* Throughput and dedup are rates over the runs actually executed — the
   orbit representatives; [orbits = cases] whenever canonicalization is
   off, so the historic meaning of every gauge is unchanged. *)
let runs_per_sec s = if s.elapsed > 0. then float_of_int s.orbits /. s.elapsed else 0.

let states_per_sec s =
  if s.elapsed > 0. then float_of_int s.states /. s.elapsed else 0.

let dedup_rate s =
  if s.orbits = 0 then 0. else float_of_int s.dedup_hits /. float_of_int s.orbits

let symmetry_reduction s =
  if s.orbits = 0 then 1. else float_of_int s.cases /. float_of_int s.orbits

let to_json s =
  let open Ftss_obs.Json in
  Obj
    [
      ("cases", Int s.cases);
      ("orbits", Int s.orbits);
      ("symmetry_reduction", Float (symmetry_reduction s));
      ("distinct", Int s.distinct);
      ("dedup_hits", Int s.dedup_hits);
      ("violations", List (List.map (fun i -> Int i) s.violations));
      ("states", Int s.states);
      ("elapsed", Float s.elapsed);
      ("domains", Int s.domains);
      ("runs_per_sec", Float (runs_per_sec s));
      ("states_per_sec", Float (states_per_sec s));
      ( "per_domain",
        List
          (Array.to_list
             (Array.map
                (fun d ->
                  Obj
                    [
                      ("cases", Int d.d_cases);
                      ("states", Int d.d_states);
                      ("busy", Float d.d_busy);
                      ( "utilization",
                        Float (if s.elapsed > 0. then d.d_busy /. s.elapsed else 0.) );
                    ])
                s.per_domain)) );
    ]

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>runs explored: %d, distinct traces: %d, dedup hits: %d (%.1f%%)@,"
    s.cases s.distinct s.dedup_hits
    (100. *. dedup_rate s);
  if s.orbits < s.cases then
    Format.fprintf ppf "orbit representatives: %d (%.2fx symmetry reduction)@,"
      s.orbits (symmetry_reduction s);
  Format.fprintf ppf
    "states simulated: %d@,\
     violations: %d@,\
     elapsed: %.3f s at %d domain%s (%.0f runs/s, %.0f states/s)"
    s.states
    (List.length s.violations)
    s.elapsed s.domains
    (if s.domains = 1 then "" else "s")
    (runs_per_sec s) (states_per_sec s);
  Array.iteri
    (fun d ds ->
      Format.fprintf ppf "@,  domain %d: %d cases, %d states, %.0f%% busy" d ds.d_cases
        ds.d_states
        (if s.elapsed > 0. then 100. *. ds.d_busy /. s.elapsed else 0.))
    s.per_domain;
  Format.fprintf ppf "@]"
