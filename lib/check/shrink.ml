module S = Schedule_enum

let weakenings ~rounds = function
  | S.Isolate (a, b) -> [ S.Mute (a, b); S.Deaf (a, b) ]
  | S.Mute (a, b) when a < b -> [ S.Mute (a + 1, b); S.Mute (a, b - 1) ]
  | S.Deaf (a, b) when a < b -> [ S.Deaf (a + 1, b); S.Deaf (a, b - 1) ]
  | S.Crash r when r < rounds -> [ S.Crash (r + 1) ]
  | S.Crash _ | S.Mute _ | S.Deaf _ | S.Send_drop _ | S.Recv_drop _ -> []

(* Every element of [xs] with the i-th entry replaced by each of
   [replacements i x], one at a time. *)
let pointwise xs replacements =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if i = j then x' else y) xs)
           (replacements x))
       xs)

let candidates (case : S.t) =
  let rounds = case.S.params.S.rounds in
  let removals =
    List.mapi
      (fun i _ ->
        { case with S.behaviors = List.filteri (fun j _ -> j <> i) case.S.behaviors })
      case.S.behaviors
  in
  let downgrades =
    List.filter_map
      (fun c ->
        if S.corruption_weight c < S.corruption_weight case.S.corruption then
          Some { case with S.corruption = c }
        else None)
      (S.corruptions case.S.params)
  in
  let weakened =
    List.map
      (fun behaviors -> { case with S.behaviors })
      (pointwise case.S.behaviors (fun (p, b) ->
           List.map (fun b' -> (p, b')) (weakenings ~rounds b)))
  in
  removals @ downgrades @ weakened

(* The descent engine, factored out so the fuzzer's genome reductions
   reuse it: greedily step to the first still-failing candidate until a
   local minimum. Termination is the caller's contract — every candidate
   must be strictly smaller under some well-founded measure. *)
let rec fixpoint ~fails ~candidates x =
  match List.find_opt fails (candidates x) with
  | Some smaller -> fixpoint ~fails ~candidates smaller
  | None -> x

let shrink ~property case =
  fixpoint ~fails:(Property.fails property) ~candidates case
