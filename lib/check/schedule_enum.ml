open Ftss_util
module Faults = Ftss_sync.Faults

type behavior =
  | Crash of int
  | Mute of int * int
  | Deaf of int * int
  | Isolate of int * int
  | Send_drop of int * Pid.t
  | Recv_drop of int * Pid.t

type corruption = Clean | Zero | Max | Parked of int | Distinct

type params = {
  n : int;
  rounds : int;
  f : int;
  intervals : bool;
  drops : bool;
}

type t = {
  params : params;
  behaviors : (Pid.t * behavior) list;
  corruption : corruption;
}

let validate { n; rounds; f; _ } =
  if n < 2 then invalid_arg "Schedule_enum: n < 2";
  if rounds < 1 then invalid_arg "Schedule_enum: rounds < 1";
  if f < 0 || f >= n then invalid_arg "Schedule_enum: f outside 0..n-1"

let intervals_per_kind rounds = rounds * (rounds + 1) / 2

let behaviors_per_process { n; rounds; intervals; drops; _ } =
  rounds
  + (if intervals then 3 * intervals_per_kind rounds else 0)
  + if drops then 2 * rounds * (n - 1) else 0

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let pow base e =
  let acc = ref 1 in
  for _ = 1 to e do
    acc := !acc * base
  done;
  !acc

let count_schedules params =
  validate params;
  let b = behaviors_per_process params in
  let total = ref 0 in
  for k = 0 to params.f do
    total := !total + (binomial params.n k * pow b k)
  done;
  !total

let corruptions params = [ Clean; Zero; Max; Parked params.rounds; Distinct ]

let count params = count_schedules params * List.length (corruptions params)

(* --- index decoding --- *)

(* The j-th (a, b) interval with 1 <= a <= b <= rounds, intervals ordered
   by a then b. *)
let interval_of_index rounds j =
  let rec skip a j =
    let here = rounds - a + 1 in
    if j < here then (a, a + j) else skip (a + 1) (j - here)
  in
  skip 1 j

(* The d-th pid other than [pid] (0-based over the n-1 others). *)
let other_of_index ~pid d = if d < pid then d else d + 1

let behavior_of_index params ~pid i =
  let { rounds; n; intervals; drops; _ } = params in
  if i < rounds then Crash (i + 1)
  else begin
    let i = i - rounds in
    let per_kind = intervals_per_kind rounds in
    if intervals && i < 3 * per_kind then begin
      let a, b = interval_of_index rounds (i mod per_kind) in
      match i / per_kind with
      | 0 -> Mute (a, b)
      | 1 -> Deaf (a, b)
      | _ -> Isolate (a, b)
    end
    else begin
      let i = if intervals then i - (3 * per_kind) else i in
      let per_dir = rounds * (n - 1) in
      if not (drops && i < 2 * per_dir) then
        invalid_arg "Schedule_enum: behaviour index out of range";
      let dir = i / per_dir and j = i mod per_dir in
      let round = (j / (n - 1)) + 1 in
      let other = other_of_index ~pid (j mod (n - 1)) in
      if dir = 0 then Send_drop (round, other) else Recv_drop (round, other)
    end
  end

(* Lexicographic unranking of the k-subsets of [start .. n-1]. *)
let rec unrank_subset ~n k rank start =
  if k = 0 then []
  else
    let rec pick e rank =
      let with_e = binomial (n - e - 1) (k - 1) in
      if rank < with_e then e :: unrank_subset ~n (k - 1) rank (e + 1)
      else pick (e + 1) (rank - with_e)
    in
    pick start rank

let schedule_of_index params idx =
  let b = behaviors_per_process params in
  let rec locate k idx =
    let block = binomial params.n k * pow b k in
    if idx < block then (k, idx) else locate (k + 1) (idx - block)
  in
  let k, idx = locate 0 idx in
  if k = 0 then []
  else begin
    let assignments = pow b k in
    let subset = unrank_subset ~n:params.n k (idx / assignments) 0 in
    let assign = idx mod assignments in
    List.mapi
      (fun j pid ->
        let digit = assign / pow b (k - 1 - j) mod b in
        (pid, behavior_of_index params ~pid digit))
      subset
  end

let get params i =
  validate params;
  let ncorr = List.length (corruptions params) in
  let total = count params in
  if i < 0 || i >= total then
    invalid_arg (Printf.sprintf "Schedule_enum.get: index %d outside 0..%d" i (total - 1));
  {
    params;
    behaviors = schedule_of_index params (i / ncorr);
    corruption = List.nth (corruptions params) (i mod ncorr);
  }

let enumerate params = Array.init (count params) (get params)
let random rng params = get params (Rng.int rng (count params))

let to_faults t =
  let events =
    List.concat_map
      (fun (pid, behavior) ->
        match behavior with
        | Crash round -> [ Faults.Crash { pid; round } ]
        | Mute (first, last) -> [ Faults.Mute { pid; first; last } ]
        | Deaf (first, last) -> [ Faults.Deaf { pid; first; last } ]
        | Isolate (first, last) -> [ Faults.Isolate { pid; first; last } ]
        | Send_drop (round, dst) ->
          [ Faults.Blame { pid }; Faults.Drop { src = pid; dst; round } ]
        | Recv_drop (round, src) ->
          [ Faults.Blame { pid }; Faults.Drop { src; dst = pid; round } ])
      t.behaviors
  in
  Faults.of_events ~n:t.params.n events

(* A prime far above every round horizon used in experiments, so Max
   never collides with a legitimately reachable round variable. *)
let huge = 999_983

let corrupt_int corruption p v =
  match corruption with
  | Clean -> v
  | Zero -> 0
  | Max -> huge
  | Parked k -> k
  | Distinct -> 1 + ((p + 1) * 97)

let crashes t =
  List.filter_map
    (fun (pid, b) -> match b with Crash r -> Some (pid, r) | _ -> None)
    t.behaviors

let crash_only t =
  List.for_all (fun (_, b) -> match b with Crash _ -> true | _ -> false) t.behaviors

(* --- Canonicalization under pid permutation --- *)

let behavior_pid_ref = function
  | Send_drop (_, q) | Recv_drop (_, q) -> Some q
  | Crash _ | Mute _ | Deaf _ | Isolate _ -> None

let support t =
  let add acc p = if List.mem p acc then acc else p :: acc in
  List.sort Int.compare
    (List.fold_left
       (fun acc (p, b) ->
         let acc = add acc p in
         match behavior_pid_ref b with Some q -> add acc q | None -> acc)
       [] t.behaviors)

let permute perm t =
  let behaviors =
    List.map
      (fun (p, b) ->
        let b =
          match b with
          | Send_drop (r, q) -> Send_drop (r, perm q)
          | Recv_drop (r, q) -> Recv_drop (r, perm q)
          | (Crash _ | Mute _ | Deaf _ | Isolate _) as b -> b
        in
        (perm p, b))
      t.behaviors
    |> List.sort compare
  in
  { t with behaviors }

let rename assoc t = permute (fun p -> match List.assoc_opt p assoc with Some q -> q | None -> p) t

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun rest -> x :: rest) (permutations (List.filter (fun y -> y <> x) l)))
      l

(* Orbit-representative support size above which we settle for the
   rank-relabelled member instead of the lexicographic minimum: both are
   deterministic members of the case's orbit (so grouping by them never
   merges distinct orbits), but the factorial search is only worth it
   while the support is small — which it always is for the fault budgets
   the checker enumerates (|support| <= 2f). *)
let exact_support_limit = 8

let canonical t =
  match support t with
  | [] -> t
  | s ->
    let m = List.length s in
    let ranked = rename (List.mapi (fun i p -> (p, i)) s) t in
    if m > exact_support_limit then ranked
    else
      (* The support now occupies pids 0..m-1; minimize over its m!
         internal permutations. Any full-universe permutation decomposes
         into (map support into 0..m-1) ∘ (permute within 0..m-1), so the
         minimum over this subgroup is the minimum over the orbit. *)
      List.fold_left
        (fun best perm ->
          let img = Array.of_list perm in
          let candidate = permute (fun p -> if p < m then img.(p) else p) ranked in
          if compare candidate best < 0 then candidate else best)
        ranked
        (permutations (List.init m Fun.id))

let behavior_size ~rounds = function
  | Crash r -> rounds - r + 1
  | Mute (a, b) | Deaf (a, b) -> b - a + 1
  | Isolate (a, b) -> 2 * (b - a + 1)
  | Send_drop _ | Recv_drop _ -> 1

let corruption_weight = function
  | Clean -> 0
  | Zero -> 1
  | Parked _ -> 2
  | Max -> 3
  | Distinct -> 4

let size t =
  List.fold_left
    (fun acc (_, b) -> acc + behavior_size ~rounds:t.params.rounds b)
    (corruption_weight t.corruption)
    t.behaviors

let pp_behavior ~rounds ppf b =
  match b with
  | Crash r -> Format.fprintf ppf "crash@r%d(+%d)" r (rounds - r + 1)
  | Mute (a, b) -> Format.fprintf ppf "mute[%d..%d]" a b
  | Deaf (a, b) -> Format.fprintf ppf "deaf[%d..%d]" a b
  | Isolate (a, b) -> Format.fprintf ppf "isolate[%d..%d]" a b
  | Send_drop (r, dst) -> Format.fprintf ppf "send-drop@r%d->%a" r Pid.pp dst
  | Recv_drop (r, src) -> Format.fprintf ppf "recv-drop@r%d<-%a" r Pid.pp src

let pp_corruption ppf = function
  | Clean -> Format.pp_print_string ppf "clean"
  | Zero -> Format.pp_print_string ppf "zero"
  | Max -> Format.pp_print_string ppf "max"
  | Parked k -> Format.fprintf ppf "parked@%d" k
  | Distinct -> Format.pp_print_string ppf "distinct"

let pp ppf t =
  Format.fprintf ppf "@[<h>n=%d rounds=%d corruption=%a schedule={" t.params.n
    t.params.rounds pp_corruption t.corruption;
  List.iteri
    (fun i (p, b) ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%a:%a" Pid.pp p (pp_behavior ~rounds:t.params.rounds) b)
    t.behaviors;
  Format.fprintf ppf "} size=%d@]" (size t)
