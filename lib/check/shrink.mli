(** Delta-debugging of a failing case to a minimal counterexample.

    Greedy descent over strictly-size-decreasing reductions: drop a
    behaviour, weaken one (isolate → mute/deaf, trim an interval from
    either end, postpone a crash), or downgrade the corruption class.
    Each accepted reduction must still falsify the property, so the
    result falsifies it too and [Schedule_enum.size] never increases;
    strict decrease guarantees termination. The candidate order is fixed,
    so shrinking is deterministic. *)

(** The strictly smaller cases tried from [case], in the order tried:
    behaviour removals, then corruption downgrades, then behaviour
    weakenings. *)
val candidates : Schedule_enum.t -> Schedule_enum.t list

(** [shrink ~property case] requires [Property.fails property case] and
    returns a minimal (no candidate still fails) failing case of size
    [<= Schedule_enum.size case]. *)
val shrink : property:Property.t -> Schedule_enum.t -> Schedule_enum.t
