(** Delta-debugging of a failing case to a minimal counterexample.

    Greedy descent over strictly-size-decreasing reductions: drop a
    behaviour, weaken one (isolate → mute/deaf, trim an interval from
    either end, postpone a crash), or downgrade the corruption class.
    Each accepted reduction must still falsify the property, so the
    result falsifies it too and [Schedule_enum.size] never increases;
    strict decrease guarantees termination. The candidate order is fixed,
    so shrinking is deterministic. *)

(** The strictly smaller cases tried from [case], in the order tried:
    behaviour removals, then corruption downgrades, then behaviour
    weakenings. *)
val candidates : Schedule_enum.t -> Schedule_enum.t list

(** [shrink ~property case] requires [Property.fails property case] and
    returns a minimal (no candidate still fails) failing case of size
    [<= Schedule_enum.size case]. *)
val shrink : property:Property.t -> Schedule_enum.t -> Schedule_enum.t

(** The descent engine behind [shrink], generic so other counterexample
    representations (the fuzzer's genomes) can reuse it: repeatedly step
    to the first candidate for which [fails] holds, returning the first
    local minimum (no candidate fails). {b Termination contract}: every
    candidate must be strictly smaller than its parent under some
    well-founded measure; [fixpoint] itself does not check this. The
    result preserves [fails] whenever the input satisfied it. *)
val fixpoint :
  fails:('a -> bool) -> candidates:('a -> 'a list) -> 'a -> 'a
