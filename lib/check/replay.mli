(** Replayable counterexample files.

    A shrunk counterexample is serialized to a small S-expression text
    format so it can be attached to a bug report and re-executed
    deterministically with [ftss_cli replay FILE]. Example:

    {v
(ftss-counterexample
 (version 1)
 (property theorem3)
 (inject frozen-exchange)
 (params (n 3) (rounds 3) (f 1) (intervals true) (drops true))
 (corruption distinct)
 (schedule
  (crash (pid 2) (round 1))
  (mute (pid 0) (first 1) (last 2))))
    v}

    Parsing is strict: unknown properties, malformed clauses or
    out-of-range pids/rounds are reported as [Error _], never guessed. *)

(** The minimal S-expression dialect the counterexample files are written
    in — atoms and lists, [;] line comments, strict trailing-input check.
    Shared with [ftss_fuzz]'s corpus and violation files so every
    persisted artefact of the tooling parses the same way. *)
module Sexp : sig
  type t = Atom of string | List of t list

  val pp : Format.formatter -> t -> unit

  (** [parse s] parses exactly one document; leftover non-whitespace
      input is an error, never silently ignored. *)
  val parse : string -> (t, string) result
end

type t = {
  property : string;
  inject : string;
  case : Schedule_enum.t;
}

val to_string : t -> string
val of_string : string -> (t, string) result

(** [save path t] writes [to_string t] to [path]. *)
val save : string -> t -> unit

(** [load path] reads and parses [path]. *)
val load : string -> (t, string) result

(** [replay t] re-resolves the property and executes the case, returning
    its verdict. [Ok v] with [v.ok = false] means the counterexample
    reproduced. With [?obs] the re-execution is traced through the hub
    (stamped when it carries a stamper) — the provenance path. *)
val replay : ?obs:Ftss_obs.Obs.t -> t -> (Property.verdict, string) result
