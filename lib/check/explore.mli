(** Parallel exhaustive exploration of an enumerated adversary space.

    A work queue over OCaml 5 [Domain]s: an atomic cursor hands each
    domain a chunk of consecutive case indices (one [fetch_and_add] per
    chunk, not per case); each domain executes the chunk's protocol runs,
    consults its {e own} fingerprint table — no lock anywhere on the
    per-case path — and either reuses the verdict of an isomorphic
    earlier run (a {e dedup hit}) or evaluates the property and publishes
    it. Verdicts are pure functions of the fingerprinted execution, so
    per-domain caching can only cost recomputation, never change a
    result. Results land in a per-case slot array and the dedup/distinct
    statistics are recomputed from the merged fingerprints at join, so
    the merged outcome — verdicts, violation indices, distinct-trace and
    dedup counts — is deterministic and independent of how the domains
    interleaved; only the wall-clock numbers vary. *)

(** Per-case outcome, in enumeration order. *)
type result = { fingerprint : string; ok : bool; detail : string; states : int }

(** What one worker domain did: case and state counts plus the seconds it
    spent executing cases (its busy time; [d_busy /. elapsed] is its
    utilization). *)
type domain_stat = { d_cases : int; d_states : int; d_busy : float }

type stats = {
  cases : int;  (** cases covered (the caller's whole array) *)
  orbits : int;
      (** runs actually executed: orbit representatives under
          [~canonical:true], every case otherwise (then [orbits = cases]) *)
  distinct : int;  (** distinct execution fingerprints among executed runs *)
  dedup_hits : int;  (** [orbits - distinct] *)
  violations : int list;  (** failing case indices, ascending *)
  states : int;  (** process-round states simulated by executed runs *)
  elapsed : float;  (** wall-clock seconds *)
  domains : int;
  per_domain : domain_stat array;  (** index 0 is the calling domain *)
}

(** [run ?obs ~domains ?canonical property cases] explores every case.
    [domains] defaults to 1 and is clamped to [1..64]; asking for more
    domains than cores is legal (merely oversubscribed). The returned
    [result] array is indexed like [cases].

    With [canonical = true] (default false), cases are first grouped by
    {!Schedule_enum.canonical} — their orbit under pid relabelling — and
    only one representative per orbit is executed; its verdict is
    scattered to every member, so the result array and the violation
    indices remain aligned with [cases] and, for pid-symmetric
    properties, identical to an uncanonical run's. The grouping itself is
    always an exact partition into orbits; reusing the {e verdict} across
    an orbit is what assumes pid symmetry of the property, which is why
    the mode is opt-in (and pinned against the full enumeration by the
    golden equivalence suite). [stats.orbits] reports the collapse;
    [cases /. orbits] is the symmetry-reduction factor.

    With [profile], each domain records its work-queue lifecycle on its
    own [explore.d<i>] lane — [chunk_claim] laps around the atomic
    cursor, a [chunk_execute] frame per claimed chunk — and the
    post-join fingerprint merge and verdict scatter are spanned as
    [chunk_merge] on [explore.main]. Unset, the instrumentation is one
    option test per chunk.

    When [obs] is given, every executed case emits a [Case_start] and a
    [Case_verdict] event (the [dedup] flag marks hits in the executing
    domain's own verdict cache — an underapproximation of the
    deterministic [dedup_hits] figure; under [canonical] the event indices
    refer to the representative array), the work-queue depth at each case
    lands in the ["explore_queue_depth"] histogram, and the merged
    throughput and per-domain utilization are recorded as gauges. All hub
    access serializes on the hub's own mutex. Per-domain busy time is
    clocked once per claimed chunk. *)
val run :
  ?obs:Ftss_obs.Obs.t ->
  ?profile:Ftss_profile.Profile.t ->
  ?domains:int ->
  ?canonical:bool ->
  Property.t ->
  Schedule_enum.t array ->
  stats * result array

(** [Domain.recommended_domain_count ()]. *)
val available : unit -> int

val runs_per_sec : stats -> float
val states_per_sec : stats -> float

(** Dedup hits as a fraction of executed runs, in [0, 1]. *)
val dedup_rate : stats -> float

(** [cases /. orbits] — how many enumerated cases each executed run
    covered; 1.0 without [~canonical:true]. *)
val symmetry_reduction : stats -> float

(** The stats as one JSON object (throughput and per-domain utilization
    included) — what [ftss check --json] prints. *)
val to_json : stats -> Ftss_obs.Json.t

val pp_stats : Format.formatter -> stats -> unit
