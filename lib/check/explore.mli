(** Parallel exhaustive exploration of an enumerated adversary space.

    A work queue over OCaml 5 [Domain]s: an atomic cursor hands each
    domain the next case index; each domain executes the case's protocol
    run, consults a shared fingerprint table, and either reuses the
    verdict of an isomorphic earlier run (a {e dedup hit}) or evaluates
    the property and publishes it. Results land in a per-case slot array,
    so the merged outcome — verdicts, violation indices, distinct-trace
    and dedup counts — is deterministic and independent of how the domains
    interleaved; only the wall-clock numbers vary. *)

(** Per-case outcome, in enumeration order. *)
type result = { fingerprint : string; ok : bool; detail : string; states : int }

type stats = {
  cases : int;  (** runs explored *)
  distinct : int;  (** distinct execution fingerprints *)
  dedup_hits : int;  (** [cases - distinct] *)
  violations : int list;  (** failing case indices, ascending *)
  states : int;  (** total process-round states simulated *)
  elapsed : float;  (** wall-clock seconds *)
  domains : int;
}

(** [run ~domains property cases] explores every case. [domains] defaults
    to 1 and is clamped to [1..64]; asking for more domains than cores is
    legal (merely oversubscribed). The returned [result] array is indexed
    like [cases]. *)
val run : ?domains:int -> Property.t -> Schedule_enum.t array -> stats * result array

(** [Domain.recommended_domain_count ()]. *)
val available : unit -> int

val runs_per_sec : stats -> float
val states_per_sec : stats -> float

(** Dedup hits as a fraction of all runs, in [0, 1]. *)
val dedup_rate : stats -> float

val pp_stats : Format.formatter -> stats -> unit
