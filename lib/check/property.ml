open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols
module S = Schedule_enum

type verdict = { ok : bool; detail : string }
type run = { fingerprint : string; states : int; verdict : verdict Lazy.t }

type t = {
  name : string;
  inject : string;
  restrict : S.params -> S.params;
  run : S.t -> run;
}

(* A content digest; equal digests imply equal recorded executions, hence
   equal verdicts (every predicate below is a pure function of the
   execution). Trace-based properties read the 62-bit content hash the
   runner streams as the trace is built ({!Trace.hash}) — no [Marshal]
   serialisation, no [Digest] pass, no per-run allocation beyond the hex
   rendering. Composite results (theorem 5) get the same two-stream
   structural hash applied directly. *)
let trace_fingerprint trace = Printf.sprintf "%016x" (Trace.hash trace)

let fingerprint v =
  Printf.sprintf "%08x-%08x"
    (Hashtbl.seeded_hash_param max_int 256 0x1796 v)
    (Hashtbl.seeded_hash_param max_int 256 0x9e37 v)

let no_restrict (params : S.params) = params

(* --- Theorem 3: Figure 1 round agreement --- *)

let theorem3 ?(inject = `None) () =
  let protocol, inject_name =
    match inject with
    | `None -> (Round_agreement.protocol, "none")
    | `Frozen_exchange ->
      (* The exchange is severed: a process ignores every delivery and
         counts on its own. Distinct corrupted round variables then never
         reconcile — the mechanism Theorem 3 rests on, removed. *)
      ( {
          Round_agreement.protocol with
          Protocol.name = "round-agreement!frozen-exchange";
          step = (fun _ c _ -> c + 1);
        },
        "frozen-exchange" )
  in
  let run (case : S.t) =
    let { S.n; rounds; _ } = case.S.params in
    let faults = S.to_faults case in
    let trace =
      Runner.run
        ~corrupt:(S.corrupt_int case.S.corruption)
        ~faults ~rounds protocol
    in
    {
      fingerprint = trace_fingerprint trace;
      states = n * rounds;
      verdict =
        lazy
          (let stab = Round_agreement.stabilization_time in
           let ok = Solve.ftss_solves Round_agreement.spec ~stabilization:stab trace in
           let detail =
             Format.asprintf
               "ftss_solves %s stabilization=%d: %b (measured %d over %d stable windows, %d omissions)"
               Round_agreement.spec.Spec.name stab ok
               (Solve.measured_stabilization Round_agreement.spec trace)
               (List.length (Solve.stable_windows trace))
               (List.length trace.Trace.omissions)
           in
           { ok; detail });
    }
  in
  { name = "theorem3"; inject = inject_name; restrict = no_restrict; run }

(* --- Theorem 4: the Figure 3 compiler --- *)

let theorem4 ?(suspect_filter = true) () =
  let run (case : S.t) =
    let { S.n; rounds; f; _ } = case.S.params in
    let propose p = 50 + p in
    (* With the filter on, Π is the intended compiler input under general
       omission (suspect-filtered, f+2 rounds). The ablated variant feeds
       the compiler *plain* flooding instead, as E8a does: omission
       consensus's internal distrust would mask the removed filter. *)
    let faults = S.to_faults case in
    (* The trace's type depends on Π's state type, so everything derived
       from it — fingerprint and verdict — is computed inside this
       polymorphic helper; only monomorphic values escape. *)
    let compile_and_run pi =
      let compiled = Compiler.compile ~suspect_filter ~n pi in
      let corrupt p (st : _ Compiler.state) =
        { st with Compiler.c = S.corrupt_int case.S.corruption p st.Compiler.c }
      in
      let trace = Runner.run ~corrupt ~faults ~rounds compiled in
      let verdict =
        lazy
          (let valid d = d >= 50 && d < 50 + n in
           let final_round = pi.Canonical.final_round in
           let spec = Repeated.round_and_sigma ~final_round ~valid () in
           let bound = Compiler.stabilization_bound pi in
           let ok = Solve.ftss_solves spec ~stabilization:bound trace in
           let completed, agreeing =
             Repeated.count_agreeing_iterations trace ~faulty:(Faults.faulty faults)
               ~valid
           in
           let detail =
             Format.asprintf
               "ftss_solves Σ⁺ stabilization=%d: %b (final_round %d, iterations %d, agreeing %d)"
               bound ok final_round completed agreeing
           in
           { ok; detail })
      in
      { fingerprint = trace_fingerprint trace; states = n * rounds; verdict }
    in
    if suspect_filter then compile_and_run (Omission_consensus.make ~n ~f ~propose)
    else compile_and_run (Flooding_consensus.make ~f ~propose)
  in
  {
    name = "theorem4";
    inject = (if suspect_filter then "none" else "no-suspect-filter");
    restrict = no_restrict;
    run;
  }

(* --- Theorem 5: the Figure 4 transform, on the asynchronous simulator --- *)

let theorem5 () =
  let gst = 300 in
  let run (case : S.t) =
    let open Ftss_async in
    let { S.n; rounds; _ } = case.S.params in
    if not (S.crash_only case) then
      invalid_arg "Property.theorem5: schedule has non-crash behaviours";
    (* A crash at synchronous round r maps to simulated time 100·r, so
       every enumerated crash lands before GST — the adversarial window. *)
    let crashes = List.map (fun (p, r) -> (p, 100 * r)) (S.crashes case) in
    let config =
      {
        (Sim.default_config ~n ~seed:1) with
        Sim.gst;
        horizon = 2500;
        tick_interval = 10;
        delay_before_gst = (1, 80);
        delay_after_gst = (1, 5);
        crashes;
      }
    in
    let crashed p = List.assoc_opt p crashes in
    let trusted =
      match List.find_opt (fun p -> crashed p = None) (Pid.all n) with
      | Some p -> p
      | None -> assert false (* f < n leaves a correct process *)
    in
    let oracle = Ewfd.make (Rng.create 2) ~n ~crashed ~gst ~trusted ~noise:0.3 in
    let corrupt =
      (* Canonical corruption classes realised through the detector's own
         corruption shape: the counter magnitude distribution. *)
      match case.S.corruption with
      | S.Clean -> None
      | S.Zero -> Some (Esfd.corrupt (Rng.create 11) ~num_bound:1)
      | S.Max -> Some (Esfd.corrupt (Rng.create 13) ~num_bound:1_000_000)
      | S.Parked k -> Some (Esfd.corrupt (Rng.create 17) ~num_bound:(k + 1))
      | S.Distinct -> Some (Esfd.corrupt (Rng.create 19) ~num_bound:997)
    in
    let corrupt = Option.map (fun c (_ : Pid.t) t -> c t) corrupt in
    let result = Sim.run ?corrupt config (Esfd.process ~n ~oracle ()) in
    let report = Esfd.analyze result ~config ~trusted in
    ignore rounds;
    {
      fingerprint =
        fingerprint (report, result.Sim.delivered, result.Sim.end_time, result.Sim.log);
      states = n * (config.Sim.horizon / config.Sim.tick_interval);
      verdict =
        lazy
          (let show = function Some t -> string_of_int t | None -> "none" in
           let ok = report.Esfd.convergence_time <> None in
           let detail =
             Format.asprintf
               "◇S convergence: %s (completeness %s, accuracy %s, %d delivered)"
               (show report.Esfd.convergence_time)
               (show report.Esfd.completeness_from)
               (show report.Esfd.accuracy_from) result.Sim.delivered
           in
           { ok; detail });
    }
  in
  {
    name = "theorem5";
    inject = "none";
    restrict = (fun params -> { params with S.intervals = false; drops = false });
    run;
  }

let known =
  [
    ("theorem3", "none");
    ("theorem3", "frozen-exchange");
    ("theorem4", "none");
    ("theorem4", "no-suspect-filter");
    ("theorem5", "none");
  ]

let find ~name ~inject =
  match (name, inject) with
  | "theorem3", "none" -> Ok (theorem3 ())
  | "theorem3", "frozen-exchange" -> Ok (theorem3 ~inject:`Frozen_exchange ())
  | "theorem4", "none" -> Ok (theorem4 ())
  | "theorem4", "no-suspect-filter" -> Ok (theorem4 ~suspect_filter:false ())
  | "theorem5", "none" -> Ok (theorem5 ())
  | _ ->
    Error
      (Printf.sprintf "unknown property/injection %s/%s (known: %s)" name inject
         (String.concat ", "
            (List.map (fun (p, i) -> Printf.sprintf "%s/%s" p i) known)))

let fails t case = not (Lazy.force (t.run case).verdict).ok
