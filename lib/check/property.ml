open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols
module S = Schedule_enum

type verdict = { ok : bool; detail : string }

type run = {
  fingerprint : string;
  states : int;
  signature : int array Lazy.t;
  verdict : verdict Lazy.t;
}

(* The adversary interface the theorem runners actually consume: a
   compiled fault schedule plus the two corruption views (raw integer
   rewriting for the synchronous theorems, a magnitude bound for the
   asynchronous detector). [Schedule_enum.t] cases compile into this via
   {!adversary_of_case}; the fuzzer's richer genomes compile into it
   directly, so both front-ends share one evaluator per theorem. *)
type adversary = {
  adv_n : int;
  adv_rounds : int;
  adv_f : int;
  adv_faults : Faults.t;
  adv_corrupt_int : Pid.t -> int -> int;
  adv_corrupt_bound : (int * int) option;
  adv_crashes : (Pid.t * int) list;
  adv_crash_only : bool;
}

type t = {
  name : string;
  inject : string;
  restrict : S.params -> S.params;
  run_adv : ?obs:Ftss_obs.Obs.t -> adversary -> run;
  run : ?obs:Ftss_obs.Obs.t -> S.t -> run;
}

(* A content digest; equal digests imply equal recorded executions, hence
   equal verdicts (every predicate below is a pure function of the
   execution). Trace-based properties read the 62-bit content hash the
   runner streams as the trace is built ({!Trace.hash}) — no [Marshal]
   serialisation, no [Digest] pass, no per-run allocation beyond the hex
   rendering. Composite results (theorem 5) get the same two-stream
   structural hash applied directly. *)
let trace_fingerprint trace = Printf.sprintf "%016x" (Trace.hash trace)

let fingerprint v =
  Printf.sprintf "%08x-%08x"
    (Hashtbl.seeded_hash_param max_int 256 0x1796 v)
    (Hashtbl.seeded_hash_param max_int 256 0x9e37 v)

let no_restrict (params : S.params) = params

(* The (rng seed, num_bound) pair theorem 5 realises each canonical
   corruption class with. Part of the case→adversary compilation so the
   fingerprint of an enumerated case is identical through either
   front-end. *)
let corrupt_bound_of_class = function
  | S.Clean -> None
  | S.Zero -> Some (11, 1)
  | S.Max -> Some (13, 1_000_000)
  | S.Parked k -> Some (17, k + 1)
  | S.Distinct -> Some (19, 997)

let adversary_of_case (case : S.t) =
  let { S.n; rounds; f; _ } = case.S.params in
  {
    adv_n = n;
    adv_rounds = rounds;
    adv_f = f;
    adv_faults = S.to_faults case;
    adv_corrupt_int = S.corrupt_int case.S.corruption;
    adv_corrupt_bound = corrupt_bound_of_class case.S.corruption;
    adv_crashes = S.crashes case;
    adv_crash_only = S.crash_only case;
  }

let make ~name ~inject ~restrict run_adv =
  {
    name;
    inject;
    restrict;
    run_adv;
    run = (fun ?obs case -> run_adv ?obs (adversary_of_case case));
  }

(* --- Theorem 3: Figure 1 round agreement --- *)

let theorem3 ?(inject = `None) () =
  let protocol, inject_name =
    match inject with
    | `None -> (Round_agreement.protocol, "none")
    | `Frozen_exchange ->
      (* The exchange is severed: a process ignores every delivery and
         counts on its own. Distinct corrupted round variables then never
         reconcile — the mechanism Theorem 3 rests on, removed. *)
      ( {
          Round_agreement.protocol with
          Protocol.name = "round-agreement!frozen-exchange";
          step = (fun _ c _ -> c + 1);
        },
        "frozen-exchange" )
  in
  let run_adv ?obs adv =
    let rounds = adv.adv_rounds in
    let trace =
      Runner.run ?obs ~corrupt:adv.adv_corrupt_int ~faults:adv.adv_faults ~rounds
        protocol
    in
    (match obs with
    | Some o ->
      Ftss_obs.Obs.emit_windows o
        (Solve.measured_per_window Round_agreement.spec trace)
    | None -> ());
    {
      fingerprint = trace_fingerprint trace;
      states = adv.adv_n * rounds;
      signature = lazy (Trace.round_signature ~project:(fun _ c -> c) trace);
      verdict =
        lazy
          (let stab = Round_agreement.stabilization_time in
           let ok = Solve.ftss_solves Round_agreement.spec ~stabilization:stab trace in
           let detail =
             Format.asprintf
               "ftss_solves %s stabilization=%d: %b (measured %d over %d stable windows, %d omissions)"
               Round_agreement.spec.Spec.name stab ok
               (Solve.measured_stabilization Round_agreement.spec trace)
               (List.length (Solve.stable_windows trace))
               (List.length trace.Trace.omissions)
           in
           { ok; detail });
    }
  in
  make ~name:"theorem3" ~inject:inject_name ~restrict:no_restrict run_adv

(* --- Theorem 4: the Figure 3 compiler --- *)

let theorem4 ?(suspect_filter = true) () =
  let run_adv ?obs adv =
    let n = adv.adv_n and rounds = adv.adv_rounds and f = adv.adv_f in
    let propose p = 50 + p in
    (* With the filter on, Π is the intended compiler input under general
       omission (suspect-filtered, f+2 rounds). The ablated variant feeds
       the compiler *plain* flooding instead, as E8a does: omission
       consensus's internal distrust would mask the removed filter. *)
    let faults = adv.adv_faults in
    (* The trace's type depends on Π's state type, so everything derived
       from it — fingerprint, signature and verdict — is computed inside
       this polymorphic helper; only monomorphic values escape. *)
    let compile_and_run pi =
      let compiled = Compiler.compile ~suspect_filter ~n pi in
      let corrupt p (st : _ Compiler.state) =
        { st with Compiler.c = adv.adv_corrupt_int p st.Compiler.c }
      in
      let trace = Runner.run ?obs ~corrupt ~faults ~rounds compiled in
      let final_round = pi.Canonical.final_round in
      (match obs with
      | Some o ->
        let valid d = d >= 50 && d < 50 + n in
        let spec = Repeated.round_and_sigma ~final_round ~valid () in
        Ftss_obs.Obs.emit_windows o (Solve.measured_per_window spec trace)
      | None -> ());
      let verdict =
        lazy
          (let valid d = d >= 50 && d < 50 + n in
           let spec = Repeated.round_and_sigma ~final_round ~valid () in
           let bound = Compiler.stabilization_bound pi in
           let ok = Solve.ftss_solves spec ~stabilization:bound trace in
           let completed, agreeing =
             Repeated.count_agreeing_iterations trace ~faulty:(Faults.faulty faults)
               ~valid
           in
           let detail =
             Format.asprintf
               "ftss_solves Σ⁺ stabilization=%d: %b (final_round %d, iterations %d, agreeing %d)"
               bound ok final_round completed agreeing
           in
           { ok; detail })
      in
      let signature =
        (* The observable registers of Π⁺: where the round variable sits
           in its protocol phase, whom the process distrusts, and the two
           output registers. The unbounded c is normalized first so two
           rounds in the same phase of different iterations coincide. *)
        lazy
          (Trace.round_signature
             ~project:(fun _ (st : _ Compiler.state) ->
               Hashtbl.hash
                 ( Compiler.normalize ~final_round st.Compiler.c,
                   st.Compiler.suspects,
                   st.Compiler.last_decision,
                   st.Compiler.completed ))
             trace)
      in
      { fingerprint = trace_fingerprint trace; states = n * rounds; signature; verdict }
    in
    if suspect_filter then compile_and_run (Omission_consensus.make ~n ~f ~propose)
    else compile_and_run (Flooding_consensus.make ~f ~propose)
  in
  make ~name:"theorem4"
    ~inject:(if suspect_filter then "none" else "no-suspect-filter")
    ~restrict:no_restrict run_adv

(* --- Theorem 5: the Figure 4 transform, on the asynchronous simulator --- *)

let theorem5 () =
  let gst = 300 in
  let run_adv ?obs adv =
    let open Ftss_async in
    let n = adv.adv_n in
    if not adv.adv_crash_only then
      invalid_arg "Property.theorem5: schedule has non-crash behaviours";
    (* A crash at synchronous round r maps to simulated time 100·r, so
       every enumerated crash lands before GST — the adversarial window. *)
    let crashes = List.map (fun (p, r) -> (p, 100 * r)) adv.adv_crashes in
    let config =
      {
        (Sim.default_config ~n ~seed:1) with
        Sim.gst;
        horizon = 2500;
        tick_interval = 10;
        delay_before_gst = (1, 80);
        delay_after_gst = (1, 5);
        crashes;
      }
    in
    let crashed p = List.assoc_opt p crashes in
    let trusted =
      match List.find_opt (fun p -> crashed p = None) (Pid.all n) with
      | Some p -> p
      | None -> assert false (* f < n leaves a correct process *)
    in
    let oracle = Ewfd.make (Rng.create 2) ~n ~crashed ~gst ~trusted ~noise:0.3 in
    let corrupt =
      (* Corruption realised through the detector's own corruption shape:
         the counter magnitude distribution, parameterised by the
         adversary's (seed, bound) pair. *)
      Option.map
        (fun (seed, num_bound) -> Esfd.corrupt (Rng.create seed) ~num_bound)
        adv.adv_corrupt_bound
    in
    let corrupt = Option.map (fun c (_ : Pid.t) t -> c t) corrupt in
    let result = Sim.run ?obs ?corrupt config (Esfd.process ?obs ~n ~oracle ()) in
    let report = Esfd.analyze result ~config ~trusted in
    (match (obs, report.Esfd.convergence_time) with
    | Some o, Some t ->
      Ftss_obs.Obs.emit_windows o [ ((0, result.Sim.end_time), t) ]
    | _ -> ());
    {
      fingerprint =
        fingerprint (report, result.Sim.delivered, result.Sim.end_time, result.Sim.log);
      states = n * (config.Sim.horizon / config.Sim.tick_interval);
      signature =
        (* No per-round trace exists here; the coverage signal is the
           coarse convergence profile of the run. *)
        lazy
          [|
            Hashtbl.seeded_hash_param max_int 256 0x1796
              (report.Esfd.completeness_from, report.Esfd.accuracy_from);
            Hashtbl.seeded_hash_param max_int 256 0x9e37
              (report.Esfd.convergence_time, result.Sim.delivered);
          |];
      verdict =
        lazy
          (let show = function Some t -> string_of_int t | None -> "none" in
           let ok = report.Esfd.convergence_time <> None in
           let detail =
             Format.asprintf
               "◇S convergence: %s (completeness %s, accuracy %s, %d delivered)"
               (show report.Esfd.convergence_time)
               (show report.Esfd.completeness_from)
               (show report.Esfd.accuracy_from) result.Sim.delivered
           in
           { ok; detail });
    }
  in
  make ~name:"theorem5" ~inject:"none"
    ~restrict:(fun params -> { params with S.intervals = false; drops = false })
    run_adv

let known =
  [
    ("theorem3", "none");
    ("theorem3", "frozen-exchange");
    ("theorem4", "none");
    ("theorem4", "no-suspect-filter");
    ("theorem5", "none");
  ]

let find ~name ~inject =
  match (name, inject) with
  | "theorem3", "none" -> Ok (theorem3 ())
  | "theorem3", "frozen-exchange" -> Ok (theorem3 ~inject:`Frozen_exchange ())
  | "theorem4", "none" -> Ok (theorem4 ())
  | "theorem4", "no-suspect-filter" -> Ok (theorem4 ~suspect_filter:false ())
  | "theorem5", "none" -> Ok (theorem5 ())
  | _ ->
    Error
      (Printf.sprintf "unknown property/injection %s/%s (known: %s)" name inject
         (String.concat ", "
            (List.map (fun (p, i) -> Printf.sprintf "%s/%s" p i) known)))

let fails t case = not (Lazy.force (t.run case).verdict).ok
