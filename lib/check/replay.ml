module S = Schedule_enum

type t = { property : string; inject : string; case : S.t }

(* --- a minimal S-expression layer, shared with ftss_fuzz's corpus files --- *)

module Sexp = struct
  type t = Atom of string | List of t list

  let rec pp ppf = function
    | Atom a -> Format.pp_print_string ppf a
    | List xs ->
      Format.fprintf ppf "(@[<hv>";
      List.iteri
        (fun i x ->
          if i > 0 then Format.fprintf ppf "@ ";
          pp ppf x)
        xs;
      Format.fprintf ppf "@])"

  let parse (s : string) : (t, string) result =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while peek () <> None && peek () <> Some '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    let is_atom_char = function
      | '(' | ')' | ' ' | '\t' | '\n' | '\r' | ';' -> false
      | _ -> true
    in
    while (match peek () with Some c -> is_atom_char c | None -> false) do
      advance ()
    done;
    String.sub s start (!pos - start)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> Error "unexpected end of input"
    | Some '(' ->
      advance ();
      let rec items acc =
        skip_ws ();
        match peek () with
        | Some ')' ->
          advance ();
          Ok (List (List.rev acc))
        | None -> Error "unclosed parenthesis"
        | Some _ -> (
          match value () with Ok v -> items (v :: acc) | Error _ as e -> e)
      in
      items []
    | Some ')' -> Error "unexpected ')'"
    | Some _ ->
      let a = atom () in
      if a = "" then Error "empty atom" else Ok (Atom a)
  in
  match value () with
    | Error _ as e -> e
    | Ok v ->
      skip_ws ();
      if !pos = len then Ok v else Error "trailing input after the document"
end

open Sexp

let pp_sexp = Sexp.pp
let parse_sexp = Sexp.parse

(* --- writing --- *)

let sexp_int label i = List [ Atom label; Atom (string_of_int i) ]
let sexp_bool label b = List [ Atom label; Atom (string_of_bool b) ]

let sexp_of_behavior (pid, behavior) =
  match behavior with
  | S.Crash r -> List [ Atom "crash"; sexp_int "pid" pid; sexp_int "round" r ]
  | S.Mute (a, b) ->
    List [ Atom "mute"; sexp_int "pid" pid; sexp_int "first" a; sexp_int "last" b ]
  | S.Deaf (a, b) ->
    List [ Atom "deaf"; sexp_int "pid" pid; sexp_int "first" a; sexp_int "last" b ]
  | S.Isolate (a, b) ->
    List [ Atom "isolate"; sexp_int "pid" pid; sexp_int "first" a; sexp_int "last" b ]
  | S.Send_drop (r, dst) ->
    List [ Atom "send-drop"; sexp_int "pid" pid; sexp_int "round" r; sexp_int "dst" dst ]
  | S.Recv_drop (r, src) ->
    List [ Atom "recv-drop"; sexp_int "pid" pid; sexp_int "round" r; sexp_int "src" src ]

let sexp_of_corruption = function
  | S.Clean -> Atom "clean"
  | S.Zero -> Atom "zero"
  | S.Max -> Atom "max"
  | S.Parked k -> List [ Atom "parked"; Atom (string_of_int k) ]
  | S.Distinct -> Atom "distinct"

let to_sexp t =
  let { S.n; rounds; f; intervals; drops } = t.case.S.params in
  List
    [
      Atom "ftss-counterexample";
      sexp_int "version" 1;
      List [ Atom "property"; Atom t.property ];
      List [ Atom "inject"; Atom t.inject ];
      List
        [
          Atom "params";
          sexp_int "n" n;
          sexp_int "rounds" rounds;
          sexp_int "f" f;
          sexp_bool "intervals" intervals;
          sexp_bool "drops" drops;
        ];
      List [ Atom "corruption"; sexp_of_corruption t.case.S.corruption ];
      List (Atom "schedule" :: List.map sexp_of_behavior t.case.S.behaviors);
    ]

let to_string t = Format.asprintf "%a@." pp_sexp (to_sexp t)

(* --- reading --- *)

let ( let* ) = Result.bind

let field name = function
  | List (Atom tag :: rest) when tag = name -> Some rest
  | _ -> None

let find_field name items =
  match List.find_map (field name) items with
  | Some rest -> Ok rest
  | None -> Error (Printf.sprintf "missing (%s ...) clause" name)

let as_int label = function
  | [ Atom v ] -> (
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "(%s %s): not an integer" label v))
  | _ -> Error (Printf.sprintf "(%s ...): expected a single integer" label)

let as_bool label = function
  | [ Atom v ] -> (
    match bool_of_string_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "(%s %s): not a boolean" label v))
  | _ -> Error (Printf.sprintf "(%s ...): expected a single boolean" label)

let as_atom label = function
  | [ Atom v ] -> Ok v
  | _ -> Error (Printf.sprintf "(%s ...): expected a single atom" label)

let int_field name items =
  let* rest = find_field name items in
  as_int name rest

let behavior_of_sexp = function
  | List (Atom kind :: fields) -> (
    let* pid = int_field "pid" fields in
    match kind with
    | "crash" ->
      let* r = int_field "round" fields in
      Ok (pid, S.Crash r)
    | "mute" | "deaf" | "isolate" ->
      let* a = int_field "first" fields in
      let* b = int_field "last" fields in
      Ok
        ( pid,
          match kind with
          | "mute" -> S.Mute (a, b)
          | "deaf" -> S.Deaf (a, b)
          | _ -> S.Isolate (a, b) )
    | "send-drop" ->
      let* r = int_field "round" fields in
      let* dst = int_field "dst" fields in
      Ok (pid, S.Send_drop (r, dst))
    | "recv-drop" ->
      let* r = int_field "round" fields in
      let* src = int_field "src" fields in
      Ok (pid, S.Recv_drop (r, src))
    | _ -> Error (Printf.sprintf "unknown behaviour kind %s" kind))
  | _ -> Error "malformed schedule entry"

let corruption_of_sexp = function
  | [ Atom "clean" ] -> Ok S.Clean
  | [ Atom "zero" ] -> Ok S.Zero
  | [ Atom "max" ] -> Ok S.Max
  | [ Atom "distinct" ] -> Ok S.Distinct
  | [ List [ Atom "parked"; Atom k ] ] -> (
    match int_of_string_opt k with
    | Some k -> Ok (S.Parked k)
    | None -> Error "(parked ...): not an integer")
  | _ -> Error "malformed (corruption ...) clause"

let rec collect_behaviors = function
  | [] -> Ok []
  | x :: rest ->
    let* b = behavior_of_sexp x in
    let* bs = collect_behaviors rest in
    Ok (b :: bs)

let check_case (case : S.t) =
  let { S.n; rounds; f; _ } = case.S.params in
  let* () =
    try
      S.validate case.S.params;
      Ok ()
    with Invalid_argument m -> Error m
  in
  let valid_round r = 1 <= r && r <= rounds in
  let check_behavior (pid, b) =
    if not (Ftss_util.Pid.is_valid ~n pid) then
      Error (Printf.sprintf "pid %d out of range for n=%d" pid n)
    else
      let ok =
        match b with
        | S.Crash r -> valid_round r
        | S.Mute (a, b) | S.Deaf (a, b) | S.Isolate (a, b) ->
          valid_round a && valid_round b && a <= b
        | S.Send_drop (r, other) | S.Recv_drop (r, other) ->
          valid_round r && Ftss_util.Pid.is_valid ~n other && other <> pid
      in
      if ok then Ok () else Error "behaviour has out-of-range rounds or pids"
  in
  let rec check_all = function
    | [] -> Ok ()
    | b :: rest ->
      let* () = check_behavior b in
      check_all rest
  in
  let* () = check_all case.S.behaviors in
  let pids = List.map fst case.S.behaviors in
  if List.length (List.sort_uniq compare pids) <> List.length pids then
    Error "schedule assigns two behaviours to one pid"
  else if List.length pids > f then
    Error (Printf.sprintf "schedule touches %d processes, budget f=%d" (List.length pids) f)
  else Ok case

let of_string s =
  let* sexp = parse_sexp s in
  match sexp with
  | List (Atom "ftss-counterexample" :: items) ->
    let* version = int_field "version" items in
    if version <> 1 then Error (Printf.sprintf "unsupported version %d" version)
    else
      let* property =
        let* rest = find_field "property" items in
        as_atom "property" rest
      in
      let* inject =
        let* rest = find_field "inject" items in
        as_atom "inject" rest
      in
      let* param_fields = find_field "params" items in
      let* n = int_field "n" param_fields in
      let* rounds = int_field "rounds" param_fields in
      let* f = int_field "f" param_fields in
      let* intervals =
        let* rest = find_field "intervals" param_fields in
        as_bool "intervals" rest
      in
      let* drops =
        let* rest = find_field "drops" param_fields in
        as_bool "drops" rest
      in
      let* corruption =
        let* rest = find_field "corruption" items in
        corruption_of_sexp rest
      in
      let* behaviors =
        let* rest = find_field "schedule" items in
        collect_behaviors rest
      in
      let* case =
        check_case
          { S.params = { S.n; rounds; f; intervals; drops }; behaviors; corruption }
      in
      let* _ = Property.find ~name:property ~inject in
      Ok { property; inject; case }
  | _ -> Error "not an (ftss-counterexample ...) document"

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string t))

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        of_string s)

let replay ?obs t =
  let* property = Property.find ~name:t.property ~inject:t.inject in
  Ok (Lazy.force (property.Property.run ?obs t.case).Property.verdict)
