open Ftss_util

type ('s, 'm) round_record = {
  round : int;
  states_before : 's option array;
  sent : 'm option array;
  delivered : 'm Protocol.delivery list array;
  states_after : 's option array;
}

type ('s, 'm) t = {
  n : int;
  protocol_name : string;
  records : ('s, 'm) round_record array;
  crashed_at : int option array;
  omissions : (int * Pid.t * Pid.t) list;
  declared_faulty : Pidset.t;
  hash : int;
}

(* Content hashing. Two independently seeded structural-hash streams are
   mixed into one 62-bit word: a single [Hashtbl.seeded_hash] yields only
   ~30 bits, far too few for the checker's multi-million-case dedup
   (birthday collisions would silently merge distinct executions). The
   multiplier is an odd splitmix64-style constant that fits OCaml's
   63-bit int. *)
let mix h x =
  let h = (h lxor x) * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

(* The count budget must exceed any value we hash — truncation would hash
   distinct structures equal by design, not by accident. *)
let fold_value acc v =
  mix
    (mix acc (Hashtbl.seeded_hash_param max_int 256 0x1796 v))
    (Hashtbl.seeded_hash_param max_int 256 0x9e37 v)

let compute_hash ~state_rounds ~records ~n ~protocol_name ~crashed_at ~omissions
    ~declared_faulty =
  let len = Array.length records in
  let acc =
    List.fold_left
      (fun acc r ->
        if r < 1 || r > len then
          invalid_arg (Printf.sprintf "Trace.compute_hash: round %d outside 1..%d" r len);
        fold_value acc records.(r - 1).states_before)
      0x0FC935EED state_rounds
  in
  fold_value acc (n, protocol_name, len, crashed_at, omissions, declared_faulty)

let hash t = t.hash

let round_signature ~project t =
  Array.map
    (fun r ->
      let acc = ref (mix 0x51C0B5EE r.round) in
      Array.iteri
        (fun p st ->
          acc :=
            (match st with
            | None -> mix !acc (-1) (* crashed: no observable state *)
            | Some s -> fold_value !acc (project p s)))
        r.states_after;
      !acc)
    t.records

let length t = Array.length t.records

let check_round t round =
  if round < 1 || round > length t then
    invalid_arg (Printf.sprintf "Trace: round %d outside 1..%d" round (length t))

let record t ~round =
  check_round t round;
  t.records.(round - 1)

let state_before t ~round p = (record t ~round).states_before.(p)
let state_after t ~round p = (record t ~round).states_after.(p)

let correct t = Pidset.diff (Pidset.full t.n) t.declared_faulty

let crashed t = Pidset.of_pred t.n (fun p -> Option.is_some t.crashed_at.(p))

let blames_declared t =
  Pidset.subset (crashed t) t.declared_faulty
  && List.for_all
       (fun (_, src, dst) ->
         Pidset.mem src t.declared_faulty || Pidset.mem dst t.declared_faulty)
       t.omissions

let alive t ~round p =
  match t.crashed_at.(p) with None -> true | Some r -> round < r

let sub t ~first ~last =
  check_round t first;
  check_round t last;
  if first > last then invalid_arg "Trace.sub: empty interval";
  let records =
    Array.init
      (last - first + 1)
      (fun i ->
        let r = t.records.(first - 1 + i) in
        { r with round = i + 1 })
  in
  let crashed_at =
    Array.map
      (fun cr ->
        match cr with
        | None -> None
        | Some r when r > last -> None
        | Some r -> Some (max 1 (r - first + 1)))
      t.crashed_at
  in
  let omissions =
    List.filter_map
      (fun (r, src, dst) ->
        if first <= r && r <= last then Some (r - first + 1, src, dst) else None)
      t.omissions
  in
  let hash =
    (* A window may start or end mid-corruption, so every entering state
       vector is treated as a generator — sound whatever the original
       execution did, at a cost only this cold path pays. *)
    compute_hash
      ~state_rounds:(List.init (Array.length records) (fun i -> i + 1))
      ~records ~n:t.n ~protocol_name:t.protocol_name ~crashed_at ~omissions
      ~declared_faulty:t.declared_faulty
  in
  { t with records; crashed_at; omissions; hash }

let pp_summary ppf t =
  Format.fprintf ppf "%s: n=%d rounds=%d faulty=%a omissions=%d" t.protocol_name
    t.n (length t) Pidset.pp t.declared_faulty
    (List.length t.omissions)

let pp_rounds pp_state ppf t =
  let pp_process record ppf p =
    match record.states_before.(p) with
    | None -> Format.fprintf ppf "%a:!" Pid.pp p
    | Some s ->
      let senders =
        List.map (fun { Protocol.src; _ } -> src) record.delivered.(p)
      in
      Format.fprintf ppf "%a:%a<-%a" Pid.pp p pp_state s Pidset.pp
        (Pidset.of_list senders)
  in
  let pp_round record =
    Format.fprintf ppf "@[<h>r%-3d " record.round;
    List.iter
      (fun p -> Format.fprintf ppf "%a  " (pp_process record) p)
      (Pid.all t.n);
    Format.fprintf ppf "@]@\n"
  in
  Array.iter pp_round t.records
