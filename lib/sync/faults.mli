(** Process-failure schedules for the synchronous simulator.

    The paper (§2) admits process failures of the {e general omission} type:
    crashes, send omissions and receive omissions. A schedule fixes, ahead of
    the execution, which failures the adversary injects in which round. The
    schedule also declares the set of faulty processes; {!Runner} records
    every injected failure in the trace so the declaration can be audited
    against what actually happened (see {!val:consistent}). *)

open Ftss_util

(** A single adversarial event. Rounds are 1-based actual round numbers. *)
type event =
  | Crash of { pid : Pid.t; round : int }
      (** [pid] takes no action in [round] or any later round. *)
  | Drop of { src : Pid.t; dst : Pid.t; round : int }
      (** The message [src -> dst] of [round] is omitted. *)
  | Mute of { pid : Pid.t; first : int; last : int }
      (** All messages sent by [pid] to other processes in rounds
          [first..last] are omitted (send omission). *)
  | Deaf of { pid : Pid.t; first : int; last : int }
      (** All messages addressed to [pid] from other processes in rounds
          [first..last] are omitted (receive omission). *)
  | Isolate of { pid : Pid.t; first : int; last : int }
      (** [Mute] and [Deaf] combined: general omission. *)
  | Blame of { pid : Pid.t }
      (** Declare [pid] faulty without scheduling any misbehaviour. Used
          when the culprit of a point [Drop] is the {e receiver} (a
          receive omission): [of_events] alone would blame the sender, so
          a schedule charging the drop to its destination lists
          [Blame dst] ahead of the [Drop]. *)

type t

(** System size. *)
val n : t -> int

(** Declared upper bound [f] on the number of faulty processes. *)
val f : t -> int

(** Declared faulty set (every process touched by an event). *)
val faulty : t -> Pidset.t

(** Declared correct set: all pids not in [faulty]. *)
val correct : t -> Pidset.t

(** [crash_round t p] is the round in which [p] crashes, if any. *)
val crash_round : t -> Pid.t -> int option

(** [drops t ~round ~src ~dst] is true iff the adversary omits the
    [src -> dst] message of [round]. Self-messages are never dropped
    (paper footnote 1). *)
val drops : t -> round:int -> src:Pid.t -> dst:Pid.t -> bool

(** {2 Precompiled drop tables}

    [drops] answers one query by a hash probe plus two interval-list
    scans; the runner instead asks once for the whole horizon and gets
    per-round bitmask rows, making each inner-loop query a few integer
    instructions. Semantically [table_drops (precompile t ~rounds)] and
    [drops t] agree on every [round <= rounds]. *)

type table

(** [precompile t ~rounds] builds the O(1) drop table for rounds
    [1..rounds]. Raises [Invalid_argument] if [rounds < 0]. Systems of up
    to 62 processes get single-int rows (the historic fast path); larger
    systems get multi-word rows, still a few integer tests per query. *)
val precompile : t -> rounds:int -> table

(** [table_drops tbl ~round ~src ~dst] — as {!drops}, in O(1); [round]
    must be within the horizon [precompile] was given. *)
val table_drops : table -> round:int -> src:Pid.t -> dst:Pid.t -> bool

(** [quiet_round tbl ~round] is true iff no omission of any kind is
    scheduled in [round] — every sent message is delivered, so a runner
    can build one delivery list and share it among all receivers. *)
val quiet_round : table -> round:int -> bool

(** [none n] is the failure-free schedule. *)
val none : int -> t

(** [of_events ~n events] compiles an event list. Raises [Invalid_argument]
    on pids outside [0..n-1] or empty/negative round ranges. *)
val of_events : n:int -> event list -> t

(** [random_omission rng ~n ~f ~p_drop ~rounds] draws [f] distinct faulty
    processes and, independently for each round and each directed link with
    a faulty endpoint, omits the message with probability [p_drop].
    Links between two correct processes are always reliable. *)
val random_omission : Rng.t -> n:int -> f:int -> p_drop:float -> rounds:int -> t

(** [random_crashes rng ~n ~f ~rounds] draws [f] distinct processes and
    crashes each at a uniformly random round in [1..rounds]. *)
val random_crashes : Rng.t -> n:int -> f:int -> rounds:int -> t

(** [rolling_mute ~n ~victim ~period ~rounds] mutes [victim] on an
    on/off cadence: silent for [period] rounds, talking for [period]
    rounds, repeating until [rounds]. Every reveal is a destabilizing
    event (the victim re-enters the coterie), so a history under this
    schedule alternates coterie-stable windows with destabilizations —
    the repeated-piece-wise-stability stress. *)
val rolling_mute : n:int -> victim:Pid.t -> period:int -> rounds:int -> t

(** [consistent t ~observed] checks that a set of processes observed to
    misbehave in a trace is covered by the declared faulty set. *)
val consistent : t -> observed:Pidset.t -> bool

(** [blame t ~src ~dst] is the declared-faulty endpoint charged with an
    omission on the [src -> dst] link, preferring the sender when both
    are declared (mirroring the ambiguity rule of {!of_events}). [None]
    when neither endpoint is declared faulty — a schedule inconsistent
    with its own blame obligation. Used to annotate drop events in the
    observability stream. *)
val blame : t -> src:Pid.t -> dst:Pid.t -> Pid.t option

val pp : Format.formatter -> t -> unit
