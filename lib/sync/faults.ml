open Ftss_util

type event =
  | Crash of { pid : Pid.t; round : int }
  | Drop of { src : Pid.t; dst : Pid.t; round : int }
  | Mute of { pid : Pid.t; first : int; last : int }
  | Deaf of { pid : Pid.t; first : int; last : int }
  | Isolate of { pid : Pid.t; first : int; last : int }
  | Blame of { pid : Pid.t }

type t = {
  n : int;
  faulty : Pidset.t;
  crash : int option array; (* pid -> crash round *)
  point_drops : (int * Pid.t * Pid.t, unit) Hashtbl.t;
  mute : (int * int) list array; (* pid -> send-omission intervals *)
  deaf : (int * int) list array; (* pid -> receive-omission intervals *)
}

let n t = t.n
let faulty t = t.faulty
let f t = Pidset.cardinal t.faulty
let correct t = Pidset.diff (Pidset.full t.n) t.faulty
let crash_round t p = t.crash.(p)

let in_interval round (first, last) = first <= round && round <= last

let drops t ~round ~src ~dst =
  if Pid.equal src dst then false
  else
    Hashtbl.mem t.point_drops (round, src, dst)
    || List.exists (in_interval round) t.mute.(src)
    || List.exists (in_interval round) t.deaf.(dst)

(* Precompiled drop tables: one bitmask row per round. [drops] above is
   the reference semantics; the runner asks for the whole horizon up
   front so its inner delivery loop does integer tests instead of
   [Hashtbl.mem] plus two [List.exists] interval scans per link.

   Two row layouts, chosen by system size: up to 62 processes a row is a
   single int (the historic fast path, one shift-and-test per query);
   beyond that each row is a run of 32-bit words, still a few integer
   instructions per query. The 32-bit packing is private to this module
   and unrelated to [Pidset]'s layout — it exists so word and bit indices
   are shifts and masks rather than divisions. *)
type table =
  | All_quiet  (* no omission scheduled anywhere in the horizon *)
  | Rows of {
      tn : int;
      muted : int array;  (* round -> bitmask of pids send-omitting that round *)
      deafened : int array;  (* round -> bitmask of pids receive-omitting *)
      point : int array;  (* round * tn + src -> bitmask of dsts point-dropped *)
      quiet : bool array;  (* round -> no drop of any kind scheduled *)
    }
  | Wide_rows of {
      tn : int;
      words : int;  (* 32-bit words per pid row: (tn + 31) / 32 *)
      muted : int array;  (* (round * words + p lsr 5) bit (p land 31) *)
      deafened : int array;
      point : int array;  (* ((round * tn + src) * words + dst lsr 5) *)
      quiet : bool array;
    }

let one_word_cap = Pidset.max_small + 1

let precompile t ~rounds =
  if rounds < 0 then invalid_arg "Faults.precompile: negative rounds";
  if
    Hashtbl.length t.point_drops = 0
    && Array.for_all (fun l -> l = []) t.mute
    && Array.for_all (fun l -> l = []) t.deaf
  then All_quiet (* crash-only and failure-free schedules skip the rows *)
  else if t.n <= one_word_cap then begin
    let muted = Array.make (rounds + 1) 0 in
    let deafened = Array.make (rounds + 1) 0 in
    let point = Array.make ((rounds + 1) * max 1 t.n) 0 in
    let quiet = Array.make (rounds + 1) true in
    for p = 0 to t.n - 1 do
      let mark arr intervals =
        List.iter
          (fun (first, last) ->
            for r = max 1 first to min last rounds do
              arr.(r) <- arr.(r) lor (1 lsl p);
              quiet.(r) <- false
            done)
          intervals
      in
      mark muted t.mute.(p);
      mark deafened t.deaf.(p)
    done;
    Hashtbl.iter
      (fun (round, src, dst) () ->
        if 1 <= round && round <= rounds then begin
          let i = (round * t.n) + src in
          point.(i) <- point.(i) lor (1 lsl dst);
          quiet.(round) <- false
        end)
      t.point_drops;
    Rows { tn = t.n; muted; deafened; point; quiet }
  end
  else begin
    let words = (t.n + 31) / 32 in
    let muted = Array.make ((rounds + 1) * words) 0 in
    let deafened = Array.make ((rounds + 1) * words) 0 in
    let point = Array.make ((rounds + 1) * t.n * words) 0 in
    let quiet = Array.make (rounds + 1) true in
    let set arr row p =
      let i = (row * words) + (p lsr 5) in
      arr.(i) <- arr.(i) lor (1 lsl (p land 31))
    in
    for p = 0 to t.n - 1 do
      let mark arr intervals =
        List.iter
          (fun (first, last) ->
            for r = max 1 first to min last rounds do
              set arr r p;
              quiet.(r) <- false
            done)
          intervals
      in
      mark muted t.mute.(p);
      mark deafened t.deaf.(p)
    done;
    Hashtbl.iter
      (fun (round, src, dst) () ->
        if 1 <= round && round <= rounds then begin
          set point ((round * t.n) + src) dst;
          quiet.(round) <- false
        end)
      t.point_drops;
    Wide_rows { tn = t.n; words; muted; deafened; point; quiet }
  end

let quiet_round tbl ~round =
  match tbl with
  | All_quiet -> true
  | Rows r -> r.quiet.(round)
  | Wide_rows r -> r.quiet.(round)

let table_drops tbl ~round ~src ~dst =
  match tbl with
  | All_quiet -> false
  | Rows r ->
    src <> dst
    && ((r.muted.(round) lsr src) land 1)
       lor ((r.deafened.(round) lsr dst) land 1)
       lor ((r.point.((round * r.tn) + src) lsr dst) land 1)
       <> 0
  | Wide_rows r ->
    src <> dst
    && ((r.muted.((round * r.words) + (src lsr 5)) lsr (src land 31)) land 1)
       lor ((r.deafened.((round * r.words) + (dst lsr 5)) lsr (dst land 31)) land 1)
       lor
       ((r.point.((((round * r.tn) + src) * r.words) + (dst lsr 5)) lsr (dst land 31))
       land 1)
       <> 0

let none n =
  {
    n;
    faulty = Pidset.empty;
    crash = Array.make n None;
    point_drops = Hashtbl.create 1;
    mute = Array.make n [];
    deaf = Array.make n [];
  }

let check_pid ~n p =
  if not (Pid.is_valid ~n p) then
    invalid_arg (Format.asprintf "Faults: pid %a out of range for n=%d" Pid.pp p n)

let check_range first last =
  if first < 1 || last < first then invalid_arg "Faults: bad round interval"

let of_events ~n events =
  let t = none n in
  let faulty = ref Pidset.empty in
  let mark p = faulty := Pidset.add p !faulty in
  let absorb = function
    | Crash { pid; round } ->
      check_pid ~n pid;
      check_range round round;
      mark pid;
      let sooner =
        match t.crash.(pid) with None -> round | Some r -> min r round
      in
      t.crash.(pid) <- Some sooner
    | Drop { src; dst; round } ->
      check_pid ~n src;
      check_pid ~n dst;
      check_range round round;
      if Pid.equal src dst then invalid_arg "Faults: cannot drop a self-message";
      (* The culprit is ambiguous between a send and a receive omission; we
         conservatively declare both endpoints faulty only when neither is
         already declared, preferring the sender. *)
      if not (Pidset.mem src !faulty || Pidset.mem dst !faulty) then mark src;
      Hashtbl.replace t.point_drops (round, src, dst) ()
    | Mute { pid; first; last } ->
      check_pid ~n pid;
      check_range first last;
      mark pid;
      t.mute.(pid) <- (first, last) :: t.mute.(pid)
    | Deaf { pid; first; last } ->
      check_pid ~n pid;
      check_range first last;
      mark pid;
      t.deaf.(pid) <- (first, last) :: t.deaf.(pid)
    | Isolate { pid; first; last } ->
      check_pid ~n pid;
      check_range first last;
      mark pid;
      t.mute.(pid) <- (first, last) :: t.mute.(pid);
      t.deaf.(pid) <- (first, last) :: t.deaf.(pid)
    | Blame { pid } ->
      check_pid ~n pid;
      mark pid
  in
  List.iter absorb events;
  { t with faulty = !faulty }

let random_omission rng ~n ~f ~p_drop ~rounds =
  if f < 0 || f > n then invalid_arg "Faults.random_omission: f out of range";
  let chosen = Rng.sample rng f (Pid.all n) in
  let faulty = Pidset.of_list chosen in
  let t = { (none n) with faulty } in
  for round = 1 to rounds do
    List.iter
      (fun src ->
        List.iter
          (fun dst ->
            if
              (not (Pid.equal src dst))
              && (Pidset.mem src faulty || Pidset.mem dst faulty)
              && Rng.chance rng p_drop
            then Hashtbl.replace t.point_drops (round, src, dst) ())
          (Pid.all n))
      (Pid.all n)
  done;
  t

let random_crashes rng ~n ~f ~rounds =
  if f < 0 || f > n then invalid_arg "Faults.random_crashes: f out of range";
  let chosen = Rng.sample rng f (Pid.all n) in
  let events = List.map (fun pid -> Crash { pid; round = Rng.int_in rng 1 (max 1 rounds) }) chosen in
  of_events ~n events

let rolling_mute ~n ~victim ~period ~rounds =
  if period < 1 then invalid_arg "Faults.rolling_mute: period < 1";
  let rec windows start acc =
    if start > rounds then acc
    else
      let last = min rounds (start + period - 1) in
      windows (start + (2 * period)) (Mute { pid = victim; first = start; last } :: acc)
  in
  of_events ~n (windows 1 [])

let consistent t ~observed = Pidset.subset observed t.faulty

let blame t ~src ~dst =
  if Pidset.mem src t.faulty then Some src
  else if Pidset.mem dst t.faulty then Some dst
  else None

let pp ppf t =
  Format.fprintf ppf "@[<v>faults: n=%d f=%d faulty=%a@]" t.n (f t) Pidset.pp t.faulty
