(** Recorded execution histories (the paper's H, §2.1).

    A trace is the sequence of round histories of one execution: for every
    round, each process's state at the start of the round, the message it
    broadcast, the messages actually delivered to it, and its state at the
    end of the round. All of the paper's definitions (consistency,
    coteries, the ftss-solves predicate) are evaluated against traces. *)

open Ftss_util

type ('s, 'm) round_record = {
  round : int;  (** actual (external-observer) round number, 1-based *)
  states_before : 's option array;
      (** state of each process at the start of the round; [None] once the
          process has crashed *)
  sent : 'm option array;  (** broadcast of each process, [None] if crashed *)
  delivered : 'm Protocol.delivery list array;
      (** messages delivered to each process, ordered by sender pid *)
  states_after : 's option array;
      (** state at the end of the round (after the transition) *)
}

type ('s, 'm) t = {
  n : int;
  protocol_name : string;
  records : ('s, 'm) round_record array;  (** index [r-1] holds round [r] *)
  crashed_at : int option array;  (** pid -> crash round *)
  omissions : (int * Pid.t * Pid.t) list;
      (** observed dropped messages (round, src, dst), earliest first *)
  declared_faulty : Pidset.t;
      (** the schedule's declared faulty set F (paper's bound f applies to
          this set) *)
  hash : int;
      (** content hash of the execution, folded as the trace is built; see
          {!val:hash} *)
}

(** Number of recorded rounds [|H|]. *)
val length : ('s, 'm) t -> int

(** [state_before t ~round p] is the paper's [s_p^round] (with the round
    variable included in ['s]); [None] if crashed. Raises
    [Invalid_argument] if [round] is outside [1..length t]. *)
val state_before : ('s, 'm) t -> round:int -> Pid.t -> 's option

(** [state_after t ~round p] is the state at the end of [round]. *)
val state_after : ('s, 'm) t -> round:int -> Pid.t -> 's option

(** [record t ~round] is the full round history of [round]. *)
val record : ('s, 'm) t -> round:int -> ('s, 'm) round_record

(** The declared correct set C(H, Π). *)
val correct : ('s, 'm) t -> Pidset.t

(** Processes observed to have crashed. *)
val crashed : ('s, 'm) t -> Pidset.t

(** [blames_declared t] audits the declared faulty set against the
    recorded failures: every crashed process must be declared faulty, and
    every omission must have at least one declared-faulty endpoint (which
    endpoint actually misbehaved — send or receive omission — is
    inherently unobservable from the history alone). True for every trace
    produced by {!Runner.run} under a well-formed schedule. *)
val blames_declared : ('s, 'm) t -> bool

(** [alive t ~round p] is true iff [p] has not crashed before or in
    [round]. *)
val alive : ('s, 'm) t -> round:int -> Pid.t -> bool

(** [sub t ~first ~last] is the sub-history of rounds [first..last]
    (both inclusive), renumbered from 1 — the paper's prefix/suffix
    construction. Raises [Invalid_argument] on an empty or out-of-range
    interval. *)
val sub : ('s, 'm) t -> first:int -> last:int -> ('s, 'm) t

(** {2 Content hashing}

    Traces used to be fingerprinted by [Digest.string (Marshal.to_string t [])],
    which serialises the whole history per run — the dominant allocation of a
    checker sweep. The replacement hashes the {e generators} of the execution
    instead: because protocols are deterministic (pure [broadcast]/[step], the
    contract of {!Protocol.t}), a history is a function of the state vector
    entering round 1 (plus any vector rewritten by a mid-run corruption), the
    realized crash pattern, the realized omissions, and the trace metadata.
    Equal hashes therefore imply equal executions exactly as with the Marshal
    digest — up to hash collisions, kept negligible by mixing two
    independently seeded structural-hash streams into one 62-bit word. *)

(** The content hash of the trace, computed incrementally by {!Runner.run}
    as the trace is built. Hashes are comparable between traces of the same
    provenance (two runner traces, or two [sub] windows); a [sub] of a whole
    trace hashes over more generators than the runner does and is not
    comparable with the original's hash. *)
val hash : ('s, 'm) t -> int

(** [round_signature ~project t] is the per-round behavioural signature of
    the execution: entry [r-1] is a 62-bit mix, over all processes, of
    [project p s] applied to each end-of-round state (crashed processes
    contribute a sentinel). The projection picks out the {e observable}
    part of the state — the round variable for Figure 1, the
    suspicion/decision registers for compiled protocols — so two rounds
    share a signature word exactly when they are behaviourally
    indistinguishable under the projection. The fuzzer's coverage signal:
    unlike {!val:hash}, which identifies whole executions, signature words
    expose which {e per-round} configurations a corpus has already
    visited. *)
val round_signature : project:(Pid.t -> 's -> int) -> ('s, 'm) t -> int array

(** [compute_hash ~state_rounds ...] folds the generators of a trace under
    construction into its content hash. [state_rounds] lists the 1-based
    rounds whose entering state vectors generate the execution: round 1,
    plus every round a mid-run corruption rewrote. Raises
    [Invalid_argument] if a listed round is outside the records. Exposed
    for {!Runner}; ordinary consumers read {!val:hash}. *)
val compute_hash :
  state_rounds:int list ->
  records:('s, 'm) round_record array ->
  n:int ->
  protocol_name:string ->
  crashed_at:int option array ->
  omissions:(int * Pid.t * Pid.t) list ->
  declared_faulty:Pidset.t ->
  int

(** [pp_summary] prints a one-line summary (rounds, n, faults). *)
val pp_summary : Format.formatter -> ('s, 'm) t -> unit

(** [pp_rounds pp_state ppf t] dumps the full history, one line per
    round: each process's start-of-round state ([!] marks crashed) and
    the senders it heard from. The debugging view of a trace. *)
val pp_rounds :
  (Format.formatter -> 's -> unit) -> Format.formatter -> ('s, 'm) t -> unit
