open Ftss_util

let run ?obs ?corrupt ?(corrupt_at = []) ~faults ~rounds (protocol : ('s, 'm) Protocol.t) =
  if rounds < 1 then invalid_arg "Runner.run: rounds < 1";
  let n = Faults.n faults in
  (* Observability: [traced] guards event *construction*, so the default
     zero-sink path allocates nothing here. *)
  let traced = Option.is_some obs in
  let emit ev = match obs with Some o -> Ftss_obs.Obs.emit o ev | None -> () in
  let initial p =
    let s = protocol.init p in
    match corrupt with None -> s | Some c -> c p s
  in
  if traced && corrupt <> None then
    List.iter
      (fun p -> emit (Ftss_obs.Event.make ~time:0 (Ftss_obs.Event.Corrupt { pid = p })))
      (Pid.all n);
  let states = Array.init n (fun p -> Some (initial p)) in
  let crashed_at = Array.make n None in
  (* Schedule lookups hoisted out of the round loop: [crash.(p)] replaces a
     per-round [Faults.crash_round] call, and [table] answers each link
     query with a few integer tests instead of a hash probe plus two
     interval-list scans. *)
  let crash = Array.init n (fun p -> Faults.crash_round faults p) in
  let table = Faults.precompile faults ~rounds in
  (* Scratch buffer reused across every destination of every round: the
     senders delivered to the current destination, ascending. *)
  let senders = Array.make (max 1 n) 0 in
  let omissions = ref [] in
  let records = ref [] in
  for round = 1 to rounds do
    if traced then emit (Ftss_obs.Event.make ~time:round Ftss_obs.Event.Round_begin);
    (* Crashes scheduled for this round take effect before the broadcast. *)
    for p = 0 to n - 1 do
      match (states.(p), crash.(p)) with
      | Some _, Some cr when cr <= round ->
        states.(p) <- None;
        crashed_at.(p) <- Some cr;
        if traced then
          emit (Ftss_obs.Event.make ~time:round (Ftss_obs.Event.Crash { pid = p }))
      | _ -> ()
    done;
    (* Mid-execution systemic failure, if scheduled. *)
    List.iter
      (fun (r, c) ->
        if r = round then
          for p = 0 to n - 1 do
            match states.(p) with
            | Some s ->
              states.(p) <- Some (c p s);
              if traced then
                emit (Ftss_obs.Event.make ~time:round (Ftss_obs.Event.Corrupt { pid = p }))
            | None -> ()
          done)
      corrupt_at;
    let states_before = Array.copy states in
    let sent = Array.make n None in
    for p = 0 to n - 1 do
      match states.(p) with
      | None -> ()
      | Some s ->
        if traced then
          emit
            (Ftss_obs.Event.make ~time:round (Ftss_obs.Event.Send { src = p; dst = None }));
        sent.(p) <- Some (protocol.broadcast p s)
    done;
    let delivered = Array.make n [] in
    if Faults.quiet_round table ~round then begin
      (* No omission can occur this round, so every live receiver gets the
         same deliveries: build the list once and share it — the dominant
         allocation of a failure-free round drops from n^2 to n. *)
      let full = ref [] in
      for src = n - 1 downto 0 do
        match sent.(src) with
        | Some payload -> full := { Protocol.src; payload } :: !full
        | None -> ()
      done;
      let full = !full in
      for dst = 0 to n - 1 do
        if not (Option.is_none states.(dst)) then begin
          if traced then
            List.iter
              (fun { Protocol.src; _ } ->
                emit
                  (Ftss_obs.Event.make ~time:round (Ftss_obs.Event.Deliver { src; dst })))
              full;
          delivered.(dst) <- full
        end
      done
    end
    else
    for dst = 0 to n - 1 do
      if not (Option.is_none states.(dst)) then begin
        (* First pass: decide every link in ascending sender order — the
           order events, omissions and the delivery list are recorded in —
           stashing surviving senders in the scratch buffer. *)
        let count = ref 0 in
        for src = 0 to n - 1 do
          if not (Option.is_none sent.(src)) then
            if src = dst || not (Faults.table_drops table ~round ~src ~dst) then begin
              if traced then
                emit
                  (Ftss_obs.Event.make ~time:round (Ftss_obs.Event.Deliver { src; dst }));
              senders.(!count) <- src;
              incr count
            end
            else begin
              omissions := (round, src, dst) :: !omissions;
              if traced then
                emit
                  (Ftss_obs.Event.make ~time:round
                     (Ftss_obs.Event.Drop { src; dst; blame = Faults.blame faults ~src ~dst }))
            end
        done;
        (* Second pass, descending, conses the delivery list directly in
           ascending sender order — no [List.rev], no intermediate list. *)
        let ds = ref [] in
        for i = !count - 1 downto 0 do
          let src = senders.(i) in
          match sent.(src) with
          | Some payload -> ds := { Protocol.src; payload } :: !ds
          | None -> assert false
        done;
        delivered.(dst) <- !ds
      end
    done;
    for p = 0 to n - 1 do
      match states.(p) with
      | None -> ()
      | Some s -> states.(p) <- Some (protocol.step p s delivered.(p))
    done;
    if traced then emit (Ftss_obs.Event.make ~time:round Ftss_obs.Event.Round_end);
    records :=
      { Trace.round; states_before; sent; delivered; states_after = Array.copy states }
      :: !records
  done;
  let records = Array.of_list (List.rev !records) in
  let omissions = List.rev !omissions in
  let declared_faulty = Faults.faulty faults in
  let state_rounds =
    (* Generator rounds of the content hash: the execution is a pure
       function of the state vector entering round 1 plus any vector a
       mid-run corruption rewrote (see trace.mli). *)
    match corrupt_at with
    | [] -> [ 1 ]
    | _ ->
      List.sort_uniq Int.compare
        (1
        :: List.filter_map
             (fun (r, _) -> if 1 <= r && r <= rounds then Some r else None)
             corrupt_at)
  in
  let hash =
    Trace.compute_hash ~state_rounds ~records ~n ~protocol_name:protocol.name ~crashed_at
      ~omissions ~declared_faulty
  in
  { Trace.n; protocol_name = protocol.name; records; crashed_at; omissions; declared_faulty; hash }
