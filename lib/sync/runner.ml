open Ftss_util

let run ?obs ?corrupt ?(corrupt_at = []) ~faults ~rounds (protocol : ('s, 'm) Protocol.t) =
  if rounds < 1 then invalid_arg "Runner.run: rounds < 1";
  let n = Faults.n faults in
  (* Observability: [traced] guards event *construction*, so the default
     zero-sink path allocates nothing here. *)
  let traced = Option.is_some obs in
  let emit ev = match obs with Some o -> Ftss_obs.Obs.emit o ev | None -> () in
  let initial p =
    let s = protocol.init p in
    match corrupt with None -> s | Some c -> c p s
  in
  if traced && corrupt <> None then
    List.iter
      (fun p -> emit { Ftss_obs.Event.time = 0; body = Ftss_obs.Event.Corrupt { pid = p } })
      (Pid.all n);
  let states = Array.init n (fun p -> Some (initial p)) in
  let crashed_at = Array.make n None in
  let omissions = ref [] in
  let records = ref [] in
  for round = 1 to rounds do
    if traced then emit { Ftss_obs.Event.time = round; body = Ftss_obs.Event.Round_begin };
    (* Crashes scheduled for this round take effect before the broadcast. *)
    Array.iteri
      (fun p st ->
        match (st, Faults.crash_round faults p) with
        | Some _, Some cr when cr <= round ->
          states.(p) <- None;
          crashed_at.(p) <- Some cr;
          if traced then
            emit { Ftss_obs.Event.time = round; body = Ftss_obs.Event.Crash { pid = p } }
        | _ -> ())
      (Array.copy states);
    (* Mid-execution systemic failure, if scheduled. *)
    List.iter
      (fun (r, c) ->
        if r = round then
          Array.iteri
            (fun p st ->
              match st with
              | Some s ->
                states.(p) <- Some (c p s);
                if traced then
                  emit
                    { Ftss_obs.Event.time = round; body = Ftss_obs.Event.Corrupt { pid = p } }
              | None -> ())
            (Array.copy states))
      corrupt_at;
    let states_before = Array.copy states in
    let sent =
      Array.init n (fun p ->
          match states.(p) with
          | None -> None
          | Some s ->
            if traced then
              emit
                {
                  Ftss_obs.Event.time = round;
                  body = Ftss_obs.Event.Send { src = p; dst = None };
                };
            Some (protocol.broadcast p s))
    in
    let delivered =
      Array.init n (fun dst ->
          if states.(dst) = None then []
          else
            List.filter_map
              (fun src ->
                match sent.(src) with
                | None -> None
                | Some payload ->
                  if Pid.equal src dst then begin
                    if traced then
                      emit
                        {
                          Ftss_obs.Event.time = round;
                          body = Ftss_obs.Event.Deliver { src; dst };
                        };
                    Some { Protocol.src; payload }
                  end
                  else if Faults.drops faults ~round ~src ~dst then begin
                    omissions := (round, src, dst) :: !omissions;
                    if traced then
                      emit
                        {
                          Ftss_obs.Event.time = round;
                          body =
                            Ftss_obs.Event.Drop
                              { src; dst; blame = Faults.blame faults ~src ~dst };
                        };
                    None
                  end
                  else begin
                    if traced then
                      emit
                        {
                          Ftss_obs.Event.time = round;
                          body = Ftss_obs.Event.Deliver { src; dst };
                        };
                    Some { Protocol.src; payload }
                  end)
              (Pid.all n))
    in
    Array.iteri
      (fun p st ->
        match st with
        | None -> ()
        | Some s -> states.(p) <- Some (protocol.step p s delivered.(p)))
      (Array.copy states);
    if traced then emit { Ftss_obs.Event.time = round; body = Ftss_obs.Event.Round_end };
    records :=
      {
        Trace.round;
        states_before;
        sent;
        delivered;
        states_after = Array.copy states;
      }
      :: !records
  done;
  {
    Trace.n;
    protocol_name = protocol.name;
    records = Array.of_list (List.rev !records);
    crashed_at;
    omissions = List.rev !omissions;
    declared_faulty = Faults.faulty faults;
  }
