(** Lockstep executor for the perfectly synchronous model.

    Executes a {!Protocol.t} for a fixed number of rounds under a
    {!Faults.t} schedule, optionally commencing from a systemically-corrupted
    state, and records the full history as a {!Trace.t}.

    Systemic failures: the paper models a systemic failure as execution
    commencing in an arbitrary global state (§2.1). [corrupt] rewrites each
    process's protocol-specified initial state into the adversarially chosen
    one. [corrupt_at] additionally rewrites states at the start of later
    rounds, which models a mid-execution systemic failure — the suffix from
    such a round is itself a history commencing in an arbitrary state. *)

open Ftss_util

val run :
  ?obs:Ftss_obs.Obs.t ->
  ?corrupt:(Pid.t -> 's -> 's) ->
  ?corrupt_at:(int * (Pid.t -> 's -> 's)) list ->
  faults:Faults.t ->
  rounds:int ->
  ('s, 'm) Protocol.t ->
  ('s, 'm) Trace.t
(** [run ?obs ?corrupt ?corrupt_at ~faults ~rounds protocol] executes
    [rounds] rounds. Semantics, per round [r] (1-based):
    - processes whose crash round is [<= r] take no action;
    - every live process broadcasts [protocol.broadcast];
    - the message from [src] to [dst] is delivered unless the schedule
      drops it; self-messages are always delivered (paper footnote 1);
    - every live process applies [protocol.step] to its deliveries,
      ordered by sender pid.

    When [obs] is given, the runner emits the execution's event stream:
    [Corrupt] per process at time 0 (initial systemic failure) and at the
    round of each [corrupt_at] entry, then per round [Round_begin],
    [Crash] on the round a crash takes effect, one broadcast [Send] per
    live process, [Deliver]/[Drop] per directed link (drops carry
    {!Faults.blame}), and [Round_end]. With [obs] absent the
    instrumentation allocates nothing.

    Raises [Invalid_argument] if [rounds < 1]. *)
