(** Sets of process identifiers — width-polymorphic immutable bitsets.

    Two representations live behind this interface, selected per set:

    - sets whose elements all fit in [0 .. 61] are a single immediate
      integer bitmask (bit [p] set iff pid [p] is in the set) — the
      one-word fast path, on which [union], [inter], [diff], [subset],
      [mem], [equal] and [disjoint] are a tag test plus one integer
      instruction and [cardinal] is a popcount;
    - sets reaching beyond pid 61 are an immutable int array of 62-bit
      words, processed word-at-a-time.

    The representation is canonical — a set that fits one word is always
    the immediate integer — so structural equality, ordering, hashing and
    marshalling agree with {!equal}/{!compare} across both forms, and
    every value that existed under the historic 62-process cap is
    bit-identical to what this module builds today (committed trace
    fingerprints for n <= 61 are preserved).

    Constructors accept any pid in [0 .. max_pid] and raise
    [Invalid_argument] outside it; membership queries for out-of-range
    pids simply answer [false], in either representation. These sets sit
    on the simulator's per-delivery hot path (suspect bookkeeping in the
    compiler, sender sets in the consensus protocols, [Faults.correct]).

    The interface mirrors the slice of [Set.S] the repository uses;
    iteration orders ([iter], [fold], [elements], [to_list]) are ascending
    by pid, exactly as with [Set.Make (Pid)]. *)

type elt = Pid.t
type t

(** Largest pid of the one-word representation: 61. Sets within
    [0 .. max_small] never allocate. *)
val max_small : int

(** Largest accepted pid (a sanity bound, not a representation limit):
    [add], [singleton], [of_list], [of_pred] and [full] raise
    [Invalid_argument] beyond it, in either representation. *)
val max_pid : int

val empty : t
val is_empty : t -> bool

(** [mem p s] — [false] (never an exception) for any pid outside the
    set's universe, including negatives and pids beyond [max_pid]. *)
val mem : elt -> t -> bool

val add : elt -> t -> t
val singleton : elt -> t

(** [remove p s] is the identity for out-of-range [p], never an
    exception. *)
val remove : elt -> t -> t

val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is the set of elements of [a] not in [b]. *)
val diff : t -> t -> t

val cardinal : t -> int
val equal : t -> t -> bool

(** A total order on sets (consistent with [equal]; not necessarily the
    [Set.Make] lexicographic order, which nothing in the repo relies on).
    On one-word sets it coincides with the integer order of the masks. *)
val compare : t -> t -> int

val subset : t -> t -> bool
val disjoint : t -> t -> bool
val iter : (elt -> unit) -> t -> unit
val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (elt -> bool) -> t -> bool
val exists : (elt -> bool) -> t -> bool
val filter : (elt -> bool) -> t -> t
val elements : t -> elt list
val to_list : t -> elt list
val of_list : elt list -> t
val min_elt_opt : t -> elt option
val max_elt_opt : t -> elt option
val choose_opt : t -> elt option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_pred n pred] is the set of pids in [0 .. n-1] satisfying [pred].
    Raises [Invalid_argument] unless [0 <= n <= max_pid + 1], whichever
    representation the result needs. *)
val of_pred : int -> (Pid.t -> bool) -> t

(** [full n] is the set of all [n] pids. Raises [Invalid_argument]
    unless [0 <= n <= max_pid + 1]. *)
val full : int -> t
