(** Sets of process identifiers, represented as a single int bitmask.

    Bit [p] of the representation is set iff pid [p] is in the set, so the
    supported universe is [0 .. 61] (62 pids fit comfortably in OCaml's
    63-bit native int, with a bit to spare). Every constructor that would
    insert a pid outside that range raises [Invalid_argument]; membership
    queries for out-of-range pids simply answer [false]. Within the cap,
    [union], [inter], [diff], [subset], [mem], [equal] and [disjoint] are
    single machine instructions and [cardinal] is a popcount — the whole
    point: these sets sit on the simulator's per-delivery hot path
    (suspect bookkeeping in the compiler, sender sets in the consensus
    protocols, [Faults.correct]).

    The interface mirrors the slice of [Set.S] the repository uses;
    iteration orders ([iter], [fold], [elements], [to_list]) are ascending
    by pid, exactly as with [Set.Make (Pid)]. *)

type elt = Pid.t
type t

(** Largest representable pid: 61. [add], [singleton], [of_list],
    [of_pred] and [full] raise [Invalid_argument] beyond it. *)
val max_pid : int

val empty : t
val is_empty : t -> bool

(** [mem p s] — [false] (never an exception) for pids outside [0..max_pid]. *)
val mem : elt -> t -> bool

val add : elt -> t -> t
val singleton : elt -> t
val remove : elt -> t -> t
val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is the set of elements of [a] not in [b]. *)
val diff : t -> t -> t

val cardinal : t -> int
val equal : t -> t -> bool

(** A total order on sets (consistent with [equal]; not necessarily the
    [Set.Make] lexicographic order, which nothing in the repo relies on). *)
val compare : t -> t -> int

val subset : t -> t -> bool
val disjoint : t -> t -> bool
val iter : (elt -> unit) -> t -> unit
val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (elt -> bool) -> t -> bool
val exists : (elt -> bool) -> t -> bool
val filter : (elt -> bool) -> t -> t
val elements : t -> elt list
val to_list : t -> elt list
val of_list : elt list -> t
val min_elt_opt : t -> elt option
val max_elt_opt : t -> elt option
val choose_opt : t -> elt option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_pred n pred] is the set of pids in [0 .. n-1] satisfying [pred]. *)
val of_pred : int -> (Pid.t -> bool) -> t

(** [full n] is the set of all [n] pids. *)
val full : int -> t
