(* An immutable bitset over pids 0..61: bit p set <=> p in the set. The
   AVL-backed [Set.Make (Pid)] this replaces allocated a node per element
   and walked pointers on every [union]/[diff]/[mem] in the simulator's
   inner loop; here those are single integer instructions. *)

type elt = Pid.t
type t = int

let max_pid = 61

let check p =
  if p < 0 || p > max_pid then
    invalid_arg (Printf.sprintf "Pidset: pid %d outside 0..%d" p max_pid)

let empty = 0
let is_empty s = s = 0
let mem p s = 0 <= p && p <= max_pid && (s lsr p) land 1 = 1

let add p s =
  check p;
  s lor (1 lsl p)

let singleton p =
  check p;
  1 lsl p

let remove p s = if p < 0 || p > max_pid then s else s land lnot (1 lsl p)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  (* Kernighan: one iteration per set bit — sets here hold at most 62. *)
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let equal (a : t) (b : t) = a = b
let compare = Int.compare
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

(* Index of the lowest set bit of [s], [s] <> 0. *)
let lowest_bit s =
  let rec go s i = if s land 1 = 1 then i else go (s lsr 1) (i + 1) in
  go s 0

let iter f s =
  let rec go s =
    if s <> 0 then begin
      let p = lowest_bit s in
      f p;
      go (s land (s - 1))
    end
  in
  go s

let fold f s init =
  let rec go s acc =
    if s = 0 then acc
    else
      let p = lowest_bit s in
      go (s land (s - 1)) (f p acc)
  in
  go s init

let for_all f s =
  let rec go s = s = 0 || (f (lowest_bit s) && go (s land (s - 1))) in
  go s

let exists f s =
  let rec go s = s <> 0 && (f (lowest_bit s) || go (s land (s - 1))) in
  go s

let filter f s = fold (fun p acc -> if f p then acc lor (1 lsl p) else acc) s empty
let elements s = List.rev (fold (fun p acc -> p :: acc) s [])
let to_list = elements
let of_list ps = List.fold_left (fun acc p -> add p acc) empty ps
let min_elt_opt s = if s = 0 then None else Some (lowest_bit s)

let max_elt_opt s =
  if s = 0 then None
  else begin
    let rec go s i best = if s = 0 then best else go (s lsr 1) (i + 1) (if s land 1 = 1 then i else best) in
    Some (go s 0 0)
  end

let choose_opt = min_elt_opt

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Pid.pp)
    (elements s)

let to_string s = Format.asprintf "%a" pp s

let of_pred n pred =
  if n < 0 || n > max_pid + 1 then
    invalid_arg (Printf.sprintf "Pidset.of_pred: n %d outside 0..%d" n (max_pid + 1));
  let rec go p acc = if p < 0 then acc else go (p - 1) (if pred p then acc lor (1 lsl p) else acc) in
  go (n - 1) empty

let full n =
  if n < 0 || n > max_pid + 1 then
    invalid_arg (Printf.sprintf "Pidset.full: n %d outside 0..%d" n (max_pid + 1));
  if n = 0 then 0 else (1 lsl n) - 1
