(* A width-polymorphic immutable bitset over pids.

   Two representations behind one abstract type, discriminated at runtime
   the way Zarith discriminates small integers from big ones:

   - an {e immediate int}: bit p set <=> pid p in the set, for any set
     whose elements all fit in 0..61. This is the one-word fast path —
     [union]/[inter]/[diff]/[mem]/[subset] are a tag test plus a single
     integer instruction, exactly the representation the whole repo ran
     on when the universe was capped at 62 processes;
   - a {e boxed int array}: word w holds bits for pids
     [w*62 .. w*62+61] in its low 62 bits, for sets reaching beyond 61.

   Canonical form: a set whose elements all fit in one word is {e always}
   the immediate int (wide arrays never have a zero top word and are at
   least two words long). Uniqueness of representation is what keeps the
   polymorphic operations the rest of the repository leans on — structural
   equality, [Stdlib.compare], [Hashtbl.hash], [Marshal] — working
   unchanged: a small set is the very same immediate word it was before
   this refactor, so every committed trace fingerprint and golden digest
   for n <= 61 is preserved bit-for-bit.

   The [Obj] casts are confined to this module: values are only ever a
   plain int or a plain int array, both of which the GC, hashing,
   comparison and marshalling all treat exactly as their type dictates. *)

type elt = Pid.t
type t = Obj.t

let word_bits = 62
let max_small = 61

(* A sanity bound on pids, not a representation limit: constructors
   reject negative pids and absurd magnitudes (a million processes needs
   ~16k words per set; anything beyond is a bug, not a workload). *)
let max_pid = 1_048_575

let[@inline] is_small (s : t) = Obj.is_int s
let[@inline] small (s : t) : int = Obj.obj s
let[@inline] of_int (w : int) : t = Obj.repr (w : int)
let[@inline] wide (s : t) : int array = Obj.obj s

let check p =
  if p < 0 || p > max_pid then
    invalid_arg (Printf.sprintf "Pidset: pid %d outside 0..%d" p max_pid)

(* Canonicalize a freshly built word array (taking ownership): trim zero
   top words; collapse to the immediate representation when one word is
   left. *)
let norm (ws : int array) : t =
  let top = ref (Array.length ws - 1) in
  while !top > 0 && ws.(!top) = 0 do
    decr top
  done;
  if !top = 0 then of_int ws.(0)
  else if !top = Array.length ws - 1 then Obj.repr ws
  else Obj.repr (Array.sub ws 0 (!top + 1))

let[@inline] nwords s = if is_small s then 1 else Array.length (wide s)

(* The i-th word of the virtual infinite word vector (0 beyond the
   representation). *)
let word s i =
  if is_small s then if i = 0 then small s else 0
  else
    let a = wide s in
    if i < Array.length a then a.(i) else 0

let empty = of_int 0
let is_empty s = is_small s && small s = 0

let mem p s =
  if is_small s then 0 <= p && p <= max_small && (small s lsr p) land 1 = 1
  else
    0 <= p
    &&
    let a = wide s in
    let w = p / word_bits in
    w < Array.length a && (a.(w) lsr (p mod word_bits)) land 1 = 1

let add p s =
  check p;
  if is_small s && p <= max_small then of_int (small s lor (1 lsl p))
  else begin
    let len = max (nwords s) ((p / word_bits) + 1) in
    let ws = Array.init len (word s) in
    let w = p / word_bits in
    ws.(w) <- ws.(w) lor (1 lsl (p mod word_bits));
    norm ws
  end

let singleton p =
  check p;
  if p <= max_small then of_int (1 lsl p) else add p empty

let remove p s =
  if p < 0 then s
  else if is_small s then
    if p > max_small then s else of_int (small s land lnot (1 lsl p))
  else begin
    let a = wide s in
    let w = p / word_bits in
    if w >= Array.length a || (a.(w) lsr (p mod word_bits)) land 1 = 0 then s
    else begin
      let ws = Array.copy a in
      ws.(w) <- ws.(w) land lnot (1 lsl (p mod word_bits));
      norm ws
    end
  end

let union a b =
  if is_small a && is_small b then of_int (small a lor small b)
  else begin
    let len = max (nwords a) (nwords b) in
    norm (Array.init len (fun i -> word a i lor word b i))
  end

let inter a b =
  (* Intersecting with a one-word set always yields a one-word set. *)
  if is_small a || is_small b then of_int (word a 0 land word b 0)
  else begin
    let len = min (nwords a) (nwords b) in
    norm (Array.init len (fun i -> word a i land word b i))
  end

let diff a b =
  if is_small a then of_int (small a land lnot (word b 0))
  else norm (Array.init (nwords a) (fun i -> word a i land lnot (word b i)))

(* Kernighan popcount of one word: one iteration per set bit. *)
let count_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal s =
  if is_small s then count_word (small s)
  else Array.fold_left (fun acc w -> acc + count_word w) 0 (wide s)

let equal a b =
  if is_small a then is_small b && small a = small b
  else
    (not (is_small b))
    &&
    let wa = wide a and wb = wide b in
    Array.length wa = Array.length wb
    &&
    let rec go i = i < 0 || (wa.(i) = wb.(i) && go (i - 1)) in
    go (Array.length wa - 1)

(* Magnitude order — on one-word sets exactly the [Int.compare] this
   replaces; wide sets order after all small ones, by length then by
   words from the top. A total order consistent with [equal] is all the
   interface promises. *)
let compare a b =
  if is_small a then if is_small b then Int.compare (small a) (small b) else -1
  else if is_small b then 1
  else begin
    let wa = wide a and wb = wide b in
    let la = Array.length wa and lb = Array.length wb in
    if la <> lb then Int.compare la lb
    else begin
      let rec go i =
        if i < 0 then 0
        else
          let c = Int.compare wa.(i) wb.(i) in
          if c <> 0 then c else go (i - 1)
      in
      go (la - 1)
    end
  end

let subset a b =
  if is_small a then small a land lnot (word b 0) = 0
  else begin
    let la = nwords a in
    let rec go i = i >= la || (word a i land lnot (word b i) = 0 && go (i + 1)) in
    go 0
  end

let disjoint a b =
  if is_small a || is_small b then word a 0 land word b 0 = 0
  else begin
    let len = min (nwords a) (nwords b) in
    let rec go i = i >= len || (word a i land word b i = 0 && go (i + 1)) in
    go 0
  end

(* Index of the lowest set bit of [w], [w] <> 0. *)
let lowest_bit w =
  let rec go w i = if w land 1 = 1 then i else go (w lsr 1) (i + 1) in
  go w 0

let iter_word f base w =
  let rec go w =
    if w <> 0 then begin
      f (base + lowest_bit w);
      go (w land (w - 1))
    end
  in
  go w

let iter f s =
  if is_small s then iter_word f 0 (small s)
  else Array.iteri (fun i w -> iter_word f (i * word_bits) w) (wide s)

let fold_word f base w acc =
  let rec go w acc =
    if w = 0 then acc else go (w land (w - 1)) (f (base + lowest_bit w) acc)
  in
  go w acc

let fold f s init =
  if is_small s then fold_word f 0 (small s) init
  else begin
    let acc = ref init in
    Array.iteri (fun i w -> acc := fold_word f (i * word_bits) w !acc) (wide s);
    !acc
  end

let for_all_word f base w =
  let rec go w = w = 0 || (f (base + lowest_bit w) && go (w land (w - 1))) in
  go w

let for_all f s =
  if is_small s then for_all_word f 0 (small s)
  else begin
    let a = wide s in
    let rec go i = i >= Array.length a || (for_all_word f (i * word_bits) a.(i) && go (i + 1)) in
    go 0
  end

let exists f s = not (for_all (fun p -> not (f p)) s)

let filter f s =
  if is_small s then
    of_int (fold_word (fun p acc -> if f p then acc lor (1 lsl p) else acc) 0 (small s) 0)
  else begin
    let a = wide s in
    norm
      (Array.mapi
         (fun i w ->
           fold_word
             (fun p acc -> if f p then acc lor (1 lsl (p - (i * word_bits))) else acc)
             (i * word_bits) w 0)
         a)
  end

let elements s = List.rev (fold (fun p acc -> p :: acc) s [])
let to_list = elements
let of_list ps = List.fold_left (fun acc p -> add p acc) empty ps

let min_elt_opt s =
  if is_small s then if small s = 0 then None else Some (lowest_bit (small s))
  else begin
    (* Canonical wide sets are non-empty, but scan defensively. *)
    let a = wide s in
    let rec go i =
      if i >= Array.length a then None
      else if a.(i) <> 0 then Some ((i * word_bits) + lowest_bit a.(i))
      else go (i + 1)
    in
    go 0
  end

let highest_bit w =
  let rec go w i best = if w = 0 then best else go (w lsr 1) (i + 1) (if w land 1 = 1 then i else best) in
  go w 0 0

let max_elt_opt s =
  if is_small s then if small s = 0 then None else Some (highest_bit (small s))
  else begin
    let a = wide s in
    let rec go i =
      if i < 0 then None
      else if a.(i) <> 0 then Some ((i * word_bits) + highest_bit a.(i))
      else go (i - 1)
    in
    go (Array.length a - 1)
  end

let choose_opt = min_elt_opt

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Pid.pp)
    (elements s)

let to_string s = Format.asprintf "%a" pp s

let check_universe fn n =
  if n < 0 || n > max_pid + 1 then
    invalid_arg (Printf.sprintf "Pidset.%s: n %d outside 0..%d" fn n (max_pid + 1))

let of_pred n pred =
  check_universe "of_pred" n;
  if n <= word_bits then begin
    let rec go p acc = if p < 0 then acc else go (p - 1) (if pred p then acc lor (1 lsl p) else acc) in
    of_int (go (n - 1) 0)
  end
  else begin
    let ws = Array.make ((n + word_bits - 1) / word_bits) 0 in
    for p = 0 to n - 1 do
      if pred p then begin
        let w = p / word_bits in
        ws.(w) <- ws.(w) lor (1 lsl (p mod word_bits))
      end
    done;
    norm ws
  end

(* All 62 low bits: [1 lsl 62] wraps to the sign bit of OCaml's 63-bit
   int, so subtracting 1 yields exactly bits 0..61 — the historic
   [full 62] value. *)
let full_word = (1 lsl word_bits) - 1

let full n =
  check_universe "full" n;
  if n = 0 then empty
  else if n <= word_bits then of_int ((1 lsl n) - 1)
  else begin
    let words = (n + word_bits - 1) / word_bits in
    let ws = Array.make words full_word in
    let r = n - ((words - 1) * word_bits) in
    ws.(words - 1) <- (1 lsl r) - 1;
    Obj.repr ws (* r >= 1, so the top word is never zero *)
  end
