open Ftss_util
module Trace = Ftss_sync.Trace
module Compiler = Ftss_core.Compiler
module Spec = Ftss_core.Spec

type 'd completion = {
  round : int;
  pid : Pid.t;
  iteration : int;
  decision : 'd option;
}

let completions_of_record record =
  let found = ref [] in
  Array.iteri
    (fun p before ->
      match (before, record.Trace.states_after.(p)) with
      | Some b, Some a when a.Compiler.completed = b.Compiler.completed + 1 ->
        found :=
          {
            round = record.Trace.round;
            pid = p;
            iteration = a.Compiler.completed - 1;
            decision = a.Compiler.last_decision;
          }
          :: !found
      | Some _, Some _ | None, _ | _, None -> ())
    record.Trace.states_before;
  List.rev !found

let completions trace =
  let rec loop round acc =
    if round > Trace.length trace then List.concat (List.rev acc)
    else loop (round + 1) (completions_of_record (Trace.record trace ~round) :: acc)
  in
  loop 1 []

let decisions_by_round trace ~faulty =
  let correct_only cs = List.filter (fun c -> not (Pidset.mem c.pid faulty)) cs in
  let rec loop round acc =
    if round > Trace.length trace then List.rev acc
    else
      let cs = correct_only (completions_of_record (Trace.record trace ~round)) in
      let acc = if cs = [] then acc else (round, cs) :: acc in
      loop (round + 1) acc
  in
  loop 1 []

(* One round's completions satisfy Σ when every correct process alive
   through the round completed, every decision is present and equal, and
   the common decision is legal. *)
let round_satisfies_sigma trace ~faulty ~valid (round, cs) =
  let alive_correct =
    Pidset.of_pred trace.Trace.n (fun p ->
        (not (Pidset.mem p faulty)) && Trace.alive trace ~round p)
  in
  let completers = Pidset.of_list (List.map (fun c -> c.pid) cs) in
  Pidset.equal completers alive_correct
  &&
  match cs with
  | [] -> true
  | first :: _ -> (
    match first.decision with
    | None -> false
    | Some d ->
      valid d && List.for_all (fun c -> c.decision = Some d) cs)

let sigma_plus ~final_round:_ ~valid () =
  {
    Spec.name = "sigma-plus";
    holds =
      (fun trace ~faulty ->
        List.for_all
          (round_satisfies_sigma trace ~faulty ~valid)
          (decisions_by_round trace ~faulty));
  }

let round_and_sigma ~final_round ~valid () =
  Spec.conj "round+sigma-plus"
    [ Compiler.round_spec (); sigma_plus ~final_round ~valid () ]

let count_agreeing_iterations trace ~faulty ~valid =
  let grouped = decisions_by_round trace ~faulty in
  let agreeing =
    List.length (List.filter (round_satisfies_sigma trace ~faulty ~valid) grouped)
  in
  (List.length grouped, agreeing)

(* --- Repeated asynchronous consensus: one heap vs. a heap per instance --- *)

module Consensus = Ftss_async.Consensus
module Sim = Ftss_async.Sim
module Ewfd = Ftss_async.Ewfd

type async_outcome = {
  instances_decided : int;
  decisions : int;
  end_time : int;
}

let async_config ~n ~seed ~horizon =
  {
    (Sim.default_config ~n ~seed) with
    Sim.gst = 50;
    horizon;
    tick_interval = 10;
    delay_before_gst = (1, 20);
    delay_after_gst = (1, 4);
  }

let async_oracle ~n ~seed ~gst =
  Ewfd.make (Rng.create seed) ~n ~crashed:(fun _ -> None) ~gst ~trusted:0
    ~noise:0.1

let distinct_instances ds =
  List.sort_uniq compare (List.map (fun d -> d.Consensus.d_instance) ds)
  |> List.length

let run_async_shared ?obs ~n ~seed ~style ~propose ~instances
    ~horizon_per_instance () =
  let config =
    async_config ~n ~seed ~horizon:(50 + (instances * horizon_per_instance))
  in
  let oracle = async_oracle ~n ~seed:(seed + 1) ~gst:config.Sim.gst in
  let result =
    Sim.run ?obs config (Consensus.process ?obs ~n ~style ~propose ~oracle ())
  in
  let ds = Consensus.decisions result in
  {
    instances_decided = min instances (distinct_instances ds);
    decisions = List.length ds;
    end_time = result.Sim.end_time;
  }

let run_async_rebuilt ?obs ~n ~seed ~style ~propose ~instances
    ~horizon_per_instance () =
  let decided = ref 0 and total = ref 0 and end_time = ref 0 in
  for i = 0 to instances - 1 do
    let config =
      async_config ~n ~seed:(seed + (2 * i)) ~horizon:(50 + horizon_per_instance)
    in
    let oracle =
      async_oracle ~n ~seed:(seed + (2 * i) + 1) ~gst:config.Sim.gst
    in
    (* Each rebuilt heap hosts logical instance [i]: shift the proposal
       function so both drivers consume the same proposal stream. *)
    let propose p j = propose p (i + j) in
    let result =
      Sim.run ?obs config (Consensus.process ?obs ~n ~style ~propose ~oracle ())
    in
    let ds = Consensus.decisions result in
    if List.exists (fun d -> d.Consensus.d_instance = 0) ds then incr decided;
    total := !total + List.length ds;
    end_time := max !end_time result.Sim.end_time
  done;
  { instances_decided = !decided; decisions = !total; end_time = !end_time }

let run_async_pooled ?obs ~n ~seed ~style ~propose ~instances
    ~horizon_per_instance () =
  (* Identical schedule to [run_async_rebuilt] — config, oracle and rng
     seeds are reproduced per instance — but the event-queue arena is
     cleared and reused instead of reallocated, isolating the queue's
     share of the rebuild price in the M1 rows. *)
  let pool = Sim.pool () in
  let decided = ref 0 and total = ref 0 and end_time = ref 0 in
  for i = 0 to instances - 1 do
    let config =
      async_config ~n ~seed:(seed + (2 * i)) ~horizon:(50 + horizon_per_instance)
    in
    let oracle =
      async_oracle ~n ~seed:(seed + (2 * i) + 1) ~gst:config.Sim.gst
    in
    let propose p j = propose p (i + j) in
    let result =
      Sim.run ?obs ~pool config
        (Consensus.process ?obs ~n ~style ~propose ~oracle ())
    in
    let ds = Consensus.decisions result in
    if List.exists (fun d -> d.Consensus.d_instance = 0) ds then incr decided;
    total := !total + List.length ds;
    end_time := max !end_time result.Sim.end_time
  done;
  { instances_decided = !decided; decisions = !total; end_time = !end_time }
