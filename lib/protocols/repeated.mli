(** Σ⁺ — the repeated problem solved by compiled protocols (§2.4).

    The compiler's Π⁺ infinitely repeats Π; the problem Σ⁺ it solves holds
    of a history that decomposes into consecutive segments each satisfying
    Σ. For the consensus-style Πs in this library, Σ per iteration means:
    all correct processes complete the iteration in the same actual round,
    all of them decide, the decisions are equal, and the decision is a
    legal value. This module extracts iteration completions from compiled
    traces and packages Σ⁺ as a {!Ftss_core.Spec.t} usable with
    {!Ftss_core.Solve.ftss_solves}. *)

open Ftss_util

type 'd completion = {
  round : int;  (** trace round at whose end the iteration completed *)
  pid : Pid.t;
  iteration : int;  (** index derived from the round variable *)
  decision : 'd option;
}

(** [completions trace] lists every iteration completion of every process
    (faulty ones included), in round order. *)
val completions :
  (('s, 'd) Ftss_core.Compiler.state, 'm) Ftss_sync.Trace.t -> 'd completion list

(** [decisions_by_round trace ~faulty] groups the correct processes'
    completions by round. *)
val decisions_by_round :
  (('s, 'd) Ftss_core.Compiler.state, 'm) Ftss_sync.Trace.t ->
  faulty:Pidset.t ->
  (int * 'd completion list) list

(** [sigma_plus ~final_round ~valid ()] is Σ⁺ for a consensus-style Σ:
    whenever a correct process completes an iteration in a round, every
    correct process alive through that round completes in the same round,
    with equal, present, [valid] decisions. Rounds without completions
    impose nothing (Σ⁺ constrains whole iterations; the enclosing
    stabilization window guarantees at least one complete iteration when
    it is long enough). *)
val sigma_plus :
  final_round:int ->
  valid:('d -> bool) ->
  unit ->
  (('s, 'd) Ftss_core.Compiler.state, 'm) Ftss_core.Spec.t

(** [round_and_sigma ~final_round ~valid ()] conjoins Assumption 1 on the
    compiled round variable with [sigma_plus] — the full obligation of
    Theorem 4. *)
val round_and_sigma :
  final_round:int ->
  valid:('d -> bool) ->
  unit ->
  (('s, 'd) Ftss_core.Compiler.state, 'm) Ftss_core.Spec.t

(** [count_agreeing_iterations trace ~faulty] is
    [(completed, agreeing)]: the number of rounds with at least one
    correct-process completion, and how many of those had every correct
    process completing with equal valid decisions — the measurement used
    by the E2 benchmark. *)
val count_agreeing_iterations :
  (('s, 'd) Ftss_core.Compiler.state, 'm) Ftss_sync.Trace.t ->
  faulty:Pidset.t ->
  valid:('d -> bool) ->
  int * int

(** {2 Repeated asynchronous consensus drivers}

    The async §3 protocol already repeats internally (instance 0, 1, 2,
    ... inside one {!Ftss_async.Sim} heap); the service tower builds on
    that. These two drivers make the heap-reuse question measurable: run
    [instances] consecutive consensus instances either in {e one} shared
    simulator heap, or by {e rebuilding} a fresh heap (config, channels,
    event queue, detector oracle) per instance. The M1 microbench prices
    both, so the per-instance overhead of rebuilding is a documented
    number rather than folklore. *)

type async_outcome = {
  instances_decided : int;  (** instances with at least one decision *)
  decisions : int;  (** total decision records across all processes *)
  end_time : int;  (** latest simulated clock reached *)
}

(** [run_async_shared ~n ~seed ~style ~propose ~instances
    ~horizon_per_instance ()] runs one simulation of
    [instances * horizon_per_instance] time units (plus the GST prefix)
    and counts how many of the first [instances] instances decided.
    [propose p i] is process [p]'s proposal for instance [i]. *)
val run_async_shared :
  ?obs:Ftss_obs.Obs.t ->
  n:int ->
  seed:int ->
  style:Ftss_async.Consensus.style ->
  propose:(Pid.t -> int -> int) ->
  instances:int ->
  horizon_per_instance:int ->
  unit ->
  async_outcome

(** [run_async_rebuilt] consumes the same proposal stream, but tears the
    whole simulation down and rebuilds it for every instance — the
    configuration both drivers are compared against in M1. *)
val run_async_rebuilt :
  ?obs:Ftss_obs.Obs.t ->
  n:int ->
  seed:int ->
  style:Ftss_async.Consensus.style ->
  propose:(Pid.t -> int -> int) ->
  instances:int ->
  horizon_per_instance:int ->
  unit ->
  async_outcome

(** [run_async_pooled] is [run_async_rebuilt] with one difference: all
    instances share a single {!Ftss_async.Sim.pool}, so the event-queue
    arena is cleared and reused rather than reallocated per instance.
    Outcomes are identical to [run_async_rebuilt]; only the allocation
    profile differs — the M1 row pair prices exactly the queue rebuild. *)
val run_async_pooled :
  ?obs:Ftss_obs.Obs.t ->
  n:int ->
  seed:int ->
  style:Ftss_async.Consensus.style ->
  propose:(Pid.t -> int -> int) ->
  instances:int ->
  horizon_per_instance:int ->
  unit ->
  async_outcome
