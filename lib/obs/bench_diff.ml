type snapshot = {
  experiment : string option;
  schema : int;
  gauges : (string * float) list;
}

let load_json json =
  let experiment =
    Option.bind (Json.member "experiment" json) (fun j ->
        match j with Json.String s -> Some s | _ -> None)
  in
  let schema =
    match Option.bind (Json.member "schema" json) Json.to_int_opt with
    | Some s -> s
    | None -> 1
  in
  (* Schema 2 wraps the metrics snapshot in an envelope; schema 1 (the
     bare [Metrics.to_json] form) has "gauges" at the top level too, so
     one lookup serves both. *)
  let gauges =
    match Json.member "gauges" json with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (name, v) -> Option.map (fun f -> (name, f)) (Json.to_float_opt v))
        fields
    | _ -> []
  in
  { experiment; schema; gauges }

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        match Json.of_string s with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok json -> Ok (load_json json))

type direction = Lower_better | Higher_better | Informational

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

(* Gauge names carry their unit: throughputs end in "...per_sec...",
   latencies and durations mention "ns_per_call" / "elapsed" / "seconds".
   Anything else (counts, sizes) is compared but never flagged. *)
let direction name =
  if contains ~needle:"per_sec" name then Higher_better
  else if
    contains ~needle:"ns_per_call" name
    || contains ~needle:"elapsed" name
    || contains ~needle:"seconds" name
    || contains ~needle:"_ns" name
  then Lower_better
  else Informational

type entry = {
  name : string;
  old_value : float;
  new_value : float;
  dir : direction;
  worse_pct : float;
      (* how much worse NEW is than OLD along [dir]; <= 0 means no worse *)
}

type report = {
  old_experiment : string option;
  new_experiment : string option;
  entries : entry list;
  only_old : string list;
  only_new : string list;
}

let worse_pct ~dir ~old_value ~new_value =
  if
    Float.is_nan old_value || Float.is_nan new_value
    || old_value <= 0. || new_value <= 0.
  then 0.
  else
    match dir with
    | Lower_better -> ((new_value /. old_value) -. 1.) *. 100.
    | Higher_better -> ((old_value /. new_value) -. 1.) *. 100.
    | Informational -> 0.

let diff ~old_:o ~new_:n =
  let entries =
    List.filter_map
      (fun (name, old_value) ->
        match List.assoc_opt name n.gauges with
        | None -> None
        | Some new_value ->
          let dir = direction name in
          Some
            { name; old_value; new_value; dir;
              worse_pct = worse_pct ~dir ~old_value ~new_value })
      o.gauges
  in
  let only_old =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name n.gauges then None else Some name)
      o.gauges
  in
  let only_new =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name o.gauges then None else Some name)
      n.gauges
  in
  {
    old_experiment = o.experiment;
    new_experiment = n.experiment;
    entries;
    only_old;
    only_new;
  }

let regressions report ~max_regress =
  List.filter
    (fun e -> e.dir <> Informational && e.worse_pct > max_regress)
    report.entries

let pp_direction ppf = function
  | Lower_better -> Format.fprintf ppf "lower-better"
  | Higher_better -> Format.fprintf ppf "higher-better"
  | Informational -> Format.fprintf ppf "info"

let pp ?(max_regress = infinity) ppf report =
  Format.fprintf ppf "@[<v>";
  (match (report.old_experiment, report.new_experiment) with
  | Some a, Some b when a <> b ->
    Format.fprintf ppf "warning: comparing experiment %S against %S@," a b
  | _ -> ());
  Format.fprintf ppf "%-52s %14s %14s %9s@," "gauge" "old" "new" "worse%";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-52s %14.4g %14.4g %8.1f%%%s@," e.name e.old_value
        e.new_value e.worse_pct
        (if e.dir <> Informational && e.worse_pct > max_regress then "  REGRESSION"
         else if e.dir = Informational then "  (info)"
         else ""))
    report.entries;
  List.iter
    (fun n -> Format.fprintf ppf "%-52s only in OLD@," n)
    report.only_old;
  List.iter
    (fun n -> Format.fprintf ppf "%-52s only in NEW@," n)
    report.only_new;
  Format.fprintf ppf "@]"
