open Ftss_util

type t = {
  mutable sinks : Sink.t list;
  mutable subscribers : (Event.t -> unit) array;
  registry : Metrics.t;
  record : bool;
  threadsafe : bool;
  mutex : Mutex.t;
  stamper : Stamper.t option;
}

let create ?(sinks = []) ?metrics ?stamp ?(record = true) ?(threadsafe = true) () =
  {
    sinks;
    subscribers = [||];
    registry = (match metrics with Some m -> m | None -> Metrics.create ());
    record;
    threadsafe;
    mutex = Mutex.create ();
    stamper = Option.map (fun n -> Stamper.create ~n) stamp;
  }

let add_sink t sink =
  Mutex.lock t.mutex;
  t.sinks <- t.sinks @ [ sink ];
  Mutex.unlock t.mutex

let add_subscriber t f =
  Mutex.lock t.mutex;
  t.subscribers <- Array.append t.subscribers [| f |];
  Mutex.unlock t.mutex

(* The per-event hot path: no closure allocation (manual unlock instead
   of [Fun.protect]) — with [record = false], no sinks and one
   subscriber, an emit is the lock, one match dispatch, and the
   subscriber's O(1) updates. A [~threadsafe:false] hub skips the lock
   entirely: its pair of C stub calls is the single largest fixed cost
   per event, and single-domain drivers (the simulator, the service
   tower) pay it for nothing. *)
let dispatch t ev =
  let ev = match t.stamper with None -> ev | Some st -> Stamper.stamp st ev in
  if t.record then Metrics.record_event t.registry ev;
  (match t.sinks with
  | [] -> ()
  | sinks -> List.iter (fun (s : Sink.t) -> s.Sink.emit ev) sinks);
  let subs = t.subscribers in
  for i = 0 to Array.length subs - 1 do
    subs.(i) ev
  done

let emit t ev =
  if not t.threadsafe then dispatch t ev
  else begin
    Mutex.lock t.mutex;
    (try dispatch t ev
     with e ->
       Mutex.unlock t.mutex;
       raise e);
    Mutex.unlock t.mutex
  end

let metrics t = t.registry

let with_metrics t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> f t.registry)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> List.iter (fun (s : Sink.t) -> s.Sink.close ()) t.sinks)

let suspect_diff t ~time ~observer ~before ~after =
  if not (Pidset.equal before after) then begin
    Pidset.iter
      (fun subject ->
        if not (Pidset.mem subject before) then
          emit t (Event.make ~time (Event.Suspect_add { observer; subject })))
      after;
    Pidset.iter
      (fun subject ->
        if not (Pidset.mem subject after) then
          emit t (Event.make ~time (Event.Suspect_remove { observer; subject })))
      before
  end

let emit_windows t windows =
  List.iter
    (fun ((x, y), measured) ->
      emit t (Event.make ~time:x Event.Window_open);
      emit t (Event.make ~time:y (Event.Window_close { opened = x; measured })))
    windows
