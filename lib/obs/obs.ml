open Ftss_util

type t = {
  mutable sinks : Sink.t list;
  registry : Metrics.t;
  mutex : Mutex.t;
  stamper : Stamper.t option;
}

let create ?(sinks = []) ?metrics ?stamp () =
  {
    sinks;
    registry = (match metrics with Some m -> m | None -> Metrics.create ());
    mutex = Mutex.create ();
    stamper = Option.map (fun n -> Stamper.create ~n) stamp;
  }

let add_sink t sink =
  Mutex.lock t.mutex;
  t.sinks <- t.sinks @ [ sink ];
  Mutex.unlock t.mutex

let emit t ev =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let ev = match t.stamper with None -> ev | Some st -> Stamper.stamp st ev in
      Metrics.record_event t.registry ev;
      List.iter (fun (s : Sink.t) -> s.Sink.emit ev) t.sinks)

let metrics t = t.registry

let with_metrics t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> f t.registry)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> List.iter (fun (s : Sink.t) -> s.Sink.close ()) t.sinks)

let suspect_diff t ~time ~observer ~before ~after =
  if not (Pidset.equal before after) then begin
    Pidset.iter
      (fun subject ->
        if not (Pidset.mem subject before) then
          emit t (Event.make ~time (Event.Suspect_add { observer; subject })))
      after;
    Pidset.iter
      (fun subject ->
        if not (Pidset.mem subject after) then
          emit t (Event.make ~time (Event.Suspect_remove { observer; subject })))
      before
  end

let emit_windows t windows =
  List.iter
    (fun ((x, y), measured) ->
      emit t (Event.make ~time:x Event.Window_open);
      emit t (Event.make ~time:y (Event.Window_close { opened = x; measured })))
    windows
