(** Comparing benchmark gauge snapshots: the [ftss bench-diff] engine.

    A snapshot is the JSON written by the bench harness — either the
    schema-2 envelope [{"experiment", "schema": 2, "counters", "gauges",
    "histograms"}] or the bare schema-1 [Metrics.to_json] form (accepted
    for committed baselines that predate the envelope). Only gauges are
    compared: the harness stores every published figure as a gauge.

    Whether a change is a regression depends on the gauge's unit, which
    its name carries: ["...per_sec..."] gauges are higher-better,
    ["ns_per_call"] / ["elapsed"] / ["seconds"] gauges are lower-better,
    and anything else is informational — shown in the table, never
    flagged. *)

type snapshot = {
  experiment : string option;  (** [None] on schema-1 files *)
  schema : int;  (** 1 when the file has no envelope *)
  gauges : (string * float) list;
}

(** Decode an in-memory snapshot document. *)
val load_json : Json.t -> snapshot

(** Read and decode a snapshot file. *)
val load : string -> (snapshot, string) result

type direction = Lower_better | Higher_better | Informational

(** The unit heuristic described above. *)
val direction : string -> direction

type entry = {
  name : string;
  old_value : float;
  new_value : float;
  dir : direction;
  worse_pct : float;
      (** percent by which NEW is worse than OLD along [dir]; [<= 0]
          when no worse; [0.] for informational gauges or non-positive
          values *)
}

type report = {
  old_experiment : string option;
  new_experiment : string option;
  entries : entry list;  (** gauges present in both, OLD's order *)
  only_old : string list;
  only_new : string list;
}

val diff : old_:snapshot -> new_:snapshot -> report

(** Entries whose [worse_pct] exceeds [max_regress] percent (direction
    aware; informational gauges never regress). *)
val regressions : report -> max_regress:float -> entry list

val pp_direction : Format.formatter -> direction -> unit

(** The comparison table; entries beyond [max_regress] are marked
    [REGRESSION]. *)
val pp : ?max_regress:float -> Format.formatter -> report -> unit
