(** A minimal, dependency-free JSON representation.

    The observability layer serializes events (JSON Lines trace files) and
    metrics snapshots (single JSON documents) and parses them back for the
    [ftss trace] summarizer, so both directions live here rather than in an
    external package the build image may not carry. The encoder emits
    compact single-line documents; the decoder accepts any
    whitespace-separated standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) encoding. Non-finite floats encode as [null]
    (JSON has no NaN/infinity). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse one JSON document. Trailing input after the document is an
    error, as is any malformed input; the message carries a byte offset. *)
val of_string : string -> (t, string) result

(** [member key json] is the value bound to [key] when [json] is an
    object containing it. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

(** [to_float_opt] accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_bool_opt : t -> bool option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
