(** The per-run causal clock that turns an event stream into a stamped
    event stream.

    One stamper serves one run over a universe of [n] processes. Every
    event is assigned a fresh [eid] (stream order) and a vector clock
    derived from the event's body alone:

    - [Send] ticks the sender and records the pending send per link (a
      synchronous broadcast, [dst = None], records one per link);
    - [Deliver] pops the link's oldest pending send, merges its clock
      into the receiver's, then ticks the receiver;
    - [Drop] pops the pending send {e without} merging — an omitted
      message contributes no causality; its stamp carries the suppressed
      send's clock so blame can be chained offline;
    - [Crash]/[Corrupt]/[Decide]/[Suspect_*] tick the located process;
    - round boundaries, windows, and checker/fuzzer lifecycle events get
      the join of every clock (they summarize the whole run so far).

    Per-link pending sends are FIFO. On channels the transport may
    reorder (the asynchronous simulator's random delays), pairing by
    FIFO can attribute a delivery to an earlier same-link send — an
    under-approximation that is corrected by the sender's own program
    order (the later send's clock dominates the earlier's), so knowledge
    sets are exact even when individual message attribution is not; see
    DESIGN.md "Provenance".

    Events whose endpoints fall outside the universe, and events already
    stamped, pass through unchanged. Not thread-safe on its own: the
    {!Obs} hub invokes it under its mutex. *)

type t

val create : n:int -> t
val universe : t -> int

(** [stamp t ev] is [ev] with its causal stamp attached (mutating the
    stamper's clocks); [ev] unchanged if it already carries a stamp. *)
val stamp : t -> Event.t -> Event.t
