(** Pluggable event consumers.

    A sink is a pair of callbacks; {!Obs.t} fans each emitted event out to
    every attached sink under one mutex, so sink implementations need no
    locking of their own. *)

type t = { emit : Event.t -> unit; close : unit -> unit }

val make : emit:(Event.t -> unit) -> close:(unit -> unit) -> t

(** Discards everything. *)
val null : t

(** Writes one compact JSON document per event, newline-terminated (JSON
    Lines). [close] flushes but leaves the channel open (the caller owns
    it). *)
val jsonl : out_channel -> t

(** [jsonl_file path] opens (truncating) [path]; [close] closes it. *)
val jsonl_file : string -> t

(** A bounded in-memory ring buffer: keeps the most recent [capacity]
    events, silently evicting the oldest. *)
type ring

(** Raises [Invalid_argument] if [capacity < 1]. *)
val ring : capacity:int -> ring

val ring_sink : ring -> t

(** Retained events, oldest first. *)
val ring_contents : ring -> Event.t list

(** Total events ever pushed (>= retained count). *)
val ring_seen : ring -> int

(** Pretty-prints one line per event. [kinds], when given, restricts
    output to events whose {!Event.kind} is listed — the filtering
    console sink. *)
val console : ?kinds:string list -> Format.formatter -> t
