type t = { eid : int; vc : int array }

let equal a b = a.eid = b.eid && a.vc = b.vc

let dominates ~by t =
  let n = Array.length t.vc in
  Array.length by.vc = n
  &&
  let rec check i = i >= n || (t.vc.(i) <= by.vc.(i) && check (i + 1)) in
  check 0

let component t p = if p >= 0 && p < Array.length t.vc then t.vc.(p) else 0

let json_fields t =
  [
    ("eid", Json.Int t.eid);
    ("vc", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) t.vc)));
  ]

let of_json_fields json =
  match (Json.member "eid" json, Json.member "vc" json) with
  | Some eid, Some vc -> (
    match (Json.to_int_opt eid, Json.to_list_opt vc) with
    | Some eid, Some items ->
      let rec ints acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | item :: rest -> (
          match Json.to_int_opt item with
          | Some i -> ints (i :: acc) rest
          | None -> None)
      in
      Option.map (fun vc -> { eid; vc }) (ints [] items)
    | _ -> None)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "#%d[%s]" t.eid
    (String.concat "," (Array.to_list (Array.map string_of_int t.vc)))
