type t = {
  n : int;
  mutable next_eid : int;
  vcs : int array array; (* vcs.(p) = p's current clock *)
  channels : (int * int, Stamp.t Queue.t) Hashtbl.t; (* in-flight sends per link *)
}

let create ~n =
  if n < 0 then invalid_arg "Stamper.create: n < 0";
  {
    n;
    next_eid = 0;
    vcs = Array.init n (fun _ -> Array.make n 0);
    channels = Hashtbl.create (max 16 (n * n));
  }

let universe t = t.n

let in_range t p = p >= 0 && p < t.n

let fresh t vc =
  let s = { Stamp.eid = t.next_eid; vc = Array.copy vc } in
  t.next_eid <- t.next_eid + 1;
  s

let tick t p = t.vcs.(p).(p) <- t.vcs.(p).(p) + 1

let merge t p vc =
  let own = t.vcs.(p) in
  let k = min (Array.length own) (Array.length vc) in
  for i = 0 to k - 1 do
    if vc.(i) > own.(i) then own.(i) <- vc.(i)
  done

let push t ~src ~dst stamp =
  let q =
    match Hashtbl.find_opt t.channels (src, dst) with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.channels (src, dst) q;
      q
  in
  Queue.push stamp q

let pop t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
  | _ -> None

(* The join over every process's clock — the stamp of a "global" event
   (round boundaries, windows, checker/fuzzer lifecycle), which causally
   summarizes the whole computation so far. *)
let join t =
  let vc = Array.make t.n 0 in
  Array.iter
    (fun own ->
      for i = 0 to t.n - 1 do
        if own.(i) > vc.(i) then vc.(i) <- own.(i)
      done)
    t.vcs;
  vc

let located t body =
  let loc =
    match (body : Event.body) with
    | Event.Send { src; _ } -> Some src
    | Event.Deliver { dst; _ } -> Some dst
    | Event.Crash { pid } | Event.Corrupt { pid } | Event.Decide { pid; _ }
    | Event.Submit { pid; _ } | Event.Commit { pid; _ } | Event.Apply { pid; _ }
    | Event.Recover { pid; _ } ->
      Some pid
    | Event.Suspect_add { observer; _ } | Event.Suspect_remove { observer; _ } ->
      Some observer
    | Event.Drop _ | Event.Round_begin | Event.Round_end | Event.Window_open
    | Event.Window_close _ | Event.Case_start _ | Event.Case_verdict _
    | Event.Coverage _ ->
      None
  in
  match loc with Some p when in_range t p -> Some p | _ -> None

let stamp t (ev : Event.t) =
  if ev.Event.stamp <> None then ev
  else
    let stamp =
      match ev.Event.body with
      | Event.Send { src; dst } when in_range t src ->
        tick t src;
        let s = fresh t t.vcs.(src) in
        (match dst with
        | Some d when in_range t d -> push t ~src ~dst:d s
        | Some _ -> ()
        | None ->
          (* Synchronous broadcast: one pending send per link. *)
          for d = 0 to t.n - 1 do
            push t ~src ~dst:d s
          done);
        Some s
      | Event.Deliver { src; dst } when in_range t dst ->
        (match pop t ~src ~dst with
        | Some sent -> merge t dst sent.Stamp.vc
        | None -> (* spurious / unpaired message: no causal ancestor *) ());
        tick t dst;
        Some (fresh t t.vcs.(dst))
      | Event.Drop { src; dst; _ } ->
        (* The omitted message's pending send is consumed but its clock
           is NOT merged into dst — omission contributes no causality.
           The stamp carries the suppressed send's clock so offline
           tooling can chain the drop back to its origin. *)
        let vc =
          match pop t ~src ~dst with
          | Some sent -> Array.copy sent.Stamp.vc
          | None -> Array.make t.n 0
        in
        let s = { Stamp.eid = t.next_eid; vc } in
        t.next_eid <- t.next_eid + 1;
        Some s
      | (Event.Crash _ | Event.Corrupt _ | Event.Decide _ | Event.Suspect_add _
        | Event.Suspect_remove _ | Event.Submit _ | Event.Commit _
        | Event.Apply _ | Event.Recover _) as body -> (
        match located t body with
        | Some p ->
          tick t p;
          Some (fresh t t.vcs.(p))
        | None -> None)
      | Event.Round_begin | Event.Round_end | Event.Window_open
      | Event.Window_close _ | Event.Case_start _ | Event.Case_verdict _
      | Event.Coverage _ ->
        Some (fresh t (join t))
      | Event.Send _ | Event.Deliver _ -> None (* endpoint outside the universe *)
    in
    match stamp with None -> ev | Some s -> { ev with Event.stamp = Some s }
