(** The structured-event taxonomy shared by every runtime layer.

    One event is one observable incident of an execution: a round boundary
    in the lockstep runner, a message movement (send/deliver/drop, the
    drop carrying the blamed endpoint), a process failure (crash) or
    systemic failure (state corruption), a failure-detector suspicion
    change, a consensus decision, a coterie-stable window boundary, or a
    model-checker case lifecycle step. Events are plain data: producers
    construct them only when a sink is attached (the zero-sink path of
    every instrumented component is allocation-free), and each encodes to
    one JSON Lines record via {!to_json}. *)

open Ftss_util

type body =
  | Round_begin  (** lockstep round [t] starts *)
  | Round_end  (** lockstep round [t] finished its transition *)
  | Send of { src : Pid.t; dst : Pid.t option }
      (** [src] sent a message; [dst = None] is the synchronous model's
          broadcast, [Some d] a point send in the asynchronous model *)
  | Deliver of { src : Pid.t; dst : Pid.t }
  | Drop of { src : Pid.t; dst : Pid.t; blame : Pid.t option }
      (** the [src -> dst] message was omitted; [blame] is the declared
          faulty endpoint charged with the omission, when known *)
  | Crash of { pid : Pid.t }
  | Corrupt of { pid : Pid.t }  (** systemic failure injected into [pid] *)
  | Suspect_add of { observer : Pid.t; subject : Pid.t }
  | Suspect_remove of { observer : Pid.t; subject : Pid.t }
  | Decide of { pid : Pid.t; instance : int; value : int }
  | Window_open  (** a coterie-stable window opens at prefix length [t] *)
  | Window_close of { opened : int; measured : int }
      (** the window that opened at [opened] closes at [t]; [measured] is
          the measured stabilization [d] within it *)
  | Case_start of { case : int }  (** checker case [case] dequeued *)
  | Case_verdict of { case : int; ok : bool; dedup : bool; states : int }
      (** checker verdict; [dedup] marks a fingerprint-cache hit *)
  | Coverage of { execs : int; corpus : int; points : int }
      (** fuzzer coverage grew: after [execs] executions the corpus holds
          [corpus] entries covering [points] distinct coverage points; the
          event stream of a fuzzing run is its coverage-growth curve *)
  | Submit of { pid : Pid.t; ops : int }
      (** [ops] client operations arrived at replica [pid]'s pending queue *)
  | Commit of { pid : Pid.t; slot : int; ops : int }
      (** replica [pid] learned the total-order decision for log slot
          [slot], a batch of [ops] operations *)
  | Apply of { pid : Pid.t; slot : int; digest : int }
      (** replica [pid] applied slot [slot] to its state machine; [digest]
          is the replica-state digest after the application — equal digests
          at equal slots witness convergence *)
  | Recover of { pid : Pid.t; slots : int }
      (** replica [pid] detected local inconsistency (corruption, or a log
          diverging from the quorum) and rebuilt; [slots] is the number of
          log entries re-fetched or re-validated *)

type t = {
  time : int;
      (** round number (sync), simulation time (async), or case index
          (checker) — each producer documents its clock *)
  body : body;
  stamp : Stamp.t option;
      (** the causal stamp, attached at emission by a hub with a
          {!Stamper}; [None] on unstamped streams *)
}

(** [make ~time body] builds an (unstamped, unless [?stamp]) event —
    producers should use this rather than the record literal so the
    envelope can grow fields without touching every emission site. *)
val make : ?stamp:Stamp.t -> time:int -> body -> t

(** Stable lowercase tag of the constructor ("drop", "suspect_add", ...),
    used for filtering and summaries. *)
val kind : t -> string

(** Every tag, in declaration order. *)
val kinds : string list

val to_json : t -> Json.t

(** Decode one event; [None] when the document is not a recognizable
    event record (unknown tag, missing field). Total inverse of
    {!to_json}. *)
val of_json : Json.t -> t option

(** One human-readable line, e.g. [t=12 drop 0->2 blame=0]. *)
val pp : Format.formatter -> t -> unit
