open Ftss_util

type body =
  | Round_begin
  | Round_end
  | Send of { src : Pid.t; dst : Pid.t option }
  | Deliver of { src : Pid.t; dst : Pid.t }
  | Drop of { src : Pid.t; dst : Pid.t; blame : Pid.t option }
  | Crash of { pid : Pid.t }
  | Corrupt of { pid : Pid.t }
  | Suspect_add of { observer : Pid.t; subject : Pid.t }
  | Suspect_remove of { observer : Pid.t; subject : Pid.t }
  | Decide of { pid : Pid.t; instance : int; value : int }
  | Window_open
  | Window_close of { opened : int; measured : int }
  | Case_start of { case : int }
  | Case_verdict of { case : int; ok : bool; dedup : bool; states : int }
  | Coverage of { execs : int; corpus : int; points : int }
  | Submit of { pid : Pid.t; ops : int }
  | Commit of { pid : Pid.t; slot : int; ops : int }
  | Apply of { pid : Pid.t; slot : int; digest : int }
  | Recover of { pid : Pid.t; slots : int }

type t = { time : int; body : body; stamp : Stamp.t option }

let make ?stamp ~time body = { time; body; stamp }

let kind t =
  match t.body with
  | Round_begin -> "round_begin"
  | Round_end -> "round_end"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Crash _ -> "crash"
  | Corrupt _ -> "corrupt"
  | Suspect_add _ -> "suspect_add"
  | Suspect_remove _ -> "suspect_remove"
  | Decide _ -> "decide"
  | Window_open -> "window_open"
  | Window_close _ -> "window_close"
  | Case_start _ -> "case_start"
  | Case_verdict _ -> "case_verdict"
  | Coverage _ -> "coverage"
  | Submit _ -> "submit"
  | Commit _ -> "commit"
  | Apply _ -> "apply"
  | Recover _ -> "recover"

let kinds =
  [
    "round_begin"; "round_end"; "send"; "deliver"; "drop"; "crash"; "corrupt";
    "suspect_add"; "suspect_remove"; "decide"; "window_open"; "window_close";
    "case_start"; "case_verdict"; "coverage"; "submit"; "commit"; "apply";
    "recover";
  ]

let to_json t =
  let fields =
    match t.body with
    | Round_begin | Round_end | Window_open -> []
    | Send { src; dst } -> (
      ("src", Json.Int src)
      :: (match dst with None -> [] | Some d -> [ ("dst", Json.Int d) ]))
    | Deliver { src; dst } -> [ ("src", Json.Int src); ("dst", Json.Int dst) ]
    | Drop { src; dst; blame } -> (
      ("src", Json.Int src) :: ("dst", Json.Int dst)
      :: (match blame with None -> [] | Some b -> [ ("blame", Json.Int b) ]))
    | Crash { pid } | Corrupt { pid } -> [ ("pid", Json.Int pid) ]
    | Suspect_add { observer; subject } | Suspect_remove { observer; subject } ->
      [ ("observer", Json.Int observer); ("subject", Json.Int subject) ]
    | Decide { pid; instance; value } ->
      [ ("pid", Json.Int pid); ("instance", Json.Int instance); ("value", Json.Int value) ]
    | Window_close { opened; measured } ->
      [ ("opened", Json.Int opened); ("measured", Json.Int measured) ]
    | Case_start { case } -> [ ("case", Json.Int case) ]
    | Case_verdict { case; ok; dedup; states } ->
      [
        ("case", Json.Int case); ("ok", Json.Bool ok); ("dedup", Json.Bool dedup);
        ("states", Json.Int states);
      ]
    | Coverage { execs; corpus; points } ->
      [
        ("execs", Json.Int execs); ("corpus", Json.Int corpus);
        ("points", Json.Int points);
      ]
    | Submit { pid; ops } -> [ ("pid", Json.Int pid); ("ops", Json.Int ops) ]
    | Commit { pid; slot; ops } ->
      [ ("pid", Json.Int pid); ("slot", Json.Int slot); ("ops", Json.Int ops) ]
    | Apply { pid; slot; digest } ->
      [ ("pid", Json.Int pid); ("slot", Json.Int slot); ("digest", Json.Int digest) ]
    | Recover { pid; slots } ->
      [ ("pid", Json.Int pid); ("slots", Json.Int slots) ]
  in
  let fields =
    match t.stamp with
    | None -> fields
    | Some stamp -> fields @ Stamp.json_fields stamp
  in
  Json.Obj (("t", Json.Int t.time) :: ("ev", Json.String (kind t)) :: fields)

let of_json json =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Json.member k json) Json.to_int_opt in
  let bool k = Option.bind (Json.member k json) Json.to_bool_opt in
  let* time = int "t" in
  let* ev = Option.bind (Json.member "ev" json) Json.to_string_opt in
  let* body =
    match ev with
    | "round_begin" -> Some Round_begin
    | "round_end" -> Some Round_end
    | "window_open" -> Some Window_open
    | "send" ->
      let* src = int "src" in
      Some (Send { src; dst = int "dst" })
    | "deliver" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Some (Deliver { src; dst })
    | "drop" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Some (Drop { src; dst; blame = int "blame" })
    | "crash" ->
      let* pid = int "pid" in
      Some (Crash { pid })
    | "corrupt" ->
      let* pid = int "pid" in
      Some (Corrupt { pid })
    | "suspect_add" ->
      let* observer = int "observer" in
      let* subject = int "subject" in
      Some (Suspect_add { observer; subject })
    | "suspect_remove" ->
      let* observer = int "observer" in
      let* subject = int "subject" in
      Some (Suspect_remove { observer; subject })
    | "decide" ->
      let* pid = int "pid" in
      let* instance = int "instance" in
      let* value = int "value" in
      Some (Decide { pid; instance; value })
    | "window_close" ->
      let* opened = int "opened" in
      let* measured = int "measured" in
      Some (Window_close { opened; measured })
    | "case_start" ->
      let* case = int "case" in
      Some (Case_start { case })
    | "case_verdict" ->
      let* case = int "case" in
      let* ok = bool "ok" in
      let* dedup = bool "dedup" in
      let* states = int "states" in
      Some (Case_verdict { case; ok; dedup; states })
    | "coverage" ->
      let* execs = int "execs" in
      let* corpus = int "corpus" in
      let* points = int "points" in
      Some (Coverage { execs; corpus; points })
    | "submit" ->
      let* pid = int "pid" in
      let* ops = int "ops" in
      Some (Submit { pid; ops })
    | "commit" ->
      let* pid = int "pid" in
      let* slot = int "slot" in
      let* ops = int "ops" in
      Some (Commit { pid; slot; ops })
    | "apply" ->
      let* pid = int "pid" in
      let* slot = int "slot" in
      let* digest = int "digest" in
      Some (Apply { pid; slot; digest })
    | "recover" ->
      let* pid = int "pid" in
      let* slots = int "slots" in
      Some (Recover { pid; slots })
    | _ -> None
  in
  Some { time; body; stamp = Stamp.of_json_fields json }

let pp ppf t =
  Format.fprintf ppf "t=%-5d %s" t.time (kind t);
  match t.body with
  | Round_begin | Round_end | Window_open -> ()
  | Send { src; dst } -> (
    match dst with
    | None -> Format.fprintf ppf " %a->*" Pid.pp src
    | Some d -> Format.fprintf ppf " %a->%a" Pid.pp src Pid.pp d)
  | Deliver { src; dst } -> Format.fprintf ppf " %a->%a" Pid.pp src Pid.pp dst
  | Drop { src; dst; blame } -> (
    Format.fprintf ppf " %a->%a" Pid.pp src Pid.pp dst;
    match blame with
    | Some b -> Format.fprintf ppf " blame=%a" Pid.pp b
    | None -> ())
  | Crash { pid } | Corrupt { pid } -> Format.fprintf ppf " p%a" Pid.pp pid
  | Suspect_add { observer; subject } ->
    Format.fprintf ppf " %a suspects %a" Pid.pp observer Pid.pp subject
  | Suspect_remove { observer; subject } ->
    Format.fprintf ppf " %a trusts %a" Pid.pp observer Pid.pp subject
  | Decide { pid; instance; value } ->
    Format.fprintf ppf " p%a instance=%d value=%d" Pid.pp pid instance value
  | Window_close { opened; measured } ->
    Format.fprintf ppf " opened=%d measured=%d" opened measured
  | Case_start { case } -> Format.fprintf ppf " case=%d" case
  | Case_verdict { case; ok; dedup; states } ->
    Format.fprintf ppf " case=%d ok=%b dedup=%b states=%d" case ok dedup states
  | Coverage { execs; corpus; points } ->
    Format.fprintf ppf " execs=%d corpus=%d points=%d" execs corpus points
  | Submit { pid; ops } -> Format.fprintf ppf " p%a ops=%d" Pid.pp pid ops
  | Commit { pid; slot; ops } ->
    Format.fprintf ppf " p%a slot=%d ops=%d" Pid.pp pid slot ops
  | Apply { pid; slot; digest } ->
    Format.fprintf ppf " p%a slot=%d digest=%d" Pid.pp pid slot digest
  | Recover { pid; slots } -> Format.fprintf ppf " p%a slots=%d" Pid.pp pid slots
