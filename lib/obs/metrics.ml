type counter = { mutable count : int }
type gauge = { mutable value : float }

let reservoir_capacity = 4096

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  reservoir : float array; (* first [reservoir_capacity] samples *)
  mutable retained : int;
}

(* Log-bucketed (HDR-style) histogram: geometric buckets at ratio
   2^(1/8), so every recorded value lands in a bucket within ~9% of its
   true magnitude. Unlike the reservoir above — which keeps only the
   first [reservoir_capacity] samples and therefore skews long-run
   percentiles toward warm-up — bucket counts absorb every sample, so
   percentile estimates stay unbiased on unbounded streams. Preallocated,
   O(1) observe, O(buckets) percentile. *)

let lhist_buckets = 256
let lhist_gamma = 2. ** 0.125
let lhist_log_gamma = log lhist_gamma

(* Relative half-width of a bucket: a percentile estimate is within this
   factor of some recorded sample. *)
let lhist_error = sqrt lhist_gamma -. 1.

type lhist = {
  mutable l_count : int;
  mutable l_sum : float;
  mutable l_min : float;
  mutable l_max : float;
  buckets : int array; (* bucket 0: v < 1; bucket k: gamma^(k-1) <= v < gamma^k *)
}

let lhist_create () =
  {
    l_count = 0;
    l_sum = 0.;
    l_min = infinity;
    l_max = neg_infinity;
    buckets = Array.make lhist_buckets 0;
  }

let lhist_bucket v =
  if v < 1. then 0
  else min (lhist_buckets - 1) (1 + int_of_float (log v /. lhist_log_gamma))

let lobserve h v =
  h.l_count <- h.l_count + 1;
  h.l_sum <- h.l_sum +. v;
  if v < h.l_min then h.l_min <- v;
  if v > h.l_max then h.l_max <- v;
  let b = lhist_bucket v in
  h.buckets.(b) <- h.buckets.(b) + 1

let lhist_merge into from =
  into.l_count <- into.l_count + from.l_count;
  into.l_sum <- into.l_sum +. from.l_sum;
  if from.l_min < into.l_min then into.l_min <- from.l_min;
  if from.l_max > into.l_max then into.l_max <- from.l_max;
  for b = 0 to lhist_buckets - 1 do
    into.buckets.(b) <- into.buckets.(b) + from.buckets.(b)
  done

let lhist_count h = h.l_count
let lhist_sum h = h.l_sum
let lhist_min h = if h.l_count = 0 then nan else h.l_min
let lhist_max h = if h.l_count = 0 then nan else h.l_max

(* Geometric midpoint of bucket [b] — the representative value a
   percentile query reports. *)
let lhist_value b = if b = 0 then 0. else lhist_gamma ** (float_of_int b -. 0.5)

let lpercentile h p =
  if p < 0. || p > 100. then invalid_arg "Metrics.lpercentile: p outside [0, 100]";
  if h.l_count = 0 then nan
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.l_count))) in
    let acc = ref 0 and b = ref 0 in
    while !acc < rank && !b < lhist_buckets do
      acc := !acc + h.buckets.(!b);
      incr b
    done;
    (* !b - 1 is the bucket holding the rank-th sample; clamp the bucket
       midpoint by the exact extremes so tails never overshoot. *)
    max h.l_min (min h.l_max (lhist_value (!b - 1)))
  end

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  lhists : (string, lhist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    lhists = Hashtbl.create 8;
  }

let is_empty t =
  Hashtbl.length t.counters = 0
  && Hashtbl.length t.gauges = 0
  && Hashtbl.length t.histograms = 0
  && Hashtbl.length t.lhists = 0

let get_or_create table name fresh =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = fresh () in
    Hashtbl.add table name v;
    v

let counter t name = get_or_create t.counters name (fun () -> { count = 0 })
let inc c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let gauge t name = get_or_create t.gauges name (fun () -> { value = 0. })
let set g v = g.value <- v
let gauge_value g = g.value

let lhist t name = get_or_create t.lhists name lhist_create

let histogram t name =
  get_or_create t.histograms name (fun () ->
      {
        h_count = 0;
        h_sum = 0.;
        h_min = infinity;
        h_max = neg_infinity;
        reservoir = Array.make reservoir_capacity 0.;
        retained = 0;
      })

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if h.retained < reservoir_capacity then begin
    h.reservoir.(h.retained) <- v;
    h.retained <- h.retained + 1
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let percentile h p =
  if p < 0. || p > 100. then invalid_arg "Metrics.percentile: p outside [0, 100]";
  if h.retained = 0 then nan
  else begin
    let sorted = Array.sub h.reservoir 0 h.retained in
    Array.sort compare sorted;
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int h.retained)) - 1
    in
    sorted.(max 0 (min (h.retained - 1) rank))
  end

(* --- standard derivations from the event taxonomy --- *)

let link name src dst = Printf.sprintf "%s.%d->%d" name src dst

let record_event t ev =
  match ev.Event.body with
  | Event.Round_begin -> inc (counter t "rounds")
  | Event.Round_end -> ()
  | Event.Send _ -> inc (counter t "messages_sent")
  | Event.Deliver { src; dst } ->
    inc (counter t "messages_delivered");
    inc (counter t (link "link_delivered" src dst))
  | Event.Drop { src; dst; _ } ->
    inc (counter t "messages_dropped");
    inc (counter t (link "link_dropped" src dst))
  | Event.Crash _ -> inc (counter t "crashes")
  | Event.Corrupt _ -> inc (counter t "corruptions")
  | Event.Suspect_add _ ->
    inc (counter t "suspicions_added");
    inc (counter t "suspicion_churn")
  | Event.Suspect_remove _ ->
    inc (counter t "suspicions_removed");
    inc (counter t "suspicion_churn")
  | Event.Decide _ -> inc (counter t "decisions")
  | Event.Window_open -> inc (counter t "stable_windows")
  | Event.Window_close { measured; _ } ->
    observe (histogram t "stabilization") (float_of_int measured)
  | Event.Case_start _ -> inc (counter t "checker_cases_started")
  | Event.Case_verdict { ok; dedup; states; _ } ->
    inc (counter t "checker_cases");
    if not ok then inc (counter t "checker_violations");
    if dedup then inc (counter t "checker_dedup_hits");
    add (counter t "checker_states") states
  | Event.Coverage { execs; corpus; points } ->
    inc (counter t "fuzz_coverage_growth");
    set (gauge t "fuzz_execs") (float_of_int execs);
    set (gauge t "fuzz_corpus") (float_of_int corpus);
    set (gauge t "fuzz_coverage_points") (float_of_int points)
  | Event.Submit { ops; _ } -> add (counter t "ops_submitted") ops
  | Event.Commit { ops; _ } ->
    inc (counter t "slots_committed");
    add (counter t "ops_committed") ops
  | Event.Apply _ -> inc (counter t "slots_applied")
  | Event.Recover { slots; _ } ->
    inc (counter t "recoveries");
    observe (histogram t "recovery_slots") (float_of_int slots)

(* --- export --- *)

let sorted_bindings table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram_json h =
  if h.h_count = 0 then Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum", Json.Float h.h_sum);
        ("min", Json.Float h.h_min);
        ("max", Json.Float h.h_max);
        ("mean", Json.Float (h.h_sum /. float_of_int h.h_count));
        ("p50", Json.Float (percentile h 50.));
        ("p95", Json.Float (percentile h 95.));
        ("p99", Json.Float (percentile h 99.));
      ]

(* Log-bucket histograms export the same field set as reservoir ones (so
   bench-diff and any snapshot consumer read both alike), plus a "kind"
   tag and the unbiased tail quantile the reservoir cannot provide. *)
let lhist_json h =
  if h.l_count = 0 then Json.Obj [ ("count", Json.Int 0); ("kind", Json.String "logbucket") ]
  else
    Json.Obj
      [
        ("count", Json.Int h.l_count);
        ("sum", Json.Float h.l_sum);
        ("min", Json.Float h.l_min);
        ("max", Json.Float h.l_max);
        ("mean", Json.Float (h.l_sum /. float_of_int h.l_count));
        ("p50", Json.Float (lpercentile h 50.));
        ("p95", Json.Float (lpercentile h 95.));
        ("p99", Json.Float (lpercentile h 99.));
        ("p999", Json.Float (lpercentile h 99.9));
        ("kind", Json.String "logbucket");
      ]

let to_json t =
  let histograms =
    List.map (fun (k, h) -> (k, histogram_json h)) (sorted_bindings t.histograms)
    @ List.map (fun (k, h) -> (k, lhist_json h)) (sorted_bindings t.lhists)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, c) -> (k, Json.Int c.count)) (sorted_bindings t.counters)) );
      ( "gauges",
        Json.Obj
          (List.map (fun (k, g) -> (k, Json.Float g.value)) (sorted_bindings t.gauges)) );
      ("histograms", Json.Obj histograms);
    ]

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>";
  let first = ref true in
  let cut () = if !first then first := false else Format.fprintf ppf "@," in
  List.iter
    (fun (k, c) ->
      cut ();
      Format.fprintf ppf "%-32s %d" k c.count)
    (sorted_bindings t.counters);
  List.iter
    (fun (k, g) ->
      cut ();
      Format.fprintf ppf "%-32s %.3f" k g.value)
    (sorted_bindings t.gauges);
  List.iter
    (fun (k, h) ->
      cut ();
      if h.h_count = 0 then Format.fprintf ppf "%-32s (empty)" k
      else
        Format.fprintf ppf "%-32s count=%d mean=%.2f min=%.0f max=%.0f p95=%.0f" k
          h.h_count
          (h.h_sum /. float_of_int h.h_count)
          h.h_min h.h_max (percentile h 95.))
    (sorted_bindings t.histograms);
  List.iter
    (fun (k, h) ->
      cut ();
      if h.l_count = 0 then Format.fprintf ppf "%-32s (empty)" k
      else
        Format.fprintf ppf "%-32s count=%d mean=%.2f min=%.0f max=%.0f p99=%.0f" k
          h.l_count
          (h.l_sum /. float_of_int h.l_count)
          h.l_min h.l_max (lpercentile h 99.))
    (sorted_bindings t.lhists);
  Format.fprintf ppf "@]"
