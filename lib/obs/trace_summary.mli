(** Reading trace files back: the [ftss trace] summarizer.

    Loads a JSON Lines event file written by {!Sink.jsonl} and answers
    the questions the experiments care about — who suspected whom and
    when, how fast each coterie-stable window stabilized, and which links
    dropped messages under whose blame. *)

open Ftss_util

type t

val of_events : Event.t list -> t

(** Parse a JSON Lines file. Blank lines are skipped; a malformed line or
    an unrecognizable event record is an error naming the line number. *)
val load : string -> (t, string) result

val events : t -> Event.t list
val length : t -> int

(** Events per {!Event.kind}, in {!Event.kinds} order, zero-count kinds
    omitted. *)
val kind_counts : t -> (string * int) list

(** One entry per observer that ever changed its suspicion of anyone:
    [(observer, changes)] with [changes] the ordered
    [(time, subject, suspected?)] transitions. Observers ascending. *)
val suspicion_timeline : t -> (Pid.t * (int * Pid.t * bool) list) list

(** Closed stable windows [(opened, closed, measured d)], in emission
    order. *)
val windows : t -> (int * int * int) list

(** The largest measured stabilization over all closed windows — the
    run's measured [d]. [None] when the trace has no window events. *)
val measured_stabilization : t -> int option

(** The fuzzer's coverage-growth curve: [(execs, corpus, points)] per
    [Coverage] event, in emission order. *)
val coverage_curve : t -> (int * int * int) list

(** The last coverage sample — final execs/corpus/points of a fuzzing
    run. [None] when the trace has no coverage events. *)
val final_coverage : t -> (int * int * int) option

(** The growth curve folded into at most [buckets] (default 10) cells by
    execution count: [(execs, points)] of the last sample in each
    non-empty cell, ascending. *)
val coverage_buckets : ?buckets:int -> t -> (int * int) list

(** Replicated-service totals
    [(ops submitted, slots committed, ops committed, slots applied,
    recoveries)], or [None] when the trace has no service events — the
    census line [ftss trace] prints for service runs. *)
val service_totals : t -> (int * int * int * int * int) option

(** Recovery episodes [(time, replica, slots repaired)] in emission
    order — one entry per [Recover] event. *)
val recovery_timeline : t -> (int * Pid.t * int) list

(** Omission counts per directed link: [((src, dst), (count, blame))].
    [blame] is the blamed endpoint of the link's first drop event. Links
    sorted by [(src, dst)]. *)
val blame_matrix : t -> ((Pid.t * Pid.t) * (int * Pid.t option)) list

(** The full report: event census, windows with measured [d], per-process
    suspicion timeline, and the omission blame matrix. *)
val pp : Format.formatter -> t -> unit
