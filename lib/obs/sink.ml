type t = { emit : Event.t -> unit; close : unit -> unit }

let make ~emit ~close = { emit; close }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let jsonl oc =
  {
    emit =
      (fun ev ->
        output_string oc (Json.to_string (Event.to_json ev));
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let jsonl_file path =
  let oc = open_out path in
  let inner = jsonl oc in
  { inner with close = (fun () -> close_out oc) }

type ring = {
  slots : Event.t option array;
  mutable next : int; (* slot for the next event *)
  mutable seen : int;
}

let ring ~capacity =
  if capacity < 1 then invalid_arg "Sink.ring: capacity < 1";
  { slots = Array.make capacity None; next = 0; seen = 0 }

let ring_sink r =
  let capacity = Array.length r.slots in
  {
    emit =
      (fun ev ->
        r.slots.(r.next) <- Some ev;
        r.next <- (r.next + 1) mod capacity;
        r.seen <- r.seen + 1);
    close = (fun () -> ());
  }

let ring_contents r =
  let capacity = Array.length r.slots in
  let rec collect i acc =
    if i = 0 then acc
    else
      let slot = r.slots.((r.next + capacity - i) mod capacity) in
      collect (i - 1) (match slot with Some ev -> ev :: acc | None -> acc)
  in
  List.rev (collect capacity [])

let ring_seen r = r.seen

let console ?kinds ppf =
  let keep =
    match kinds with
    | None -> fun _ -> true
    | Some ks -> fun ev -> List.mem (Event.kind ev) ks
  in
  {
    emit = (fun ev -> if keep ev then Format.fprintf ppf "%a@." Event.pp ev);
    close = (fun () -> Format.pp_print_flush ppf ());
  }
