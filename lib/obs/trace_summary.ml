open Ftss_util

type t = { evs : Event.t array }

let of_events evs = { evs = Array.of_list evs }
let events t = Array.to_list t.evs
let length t = Array.length t.evs

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (of_events (List.rev acc))
          | line ->
            if String.trim line = "" then loop (lineno + 1) acc
            else (
              match Json.of_string line with
              | Error msg -> Error (Printf.sprintf "%s: line %d: %s" path lineno msg)
              | Ok json -> (
                match Event.of_json json with
                | None ->
                  Error (Printf.sprintf "%s: line %d: not an event record" path lineno)
                | Some ev -> loop (lineno + 1) (ev :: acc)))
        in
        loop 1 [])

let kind_counts t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      let k = Event.kind ev in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    t.evs;
  List.filter_map
    (fun k -> Option.map (fun c -> (k, c)) (Hashtbl.find_opt tbl k))
    Event.kinds

let suspicion_timeline t =
  let tbl = Hashtbl.create 8 in
  let push observer entry =
    Hashtbl.replace tbl observer
      (entry :: Option.value ~default:[] (Hashtbl.find_opt tbl observer))
  in
  Array.iter
    (fun ev ->
      match ev.Event.body with
      | Event.Suspect_add { observer; subject } ->
        push observer (ev.Event.time, subject, true)
      | Event.Suspect_remove { observer; subject } ->
        push observer (ev.Event.time, subject, false)
      | _ -> ())
    t.evs;
  Hashtbl.fold (fun observer changes acc -> (observer, List.rev changes) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Pid.compare a b)

let windows t =
  Array.to_list t.evs
  |> List.filter_map (fun ev ->
         match ev.Event.body with
         | Event.Window_close { opened; measured } ->
           Some (opened, ev.Event.time, measured)
         | _ -> None)

let measured_stabilization t =
  match windows t with
  | [] -> None
  | ws -> Some (List.fold_left (fun acc (_, _, d) -> max acc d) 0 ws)

let coverage_curve t =
  Array.to_list t.evs
  |> List.filter_map (fun ev ->
         match ev.Event.body with
         | Event.Coverage { execs; corpus; points } -> Some (execs, corpus, points)
         | _ -> None)

let final_coverage t =
  match List.rev (coverage_curve t) with [] -> None | last :: _ -> Some last

(* Bucket the growth curve into at most [buckets] cells by execution
   count, keeping the last sample of each cell — enough shape for a
   terminal-width sparkline of coverage growth. *)
let coverage_buckets ?(buckets = 10) t =
  match coverage_curve t with
  | [] -> []
  | curve ->
    let max_execs =
      List.fold_left (fun acc (e, _, _) -> max acc e) 1 curve
    in
    let cell e = min (buckets - 1) (e * buckets / (max_execs + 1)) in
    let tbl = Hashtbl.create buckets in
    List.iter (fun (e, _, p) -> Hashtbl.replace tbl (cell e) (e, p)) curve;
    List.init buckets (fun i -> Hashtbl.find_opt tbl i)
    |> List.filter_map Fun.id

(* Totals of the replicated-service pipeline: ops entering the pending
   queues, ops sequenced by total-order broadcast, slots applied to the
   state machines, and recovery episodes. [None] when the trace carries no
   service events at all, so [pp] can omit the section for non-service
   runs. *)
let service_totals t =
  let submitted = ref 0
  and committed_slots = ref 0
  and committed_ops = ref 0
  and applied = ref 0
  and recovered = ref 0
  and seen = ref false in
  Array.iter
    (fun ev ->
      match ev.Event.body with
      | Event.Submit { ops; _ } ->
        seen := true;
        submitted := !submitted + ops
      | Event.Commit { ops; _ } ->
        seen := true;
        incr committed_slots;
        committed_ops := !committed_ops + ops
      | Event.Apply _ ->
        seen := true;
        incr applied
      | Event.Recover _ ->
        seen := true;
        incr recovered
      | _ -> ())
    t.evs;
  if not !seen then None
  else Some (!submitted, !committed_slots, !committed_ops, !applied, !recovered)

let recovery_timeline t =
  Array.to_list t.evs
  |> List.filter_map (fun ev ->
         match ev.Event.body with
         | Event.Recover { pid; slots } -> Some (ev.Event.time, pid, slots)
         | _ -> None)

let blame_matrix t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      match ev.Event.body with
      | Event.Drop { src; dst; blame } -> (
        match Hashtbl.find_opt tbl (src, dst) with
        | Some (count, first_blame) ->
          Hashtbl.replace tbl (src, dst) (count + 1, first_blame)
        | None -> Hashtbl.add tbl (src, dst) (1, blame))
      | _ -> ())
    t.evs;
  Hashtbl.fold (fun link cell acc -> (link, cell) :: acc) tbl []
  |> List.sort (fun ((a, b), _) ((c, d), _) ->
         match Pid.compare a c with 0 -> Pid.compare b d | o -> o)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "events: %d" (length t);
  List.iter
    (fun (k, c) -> Format.fprintf ppf "@,  %-16s %d" k c)
    (kind_counts t);
  (match windows t with
  | [] -> Format.fprintf ppf "@,stable windows: none recorded"
  | ws ->
    Format.fprintf ppf "@,stable windows (measured stabilization d):";
    List.iter
      (fun (x, y, d) -> Format.fprintf ppf "@,  window %d..%d: d=%d" x y d)
      ws;
    (match measured_stabilization t with
    | Some d -> Format.fprintf ppf "@,measured stabilization: %d" d
    | None -> ()));
  (match suspicion_timeline t with
  | [] -> Format.fprintf ppf "@,suspicion timeline: no changes recorded"
  | timeline ->
    Format.fprintf ppf "@,suspicion timeline (+ suspect, - trust):";
    List.iter
      (fun (observer, changes) ->
        Format.fprintf ppf "@,  p%a:" Pid.pp observer;
        List.iter
          (fun (time, subject, on) ->
            Format.fprintf ppf " %c%a@@t%d" (if on then '+' else '-') Pid.pp subject
              time)
          changes)
      timeline);
  (match final_coverage t with
  | None -> ()
  | Some (execs, corpus, points) ->
    Format.fprintf ppf
      "@,coverage: %d execs, corpus %d, %d points" execs corpus points;
    (match coverage_buckets t with
    | [] | [ _ ] -> ()
    | cells ->
      Format.fprintf ppf "@,coverage growth (execs: points):";
      List.iter
        (fun (e, p) -> Format.fprintf ppf "@,  %8d: %d" e p)
        cells));
  (match service_totals t with
  | None -> ()
  | Some (submitted, slots, committed, applied, recovered) ->
    Format.fprintf ppf
      "@,service: %d ops submitted, %d committed over %d slots, %d applies"
      submitted committed slots applied;
    if recovered = 0 then Format.fprintf ppf "@,recoveries: none recorded"
    else begin
      Format.fprintf ppf "@,recovery timeline (replica: slots repaired):";
      List.iter
        (fun (time, pid, slots) ->
          Format.fprintf ppf "@,  %a: %d slots@@t%d" Pid.pp pid slots time)
        (recovery_timeline t)
    end);
  (match blame_matrix t with
  | [] -> Format.fprintf ppf "@,omissions: none recorded"
  | matrix ->
    Format.fprintf ppf "@,omission blame matrix (src -> dst: count, blamed endpoint):";
    List.iter
      (fun ((src, dst), (count, blame)) ->
        Format.fprintf ppf "@,  %a -> %a: %d%s" Pid.pp src Pid.pp dst count
          (match blame with
          | Some b when Pid.equal b src -> " (blame sender)"
          | Some b when Pid.equal b dst -> " (blame receiver)"
          | Some b -> Printf.sprintf " (blame p%d)" b
          | None -> ""))
      matrix);
  Format.fprintf ppf "@]"
