type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  write buf json;
  Buffer.contents buf

let pp ppf json = Format.pp_print_string ppf (to_string json)

(* --- decoding: recursive descent with a mutable cursor --- *)

exception Parse_error of int * string

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub input !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "unterminated escape";
        let e = input.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub input !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          utf8_of_code buf code
        | _ -> fail "bad escape character");
        loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < len then fail "trailing input after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
