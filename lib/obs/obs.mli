(** The observability hub handed to instrumented components.

    An [Obs.t] bundles the attached sinks with a metrics registry and a
    mutex: {!emit} folds the event into the registry and fans it out to
    every sink under the lock, so producers on multiple domains (the
    parallel explorer) may share one hub safely.

    Every instrumented entry point takes [?obs:Obs.t] defaulting to
    [None], and call sites guard event {e construction} (not just
    emission) on [Option.is_some obs] — with no hub attached the
    instrumented hot paths allocate nothing and add only a branch. *)

open Ftss_util

type t

(** [create ()] with no sinks still collects metrics — attach it to a run
    and export {!metrics} afterwards. [~stamp:n] attaches a {!Stamper}
    over a universe of [n] processes: every emitted event then carries a
    causal stamp (eid + vector clock), the input the provenance engine
    consumes. Stamping happens under the hub lock, so multi-domain
    producers stay safe. [~record:false] skips folding events into the
    metrics registry — the monitor-only configuration, where subscribers
    maintain their own state and the per-event registry hashtable work
    would be waste. [~threadsafe:false] drops the per-event mutex — the
    pair of lock stubs is the largest fixed cost of an emit — and is
    safe exactly when a single domain emits (the discrete-event
    simulator, the service tower); multi-domain producers (the parallel
    explorer) must keep the default. *)
val create :
  ?sinks:Sink.t list ->
  ?metrics:Metrics.t ->
  ?stamp:int ->
  ?record:bool ->
  ?threadsafe:bool ->
  unit ->
  t

val add_sink : t -> Sink.t -> unit

(** [add_subscriber t f] attaches an incremental consumer: [f] runs on
    every event, under the hub lock, after stamping, metrics recording
    and sink fan-out. Subscribers are the hook the streaming monitor
    plane ({!Ftss_monitor.Monitor}) registers through; they must be O(1)
    per event and must not call back into the hub. *)
val add_subscriber : t -> (Event.t -> unit) -> unit

val emit : t -> Event.t -> unit
val metrics : t -> Metrics.t

(** [with_metrics t f] runs [f] on the registry under the hub's lock —
    for bespoke instruments recorded from concurrent producers. *)
val with_metrics : t -> (Metrics.t -> unit) -> unit

(** Closes every sink (flushing files). The hub stays usable; events
    emitted afterwards reach sinks whose [close] was idempotent. *)
val close : t -> unit

(** [suspect_diff t ~time ~observer ~before ~after] emits one
    [Suspect_add] per subject in [after \ before] and one
    [Suspect_remove] per subject in [before \ after]. *)
val suspect_diff :
  t -> time:int -> observer:Pid.t -> before:Pidset.t -> after:Pidset.t -> unit

(** [emit_windows t windows] emits a [Window_open]/[Window_close] pair
    per [((x, y), measured)] entry — the shape returned by
    [Solve.measured_per_window]. *)
val emit_windows : t -> ((int * int) * int) list -> unit
