(** Causal stamps: a stable event id plus a per-process vector clock.

    A stamp records where an event sits in the happened-before order of
    its run: [eid] is the emission sequence number (unique per stamper,
    hence per run), and [vc.(p)] counts the located events at process [p]
    that causally precede this event (itself included when the event is
    located at [p]). Stamps are attached by {!Stamper} under the
    {!Obs} hub's lock; events carry them through {!Event.to_json} /
    {!Event.of_json} so offline tooling ({!Ftss_prov.Prov}) can answer
    happened-before queries without re-deriving message pairings. *)

type t = { eid : int; vc : int array }

val equal : t -> t -> bool

(** [dominates ~by t] is the pointwise order [t.vc <= by.vc] — with
    per-event ticking this is exactly "t happened before (or equals)
    by". False when the clocks have different widths. *)
val dominates : by:t -> t -> bool

(** [component t p] is [t.vc.(p)], or 0 outside the clock's width. *)
val component : t -> int -> int

(** The stamp's JSON fields ([eid], [vc]) — spliced into the event
    record by {!Event.to_json} rather than nested, so unstamped readers
    can ignore them. *)
val json_fields : t -> (string * Json.t) list

(** Reads the fields written by {!json_fields} out of an event record;
    [None] when absent or malformed. *)
val of_json_fields : Json.t -> t option

val pp : Format.formatter -> t -> unit
