(** The metrics registry: named counters, gauges and histograms,
    exportable as one JSON document or a text summary.

    Instruments are created on first use ([counter]/[gauge]/[histogram]
    are get-or-create) and updates are O(1) field mutations, so recording
    is cheap enough for per-message call sites. The registry itself is not
    synchronized: concurrent producers must serialize through {!Obs}
    (which holds a mutex around {!record_event}); single-threaded direct
    use (bench harness, CLI) needs no locking.

    {!record_event} derives the standard metrics of the event taxonomy —
    per-link delivered/dropped counters, suspicion churn, decision and
    crash counts, the stabilization-time histogram from window-close
    events, checker case/violation/dedup counters — so any component that
    emits events gets its metrics for free; components may additionally
    record bespoke instruments (explorer throughput, per-domain
    utilization) directly. *)

type t

val create : unit -> t

(** No instrument has been created. *)
val is_empty : t -> bool

type counter

val counter : t -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Histograms retain exact count/sum/min/max plus the first
    [reservoir_capacity] samples for percentile estimates. *)
type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** [percentile h p] with [p] in [0,100], nearest-rank over the retained
    samples; [nan] when empty. *)
val percentile : histogram -> float -> float

val reservoir_capacity : int

(** Fold the standard derivations of one event into the registry. *)
val record_event : t -> Event.t -> unit

(** Snapshot:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,mean,p50,p95,p99}}}],
    names sorted. *)
val to_json : t -> Json.t

(** Multi-line text summary in the same order as {!to_json}. *)
val pp_summary : Format.formatter -> t -> unit
