(** The metrics registry: named counters, gauges and histograms,
    exportable as one JSON document or a text summary.

    Instruments are created on first use ([counter]/[gauge]/[histogram]
    are get-or-create) and updates are O(1) field mutations, so recording
    is cheap enough for per-message call sites. The registry itself is not
    synchronized: concurrent producers must serialize through {!Obs}
    (which holds a mutex around {!record_event}); single-threaded direct
    use (bench harness, CLI) needs no locking.

    {!record_event} derives the standard metrics of the event taxonomy —
    per-link delivered/dropped counters, suspicion churn, decision and
    crash counts, the stabilization-time histogram from window-close
    events, checker case/violation/dedup counters — so any component that
    emits events gets its metrics for free; components may additionally
    record bespoke instruments (explorer throughput, per-domain
    utilization) directly. *)

type t

val create : unit -> t

(** No instrument has been created. *)
val is_empty : t -> bool

type counter

val counter : t -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Histograms retain exact count/sum/min/max plus the first
    [reservoir_capacity] samples for percentile estimates. *)
type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** [percentile h p] with [p] in [0,100], nearest-rank over the retained
    samples; [nan] when empty. *)
val percentile : histogram -> float -> float

val reservoir_capacity : int

(** Log-bucketed (HDR-style) histogram: geometric buckets at ratio
    2{^1/8}, preallocated, O(1) observe, O(buckets) percentile. Every
    sample lands in a bucket, so — unlike the first-N reservoir above —
    percentiles stay unbiased on unbounded streams; the price is a
    bounded relative error per estimate ({!lhist_error}, ~4.4%).
    Count/sum/min/max stay exact. *)
type lhist

(** Registry-attached get-or-create; exported under "histograms" in
    {!to_json} with the same field set as reservoir histograms (plus a
    ["kind"] tag and ["p999"]). *)
val lhist : t -> string -> lhist

(** A standalone instance, for single-owner instruments (streaming
    monitors) that export through their own path. *)
val lhist_create : unit -> lhist

val lobserve : lhist -> float -> unit

(** [lhist_merge into from] folds [from]'s samples into [into] (counts,
    sum, extremes, and buckets add exactly — log bucketing makes merging
    lossless). [from] is left untouched. Sharded runs use this to combine
    per-shard latency histograms into one population. *)
val lhist_merge : lhist -> lhist -> unit

val lhist_count : lhist -> int
val lhist_sum : lhist -> float

(** Exact extremes; [nan] when empty. *)
val lhist_min : lhist -> float

val lhist_max : lhist -> float

(** [lpercentile h p] with [p] in [0,100]: the geometric midpoint of the
    bucket holding the nearest-rank sample, clamped to the exact
    min/max; [nan] when empty. *)
val lpercentile : lhist -> float -> float

(** Bound on the relative error of {!lpercentile} (half a bucket). *)
val lhist_error : float

(** Fold the standard derivations of one event into the registry. *)
val record_event : t -> Event.t -> unit

(** Snapshot:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,mean,p50,p95,p99}}}],
    names sorted. *)
val to_json : t -> Json.t

(** Multi-line text summary in the same order as {!to_json}. *)
val pp_summary : Format.formatter -> t -> unit
