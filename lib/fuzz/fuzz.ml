open Ftss_util
module S = Ftss_check.Schedule_enum
module P = Ftss_check.Property

type budget = Cases of int | Seconds of float

type config = {
  seed : int;
  budget : budget;
  domains : int;
  params : Mutate.params;
  corpus_dir : string option;
}

type violation = {
  v_genome : Mutate.t;
  v_shrunk : Mutate.t;
  v_fingerprint : string;
  v_detail : string;
  v_seed : bool;
}

type stats = {
  execs : int;
  seed_execs : int;
  corpus_size : int;
  coverage_points : int;
  violations : violation list;
  elapsed : float;
  execs_per_sec : float;
  domains : int;
  coverage_curve : (int * int) list;
  corpus : Mutate.t list;
}

let genome_fails (prop : P.t) g =
  not (Lazy.force (prop.P.run_adv (Mutate.to_adversary g)).P.verdict).P.ok

let shrink_genome prop g =
  Ftss_check.Shrink.fixpoint ~fails:(genome_fails prop)
    ~candidates:Mutate.reductions g

(* One parallel batch: evaluate every genome, returning (fingerprint,
   signature, verdict) per slot. Per-domain caches (persistent across
   batches) skip re-forcing the verdict for fingerprints the domain has
   seen — the verdict is a pure function of the fingerprinted execution
   (the same dedup contract the exhaustive explorer relies on), so a
   cache hit can only save work, never change a result. The round
   signature is NOT cached: it is a finer observation than the
   fingerprint (two runs in one dedup class can differ in it), so it is
   recomputed for every genome — which keeps the merge below
   deterministic whatever the domain count or interleaving. *)
let eval_batch ~domains ~caches (prop : P.t) (genomes : Mutate.t array) =
  let len = Array.length genomes in
  let results = Array.make len None in
  let next = Atomic.make 0 in
  let chunk = max 1 (min 64 (len / (domains * 8))) in
  let worker d () =
    let cache = caches.(d) in
    let rec claim () =
      let first = Atomic.fetch_and_add next chunk in
      if first < len then begin
        let limit = min len (first + chunk) in
        for i = first to limit - 1 do
          let r = prop.P.run_adv (Mutate.to_adversary genomes.(i)) in
          let verdict =
            match Hashtbl.find_opt cache r.P.fingerprint with
            | Some v -> v
            | None ->
              let v = Lazy.force r.P.verdict in
              Hashtbl.add cache r.P.fingerprint v;
              v
          in
          results.(i) <- Some (r.P.fingerprint, Lazy.force r.P.signature, verdict)
        done;
        claim ()
      end
    in
    claim ()
  in
  (if domains = 1 || len < 2 then worker 0 ()
   else begin
     let spawned =
       Array.init (domains - 1) (fun d -> Domain.spawn (fun () -> worker (d + 1) ()))
     in
     worker 0 ();
     Array.iter Domain.join spawned
   end);
  Array.map (function Some r -> r | None -> assert false) results

let run ?obs ?profile (config : config) (prop : P.t) =
  let module Prof = Ftss_profile.Profile in
  (* One lane for the whole campaign: generation is single-threaded and
     each eval batch is spanned as a unit from the coordinating domain,
     so per-domain lanes would add nothing but lock traffic. *)
  let lane = Option.map (fun t -> Prof.lane t "fuzz") profile in
  let pspan phase f =
    match lane with
    | None -> f ()
    | Some l ->
      Prof.enter l phase;
      let r = f () in
      ignore (Prof.leave l);
      r
  in
  let domains =
    let d = if config.domains <= 0 then Ftss_check.Explore.available () else config.domains in
    max 1 (min d 64)
  in
  (* The effective genome space: the property's [restrict] applied to the
     catalogue view of [config.params], mapped back. Theorem 5 thereby
     turns off drops exactly as it does for the exhaustive checker. *)
  let sp =
    prop.P.restrict
      {
        S.n = config.params.Mutate.n;
        rounds = config.params.Mutate.rounds;
        f = config.params.Mutate.f;
        intervals = config.params.Mutate.allow_drops;
        drops = config.params.Mutate.allow_drops;
      }
  in
  S.validate sp;
  let gp = Mutate.params_of_schedule sp in
  match
    match config.corpus_dir with
    | None -> Ok []
    | Some dir -> Corpus.load ~dir
  with
  | Error m -> Error (Printf.sprintf "corpus: %s" m)
  | Ok loaded ->
    let loaded = List.filter (fun g -> g.Mutate.params = gp) loaded in
    let rng = Rng.create config.seed in
    (* Capped: distinct fingerprints are nearly universal, so an
       unbounded corpus would admit most mutants — the cap keeps the
       parent pool and the persisted directory bounded (and a time-boxed
       CI run's artifact at a few MB). Coverage accounting continues
       past the cap. *)
    let corpus = Corpus.create ~max_entries:4096 () in
    let caches = Array.init domains (fun _ -> Hashtbl.create 256) in
    let execs = ref 0 in
    let curve = ref [] in
    let rev_violations = ref [] in
    let seen_violation = Hashtbl.create 16 in
    let traced = Option.is_some obs in
    let emit ev = match obs with Some o -> Ftss_obs.Obs.emit o ev | None -> () in
    let merge ~seed_phase genomes results =
      Array.iteri
        (fun i (fp, signature, verdict) ->
          incr execs;
          let grew = Corpus.observe corpus ~genome:genomes.(i) ~fingerprint:fp ~signature in
          if grew then begin
            curve := (!execs, Corpus.points corpus) :: !curve;
            if traced then
              emit
                (Ftss_obs.Event.make ~time:!execs
                   (Ftss_obs.Event.Coverage
                      {
                        execs = !execs;
                        corpus = Corpus.length corpus;
                        points = Corpus.points corpus;
                      }))
          end;
          if (not verdict.P.ok) && not (Hashtbl.mem seen_violation fp) then begin
            Hashtbl.add seen_violation fp ();
            rev_violations :=
              {
                v_genome = genomes.(i);
                v_shrunk = genomes.(i) (* shrunk after the loop *);
                v_fingerprint = fp;
                v_detail = verdict.P.detail;
                v_seed = seed_phase;
              }
              :: !rev_violations
          end)
        results
    in
    let t0 = Unix.gettimeofday () in
    (* Phase A: the exhaustive catalogue, injected, plus the persisted
       corpus — evaluated up front so the seed phase alone rediscovers
       the exhaustive violation set (the differential oracle). *)
    let seeds =
      Array.append
        (Array.map Mutate.of_schedule (S.enumerate sp))
        (Array.of_list loaded)
    in
    let seeds =
      match config.budget with
      | Cases limit when Array.length seeds > limit -> Array.sub seeds 0 limit
      | _ -> seeds
    in
    pspan Prof.Phase.fuzz_seed (fun () ->
        merge ~seed_phase:true seeds (eval_batch ~domains ~caches prop seeds));
    let seed_execs = !execs in
    (* Phase B: mutation batches. Generation is single-threaded from the
       seeded generator and depends only on the corpus as merged so far,
       so the whole run is replayable at any domain count. *)
    (* Fixed regardless of [domains]: the corpus snapshot parents are
       re-taken between batches, so the batch size shapes the generated
       mutant sequence — it must not vary with the domain count or the
       run would not replay across machines. *)
    let batch_size = 64 in
    let remaining () =
      match config.budget with
      | Cases limit -> limit - !execs
      | Seconds s ->
        if Unix.gettimeofday () -. t0 < s then batch_size else 0
    in
    let mutants parents k =
      Array.init k (fun _ ->
          let parent () = parents.(Rng.int rng (Array.length parents)) in
          let base =
            if Array.length parents >= 2 && Rng.chance rng 0.2 then
              Mutate.splice rng (parent ()) (parent ())
            else parent ()
          in
          let steps = Rng.int_in rng 1 3 in
          let rec go g k = if k = 0 then g else go (Mutate.mutate rng g) (k - 1) in
          go base steps)
    in
    let rec loop () =
      let k = min batch_size (remaining ()) in
      if k > 0 && Corpus.length corpus > 0 then begin
        let parents = Array.of_list (Corpus.entries corpus) in
        let batch = pspan Prof.Phase.fuzz_mutate (fun () -> mutants parents k) in
        pspan Prof.Phase.fuzz_verify (fun () ->
            merge ~seed_phase:false batch (eval_batch ~domains ~caches prop batch));
        loop ()
      end
    in
    loop ();
    let elapsed = Unix.gettimeofday () -. t0 in
    let violations =
      pspan Prof.Phase.fuzz_verify (fun () ->
          List.rev_map
            (fun v -> { v with v_shrunk = shrink_genome prop v.v_genome })
            !rev_violations
          |> List.rev)
    in
    (match config.corpus_dir with
    | Some dir -> Corpus.save corpus ~dir
    | None -> ());
    let stats =
      {
        execs = !execs;
        seed_execs;
        corpus_size = Corpus.length corpus;
        coverage_points = Corpus.points corpus;
        violations;
        elapsed;
        execs_per_sec = (if elapsed > 0. then float_of_int !execs /. elapsed else 0.);
        domains;
        coverage_curve = List.rev !curve;
        corpus = Corpus.entries corpus;
      }
    in
    (match obs with
    | None -> ()
    | Some o ->
      Ftss_obs.Obs.with_metrics o (fun m ->
          let set name v = Ftss_obs.Metrics.set (Ftss_obs.Metrics.gauge m name) v in
          set "fuzz_execs_per_sec" stats.execs_per_sec;
          set "fuzz_violations" (float_of_int (List.length violations))));
    Ok stats

let to_json s =
  let open Ftss_obs.Json in
  Obj
    [
      ("execs", Int s.execs);
      ("seed_execs", Int s.seed_execs);
      ("corpus_size", Int s.corpus_size);
      ("coverage_points", Int s.coverage_points);
      ( "violations",
        List
          (List.map
             (fun v ->
               Obj
                 [
                   ("fingerprint", String v.v_fingerprint);
                   ("detail", String v.v_detail);
                   ("seed_phase", Bool v.v_seed);
                   ("size", Int (Mutate.size v.v_genome));
                   ("shrunk_size", Int (Mutate.size v.v_shrunk));
                 ])
             s.violations) );
      ("elapsed", Float s.elapsed);
      ("execs_per_sec", Float s.execs_per_sec);
      ("domains", Int s.domains);
      ( "coverage_curve",
        List
          (List.map
             (fun (e, p) -> Obj [ ("execs", Int e); ("points", Int p) ])
             s.coverage_curve) );
    ]

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>executions: %d (%d seed, %d mutated)@,\
     corpus: %d entries covering %d points@,\
     violations: %d@,\
     elapsed: %.3f s at %d domain%s (%.0f execs/s)@]"
    s.execs s.seed_execs (s.execs - s.seed_execs) s.corpus_size s.coverage_points
    (List.length s.violations) s.elapsed s.domains
    (if s.domains = 1 then "" else "s")
    s.execs_per_sec
