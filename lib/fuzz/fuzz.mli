(** The coverage-guided fuzzing loop.

    [run] drives a {!Ftss_check.Property.t} through its genome evaluator
    ([run_adv]) in two phases:

    + {b seeding} — every catalogue case of the property's restricted
      enumeration is injected into the genome space
      ({!Mutate.of_schedule}) and executed, along with any persisted
      corpus entries, so the fuzzer starts from everything the
      exhaustive checker would try (on the seed phase alone it finds
      {e exactly} the exhaustive violation set — the differential
      oracle);
    + {b mutation} — batches of mutants of corpus parents (1–3 stacked
      {!Mutate.mutate} steps, occasionally a {!Mutate.splice}) are
      generated single-threaded from the seeded generator and evaluated
      until the budget runs out. Inputs that grow coverage (new
      execution fingerprint or new per-round signature word) enter the
      corpus — capped at 4096 entries — and become parents.

    Batches evaluate in parallel over OCaml 5 domains with the chunked
    atomic work-claiming of {!Ftss_check.Explore}, but generation and
    the coverage/violation merge are single-threaded and in batch order,
    so the outcome — corpus, coverage curve, violations — is
    deterministic and independent of the domain count; only wall-clock
    figures vary.

    Every distinct violation is auto-shrunk to a genome local minimum
    with {!Ftss_check.Shrink.fixpoint} over {!Mutate.reductions}. With
    an observability hub attached, each coverage growth emits a
    [Coverage] event (the event stream is the coverage-growth curve) and
    the end-of-run throughput lands in gauges. *)

type budget =
  | Cases of int  (** total executions, seed phase included *)
  | Seconds of float  (** wall-clock; the seed phase always completes *)

type config = {
  seed : int;
  budget : budget;
  domains : int;  (** [<= 0] = one per recommended core, clamped to 64 *)
  params : Mutate.params;  (** the adversary space (pre-[restrict]) *)
  corpus_dir : string option;
      (** load persisted entries before seeding, save the final corpus
          after the run *)
}

type violation = {
  v_genome : Mutate.t;  (** as discovered *)
  v_shrunk : Mutate.t;  (** local minimum under {!Mutate.reductions} *)
  v_fingerprint : string;
  v_detail : string;
  v_seed : bool;  (** discovered in the seeding phase *)
}

type stats = {
  execs : int;
  seed_execs : int;
  corpus_size : int;
  coverage_points : int;
  violations : violation list;
      (** one per distinct fingerprint, discovery order *)
  elapsed : float;  (** fuzz-loop wall clock, shrinking excluded *)
  execs_per_sec : float;
  domains : int;
  coverage_curve : (int * int) list;
      (** (execs, coverage points) at each growth, chronological *)
  corpus : Mutate.t list;  (** final corpus entries, admission order *)
}

(** [run config property] fuzzes until the budget is spent. [Error _]
    reports an unloadable corpus directory; no exception escapes for
    malformed persisted files.

    With [profile], the campaign records onto a single [fuzz] lane:
    [fuzz_seed] spans the whole seed phase (catalogue + persisted-corpus
    evaluation), [fuzz_mutate] each batch's genome generation, and
    [fuzz_verify] each mutation batch's evaluation plus the final shrink
    pass. Unset, the instrumentation is one option test per batch. *)
val run :
  ?obs:Ftss_obs.Obs.t ->
  ?profile:Ftss_profile.Profile.t ->
  config ->
  Ftss_check.Property.t ->
  (stats, string) result

(** Shrink one failing genome to a local minimum (deterministic;
    requires the genome to falsify the property). *)
val shrink_genome : Ftss_check.Property.t -> Mutate.t -> Mutate.t

(** True iff the genome falsifies the property. *)
val genome_fails : Ftss_check.Property.t -> Mutate.t -> bool

(** The stats as one JSON object — what [ftss fuzz --json] prints and
    E12 records. The corpus itself is not embedded, only its size. *)
val to_json : stats -> Ftss_obs.Json.t

val pp_stats : Format.formatter -> stats -> unit
