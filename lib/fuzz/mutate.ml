open Ftss_util
module S = Ftss_check.Schedule_enum
module P = Ftss_check.Property
module Sexp = Ftss_check.Replay.Sexp

type params = { n : int; rounds : int; f : int; allow_drops : bool }

type t = {
  params : params;
  faulty : Pidset.t;
  crashes : (Pid.t * int) list;
  drops : (int * Pid.t * Pid.t) list;
  corrupt : (Pid.t * int) list;
}

let value_bound = 1_000_000

let validate_params { n; rounds; f; allow_drops = _ } =
  if n < 2 then Error "n < 2"
  else if n > Pidset.max_pid + 1 then
    Error (Printf.sprintf "n %d exceeds the %d-process cap" n (Pidset.max_pid + 1))
  else if rounds < 1 then Error "rounds < 1"
  else if f < 0 || f >= n then Error "f outside 0..n-1"
  else Ok ()

(* Ascending, duplicate-free: the normal form every constructor returns,
   so structural equality and the sexp round-trip are exact. *)
let sorted_distinct compare l =
  let rec ok = function
    | a :: (b :: _ as rest) -> compare a b < 0 && ok rest
    | _ -> true
  in
  ok l

let ( let* ) = Result.bind

let validate t =
  let { n; rounds; f; allow_drops } = t.params in
  let* () = validate_params t.params in
  let check_pid what p =
    if Pid.is_valid ~n p then Ok ()
    else Error (Printf.sprintf "%s pid %d outside 0..%d" what p (n - 1))
  in
  let check_round what r =
    if 1 <= r && r <= rounds then Ok ()
    else Error (Printf.sprintf "%s round %d outside 1..%d" what r rounds)
  in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let* () =
    if Pidset.cardinal t.faulty <= f then Ok ()
    else Error (Printf.sprintf "%d declared faulty, budget f=%d" (Pidset.cardinal t.faulty) f)
  in
  let* () =
    match Pidset.max_elt_opt t.faulty with
    | Some p when p >= n -> Error (Printf.sprintf "faulty pid %d outside 0..%d" p (n - 1))
    | _ -> Ok ()
  in
  let* () =
    if sorted_distinct (fun (p, _) (q, _) -> compare p q) t.crashes then Ok ()
    else Error "crashes not pid-ascending or a pid crashes twice"
  in
  let* () =
    each
      (fun (p, r) ->
        let* () = check_pid "crash" p in
        let* () = check_round "crash" r in
        if Pidset.mem p t.faulty then Ok ()
        else Error (Printf.sprintf "crash of undeclared pid %d" p))
      t.crashes
  in
  let* () =
    if sorted_distinct compare t.drops then Ok ()
    else Error "drops not sorted or duplicated"
  in
  let* () =
    if t.drops = [] || allow_drops then Ok ()
    else Error "drops scheduled with allow_drops = false"
  in
  let* () =
    each
      (fun (r, src, dst) ->
        let* () = check_round "drop" r in
        let* () = check_pid "drop src" src in
        let* () = check_pid "drop dst" dst in
        if Pid.equal src dst then Error "drop of a self-message"
        else if Pidset.mem src t.faulty || Pidset.mem dst t.faulty then Ok ()
        else Error (Printf.sprintf "drop %d->%d has no declared-faulty endpoint" src dst))
      t.drops
  in
  let* () =
    if sorted_distinct (fun (p, _) (q, _) -> compare p q) t.corrupt then Ok ()
    else Error "corrupt not pid-ascending or a pid corrupted twice"
  in
  each
    (fun (p, v) ->
      let* () = check_pid "corrupt" p in
      if 0 <= v && v < value_bound then Ok ()
      else Error (Printf.sprintf "corrupt value %d outside 0..%d" v (value_bound - 1)))
    t.corrupt

let is_valid t = validate t = Ok ()

let norm t =
  {
    t with
    crashes = List.sort_uniq compare t.crashes;
    drops = List.sort_uniq compare t.drops;
    corrupt = List.sort_uniq compare t.corrupt;
  }

let empty params =
  (match validate_params params with
  | Ok () -> ()
  | Error m -> invalid_arg ("Mutate.empty: " ^ m));
  { params; faulty = Pidset.empty; crashes = []; drops = []; corrupt = [] }

(* --- catalogue injection --- *)

let params_of_schedule (sp : S.params) =
  {
    n = sp.S.n;
    rounds = sp.S.rounds;
    f = sp.S.f;
    allow_drops = sp.S.intervals || sp.S.drops;
  }

let of_schedule (case : S.t) =
  let params = params_of_schedule case.S.params in
  let n = params.n in
  let faulty = Pidset.of_list (List.map fst case.S.behaviors) in
  let others p = List.filter (fun q -> not (Pid.equal p q)) (Pid.all n) in
  let interval a b row = List.concat_map row (List.init (b - a + 1) (fun i -> a + i)) in
  let drops =
    List.concat_map
      (fun (p, behavior) ->
        match behavior with
        | S.Crash _ -> []
        | S.Mute (a, b) -> interval a b (fun r -> List.map (fun d -> (r, p, d)) (others p))
        | S.Deaf (a, b) -> interval a b (fun r -> List.map (fun s -> (r, s, p)) (others p))
        | S.Isolate (a, b) ->
          interval a b (fun r ->
              List.map (fun d -> (r, p, d)) (others p)
              @ List.map (fun s -> (r, s, p)) (others p))
        | S.Send_drop (r, dst) -> [ (r, p, dst) ]
        | S.Recv_drop (r, src) -> [ (r, src, p) ])
      case.S.behaviors
  in
  let corrupt =
    match case.S.corruption with
    | S.Clean -> []
    | c -> List.map (fun p -> (p, S.corrupt_int c p 0)) (Pid.all n)
  in
  norm { params; faulty; crashes = S.crashes case; drops; corrupt }

(* --- compilation to the evaluator interface --- *)

let to_faults t =
  (* Blame first: the declared faulty set is then exactly [t.faulty] —
     [Faults.of_events] charges a bare [Drop] to its sender only when
     neither endpoint is already declared, which never happens here
     because every drop has a declared endpoint. *)
  let events =
    List.map (fun pid -> Ftss_sync.Faults.Blame { pid }) (Pidset.to_list t.faulty)
    @ List.map (fun (pid, round) -> Ftss_sync.Faults.Crash { pid; round }) t.crashes
    @ List.map (fun (round, src, dst) -> Ftss_sync.Faults.Drop { src; dst; round }) t.drops
  in
  Ftss_sync.Faults.of_events ~n:t.params.n events

let to_adversary t =
  {
    P.adv_n = t.params.n;
    adv_rounds = t.params.rounds;
    adv_f = t.params.f;
    adv_faults = to_faults t;
    adv_corrupt_int =
      (fun p v -> match List.assoc_opt p t.corrupt with Some x -> x | None -> v);
    adv_corrupt_bound =
      (match t.corrupt with
      | [] -> None
      | entries -> Some (23, 1 + List.fold_left (fun a (_, v) -> max a v) 0 entries));
    adv_crashes = t.crashes;
    adv_crash_only = t.drops = [];
  }

(* --- sizes, equality --- *)

let size t =
  Pidset.cardinal t.faulty
  + List.fold_left (fun acc (_, r) -> acc + (t.params.rounds - r + 1)) 0 t.crashes
  + List.length t.drops + List.length t.corrupt

let equal a b = a = b
let compare = Stdlib.compare

(* --- mutation --- *)

(* Discharge pids until the budget holds again: remove the largest
   declared pid, its crash, and every drop left without a declared
   endpoint. Used by [splice], whose union can exceed [f]. *)
let rec repair t =
  if Pidset.cardinal t.faulty <= t.params.f then t
  else
    match Pidset.max_elt_opt t.faulty with
    | None -> t
    | Some p ->
      let faulty = Pidset.remove p t.faulty in
      repair
        {
          t with
          faulty;
          crashes = List.filter (fun (q, _) -> not (Pid.equal p q)) t.crashes;
          drops =
            List.filter
              (fun (_, src, dst) -> Pidset.mem src faulty || Pidset.mem dst faulty)
              t.drops;
        }

let mutate rng t =
  let { n; rounds; f; allow_drops } = t.params in
  let all_pids = Pid.all n in
  let faulty_pids = Pidset.to_list t.faulty in
  let undeclared = List.filter (fun p -> not (Pidset.mem p t.faulty)) all_pids in
  let uncharged =
    List.filter
      (fun p ->
        (not (List.mem_assoc p t.crashes))
        &&
        let faulty' = Pidset.remove p t.faulty in
        List.for_all
          (fun (_, src, dst) -> Pidset.mem src faulty' || Pidset.mem dst faulty')
          t.drops)
      faulty_pids
  in
  let clamp_round r = max 1 (min rounds r) in
  let set_assoc p v l = (p, v) :: List.remove_assoc p l in
  (* Operators applicable to [t], each drawing its own randomness only
     once selected — one uniform choice among operators, then the
     operator's choices, keeps the stream deterministic and compact. *)
  let ops = ref [] in
  let op g = ops := g :: !ops in
  if undeclared <> [] && Pidset.cardinal t.faulty < f then
    op (fun () -> { t with faulty = Pidset.add (Rng.pick rng undeclared) t.faulty });
  if uncharged <> [] then
    op (fun () -> { t with faulty = Pidset.remove (Rng.pick rng uncharged) t.faulty });
  if faulty_pids <> [] then
    op (fun () ->
        let p = Rng.pick rng faulty_pids in
        { t with crashes = set_assoc p (Rng.int_in rng 1 rounds) t.crashes });
  if t.crashes <> [] then begin
    op (fun () ->
        let p, _ = Rng.pick rng t.crashes in
        { t with crashes = List.remove_assoc p t.crashes });
    op (fun () ->
        let p, r = Rng.pick rng t.crashes in
        let r' = clamp_round (if Rng.bool rng then r + 1 else r - 1) in
        { t with crashes = set_assoc p r' t.crashes })
  end;
  if allow_drops && faulty_pids <> [] && n >= 2 then
    op (fun () ->
        (* Flip one cell of the drop matrix: present -> absent,
           absent -> present. The declared endpoint anchors validity. *)
        let charged = Rng.pick rng faulty_pids in
        let other = Rng.pick rng (List.filter (fun q -> not (Pid.equal q charged)) all_pids) in
        let src, dst = if Rng.bool rng then (charged, other) else (other, charged) in
        let cell = (Rng.int_in rng 1 rounds, src, dst) in
        if List.mem cell t.drops then
          { t with drops = List.filter (fun d -> d <> cell) t.drops }
        else { t with drops = cell :: t.drops });
  if t.drops <> [] then begin
    op (fun () ->
        (* Widen: replicate a drop into an adjacent round. *)
        let r, src, dst = Rng.pick rng t.drops in
        let cell = (clamp_round (if Rng.bool rng then r + 1 else r - 1), src, dst) in
        if List.mem cell t.drops then t else { t with drops = cell :: t.drops });
    op (fun () ->
        (* Shift: move a drop to an adjacent round. *)
        let ((r, src, dst) as old) = Rng.pick rng t.drops in
        let cell = (clamp_round (if Rng.bool rng then r + 1 else r - 1), src, dst) in
        let rest = List.filter (fun d -> d <> old) t.drops in
        if List.mem cell rest then { t with drops = rest }
        else { t with drops = cell :: rest })
  end;
  op (fun () ->
      let p = Rng.pick rng all_pids in
      { t with corrupt = set_assoc p (Rng.int rng value_bound) t.corrupt });
  if t.corrupt <> [] then
    op (fun () ->
        let p, _ = Rng.pick rng t.corrupt in
        { t with corrupt = List.remove_assoc p t.corrupt });
  norm ((Rng.pick rng !ops) ())

let splice rng a b =
  if a.params <> b.params then invalid_arg "Mutate.splice: parents disagree on params";
  let merge_assoc xs ys =
    let pids = List.sort_uniq compare (List.map fst (xs @ ys)) in
    List.filter_map
      (fun p ->
        match (List.assoc_opt p xs, List.assoc_opt p ys) with
        | Some x, Some y -> Some (p, if Rng.bool rng then x else y)
        | Some x, None -> if Rng.bool rng then Some (p, x) else None
        | None, Some y -> if Rng.bool rng then Some (p, y) else None
        | None, None -> None)
      pids
  in
  let drops =
    List.filter_map
      (fun cell ->
        let in_a = List.mem cell a.drops and in_b = List.mem cell b.drops in
        if (in_a && in_b) || Rng.bool rng then Some cell else None)
      (List.sort_uniq compare (a.drops @ b.drops))
  in
  let crashes = merge_assoc a.crashes b.crashes in
  let corrupt = merge_assoc a.corrupt b.corrupt in
  let faulty =
    (* Everything either parent declared, kept only as far as the
       inherited events need it plus coin-flipped bare blames; [repair]
       then enforces the budget. *)
    let referenced =
      Pidset.of_list
        (List.map fst crashes
        @ List.concat_map
            (fun (_, src, dst) ->
              (if Pidset.mem src a.faulty || Pidset.mem src b.faulty then [ src ] else [])
              @
              if Pidset.mem dst a.faulty || Pidset.mem dst b.faulty then [ dst ] else [])
            drops)
    in
    Pidset.fold
      (fun p acc -> if Pidset.mem p referenced || Rng.bool rng then Pidset.add p acc else acc)
      (Pidset.union a.faulty b.faulty)
      Pidset.empty
  in
  repair (norm { a with faulty; crashes; drops; corrupt })

(* --- reductions (the shrinking order) --- *)

let reductions t =
  let remove_one l = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l in
  (* Coarse group moves first, mirroring the catalogue shrinker's
     whole-behaviour removals and corruption downgrades: they let the
     greedy descent tunnel past local minima where no single-entry
     removal still fails but removing a whole row/process/class does.
     Each is only offered when it strictly shrinks by more than the
     single-entry moves below already would. *)
  let all_drops_removal = if List.length t.drops >= 2 then [ { t with drops = [] } ] else [] in
  let all_corrupt_removal =
    if List.length t.corrupt >= 2 then [ { t with corrupt = [] } ] else []
  in
  let pid_removals =
    (* The behaviour-removal analogue: discharge a faulty pid together
       with every crash and drop that touches it. Remaining drops never
       involved the pid, so their blame obligation is intact. *)
    List.map
      (fun p ->
        norm
          {
            t with
            faulty = Pidset.remove p t.faulty;
            crashes = List.remove_assoc p t.crashes;
            drops =
              List.filter
                (fun (_, src, dst) -> not (Pid.equal src p || Pid.equal dst p))
                t.drops;
          })
      (Pidset.to_list t.faulty)
  in
  let row_removals =
    (* The interval-weakening analogue: erase a whole (endpoint, round)
       row of the drop matrix at once. Rows of one entry are already
       covered by the single-drop removals. *)
    let groups = Hashtbl.create 16 in
    List.iter
      (fun (r, src, dst) ->
        List.iter
          (fun key ->
            Hashtbl.replace groups key
              (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
          [ (r, src, true); (r, dst, false) ])
      t.drops;
    Hashtbl.fold
      (fun (r, p, as_src) count acc ->
        if count < 2 then acc
        else
          norm
            {
              t with
              drops =
                List.filter
                  (fun (r', src, dst) ->
                    not (r' = r && Pid.equal (if as_src then src else dst) p))
                  t.drops;
            }
          :: acc)
      groups []
  in
  let drop_removals = List.map (fun drops -> norm { t with drops }) (remove_one t.drops) in
  let crash_removals =
    List.map (fun crashes -> norm { t with crashes }) (remove_one t.crashes)
  in
  let crash_postponements =
    List.filter_map
      (fun (p, r) ->
        if r < t.params.rounds then
          Some (norm { t with crashes = (p, r + 1) :: List.remove_assoc p t.crashes })
        else None)
      t.crashes
  in
  let corrupt_removals =
    List.map (fun corrupt -> norm { t with corrupt }) (remove_one t.corrupt)
  in
  let blame_removals =
    List.filter_map
      (fun p ->
        let faulty = Pidset.remove p t.faulty in
        let charged =
          List.mem_assoc p t.crashes
          || List.exists
               (fun (_, src, dst) ->
                 not (Pidset.mem src faulty || Pidset.mem dst faulty))
               t.drops
        in
        if charged then None else Some { t with faulty })
      (Pidset.to_list t.faulty)
  in
  all_drops_removal @ all_corrupt_removal @ pid_removals @ row_removals
  @ drop_removals @ crash_removals @ crash_postponements @ corrupt_removals
  @ blame_removals

(* --- printing & persistence --- *)

let pp ppf t =
  Format.fprintf ppf "@[<h>faulty=%a" Pidset.pp t.faulty;
  List.iter (fun (p, r) -> Format.fprintf ppf " crash(%a@@%d)" Pid.pp p r) t.crashes;
  List.iter
    (fun (r, src, dst) -> Format.fprintf ppf " drop(r%d %a->%a)" r Pid.pp src Pid.pp dst)
    t.drops;
  List.iter (fun (p, v) -> Format.fprintf ppf " corrupt(%a=%d)" Pid.pp p v) t.corrupt;
  Format.fprintf ppf "@]"

let sexp_int label i = Sexp.List [ Sexp.Atom label; Sexp.Atom (string_of_int i) ]
let sexp_bool label b = Sexp.List [ Sexp.Atom label; Sexp.Atom (string_of_bool b) ]

let to_sexp t =
  let { n; rounds; f; allow_drops } = t.params in
  Sexp.List
    [
      Sexp.Atom "ftss-genome";
      sexp_int "version" 1;
      Sexp.List
        [
          Sexp.Atom "params";
          sexp_int "n" n;
          sexp_int "rounds" rounds;
          sexp_int "f" f;
          sexp_bool "allow-drops" allow_drops;
        ];
      Sexp.List
        (Sexp.Atom "faulty"
        :: List.map (fun p -> Sexp.Atom (string_of_int p)) (Pidset.to_list t.faulty));
      Sexp.List
        (Sexp.Atom "crashes"
        :: List.map
             (fun (p, r) -> Sexp.List [ sexp_int "pid" p; sexp_int "round" r ])
             t.crashes);
      Sexp.List
        (Sexp.Atom "drops"
        :: List.map
             (fun (r, src, dst) ->
               Sexp.List [ sexp_int "round" r; sexp_int "src" src; sexp_int "dst" dst ])
             t.drops);
      Sexp.List
        (Sexp.Atom "corrupt"
        :: List.map
             (fun (p, v) -> Sexp.List [ sexp_int "pid" p; sexp_int "value" v ])
             t.corrupt);
    ]

let to_string t = Format.asprintf "%a@." Sexp.pp (to_sexp t)

let field name = function
  | Sexp.List (Sexp.Atom tag :: rest) when tag = name -> Some rest
  | _ -> None

let find_field name items =
  match List.find_map (field name) items with
  | Some rest -> Ok rest
  | None -> Error (Printf.sprintf "missing (%s ...) clause" name)

let as_int label = function
  | Sexp.Atom v -> (
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "(%s %s): not an integer" label v))
  | Sexp.List _ -> Error (Printf.sprintf "(%s ...): expected an integer atom" label)

let int_field name items =
  let* rest = find_field name items in
  match rest with
  | [ x ] -> as_int name x
  | _ -> Error (Printf.sprintf "(%s ...): expected a single integer" name)

let bool_field name items =
  let* rest = find_field name items in
  match rest with
  | [ Sexp.Atom v ] -> (
    match bool_of_string_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "(%s %s): not a boolean" name v))
  | _ -> Error (Printf.sprintf "(%s ...): expected a single boolean" name)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* v = f x in
    let* vs = collect f rest in
    Ok (v :: vs)

let of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "ftss-genome" :: items) ->
    let* version = int_field "version" items in
    if version <> 1 then Error (Printf.sprintf "unsupported genome version %d" version)
    else
      let* param_fields = find_field "params" items in
      let* n = int_field "n" param_fields in
      let* rounds = int_field "rounds" param_fields in
      let* f = int_field "f" param_fields in
      let* allow_drops = bool_field "allow-drops" param_fields in
      let params = { n; rounds; f; allow_drops } in
      let* faulty_atoms = find_field "faulty" items in
      let* faulty_pids = collect (as_int "faulty") faulty_atoms in
      let* () =
        if List.for_all (fun p -> 0 <= p && p <= Pidset.max_pid) faulty_pids then Ok ()
        else Error "faulty pid outside the representable range"
      in
      let* crash_items = find_field "crashes" items in
      let* crashes =
        collect
          (function
            | Sexp.List fields ->
              let* p = int_field "pid" fields in
              let* r = int_field "round" fields in
              Ok (p, r)
            | Sexp.Atom _ -> Error "malformed crash entry")
          crash_items
      in
      let* drop_items = find_field "drops" items in
      let* drops =
        collect
          (function
            | Sexp.List fields ->
              let* r = int_field "round" fields in
              let* src = int_field "src" fields in
              let* dst = int_field "dst" fields in
              Ok (r, src, dst)
            | Sexp.Atom _ -> Error "malformed drop entry")
          drop_items
      in
      let* corrupt_items = find_field "corrupt" items in
      let* corrupt =
        collect
          (function
            | Sexp.List fields ->
              let* p = int_field "pid" fields in
              let* v = int_field "value" fields in
              Ok (p, v)
            | Sexp.Atom _ -> Error "malformed corrupt entry")
          corrupt_items
      in
      let t = { params; faulty = Pidset.of_list faulty_pids; crashes; drops; corrupt } in
      let* () = validate t in
      Ok t
  | _ -> Error "not an (ftss-genome ...) document"

let of_string s =
  let* sexp = Sexp.parse s in
  of_sexp sexp
