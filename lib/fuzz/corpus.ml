type t = {
  mutable rev_entries : (Mutate.t * string) list;  (* (genome, fingerprint) *)
  mutable count : int;
  max_entries : int;
  fingerprints : (string, unit) Hashtbl.t;
  words : (int, unit) Hashtbl.t;
}

let create ?(max_entries = max_int) () =
  if max_entries < 1 then invalid_arg "Corpus.create: max_entries < 1";
  {
    rev_entries = [];
    count = 0;
    max_entries;
    fingerprints = Hashtbl.create 256;
    words = Hashtbl.create 1024;
  }

let entries t = List.rev_map fst t.rev_entries
let length t = t.count
let points t = Hashtbl.length t.fingerprints + Hashtbl.length t.words

let observe t ~genome ~fingerprint ~signature =
  let grew = ref false in
  if not (Hashtbl.mem t.fingerprints fingerprint) then begin
    Hashtbl.add t.fingerprints fingerprint ();
    grew := true
  end;
  Array.iter
    (fun w ->
      if not (Hashtbl.mem t.words w) then begin
        Hashtbl.add t.words w ();
        grew := true
      end)
    signature;
  if !grew && t.count < t.max_entries then begin
    t.rev_entries <- (genome, fingerprint) :: t.rev_entries;
    t.count <- t.count + 1
  end;
  !grew

(* Fingerprints are hex strings (plus '-' for composite results), safe as
   file names; no escaping needed. *)
let entry_file dir fingerprint = Filename.concat dir (fingerprint ^ ".genome")

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (genome, fingerprint) ->
      let path = entry_file dir fingerprint in
      if not (Sys.file_exists path) then begin
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Mutate.to_string genome))
      end)
    (List.rev t.rev_entries)

let load ~dir =
  if not (Sys.file_exists dir) then Ok []
  else
    match Sys.readdir dir with
    | exception Sys_error m -> Error m
    | names ->
      let names =
        Array.to_list names
        |> List.filter (fun f -> Filename.check_suffix f ".genome")
        |> List.sort String.compare
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
          let path = Filename.concat dir name in
          match
            let ic = open_in path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | exception Sys_error m -> Error (Printf.sprintf "%s: %s" path m)
          | exception End_of_file -> Error (Printf.sprintf "%s: truncated" path)
          | contents -> (
            match Mutate.of_string contents with
            | Ok genome -> go (genome :: acc) rest
            | Error m -> Error (Printf.sprintf "%s: %s" path m)))
      in
      go [] names
