(** The fuzzer's corpus: inputs that grew coverage, with persistence.

    Coverage is two-level, mirroring what the engine already fingerprints:
    the set of whole-execution fingerprints ({!Ftss_check.Property.run}'s
    [fingerprint]) plus the set of per-round signature words
    ({!Ftss_sync.Trace.round_signature} under the property's observable
    projection). A genome whose execution contributes a new fingerprint
    {e or} a new signature word enters the corpus; everything else is
    discarded. Signature words are what make the feedback loop
    interesting: two executions may differ wholesale (new fingerprint)
    while visiting only already-seen per-round configurations — only
    genuinely new behaviour at round granularity admits an input.

    Corpora persist as one S-expression file per entry
    ([<fingerprint>.genome], {!Mutate.to_sexp}) in a directory, so
    successive CI runs accumulate coverage. *)

type t

(** [max_entries] bounds the admitted-entry count (default unbounded):
    once full, coverage is still recorded — {!points} keeps growing and
    {!observe} still reports growth — but no further genome is admitted.
    Distinct execution fingerprints are nearly universal under mutation,
    so an uncapped corpus would admit most inputs; the cap is what keeps
    the parent pool, the saved directory and CI artifacts bounded.
    Raises [Invalid_argument] when [max_entries < 1]. *)
val create : ?max_entries:int -> unit -> t

(** Entries in admission order. *)
val entries : t -> Mutate.t list

val length : t -> int

(** Distinct coverage points seen: fingerprints plus signature words. *)
val points : t -> int

(** [observe t ~genome ~fingerprint ~signature] records the execution's
    coverage and returns whether it grew; the genome is admitted exactly
    when it did and the corpus is not full. *)
val observe :
  t -> genome:Mutate.t -> fingerprint:string -> signature:int array -> bool

(** [save t ~dir] writes every entry to [dir] (created if missing) as
    [<fingerprint>.genome], skipping files that already exist. *)
val save : t -> dir:string -> unit

(** [load ~dir] parses every [*.genome] file in [dir], in filename order.
    A missing directory is an empty corpus; an unreadable, truncated or
    malformed file is a clear [Error] naming the file, never an escaped
    exception. *)
val load : dir:string -> (Mutate.t list, string) result
