(** The fuzzer's genome: an unstructured general-omission adversary.

    {!Ftss_check.Schedule_enum} walks a finite behaviour catalogue —
    per-process crash/mute/deaf/isolate/point-drop behaviours crossed
    with five canonical corruption classes. The theorems quantify over
    much more: {e arbitrary} per-round, per-link drop matrices and
    {e arbitrary} corrupted states. A genome represents exactly that
    richer space, as plain data:

    - a declared faulty set of at most [f] processes (a pid may be
      declared without any charged misbehaviour — a pure [Blame]);
    - at most one crash round per faulty process;
    - an arbitrary set of point drops [(round, src, dst)], each with at
      least one declared-faulty endpoint (the paper's general-omission
      blame obligation);
    - an arbitrary per-pid raw corruption of the initial round variable.

    Every catalogue case injects into this space ({!of_schedule}) by
    compiling its interval behaviours to the equivalent point-drop
    matrix — the compiled {!Ftss_sync.Faults.t} answers every drop query
    identically and declares the identical faulty set, so the injected
    genome's execution has the {e same} {!Ftss_sync.Trace.hash} as the
    catalogue case's (the seed-corpus round-trip the tests pin).

    Mutation ({!mutate}, {!splice}) is seeded and validity-preserving:
    every mutant of a valid genome is valid — rounds within the horizon,
    pids within the universe, the fault budget respected. *)

open Ftss_util

type params = {
  n : int;  (** system size, [2 <= n <= Pidset.max_pid + 1] *)
  rounds : int;  (** schedule horizon, [>= 1] *)
  f : int;  (** fault budget, [0 <= f < n] *)
  allow_drops : bool;
      (** whether genomes may schedule omissions at all (theorem 5's
          crash-only restriction sets this false) *)
}

type t = {
  params : params;
  faulty : Pidset.t;  (** declared faulty set, [|faulty| <= f] *)
  crashes : (Pid.t * int) list;
      (** [(pid, round)], pid-ascending, at most one per pid, every pid
          declared faulty *)
  drops : (int * Pid.t * Pid.t) list;
      (** point omissions, sorted ascending, no duplicates, [src <> dst],
          at least one endpoint declared faulty; empty unless
          [allow_drops] *)
  corrupt : (Pid.t * int) list;
      (** per-pid raw initial-state values, pid-ascending, values in
          [0, value_bound) *)
}

(** Corruption values live in [0, value_bound) (= 1_000_000, strictly
    above {!Ftss_check.Schedule_enum}'s [Max] representative). *)
val value_bound : int

(** Structural well-formedness of a genome against its own [params];
    [Error] carries the first violated invariant. Every constructor and
    mutator in this module returns only [Ok] genomes. *)
val validate : t -> (unit, string) result

val is_valid : t -> bool

(** The adversary-free genome. Raises [Invalid_argument] on malformed
    [params]. *)
val empty : params -> t

(** The genome parameter space a catalogue enumeration lives in:
    [allow_drops] iff the catalogue included intervals or point drops. *)
val params_of_schedule : Ftss_check.Schedule_enum.params -> params

(** Inject a catalogue case: intervals become their point-drop matrices,
    the corruption class its per-pid value table. The injected genome
    compiles ({!to_adversary}) to a fault schedule with the identical
    drop semantics and declared faulty set, hence the identical
    {!Ftss_sync.Trace.hash} on the synchronous theorems. *)
val of_schedule : Ftss_check.Schedule_enum.t -> t

(** Compile to the evaluator interface shared with the exhaustive
    checker. [adv_corrupt_bound] is [Some (23, 1 + max value)] when any
    corruption is present (the asynchronous theorem's magnitude view of
    an unstructured corruption), [None] otherwise. *)
val to_adversary : t -> Ftss_check.Property.adversary

(** The shrinking measure: [|faulty|] plus each crash's remaining rounds
    [rounds - r + 1] plus [|drops|] plus [|corrupt|]. Every
    {!reductions} candidate is strictly smaller. *)
val size : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

(** One seeded mutation step: flip (add/remove) a drop, widen or shift a
    drop to an adjacent round, set/shift/clear a crash point, perturb or
    clear a corruption value, or toggle a declared-faulty pid — chosen
    uniformly among the operators applicable to [t]. Deterministic in
    the generator state; the result is valid and shares [t.params]. *)
val mutate : Rng.t -> t -> t

(** Seeded crossover of two genomes over the same [params] (raises
    [Invalid_argument] otherwise): each crash, drop and corruption entry
    is inherited from one parent or the other, and the declared set is
    repaired back to the fault budget by discharging the largest pids.
    Deterministic in the generator state; the result is valid. *)
val splice : Rng.t -> t -> t -> t

(** The strictly smaller genomes tried from [t], in the order tried:
    coarse group moves first — all drops at once, all corruptions at
    once, a faulty pid with everything touching it, whole
    [(endpoint, round)] drop rows (the analogues of the catalogue
    shrinker's behaviour removals, corruption downgrades and interval
    weakenings, so the genome descent never gets stuck where the
    catalogue descent would not) — then single drop removals, crash
    removals, crash postponements, corruption removals, and removals of
    uncharged faulty pids. Feeding this to
    {!Ftss_check.Shrink.fixpoint} terminates because {!size} strictly
    decreases along every candidate. *)
val reductions : t -> t list

val pp : Format.formatter -> t -> unit

(** {2 Persistence} — the corpus file format, one S-expression per
    genome, self-contained (params embedded). *)

val to_sexp : t -> Ftss_check.Replay.Sexp.t

(** Strict inverse of {!to_sexp}: malformed documents and invalid
    genomes are [Error _], never guessed at. *)
val of_sexp : Ftss_check.Replay.Sexp.t -> (t, string) result

val to_string : t -> string
val of_string : string -> (t, string) result
