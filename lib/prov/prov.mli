(** Causal provenance over stamped (or raw) event traces: the [ftss
    explain] engine.

    {!of_events} indexes an event stream into a happened-before DAG:
    program-order edges chain each process's located events, message
    edges pair every [Deliver] with its originating [Send] by per-link
    FIFO (a synchronous broadcast, [dst = None], puts one in-flight copy
    on every link), and a [Drop] {e consumes} its suppressed send
    without creating an edge into the receiver — omitted messages are
    thereby pruned from every cone by construction, while the drop node
    itself still points at the send so blame can be chained offline.
    Global events (round boundaries, windows, checker/fuzzer lifecycle)
    are join nodes: they descend from everyone's latest event but
    advance no process's lane, so located cones never pass through them.

    On a synchronous trace the cone relation coincides exactly with
    [Ftss_history.Causality.happened_before] — the runner emits all of a
    round's sends before its delivers, so backward reachability from p's
    last event at the end of round r reproduces the knowledge set
    K_r(p). The test suite checks this differentially over whole
    adversary corpora. On asynchronous traces FIFO pairing may
    misattribute a delivery to an earlier same-link send when the
    transport reordered; the sender's program order corrects the
    knowledge sets (the later send dominates the earlier), so cones are
    exact at process granularity even when individual message
    attribution is not. *)

open Ftss_util
open Ftss_obs

type t

val of_events : Event.t list -> t

(** Load a JSON Lines trace (via {!Trace_summary.load}) and index it. *)
val load : string -> (t, string) result

(** Universe size, inferred from every endpoint the trace mentions and
    the width of any vector clock. *)
val n : t -> int

val length : t -> int
val event : t -> int -> Event.t

(** Immediate causal parents (event ids) of event [i]. *)
val parents : t -> int -> int list

(** Stream index of [ev] in the indexed trace — physical equality first
    (an event captured from a live ring and indexed with it), then the
    last structurally equal event; [None] if the trace no longer holds
    it (e.g. the ring evicted it). The cone-on-demand entry point for
    the flight recorder. *)
val find_event : t -> Event.t -> int option

(** The process whose lane event [i] belongs to; [None] for drops and
    global events. *)
val located : t -> int -> Pid.t option

(** [cone t targets] is the happened-before cone: every event backward
    reachable from [targets] (inclusive), ascending. *)
val cone : t -> int list -> int list

(** The last event on [p]'s lane with [time <= upto], if any. *)
val last_at : t -> ?upto:int -> Pid.t -> int option

(** Processes owning at least one event of [ids]. *)
val cone_pids : t -> int list -> Pidset.t

(** [knows t ~round p] is K_round(p): the processes with an event in the
    cone of [p]'s last event at [time <= round], [p] included. Matches
    [Causality.knows] on synchronous traces. *)
val knows : t -> round:int -> Pid.t -> Pidset.t

val happened_before : t -> upto:int -> Pid.t -> Pid.t -> bool

(** Processes with a [Crash] event. *)
val crashed : t -> Pidset.t

(** The full universe minus {!crashed} — the correct set when the trace
    does not declare one. *)
val inferred_correct : t -> Pidset.t

(** Def. 2.3 over the [round]-prefix: processes happened-before every
    process of [correct]; the full set when [correct] is empty. *)
val coterie : t -> round:int -> correct:Pidset.t -> Pidset.t

val max_time : t -> int

(** Destabilizing events: the times [r >= 1] at which the prefix coterie
    grew, with the entering processes. *)
val growth : t -> correct:Pidset.t -> (int * Pidset.t) list

(** The deliver events at time [round] that first carry [entered]'s
    causal past to a correct observer that did not yet know it — the
    newly-connecting edges of a coterie-growth round. *)
val connecting_delivers :
  t -> round:int -> entered:Pid.t -> correct:Pidset.t -> int list

(** Every drop with its consumed send's event id ([None] when the trace
    carried no matching send), in stream order. *)
val pruned_drops : t -> (int * int option) list

val blame_of_drop : t -> int -> Pid.t option

(** On a stamped trace: every edge's child clock dominates its parent's.
    [Ok ()] vacuously on unstamped traces. *)
val stamps_consistent : t -> (unit, string) result

type target =
  | Last_decide
  | Suspect of Pid.t * Pid.t
  | Last_window_close
  | Id of int  (** stamp eid when the trace is stamped, else stream index *)

(** Parse an [--event] selector: [<id>], [last-decide], [last-window],
    or [suspect:<p>,<q>] (the last suspicion change of p about q). *)
val parse_target : string -> (target, string) result

val resolve : t -> target -> (int list, string) result

(** The stamp eid of event [i], if stamped. *)
val eid : t -> int -> int option

(** Graphviz rendering of the event set [ids] (typically a cone):
    process lanes as clusters, message edges in blue, drops in red,
    [targets] highlighted. *)
val to_dot : ?targets:int list -> t -> int list -> string

(** Human-readable justification of [targets]: the cone census per
    process, the omissions pruned from it with their blame chains, and
    the destabilizing (coterie-growth) events with their connecting
    deliver edges. *)
val pp_explain : Format.formatter -> t * int list -> unit
