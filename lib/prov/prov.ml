open Ftss_util
open Ftss_obs

type t = {
  evs : Event.t array;
  n : int;
  parents : int list array;
  loc : Pid.t option array;
  by_pid : int list array; (* ascending event ids per located process *)
  suppressed : (int, int) Hashtbl.t; (* drop id -> suppressed send id *)
}

let location (body : Event.body) =
  match body with
  | Event.Send { src; _ } -> Some src
  | Event.Deliver { dst; _ } -> Some dst
  | Event.Crash { pid } | Event.Corrupt { pid } | Event.Decide { pid; _ }
  | Event.Submit { pid; _ } | Event.Commit { pid; _ } | Event.Apply { pid; _ }
  | Event.Recover { pid; _ } ->
    Some pid
  | Event.Suspect_add { observer; _ } | Event.Suspect_remove { observer; _ } ->
    Some observer
  | Event.Drop _ | Event.Round_begin | Event.Round_end | Event.Window_open
  | Event.Window_close _ | Event.Case_start _ | Event.Case_verdict _
  | Event.Coverage _ ->
    None

(* The universe is whatever the trace mentions: every endpoint of every
   event, plus the width of any vector clock (a stamped trace knows its
   own n). *)
let infer_n evs =
  Array.fold_left
    (fun acc (ev : Event.t) ->
      let acc =
        match ev.Event.stamp with
        | Some s -> max acc (Array.length s.Stamp.vc)
        | None -> acc
      in
      match ev.Event.body with
      | Event.Send { src; dst } ->
        max acc (1 + max src (Option.value ~default:(-1) dst))
      | Event.Deliver { src; dst } -> max acc (1 + max src dst)
      | Event.Drop { src; dst; blame } ->
        max acc (1 + max (max src dst) (Option.value ~default:(-1) blame))
      | Event.Crash { pid } | Event.Corrupt { pid } | Event.Decide { pid; _ }
      | Event.Submit { pid; _ } | Event.Commit { pid; _ } | Event.Apply { pid; _ }
      | Event.Recover { pid; _ } ->
        max acc (1 + pid)
      | Event.Suspect_add { observer; subject }
      | Event.Suspect_remove { observer; subject } ->
        max acc (1 + max observer subject)
      | Event.Round_begin | Event.Round_end | Event.Window_open
      | Event.Window_close _ | Event.Case_start _ | Event.Case_verdict _
      | Event.Coverage _ ->
        acc)
    0 evs

let of_events list =
  let evs = Array.of_list list in
  let len = Array.length evs in
  let n = infer_n evs in
  let loc = Array.map (fun (ev : Event.t) -> location ev.Event.body) evs in
  let parents = Array.make len [] in
  let by_pid_rev = Array.make (max 1 n) [] in
  let suppressed = Hashtbl.create 16 in
  let last = Array.make (max 1 n) (-1) in
  let channels : (int * int, int Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let push ~src ~dst i =
    let q =
      match Hashtbl.find_opt channels (src, dst) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add channels (src, dst) q;
        q
    in
    Queue.push i q
  in
  let pop ~src ~dst =
    match Hashtbl.find_opt channels (src, dst) with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | _ -> None
  in
  let program_parent p = if last.(p) >= 0 then [ last.(p) ] else [] in
  let advance p i =
    by_pid_rev.(p) <- i :: by_pid_rev.(p);
    last.(p) <- i
  in
  Array.iteri
    (fun i (ev : Event.t) ->
      match ev.Event.body with
      | Event.Send { src; dst } ->
        parents.(i) <- program_parent src;
        advance src i;
        (match dst with
        | Some d -> push ~src ~dst:d i
        | None ->
          (* Synchronous broadcast: one in-flight copy per link. *)
          for d = 0 to n - 1 do
            push ~src ~dst:d i
          done)
      | Event.Deliver { src; dst } ->
        let ps = program_parent dst in
        let ps =
          match pop ~src ~dst with
          | Some s -> s :: ps
          | None -> ps (* spurious/unpaired message: no causal ancestor *)
        in
        parents.(i) <- ps;
        advance dst i
      | Event.Drop { src; dst; _ } ->
        (* The suppressed send is consumed and linked so blame can be
           chained, but the drop advances nobody's lane: an omitted
           message contributes no causality, so no located event can ever
           reach it — dropped messages are pruned from every cone by
           construction. *)
        (match pop ~src ~dst with
        | Some s ->
          parents.(i) <- [ s ];
          Hashtbl.add suppressed i s
        | None -> ())
      | Event.Crash _ | Event.Corrupt _ | Event.Decide _ | Event.Suspect_add _
      | Event.Suspect_remove _ | Event.Submit _ | Event.Commit _ | Event.Apply _
      | Event.Recover _ -> (
        match loc.(i) with
        | Some p ->
          parents.(i) <- program_parent p;
          advance p i
        | None -> ())
      | Event.Round_begin | Event.Round_end | Event.Window_open
      | Event.Window_close _ | Event.Case_start _ | Event.Case_verdict _
      | Event.Coverage _ ->
        (* Join node: the event summarizes the whole run so far, so it
           descends from everyone's latest event — but advances no lane,
           so located cones never pass through it. *)
        let ps = ref [] in
        for p = n - 1 downto 0 do
          if last.(p) >= 0 then ps := last.(p) :: !ps
        done;
        parents.(i) <- !ps)
    evs;
  let by_pid = Array.map List.rev by_pid_rev in
  { evs; n; parents; loc; by_pid; suppressed }

let load path =
  Result.map
    (fun t -> of_events (Trace_summary.events t))
    (Trace_summary.load path)

let n t = t.n
let length t = Array.length t.evs
let event t i = t.evs.(i)
let parents t i = t.parents.(i)
let located t i = t.loc.(i)

(* Locate a captured event in the indexed trace: physical equality first
   (the common case — an alarm handed back an event it pulled off a live
   ring that was then indexed wholesale), falling back to the last
   structurally equal event. Only called on demand (a flight-recorder
   snapshot), so the scan is fine. *)
let find_event t ev =
  let len = Array.length t.evs in
  let rec phys i = if i < 0 then None else if t.evs.(i) == ev then Some i else phys (i - 1) in
  match phys (len - 1) with
  | Some _ as r -> r
  | None ->
    let rec structural i =
      if i < 0 then None else if t.evs.(i) = ev then Some i else structural (i - 1)
    in
    structural (len - 1)

let eid t i =
  match t.evs.(i).Event.stamp with Some s -> Some s.Stamp.eid | None -> None

let find_eid t e =
  let found = ref None in
  Array.iteri
    (fun i (ev : Event.t) ->
      match ev.Event.stamp with
      | Some s when s.Stamp.eid = e && !found = None -> found := Some i
      | _ -> ())
    t.evs;
  !found

let cone t targets =
  let len = Array.length t.evs in
  let seen = Array.make (max 1 len) false in
  let rec visit i =
    if i >= 0 && i < len && not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit t.parents.(i)
    end
  in
  List.iter visit targets;
  let acc = ref [] in
  for i = len - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  !acc

let last_at t ?(upto = max_int) p =
  if p < 0 || p >= Array.length t.by_pid then None
  else
    List.fold_left
      (fun acc i -> if t.evs.(i).Event.time <= upto then Some i else acc)
      None t.by_pid.(p)

let cone_pids t ids =
  List.fold_left
    (fun acc i -> match t.loc.(i) with Some p -> Pidset.add p acc | None -> acc)
    Pidset.empty ids

let knows t ~round p =
  match last_at t ~upto:round p with
  | None -> Pidset.singleton p
  | Some i -> Pidset.add p (cone_pids t (cone t [ i ]))

let happened_before t ~upto p q = Pidset.mem p (knows t ~round:upto q)

let crashed t =
  Array.fold_left
    (fun acc (ev : Event.t) ->
      match ev.Event.body with
      | Event.Crash { pid } -> Pidset.add pid acc
      | _ -> acc)
    Pidset.empty t.evs

let inferred_correct t = Pidset.diff (Pidset.full t.n) (crashed t)

let coterie t ~round ~correct =
  if Pidset.is_empty correct then Pidset.full t.n
  else
    Pidset.fold
      (fun q acc -> Pidset.inter acc (knows t ~round q))
      correct (Pidset.full t.n)

let max_time t =
  Array.fold_left (fun acc (ev : Event.t) -> max acc ev.Event.time) 0 t.evs

let growth t ~correct =
  let upto = max_time t in
  let rec collect r prev acc =
    if r > upto then List.rev acc
    else
      let c = coterie t ~round:r ~correct in
      let grew = Pidset.diff c prev in
      let acc = if Pidset.is_empty grew then acc else (r, grew) :: acc in
      collect (r + 1) c acc
  in
  collect 1 (coterie t ~round:0 ~correct) []

(* The deliver events of round [round] that first carry [entered]'s
   causal past to an observer that did not yet know it — the
   destabilizing edges of a coterie-growth round. Only the message edge
   counts as carrying: the deliver node's own cone also covers the
   destination's program-order past, which would wrongly credit a later
   same-round deliver to a destination that just learned [entered] from
   someone else. *)
let connecting_delivers t ~round ~entered ~correct =
  let message_parent i =
    List.find_opt
      (fun j ->
        match t.evs.(j).Event.body with Event.Send _ -> true | _ -> false)
      t.parents.(i)
  in
  let result = ref [] in
  Array.iteri
    (fun i (ev : Event.t) ->
      if ev.Event.time = round then
        match ev.Event.body with
        | Event.Deliver { dst; _ }
          when Pidset.mem dst correct
               && not (happened_before t ~upto:(round - 1) entered dst)
               && (match message_parent i with
                  | Some s -> Pidset.mem entered (cone_pids t (cone t [ s ]))
                  | None -> false) ->
          result := i :: !result
        | _ -> ())
    t.evs;
  List.rev !result

let pruned_drops t =
  let acc = ref [] in
  Array.iteri
    (fun i (ev : Event.t) ->
      match ev.Event.body with
      | Event.Drop _ -> acc := (i, Hashtbl.find_opt t.suppressed i) :: !acc
      | _ -> ())
    t.evs;
  List.rev !acc

let blame_of_drop t i =
  match t.evs.(i).Event.body with
  | Event.Drop { blame; _ } -> blame
  | _ -> None

(* --- stamped-trace invariant --- *)

let stamps_consistent t =
  let bad = ref None in
  Array.iteri
    (fun i (ev : Event.t) ->
      if !bad = None then
        match ev.Event.stamp with
        | None -> ()
        | Some s ->
          List.iter
            (fun j ->
              match t.evs.(j).Event.stamp with
              | Some s' when not (Stamp.dominates ~by:s s') ->
                if !bad = None then
                  bad :=
                    Some
                      (Printf.sprintf
                         "event %d's clock does not dominate its parent %d" i j)
              | _ -> ())
            t.parents.(i))
    t.evs;
  match !bad with None -> Ok () | Some msg -> Error msg

(* --- target selection --- *)

type target =
  | Last_decide
  | Suspect of Pid.t * Pid.t
  | Last_window_close
  | Id of int

let parse_target s =
  match s with
  | "last-decide" -> Ok Last_decide
  | "last-window" -> Ok Last_window_close
  | _ -> (
    match int_of_string_opt s with
    | Some i when i >= 0 -> Ok (Id i)
    | Some _ -> Error "event id must be non-negative"
    | None -> (
      match String.index_opt s ':' with
      | Some k when String.sub s 0 k = "suspect" -> (
        let rest = String.sub s (k + 1) (String.length s - k - 1) in
        match String.split_on_char ',' rest with
        | [ a; b ] -> (
          match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b))
          with
          | Some p, Some q -> Ok (Suspect (p, q))
          | _ -> Error (Printf.sprintf "bad suspect selector %S" s))
        | _ -> Error (Printf.sprintf "suspect selector needs two pids: %S" s))
      | _ ->
        Error
          (Printf.sprintf
             "unknown event selector %S (want <id>, last-decide, last-window, or \
              suspect:<p>,<q>)"
             s)))

let last_matching t f =
  let found = ref None in
  Array.iteri (fun i (ev : Event.t) -> if f ev then found := Some i) t.evs;
  !found

let resolve t target =
  match target with
  | Last_decide -> (
    match
      last_matching t (fun ev ->
          match ev.Event.body with Event.Decide _ -> true | _ -> false)
    with
    | Some i -> Ok [ i ]
    | None -> Error "trace has no decide event")
  | Last_window_close -> (
    match
      last_matching t (fun ev ->
          match ev.Event.body with Event.Window_close _ -> true | _ -> false)
    with
    | Some i -> Ok [ i ]
    | None -> Error "trace has no window_close event")
  | Suspect (p, q) -> (
    match
      last_matching t (fun ev ->
          match ev.Event.body with
          | Event.Suspect_add { observer; subject }
          | Event.Suspect_remove { observer; subject } ->
            Pid.equal observer p && Pid.equal subject q
          | _ -> false)
    with
    | Some i -> Ok [ i ]
    | None ->
      Error (Printf.sprintf "trace has no suspicion change of p%d about p%d" p q))
  | Id e -> (
    (* A stamped trace is addressed by eid; an unstamped one by stream
       index. Eids win when both could match. *)
    match find_eid t e with
    | Some i -> Ok [ i ]
    | None ->
      if e < length t && eid t e = None then Ok [ e ]
      else Error (Printf.sprintf "no event with id %d" e))

(* --- rendering --- *)

let node_label t i =
  Format.asprintf "%d: %a" i Event.pp t.evs.(i)

let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(targets = []) t ids =
  let buf = Buffer.create 4096 in
  let in_set = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace in_set i ()) ids;
  Buffer.add_string buf "digraph provenance {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  (* One cluster (lane) per process that owns events in the set. *)
  let lanes = Array.make (max 1 t.n) [] in
  let global = ref [] in
  List.iter
    (fun i ->
      match t.loc.(i) with
      | Some p -> lanes.(p) <- i :: lanes.(p)
      | None -> global := i :: !global)
    ids;
  Array.iteri
    (fun p evs ->
      if evs <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  subgraph cluster_p%d {\n    label=\"p%d\";\n" p p);
        List.iter
          (fun i ->
            Buffer.add_string buf
              (Printf.sprintf "    e%d [label=\"%s\"%s];\n" i
                 (dot_escape (node_label t i))
                 (if List.mem i targets then
                    ", style=filled, fillcolor=gold, penwidth=2"
                  else "")))
          (List.rev evs);
        Buffer.add_string buf "  }\n"
      end)
    lanes;
  List.iter
    (fun i ->
      let is_drop =
        match t.evs.(i).Event.body with Event.Drop _ -> true | _ -> false
      in
      Buffer.add_string buf
        (Printf.sprintf "  e%d [label=\"%s\"%s];\n" i
           (dot_escape (node_label t i))
           (if is_drop then ", color=red, fontcolor=red"
            else if List.mem i targets then
              ", style=filled, fillcolor=gold, penwidth=2"
            else ", style=dashed")))
    (List.rev !global);
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if Hashtbl.mem in_set j then
            let cross =
              (* message edges cross lanes; program-order edges stay inside *)
              match (t.loc.(j), t.loc.(i)) with
              | Some a, Some b -> not (Pid.equal a b)
              | _ -> true
            in
            Buffer.add_string buf
              (Printf.sprintf "  e%d -> e%d%s;\n" j i
                 (if cross then " [color=blue]" else "")))
        t.parents.(i))
    ids;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_explain ppf (t, targets) =
  let ids = cone t targets in
  let pids = cone_pids t ids in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "target%s:" (if List.length targets = 1 then "" else "s");
  List.iter
    (fun i -> Format.fprintf ppf "@,  %s" (node_label t i))
    targets;
  Format.fprintf ppf "@,cone: %d of %d events, touching %d process%s" (List.length ids)
    (length t) (Pidset.cardinal pids)
    (if Pidset.cardinal pids = 1 then "" else "es");
  (* Per-process contribution, ascending. *)
  Pidset.iter
    (fun p ->
      let mine = List.filter (fun i -> t.loc.(i) = Some p) ids in
      match mine with
      | [] -> ()
      | _ ->
        let first = List.hd mine and last = List.nth mine (List.length mine - 1) in
        Format.fprintf ppf "@,  p%d: %d events (t=%d..%d)" p (List.length mine)
          t.evs.(first).Event.time t.evs.(last).Event.time)
    pids;
  (* Omissions pruned from the cone, with blame chains. *)
  let drops = pruned_drops t in
  if drops <> [] then begin
    (* A long adversarial run can contain thousands of omissions; the report
       shows the first few and summarizes the rest. *)
    let shown = 20 in
    Format.fprintf ppf "@,omitted messages (%d, pruned from every cone):"
      (List.length drops);
    List.iteri
      (fun k (i, sup) ->
        if k < shown then
          match t.evs.(i).Event.body with
          | Event.Drop { src; dst; blame } ->
            Format.fprintf ppf "@,  t=%d %d->%d dropped%s%s" t.evs.(i).Event.time
              src dst
              (match sup with
              | Some s -> Printf.sprintf " (suppressed send %d)" s
              | None -> "")
              (match blame with
              | Some b -> Printf.sprintf ", blamed on declared-faulty p%d" b
              | None -> "")
          | _ -> ())
      drops;
    if List.length drops > shown then
      Format.fprintf ppf "@,  ... and %d more" (List.length drops - shown)
  end;
  (* Destabilizing events: rounds where the coterie of the prefix grew. *)
  let correct = inferred_correct t in
  (match growth t ~correct with
  | [] -> ()
  | gs ->
    Format.fprintf ppf "@,destabilizing events (coterie growth):";
    List.iter
      (fun (r, entered) ->
        Pidset.iter
          (fun p ->
            Format.fprintf ppf "@,  t=%d: p%d entered the coterie" r p;
            match connecting_delivers t ~round:r ~entered:p ~correct with
            | [] -> ()
            | ds ->
              List.iter
                (fun i ->
                  if List.mem i ids then
                    Format.fprintf ppf "@,    via %s (in cone)" (node_label t i)
                  else Format.fprintf ppf "@,    via %s" (node_label t i))
                ds)
          entered)
      gs);
  Format.fprintf ppf "@]"
