open Ftss_util

type time = int

type ('m, 'o) ctx = {
  ctx_now : time;
  ctx_self : Pid.t;
  ctx_n : int;
  mutable outbox : (Pid.t * 'm) list; (* reversed *)
  mutable observations : 'o list; (* reversed *)
}

let send ctx dst msg = ctx.outbox <- (dst, msg) :: ctx.outbox

let broadcast ctx msg =
  List.iter (fun dst -> send ctx dst msg) (Pid.all ctx.ctx_n)

let observe ctx o = ctx.observations <- o :: ctx.observations
let now ctx = ctx.ctx_now
let self ctx = ctx.ctx_self

type ('s, 'm, 'o) process = {
  name : string;
  init : Pid.t -> 's;
  on_message : ('m, 'o) ctx -> 's -> src:Pid.t -> 'm -> 's;
  on_tick : ('m, 'o) ctx -> 's -> 's;
}

type config = {
  n : int;
  seed : int;
  gst : time;
  delay_before_gst : int * int;
  delay_after_gst : int * int;
  tick_interval : int;
  crashes : (Pid.t * time) list;
  horizon : time;
}

let default_config ~n ~seed =
  {
    n;
    seed;
    gst = 500;
    delay_before_gst = (1, 120);
    delay_after_gst = (1, 8);
    tick_interval = 10;
    crashes = [];
    horizon = 5000;
  }

type ('s, 'o) result = {
  final_states : 's option array;
  log : (time * Pid.t * 'o) list;
  delivered : int;
  dropped_after_crash : int;
  dropped_by_adversary : int;
  end_time : time;
}

(* Events travel through the queue as a packed int tag plus an untyped
   payload slot, so the steady-state engine allocates nothing per event:
   kind in the low 2 bits, source pid in bits 2-13, destination pid in
   bits 14-25 (12 bits per pid field, so systems up to 4096 processes
   pack without widening the tag word). Deliver carries the message in
   the payload slot, Scramble the corruption function, Tick nothing. The
   [Obj] casts are confined to this module and guarded by the kind
   bits. *)
let kind_deliver = 0
let kind_tick = 1
let kind_scramble = 2
let max_n = 4096
let tag_pid tag = (tag lsr 2) land 0xfff
let tag_dst tag = (tag lsr 14) land 0xfff

type pool = Obj.t Event_queue.t

let pool ?initial_capacity () : pool = Event_queue.create ?initial_capacity ()

let crashed_set config =
  List.fold_left
    (fun acc (p, t) -> if t <= config.horizon then Pidset.add p acc else acc)
    Pidset.empty config.crashes

let correct_set config = Pidset.diff (Pidset.full config.n) (crashed_set config)

let run ?obs ?profile ?corrupt ?(corrupt_at = []) ?drop ?(spurious = []) ?pool
    config process =
  if config.tick_interval < 1 then invalid_arg "Sim.run: tick_interval < 1";
  if config.horizon < 1 then invalid_arg "Sim.run: horizon < 1";
  if config.n < 1 || config.n > max_n then
    invalid_arg (Printf.sprintf "Sim.run: n outside 1..%d" max_n);
  let rng = Rng.create config.seed in
  let queue =
    match pool with
    | Some q ->
      Event_queue.clear q;
      q
    | None -> Event_queue.create ()
  in
  let push_deliver ~time ~src ~dst (msg : 'm) =
    Event_queue.push_tagged queue ~time
      ~tag:(kind_deliver lor (src lsl 2) lor (dst lsl 14))
      (Obj.repr msg)
  in
  let push_tick ~time p =
    Event_queue.push_tagged queue ~time ~tag:(kind_tick lor (p lsl 2)) (Obj.repr 0)
  in
  let push_scramble ~time p (f : 's -> 's) =
    Event_queue.push_tagged queue ~time
      ~tag:(kind_scramble lor (p lsl 2))
      (Obj.repr f)
  in
  let crash_time = Array.make config.n max_int in
  List.iter
    (fun (p, t) -> crash_time.(p) <- min crash_time.(p) t)
    config.crashes;
  let alive p ~at = at < crash_time.(p) in
  (* Observability: [traced] guards event construction so the default
     zero-sink path allocates nothing. Crash events are emitted once, the
     first time a process is observed past its crash time. *)
  let traced = Option.is_some obs in
  let emit =
    (* hoisted: one option match at run start, not one per event *)
    match obs with
    | Some o -> fun ev -> Ftss_obs.Obs.emit o ev
    | None -> fun _ -> ()
  in
  let crash_emitted = Array.make config.n false in
  let note_dead p =
    if traced && not crash_emitted.(p) then begin
      crash_emitted.(p) <- true;
      emit
        (Ftss_obs.Event.make ~time:crash_time.(p) (Ftss_obs.Event.Crash { pid = p }))
    end
  in
  let initial p =
    let s = process.init p in
    match corrupt with None -> s | Some c -> c p s
  in
  if traced && corrupt <> None then
    List.iter
      (fun p -> emit (Ftss_obs.Event.make ~time:0 (Ftss_obs.Event.Corrupt { pid = p })))
      (Pid.all config.n);
  let states = Array.init config.n (fun p -> Some (initial p)) in
  let log = ref [] in
  let delivered = ref 0 in
  let dropped_after_crash = ref 0 in
  let dropped_by_adversary = ref 0 in
  (* The omission adversary, consulted at send time. Self-messages are
     never dropped (the synchronous substrate's footnote-1 rule), and a
     dropped message draws no delay — the schedule of surviving messages
     under a drop matrix is therefore independent of which messages were
     dropped, only of how many survive. *)
  let adversary_drops ~at ~src ~dst =
    match drop with
    | None -> false
    | Some d -> (not (Pid.equal src dst)) && d ~time:at ~src ~dst
  in
  let delay ~at =
    let lo, hi = if at < config.gst then config.delay_before_gst else config.delay_after_gst in
    Rng.int_in rng (max 1 lo) (max 1 hi)
  in
  let flush_ctx ctx =
    List.iter
      (fun (dst, msg) ->
        if adversary_drops ~at:ctx.ctx_now ~src:ctx.ctx_self ~dst then begin
          incr dropped_by_adversary;
          (* The process did send; the adversary suppressed the message in
             flight. Emitting the Send before the Drop keeps the trace
             uniform — every Drop has a matching Send — which the causal
             stamper relies on to pair drops with their suppressed sends. *)
          if traced then begin
            emit
              (Ftss_obs.Event.make ~time:ctx.ctx_now
                 (Ftss_obs.Event.Send { src = ctx.ctx_self; dst = Some dst }));
            emit
              (Ftss_obs.Event.make ~time:ctx.ctx_now
                 (Ftss_obs.Event.Drop { src = ctx.ctx_self; dst; blame = None }))
          end
        end
        else begin
          let t = ctx.ctx_now + delay ~at:ctx.ctx_now in
          if traced then
            emit
              (Ftss_obs.Event.make ~time:ctx.ctx_now
                 (Ftss_obs.Event.Send { src = ctx.ctx_self; dst = Some dst }));
          push_deliver ~time:t ~src:ctx.ctx_self ~dst msg
        end)
      (List.rev ctx.outbox);
    List.iter
      (fun o -> log := (ctx.ctx_now, ctx.ctx_self, o) :: !log)
      (List.rev ctx.observations)
  in
  let step p at f =
    match states.(p) with
    | None -> ()
    | Some s ->
      if alive p ~at then begin
        let ctx =
          { ctx_now = at; ctx_self = p; ctx_n = config.n; outbox = []; observations = [] }
        in
        let s' = f ctx s in
        flush_ctx ctx;
        states.(p) <- Some s'
      end
      else begin
        states.(p) <- None;
        note_dead p
      end
  in
  (* Initial ticks, staggered so processes do not step in lockstep. *)
  List.iter
    (fun p -> push_tick ~time:(1 + (p mod config.tick_interval)) p)
    (Pid.all config.n);
  List.iter
    (fun (t, src, dst, msg) -> push_deliver ~time:t ~src ~dst msg)
    spurious;
  List.iter
    (fun (t, p, f) ->
      if t < 1 then invalid_arg "Sim.run: corrupt_at time < 1";
      if not (Pid.is_valid ~n:config.n p) then
        invalid_arg "Sim.run: corrupt_at pid out of range";
      push_scramble ~time:t p f)
    corrupt_at;
  let end_time = ref 0 in
  (* Profiling: like [obs], the bare path pays only an option test per
     event. Armed, the loop chains clock reads — the pop lap ends where
     the handler frame begins, and the frame's end tick seeds the next
     pop lap — so a fully attributed event costs ~2 monotonic-clock
     reads plus the handler-internal spans the process itself records. *)
  let module Prof = Ftss_profile.Profile in
  let tprev = ref (match profile with Some _ -> Prof.now_ns () | None -> 0) in
  let pop_lap () =
    match profile with
    | Some l -> tprev := Prof.lap l Prof.Phase.sim_pop ~since:!tprev
    | None -> ()
  in
  let frame_enter phase =
    match profile with
    | Some l -> Prof.enter_at l phase ~at:!tprev
    | None -> ()
  in
  let frame_leave () =
    match profile with
    | Some l ->
      let e = Prof.leave l in
      if e > 0 then tprev := e
    | None -> ()
  in
  let rec loop () =
    if Event_queue.pop_step queue then begin
      let t = Event_queue.out_time queue in
      if t > config.horizon then end_time := config.horizon
      else begin
        end_time := t;
        let tag = Event_queue.out_tag queue in
        pop_lap ();
        (match tag land 3 with
        | k when k = kind_deliver ->
          let src = tag_pid tag and dst = tag_dst tag in
          if alive dst ~at:t && states.(dst) <> None then begin
            incr delivered;
            if traced then
              emit (Ftss_obs.Event.make ~time:t (Ftss_obs.Event.Deliver { src; dst }));
            let msg : 'm = Obj.obj (Event_queue.out_payload queue) in
            frame_enter Prof.Phase.sim_deliver;
            step dst t (fun ctx s -> process.on_message ctx s ~src msg);
            frame_leave ()
          end
          else begin
            incr dropped_after_crash;
            note_dead dst;
            if traced then
              emit
                (Ftss_obs.Event.make ~time:t
                   (Ftss_obs.Event.Drop { src; dst; blame = Some dst }))
          end
        | k when k = kind_tick ->
          let p = tag_pid tag in
          if alive p ~at:t && states.(p) <> None then begin
            frame_enter Prof.Phase.sim_dispatch;
            step p t process.on_tick;
            push_tick ~time:(t + config.tick_interval) p;
            frame_leave ()
          end
        | _ -> (
          (* A mid-run transient fault: the adversary rewrites p's state in
             place. The victim takes no step — it only discovers the damage
             (if its protocol can) at its next tick or delivery. *)
          let p = tag_pid tag in
          match states.(p) with
          | Some s when alive p ~at:t ->
            let f : 's -> 's = Obj.obj (Event_queue.out_payload queue) in
            frame_enter Prof.Phase.sim_dispatch;
            states.(p) <- Some (f s);
            frame_leave ();
            if traced then
              emit (Ftss_obs.Event.make ~time:t (Ftss_obs.Event.Corrupt { pid = p }))
          | _ -> ()));
        loop ()
      end
    end
  in
  loop ();
  (* Mark crashed processes in the final state vector. *)
  Array.iteri
    (fun p st ->
      if st <> None && not (alive p ~at:config.horizon) then begin
        states.(p) <- None;
        note_dead p
      end)
    (Array.copy states);
  {
    final_states = states;
    log = List.rev !log;
    delivered = !delivered;
    dropped_after_crash = !dropped_after_crash;
    dropped_by_adversary = !dropped_by_adversary;
    end_time = !end_time;
  }

(* Deterministic parallel execution of independent sub-simulations: the
   chunked atomic work-claiming pattern from Explore, degenerating to a
   plain sequential loop at one domain. Each shard owns its rng, queue
   and states, so the value a shard computes is a function of its thunk
   alone — results land in a slot per shard and the merged array is
   bit-identical whatever the domain count or claiming interleaving. *)
let run_shards ?(domains = 1) ?profile (shards : (unit -> 'a) array) : 'a array =
  let module Prof = Ftss_profile.Profile in
  let len = Array.length shards in
  let domains = max 1 (min domains (max 1 len)) in
  let results = Array.make len None in
  let shard_lane d =
    Option.map (fun t -> Prof.lane t (Printf.sprintf "shards.d%d" d)) profile
  in
  let execute lane i =
    match lane with
    | None -> results.(i) <- Some (shards.(i) ())
    | Some l ->
      Prof.enter l Prof.Phase.chunk_execute;
      results.(i) <- Some (shards.(i) ());
      ignore (Prof.leave l)
  in
  if domains = 1 then begin
    let lane = shard_lane 0 in
    Array.iteri (fun i _ -> execute lane i) shards
  end
  else begin
    let next = Atomic.make 0 in
    let chunk = max 1 (min 64 (len / (domains * 8))) in
    let worker d () =
      let lane = shard_lane d in
      let rec claim () =
        let c0 = match lane with Some _ -> Prof.now_ns () | None -> 0 in
        let first = Atomic.fetch_and_add next chunk in
        (match lane with
        | Some l -> ignore (Prof.lap l Prof.Phase.chunk_claim ~since:c0)
        | None -> ());
        if first < len then begin
          let limit = min len (first + chunk) in
          for i = first to limit - 1 do
            execute lane i
          done;
          claim ()
        end
      in
      claim ()
    in
    let spawned = Array.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned
  end;
  Array.map
    (function Some r -> r | None -> assert false (* every index was claimed *))
    results
