(* A bucketed calendar queue over an intrusive node arena.

   Layout: nodes live in parallel flat arrays (time / tag / next /
   payload); free nodes are chained through [next], so steady-state
   push/pop recycles slots and allocates nothing on the OCaml heap. The
   current epoch is a window of [nbuckets] consecutive time units
   starting at [epoch] (aligned to the bucket count, a power of two): an
   event at time [u] with [epoch <= u < epoch + nbuckets] sits in the
   FIFO list of bucket [u land mask]. Bucket width is one time unit, so
   every node in a bucket shares one timestamp — pop advances the cursor
   to the next non-empty bucket and unlinks its head, O(1) amortized —
   and insertion order within a time is list order, which preserves the
   (time, insertion sequence) contract of the original binary heap
   without materializing sequence numbers.

   Events beyond the window wait in an insertion-ordered overflow list
   (invariant: every overflow time is at or past the window end, so the
   two structures never hold the same timestamp) and are promoted in
   bulk when the window rolls over them; a window that drains while
   overflow remains jumps the epoch straight to the earliest overflow
   time. Pushes into the past — nothing in the simulator does it, but
   the heap allowed it — flush the window back into overflow and rebase
   the epoch at the new minimum. *)

type 'e t = {
  (* node arena, parallel arrays; [free] heads the freelist *)
  mutable ntime : int array;
  mutable ntag : int array;
  mutable nnext : int array;
  mutable npayload : Obj.t array;
  mutable free : int;
  (* window buckets: FIFO lists, one time unit per bucket *)
  mutable bhead : int array;
  mutable btail : int array;
  mutable mask : int; (* nbuckets - 1, nbuckets a power of two *)
  mutable epoch : int; (* window base, aligned: epoch land mask = 0 *)
  mutable cur : int; (* scan cursor; no bucketed node is earlier *)
  mutable win : int; (* nodes in the window buckets *)
  (* overflow list: times >= epoch + nbuckets, insertion order *)
  mutable ohead : int;
  mutable otail : int;
  mutable size : int;
  (* outputs of the last successful [pop_step] *)
  mutable o_time : int;
  mutable o_tag : int;
  mutable o_payload : Obj.t;
}

(* An immediate, so payload arrays are never flat float arrays and
   [Obj.repr]-boxed elements of any type can be stored in them. *)
let dummy = Obj.repr 0

let rec pow2 k n = if k >= n then k else pow2 (2 * k) n

let create ?(initial_capacity = 256) () =
  let cap = max 16 initial_capacity in
  let nb = pow2 64 (min cap (1 lsl 20)) in
  {
    ntime = Array.make cap 0;
    ntag = Array.make cap 0;
    nnext = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1);
    npayload = Array.make cap dummy;
    free = 0;
    bhead = Array.make nb (-1);
    btail = Array.make nb (-1);
    mask = nb - 1;
    epoch = 0;
    cur = 0;
    win = 0;
    ohead = -1;
    otail = -1;
    size = 0;
    o_time = 0;
    o_tag = 0;
    o_payload = dummy;
  }

let is_empty t = t.size = 0
let size t = t.size

let clear t =
  let cap = Array.length t.ntime in
  for i = 0 to cap - 1 do
    t.nnext.(i) <- (if i = cap - 1 then -1 else i + 1);
    t.npayload.(i) <- dummy
  done;
  t.free <- 0;
  Array.fill t.bhead 0 (Array.length t.bhead) (-1);
  Array.fill t.btail 0 (Array.length t.btail) (-1);
  t.epoch <- 0;
  t.cur <- 0;
  t.win <- 0;
  t.ohead <- -1;
  t.otail <- -1;
  t.size <- 0;
  t.o_payload <- dummy

let grow_arena t =
  let cap = Array.length t.ntime in
  let cap' = 2 * cap in
  let ntime = Array.make cap' 0
  and ntag = Array.make cap' 0
  and nnext = Array.make cap' (-1)
  and npayload = Array.make cap' dummy in
  Array.blit t.ntime 0 ntime 0 cap;
  Array.blit t.ntag 0 ntag 0 cap;
  Array.blit t.nnext 0 nnext 0 cap;
  Array.blit t.npayload 0 npayload 0 cap;
  for i = cap to cap' - 1 do
    nnext.(i) <- (if i = cap' - 1 then -1 else i + 1)
  done;
  t.ntime <- ntime;
  t.ntag <- ntag;
  t.nnext <- nnext;
  t.npayload <- npayload;
  t.free <- cap

let alloc t =
  if t.free < 0 then grow_arena t;
  let idx = t.free in
  t.free <- t.nnext.(idx);
  idx

let bucket_append t b idx =
  t.nnext.(idx) <- -1;
  if t.btail.(b) < 0 then begin
    t.bhead.(b) <- idx;
    t.btail.(b) <- idx
  end
  else begin
    t.nnext.(t.btail.(b)) <- idx;
    t.btail.(b) <- idx
  end

let overflow_append t idx =
  t.nnext.(idx) <- -1;
  if t.otail < 0 then begin
    t.ohead <- idx;
    t.otail <- idx
  end
  else begin
    t.nnext.(t.otail) <- idx;
    t.otail <- idx
  end

(* Move every overflow node that now falls inside the window into its
   bucket, keeping the leftovers in insertion order. Relative order of
   same-time nodes is preserved: equal times always share one bucket,
   and both lists are walked front to back. *)
let promote t =
  let limit = t.epoch + t.mask + 1 in
  let i = ref t.ohead in
  t.ohead <- -1;
  t.otail <- -1;
  while !i >= 0 do
    let next = t.nnext.(!i) in
    let u = t.ntime.(!i) in
    if u < limit then begin
      bucket_append t (u land t.mask) !i;
      t.win <- t.win + 1
    end
    else overflow_append t !i;
    i := next
  done

(* Empty the window buckets back into overflow (epoch-rebase helper).
   Distinct times never collide between the two lists, so appending
   whole bucket chains keeps every same-time run in insertion order. *)
let flush_window t =
  if t.win > 0 then
    for b = 0 to t.mask do
      let i = ref t.bhead.(b) in
      while !i >= 0 do
        let next = t.nnext.(!i) in
        overflow_append t !i;
        i := next
      done;
      t.bhead.(b) <- -1;
      t.btail.(b) <- -1
    done;
  t.win <- 0

(* Keep the standing population within a small factor of the bucket
   count, so the overflow list (rescanned at every rollover) stays
   short. Doubling rebases the window around the cursor. *)
let grow_buckets t =
  let nb' = 2 * (t.mask + 1) in
  flush_window t;
  t.bhead <- Array.make nb' (-1);
  t.btail <- Array.make nb' (-1);
  t.mask <- nb' - 1;
  t.epoch <- t.cur land lnot t.mask;
  promote t

let push_tagged t ~time ~tag payload =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  if t.size >= 2 * (t.mask + 1) then grow_buckets t;
  let idx = alloc t in
  t.ntime.(idx) <- time;
  t.ntag.(idx) <- tag;
  t.npayload.(idx) <- Obj.repr payload;
  if time >= t.epoch + t.mask + 1 then overflow_append t idx
  else if time >= t.epoch then begin
    bucket_append t (time land t.mask) idx;
    t.win <- t.win + 1;
    if time < t.cur then t.cur <- time
  end
  else begin
    (* Push into the past: rebase the window at the new minimum. Both
       epochs are aligned, so everything already queued — window nodes
       at or past the old epoch, overflow past the old window — lands at
       or past the new window's end and belongs in overflow. *)
    flush_window t;
    t.epoch <- time land lnot t.mask;
    t.cur <- time;
    bucket_append t (time land t.mask) idx;
    t.win <- 1
  end;
  t.size <- t.size + 1

let push t ~time payload = push_tagged t ~time ~tag:0 payload

(* Position [cur] on the earliest non-empty bucket, rolling the epoch
   forward over overflow when the window has drained. The recursion runs
   at most twice: after a jump-and-promote the minimum overflow node is
   in the window by construction. *)
let rec ensure_head t =
  if t.size = 0 then false
  else if t.win > 0 then begin
    while t.bhead.(t.cur land t.mask) < 0 do
      t.cur <- t.cur + 1
    done;
    true
  end
  else begin
    let m = ref max_int in
    let i = ref t.ohead in
    while !i >= 0 do
      if t.ntime.(!i) < !m then m := t.ntime.(!i);
      i := t.nnext.(!i)
    done;
    t.epoch <- !m land lnot t.mask;
    t.cur <- !m;
    promote t;
    ensure_head t
  end

let pop_step t =
  if not (ensure_head t) then false
  else begin
    let b = t.cur land t.mask in
    let idx = t.bhead.(b) in
    let next = t.nnext.(idx) in
    t.bhead.(b) <- next;
    if next < 0 then t.btail.(b) <- -1;
    t.win <- t.win - 1;
    t.size <- t.size - 1;
    t.o_time <- t.ntime.(idx);
    t.o_tag <- t.ntag.(idx);
    t.o_payload <- t.npayload.(idx);
    t.npayload.(idx) <- dummy;
    t.nnext.(idx) <- t.free;
    t.free <- idx;
    true
  end

let out_time t = t.o_time
let out_tag t = t.o_tag
let out_payload (t : 'e t) : 'e = Obj.obj t.o_payload

let pop (t : 'e t) : (int * 'e) option =
  if pop_step t then begin
    let v : 'e = Obj.obj t.o_payload in
    t.o_payload <- dummy;
    Some (t.o_time, v)
  end
  else None

let peek_time t = if ensure_head t then Some t.cur else None

(* The seed binary heap, kept verbatim as the differential-testing model
   and the "before" side of the E16 queue benchmark: one boxed
   {time; seq; event} record per push, O(log n) sift per operation. *)
module Reference = struct
  type 'e entry = { time : int; seq : int; event : 'e }

  type 'e t = {
    mutable heap : 'e entry array;
    mutable size : int;
    mutable next_seq : int;
  }

  let create () = { heap = [||]; size = 0; next_seq = 0 }
  let is_empty t = t.size = 0
  let size t = t.size

  let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let grow t =
    let capacity = Array.length t.heap in
    if t.size = capacity then begin
      let fresh = Array.make (max 16 (2 * capacity)) t.heap.(0) in
      Array.blit t.heap 0 fresh 0 capacity;
      t.heap <- fresh
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if precedes t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < t.size && precedes t.heap.(left) t.heap.(!smallest) then
      smallest := left;
    if right < t.size && precedes t.heap.(right) t.heap.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- tmp;
      sift_down t !smallest
    end

  let push t ~time event =
    if time < 0 then invalid_arg "Event_queue.push: negative time";
    let entry = { time; seq = t.next_seq; event } in
    t.next_seq <- t.next_seq + 1;
    if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry
    else grow t;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      Some (top.time, top.event)
    end

  let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
end
