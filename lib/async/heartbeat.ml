open Ftss_util

type t = {
  last_heard : int array;
  timeout : int array;
  down : bool array;
  backoff : int;
}

type msg = Heartbeat

let create ~n ~initial_timeout ~backoff =
  if initial_timeout < 1 || backoff < 0 then
    invalid_arg "Heartbeat.create: bad timeout parameters";
  {
    last_heard = Array.make n 0;
    timeout = Array.make n initial_timeout;
    down = Array.make n false;
    backoff;
  }

let corrupt rng ~time_bound ~timeout_bound t =
  {
    t with
    last_heard = Array.map (fun _ -> Rng.int rng time_bound) t.last_heard;
    timeout = Array.map (fun _ -> 1 + Rng.int rng timeout_bound) t.timeout;
    down = Array.map (fun _ -> Rng.bool rng) t.down;
  }

let tick t ~self ~now =
  (* [timeout] is not written on the tick path, so the copy is elided;
     every writer ([heard], below) copies before mutating, which keeps
     the shared array safe under value semantics. *)
  let last_heard = Array.copy t.last_heard and down = Array.copy t.down in
  Array.iteri
    (fun s heard ->
      if Pid.equal s self then down.(s) <- false
      else begin
        (* A corrupted last-heard time claiming the future is clamped so
           the deadline arithmetic self-heals. *)
        if heard > now then last_heard.(s) <- now;
        down.(s) <- now - last_heard.(s) > t.timeout.(s)
      end)
    last_heard;
  { t with last_heard; down }

let heard t ~src ~now =
  let last_heard = Array.copy t.last_heard
  and timeout = Array.copy t.timeout
  and down = Array.copy t.down in
  if down.(src) then
    (* The suspicion was premature: back the deadline off. *)
    timeout.(src) <- timeout.(src) + t.backoff;
  last_heard.(src) <- now;
  down.(src) <- false;
  { t with last_heard; timeout; down }

let suspected t s = t.down.(s)
let suspects t = Pidset.of_pred (Array.length t.down) (fun s -> suspected t s)

type observation = Suspects of Pidset.t

let process ~n ~initial_timeout ~backoff =
  {
    Sim.name = "heartbeat-fd";
    init = (fun _ -> create ~n ~initial_timeout ~backoff);
    on_tick =
      (fun ctx t ->
        Sim.broadcast ctx Heartbeat;
        let t = tick t ~self:(Sim.self ctx) ~now:(Sim.now ctx) in
        (* Observed every tick (not only on change) so the analysis sees a
           dense sampling of each process's suspect set. *)
        Sim.observe ctx (Suspects (suspects t));
        t);
    on_message =
      (fun ctx t ~src Heartbeat ->
        let before = suspects t in
        let t = heard t ~src ~now:(Sim.now ctx) in
        let after = suspects t in
        if not (Pidset.equal before after) then Sim.observe ctx (Suspects after);
        t);
  }

type report = { completeness_from : int option; accuracy_from : int option }

let analyze (result : (t, observation) Sim.result) ~config =
  let crashed = Sim.crashed_set config in
  let correct = Sim.correct_set config in
  let last_completeness_violation = ref (-1) in
  let last_accuracy_violation = ref (-1) in
  List.iter
    (fun (time, pid, Suspects set) ->
      if Pidset.mem pid correct then begin
        if not (Pidset.subset crashed set) then
          last_completeness_violation := max !last_completeness_violation time;
        if not (Pidset.is_empty (Pidset.inter set correct)) then
          last_accuracy_violation := max !last_accuracy_violation time
      end)
    result.Sim.log;
  let settle last =
    let t = last + 1 in
    if t >= result.Sim.end_time then None else Some t
  in
  {
    completeness_from = settle !last_completeness_violation;
    accuracy_from = settle !last_accuracy_violation;
  }
