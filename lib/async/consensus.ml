open Ftss_util

type value = int

type style = { retransmit : bool; round_agreement : bool }

let baseline = { retransmit = false; round_agreement = false }
let self_stabilizing = { retransmit = true; round_agreement = true }
let retransmit_only = { retransmit = true; round_agreement = false }
let round_agreement_only = { retransmit = false; round_agreement = true }

type tag = { instance : int; round : int }

let tag_gt a b =
  a.instance > b.instance || (a.instance = b.instance && a.round > b.round)

type cmsg =
  | Est of { tag : tag; estimate : value; ts : int }
  | Propose of { tag : tag; value : value }
  | Ack of { tag : tag }
  | Nack of { tag : tag }
  | Decide of { instance : int; value : value }
  | Round of { tag : tag }

type msg = Fd of Esfd.msg | Hb of Heartbeat.msg | Cons of cmsg

type coord_record = {
  co_round : int;
  co_ests : (value * int) Pidmap.t;
  co_proposal : value option;
  co_acks : Pidset.t;
}

type state = {
  fd : Esfd.t;
  hb : Heartbeat.t option;
      (* present when the ◇W layer is the heartbeat implementation *)
  instance : int;
  round : int;
  estimate : value;
  ts : int; (* round in which [estimate] was last adopted; -1 = fresh *)
  coord : coord_record option; (* bookkeeping for the round we coordinate *)
  prev_decision : (int * value) option;
  pending : (Pid.t * cmsg) list;
      (* future-tagged messages buffered for replay (classic CT91); only
         populated when the style does not run round agreement *)
}

type observation =
  | Decided of { instance : int; value : value }
  | Joined of tag

let forged_round tag = Cons (Round { tag })
let forged_decide ~instance ~value = Cons (Decide { instance; value })

type detector_source =
  | Oracle of Ewfd.t
  | Heartbeats of { initial_timeout : int; backoff : int }

let coord_of ~n round = ((round mod n) + n) mod n
let majority n = (n / 2) + 1
let current_tag st = { instance = st.instance; round = st.round }

let fresh_record round =
  { co_round = round; co_ests = Pidmap.empty; co_proposal = None; co_acks = Pidset.empty }

let tag_of_cmsg = function
  | Est { tag; _ } | Propose { tag; _ } | Ack { tag } | Nack { tag } | Round { tag } ->
    Some tag
  | Decide _ -> None

let pending_cap = 256

(* Entering a round: send the phase-1 estimate to the coordinator; start a
   coordination record when we are that coordinator. *)
let enter ctx ~n st ~round =
  let c = coord_of ~n round in
  let st = { st with round } in
  Sim.send ctx c (Cons (Est { tag = current_tag st; estimate = st.estimate; ts = st.ts }));
  let coord = if Pid.equal c (Sim.self ctx) then Some (fresh_record round) else st.coord in
  { st with coord }

let emit_decide obs ctx ~instance ~value =
  match obs with
  | None -> ()
  | Some o ->
    Ftss_obs.Obs.emit o
      (Ftss_obs.Event.make ~time:(Sim.now ctx)
         (Ftss_obs.Event.Decide { pid = Sim.self ctx; instance; value }))

let emit_suspect_diff obs ctx ~before ~after =
  match obs with
  | None -> ()
  | Some o ->
    Ftss_obs.Obs.suspect_diff o ~time:(Sim.now ctx) ~observer:(Sim.self ctx) ~before
      ~after

(* Round agreement: abandon current work and join a newer (instance, round). *)
let jump ctx ~n ~propose st target =
  Sim.observe ctx (Joined target);
  let st =
    if target.instance > st.instance then
      {
        st with
        instance = target.instance;
        estimate = propose (Sim.self ctx) target.instance;
        ts = -1;
        coord = None;
      }
    else st
  in
  enter ctx ~n st ~round:target.round

(* Learn the decision of [instance] (>= ours) and start the next one. *)
let learn_decision ?obs ctx ~n ~propose st ~instance ~value =
  Sim.observe ctx (Decided { instance; value });
  emit_decide obs ctx ~instance ~value;
  let next = instance + 1 in
  let st =
    {
      st with
      instance = next;
      estimate = propose (Sim.self ctx) next;
      ts = -1;
      coord = None;
      prev_decision = Some (instance, value);
    }
  in
  enter ctx ~n st ~round:0

let process_with ?obs ~n ~style ~propose ~detector () =
  let maybe_propose ctx st co =
    (* Phase 2: with a majority of estimates and no proposal yet, propose
       the estimate with the newest timestamp (ties broken by lowest pid,
       deterministically). *)
    match co.co_proposal with
    | Some _ -> co
    | None ->
      if Pidmap.cardinal co.co_ests < majority n then co
      else begin
        (* Single ascending traversal; strict [>] keeps the winner the
           lowest-pid estimate among the newest timestamps, exactly the
           tie-break the two-pass (min_binding + fold) version computed. *)
        let best =
          Pidmap.fold
            (fun _ (est, ts) best ->
              match best with
              | Some (_, best_ts) when ts <= best_ts -> best
              | Some _ | None -> Some (est, ts))
            co.co_ests None
        in
        let best = match best with Some (est, _) -> est | None -> assert false in
        Sim.broadcast ctx
          (Cons (Propose { tag = { instance = st.instance; round = co.co_round }; value = best }));
        { co with co_proposal = Some best }
      end
  in
  let maybe_decide ctx st co =
    (* Phase 4: a majority of acks lets the coordinator broadcast the
       decision (receivers are idempotent, so repeats are harmless). *)
    match co.co_proposal with
    | Some v when Pidset.cardinal co.co_acks >= majority n ->
      Sim.broadcast ctx (Cons (Decide { instance = st.instance; value = v }))
    | Some _ | None -> ()
  in
  (* Handle one consensus message whose tag is current (or untagged). *)
  let rec handle ctx st ~src cm =
    match cm with
    | Decide { instance; value } ->
      if instance >= st.instance then
        drain ctx (learn_decision ?obs ctx ~n ~propose st ~instance ~value)
      else st
    | Est _ | Propose _ | Ack _ | Nack _ | Round _ ->
      let t = Option.get (tag_of_cmsg cm) in
      let st =
        if tag_gt t (current_tag st) then
          if style.round_agreement then jump ctx ~n ~propose st t
          else
            (* Classic CT: buffer for replay when we reach that round. *)
            { st with pending = (src, cm) :: List.filteri (fun i _ -> i < pending_cap - 1) st.pending }
        else st
      in
      if tag_gt t (current_tag st) then st (* buffered: nothing else to do *)
      else if t.instance <> st.instance then st
      else begin
        match cm with
        | Round _ | Nack _ -> st
        | Est { tag; estimate; ts } ->
          (* A coordinator whose record was lost to a systemic failure (or
             that is being addressed by retransmissions) reconstructs it. *)
          let st =
            if
              Pid.equal (coord_of ~n tag.round) (Sim.self ctx)
              && tag.round = st.round && st.coord = None
            then { st with coord = Some (fresh_record tag.round) }
            else st
          in
          (match st.coord with
          | Some co when co.co_round = tag.round ->
            let co = { co with co_ests = Pidmap.add src (estimate, ts) co.co_ests } in
            let co = maybe_propose ctx st co in
            { st with coord = Some co }
          | Some _ | None -> st)
        | Propose { tag; value } ->
          if tag.round = st.round then begin
            (* Phase 3 (ack): adopt the proposal, reply, move to the next
               round. *)
            Sim.send ctx (coord_of ~n tag.round) (Cons (Ack { tag }));
            let st = { st with estimate = value; ts = tag.round } in
            drain ctx (enter ctx ~n st ~round:(st.round + 1))
          end
          else st
        | Ack { tag } ->
          (match st.coord with
          | Some co when co.co_round = tag.round ->
            let co = { co with co_acks = Pidset.add src co.co_acks } in
            maybe_decide ctx st co;
            { st with coord = Some co }
          | Some _ | None -> st)
        | Decide _ -> assert false
      end
  (* Replay buffered messages that have become current; drop stale ones.
     Progress is guaranteed: each iteration removes one message. *)
  and drain ctx st =
    if style.round_agreement then st
    else begin
      let cur = current_tag st in
      let live =
        List.filter
          (fun (_, m) ->
            match tag_of_cmsg m with
            | Some t -> not (tag_gt cur t)
            | None -> false)
          st.pending
      in
      let matching, future =
        List.partition (fun (_, m) -> tag_of_cmsg m = Some cur) live
      in
      match matching with
      | [] -> { st with pending = future }
      | (src, m) :: rest ->
        let st = { st with pending = rest @ future } in
        drain ctx (handle ctx st ~src m)
    end
  in
  let traced = Option.is_some obs in
  let on_tick ctx st =
    let at = Sim.now ctx and self = Sim.self ctx in
    (* ◇W layer: either the scripted oracle or live heartbeats. *)
    let st, detect =
      match (detector, st.hb) with
      | Oracle oracle, _ ->
        (st, fun s -> Ewfd.detect oracle ~at ~observer:self ~subject:s)
      | Heartbeats _, Some hb ->
        Sim.broadcast ctx (Hb Heartbeat.Heartbeat);
        let hb = Heartbeat.tick hb ~self ~now:at in
        ({ st with hb = Some hb }, Heartbeat.suspected hb)
      | Heartbeats _, None -> (st, fun _ -> false)
    in
    (* Failure-detector maintenance (Figure 4). *)
    let fd_before = if traced then Esfd.suspects st.fd else Pidset.empty in
    let fd, fd_msg = Esfd.tick st.fd ~self ~detect in
    if traced then emit_suspect_diff obs ctx ~before:fd_before ~after:(Esfd.suspects fd);
    Sim.broadcast ctx (Fd fd_msg);
    let st = { st with fd } in
    (* Phase 3 (nack): give up on a suspected coordinator. *)
    let c = coord_of ~n st.round in
    let st =
      if (not (Pid.equal c self)) && Esfd.suspected st.fd c then begin
        Sim.send ctx c (Cons (Nack { tag = current_tag st }));
        drain ctx (enter ctx ~n st ~round:(st.round + 1))
      end
      else st
    in
    let st =
      if not style.retransmit then st
      else begin
        (* Re-send every message of the unfinished phase and reconstruct
           lost coordinator state. *)
        let st =
          if Pid.equal (coord_of ~n st.round) self && st.coord = None then
            { st with coord = Some (fresh_record st.round) }
          else st
        in
        Sim.send ctx (coord_of ~n st.round)
          (Cons (Est { tag = current_tag st; estimate = st.estimate; ts = st.ts }));
        (match st.coord with
        | Some co ->
          (match co.co_proposal with
          | Some v ->
            Sim.broadcast ctx
              (Cons (Propose { tag = { instance = st.instance; round = co.co_round }; value = v }))
          | None -> ());
          maybe_decide ctx st co
        | None -> ());
        (match st.prev_decision with
        | Some (i, v) -> Sim.broadcast ctx (Cons (Decide { instance = i; value = v }))
        | None -> ());
        st
      end
    in
    (* The round agreement heartbeat (the Figure 1 broadcast). *)
    if style.round_agreement then
      Sim.broadcast ctx (Cons (Round { tag = current_tag st }));
    st
  in
  {
    Sim.name =
      (match (style.retransmit, style.round_agreement) with
      | false, false -> "ct-consensus"
      | true, true -> "ss-ct-consensus"
      | true, false -> "ct-consensus+retransmit"
      | false, true -> "ct-consensus+round-agreement");
    init =
      (fun p ->
        {
          fd = Esfd.create ~n;
          hb =
            (match detector with
            | Oracle _ -> None
            | Heartbeats { initial_timeout; backoff } ->
              Some (Heartbeat.create ~n ~initial_timeout ~backoff));
          instance = 0;
          round = 0;
          estimate = propose p 0;
          ts = -1;
          coord = None;
          prev_decision = None;
          pending = [];
        });
    on_message =
      (fun ctx st ~src m ->
        match m with
        | Fd fm ->
          let fd = Esfd.receive st.fd fm in
          if traced then
            emit_suspect_diff obs ctx ~before:(Esfd.suspects st.fd)
              ~after:(Esfd.suspects fd);
          { st with fd }
        | Hb Heartbeat.Heartbeat ->
          (match st.hb with
          | Some hb -> { st with hb = Some (Heartbeat.heard hb ~src ~now:(Sim.now ctx)) }
          | None -> st)
        | Cons cm -> handle ctx st ~src cm);
    on_tick;
  }

let process ?obs ~n ~style ~propose ~oracle () =
  process_with ?obs ~n ~style ~propose ~detector:(Oracle oracle) ()

let corrupt_random rng ~n:_ ~instance_bound ~round_bound ~value_bound _pid st =
  {
    fd = Esfd.corrupt rng ~num_bound:1000 st.fd;
    hb =
      Option.map
        (fun hb -> Heartbeat.corrupt rng ~time_bound:10_000 ~timeout_bound:150 hb)
        st.hb;
    instance = Rng.int rng instance_bound;
    round = Rng.int rng round_bound;
    estimate = Rng.int rng value_bound;
    ts = (if Rng.chance rng 0.3 then Rng.int rng 1_000_000 else -1);
    coord = None;
    prev_decision =
      (if Rng.chance rng 0.3 then Some (Rng.int rng instance_bound, Rng.int rng value_bound)
       else None);
    pending = [];
  }

let corrupt_parked ~round _pid st = { st with instance = 0; round; coord = None; pending = [] }

type decision = { d_time : int; d_pid : Pid.t; d_instance : int; d_value : value }

let decisions (result : (state, observation) Sim.result) =
  List.filter_map
    (fun (time, pid, obs) ->
      match obs with
      | Decided { instance; value } ->
        Some { d_time = time; d_pid = pid; d_instance = instance; d_value = value }
      | Joined _ -> None)
    result.Sim.log

let per_instance ds ~correct =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      if Pidset.mem d.d_pid correct then
        Hashtbl.replace tbl d.d_instance
          (d :: Option.value ~default:[] (Hashtbl.find_opt tbl d.d_instance)))
    ds;
  Hashtbl.fold (fun i ds acc -> (i, List.rev ds) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let disagreements grouped =
  List.filter_map
    (fun (i, ds) ->
      match ds with
      | [] -> None
      | first :: rest ->
        if List.for_all (fun d -> d.d_value = first.d_value) rest then None else Some i)
    grouped

let invalid_instances grouped ~propose ~n =
  List.filter_map
    (fun (i, ds) ->
      let legal v = List.exists (fun p -> propose p i = v) (Pid.all n) in
      if List.for_all (fun d -> legal d.d_value) ds then None else Some i)
    grouped

let stabilization_time result ~correct ~propose ~n =
  let ds = decisions result in
  let grouped = per_instance ds ~correct in
  let bad_instances = disagreements grouped @ invalid_instances grouped ~propose ~n in
  let last_bad =
    List.fold_left
      (fun acc d -> if List.mem d.d_instance bad_instances then max acc d.d_time else acc)
      (-1) ds
  in
  let t = last_bad + 1 in
  (* A violation still occurring in the final tenth of the run is evidence
     the system had not stabilized within the horizon. *)
  if t > result.Sim.end_time * 9 / 10 then None else Some t

let fully_decided_after ds ~correct ~from =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      if Pidset.mem d.d_pid correct && d.d_time >= from then
        Hashtbl.replace tbl d.d_instance
          (Pidset.add d.d_pid
             (Option.value ~default:Pidset.empty (Hashtbl.find_opt tbl d.d_instance))))
    ds;
  Hashtbl.fold
    (fun _ pids acc -> if Pidset.equal pids correct then acc + 1 else acc)
    tbl 0
