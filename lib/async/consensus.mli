(** Repeated asynchronous Consensus relative to a failure detector —
    the paper's §3 protocol, derived from Chandra-Toueg [CT91], in two
    styles:

    - [Baseline]: the classic ◇S rotating-coordinator protocol. Four
      phases per round: everyone sends its (estimate, timestamp) to the
      round's coordinator; the coordinator proposes the estimate with the
      newest timestamp once it holds a majority; processes ack (adopting
      the proposal) or, when the detector suspects the coordinator, nack
      and move on; a majority of acks lets the coordinator broadcast the
      decision. Correct from the protocol-specified initial state, but a
      systemic failure can park every process waiting for messages that
      were never sent — a deadlock (the situation [KP90] identified).

    - [Self_stabilizing]: the same machine with the paper's two
      superimpositions. (1) Until a process completes a phase it
      {e periodically re-sends} every message of that phase, so waiting
      predicates are always eventually satisfied regardless of the initial
      state. (2) A {e round agreement} protocol runs on the
      (instance, round) tag carried by every message: a process receiving
      a tag greater than its own abandons its current phase and joins the
      first phase of the newer round; periodic ROUND heartbeats disseminate
      tags so laggards always catch up.

    Consensus repeats forever (instance 0, 1, 2, ...): terminating
    protocols cannot self-stabilize, so, exactly as in §2, the deliverable
    is repeated consensus, with per-instance agreement/validity checked by
    {!decisions}-based reports. Decisions of one instance are disseminated
    (and, in the self-stabilizing style, re-disseminated every tick) so
    every correct process eventually completes every post-stabilization
    instance.

    Crash failures require a correct majority: f < n/2. *)

open Ftss_util

type value = int

type style = {
  retransmit : bool;
      (** re-send the unfinished phase's messages every tick, reconstruct
          lost coordinator state, re-disseminate decisions *)
  round_agreement : bool;
      (** jump to any newer (instance, round) tag seen, and broadcast
          ROUND heartbeats every tick. When off, future-tagged messages
          are buffered and replayed on round entry — the classic CT91
          mechanism. *)
}

(** The classic protocol: no retransmission, no round agreement
    (buffering only). *)
val baseline : style

(** The paper's §3 protocol: both superimpositions. *)
val self_stabilizing : style

(** Ablations: exactly one superimposition each. *)
val retransmit_only : style

val round_agreement_only : style

type tag = { instance : int; round : int }

type state
type msg

(** Forged messages, for injecting channel corruption via
    {!Sim.run}'s [spurious] argument (a systemic failure can leave junk
    in the channels, not just in process memories). *)

val forged_round : tag -> msg
val forged_decide : instance:int -> value:value -> msg

(** Where the embedded Figure 4 transform gets its ◇W input from. *)
type detector_source =
  | Oracle of Ewfd.t  (** the scripted oracle, as the paper assumes *)
  | Heartbeats of { initial_timeout : int; backoff : int }
      (** the {!Heartbeat} implementation — no oracle anywhere: the whole
          §3 protocol then runs on partial synchrony alone *)

type observation =
  | Decided of { instance : int; value : value }
  | Joined of tag  (** process adopted a newer (instance, round) tag *)

(** [process ?obs ~n ~style ~propose ~oracle ()] builds the Sim process.
    [propose p i] is process [p]'s proposal for instance [i]. The embedded
    failure detector is the Figure 4 ◇S transform over [oracle]. When
    [obs] is given, every decision emits a [Decide] event and every
    change of the embedded ◇S suspect set emits
    [Suspect_add]/[Suspect_remove] events. *)
val process :
  ?obs:Ftss_obs.Obs.t ->
  n:int ->
  style:style ->
  propose:(Pid.t -> int -> value) ->
  oracle:Ewfd.t ->
  unit ->
  (state, msg, observation) Sim.process

(** [process_with ?obs ~n ~style ~propose ~detector ()] generalizes
    {!process} to either detector source. *)
val process_with :
  ?obs:Ftss_obs.Obs.t ->
  n:int ->
  style:style ->
  propose:(Pid.t -> int -> value) ->
  detector:detector_source ->
  unit ->
  (state, msg, observation) Sim.process

(** {2 Systemic failures} *)

(** [corrupt_random rng ~n ~instance_bound ~round_bound ~value_bound]
    draws an arbitrary state: random (instance, round) position, random
    estimate and timestamp (including timestamps far in the future, the
    adversarial case for estimate locking), random detector arrays, and a
    randomly forged previous-decision record. *)
val corrupt_random :
  Rng.t ->
  n:int ->
  instance_bound:int ->
  round_bound:int ->
  value_bound:int ->
  Pid.t ->
  state ->
  state

(** [corrupt_parked ~round p st] plants every process mid-round [round] of
    instance 0, believing its phase-1 message was already sent. Under
    [Baseline] this deadlocks the whole system whenever the coordinator of
    [round] is never suspected; under [Self_stabilizing] retransmission
    dissolves it. *)
val corrupt_parked : round:int -> Pid.t -> state -> state

(** {2 Reports} *)

type decision = { d_time : int; d_pid : Pid.t; d_instance : int; d_value : value }

(** All decisions logged in a run, oldest first. *)
val decisions : (state, observation) Sim.result -> decision list

(** [per_instance ds ~correct] groups the correct processes' decisions by
    instance, sorted by instance. *)
val per_instance : decision list -> correct:Pidset.t -> (int * decision list) list

(** Instances on which two correct processes decided different values. *)
val disagreements : (int * decision list) list -> int list

(** Instances whose decided value is nobody's proposal for that instance
    (possible only while corrupted state is still being flushed out). *)
val invalid_instances :
  (int * decision list) list -> propose:(Pid.t -> int -> value) -> n:int -> int list

(** [stabilization_time result ~correct ~propose ~n] is the time of the
    last decision that violated agreement or validity, plus one — i.e.,
    the measured moment from which the protocol's visible behaviour is
    indistinguishable from a correctly-initialized run. [Some 0] when no
    violation ever occurred. *)
val stabilization_time :
  (state, observation) Sim.result ->
  correct:Pidset.t ->
  propose:(Pid.t -> int -> value) ->
  n:int ->
  int option

(** [fully_decided_after ds ~correct ~from] counts instances for which
    every correct process decided at a time >= [from] — the
    useful-work/progress metric. *)
val fully_decided_after : decision list -> correct:Pidset.t -> from:int -> int
