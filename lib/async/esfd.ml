open Ftss_util

type status = Dead | Alive

type t = { nums : int array; statuses : status array }

type entry = { subject : Pid.t; num : int; status : status }
type msg = entry list

let create ~n = { nums = Array.make n 0; statuses = Array.make n Alive }

let corrupt rng ~num_bound t =
  {
    nums = Array.map (fun _ -> Rng.int rng num_bound) t.nums;
    statuses = Array.map (fun _ -> if Rng.bool rng then Dead else Alive) t.statuses;
  }

let tick t ~self ~detect =
  let n = Array.length t.nums in
  (* One copy of each table per tick — not one per bumped subject, which
     made a tick O(n) allocations on the simulator's hottest path. *)
  let nums = Array.copy t.nums and statuses = Array.copy t.statuses in
  for s = 0 to n - 1 do
    if Pid.equal s self then begin
      nums.(s) <- nums.(s) + 1;
      statuses.(s) <- Alive
    end
    else if detect s then begin
      nums.(s) <- nums.(s) + 1;
      statuses.(s) <- Dead
    end
  done;
  let message =
    List.map (fun s -> { subject = s; num = nums.(s); status = statuses.(s) }) (Pid.all n)
  in
  ({ nums; statuses }, message)

let receive t message =
  let nums = Array.copy t.nums and statuses = Array.copy t.statuses in
  List.iter
    (fun e ->
      if e.num > nums.(e.subject) then begin
        nums.(e.subject) <- e.num;
        statuses.(e.subject) <- e.status
      end)
    message;
  { nums; statuses }

let suspected t s = t.statuses.(s) = Dead

let suspects t =
  Pidset.of_pred (Array.length t.statuses) (fun s -> suspected t s)

type observation = Suspects of Pidset.t

let process ?obs ~n ~oracle () =
  ignore n;
  let suspect_diff ~time ~observer ~before ~after =
    match obs with
    | None -> ()
    | Some o -> Ftss_obs.Obs.suspect_diff o ~time ~observer ~before ~after
  in
  {
    Sim.name = "esfd";
    init = (fun _ -> create ~n);
    on_tick =
      (fun ctx t ->
        let at = Sim.now ctx and self = Sim.self ctx in
        let before = suspects t in
        let detect s = Ewfd.detect oracle ~at ~observer:self ~subject:s in
        let t, message = tick t ~self ~detect in
        Sim.broadcast ctx message;
        Sim.observe ctx (Suspects (suspects t));
        suspect_diff ~time:at ~observer:self ~before ~after:(suspects t);
        t);
    on_message =
      (fun ctx t ~src:_ message ->
        let before = suspects t in
        let t = receive t message in
        let after = suspects t in
        if not (Pidset.equal before after) then begin
          Sim.observe ctx (Suspects after);
          suspect_diff ~time:(Sim.now ctx) ~observer:(Sim.self ctx) ~before ~after
        end;
        t);
  }

type report = {
  convergence_time : int option;
  completeness_from : int option;
  accuracy_from : int option;
}

let analyze (result : (t, observation) Sim.result) ~config ~trusted =
  let crashed = Sim.crashed_set config in
  let correct = Sim.correct_set config in
  (* Per correct process: the time after its last completeness violation
     (suspect set not covering the crashed set) and after its last
     accuracy violation (trusted suspected), judged over the log. *)
  let last_completeness_violation = Hashtbl.create 8 in
  let last_accuracy_violation = ref (-1) in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (time, pid, Suspects set) ->
      if Pidset.mem pid correct then begin
        Hashtbl.replace seen pid ();
        if not (Pidset.subset crashed set) then
          Hashtbl.replace last_completeness_violation pid time;
        if Pidset.mem trusted set then last_accuracy_violation := max !last_accuracy_violation time
      end)
    result.Sim.log;
  let all_correct_observed =
    Pidset.for_all (fun p -> Hashtbl.mem seen p) correct
  in
  if not all_correct_observed then
    { convergence_time = None; completeness_from = None; accuracy_from = None }
  else begin
    (* A violation at the very end of the run means no convergence was
       observed within the horizon. *)
    let final_ok_margin = result.Sim.end_time in
    let completeness_from =
      let worst =
        Pidset.fold
          (fun p acc ->
            max acc (match Hashtbl.find_opt last_completeness_violation p with Some t -> t + 1 | None -> 0))
          correct 0
      in
      if worst >= final_ok_margin then None else Some worst
    in
    let accuracy_from =
      let t = !last_accuracy_violation + 1 in
      if t >= final_ok_margin then None else Some t
    in
    let convergence_time =
      match (completeness_from, accuracy_from) with
      | Some a, Some b -> Some (max a b)
      | None, _ | _, None -> None
    in
    { convergence_time; completeness_from; accuracy_from }
  end
