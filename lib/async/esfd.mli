(** The Eventually Strong failure detector of Figure 4 — the paper's
    initialization-free ◇W → ◇S transform (Theorem 5).

    For every subject s, each process keeps a counter [num[s]] and a
    status [state[s]] ("dead"/"alive"):

    - when the underlying ◇W detector flags s: [num[s]+1, dead];
    - when the process {e is} s: [num[s]+1, alive];
    - continually: broadcast [(s, num[s], state[s])];
    - on delivery of [(s, n, st)] with [n > num[s]]: adopt [(n, st)].

    The protocol needs no initialization: whatever junk a systemic failure
    leaves in the counters is washed out because the merge rule lifts
    everyone to the maximum and live subjects / detecting observers keep
    incrementing past it. This module is the pure state machine; the
    {!process} function packages it as a {!Sim.process} together with a
    ◇W oracle, and {!analyze} checks Theorem 5's two properties on the
    observation log. *)

open Ftss_util

type status = Dead | Alive

type t
(** One process's detector state (num / state arrays). *)

type entry = { subject : Pid.t; num : int; status : status }

type msg = entry list
(** One broadcast: the process's full (subject, num, state) table. The
    paper sends one message per subject; batching them into a single
    network message is delivery-equivalent and keeps event counts low. *)

(** [create ~n] is the "good" initial state: all alive at num 0. *)
val create : n:int -> t

(** [corrupt rng ~num_bound t] draws arbitrary counters in [0, num_bound)
    and arbitrary statuses — the systemic failure. *)
val corrupt : Rng.t -> num_bound:int -> t -> t

(** [tick t ~self ~detect] performs the spontaneous actions of Figure 4
    for one timer firing: increments for the process itself and for every
    subject flagged by [detect], then returns the new state and the
    message to broadcast. *)
val tick : t -> self:Pid.t -> detect:(Pid.t -> bool) -> t * msg

(** [receive t msg] applies the merge rule to every entry. *)
val receive : t -> msg -> t

(** [suspected t s] is true iff [state[s] = Dead]. *)
val suspected : t -> Pid.t -> bool

(** The set of suspected processes. *)
val suspects : t -> Pidset.t

(** {2 Running it over the network} *)

type observation = Suspects of Pidset.t
(** Logged whenever a process's suspect set changes. *)

(** [process ?obs ~n ~oracle ()] is the Sim process: on every tick it
    queries the ◇W oracle, performs {!tick} and broadcasts; on every
    message it merges. Changes to the suspect set are observed, and —
    when [obs] is given — also emitted as [Suspect_add]/[Suspect_remove]
    events via {!Ftss_obs.Obs.suspect_diff}. *)
val process :
  ?obs:Ftss_obs.Obs.t -> n:int -> oracle:Ewfd.t -> unit -> (t, msg, observation) Sim.process

type report = {
  convergence_time : int option;
      (** earliest time from which both ◇S properties hold through the end
          of the run, if any *)
  completeness_from : int option;
      (** earliest time from which every correct process permanently
          suspects every crashed process *)
  accuracy_from : int option;
      (** earliest time from which no correct process ever suspects the
          trusted process *)
}

(** [analyze result ~config ~trusted] evaluates Theorem 5 on a run:
    strong completeness (eventually {e every} correct process suspects
    every crashed process, permanently) and eventual weak accuracy (the
    trusted process is eventually never suspected by any correct
    process). *)
val analyze :
  (t, observation) Sim.result -> config:Sim.config -> trusted:Pid.t -> report
