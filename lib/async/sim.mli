(** Deterministic discrete-event simulation of an asynchronous
    message-passing system with crash failures and partial synchrony.

    Asynchrony is modelled GST-style (Dwork-Lynch-Stockmeyer / the
    standard way "eventually" is realised for ◇-failure-detectors): before
    a global stabilization time [gst] message delays are drawn from a wide
    adversarial range, after it from a narrow one; process steps are
    driven by periodic local ticks. Every random choice comes from the
    seeded generator in the config, so runs are replayable.

    Systemic failures are modelled exactly as in the synchronous
    substrate: an optional corruption function rewrites each process's
    protocol-specified initial state; [spurious] additionally plants
    adversarial messages in the channels (the KP90 concern that the
    initial state "falsely indicates that every process has sent a
    message"). *)

open Ftss_util

type time = int

(** What a step may do, accumulated through the context handle. *)
type ('m, 'o) ctx

(** [send ctx dst msg] enqueues a point-to-point message. *)
val send : ('m, 'o) ctx -> Pid.t -> 'm -> unit

(** [broadcast ctx msg] sends to every process, the sender included
    (delivered through the network like any other message). *)
val broadcast : ('m, 'o) ctx -> 'm -> unit

(** [observe ctx o] appends an observation to the run's log — the
    mechanism by which protocols expose decisions, suspicions, etc. to
    the checkers without the engine snapshotting whole states. *)
val observe : ('m, 'o) ctx -> 'o -> unit

(** Current simulated time. *)
val now : ('m, 'o) ctx -> time

(** The stepping process's own pid. *)
val self : ('m, 'o) ctx -> Pid.t

type ('s, 'm, 'o) process = {
  name : string;
  init : Pid.t -> 's;
  on_message : ('m, 'o) ctx -> 's -> src:Pid.t -> 'm -> 's;
  on_tick : ('m, 'o) ctx -> 's -> 's;
}

type config = {
  n : int;
  seed : int;
  gst : time;  (** global stabilization time *)
  delay_before_gst : int * int;  (** inclusive delay range before GST *)
  delay_after_gst : int * int;  (** inclusive delay range after GST *)
  tick_interval : int;  (** period of local timers; >= 1 *)
  crashes : (Pid.t * time) list;  (** pid stops processing at that time *)
  horizon : time;  (** simulation end time *)
}

val max_n : int
(** Largest supported system size: 4096. Event descriptors pack the
    source and destination pids into 12-bit fields of an int tag, so the
    engine stays allocation-free per event at any accepted [n]. *)

val default_config : n:int -> seed:int -> config
(** 5 processes' worth of sane defaults: [gst = 500],
    [delay_before_gst = (1, 120)], [delay_after_gst = (1, 8)],
    [tick_interval = 10], no crashes, [horizon = 5000] (n and seed as
    given). *)

type ('s, 'o) result = {
  final_states : 's option array;  (** [None] = crashed *)
  log : (time * Pid.t * 'o) list;  (** observations, oldest first *)
  delivered : int;  (** messages delivered *)
  dropped_after_crash : int;  (** messages addressed to crashed processes *)
  dropped_by_adversary : int;  (** messages suppressed by the [?drop] matrix *)
  end_time : time;
}

(** [run ?obs ?corrupt ?drop ?spurious config process] executes until the
    horizon (or until the event queue drains). [spurious
    (time, src, dst, msg)] events are injected into the channels at
    start-up. [drop], when given, is an omission adversary consulted at
    send time: a message from [src] to [dst] sent at [time] is silently
    suppressed when the predicate holds. Self-messages are exempt (the
    synchronous substrate's rule), and a suppressed message draws no
    delay from the generator — the delivery schedule of the surviving
    messages is therefore a function of the drop {e pattern} only, keeping
    runs replayable under any deterministic matrix. When [obs] is given,
    the engine emits the run's event stream: [Corrupt] per process at
    time 0 when [corrupt] is present, one point [Send] per enqueued
    message at its send time, [Deliver] at its delivery time, [Drop]
    (blaming the receiver) for messages addressed to a crashed process and
    [Drop] with no blame for adversary suppressions, and [Crash] once per
    crashed process, timestamped with its crash time. With [obs] absent
    the instrumentation allocates nothing.

    [corrupt_at] extends the corruption model beyond time 0: each
    [(time, pid, f)] entry rewrites [pid]'s state to [f state] at that
    simulated time — a mid-run transient fault (a "corruption storm" is a
    batch of such entries). The victim takes no step at the fault itself;
    it runs on the scrambled state from its next delivery or tick. A
    [Corrupt] event is emitted at the fault time when traced. Entries for
    already-crashed processes are ignored. Raises [Invalid_argument] on
    non-positive [tick_interval] or [horizon], an [n] outside
    [1..max_n], a
    [corrupt_at] time < 1, or a [corrupt_at] pid outside the system.

    [pool], when given, supplies a reusable event-queue arena: the run
    clears and reuses its buckets and node slots instead of allocating a
    fresh queue, so a driver executing many simulations back to back
    (the repeated-consensus benchmarks, the service tower) pays the
    queue's allocation once. A pool must not be shared between
    concurrently running simulations. *)

(** A reusable event-queue arena for {!run}'s [?pool] argument. *)
type pool

(** [pool ?initial_capacity ()] allocates an arena sized for the
    expected standing event population (it grows on demand). *)
val pool : ?initial_capacity:int -> unit -> pool

val run :
  ?obs:Ftss_obs.Obs.t ->
  ?profile:Ftss_profile.Profile.lane ->
  ?corrupt:(Pid.t -> 's -> 's) ->
  ?corrupt_at:(time * Pid.t * ('s -> 's)) list ->
  ?drop:(time:time -> src:Pid.t -> dst:Pid.t -> bool) ->
  ?spurious:(time * Pid.t * Pid.t * 'm) list ->
  ?pool:pool ->
  config ->
  ('s, 'm, 'o) process ->
  ('s, 'o) result
(** [?profile] attributes the event loop to the span profiler's
    [sim_pop] / [sim_deliver] / [sim_dispatch] phases on the given lane,
    chaining clock reads so the armed cost is ~2 reads per event;
    handler-internal spans (the service tower's [svc_*] phases) nest
    inside the handler frame and are subtracted from its self-time.
    Unset, the loop runs exactly as before up to one option test per
    event — the same zero-cost discipline as [?obs]. *)

(** [run_shards ?domains shards] executes the independent sub-simulation
    thunks in [shards] and returns their results in shard order. With
    [domains > 1] the shards are claimed by that many domains using
    chunked atomic work-stealing; every shard owns its rng, queue and
    states, so the result array is bit-identical whatever the domain
    count — the merge rule the sharded service driver and the golden
    digest tests rely on. [domains] is clamped to [1 .. length shards].

    [?profile] records each domain's chunk lifecycle ([chunk_claim] /
    [chunk_execute]) on a per-domain lane ([shards.d<i>]); shard thunks
    wanting finer attribution carry their own lanes (the sharded service
    driver passes one per shard). *)
val run_shards :
  ?domains:int -> ?profile:Ftss_profile.Profile.t -> (unit -> 'a) array -> 'a array

(** [crashed_set config] is the set of processes that crash within the
    horizon — the faulty set of an asynchronous run. *)
val crashed_set : config -> Pidset.t

(** [correct_set config] is its complement. *)
val correct_set : config -> Pidset.t
