(** A deterministic priority queue of timed events.

    Events are ordered by (time, insertion sequence): ties in time resolve
    in insertion order, which makes every simulation replayable from its
    seed alone.

    The implementation is a bucketed calendar queue over an intrusive
    node arena: a power-of-two ring of width-one time buckets holding
    FIFO lists of preallocated nodes, an insertion-ordered overflow list
    for events beyond the current window (promoted in bulk on epoch
    rollover), and a freelist that recycles node slots — push and pop
    are O(1) amortized and allocate nothing on the OCaml heap in steady
    state. The original binary heap survives as {!Reference}, the model
    the differential tests pin this structure to. *)

type 'e t

(** [create ?initial_capacity ()] makes an empty queue.
    [initial_capacity] (default 256) sizes the node arena and the bucket
    ring for the expected standing population; both grow on demand and
    never shrink. *)
val create : ?initial_capacity:int -> unit -> 'e t

(** [clear t] empties the queue, retaining its arena and buckets, so a
    long-lived driver can reuse one allocation across runs. Payload
    slots are released (no space leak). *)
val clear : 'e t -> unit

val is_empty : 'e t -> bool
val size : 'e t -> int

(** [push t ~time e] schedules [e]. Raises [Invalid_argument] on negative
    time. *)
val push : 'e t -> time:int -> 'e -> unit

(** [push_tagged t ~time ~tag e] additionally stores an arbitrary [int]
    tag alongside the payload, read back through {!out_tag} — the
    allocation-free channel the simulator packs event kind and pids
    into. [push] is [push_tagged] with tag 0. *)
val push_tagged : 'e t -> time:int -> tag:int -> 'e -> unit

(** [pop t] removes and returns the earliest event, [(time, e)]. *)
val pop : 'e t -> (int * 'e) option

(** [pop_step t] removes the earliest event without allocating: it
    returns [false] on an empty queue, otherwise [true] with the event
    readable through {!out_time}, {!out_tag} and {!out_payload} until
    the next queue operation. *)
val pop_step : 'e t -> bool

val out_time : 'e t -> int
val out_tag : 'e t -> int
val out_payload : 'e t -> 'e

(** [peek_time t] is the time of the earliest event without removing it. *)
val peek_time : 'e t -> int option

(** The seed binary-heap implementation (boxed entries, O(log n) sift
    per operation), kept as the reference model for differential tests
    and as the "before" side of the E16 queue benchmark. *)
module Reference : sig
  type 'e t

  val create : unit -> 'e t
  val is_empty : 'e t -> bool
  val size : 'e t -> int
  val push : 'e t -> time:int -> 'e -> unit
  val pop : 'e t -> (int * 'e) option
  val peek_time : 'e t -> int option
end
