(** Flight-recorder snapshots.

    On alarm, {!snapshot} writes the monitor's event ring to
    [<prefix>.jsonl] (one event per line, the trace format [ftss
    explain] loads) and the happened-before cone of the
    alarm-triggering event to [<prefix>.dot] (Graphviz, target
    highlighted). Indexing happens on demand — the always-on cost is
    only the preallocated ring push. *)

type snapshot = {
  jsonl_path : string;
  dot_path : string;
  events : int;  (** ring events written *)
  cone : int;  (** causal-cone size; [0] when the target was evicted *)
  target_found : bool;
}

val snapshot : Monitor.t -> Monitor.alarm -> prefix:string -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
