(** Streaming runtime verification for the service tower.

    A {!t} is a bundle of incremental monitors attached to an
    observability hub through {!Ftss_obs.Obs.add_subscriber}. Each
    monitor maintains O(1)-per-event state and turns the paper's
    after-the-fact measurements into online SLOs:

    - {b stab} — the fault-quiescence window tracker. Every environment
      fault (crash, corruption, omission) refreshes [last_fault]; every
      [Recover] at distance [d] from it is disorder evidence, so the
      running maximum of [d] is the online analogue of Definition 2.4's
      stabilization time. Alarms once per fault epoch when [d] exceeds
      the budget.
    - {b heal} — the TOB divergence watchdog. A [Corrupt] opens a
      per-replica episode closed by that replica's next [Apply]; the
      gap feeds a log-bucketed histogram, and the watchdog alarms both
      on late heals and (lazily, against event time) on replicas still
      unhealed past the budget. A [Crash] closes the episode without
      alarm — dead replicas never apply.
    - {b latency_p99} — streaming commit-latency quantiles. [Submit]
      opens a per-proposer stopwatch closed by its next [Commit];
      samples land in a {!Ftss_obs.Metrics.lhist}, whose p99 is checked
      against the budget every few hundred samples and at {!finalize}.
    - {b drop_rate} — per-link omission EWMAs over [Deliver]/[Drop]
      outcomes, alarming once per link over budget.
    - {b churn} — a time-decayed suspicion-churn rate (events/tick)
      over [Suspect_add]/[Suspect_remove].

    Every monitor tracks unconditionally — [ftss watch] renders the
    same state with no budgets armed; budgets only arm alarms. The
    bundle also keeps a preallocated flight-recorder ring of the most
    recent events; {!Recorder.snapshot} dumps it with the causal cone
    of the alarm-triggering event. *)

open Ftss_obs

(** Per-monitor SLO budgets; [None] leaves that monitor tracking but
    never alarming. *)
type budgets = {
  stab : int option;
  heal : int option;
  p99 : float option;
  drop_rate : float option;
  churn : float option;
}

val no_budgets : budgets

(** Parse a [--slo] spec: comma-separated [key=value] with keys [stab],
    [heal] (ticks, int), [p99] (ticks), [drop] (rate in [0,1]), [churn]
    (events/tick). Example: ["heal=120,stab=400,p99=800"]. *)
val budgets_of_string : string -> (budgets, string) result

type alarm = {
  monitor : string;  (** [stab], [heal], [latency_p99], [drop_rate] or [churn] *)
  time : int;
  detail : string;
  event : Event.t;  (** the triggering event, physically present in the ring *)
}

type t

(** [create ~n budgets] — [n] is the universe size (per-replica and
    per-link state is preallocated); [ring_capacity] bounds the flight
    recorder (default 8192 events — sized to keep the ring L2-resident;
    larger rings trade throughput for history). *)
val create : ?ring_capacity:int -> n:int -> budgets -> t

(** The subscriber closure, exposed for direct driving in tests;
    normally registered via {!attach}. *)
val subscriber : t -> Event.t -> unit

val attach : t -> Obs.t -> unit

(** End-of-run sweep at the final simulation time: flags replicas still
    unhealed past the heal budget and runs the last latency-quantile
    check. Call once, after the run completes. *)
val finalize : t -> end_time:int -> unit

val budgets : t -> budgets

(** Alarms in firing order (capped at the first 64; {!alarm_count} is
    exact). *)
val alarms : t -> alarm list

val alarm_count : t -> int

(** Running online stabilization-time maximum (0 before any repair). *)
val measured_d : t -> int

(** Worst corruption-to-apply gap observed (0 before any heal). *)
val worst_heal : t -> int

(** Streaming commit-latency histogram (submit to commit, ticks). *)
val latency : t -> Metrics.lhist

(** Heal-time histogram (corruption to next apply, ticks). *)
val heal_times : t -> Metrics.lhist

(** Flight-recorder contents, oldest first. *)
val ring_events : t -> Event.t list

val ring_seen : t -> int

(** [set_on_alarm t f] runs [f] synchronously on every alarm — the hook
    the CLI uses to write a flight-recorder snapshot on first fire.
    [f] must not emit into the hub. *)
val set_on_alarm : t -> (t -> alarm -> unit) -> unit

(** [set_interval t ~every f] fires [f] when event time first crosses
    each multiple of [every] ticks — drives the live dashboard and
    periodic OpenMetrics export. Raises [Invalid_argument] when
    [every < 1]. *)
val set_interval : t -> every:int -> (t -> time:int -> unit) -> unit

type status = { name : string; armed : bool; value : string; firing : int }

val statuses : t -> status list
val pp_alarm : Format.formatter -> alarm -> unit

(** One dashboard frame. Stateful: the instantaneous-throughput window
    resets on each call, so successive frames report ops committed
    since the previous frame. *)
val pp_dashboard : Format.formatter -> t -> unit

val dashboard_string : t -> string

(** The monitor statuses as a JSON list (name, armed, value, firing). *)
val statuses_json : t -> Ftss_obs.Json.t

(** One machine-readable dashboard frame: the same quantities as
    {!pp_dashboard}, including its stateful instantaneous-throughput
    window (each frame reports ops committed since the previous frame)
    — what [ftss watch --json] emits, one object per frame. *)
val dashboard_json : t -> Ftss_obs.Json.t

(** OpenMetrics text exposition of every tracked quantity, terminated
    by [# EOF]. *)
val openmetrics : t -> string

val write_openmetrics : t -> string -> unit
