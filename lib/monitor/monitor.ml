module Event = Ftss_obs.Event
module Metrics = Ftss_obs.Metrics
module Obs = Ftss_obs.Obs

(* Streaming runtime verification: a set of incremental monitors that
   subscribe to the Obs hub and maintain O(1)-per-event state, turning
   the paper's after-the-fact measurements (stabilization time d,
   heal time, omission rates) into online SLOs with alarms.

   Every monitor tracks its quantity unconditionally (the watch
   dashboard reads them); a monitor *alarms* only when its budget is
   set. Alarm storms are damped structurally: the heal watchdog fires
   once per replica per corruption episode, the latency and churn
   monitors once per run, the omission monitor once per link, and the
   stabilization monitor once per fault epoch. *)

type budgets = {
  stab : int option;
      (* Definition 2.4 as an SLO: max ticks between the last fault event
         and the last repair episode it causes *)
  heal : int option; (* max ticks a corrupted replica may go without applying *)
  p99 : float option; (* commit-latency p99 budget, ticks *)
  drop_rate : float option; (* per-link omission EWMA threshold, 0..1 *)
  churn : float option; (* suspicion-churn EWMA threshold, events/tick *)
}

let no_budgets = { stab = None; heal = None; p99 = None; drop_rate = None; churn = None }

(* "key=value,key=value"; keys: stab, heal, p99, drop, churn. *)
let budgets_of_string s =
  let parse_field acc field =
    match acc with
    | Error _ as e -> e
    | Ok b -> (
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "budget %S: expected key=value" field)
      | Some i -> (
        let key = String.sub field 0 i in
        let value = String.sub field (i + 1) (String.length field - i - 1) in
        let int_v k =
          match int_of_string_opt value with
          | Some v when v >= 0 -> Ok v
          | _ -> Error (Printf.sprintf "budget %s=%S: expected a non-negative integer" k value)
        in
        let float_v k =
          match float_of_string_opt value with
          | Some v when v >= 0. -> Ok v
          | _ -> Error (Printf.sprintf "budget %s=%S: expected a non-negative number" k value)
        in
        match key with
        | "stab" -> Result.map (fun v -> { b with stab = Some v }) (int_v key)
        | "heal" -> Result.map (fun v -> { b with heal = Some v }) (int_v key)
        | "p99" -> Result.map (fun v -> { b with p99 = Some v }) (float_v key)
        | "drop" -> Result.map (fun v -> { b with drop_rate = Some v }) (float_v key)
        | "churn" -> Result.map (fun v -> { b with churn = Some v }) (float_v key)
        | _ ->
          Error
            (Printf.sprintf "budget key %S: expected stab, heal, p99, drop or churn" key)))
  in
  let fields = String.split_on_char ',' (String.trim s) in
  let fields = List.filter (fun f -> String.trim f <> "") (List.map String.trim fields) in
  if fields = [] then Error "empty budget spec"
  else List.fold_left parse_field (Ok no_budgets) fields

type alarm = { monitor : string; time : int; detail : string; event : Event.t }

(* Omission EWMA weight per delivery outcome, and the suspicion-churn
   rate estimator's time constant in ticks. *)
let drop_alpha = 0.02
let churn_tau = 100.
let p99_check_every = 256
let max_kept_alarms = 64

type t = {
  n : int;
  budgets : budgets;
  (* flight-recorder ring: events stored UNBOXED in a flat int array
     (stride 4: time and constructor tag packed in one word, 3 payload
     ints), decoded only on snapshot. A boxed [Event.t array] ring
     promotes every retained event out of the minor heap and pays a
     write barrier per push — measured at >10% of tower throughput; the
     flat encoding is plain immediate stores. Stamps are not retained
     (the full stamped trace is already on disk when tracing is
     armed). *)
  ring_data : int array;
  ring_cap : int;
  mutable ring_pos : int; (* next slot index *)
  mutable ring_pushed : int;
  (* fault-quiescence window tracker (stab) *)
  mutable last_fault : int; (* -1 = no fault seen *)
  mutable measured_d : int;
  mutable stab_alarm_epoch : int; (* last_fault value already alarmed for *)
  (* TOB divergence / heal-time watchdog (heal) *)
  corrupt_at : int array; (* per pid; -1 = clean *)
  heal_alarmed : bool array;
  mutable dirty : int;
  mutable earliest_dirty : int; (* min corrupt_at over dirty, unalarmed pids *)
  heal_hist : Metrics.lhist;
  mutable worst_heal : int;
  (* streaming commit-latency quantiles (p99) *)
  out_since : int array; (* per pid; -1 = nothing outstanding *)
  lat : Metrics.lhist;
  mutable lat_since_check : int;
  mutable p99_alarmed : bool;
  (* per-link omission-rate EWMA (drop) *)
  drop_ewma : float array; (* src * n + dst *)
  link_alarmed : bool array;
  mutable worst_drop : float;
  mutable worst_drop_link : int;
  (* suspicion-churn EWMA (churn) *)
  mutable churn_ewma : float; (* events per tick *)
  mutable churn_last : int;
  mutable churn_alarmed : bool;
  (* dashboard census *)
  mutable now : int;
  mutable ops_submitted : int;
  mutable ops_committed : int;
  mutable slots : int;
  mutable recoveries : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable crashes : int;
  mutable corruptions : int;
  mutable suspect_adds : int;
  mutable suspect_removes : int;
  (* instantaneous-throughput window, reset by each dashboard render *)
  mutable win_ops : int;
  mutable win_start : int;
  (* alarms *)
  mutable alarms_rev : alarm list;
  mutable alarm_count : int;
  mutable on_alarm : t -> alarm -> unit;
  (* periodic hook (dashboard refresh, OpenMetrics export) *)
  mutable every : int; (* 0 = no interval hook *)
  mutable next_fire : int;
  mutable on_interval : t -> time:int -> unit;
}

let ring_stride = 4

(* Default sized to stay L2-resident (8192 * 6 ints = 384KB): a ring
   that cycles through megabytes of cache costs a miss per push. *)
let create ?(ring_capacity = 8_192) ~n budgets =
  if ring_capacity < 1 then invalid_arg "Monitor.create: ring_capacity < 1";
  {
    n;
    budgets;
    ring_data = Array.make (ring_capacity * ring_stride) 0;
    ring_cap = ring_capacity;
    ring_pos = 0;
    ring_pushed = 0;
    last_fault = -1;
    measured_d = 0;
    stab_alarm_epoch = -1;
    corrupt_at = Array.make n (-1);
    heal_alarmed = Array.make n false;
    dirty = 0;
    earliest_dirty = max_int;
    heal_hist = Metrics.lhist_create ();
    worst_heal = 0;
    out_since = Array.make n (-1);
    lat = Metrics.lhist_create ();
    lat_since_check = 0;
    p99_alarmed = false;
    drop_ewma = Array.make (n * n) 0.;
    link_alarmed = Array.make (n * n) false;
    worst_drop = 0.;
    worst_drop_link = -1;
    churn_ewma = 0.;
    churn_last = 0;
    churn_alarmed = false;
    now = 0;
    ops_submitted = 0;
    ops_committed = 0;
    slots = 0;
    recoveries = 0;
    delivered = 0;
    dropped = 0;
    crashes = 0;
    corruptions = 0;
    suspect_adds = 0;
    suspect_removes = 0;
    win_ops = 0;
    win_start = 0;
    alarms_rev = [];
    alarm_count = 0;
    on_alarm = (fun _ _ -> ());
    every = 0;
    next_fire = 0;
    on_interval = (fun _ ~time:_ -> ());
  }

let budgets t = t.budgets
let alarms t = List.rev t.alarms_rev
let alarm_count t = t.alarm_count
let measured_d t = t.measured_d
let worst_heal t = t.worst_heal
let latency t = t.lat
let heal_times t = t.heal_hist
(* Option-int payloads encode [None] as -1 (pids are non-negative);
   bools as 0/1. Tag order matches the [Event.body] declaration. *)
let ring_push t (ev : Event.t) =
  let d = t.ring_data in
  let base = t.ring_pos * ring_stride in
  let time = ev.Event.time in
  let set tag a b c =
    d.(base) <- (time lsl 5) lor tag;
    d.(base + 1) <- a;
    d.(base + 2) <- b;
    d.(base + 3) <- c
  in
  (match ev.Event.body with
  | Event.Round_begin -> set 0 0 0 0
  | Event.Round_end -> set 1 0 0 0
  | Event.Send { src; dst } ->
    set 2 src (match dst with Some p -> p | None -> -1) 0
  | Event.Deliver { src; dst } -> set 3 src dst 0
  | Event.Drop { src; dst; blame } ->
    set 4 src dst (match blame with Some p -> p | None -> -1)
  | Event.Crash { pid } -> set 5 pid 0 0
  | Event.Corrupt { pid } -> set 6 pid 0 0
  | Event.Suspect_add { observer; subject } -> set 7 observer subject 0
  | Event.Suspect_remove { observer; subject } -> set 8 observer subject 0
  | Event.Decide { pid; instance; value } -> set 9 pid instance value
  | Event.Window_open -> set 10 0 0 0
  | Event.Window_close { opened; measured } -> set 11 opened measured 0
  | Event.Case_start { case } -> set 12 case 0 0
  | Event.Case_verdict { case; ok; dedup; states } ->
    set 13 case ((if ok then 1 else 0) lor if dedup then 2 else 0) states
  | Event.Coverage { execs; corpus; points } -> set 14 execs corpus points
  | Event.Submit { pid; ops } -> set 15 pid ops 0
  | Event.Commit { pid; slot; ops } -> set 16 pid slot ops
  | Event.Apply { pid; slot; digest } -> set 17 pid slot digest
  | Event.Recover { pid; slots } -> set 18 pid slots 0);
  let p = t.ring_pos + 1 in
  t.ring_pos <- (if p = t.ring_cap then 0 else p);
  t.ring_pushed <- t.ring_pushed + 1

let decode_slot d base =
  let time = d.(base) asr 5 in
  let a = d.(base + 1) and b = d.(base + 2) and c = d.(base + 3) in
  let opt v = if v < 0 then None else Some v in
  let body =
    match d.(base) land 31 with
    | 0 -> Event.Round_begin
    | 1 -> Event.Round_end
    | 2 -> Event.Send { src = a; dst = opt b }
    | 3 -> Event.Deliver { src = a; dst = b }
    | 4 -> Event.Drop { src = a; dst = b; blame = opt c }
    | 5 -> Event.Crash { pid = a }
    | 6 -> Event.Corrupt { pid = a }
    | 7 -> Event.Suspect_add { observer = a; subject = b }
    | 8 -> Event.Suspect_remove { observer = a; subject = b }
    | 9 -> Event.Decide { pid = a; instance = b; value = c }
    | 10 -> Event.Window_open
    | 11 -> Event.Window_close { opened = a; measured = b }
    | 12 -> Event.Case_start { case = a }
    | 13 ->
      Event.Case_verdict
        { case = a; ok = b land 1 = 1; dedup = b land 2 = 2; states = c }
    | 14 -> Event.Coverage { execs = a; corpus = b; points = c }
    | 15 -> Event.Submit { pid = a; ops = b }
    | 16 -> Event.Commit { pid = a; slot = b; ops = c }
    | 17 -> Event.Apply { pid = a; slot = b; digest = c }
    | 18 -> Event.Recover { pid = a; slots = b }
    | tag -> invalid_arg (Printf.sprintf "Monitor: corrupt ring tag %d" tag)
  in
  Event.make ~time body

let ring_events t =
  let count = min t.ring_pushed t.ring_cap in
  let start = if t.ring_pushed <= t.ring_cap then 0 else t.ring_pos in
  List.init count (fun i ->
      decode_slot t.ring_data (((start + i) mod t.ring_cap) * ring_stride))

let ring_seen t = t.ring_pushed
let set_on_alarm t f = t.on_alarm <- f

let set_interval t ~every f =
  if every < 1 then invalid_arg "Monitor.set_interval: every < 1";
  t.every <- every;
  t.next_fire <- every;
  t.on_interval <- f

let raise_alarm t ~monitor ~time ~detail event =
  t.alarm_count <- t.alarm_count + 1;
  let a = { monitor; time; detail; event } in
  if t.alarm_count <= max_kept_alarms then t.alarms_rev <- a :: t.alarms_rev;
  t.on_alarm t a

(* min corrupt time over dirty pids not yet alarmed — recomputed only
   when a pid heals or alarms, O(n) amortized over rare transitions. *)
let recompute_earliest_dirty t =
  let best = ref max_int in
  for p = 0 to t.n - 1 do
    if t.corrupt_at.(p) >= 0 && not t.heal_alarmed.(p) && t.corrupt_at.(p) < !best then
      best := t.corrupt_at.(p)
  done;
  t.earliest_dirty <- !best

let note_fault t time = if time > t.last_fault then t.last_fault <- time

let clear_dirty t p =
  if t.corrupt_at.(p) >= 0 then begin
    t.corrupt_at.(p) <- -1;
    t.heal_alarmed.(p) <- false;
    t.dirty <- t.dirty - 1;
    recompute_earliest_dirty t
  end

(* The heal watchdog's overdue branch: a replica that has not applied
   since its corruption, checked lazily against the current event time.
   Fires once per replica per episode. *)
let check_overdue t time ev =
  match t.budgets.heal with
  | Some b when t.dirty > 0 && t.earliest_dirty < max_int && time > t.earliest_dirty + b ->
    for p = 0 to t.n - 1 do
      if t.corrupt_at.(p) >= 0 && (not t.heal_alarmed.(p)) && time > t.corrupt_at.(p) + b
      then begin
        t.heal_alarmed.(p) <- true;
        raise_alarm t ~monitor:"heal" ~time
          ~detail:
            (Printf.sprintf
               "replica %d still unhealed %d ticks after corruption at t=%d (budget %d)"
               p
               (time - t.corrupt_at.(p))
               t.corrupt_at.(p) b)
          ev
      end
    done;
    recompute_earliest_dirty t
  | _ -> ()

let check_p99 t time ev =
  match t.budgets.p99 with
  | Some b when not t.p99_alarmed ->
    let p99 = Metrics.lpercentile t.lat 99. in
    if p99 > b then begin
      t.p99_alarmed <- true;
      raise_alarm t ~monitor:"latency_p99" ~time
        ~detail:
          (Printf.sprintf "commit-latency p99=%.0f ticks exceeds budget %.0f (%d samples)"
             p99 b (Metrics.lhist_count t.lat))
        ev
    end
  | _ -> ()

let observe_link t ~src ~dst ~dropped time ev =
  if src <> dst && src < t.n && dst < t.n then begin
    let i = (src * t.n) + dst in
    let x = if dropped then 1. else 0. in
    let e = ((1. -. drop_alpha) *. t.drop_ewma.(i)) +. (drop_alpha *. x) in
    t.drop_ewma.(i) <- e;
    if e > t.worst_drop then begin
      t.worst_drop <- e;
      t.worst_drop_link <- i
    end;
    match t.budgets.drop_rate with
    | Some b when dropped && e > b && not t.link_alarmed.(i) ->
      t.link_alarmed.(i) <- true;
      raise_alarm t ~monitor:"drop_rate" ~time
        ~detail:
          (Printf.sprintf "link %d->%d omission EWMA %.2f exceeds budget %.2f" src dst e b)
        ev
    | _ -> ()
  end

let observe_churn t time ev =
  let dt = float_of_int (max 0 (time - t.churn_last)) in
  t.churn_last <- time;
  t.churn_ewma <- (t.churn_ewma *. exp (-.dt /. churn_tau)) +. (1. /. churn_tau);
  match t.budgets.churn with
  | Some b when t.churn_ewma > b && not t.churn_alarmed ->
    t.churn_alarmed <- true;
    raise_alarm t ~monitor:"churn" ~time
      ~detail:
        (Printf.sprintf "suspicion-churn EWMA %.3f events/tick exceeds budget %.3f"
           t.churn_ewma b)
      ev
  | _ -> ()

let subscriber t (ev : Event.t) =
  ring_push t ev;
  let time = ev.Event.time in
  if time > t.now then t.now <- time;
  (match ev.Event.body with
  | Event.Corrupt { pid } ->
    t.corruptions <- t.corruptions + 1;
    note_fault t time;
    if pid < t.n && t.corrupt_at.(pid) < 0 then begin
      t.corrupt_at.(pid) <- time;
      t.dirty <- t.dirty + 1;
      if time < t.earliest_dirty then t.earliest_dirty <- time
    end
  | Event.Crash { pid } ->
    t.crashes <- t.crashes + 1;
    note_fault t time;
    if pid < t.n then begin
      (* A dead replica never applies again: its divergence episode ends
         with it (death is a process failure, not an unhealed one). *)
      clear_dirty t pid;
      t.out_since.(pid) <- -1
    end
  | Event.Drop { src; dst; _ } ->
    t.dropped <- t.dropped + 1;
    note_fault t time;
    observe_link t ~src ~dst ~dropped:true time ev
  | Event.Deliver { src; dst } ->
    t.delivered <- t.delivered + 1;
    observe_link t ~src ~dst ~dropped:false time ev
  | Event.Suspect_add _ ->
    t.suspect_adds <- t.suspect_adds + 1;
    observe_churn t time ev
  | Event.Suspect_remove _ ->
    t.suspect_removes <- t.suspect_removes + 1;
    observe_churn t time ev
  | Event.Submit { pid; ops } ->
    t.ops_submitted <- t.ops_submitted + ops;
    if pid < t.n && t.out_since.(pid) < 0 then t.out_since.(pid) <- time
  | Event.Commit { pid; slot; ops } ->
    t.ops_committed <- t.ops_committed + ops;
    t.win_ops <- t.win_ops + ops;
    if slot + 1 > t.slots then t.slots <- slot + 1;
    if pid < t.n && t.out_since.(pid) >= 0 then begin
      Metrics.lobserve t.lat (float_of_int (time - t.out_since.(pid)));
      t.out_since.(pid) <- -1;
      t.lat_since_check <- t.lat_since_check + 1;
      if t.lat_since_check >= p99_check_every then begin
        t.lat_since_check <- 0;
        check_p99 t time ev
      end
    end
  | Event.Apply { pid; _ } ->
    if pid < t.n && t.corrupt_at.(pid) >= 0 then begin
      let gap = time - t.corrupt_at.(pid) in
      Metrics.lobserve t.heal_hist (float_of_int gap);
      if gap > t.worst_heal then t.worst_heal <- gap;
      let already_alarmed = t.heal_alarmed.(pid) in
      clear_dirty t pid;
      match t.budgets.heal with
      | Some b when gap > b && not already_alarmed ->
        raise_alarm t ~monitor:"heal" ~time
          ~detail:
            (Printf.sprintf "replica %d healed %d ticks after corruption (budget %d)" pid
               gap b)
          ev
      | _ -> ()
    end
  | Event.Recover _ ->
    t.recoveries <- t.recoveries + 1;
    (* Definition 2.4 measured online: a repair episode is disorder
       evidence; its distance from the last environment fault is the
       running stabilization time d. *)
    if t.last_fault >= 0 then begin
      let d = time - t.last_fault in
      if d > t.measured_d then t.measured_d <- d;
      match t.budgets.stab with
      | Some b when d > b && t.stab_alarm_epoch <> t.last_fault ->
        t.stab_alarm_epoch <- t.last_fault;
        raise_alarm t ~monitor:"stab" ~time
          ~detail:
            (Printf.sprintf
               "measured stabilization d=%d exceeds budget %d (last fault at t=%d)" d b
               t.last_fault)
          ev
      | _ -> ()
    end
  | Event.Send _ | Event.Decide _ | Event.Round_begin | Event.Round_end
  | Event.Window_open | Event.Window_close _ | Event.Case_start _ | Event.Case_verdict _
  | Event.Coverage _ ->
    ());
  check_overdue t time ev;
  if t.every > 0 && time >= t.next_fire then begin
    t.next_fire <- (((time / t.every) + 1) * t.every);
    t.on_interval t ~time
  end

let attach t obs = Obs.add_subscriber obs (subscriber t)

(* End-of-run sweep: replicas still unhealed at the horizon and a final
   latency-quantile check (runs with fewer than [p99_check_every]
   commits since the last check would otherwise escape the gate). *)
let finalize t ~end_time =
  if end_time > t.now then t.now <- end_time;
  let sentinel = Event.make ~time:end_time Event.Round_end in
  check_overdue t end_time sentinel;
  if Metrics.lhist_count t.lat > 0 then check_p99 t end_time sentinel

(* --- rendering --- *)

type status = { name : string; armed : bool; value : string; firing : int }

let fired t monitor =
  List.length (List.filter (fun a -> a.monitor = monitor) t.alarms_rev)

let statuses t =
  let pct p = Metrics.lpercentile t.lat p in
  [
    {
      name = "stab";
      armed = t.budgets.stab <> None;
      value =
        (if t.last_fault < 0 then "no faults"
         else Printf.sprintf "d=%d (last fault t=%d)" t.measured_d t.last_fault);
      firing = fired t "stab";
    };
    {
      name = "heal";
      armed = t.budgets.heal <> None;
      value =
        Printf.sprintf "episodes=%d worst=%d dirty=%d"
          (Metrics.lhist_count t.heal_hist)
          t.worst_heal t.dirty;
      firing = fired t "heal";
    };
    {
      name = "latency_p99";
      armed = t.budgets.p99 <> None;
      value =
        (if Metrics.lhist_count t.lat = 0 then "no samples"
         else Printf.sprintf "p99=%.0f" (pct 99.));
      firing = fired t "latency_p99";
    };
    {
      name = "drop_rate";
      armed = t.budgets.drop_rate <> None;
      value =
        (if t.worst_drop_link < 0 then "no drops"
         else
           Printf.sprintf "worst %.2f (%d->%d)" t.worst_drop
             (t.worst_drop_link / t.n) (t.worst_drop_link mod t.n));
      firing = fired t "drop_rate";
    };
    {
      name = "churn";
      armed = t.budgets.churn <> None;
      value = Printf.sprintf "%.3f/tick" t.churn_ewma;
      firing = fired t "churn";
    };
  ]

let pp_alarm ppf a =
  Format.fprintf ppf "[%s] t=%d %s" a.monitor a.time a.detail

(* One dashboard frame. Mutates the instantaneous-throughput window:
   each call reports committed ops since the previous call. *)
let pp_dashboard ppf t =
  let time = t.now in
  let lat_line ppf () =
    if Metrics.lhist_count t.lat = 0 then Format.fprintf ppf "no samples yet"
    else
      Format.fprintf ppf "p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f (%d samples)"
        (Metrics.lpercentile t.lat 50.)
        (Metrics.lpercentile t.lat 90.)
        (Metrics.lpercentile t.lat 99.)
        (Metrics.lpercentile t.lat 99.9)
        (Metrics.lhist_max t.lat) (Metrics.lhist_count t.lat)
  in
  let cum_rate =
    if time > 0 then float_of_int t.ops_committed /. float_of_int time else 0.
  in
  let win = max 1 (time - t.win_start) in
  let win_rate = float_of_int t.win_ops /. float_of_int win in
  Format.fprintf ppf "@[<v>== ftss watch t=%d ==@," time;
  Format.fprintf ppf
    "ops       submitted=%d committed=%d slots=%d  throughput=%.1f ops/tick (window \
     %.1f)@,"
    t.ops_submitted t.ops_committed t.slots cum_rate win_rate;
  Format.fprintf ppf "latency   %a@," lat_line ();
  Format.fprintf ppf
    "links     delivered=%d dropped=%d  suspicion adds=%d removes=%d churn=%.3f/tick@,"
    t.delivered t.dropped t.suspect_adds t.suspect_removes t.churn_ewma;
  Format.fprintf ppf
    "faults    crashes=%d corruptions=%d last-fault=%s  recoveries=%d measured-d=%d@,"
    t.crashes t.corruptions
    (if t.last_fault < 0 then "none" else Printf.sprintf "t=%d" t.last_fault)
    t.recoveries t.measured_d;
  Format.fprintf ppf "monitors  ";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%s=%s" s.name
        (if s.firing > 0 then Printf.sprintf "ALARM(%d)" s.firing
         else if s.armed then "ok"
         else "off"))
    (statuses t);
  Format.fprintf ppf "@,";
  Format.fprintf ppf "recorder  ring seen=%d  alarms=%d" (ring_seen t) t.alarm_count;
  (match t.alarms_rev with
  | [] -> ()
  | _ ->
    let first = List.hd (List.rev t.alarms_rev) in
    Format.fprintf ppf "@,first     %a" pp_alarm first);
  Format.fprintf ppf "@]";
  t.win_ops <- 0;
  t.win_start <- time

let dashboard_string t = Format.asprintf "%a@." pp_dashboard t

let statuses_json t =
  Ftss_obs.Json.List
    (List.map
       (fun s ->
         Ftss_obs.Json.Obj
           [
             ("name", Ftss_obs.Json.String s.name);
             ("armed", Ftss_obs.Json.Bool s.armed);
             ("value", Ftss_obs.Json.String s.value);
             ("firing", Ftss_obs.Json.Int s.firing);
           ])
       (statuses t))

(* One machine-readable dashboard frame: the same quantities (and the
   same stateful instantaneous-throughput window) as {!pp_dashboard}. *)
let dashboard_json t =
  let open Ftss_obs.Json in
  let time = t.now in
  let cum_rate =
    if time > 0 then float_of_int t.ops_committed /. float_of_int time else 0.
  in
  let win = max 1 (time - t.win_start) in
  let win_rate = float_of_int t.win_ops /. float_of_int win in
  let latency =
    if Metrics.lhist_count t.lat = 0 then Obj [ ("samples", Int 0) ]
    else
      Obj
        [
          ("samples", Int (Metrics.lhist_count t.lat));
          ("p50", Float (Metrics.lpercentile t.lat 50.));
          ("p90", Float (Metrics.lpercentile t.lat 90.));
          ("p99", Float (Metrics.lpercentile t.lat 99.));
          ("p999", Float (Metrics.lpercentile t.lat 99.9));
          ("max", Float (Metrics.lhist_max t.lat));
        ]
  in
  let json =
    Obj
      [
        ("time", Int time);
        ( "ops",
          Obj
            [
              ("submitted", Int t.ops_submitted);
              ("committed", Int t.ops_committed);
              ("slots", Int t.slots);
              ("throughput_per_tick", Float cum_rate);
              ("window_throughput_per_tick", Float win_rate);
            ] );
        ("latency", latency);
        ( "links",
          Obj
            [
              ("delivered", Int t.delivered);
              ("dropped", Int t.dropped);
              ("suspect_adds", Int t.suspect_adds);
              ("suspect_removes", Int t.suspect_removes);
              ("churn_per_tick", Float t.churn_ewma);
            ] );
        ( "faults",
          Obj
            [
              ("crashes", Int t.crashes);
              ("corruptions", Int t.corruptions);
              ("last_fault", Int t.last_fault);
              ("recoveries", Int t.recoveries);
              ("measured_d", Int t.measured_d);
            ] );
        ("monitors", statuses_json t);
        ( "recorder",
          Obj [ ("ring_seen", Int (ring_seen t)); ("alarms", Int t.alarm_count) ]
        );
        ( "alarms",
          List
            (List.rev_map
               (fun a ->
                 Obj
                   [
                     ("monitor", String a.monitor);
                     ("time", Int a.time);
                     ("detail", String a.detail);
                   ])
               t.alarms_rev) );
      ]
  in
  t.win_ops <- 0;
  t.win_start <- time;
  json

(* --- OpenMetrics text exposition (scrape-based collection) --- *)

let openmetrics t =
  let b = Buffer.create 1024 in
  let counter name help v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "%s_total %d\n" name v)
  in
  let gauge name help v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "%s %g\n" name v)
  in
  gauge "ftss_sim_time_ticks" "simulated time of the latest observed event"
    (float_of_int t.now);
  counter "ftss_ops_submitted" "client operations submitted" t.ops_submitted;
  counter "ftss_ops_committed" "operations committed (duplicates included)"
    t.ops_committed;
  counter "ftss_slots_committed" "total-order broadcast slots committed" t.slots;
  counter "ftss_messages_delivered" "messages delivered" t.delivered;
  counter "ftss_messages_dropped" "messages dropped (omission faults)" t.dropped;
  counter "ftss_crashes" "process crashes" t.crashes;
  counter "ftss_corruptions" "transient state corruptions" t.corruptions;
  counter "ftss_recoveries" "repair episodes (Recover events)" t.recoveries;
  counter "ftss_suspicion_churn" "suspicion set changes"
    (t.suspect_adds + t.suspect_removes);
  gauge "ftss_suspicion_churn_rate" "suspicion-churn EWMA, events per tick" t.churn_ewma;
  gauge "ftss_omission_rate_worst_link" "worst per-link omission EWMA" t.worst_drop;
  gauge "ftss_stabilization_d_ticks" "measured online stabilization time d"
    (float_of_int t.measured_d);
  gauge "ftss_heal_worst_ticks" "worst corruption-to-apply heal time"
    (float_of_int t.worst_heal);
  gauge "ftss_replicas_dirty" "replicas corrupted and not yet applying"
    (float_of_int t.dirty);
  if Metrics.lhist_count t.lat > 0 then begin
    Buffer.add_string b "# TYPE ftss_commit_latency_ticks summary\n";
    Buffer.add_string b
      "# HELP ftss_commit_latency_ticks commit latency, submit to commit, in ticks\n";
    List.iter
      (fun (q, p) ->
        Buffer.add_string b
          (Printf.sprintf "ftss_commit_latency_ticks{quantile=\"%s\"} %g\n" q
             (Metrics.lpercentile t.lat p)))
      [ ("0.5", 50.); ("0.9", 90.); ("0.99", 99.); ("0.999", 99.9) ];
    Buffer.add_string b
      (Printf.sprintf "ftss_commit_latency_ticks_sum %g\n" (Metrics.lhist_sum t.lat));
    Buffer.add_string b
      (Printf.sprintf "ftss_commit_latency_ticks_count %d\n" (Metrics.lhist_count t.lat))
  end;
  counter "ftss_alarms" "SLO alarms fired" t.alarm_count;
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "ftss_monitor_alarms_total{monitor=\"%s\"} %d\n" s.name s.firing))
    (statuses t);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write_openmetrics t path =
  let oc = open_out path in
  output_string oc (openmetrics t);
  close_out oc
