module Event = Ftss_obs.Event
module Json = Ftss_obs.Json
module Prov = Ftss_prov.Prov

(* Flight-recorder snapshots: on alarm, dump the monitor's event ring
   as JSON Lines and render the causal cone of the triggering event as
   Graphviz. The ring is indexed with the provenance engine on demand —
   snapshotting is the cold path; the hot path only pushed into a
   preallocated ring. *)

type snapshot = {
  jsonl_path : string;
  dot_path : string;
  events : int; (* ring events written *)
  cone : int; (* cone size, 0 when the target was not found *)
  target_found : bool;
}

let write_jsonl path events =
  let oc = open_out path in
  List.iter
    (fun ev ->
      output_string oc (Json.to_string (Event.to_json ev));
      output_char oc '\n')
    events;
  close_out oc

let snapshot t (alarm : Monitor.alarm) ~prefix =
  let events = Monitor.ring_events t in
  let jsonl_path = prefix ^ ".jsonl" in
  let dot_path = prefix ^ ".dot" in
  write_jsonl jsonl_path events;
  let prov = Prov.of_events events in
  (* The ring stores events unboxed and without stamps, so search with a
     stamp-stripped copy of the trigger — the decoded ring entry is
     structurally equal to it. *)
  let target = { alarm.Monitor.event with Event.stamp = None } in
  let targets, target_found =
    match Prov.find_event prov target with
    | Some id -> ([ id ], true)
    | None -> ([], false)
  in
  let cone_ids = if targets = [] then [] else Prov.cone prov targets in
  let dot =
    if cone_ids = [] then "digraph flight { label=\"target not in ring\"; }\n"
    else Prov.to_dot ~targets prov cone_ids
  in
  let oc = open_out dot_path in
  output_string oc dot;
  close_out oc;
  {
    jsonl_path;
    dot_path;
    events = List.length events;
    cone = List.length cone_ids;
    target_found;
  }

let pp_snapshot ppf s =
  Format.fprintf ppf
    "flight recorder: %d events -> %s; cone of triggering event: %d nodes -> %s%s"
    s.events s.jsonl_path s.cone s.dot_path
    (if s.target_found then "" else " (target evicted from ring)")
