(** Open-workload generator for the service tower: millions of client
    sessions issuing get/put/cas/delete operations against Zipfian keys,
    with periodic burst arrivals. The whole trace is precomputed from the
    seed (arrival times ascend, op ids are arrival-ordered indices), so
    runs are replayable and generation is off the simulation hot path. *)

type spec = {
  ops : int;
  sessions : int;
  keys : int;
  theta : float;  (** Zipf skew; 0.0 = uniform *)
  window : int;  (** arrivals span ticks [1, window] *)
  burst_every : int;  (** burst period in ticks; 0 disables bursts *)
  burst_len : int;
  burst_mult : float;  (** arrival-rate multiplier inside a burst *)
  seed : int;
}

val default_spec : spec

type t

(** [create ~n spec] precomputes the full trace, partitioned over [n]
    replicas by session. *)
val create : n:int -> spec -> t

val spec : t -> spec
val total : t -> int

(** [op t i] is operation [i]; ids equal indices and ascend in arrival
    order. *)
val op : t -> int -> Kv.op

val arrival : t -> int -> int
val origin : t -> int -> Ftss_util.Pid.t
val session_of : t -> int -> int

(** [per_replica t p] is the ids of the ops submitted at replica [p],
    ascending by arrival. *)
val per_replica : t -> Ftss_util.Pid.t -> int array

(** Deterministic digest over the generated trace (ops, arrivals,
    origins) — pinned by the golden determinism test. *)
val digest : t -> int
