(** The replicated key-value state machine at the top of the service
    tower, and the operation/digest vocabulary shared by every layer.

    A replica applies the committed log deterministically: same log, same
    table, same digest — so equal {!digest}s (or, against corrupted
    incremental state, equal {!recompute_digest}s) at equal log positions
    witness replica convergence. Keys and values are ints; an absent key
    reads as 0 but is a distinct state from an explicit [put k 0]. *)

type kind = Get | Put | Cas | Delete

type op = {
  id : int;  (** globally unique; the workload generator uses the op index *)
  kind : kind;
  key : int;
  v1 : int;  (** [Put]: new value; [Cas]: expected value *)
  v2 : int;  (** [Cas]: new value; unused otherwise *)
}

(** [mix a b] is the 62-bit avalanche hash every digest here is built
    from (deterministic, non-cryptographic). *)
val mix : int -> int -> int

(** [chain h x] extends an order-{e dependent} digest chain — used for
    log-prefix digests. *)
val chain : int -> int -> int

val op_digest : op -> int

(** Order-dependent digest of one batch (a log entry). *)
val batch_digest : op array -> int

type t

val create : unit -> t
val reset : t -> unit

(** [get t key] is the current value, 0 when absent. *)
val get : t -> int -> int

val mem : t -> int -> bool
val cardinal : t -> int

(** The incrementally maintained state digest: an order-independent sum
    of per-entry hashes, updated in O(1) per mutation. *)
val digest : t -> int

(** [apply t op] executes one operation: [Get] reads (no state change),
    [Put] writes [v1], [Cas] writes [v2] iff the current value equals
    [v1], [Delete] removes the key. *)
val apply : t -> op -> unit

val apply_batch : t -> op array -> unit

(** Recompute the digest from the table contents, ignoring the
    incremental field — the audit a transient corruption of either the
    table or the field cannot survive. *)
val recompute_digest : t -> int

(** Fault injection: scramble table entries (keys below [keys]) behind
    the incremental digest's back, sometimes the digest field itself. *)
val corrupt : Ftss_util.Rng.t -> keys:int -> t -> unit

val pp_op : Format.formatter -> op -> unit
