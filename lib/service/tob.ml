open Ftss_util

(* Self-stabilizing total-order broadcast: one {!Mv_consensus} instance
   per log slot, plus the machinery that makes the log itself
   self-stabilizing — an integrity guard over the replica's summary
   fields, a cyclic audit re-validating the log and KV state against
   their digests, checkpointed digest gossip that detects cross-replica
   divergence, and majority-directed state transfer that repairs it. *)

type style = { retransmit : bool; recover : bool }

let self_stabilizing = { retransmit = true; recover = true }
let baseline = { retransmit = false; recover = false }

type batch = Kv.op array

type msg =
  | Cons of { slot : int; m : batch Mv_consensus.msg }
  | Decide of { slot : int; batch : batch }
  | Fwd of batch
  | Tag of { len : int; round : int; cp : int; cp_log : int; kvh : int; kv_d : int }
  | Pull_req of { from : int }
  | Pull_rep of { from : int; entries : batch array }

type out = Send of Pid.t * msg | Bcast of msg

type note =
  | Submitted of { ops : int }
  | Committed of { slot : int; ops : int }
  | Applied of { slot : int; digest : int }
  | Recovered of { slots : int }

type t = {
  n : int;
  self : Pid.t;
  style : style;
  batch_max : int;
  checkpoint : int;
  obs : Ftss_obs.Obs.t option;
  prof : Ftss_profile.Profile.lane option;
  (* the committed log: [0, committed) of [log] is live; [pdig.(i)] is
     the chained digest of the length-[i] prefix *)
  mutable log : batch array;
  mutable committed : int;
  mutable pdig : int array;
  (* the state machine *)
  kv : Kv.t;
  mutable applied : int;
  mutable kvh : int; (* height of the last KV checkpoint snapshot *)
  mutable kv_cp : int; (* table-recomputed KV digest at that height *)
  (* pending client operations: FIFO plus bitsets (indexed by op id) for
     dedup and committed-filtering *)
  queue : Kv.op Queue.t;
  mutable queued : Bytes.t;
  mutable donebits : Bytes.t;
  (* the consensus engine for slot [committed] *)
  mutable engine : batch Mv_consensus.t option;
  (* catch-up and repair *)
  future : (int, batch) Hashtbl.t;
  mutable pull : (Pid.t * int * int) option;
      (* outstanding request: peer, tick it was issued, [from] asked for *)
  mutable log_conflict : Pidset.t;
  mutable log_agree : Pidset.t;
  mutable kv_conflict : Pidset.t;
  (* soft per-peer gossip state, refreshed by every [Tag] *)
  peer_len : int array;
  peer_cp : int array;
  peer_cpd : int array;
  (* clocks, audit cursor, integrity guard *)
  mutable ticks : int;
  mutable audit_cursor : int;
  mutable guard : int;
  (* measurement *)
  mutable notes : note list; (* reversed *)
  mutable recoveries : int;
}

let pull_patience = 5 (* ticks before an unanswered pull may be retried *)
let audit_interval = 64 (* ticks between self-audits *)
let audit_window = 32 (* log slots re-validated per audit *)

(* --- bitsets over op ids --- *)

let bit_get b i =
  i >= 0
  && i < 8 * Bytes.length b
  && Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let ensure_bits t i =
  if i >= 8 * Bytes.length t.queued then begin
    let bytes = max (2 * Bytes.length t.queued) ((i lsr 3) + 1) in
    let grow old =
      let b = Bytes.make bytes '\000' in
      Bytes.blit old 0 b 0 (Bytes.length old);
      b
    in
    t.queued <- grow t.queued;
    t.donebits <- grow t.donebits
  end

let is_done t (o : Kv.op) = bit_get t.donebits o.Kv.id

let mark_done t (o : Kv.op) =
  ensure_bits t o.Kv.id;
  bit_set t.donebits o.Kv.id

(* --- log storage --- *)

let ensure_log_cap t k =
  if k > Array.length t.log then begin
    let cap = max (2 * Array.length t.log) k in
    let log = Array.make cap [||] in
    Array.blit t.log 0 log 0 (Array.length t.log);
    t.log <- log
  end;
  if k + 1 > Array.length t.pdig then begin
    let cap = max (2 * Array.length t.pdig) (k + 1) in
    let pdig = Array.make cap 0 in
    Array.blit t.pdig 0 pdig 0 (Array.length t.pdig);
    t.pdig <- pdig
  end

let cp_of t len = len - (len mod t.checkpoint)

(* --- observability --- *)

let note t x = t.notes <- x :: t.notes

let drain_notes t =
  let ns = List.rev t.notes in
  t.notes <- [];
  ns

let emit t ~now body =
  match t.obs with
  | Some o -> Ftss_obs.Obs.emit o (Ftss_obs.Event.make ~time:now body)
  | None -> ()

(* Span profiling: the same option-test discipline as [emit]. Frames nest
   inside the simulator's handler frame, so tower self-times never double
   count against [sim_deliver]/[sim_dispatch]. *)
module Prof = Ftss_profile.Profile

let pf_enter t p = match t.prof with Some l -> Prof.enter l p | None -> ()
let pf_leave t = match t.prof with Some l -> ignore (Prof.leave l) | None -> ()

(* --- integrity guard --- *)

let guard_of t =
  Kv.mix
    (Kv.mix (Kv.mix t.committed t.pdig.(t.committed)) (Kv.mix t.applied (Kv.digest t.kv)))
    (Kv.mix t.kvh t.kv_cp)

let refresh_guard t = t.guard <- guard_of t

let create ?obs ?profile ~n ~self ~style ~batch_max ?(checkpoint = 64)
    ?(id_hint = 1024) () =
  if n < 1 then invalid_arg "Tob.create: n < 1";
  if batch_max < 1 then invalid_arg "Tob.create: batch_max < 1";
  if checkpoint < 1 then invalid_arg "Tob.create: checkpoint < 1";
  let bytes = max 16 ((id_hint lsr 3) + 1) in
  let t =
    {
      n;
      self;
      style;
      batch_max;
      checkpoint;
      obs;
      prof = profile;
      log = Array.make 64 [||];
      committed = 0;
      pdig = Array.make 65 0;
      kv = Kv.create ();
      applied = 0;
      kvh = 0;
      kv_cp = 0;
      queue = Queue.create ();
      queued = Bytes.make bytes '\000';
      donebits = Bytes.make bytes '\000';
      engine = None;
      future = Hashtbl.create 16;
      pull = None;
      log_conflict = Pidset.empty;
      log_agree = Pidset.empty;
      kv_conflict = Pidset.empty;
      peer_len = Array.make n 0;
      peer_cp = Array.make n 0;
      peer_cpd = Array.make n 0;
      ticks = 0;
      audit_cursor = 0;
      guard = 0;
      notes = [];
      recoveries = 0;
    }
  in
  refresh_guard t;
  t

(* --- accessors --- *)

let committed t = t.committed
let applied t = t.applied
let log_digest t = t.pdig.(t.committed)
let kv_digest t = Kv.digest t.kv
let kv_recomputed t = Kv.recompute_digest t.kv
let recoveries t = t.recoveries
let log_entry t i = t.log.(i)
let kv t = t.kv

(* Recompute the log-content digest chain from scratch — the ground truth
   [pdig] is audited against, and the strict convergence check. *)
let content_digest t =
  let h = ref 0 in
  for i = 0 to t.committed - 1 do
    h := Kv.chain !h (Kv.batch_digest t.log.(i))
  done;
  !h

(* --- pending queue --- *)

let prune t =
  let rec go () =
    match Queue.peek_opt t.queue with
    | Some o when is_done t o ->
      ignore (Queue.pop t.queue);
      go ()
    | _ -> ()
  in
  go ()

let has_pending t =
  prune t;
  not (Queue.is_empty t.queue)

let enqueue_ops t ops =
  Array.iter
    (fun (o : Kv.op) ->
      ensure_bits t o.Kv.id;
      if not (bit_get t.donebits o.Kv.id || bit_get t.queued o.Kv.id) then begin
        bit_set t.queued o.Kv.id;
        Queue.add o t.queue
      end)
    ops

let make_batch t =
  prune t;
  let acc = ref [] and count = ref 0 in
  (try
     Queue.iter
       (fun o ->
         if not (is_done t o) then begin
           acc := o :: !acc;
           incr count;
           if !count >= t.batch_max then raise Exit
         end)
       t.queue
   with Exit -> ());
  Array.of_list (List.rev !acc)

(* --- applying the log --- *)

let apply_forward t ~now =
  while t.applied < t.committed do
    Kv.apply_batch t.kv t.log.(t.applied);
    t.applied <- t.applied + 1;
    let digest = Kv.digest t.kv in
    note t (Applied { slot = t.applied - 1; digest });
    emit t ~now (Ftss_obs.Event.Apply { pid = t.self; slot = t.applied - 1; digest });
    if t.applied mod t.checkpoint = 0 then begin
      t.kvh <- t.applied;
      t.kv_cp <- Kv.recompute_digest t.kv
    end
  done

(* --- committing --- *)

let commit_batch t ~now batch =
  ensure_log_cap t (t.committed + 1);
  t.log.(t.committed) <- batch;
  t.pdig.(t.committed + 1) <- Kv.chain t.pdig.(t.committed) (Kv.batch_digest batch);
  t.committed <- t.committed + 1;
  Array.iter (mark_done t) batch;
  t.engine <- None;
  note t (Committed { slot = t.committed - 1; ops = Array.length batch });
  emit t ~now
    (Ftss_obs.Event.Commit
       { pid = t.self; slot = t.committed - 1; ops = Array.length batch });
  apply_forward t ~now

let rec drain_future t ~now =
  match Hashtbl.find_opt t.future t.committed with
  | Some b ->
    Hashtbl.remove t.future t.committed;
    commit_batch t ~now b;
    drain_future t ~now
  | None -> ()

(* --- the consensus engine for slot [committed] --- *)

let map_outs slot outs =
  List.map
    (function
      | Mv_consensus.To (d, m) -> Send (d, Cons { slot; m })
      | Mv_consensus.All m -> Bcast (Cons { slot; m }))
    outs

let enter_engine t =
  let proposal = make_batch t in
  let eng, outs =
    Mv_consensus.create ~n:t.n ~self:t.self ~base:t.committed ~weight:Array.length
      ~proposal
  in
  t.engine <- Some eng;
  map_outs t.committed outs

let decide t ~now batch =
  let slot = t.committed in
  commit_batch t ~now batch;
  drain_future t ~now;
  let outs = [ Bcast (Decide { slot; batch }) ] in
  if has_pending t then outs @ enter_engine t else outs

(* --- recovery --- *)

(* Rebuild every derived structure from the log — the single repair
   primitive behind both local recovery (after a detected corruption) and
   truncating state transfer. [log] and [committed] are taken as the new
   ground truth; prefix digests, the KV state, both bitsets and the
   pending queue are recomputed from them. *)
let rebuild_from_log t ~now =
  ensure_log_cap t t.committed;
  t.pdig.(0) <- 0;
  for i = 0 to t.committed - 1 do
    t.pdig.(i + 1) <- Kv.chain t.pdig.(i) (Kv.batch_digest t.log.(i))
  done;
  Kv.reset t.kv;
  t.applied <- 0;
  t.kvh <- 0;
  t.kv_cp <- 0;
  Bytes.fill t.queued 0 (Bytes.length t.queued) '\000';
  Bytes.fill t.donebits 0 (Bytes.length t.donebits) '\000';
  for i = 0 to t.committed - 1 do
    Array.iter (mark_done t) t.log.(i)
  done;
  let keep = Queue.create () in
  Queue.iter
    (fun (o : Kv.op) ->
      if not (is_done t o) && not (bit_get t.queued o.Kv.id) then begin
        bit_set t.queued o.Kv.id;
        Queue.add o keep
      end)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  t.engine <- None;
  Hashtbl.reset t.future;
  t.pull <- None;
  t.log_conflict <- Pidset.empty;
  t.log_agree <- Pidset.empty;
  t.kv_conflict <- Pidset.empty;
  Array.fill t.peer_len 0 t.n 0;
  Array.fill t.peer_cp 0 t.n 0;
  Array.fill t.peer_cpd 0 t.n 0;
  apply_forward t ~now;
  refresh_guard t

let recover_local t ~now =
  (* Clamp the summary counters into the structurally possible range,
     then rebuild everything from the log content. Entries a corruption
     blanked or garbled become part of the (honestly re-digested) log and
     are healed by the cross-replica conflict machinery. *)
  if t.committed < 0 then t.committed <- 0;
  if t.committed > Array.length t.log then t.committed <- Array.length t.log;
  rebuild_from_log t ~now;
  t.recoveries <- t.recoveries + 1;
  note t (Recovered { slots = t.committed });
  emit t ~now (Ftss_obs.Event.Recover { pid = t.self; slots = t.committed })

let integrity_check t ~now =
  pf_enter t Prof.Phase.svc_integrity;
  if t.style.recover && t.guard <> guard_of t then recover_local t ~now;
  pf_leave t

(* The cyclic self-audit: re-derive the KV digest from the table, and
   re-validate one window of log content against the stored prefix
   digests. Either mismatch means a transient fault slipped past the
   cheap guard; local recovery re-digests honestly, after which
   cross-replica gossip repairs any surviving divergence. *)
let audit t ~now =
  if t.style.recover && t.ticks mod audit_interval = 0 then begin
    pf_enter t Prof.Phase.svc_audit;
    if Kv.recompute_digest t.kv <> Kv.digest t.kv then recover_local t ~now
    else begin
      if t.audit_cursor >= t.committed then t.audit_cursor <- 0;
      let stop = min t.committed (t.audit_cursor + audit_window) in
      let h = ref t.pdig.(t.audit_cursor) in
      for i = t.audit_cursor to stop - 1 do
        h := Kv.chain !h (Kv.batch_digest t.log.(i))
      done;
      let ok = !h = t.pdig.(stop) in
      t.audit_cursor <- stop;
      if not ok then recover_local t ~now
    end;
    pf_leave t
  end

let request_pull t peer ~from =
  match t.pull with
  | Some _ -> []
  | None ->
    t.pull <- Some (peer, t.ticks, from);
    [ Send (peer, Pull_req { from }) ]

(* --- client submissions --- *)

let submit t ~now ops =
  integrity_check t ~now;
  if Array.length ops = 0 then []
  else begin
    enqueue_ops t ops;
    note t (Submitted { ops = Array.length ops });
    emit t ~now (Ftss_obs.Event.Submit { pid = t.self; ops = Array.length ops });
    refresh_guard t;
    [ Bcast (Fwd ops) ]
  end

(* --- message handling --- *)

let on_cons t ~now ~src ~slot m =
  if slot < t.committed then [ Send (src, Decide { slot; batch = t.log.(slot) }) ]
  else if slot > t.committed then
    (* A peer running consensus ahead of us is not, by itself, authority
       to transfer state — a corrupted replica's scrambled height would
       drag everyone along. Catch-up is majority-gated on [tick]. *)
    []
  else begin
    let outs = if t.engine = None then enter_engine t else [] in
    match t.engine with
    | None -> outs (* unreachable: enter_engine just installed one *)
    | Some eng ->
      let eng, mouts, verdict = Mv_consensus.receive eng ~src m in
      t.engine <- Some eng;
      let outs = outs @ map_outs slot mouts in
      (match verdict with
      | Mv_consensus.Decided batch -> outs @ decide t ~now batch
      | Mv_consensus.Continue -> outs)
  end

let on_decide t ~now ~slot batch =
  if slot = t.committed then begin
    commit_batch t ~now batch;
    drain_future t ~now;
    if has_pending t then enter_engine t else []
  end
  else if slot > t.committed then begin
    Hashtbl.replace t.future slot batch;
    []
  end
  else []

let on_tag t ~src ~len ~round ~cp ~cp_log ~kvh ~kv_d =
  t.peer_len.(src) <- len;
  t.peer_cp.(src) <- cp;
  t.peer_cpd.(src) <- cp_log;
  let outs = [] in
  let outs =
    if len <> t.committed then outs
    else
      match t.engine with
      | Some eng when round > Mv_consensus.round eng ->
        let eng, mouts = Mv_consensus.jump eng ~round in
        t.engine <- Some eng;
        outs @ map_outs t.committed mouts
      | Some _ -> outs
      | None ->
        (* The peer is running consensus on our next slot: participate,
           even with an empty proposal, so majorities can form. *)
        if round >= 0 then outs @ enter_engine t else outs
  in
  if
    t.style.recover
    && (not (Pid.equal src t.self))
    && cp >= 0
    && cp mod t.checkpoint = 0
    && cp <= t.committed
  then begin
    if t.pdig.(cp) <> cp_log then begin
      t.log_conflict <- Pidset.add src t.log_conflict;
      t.log_agree <- Pidset.remove src t.log_agree
    end
    else begin
      t.log_conflict <- Pidset.remove src t.log_conflict;
      t.log_agree <- Pidset.add src t.log_agree;
      if kvh = t.kvh && kvh > 0 then
        if kv_d <> t.kv_cp then t.kv_conflict <- Pidset.add src t.kv_conflict
        else t.kv_conflict <- Pidset.remove src t.kv_conflict
    end
  end;
  outs

let on_pull_rep t ~now ~src ~from ~entries =
  let len = Array.length entries in
  let solicited =
    match t.pull with
    | Some (peer, _, f) -> Pid.equal peer src && f = from
    | None -> false
  in
  if from < 0 || len = 0 then []
  else if solicited && from = 0 then begin
    (* The reply to a repair pull: we already established (by majority
       digest conflict) that our log is the divergent one, so the peer's
       log replaces ours wholesale — even at equal length, which is the
       common case for a divergence with no length gap. A reply identical
       to what we hold is a no-op. *)
    t.pull <- None;
    let adopted = Array.fold_left (fun h b -> Kv.chain h (Kv.batch_digest b)) 0 entries in
    if len = t.committed && adopted = content_digest t then []
    else begin
      if Sys.getenv_opt "TOB_DEBUG" <> None then
        Printf.eprintf "[t=%d] p%d repair adopt from p%d len %d -> %d\n%!" now t.self
          src t.committed len;
      ensure_log_cap t len;
      Array.blit entries 0 t.log 0 len;
      t.committed <- len;
      rebuild_from_log t ~now;
      t.recoveries <- t.recoveries + 1;
      note t (Recovered { slots = len });
      emit t ~now (Ftss_obs.Event.Recover { pid = t.self; slots = len });
      if has_pending t then enter_engine t else []
    end
  end
  else if from > t.committed || from + len <= t.committed then []
  else begin
    (* Catch-up (solicited or not): adopt only the strict extension of
       the log we hold — the entries past our current length. If our
       prefix actually diverges from the peer's, checkpoint gossip
       detects it and the majority-gated repair path resolves it. *)
    if solicited then t.pull <- None;
    let offset = t.committed - from in
    ensure_log_cap t (from + len);
    Array.blit entries offset t.log t.committed (len - offset);
    t.committed <- from + len;
    for i = from + offset to t.committed - 1 do
      t.pdig.(i + 1) <- Kv.chain t.pdig.(i) (Kv.batch_digest t.log.(i));
      Array.iter (mark_done t) t.log.(i)
    done;
    t.engine <- None;
    apply_forward t ~now;
    drain_future t ~now;
    refresh_guard t;
    if has_pending t then enter_engine t else []
  end

let deliver t ~now ~src msg =
  integrity_check t ~now;
  let outs =
    match msg with
    | Fwd ops ->
      enqueue_ops t ops;
      []
    | Cons { slot; m } ->
      pf_enter t Prof.Phase.svc_slot;
      let outs = on_cons t ~now ~src ~slot m in
      pf_leave t;
      outs
    | Decide { slot; batch } ->
      pf_enter t Prof.Phase.svc_slot;
      let outs = on_decide t ~now ~slot batch in
      pf_leave t;
      outs
    | Tag { len; round; cp; cp_log; kvh; kv_d } ->
      pf_enter t Prof.Phase.svc_gossip;
      let outs = on_tag t ~src ~len ~round ~cp ~cp_log ~kvh ~kv_d in
      pf_leave t;
      outs
    | Pull_req { from } ->
      pf_enter t Prof.Phase.svc_catchup;
      let outs =
        if from >= 0 && from < t.committed then
          [ Send (src, Pull_rep { from; entries = Array.sub t.log from (t.committed - from) }) ]
        else []
      in
      pf_leave t;
      outs
    | Pull_rep { from; entries } ->
      pf_enter t Prof.Phase.svc_catchup;
      let outs = on_pull_rep t ~now ~src ~from ~entries in
      pf_leave t;
      outs
  in
  refresh_guard t;
  outs

(* --- the timer --- *)

let tick t ~now ~suspected =
  t.ticks <- t.ticks + 1;
  integrity_check t ~now;
  audit t ~now;
  (match t.pull with
  | Some (_, since, _) when t.ticks - since > pull_patience -> t.pull <- None
  | _ -> ());
  let outs = ref [] in
  let push os = outs := !outs @ os in
  let suspects = ref 0 in
  for p = 0 to t.n - 1 do
    if (not (Pid.equal p t.self)) && suspected p then incr suspects
  done;
  let alive_others = max 1 (t.n - 1 - !suspects) in
  (* Majority-gated catch-up: transfer the missing suffix only when more
     than half of the live peers advertise a longer log, and from a peer
     advertising the median such length — one corrupted replica
     advertising a scrambled-huge log cannot drag anyone along. *)
  let longer = ref [] in
  for p = 0 to t.n - 1 do
    if
      (not (Pid.equal p t.self))
      && (not (suspected p))
      && t.peer_len.(p) > t.committed
    then longer := (t.peer_len.(p), p) :: !longer
  done;
  let cnt = List.length !longer in
  if 2 * cnt > alive_others then begin
    let sorted = List.sort compare !longer in
    let _, peer = List.nth sorted (cnt / 2) in
    push (request_pull t peer ~from:t.committed)
  end;
  (* Cross-replica repair: a replica adopts another camp's log only when
     the largest group of conflicting peers that agree {e among
     themselves} outweighs its own camp (itself plus the peers agreeing
     with it) — so the divergent minority pulls from the correct
     majority, and the majority never adopts a corrupted log just
     because a suspected process shrank the denominator. Digest ties
     (camps of equal weight) are broken by the camps' advertised
     checkpoint digests, so exactly one side moves. A KV conflict under
     an agreeing log is repaired by replaying our own log. *)
  if t.style.recover then begin
    if not (Pidset.is_empty t.log_conflict) then begin
      let groups = Hashtbl.create 8 in
      Pidset.iter
        (fun p ->
          let key = (t.peer_cp.(p), t.peer_cpd.(p)) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key (p :: prev))
        t.log_conflict;
      (* Largest camp wins; equal-sized camps are ordered by their
         (checkpoint, digest) key so every replica elects the same one. *)
      let best =
        Hashtbl.fold
          (fun key ps acc ->
            match acc with
            | Some (k, a)
              when List.length a > List.length ps
                   || (List.length a = List.length ps && compare k key >= 0) -> acc
            | _ -> Some (key, ps))
          groups None
      in
      let my_camp = 1 + Pidset.cardinal t.log_agree in
      (match best with
      | Some (theirs, (peer :: _ as ps)) ->
        let mine = (cp_of t t.committed, t.pdig.(cp_of t t.committed)) in
        if
          List.length ps > my_camp
          || (List.length ps = my_camp && compare theirs mine > 0)
        then begin
          if Sys.getenv_opt "TOB_DEBUG" <> None then
            Printf.eprintf
              "[t=%d] p%d log-conflict %s camp %d vs %d -> full pull from p%d (len=%d)\n%!"
              now t.self
              (Pidset.to_string t.log_conflict)
              (List.length ps) my_camp peer t.committed;
          push (request_pull t peer ~from:0);
          t.log_conflict <- Pidset.empty;
          t.kv_conflict <- Pidset.empty
        end
      | Some (_, []) | None -> ())
    end
    else if 2 * Pidset.cardinal t.kv_conflict > alive_others then begin
      rebuild_from_log t ~now;
      t.recoveries <- t.recoveries + 1;
      note t (Recovered { slots = t.committed });
      emit t ~now (Ftss_obs.Event.Recover { pid = t.self; slots = t.committed });
      t.kv_conflict <- Pidset.empty
    end
  end;
  (* Drive the current slot's consensus. *)
  pf_enter t Prof.Phase.svc_slot;
  (match t.engine with
  | None -> if has_pending t then push (enter_engine t)
  | Some eng ->
    let eng, mouts, verdict =
      Mv_consensus.tick eng ~suspected ~retransmit:t.style.retransmit
    in
    t.engine <- Some eng;
    push (map_outs t.committed mouts);
    (match verdict with
    | Mv_consensus.Decided batch -> push (decide t ~now batch)
    | Mv_consensus.Continue -> ()));
  pf_leave t;
  (* The decision-retransmission superimposition: the latest committed
     slot is re-broadcast every tick, healing single-slot gaps fast. *)
  if t.style.retransmit && t.committed > 0 then
    push
      [ Bcast (Decide { slot = t.committed - 1; batch = t.log.(t.committed - 1) }) ];
  (* The Tag heartbeat: combined round-agreement gossip (Figure 1 lifted
     to (slot, round)), catch-up beacon, and checkpoint digest exchange. *)
  let cp = cp_of t t.committed in
  push
    [
      Bcast
        (Tag
           {
             len = t.committed;
             round = (match t.engine with Some e -> Mv_consensus.round e | None -> -1);
             cp;
             cp_log = t.pdig.(cp);
             kvh = t.kvh;
             kv_d = t.kv_cp;
           });
    ];
  refresh_guard t;
  !outs

(* --- the storm scrambler --- *)

let corrupt rng t =
  let cap = Array.length t.log in
  let actions = 1 + Rng.int rng 3 in
  for _ = 1 to actions do
    match Rng.int rng 6 with
    | 0 -> t.committed <- Rng.int rng (cap + 1)
    | 1 -> t.pdig.(Rng.int rng (min (Array.length t.pdig) (t.committed + 1))) <- Rng.int rng max_int
    | 2 -> Kv.corrupt rng ~keys:65536 t.kv
    | 3 -> t.applied <- Rng.int rng (max 1 (t.committed + 1))
    | 4 -> t.engine <- Option.map (Mv_consensus.corrupt rng ~round_bound:64) t.engine
    | _ -> if t.committed > 0 then t.log.(Rng.int rng t.committed) <- [||]
  done;
  (* The guard is deliberately left stale: a transient fault does not
     maintain the redundancy that detects it. *)
  t
