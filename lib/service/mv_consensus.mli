(** One instance of multivalued ◇S consensus over arbitrary payloads —
    the §3 rotating-coordinator protocol of {!Ftss_async.Consensus},
    re-cut as a pure per-instance engine so the total-order broadcast
    layer can run one instance per log slot.

    The engine is transport-free: every API call returns the messages to
    emit as {!out} values, and the caller owns instance numbering (the
    [base] rotation offset), message routing, decision dissemination, and
    the failure detector feeding [suspected]. Rounds follow the paper:
    phase 1 estimates to the rotating coordinator, phase 2 proposal on a
    majority of estimates (locked — newest-timestamp — estimates win),
    phase 3 ack/nack, phase 4 decision on a majority of acks. The two
    self-stabilizing superimpositions appear as {!tick}'s [retransmit]
    flag (per-tick re-send of the unfinished phase, with coordinator-state
    reconstruction) and {!jump} (round agreement driven by the enclosing
    layer's gossip). *)

open Ftss_util

type 'v msg =
  | Est of { round : int; estimate : 'v; ts : int }
  | Propose of { round : int; value : 'v }
  | Ack of { round : int }
  | Nack of { round : int }

type 'v out = To of Pid.t * 'v msg | All of 'v msg

type 'v verdict = Decided of 'v | Continue

type 'v t

(** [create ~n ~self ~base ~weight ~proposal] enters round 0 of a fresh
    instance. [base] rotates the round-0 coordinator (use the instance
    number); [weight] breaks ties among equally fresh estimates (heavier
    wins; then lowest pid). Raises [Invalid_argument] when [n < 1]. *)
val create :
  n:int -> self:Pid.t -> base:int -> weight:('v -> int) -> proposal:'v ->
  'v t * 'v out list

val round : 'v t -> int
val estimate : 'v t -> 'v

(** Coordinator of round [r] in this instance. *)
val coord_of : 'v t -> int -> Pid.t

(** [receive t ~src m] processes one consensus message. A message from a
    newer round first moves the engine there (round agreement); stale
    messages are ignored. The verdict is [Decided v] only at the
    coordinator that assembled a majority of acks — the caller must
    disseminate the decision itself. *)
val receive : 'v t -> src:Pid.t -> 'v msg -> 'v t * 'v out list * 'v verdict

(** [jump t ~round] joins a newer round learned from gossip; a no-op for
    [round <= round t]. *)
val jump : 'v t -> round:int -> 'v t * 'v out list

(** [tick t ~suspected ~retransmit] performs the timer actions: nack and
    leave the round when its coordinator is suspected; when [retransmit],
    re-send the unfinished phase's messages and reconstruct lost
    coordinator bookkeeping (the paper's first superimposition). *)
val tick :
  'v t -> suspected:(Pid.t -> bool) -> retransmit:bool ->
  'v t * 'v out list * 'v verdict

(** Systemic-failure scrambling: arbitrary round and timestamp below
    [round_bound], coordinator bookkeeping lost. *)
val corrupt : Rng.t -> round_bound:int -> 'v t -> 'v t
