open Ftss_util

(* One instance of multivalued ◇S consensus — the §3 rotating-coordinator
   protocol of [Ftss_async.Consensus], re-cut as a pure per-instance
   engine over arbitrary payloads. The enclosing layer (total-order
   broadcast) owns instance numbering, message transport, decision
   dissemination, and the failure detector; this module owns one
   instance's rounds. *)

type 'v msg =
  | Est of { round : int; estimate : 'v; ts : int }
  | Propose of { round : int; value : 'v }
  | Ack of { round : int }
  | Nack of { round : int }

type 'v out = To of Pid.t * 'v msg | All of 'v msg

type 'v verdict = Decided of 'v | Continue

type 'v coord = {
  co_round : int;
  co_ests : ('v * int) Pidmap.t;
  co_proposal : 'v option;
  co_acks : Pidset.t;
}

type 'v t = {
  n : int;
  self : Pid.t;
  base : int; (* coordinator rotation offset (the instance number) *)
  weight : 'v -> int; (* tie-break preference among equally fresh estimates *)
  round : int;
  estimate : 'v;
  ts : int; (* round in which [estimate] was adopted; -1 = fresh *)
  coord : 'v coord option;
}

let round t = t.round
let estimate t = t.estimate

(* Rotating the round-0 coordinator by the instance number spreads the
   proposer role across replicas over a repeated run. *)
let coord_of t r = (((t.base + r) mod t.n) + t.n) mod t.n
let majority n = (n / 2) + 1
let fresh_coord round =
  { co_round = round; co_ests = Pidmap.empty; co_proposal = None; co_acks = Pidset.empty }

let round_of_msg = function
  | Est { round; _ } | Propose { round; _ } | Ack { round } | Nack { round } -> round

(* Entering a round: phase-1 estimate to the coordinator; a fresh
   coordination record when we are that coordinator. *)
let enter t ~round:r =
  let c = coord_of t r in
  let t = { t with round = r } in
  let t = if Pid.equal c t.self then { t with coord = Some (fresh_coord r) } else t in
  (t, [ To (c, Est { round = r; estimate = t.estimate; ts = t.ts }) ])

let create ~n ~self ~base ~weight ~proposal =
  if n < 1 then invalid_arg "Mv_consensus.create: n < 1";
  let t =
    { n; self; base; weight; round = 0; estimate = proposal; ts = -1; coord = None }
  in
  enter t ~round:0

(* Phase 2: with a majority of estimates and no proposal yet, propose the
   estimate with the newest timestamp. A timestamped (locked) estimate
   always beats a fresh one — the agreement argument; among equally fresh
   ones, prefer the heaviest by [weight], then the lowest pid. *)
let maybe_propose t co =
  match co.co_proposal with
  | Some _ -> (co, [])
  | None ->
    if Pidmap.cardinal co.co_ests < majority t.n then (co, [])
    else begin
      let better (ts', v') (ts, v) =
        ts' > ts || (ts' = ts && t.weight v' > t.weight v)
      in
      let _, (best, _) =
        Pidmap.fold
          (fun pid (v, ts) (bp, (bv, bts)) ->
            if better (ts, v) (bts, bv) then (pid, (v, ts)) else (bp, (bv, bts)))
          co.co_ests
          (Pidmap.min_binding co.co_ests)
      in
      ({ co with co_proposal = Some best }, [ All (Propose { round = co.co_round; value = best }) ])
    end

(* Phase 4: a majority of acks decides. Repeats are harmless — the
   enclosing layer's decision broadcast is idempotent. *)
let check_decide t co =
  match co.co_proposal with
  | Some v when Pidset.cardinal co.co_acks >= majority t.n -> Decided v
  | Some _ | None -> Continue

let receive t ~src m =
  (* Round agreement within the instance: any message from a newer round
     moves us there first (abandoning current work), then is processed.
     Coordinator-directed traffic (Est/Ack) is matched against the
     coordination record by {e its} round, not the process round — the
     coordinator moves to round r+1 the moment it processes its own
     proposal, while the round-r acks it must count are still in
     flight. *)
  let mr = round_of_msg m in
  let t, outs = if mr > t.round then enter t ~round:mr else (t, []) in
  match m with
  | Nack _ -> (t, outs, Continue)
  | Est { round = r; estimate; ts } ->
    if not (Pid.equal (coord_of t r) t.self) then (t, outs, Continue)
    else begin
      (* A coordinator whose record was lost to a systemic failure (or
         that is being addressed by retransmissions) reconstructs it —
         without clobbering a record for a newer round. *)
      let t =
        match t.coord with
        | None -> { t with coord = Some (fresh_coord r) }
        | Some co when co.co_round < r -> { t with coord = Some (fresh_coord r) }
        | Some _ -> t
      in
      match t.coord with
      | Some co when co.co_round = r ->
        let co = { co with co_ests = Pidmap.add src (estimate, ts) co.co_ests } in
        let co, outs' = maybe_propose t co in
        ({ t with coord = Some co }, outs @ outs', Continue)
      | Some _ | None -> (t, outs, Continue)
    end
  | Propose { round = r; value } ->
    if r < t.round then (t, outs, Continue)
    else begin
      (* Phase 3 (ack): adopt the proposal, reply, move on. *)
      let ack = To (coord_of t r, Ack { round = r }) in
      let t = { t with estimate = value; ts = r } in
      let t, outs' = enter t ~round:(r + 1) in
      (t, outs @ [ ack ] @ outs', Continue)
    end
  | Ack { round = r } ->
    (match t.coord with
    | Some co when co.co_round = r ->
      let co = { co with co_acks = Pidset.add src co.co_acks } in
      ({ t with coord = Some co }, outs, check_decide t co)
    | Some _ | None -> (t, outs, Continue))

(* The round-agreement jump driven by the enclosing layer's gossip (the
   Figure 1 superimposition, carried on the Tob [Tag] heartbeat). *)
let jump t ~round:r = if r > t.round then enter t ~round:r else (t, [])

let tick t ~suspected ~retransmit =
  (* Phase 3 (nack): give up on a suspected coordinator. *)
  let c = coord_of t t.round in
  let t, outs =
    if (not (Pid.equal c t.self)) && suspected c then
      let nack = To (c, Nack { round = t.round }) in
      let t, outs = enter t ~round:(t.round + 1) in
      (t, nack :: outs)
    else (t, [])
  in
  if not retransmit then (t, outs, Continue)
  else begin
    (* The per-tick superimposition: re-send every message of the
       unfinished phase and reconstruct lost coordinator state. *)
    let t =
      if Pid.equal (coord_of t t.round) t.self && t.coord = None then
        { t with coord = Some (fresh_coord t.round) }
      else t
    in
    let outs =
      outs
      @ [ To (coord_of t t.round, Est { round = t.round; estimate = t.estimate; ts = t.ts }) ]
    in
    match t.coord with
    | Some co ->
      let outs =
        match co.co_proposal with
        | Some v -> outs @ [ All (Propose { round = co.co_round; value = v }) ]
        | None -> outs
      in
      (t, outs, check_decide t co)
    | None -> (t, outs, Continue)
  end

(* Systemic-failure scrambling: arbitrary round/timestamp within bounds,
   lost coordinator bookkeeping. The estimate payload is kept (the
   adversary relocates references, it does not fabricate well-typed
   batches) — a scrambled [ts] is already enough to make a stale estimate
   look locked and force a pre-stabilization disagreement. *)
let corrupt rng ~round_bound t =
  {
    t with
    round = Rng.int rng (max 1 round_bound);
    ts = (if Rng.chance rng 0.5 then Rng.int rng (max 1 round_bound) else -1);
    coord = None;
  }
