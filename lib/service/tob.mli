(** Self-stabilizing total-order broadcast (the middle of the service
    tower): a replicated log built from one {!Mv_consensus} instance per
    slot, with the redundancy and repair machinery that lets a replica
    recover a consistent log and state-machine suffix after arbitrary
    transient corruption.

    The module is transport-free like the layers below it: [submit],
    [deliver] and [tick] return the messages to emit, the caller (the
    {!Service} simulation driver) owns routing, timers and the failure
    detector. Self-stabilization rests on four mechanisms, each cheap on
    the fault-free path:

    - an O(1) {e integrity guard} hashed over the replica's summary
      fields, checked on every entry point — a scrambled counter or
      digest is caught on the next step;
    - a {e cyclic audit} (every [audit_interval] ticks) re-deriving the
      KV digest from the table and one window of log content against the
      stored prefix digests, catching corruptions the guard cannot see;
    - {e checkpoint gossip} ([Tag] heartbeats carrying log length,
      consensus round, and checkpoint digests) for round agreement,
      catch-up, and cross-replica divergence detection;
    - {e majority-directed repair}: a replica whose checkpoint digest
      disagrees with a majority of live peers pulls a full state
      transfer; a KV-only divergence is repaired by local replay.

    Local recovery always rebuilds every derived structure from the log
    content and re-digests honestly, so a corruption that survives local
    repair (e.g. a blanked log entry) surfaces as a cross-replica digest
    conflict and is healed by state transfer from the correct majority. *)

open Ftss_util

(** [retransmit] is the paper's per-tick retransmission superimposition
    (and the per-tick re-broadcast of the latest decision); [recover]
    enables the guard/audit/conflict-repair machinery. The baseline style
    disables both — the ablation arm of experiment E14. *)
type style = { retransmit : bool; recover : bool }

val self_stabilizing : style
val baseline : style

type batch = Kv.op array

type msg =
  | Cons of { slot : int; m : batch Mv_consensus.msg }
      (** consensus traffic for one slot *)
  | Decide of { slot : int; batch : batch }  (** decision dissemination *)
  | Fwd of batch  (** client-op forwarding to all replicas *)
  | Tag of { len : int; round : int; cp : int; cp_log : int; kvh : int; kv_d : int }
      (** the gossip heartbeat: log length, current consensus round,
          checkpoint height + log digest there, KV snapshot height +
          digest there *)
  | Pull_req of { from : int }
  | Pull_rep of { from : int; entries : batch array }

type out = Send of Pid.t * msg | Bcast of msg

(** Measurement journal drained by the driver after each call; times are
    supplied by the driver, so notes carry only protocol facts. *)
type note =
  | Submitted of { ops : int }
  | Committed of { slot : int; ops : int }
  | Applied of { slot : int; digest : int }
  | Recovered of { slots : int }

type t

(** [checkpoint] is the digest-gossip granularity in slots; [id_hint]
    pre-sizes the op-id bitsets. [profile] attributes the replica's
    work to the span profiler's [svc_*] phases on the given lane:
    [svc_slot] (consensus stepping, decide, apply), [svc_integrity]
    (the per-step guard check), [svc_audit] (the cyclic deep audit),
    [svc_catchup] (pull protocol both sides), [svc_gossip] (Tag
    heartbeat handling). Unset, the instrumentation is a single option
    test per site. *)
val create :
  ?obs:Ftss_obs.Obs.t ->
  ?profile:Ftss_profile.Profile.lane ->
  n:int ->
  self:Pid.t ->
  style:style ->
  batch_max:int ->
  ?checkpoint:int ->
  ?id_hint:int ->
  unit ->
  t

(** [submit t ~now ops] enqueues client operations at this replica and
    forwards them to the others. *)
val submit : t -> now:int -> Kv.op array -> out list

val deliver : t -> now:int -> src:Pid.t -> msg -> out list

(** [tick t ~now ~suspected] runs the timer: integrity check, audit,
    conflict repair, consensus progress for the current slot, decision
    re-broadcast, and the [Tag] heartbeat. *)
val tick : t -> now:int -> suspected:(Pid.t -> bool) -> out list

val committed : t -> int
val applied : t -> int

(** Chained digest of the committed log prefix (the maintained field). *)
val log_digest : t -> int

(** Chained digest recomputed from log content — ground truth for the
    convergence oracle. *)
val content_digest : t -> int

(** Incrementally maintained KV digest. *)
val kv_digest : t -> int

(** KV digest recomputed from the table — ground truth. *)
val kv_recomputed : t -> int

val recoveries : t -> int
val log_entry : t -> int -> batch
val kv : t -> Kv.t
val drain_notes : t -> note list

(** Systemic-failure scrambling: counters, prefix digests, KV table, log
    entries, bitsets, and the engine, chosen at random — the guard is
    deliberately left stale. Pending-queue contents are never destroyed
    (the adversary corrupts replica state, it does not retract client
    submissions). *)
val corrupt : Rng.t -> t -> t
