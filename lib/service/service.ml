open Ftss_util
module Sim = Ftss_async.Sim
module Esfd = Ftss_async.Esfd
module Ewfd = Ftss_async.Ewfd

(* The top of the tower: Tob replicas + the Esfd/Ewfd failure-detector
   stack wired into the Sim engine, driven by a precomputed Workload, hit
   by a configurable fault mix (crashes, omission windows, mid-run
   corruption storms), and measured end to end — commit latency
   percentiles, throughput, convergence, and recovery time per storm. *)

type faults = {
  storms : (int * int) list;  (* (time, victims): corruption storms *)
  omission : (int * int * float) list;  (* (t0, t1, p): drop windows *)
  crashes : (Pid.t * int) list;
}

let no_faults = { storms = []; omission = []; crashes = [] }

type params = {
  n : int;
  seed : int;
  style : Tob.style;
  batch_max : int;
  gst : int;
  tick_interval : int;
  horizon : int;  (* 0 = workload window + drain margin *)
  faults : faults;
}

let default_params ~n ~seed =
  {
    n;
    seed;
    style = Tob.self_stabilizing;
    batch_max = 768;
    gst = 200;
    tick_interval = 10;
    horizon = 0;
    faults = no_faults;
  }

type percentiles = { p50 : float; p90 : float; p99 : float; p999 : float; max : float }

type report = {
  n : int;
  style : Tob.style;
  submitted : int;
  committed_slots : int;  (* min over live replicas *)
  committed_ops : int;  (* reference replica, duplicates included *)
  unique_ops : int;  (* distinct op ids in the reference log *)
  converged : bool;  (* equal (len, log digest, KV digest) on all live *)
  slots_checked : int;  (* per-slot apply-digest agreement ... *)
  slots_agreeing : int;  (* ... across live replicas *)
  log_digest : int;  (* content-recomputed, reference replica *)
  kv_digest : int;  (* table-recomputed, reference replica *)
  end_time : int;
  wall_seconds : float;
  latency : percentiles option;  (* arrival -> applied-at-origin, ticks *)
  measured_ops : int;
  throughput : float;  (* unique committed ops per wall second *)
  recoveries : int;  (* recovery episodes summed over live replicas *)
  storm_recovery : (int * int option * int option) list;
      (* per storm: (time, applying again after, last repair after) *)
  delivered : int;
  dropped : int;
}

(* Digest of the deterministic portion of a report (wall-clock excluded) —
   pinned by the golden determinism test. *)
let report_digest r =
  List.fold_left Kv.chain 0
    [
      r.submitted;
      r.committed_slots;
      r.committed_ops;
      r.unique_ops;
      (if r.converged then 1 else 0);
      r.slots_agreeing;
      r.log_digest;
      r.kv_digest;
      r.end_time;
    ]

(* --- the Sim process --- *)

type state = { tob : Tob.t; mutable fd : Esfd.t; mutable cursor : int }
type msg = Fd of Esfd.msg | Tb of Tob.msg

let send_outs ctx outs =
  List.iter
    (function
      | Tob.Send (dst, m) -> Sim.send ctx dst (Tb m)
      | Tob.Bcast m -> Sim.broadcast ctx (Tb m))
    outs

let flush_notes ctx tob = List.iter (Sim.observe ctx) (Tob.drain_notes tob)

let process ?obs ?profile ~wl ~params:(params : params) ~oracle () =
  {
    Sim.name = "service";
    init =
      (fun p ->
        {
          tob =
            Tob.create ?obs ?profile ~n:params.n ~self:p ~style:params.style
              ~batch_max:params.batch_max ~id_hint:(Workload.total wl) ();
          fd = Esfd.create ~n:params.n;
          cursor = 0;
        });
    on_message =
      (fun ctx s ~src m ->
        (match m with
        | Fd fm -> s.fd <- Esfd.receive s.fd fm
        | Tb tm ->
          send_outs ctx (Tob.deliver s.tob ~now:(Sim.now ctx) ~src tm);
          flush_notes ctx s.tob);
        s);
    on_tick =
      (fun ctx s ->
        let now = Sim.now ctx and self = Sim.self ctx in
        (* Client arrivals attached to this replica since the last tick. *)
        let ids = Workload.per_replica wl self in
        let fresh = ref [] in
        while s.cursor < Array.length ids && Workload.arrival wl ids.(s.cursor) <= now do
          fresh := Workload.op wl ids.(s.cursor) :: !fresh;
          s.cursor <- s.cursor + 1
        done;
        if !fresh <> [] then
          send_outs ctx (Tob.submit s.tob ~now (Array.of_list (List.rev !fresh)));
        (* The failure-detector stack. *)
        let fd, fmsg =
          Esfd.tick s.fd ~self
            ~detect:(fun subject -> Ewfd.detect oracle ~at:now ~observer:self ~subject)
        in
        s.fd <- fd;
        Sim.broadcast ctx (Fd fmsg);
        (* The protocol timer. *)
        send_outs ctx (Tob.tick s.tob ~now ~suspected:(Esfd.suspected s.fd));
        flush_notes ctx s.tob;
        s);
  }

(* --- fault injection --- *)

let storm_entries ~n ~seed faults =
  List.concat
    (List.mapi
       (fun i (time, victims) ->
         let rng = Rng.create (Kv.mix seed (0xA11 + i)) in
         let pids = Rng.sample rng (min victims n) (List.init n Fun.id) in
         List.map
           (fun p ->
             let prng = Rng.split rng in
             ( time,
               p,
               fun (s : state) ->
                 ignore (Tob.corrupt prng s.tob);
                 s.fd <- Esfd.corrupt prng ~num_bound:64 s.fd;
                 s ))
           pids)
       faults.storms)

(* Hash-based omission: deterministic in (seed, time, src, dst), so the
   drop pattern is replayable without consuming the delay generator. *)
let drop_fn ~seed windows =
  match windows with
  | [] -> None
  | _ ->
    Some
      (fun ~time ~src ~dst ->
        List.exists
          (fun (t0, t1, prob) ->
            time >= t0 && time <= t1
            && float_of_int (Kv.mix (Kv.mix seed time) (Kv.mix src dst) land 0xFFFF)
               /. 65536.0
               < prob)
          windows)

(* --- measurement --- *)

(* Log-bucketed streaming quantiles (constant memory, ~6% relative
   error) instead of sorting the full sample array: unbounded runs cost
   the same as short ones, and the estimate is unbiased across the whole
   run rather than privileging whichever prefix fit a reservoir. *)
let percentiles_of h =
  if Ftss_obs.Metrics.lhist_count h = 0 then None
  else
    Some
      {
        p50 = Ftss_obs.Metrics.lpercentile h 50.;
        p90 = Ftss_obs.Metrics.lpercentile h 90.;
        p99 = Ftss_obs.Metrics.lpercentile h 99.;
        p999 = Ftss_obs.Metrics.lpercentile h 99.9;
        max = Ftss_obs.Metrics.lhist_max h;
      }

(* [run_measured] is [run] plus the raw latency histogram, which the
   sharded driver merges across shards before taking percentiles
   (percentiles of percentiles would be wrong). *)
let run_measured ?obs ?profile ~wl (params : params) =
  let n = params.n in
  let horizon =
    if params.horizon > 0 then params.horizon else (Workload.spec wl).window + 3000
  in
  let config =
    {
      Sim.n;
      seed = params.seed;
      gst = params.gst;
      delay_before_gst = (1, 40);
      delay_after_gst = (1, 4);
      tick_interval = params.tick_interval;
      crashes = params.faults.crashes;
      horizon;
    }
  in
  let crashed p = List.assoc_opt p params.faults.crashes in
  let trusted =
    let rec first p = if crashed p = None then p else first (p + 1) in
    first 0
  in
  let oracle =
    Ewfd.make (Rng.create (params.seed + 7)) ~n ~crashed ~gst:params.gst ~trusted
      ~noise:0.05
  in
  let corrupt_at = storm_entries ~n ~seed:params.seed params.faults in
  let drop = drop_fn ~seed:params.seed params.faults.omission in
  let t0 = Sys.time () in
  let result =
    Sim.run ?obs ?profile ~corrupt_at ?drop config
      (process ?obs ?profile ~wl ~params ~oracle ())
  in
  let wall_seconds = Sys.time () -. t0 in
  (* Survivors and the reference replica (lowest live pid). *)
  let live = ref [] in
  Array.iteri
    (fun p s -> match s with Some s -> live := (p, s) :: !live | None -> ())
    result.Sim.final_states;
  let live = List.rev !live in
  if Sys.getenv_opt "TOB_DEBUG" <> None then
    List.iter
      (fun (p, s) ->
        Printf.eprintf "p%d: committed=%d content=%d kvrec=%d recov=%d\n%!" p
          (Tob.committed s.tob) (Tob.content_digest s.tob) (Tob.kv_recomputed s.tob)
          (Tob.recoveries s.tob))
      live;
  let reference = match live with (_, s) :: _ -> Some s | [] -> None in
  let committed_slots =
    List.fold_left
      (fun acc (_, s) -> min acc (Tob.committed s.tob))
      max_int live
    |> fun m -> if m = max_int then 0 else m
  in
  let summaries =
    List.map
      (fun (_, s) ->
        (Tob.committed s.tob, Tob.content_digest s.tob, Tob.kv_recomputed s.tob))
      live
  in
  let converged =
    match summaries with
    | [] -> false
    | first :: rest -> List.for_all (( = ) first) rest
  in
  (* Reference log: op -> slot (first occurrence), plus op accounting. *)
  let total = Workload.total wl in
  let slot_of = Array.make total (-1) in
  let committed_ops = ref 0 and unique_ops = ref 0 in
  (match reference with
  | Some s ->
    for slot = 0 to Tob.committed s.tob - 1 do
      Array.iter
        (fun (o : Kv.op) ->
          incr committed_ops;
          if o.Kv.id >= 0 && o.Kv.id < total && slot_of.(o.Kv.id) < 0 then begin
            slot_of.(o.Kv.id) <- slot;
            incr unique_ops
          end)
        (Tob.log_entry s.tob slot)
    done
  | None -> ());
  (* Scan the observation log once: first/last apply time and last apply
     digest per (replica, slot), submissions, recovery episodes. *)
  let max_slot = ref (-1) in
  List.iter
    (function
      | _, _, Tob.Applied { slot; _ } -> if slot > !max_slot then max_slot := slot
      | _ -> ())
    result.Sim.log;
  let slots = !max_slot + 1 in
  let first_apply = Array.make_matrix n (max 1 slots) max_int in
  let last_apply_digest = Array.make_matrix n (max 1 slots) 0 in
  let submitted = ref 0 in
  let recover_times = ref [] in
  List.iter
    (fun (time, pid, note) ->
      match note with
      | Tob.Submitted { ops } -> submitted := !submitted + ops
      | Tob.Applied { slot; digest } ->
        if time < first_apply.(pid).(slot) then first_apply.(pid).(slot) <- time;
        last_apply_digest.(pid).(slot) <- digest
      | Tob.Recovered _ -> recover_times := (time, pid) :: !recover_times
      | Tob.Committed _ -> ())
    result.Sim.log;
  let live_pids = List.map fst live in
  (* Per-slot convergence: the digest of the last application of each
     fully shared slot must agree across live replicas. *)
  let slots_checked = min committed_slots slots in
  let slots_agreeing = ref 0 in
  for s = 0 to slots_checked - 1 do
    match live_pids with
    | [] -> ()
    | p0 :: rest ->
      if
        List.for_all
          (fun p -> last_apply_digest.(p).(s) = last_apply_digest.(p0).(s))
          rest
      then incr slots_agreeing
  done;
  (* End-to-end latency: arrival -> first application at the origin
     replica (any live replica when the origin crashed or lags). *)
  let lat = Ftss_obs.Metrics.lhist_create () in
  let measured = ref 0 in
  for id = 0 to total - 1 do
    let s = slot_of.(id) in
    if s >= 0 && s < slots then begin
      let origin = Workload.origin wl id in
      let t_apply =
        if first_apply.(origin).(s) < max_int then first_apply.(origin).(s)
        else
          List.fold_left (fun acc p -> min acc first_apply.(p).(s)) max_int live_pids
      in
      if t_apply < max_int then begin
        Ftss_obs.Metrics.lobserve lat (float_of_int (max 0 (t_apply - Workload.arrival wl id)));
        incr measured
      end
    end
  done;
  (* Recovery after each storm: when does every live replica apply again,
     and when does the last repair episode in the storm's window end? *)
  let storm_times =
    List.sort_uniq compare (List.map fst params.faults.storms)
  in
  let bound_after t =
    match List.find_opt (fun t' -> t' > t) storm_times with
    | Some t' -> t'
    | None -> result.Sim.end_time + 1
  in
  let storm_recovery =
    List.map
      (fun t ->
        let resumed =
          List.fold_left
            (fun acc p ->
              let first =
                let best = ref max_int in
                for s = 0 to slots - 1 do
                  if first_apply.(p).(s) > t && first_apply.(p).(s) < !best then
                    best := first_apply.(p).(s)
                done;
                !best
              in
              match acc with
              | None -> None
              | Some worst -> if first = max_int then None else Some (max worst first))
            (Some 0) live_pids
        in
        let healed =
          List.fold_left
            (fun acc (rt, _) ->
              if rt > t && rt < bound_after t then
                Some (max (Option.value ~default:0 acc) (rt - t))
              else acc)
            None !recover_times
        in
        (t, Option.map (fun r -> r - t) resumed, healed))
      storm_times
  in
  let recoveries = List.fold_left (fun acc (_, s) -> acc + Tob.recoveries s.tob) 0 live in
  let log_digest, kv_digest =
    match reference with
    | Some s -> (Tob.content_digest s.tob, Tob.kv_recomputed s.tob)
    | None -> (0, 0)
  in
  ( {
      n;
      style = params.style;
      submitted = !submitted;
      committed_slots;
      committed_ops = !committed_ops;
      unique_ops = !unique_ops;
      converged;
      slots_checked;
      slots_agreeing = !slots_agreeing;
      log_digest;
      kv_digest;
      end_time = result.Sim.end_time;
      wall_seconds;
      latency = percentiles_of lat;
      measured_ops = !measured;
      throughput =
        (if wall_seconds > 0.0 then float_of_int !unique_ops /. wall_seconds else 0.0);
      recoveries;
      storm_recovery;
      delivered = result.Sim.delivered;
      dropped = result.Sim.dropped_after_crash + result.Sim.dropped_by_adversary;
    },
    lat )

let run ?obs ?profile ~wl (params : params) =
  fst (run_measured ?obs ?profile ~wl params)

(* --- sharding --- *)

(* [shard_spec spec ~shards ~shard] carves shard [shard]'s slice out of
   the workload: ops and sessions split as evenly as integer division
   allows (the first [ops mod shards] shards take one extra op), and the
   generator seed is mixed per shard so shards draw distinct key/op
   streams. The split depends only on (spec, shards, shard) — never on
   how many domains execute it. *)
let shard_spec (spec : Workload.spec) ~shards ~shard =
  let slice total i = (total / shards) + if i < total mod shards then 1 else 0 in
  {
    spec with
    Workload.ops = slice spec.Workload.ops shard;
    sessions = max 1 (slice spec.Workload.sessions shard);
    seed = Kv.mix spec.Workload.seed (0x5A0 + shard);
  }

let shard_params (params : params) ~shard =
  { params with seed = Kv.mix params.seed (0x5B0 + shard) }

(* Merge a fixed-order array of shard reports into one. Counters add;
   [converged] requires every shard; digests chain in shard order (the
   order is the shard index, so the merged digest is independent of
   execution interleaving); latency histograms merge losslessly before
   percentiles are taken; storm recovery takes the worst shard per storm
   time. Wall time is the caller-measured parallel section, so merged
   throughput reflects actual elapsed time rather than a sum of
   per-shard clocks. *)
let merge_reports ~(params : params) ~wall_seconds
    (parts : (report * Ftss_obs.Metrics.lhist) array) =
  let sum f = Array.fold_left (fun acc (r, _) -> acc + f r) 0 parts in
  let fmax f =
    Array.fold_left (fun acc (r, _) -> max acc (f r)) min_int parts
  in
  let chain f =
    Array.fold_left (fun acc (r, _) -> Kv.chain acc (f r)) 0 parts
  in
  let lat = Ftss_obs.Metrics.lhist_create () in
  Array.iter (fun (_, l) -> Ftss_obs.Metrics.lhist_merge lat l) parts;
  let storm_recovery =
    let times =
      List.sort_uniq compare (List.map fst params.faults.storms)
    in
    List.map
      (fun t ->
        let worst pick =
          Array.fold_left
            (fun acc (r, _) ->
              match List.assoc_opt t (List.map (fun (t', a, b) -> (t', (a, b))) r.storm_recovery) with
              | None -> acc
              | Some entry -> (
                let v = pick entry in
                match (acc, v) with
                | None, _ | _, None -> None
                | Some a, Some b -> Some (max a b)))
            (Some 0) parts
        in
        (t, worst fst, worst snd))
      times
  in
  let unique_ops = sum (fun r -> r.unique_ops) in
  ( {
      n = params.n;
      style = params.style;
      submitted = sum (fun r -> r.submitted);
      committed_slots = sum (fun r -> r.committed_slots);
      committed_ops = sum (fun r -> r.committed_ops);
      unique_ops;
      converged = Array.for_all (fun (r, _) -> r.converged) parts;
      slots_checked = sum (fun r -> r.slots_checked);
      slots_agreeing = sum (fun r -> r.slots_agreeing);
      log_digest = chain (fun r -> r.log_digest);
      kv_digest = chain (fun r -> r.kv_digest);
      end_time = fmax (fun r -> r.end_time);
      wall_seconds;
      latency = percentiles_of lat;
      measured_ops = sum (fun r -> r.measured_ops);
      throughput =
        (if wall_seconds > 0.0 then float_of_int unique_ops /. wall_seconds
         else 0.0);
      recoveries = sum (fun r -> r.recoveries);
      storm_recovery;
      delivered = sum (fun r -> r.delivered);
      dropped = sum (fun r -> r.dropped);
    },
    lat )

let run_sharded ?obs ?profile ?(domains = 1) ~shards ~spec (params : params) =
  if shards < 1 then invalid_arg "Service.run_sharded: shards < 1";
  let module Prof = Ftss_profile.Profile in
  let shard_lane i =
    Option.map (fun t -> Prof.lane t (Printf.sprintf "svc.shard%d" i)) profile
  in
  let thunks =
    Array.init shards (fun i ->
        let lane = shard_lane i in
        fun () ->
          let wl = Workload.create ~n:params.n (shard_spec spec ~shards ~shard:i) in
          (* No [obs] inside shards: the observability pipeline is not
             domain-safe, and per-shard streams would interleave
             nondeterministically. Shard summaries are exported as gauges
             after the merge instead. Profiler lanes are domain-safe by
             construction (one lane per shard, each owned by whichever
             domain claims the shard). *)
          run_measured ?profile:lane ~wl (shard_params params ~shard:i))
  in
  let t0 = Unix.gettimeofday () in
  let parts = Sim.run_shards ~domains ?profile thunks in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let merge_lane = Option.map (fun t -> Prof.lane t "svc.main") profile in
  (match merge_lane with Some l -> Prof.enter l Prof.Phase.chunk_merge | None -> ());
  let report, _ = merge_reports ~params ~wall_seconds parts in
  (match merge_lane with Some l -> ignore (Prof.leave l) | None -> ());
  (match obs with
  | None -> ()
  | Some o ->
    Ftss_obs.Obs.with_metrics o (fun m ->
        let set name v =
          Ftss_obs.Metrics.set (Ftss_obs.Metrics.gauge m name) v
        in
        set "service.shards" (float_of_int shards);
        set "service.domains" (float_of_int domains);
        Array.iteri
          (fun i ((r : report), _) ->
            let g fmt = Printf.sprintf fmt i in
            set (g "shard.%d.unique_ops") (float_of_int r.unique_ops);
            set (g "shard.%d.committed_slots") (float_of_int r.committed_slots);
            set (g "shard.%d.end_time") (float_of_int r.end_time);
            set (g "shard.%d.converged") (if r.converged then 1.0 else 0.0);
            set (g "shard.%d.wall_seconds") r.wall_seconds)
          parts));
  report

let pp_report ppf r =
  let pp_lat ppf = function
    | None -> Format.fprintf ppf "n/a"
    | Some l ->
      Format.fprintf ppf "p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f" l.p50 l.p90
        l.p99 l.p999 l.max
  in
  Format.fprintf ppf
    "@[<v>service n=%d style=%s@,\
     ops: %d submitted, %d unique committed (%d total) over %d slots@,\
     converged=%b slots agreeing=%d/%d@,\
     latency (ticks): %a@,\
     throughput: %.0f committed ops/s (wall %.2fs, sim end t=%d)@,\
     recoveries=%d delivered=%d dropped=%d@]"
    r.n
    (if r.style.Tob.recover then "self-stabilizing" else "baseline")
    r.submitted r.unique_ops r.committed_ops r.committed_slots r.converged
    r.slots_agreeing r.slots_checked pp_lat r.latency r.throughput r.wall_seconds
    r.end_time r.recoveries r.delivered r.dropped
