(** The service-tower driver: {!Tob} replicas plus the {!Ftss_async.Esfd}
    / {!Ftss_async.Ewfd} failure-detector stack wired into the
    {!Ftss_async.Sim} engine, driven by a precomputed {!Workload}, hit by
    a configurable fault mix (crashes, omission windows, mid-run
    corruption storms), and measured end to end. *)

open Ftss_util

type faults = {
  storms : (int * int) list;
      (** corruption storms: at each [(time, victims)], that many
          randomly chosen replicas have their whole protocol state
          (log, KV, engine, detector) scrambled *)
  omission : (int * int * float) list;
      (** message-omission windows [(t0, t1, p)]: every non-self message
          in the window is dropped with probability [p], hash-determined *)
  crashes : (Pid.t * int) list;
}

val no_faults : faults

type params = {
  n : int;
  seed : int;
  style : Tob.style;
  batch_max : int;
  gst : int;
  tick_interval : int;
  horizon : int;  (** 0 = workload window + drain margin *)
  faults : faults;
}

val default_params : n:int -> seed:int -> params

type percentiles = { p50 : float; p90 : float; p99 : float; p999 : float; max : float }

type report = {
  n : int;
  style : Tob.style;
  submitted : int;
  committed_slots : int;  (** min over live replicas *)
  committed_ops : int;  (** reference replica, duplicates included *)
  unique_ops : int;  (** distinct op ids in the reference log *)
  converged : bool;
      (** live replicas agree on log length, content-recomputed log
          digest, and table-recomputed KV digest *)
  slots_checked : int;
  slots_agreeing : int;
      (** slots whose last-apply digest agrees across live replicas *)
  log_digest : int;
  kv_digest : int;
  end_time : int;
  wall_seconds : float;
  latency : percentiles option;
      (** arrival to first application at the origin replica, in ticks *)
  measured_ops : int;
  throughput : float;  (** unique committed ops per wall-clock second *)
  recoveries : int;
  storm_recovery : (int * int option * int option) list;
      (** per storm time: ticks until every live replica applies again,
          and ticks until the last repair episode in the storm's window *)
  delivered : int;
  dropped : int;
}

(** Digest of the deterministic portion of a report (wall-clock excluded)
    — pinned by the golden determinism test. *)
val report_digest : report -> int

(** [run ?obs ?profile ~wl params] executes one full workload through
    the tower and measures it. With [obs], every layer (engine,
    detector, service) emits its event stream. With [profile], the
    engine's [sim_*] phases and every replica's [svc_*] phases are
    attributed to the given span-profiler lane (replica spans nest
    inside the engine's handler frames, so self-times stay disjoint);
    unset, the instrumentation is one option test per site. *)
val run :
  ?obs:Ftss_obs.Obs.t ->
  ?profile:Ftss_profile.Profile.lane ->
  wl:Workload.t ->
  params ->
  report

(** [run_sharded ?obs ?domains ~shards ~spec params] partitions the
    workload spec into [shards] independent replica towers (ops and
    sessions split evenly, per-shard generator and simulation seeds mixed
    from the base seeds) and executes them on [domains] domains via
    {!Ftss_async.Sim.run_shards}. The partition and every shard's
    simulation depend only on [(spec, params, shards)] — [domains] is
    pure executor parallelism — so the merged report's
    {!report_digest} is bit-identical for any domain count.

    The merged report sums counters across shards, requires [converged]
    on every shard, chains log/KV digests in shard order, takes the
    latest [end_time], merges latency histograms losslessly before
    computing percentiles, and reports the worst shard per storm time.
    [wall_seconds] and [throughput] measure the whole parallel section
    with a real-time clock, so domain scaling is visible.

    With [obs], per-shard summary gauges ([shard.<i>.unique_ops],
    [shard.<i>.committed_slots], [shard.<i>.end_time],
    [shard.<i>.converged], [shard.<i>.wall_seconds]) plus
    [service.shards] / [service.domains] are recorded after the merge;
    shard-internal event streams are not emitted (the pipeline is not
    domain-safe).

    With [profile], each shard's tower records onto its own lane
    ([svc.shard<i>], domain-safe because exactly one domain executes a
    shard), the executor's chunk lifecycle lands on the [shards.d<i>]
    lanes via {!Ftss_async.Sim.run_shards}, and the post-join report
    merge is spanned as [chunk_merge] on [svc.main]. *)
val run_sharded :
  ?obs:Ftss_obs.Obs.t ->
  ?profile:Ftss_profile.Profile.t ->
  ?domains:int ->
  shards:int ->
  spec:Workload.spec ->
  params ->
  report

val pp_report : Format.formatter -> report -> unit
