type kind = Get | Put | Cas | Delete

type op = { id : int; kind : kind; key : int; v1 : int; v2 : int }

(* A 62-bit avalanche mix (xxhash-style finalizer over constants that fit
   OCaml's native int), used for the per-entry digest contribution and for
   chaining log digests. Collisions are astronomically unlikely at the
   scales the workloads reach; nothing here is cryptographic. *)
let mix a b =
  let h = ref (a lxor ((b * 0x27D4_EB2F) + 0x165_667B1)) in
  h := !h lxor (!h lsr 33);
  h := !h * 0x27D4_EB2F;
  h := !h lxor (!h lsr 29);
  h := !h * 0x165_667B1;
  h := !h lxor (!h lsr 32);
  !h land max_int

let chain h x = mix (mix 0x5EED h) x

let op_digest o =
  let k = match o.kind with Get -> 0 | Put -> 1 | Cas -> 2 | Delete -> 3 in
  mix (mix (mix o.id k) (mix o.key o.v1)) o.v2

let batch_digest ops = Array.fold_left (fun h o -> chain h (op_digest o)) 1 ops

(* The replica state digest is an order-independent sum (mod 2^62) of one
   mix per live entry, so [apply] maintains it in O(1): subtract the old
   entry's contribution, add the new one's. Absent keys read as 0 but
   contribute nothing — [put k 0] and "absent" are distinct states. *)
let entry_digest key value = mix (mix 0xD1_6E57 key) value

type t = {
  tbl : (int, int) Hashtbl.t;
  mutable dig : int;
}

let create () = { tbl = Hashtbl.create 1024; dig = 0 }

let reset t =
  Hashtbl.reset t.tbl;
  t.dig <- 0

let get t key = Option.value ~default:0 (Hashtbl.find_opt t.tbl key)
let mem t key = Hashtbl.mem t.tbl key
let cardinal t = Hashtbl.length t.tbl
let digest t = t.dig

let set t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some old -> t.dig <- (t.dig - entry_digest key old) land max_int
  | None -> ());
  Hashtbl.replace t.tbl key value;
  t.dig <- (t.dig + entry_digest key value) land max_int

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | Some old ->
    t.dig <- (t.dig - entry_digest key old) land max_int;
    Hashtbl.remove t.tbl key
  | None -> ()

let apply t o =
  match o.kind with
  | Get -> ()
  | Put -> set t o.key o.v1
  | Cas -> if get t o.key = o.v1 then set t o.key o.v2
  | Delete -> remove t o.key

let apply_batch t ops = Array.iter (apply t) ops

(* Fold over the table contents, ignoring the incremental field — the
   ground truth a corrupted [dig] is audited against. *)
let recompute_digest t =
  Hashtbl.fold (fun k v acc -> (acc + entry_digest k v) land max_int) t.tbl 0

(* Raw table scrambling for fault injection: entries replaced or removed
   behind the incremental digest's back, sometimes the digest field
   itself — exactly the redundancy-violating state the audit exists to
   catch. *)
let corrupt rng ~keys t =
  let open Ftss_util in
  let hits = 1 + Rng.int rng 8 in
  for _ = 1 to hits do
    if Rng.bool rng then
      Hashtbl.replace t.tbl (Rng.int rng (max 1 keys)) (Rng.int rng 1_000_000)
    else Hashtbl.remove t.tbl (Rng.int rng (max 1 keys))
  done;
  if Rng.chance rng 0.3 then t.dig <- Rng.int rng max_int

let pp_op ppf o =
  let k =
    match o.kind with Get -> "get" | Put -> "put" | Cas -> "cas" | Delete -> "del"
  in
  Format.fprintf ppf "#%d %s k%d %d/%d" o.id k o.key o.v1 o.v2
