open Ftss_util

(* The open-workload generator driving experiment E14: millions of client
   sessions issuing get/put/cas/delete operations against Zipfian keys,
   with periodic burst arrivals. Everything is precomputed from the seed
   before the simulation starts — arrival times ascend by construction,
   op ids are arrival-ordered indices — so a run is replayable and the
   generator costs nothing on the simulation's hot path. *)

type spec = {
  ops : int;  (* total operations over the run *)
  sessions : int;  (* distinct client sessions *)
  keys : int;  (* key-space size *)
  theta : float;  (* Zipf skew; 0.0 = uniform *)
  window : int;  (* arrivals span ticks [1, window] *)
  burst_every : int;  (* burst period in ticks; 0 = no bursts *)
  burst_len : int;  (* ticks per burst *)
  burst_mult : float;  (* arrival-rate multiplier during a burst *)
  seed : int;
}

let default_spec =
  {
    ops = 100_000;
    sessions = 1_000_000;
    keys = 65_536;
    theta = 0.9;
    window = 20_000;
    burst_every = 2_000;
    burst_len = 200;
    burst_mult = 4.0;
    seed = 1;
  }

type t = {
  spec : spec;
  n : int;
  ops : Kv.op array;  (* index = op id, ascending arrival time *)
  arrivals : int array;
  origins : int array;  (* replica each op's session is attached to *)
  by_origin : int array array;  (* per replica: op ids, ascending arrival *)
}

let spec t = t.spec
let total t = Array.length t.ops
let op t i = t.ops.(i)
let arrival t i = t.arrivals.(i)
let origin t i = t.origins.(i)
let per_replica t p = t.by_origin.(p)
let session_of t i = i mod t.spec.sessions

(* Zipfian sampling via the precomputed CDF and binary search. *)
let zipf_cdf ~keys ~theta =
  let cdf = Array.make keys 0.0 in
  let acc = ref 0.0 in
  for k = 0 to keys - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !acc
  done;
  cdf

let sample_key rng cdf =
  let total = cdf.(Array.length cdf - 1) in
  let r = Rng.float rng total in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) <= r then lo := mid + 1 else hi := mid
  done;
  !lo

(* Arrival schedule: each tick carries weight 1.0, or [burst_mult] inside
   a burst; op [i] arrives at the tick where the cumulative weight first
   reaches fraction [i/ops] of the total. *)
let arrival_times (spec : spec) =
  let weight t =
    if
      spec.burst_every > 0
      && (t - 1) mod spec.burst_every < spec.burst_len
    then spec.burst_mult
    else 1.0
  in
  let total_w = ref 0.0 in
  for t = 1 to spec.window do
    total_w := !total_w +. weight t
  done;
  let arrivals = Array.make spec.ops spec.window in
  let assigned = ref 0 and cum = ref 0.0 in
  for t = 1 to spec.window do
    cum := !cum +. weight t;
    let upto =
      min spec.ops (int_of_float (Float.round (float_of_int spec.ops *. !cum /. !total_w)))
    in
    for i = !assigned to upto - 1 do
      arrivals.(i) <- t
    done;
    assigned := max !assigned upto
  done;
  arrivals

let create ~n (spec : spec) =
  if n < 1 then invalid_arg "Workload.create: n < 1";
  if spec.ops < 0 then invalid_arg "Workload.create: ops < 0";
  if spec.sessions < 1 then invalid_arg "Workload.create: sessions < 1";
  if spec.keys < 1 then invalid_arg "Workload.create: keys < 1";
  if spec.window < 1 then invalid_arg "Workload.create: window < 1";
  let rng = Rng.create spec.seed in
  let cdf = zipf_cdf ~keys:spec.keys ~theta:spec.theta in
  let arrivals = arrival_times spec in
  let ops =
    Array.init spec.ops (fun id ->
        let key = sample_key rng cdf in
        let roll = Rng.float rng 1.0 in
        if roll < 0.50 then
          { Kv.id; kind = Kv.Put; key; v1 = Rng.int rng 1_000_000; v2 = 0 }
        else if roll < 0.75 then { Kv.id; kind = Kv.Get; key; v1 = 0; v2 = 0 }
        else if roll < 0.90 then
          (* A small expected value makes some compare-and-swaps succeed. *)
          { Kv.id; kind = Kv.Cas; key; v1 = Rng.int rng 16; v2 = Rng.int rng 1_000_000 }
        else { Kv.id; kind = Kv.Delete; key; v1 = 0; v2 = 0 })
  in
  let origins = Array.init spec.ops (fun id -> id mod spec.sessions mod n) in
  let counts = Array.make n 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) origins;
  let by_origin = Array.map (fun c -> Array.make c 0) counts in
  let cursors = Array.make n 0 in
  Array.iteri
    (fun id p ->
      by_origin.(p).(cursors.(p)) <- id;
      cursors.(p) <- cursors.(p) + 1)
    origins;
  { spec; n; ops; arrivals; origins; by_origin }

(* Deterministic digest over the full generated trace — the golden
   determinism test pins this for a fixed seed. *)
let digest t =
  let h = ref (Kv.mix t.n t.spec.seed) in
  Array.iteri
    (fun i o ->
      h := Kv.chain !h (Kv.mix (Kv.op_digest o) (Kv.mix t.arrivals.(i) t.origins.(i))))
    t.ops;
  !h
