open Ftss_util
module Protocol = Ftss_sync.Protocol

(* The paper prints normalize(c) = c mod final_round + 1, which maps the
   "good" initial round variable c = 1 to protocol round 2, contradicting
   Figure 2 where c = 1 executes round 1. We use the intent-preserving
   ((c - 1) mod final_round) + 1 so that c = 1..final_round maps to
   k = 1..final_round; see DESIGN.md ("Deviations"). *)
let normalize ~final_round c =
  if final_round < 1 then invalid_arg "Compiler.normalize: final_round < 1";
  ((((c - 1) mod final_round) + final_round) mod final_round) + 1

let iteration ~final_round c =
  if final_round < 1 then invalid_arg "Compiler.iteration: final_round < 1";
  (* Floor division so corrupted negative round variables land in negative
     iterations rather than crashing. *)
  let shifted = c - 1 in
  if shifted >= 0 then shifted / final_round
  else ((shifted + 1) / final_round) - 1

type ('s, 'd) state = {
  s : 's;
  c : int;
  suspects : Pidset.t;
  last_decision : 'd option;
  completed : int;
}

type 's message = { state : 's; round : int }

let compile ?(suspect_filter = true) ~n (pi : ('s, 'd) Canonical.t) =
  let pi = Canonical.check pi in
  let final_round = pi.Canonical.final_round in
  let everyone = Pidset.full n in
  let fresh p c completed last_decision =
    { s = pi.Canonical.s_init p; c; suspects = Pidset.empty; last_decision; completed }
  in
  let step p st (deliveries : 's message Protocol.delivery list) =
    (* One pass collects both delivery aggregates: S's evidence (who sent a
       message tagged with p's current round number) and the Figure 1
       round-agreement maximum. *)
    let rec scan heard max_round = function
      | [] -> (heard, max_round)
      | { Protocol.src; payload } :: rest ->
        scan
          (if payload.round = st.c then Pidset.add src heard else heard)
          (if payload.round > max_round then payload.round else max_round)
          rest
    in
    let heard_current, max_round = scan Pidset.empty min_int deliveries in
    (* S: previously suspected processes, plus every process from which no
       message tagged with p's current round number arrived this round
       (whether omitted entirely or tagged with a disagreeing round). *)
    let suspects = Pidset.union st.suspects (Pidset.diff everyone heard_current) in
    (* M: the Π-level messages (sender states), with suspects filtered out.
       The [suspect_filter = false] variant exists only for the E8 ablation:
       it lets the "insidious" out-of-date messages of §2.4 through. *)
    let m =
      List.filter_map
        (fun { Protocol.src; payload } ->
          if suspect_filter && Pidset.mem src suspects then None
          else Some { Protocol.src; payload = payload.state })
        deliveries
    in
    let k = normalize ~final_round st.c in
    let s = pi.Canonical.transition p st.s m k in
    (* Round agreement superimposed on Π (Figure 1 embedded in Figure 3). *)
    let c = max_round + 1 in
    if normalize ~final_round c = 1 then
      (* Iteration boundary: the transition just executed protocol round
         [final_round]; capture its decision, then re-establish Π's initial
         state and an empty suspect set for the next iteration. *)
      fresh p c (st.completed + 1) (pi.Canonical.decide s)
    else { st with s; c; suspects }
  in
  {
    Protocol.name = pi.Canonical.name ^ "+";
    init = (fun p -> fresh p 1 0 None);
    broadcast = (fun _ st -> { state = st.s; round = st.c });
    step;
  }

let round_spec () = Spec.assumption1 ~round_of:(fun st -> st.c)

let stabilization_bound pi = 2 * pi.Canonical.final_round

let corrupt rng ~pi:_ ~n ~c_bound ~corrupt_s p st =
  let c = Rng.int rng c_bound in
  let suspects = Pidset.of_pred n (fun _ -> Rng.bool rng) in
  let s = corrupt_s rng p st.s in
  { st with s; c; suspects }
