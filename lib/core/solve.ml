module Trace = Ftss_sync.Trace
module Causality = Ftss_history.Causality

let ft_solves (spec : ('s, 'm) Spec.t) trace =
  spec.Spec.holds trace ~faulty:trace.Trace.declared_faulty

let ss_solves (spec : ('s, 'm) Spec.t) ~stabilization trace =
  if stabilization < 0 then invalid_arg "Solve.ss_solves: negative stabilization";
  let len = Trace.length trace in
  if len <= stabilization then true
  else
    let suffix = Trace.sub trace ~first:(stabilization + 1) ~last:len in
    spec.Spec.holds suffix ~faulty:Ftss_util.Pidset.empty

(* Σ is required on rounds [x + stabilization + 1 .. y] for each maximal
   coterie-stable interval [x..y]; see the .mli for the bridge to the
   paper's H1·H2·H3·H4 decomposition. *)
let obligations ~stabilization trace =
  let analysis = Causality.analyze trace in
  List.filter_map
    (fun (x, y) ->
      let first = x + stabilization + 1 in
      if first > y then None else Some (first, y))
    (Causality.stable_intervals analysis)

let ftss_solves (spec : ('s, 'm) Spec.t) ~stabilization trace =
  if stabilization < 0 then invalid_arg "Solve.ftss_solves: negative stabilization";
  List.for_all
    (fun (first, last) ->
      let sub = Trace.sub trace ~first ~last in
      spec.Spec.holds sub ~faulty:trace.Trace.declared_faulty)
    (obligations ~stabilization trace)

let stable_windows trace =
  Causality.stable_intervals (Causality.analyze trace)

let measured_per_window (spec : ('s, 'm) Spec.t) trace =
  let faulty = trace.Trace.declared_faulty in
  let intervals = stable_windows trace in
  (* Per interval [x..y]: the least d with Σ on [x+d+1 .. y]; specs in this
     repository are suffix-closed, so scan d upward. *)
  let per_interval (x, y) =
    let rec search d =
      let first = x + d + 1 in
      if first > y then y - x (* only the empty (vacuous) obligation holds *)
      else
        let sub = Trace.sub trace ~first ~last:y in
        if spec.Spec.holds sub ~faulty then d else search (d + 1)
    in
    if x >= y then 0 else search 0
  in
  List.map (fun interval -> (interval, per_interval interval)) intervals

let measured_stabilization (spec : ('s, 'm) Spec.t) trace =
  List.fold_left
    (fun worst (_, d) -> max worst d)
    0
    (measured_per_window spec trace)
