(** The paper's three notions of solving a problem, as executable checks
    over recorded histories (Definitions 2.1, 2.2 and 2.4), plus
    measurement helpers used by the benchmark harness.

    All checks are evaluated against one concrete history (the definitions
    quantify over all consistent histories; the test-suite and benchmark
    harness supply large families of adversarially- and randomly-generated
    histories). *)


(** [ft_solves spec trace] — Def. 2.1: Σ(H, F(H,Π)) on the whole history,
    for a system with process failures but no systemic failures. *)
val ft_solves : ('s, 'm) Spec.t -> ('s, 'm) Ftss_sync.Trace.t -> bool

(** [ss_solves spec ~stabilization trace] — Def. 2.2: Σ(H', ∅) where H' is
    the [stabilization]-suffix, for a system with systemic failures but no
    process failures. Vacuously true when the history is not longer than
    the stabilization time. *)
val ss_solves :
  ('s, 'm) Spec.t -> stabilization:int -> ('s, 'm) Ftss_sync.Trace.t -> bool

(** [ftss_solves spec ~stabilization trace] — Def. 2.4 (piece-wise
    stability). For every maximal interval [x..y] of prefix lengths on
    which the coterie is constant (between destabilizing events), and every
    sub-history H3 = rounds [x + stabilization + 1 .. y], Σ(H3, F) must be
    satisfied. Intervals shorter than the stabilization time impose no
    obligation.

    The sub-history quantification follows the definition: the coterie of
    H1·H2 equals the coterie of H1·H2·H3 exactly when the prefix coterie is
    constant over [|H1·H2| .. |H1·H2·H3|] (prefix coteries are monotone),
    and |H2| >= stabilization places |H1·H2| at least [stabilization]
    rounds after the latest destabilizing event. Σ is monotone under
    history restriction for every spec in this repository, so checking the
    maximal H3 suffices. *)
val ftss_solves :
  ('s, 'm) Spec.t -> stabilization:int -> ('s, 'm) Ftss_sync.Trace.t -> bool

(** [measured_stabilization spec trace] measures the protocol's actual
    stabilization time on this history: the smallest d such that for every
    maximal coterie-stable interval [x..y], Σ holds on rounds
    [x + d + 1 .. y] (an empty obligation window counts as satisfied, as
    in Def. 2.4). A protocol that ftss-solves Σ with stabilization time r
    measures at most r on every consistent history whose stable windows
    are long enough to impose obligations; a measurement equal to a
    window's full length [y - x] means no useful work was accomplished in
    that window. *)
val measured_stabilization :
  ('s, 'm) Spec.t -> ('s, 'm) Ftss_sync.Trace.t -> int

(** [measured_per_window spec trace] is the per-window decomposition of
    {!measured_stabilization}: each maximal coterie-stable interval
    [(x, y)] paired with the least [d] discharging Σ on
    [x + d + 1 .. y]. {!measured_stabilization} is the maximum of the
    measured column (0 when there are no windows). The observability
    layer emits one window-open/window-close event pair per entry. *)
val measured_per_window :
  ('s, 'm) Spec.t -> ('s, 'm) Ftss_sync.Trace.t -> ((int * int) * int) list

(** [stable_windows trace] exposes the maximal coterie-stable intervals
    [(x, y)] of the history (prefix-length coordinates), for reporting. *)
val stable_windows : ('s, 'm) Ftss_sync.Trace.t -> (int * int) list
