type phase = int

(* The closed phase registry. Adding a phase means adding it here, to the
   name table, and to the coalesced table — nowhere else; every consumer
   (summary, folded stacks, Chrome export, bench gauges, the CI coverage
   smoke) iterates the registry. *)
module Phase = struct
  let chunk_claim = 0
  let chunk_execute = 1
  let chunk_merge = 2
  let sim_pop = 3
  let sim_dispatch = 4
  let sim_deliver = 5
  let svc_slot = 6
  let svc_integrity = 7
  let svc_audit = 8
  let svc_catchup = 9
  let svc_gossip = 10
  let fuzz_seed = 11
  let fuzz_mutate = 12
  let fuzz_verify = 13
  let count = 14
  let all = List.init count Fun.id

  let names =
    [|
      "chunk_claim";
      "chunk_execute";
      "chunk_merge";
      "sim_pop";
      "sim_dispatch";
      "sim_deliver";
      "svc_slot";
      "svc_integrity";
      "svc_audit";
      "svc_catchup";
      "svc_gossip";
      "fuzz_seed";
      "fuzz_mutate";
      "fuzz_verify";
    |]

  let name p = names.(p)

  let of_name s =
    let rec go i = if i >= count then None else if names.(i) = s then Some i else go (i + 1) in
    go 0

  (* Per-event hot paths store aggregated window slices; everything else
     buffers one span per call. *)
  let coalesced_tbl =
    [|
      true (* chunk_claim: one fetch_and_add, ~20 ns *);
      false;
      false;
      true;
      true;
      true;
      true (* svc_slot: per consensus message *);
      true (* svc_integrity: per delivered entry *);
      false;
      false;
      true (* svc_gossip: per Tag message *);
      false;
      false;
      false;
    |]

  let coalesced p = coalesced_tbl.(p)
end

external now_ns : unit -> int = "ftss_profile_now_ns" [@@noalloc]

let max_depth = 64
let stride = 6 (* phase, t0, t1, minor words, major words, call count *)
let window_ns = 10_000_000 (* coalesced slices flush every ~10 ms *)

type lane = {
  l_name : string;
  group : string; (* prefix before the first '.', the Chrome process row *)
  mutable armed : bool;
  (* exact accumulators: self-time per (parent+1, phase) edge — parent -1
     is "root" — plus per-phase calls and allocation words *)
  edge_ns : int array; (* (Phase.count + 1) * Phase.count *)
  calls : int array;
  minor_w : float array;
  major_w : float array;
  (* the frame stack *)
  st_phase : int array;
  st_t0 : int array;
  st_child : int array;
  st_minor0 : float array;
  st_cminor : float array;
  st_major0 : float array;
  mutable depth : int;
  (* the span buffer: flat ints, [stride] per span *)
  mutable spans : int array;
  mutable slen : int;
  max_ints : int;
  mutable dropped : int;
  (* the open coalescing window *)
  mutable win_t0 : int;
  win_ns : int array;
  win_calls : int array;
  win_minor : float array;
  (* lane lifetime *)
  mutable t_first : int;
  mutable t_last : int;
}

type t = {
  mutable on : bool;
  mutable lanes : lane list; (* reversed creation order *)
  mu : Mutex.t;
  max_spans : int;
}

let create ?(enabled = true) ?(max_spans_per_lane = 65536) () =
  { on = enabled; lanes = []; mu = Mutex.create (); max_spans = max_spans_per_lane }

let enabled t = t.on

let set_enabled t v =
  Mutex.lock t.mu;
  t.on <- v;
  List.iter (fun l -> l.armed <- v) t.lanes;
  Mutex.unlock t.mu

let group_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let make_lane t name =
  {
    l_name = name;
    group = group_of name;
    armed = t.on;
    edge_ns = Array.make ((Phase.count + 1) * Phase.count) 0;
    calls = Array.make Phase.count 0;
    minor_w = Array.make Phase.count 0.0;
    major_w = Array.make Phase.count 0.0;
    st_phase = Array.make max_depth 0;
    st_t0 = Array.make max_depth 0;
    st_child = Array.make max_depth 0;
    st_minor0 = Array.make max_depth 0.0;
    st_cminor = Array.make max_depth 0.0;
    st_major0 = Array.make max_depth 0.0;
    depth = 0;
    spans = Array.make (min (4096 * stride) (t.max_spans * stride)) 0;
    slen = 0;
    max_ints = t.max_spans * stride;
    dropped = 0;
    win_t0 = 0;
    win_ns = Array.make Phase.count 0;
    win_calls = Array.make Phase.count 0;
    win_minor = Array.make Phase.count 0.0;
    t_first = 0;
    t_last = 0;
  }

let lane t name =
  Mutex.lock t.mu;
  let l =
    match List.find_opt (fun l -> l.l_name = name) t.lanes with
    | Some l -> l
    | None ->
      let l = make_lane t name in
      t.lanes <- l :: t.lanes;
      l
  in
  Mutex.unlock t.mu;
  l

let lane_name l = l.l_name
let lanes t = List.rev_map (fun l -> l.l_name) t.lanes

(* --- recording --- *)

let push_span l p t0 t1 minor major cnt =
  let len = Array.length l.spans in
  if l.slen + stride > len && len < l.max_ints then begin
    let spans = Array.make (min l.max_ints (2 * len)) 0 in
    Array.blit l.spans 0 spans 0 l.slen;
    l.spans <- spans
  end;
  if l.slen + stride <= Array.length l.spans then begin
    let s = l.spans and i = l.slen in
    s.(i) <- p;
    s.(i + 1) <- t0;
    s.(i + 2) <- t1;
    s.(i + 3) <- minor;
    s.(i + 4) <- major;
    s.(i + 5) <- cnt;
    l.slen <- l.slen + stride
  end
  else l.dropped <- l.dropped + cnt

(* Lay the window's per-phase self-time out as adjacent slices from the
   window start: Σ self ≤ elapsed window, so slices never overrun it. *)
let flush_window l now =
  let cursor = ref l.win_t0 in
  for p = 0 to Phase.count - 1 do
    if l.win_calls.(p) > 0 then begin
      push_span l p !cursor (!cursor + l.win_ns.(p))
        (int_of_float l.win_minor.(p))
        0 l.win_calls.(p);
      cursor := !cursor + l.win_ns.(p);
      l.win_ns.(p) <- 0;
      l.win_calls.(p) <- 0;
      l.win_minor.(p) <- 0.0
    end
  done;
  l.win_t0 <- now

let first_activity l at =
  l.t_first <- at;
  l.win_t0 <- at

let enter_at l p ~at =
  if l.armed then begin
    let d = l.depth in
    if d < max_depth then begin
      if l.t_first = 0 then first_activity l at;
      l.st_phase.(d) <- p;
      l.st_child.(d) <- 0;
      l.st_cminor.(d) <- 0.0;
      l.st_minor0.(d) <- Gc.minor_words ();
      if not (Phase.coalesced p) then
        l.st_major0.(d) <- (Gc.quick_stat ()).Gc.major_words;
      l.st_t0.(d) <- at
    end;
    l.depth <- d + 1
  end

let enter l p =
  if l.armed then enter_at l p ~at:(now_ns ())

let record l d p t0 t1 dur self dminor self_minor =
  let parent = if d > 0 then l.st_phase.(d - 1) else -1 in
  let e = ((parent + 1) * Phase.count) + p in
  l.edge_ns.(e) <- l.edge_ns.(e) + self;
  l.calls.(p) <- l.calls.(p) + 1;
  l.minor_w.(p) <- l.minor_w.(p) +. self_minor;
  if d > 0 then begin
    l.st_child.(d - 1) <- l.st_child.(d - 1) + dur;
    l.st_cminor.(d - 1) <- l.st_cminor.(d - 1) +. dminor
  end;
  if Phase.coalesced p then begin
    l.win_ns.(p) <- l.win_ns.(p) + self;
    l.win_calls.(p) <- l.win_calls.(p) + 1;
    l.win_minor.(p) <- l.win_minor.(p) +. self_minor;
    if d = 0 && t1 - l.win_t0 >= window_ns then flush_window l t1
  end
  else push_span l p t0 t1 (int_of_float dminor) 0 1;
  l.t_last <- t1

let leave l =
  if (not l.armed) || l.depth = 0 then 0
  else begin
    let d = l.depth - 1 in
    l.depth <- d;
    if d >= max_depth then 0
    else begin
      let t1 = now_ns () in
      let minor1 = Gc.minor_words () in
      let p = l.st_phase.(d) in
      let t0 = l.st_t0.(d) in
      let dur = max 0 (t1 - t0) in
      let self = max 0 (dur - l.st_child.(d)) in
      let dminor = Float.max 0.0 (minor1 -. l.st_minor0.(d)) in
      let self_minor = Float.max 0.0 (dminor -. l.st_cminor.(d)) in
      record l d p t0 t1 dur self dminor self_minor;
      if not (Phase.coalesced p) then begin
        let major1 = (Gc.quick_stat ()).Gc.major_words in
        l.major_w.(p) <- l.major_w.(p) +. Float.max 0.0 (major1 -. l.st_major0.(d))
      end;
      t1
    end
  end

let span l p f =
  enter l p;
  match f () with
  | v ->
    ignore (leave l);
    v
  | exception e ->
    ignore (leave l);
    raise e

let lap l p ~since =
  if not l.armed then since
  else begin
    let t1 = now_ns () in
    if l.t_first = 0 then first_activity l since;
    let dur = max 0 (t1 - since) in
    let d = l.depth in
    let parent = if d > 0 && d <= max_depth then l.st_phase.(d - 1) else -1 in
    let e = ((parent + 1) * Phase.count) + p in
    l.edge_ns.(e) <- l.edge_ns.(e) + dur;
    l.calls.(p) <- l.calls.(p) + 1;
    if d > 0 && d <= max_depth then l.st_child.(d - 1) <- l.st_child.(d - 1) + dur;
    if Phase.coalesced p then begin
      l.win_ns.(p) <- l.win_ns.(p) + dur;
      l.win_calls.(p) <- l.win_calls.(p) + 1;
      if d = 0 && t1 - l.win_t0 >= window_ns then flush_window l t1
    end
    else push_span l p since t1 0 0 1;
    l.t_last <- t1;
    t1
  end

(* --- export --- *)

(* Export runs after the instrumented work has quiesced; flush under the
   registry mutex so no half-open window survives into the timeline. *)
let quiesce t =
  Mutex.lock t.mu;
  let ls = List.rev t.lanes in
  Mutex.unlock t.mu;
  List.iter (fun l -> if l.t_last > l.win_t0 then flush_window l l.t_last) ls;
  ls

let self_ns_of l p =
  let acc = ref 0 in
  for parent = 0 to Phase.count do
    acc := !acc + l.edge_ns.((parent * Phase.count) + p)
  done;
  !acc

type phase_total = {
  pt_phase : phase;
  pt_calls : int;
  pt_self_ns : int;
  pt_minor_words : float;
  pt_major_words : float;
}

let totals t =
  let ls = quiesce t in
  let tot =
    List.map
      (fun p ->
        List.fold_left
          (fun acc l ->
            {
              acc with
              pt_calls = acc.pt_calls + l.calls.(p);
              pt_self_ns = acc.pt_self_ns + self_ns_of l p;
              pt_minor_words = acc.pt_minor_words +. l.minor_w.(p);
              pt_major_words = acc.pt_major_words +. l.major_w.(p);
            })
          { pt_phase = p; pt_calls = 0; pt_self_ns = 0; pt_minor_words = 0.; pt_major_words = 0. }
          ls)
      Phase.all
  in
  List.filter (fun pt -> pt.pt_calls > 0) tot
  |> List.sort (fun a b -> compare b.pt_self_ns a.pt_self_ns)

let dropped_spans t =
  List.fold_left (fun acc l -> acc + l.dropped) 0 (quiesce t)

let lane_wall l = if l.t_first = 0 then 0 else max 0 (l.t_last - l.t_first)

let wall_ns t =
  let ls = quiesce t in
  let first =
    List.fold_left
      (fun acc l -> if l.t_first > 0 then min acc l.t_first else acc)
      max_int ls
  and last = List.fold_left (fun acc l -> max acc l.t_last) 0 ls in
  if first = max_int then 0 else max 0 (last - first)

let check t =
  let ls = quiesce t in
  List.filter_map
    (fun l ->
      let sum = List.fold_left (fun acc p -> acc + self_ns_of l p) 0 Phase.all in
      let wall = lane_wall l in
      if sum > wall then Some (l.l_name, sum, wall) else None)
    ls

let chrome_json t =
  let open Ftss_obs.Json in
  let ls = quiesce t in
  let base =
    List.fold_left
      (fun acc l -> if l.t_first > 0 then min acc l.t_first else acc)
      max_int ls
  in
  let base = if base = max_int then 0 else base in
  let groups =
    List.fold_left
      (fun acc l -> if List.mem l.group acc then acc else acc @ [ l.group ])
      [] ls
  in
  let pid_of g =
    let rec go i = function
      | [] -> 0
      | g' :: _ when g' = g -> i
      | _ :: tl -> go (i + 1) tl
    in
    1 + go 0 groups
  in
  let us ns = float_of_int ns /. 1e3 in
  let events = ref [] in
  let push e = events := e :: !events in
  List.iteri
    (fun i g ->
      ignore i;
      push
        (Obj
           [
             ("ph", String "M");
             ("name", String "process_name");
             ("pid", Int (pid_of g));
             ("args", Obj [ ("name", String g) ]);
           ]))
    groups;
  List.iteri
    (fun i l ->
      push
        (Obj
           [
             ("ph", String "M");
             ("name", String "thread_name");
             ("pid", Int (pid_of l.group));
             ("tid", Int (i + 1));
             ("args", Obj [ ("name", String l.l_name) ]);
           ]))
    ls;
  List.iteri
    (fun i l ->
      let s = l.spans in
      let k = ref 0 in
      while !k < l.slen do
        let p = s.(!k) and t0 = s.(!k + 1) and t1 = s.(!k + 2) in
        let minor = s.(!k + 3) and major = s.(!k + 4) and cnt = s.(!k + 5) in
        push
          (Obj
             [
               ("ph", String "X");
               ("name", String (Phase.name p));
               ("cat", String (if Phase.coalesced p then "slice" else "span"));
               ("pid", Int (pid_of l.group));
               ("tid", Int (i + 1));
               ("ts", Float (us (t0 - base)));
               ("dur", Float (us (t1 - t0)));
               ( "args",
                 Obj
                   [
                     ("count", Int cnt);
                     ("minor_words", Int minor);
                     ("major_words", Int major);
                   ] );
             ]);
        k := !k + stride
      done)
    ls;
  Obj
    [
      ("displayTimeUnit", String "ms");
      ("traceEvents", List (List.rev !events));
    ]

let folded t =
  let ls = quiesce t in
  let buf = Buffer.create 1024 in
  List.iter
    (fun l ->
      for parent = -1 to Phase.count - 1 do
        for p = 0 to Phase.count - 1 do
          let ns = l.edge_ns.(((parent + 1) * Phase.count) + p) in
          if ns > 0 then
            if parent < 0 then
              Buffer.add_string buf (Printf.sprintf "%s;%s %d\n" l.l_name (Phase.name p) ns)
            else
              Buffer.add_string buf
                (Printf.sprintf "%s;%s;%s %d\n" l.l_name (Phase.name parent) (Phase.name p)
                   ns)
        done
      done)
    ls;
  Buffer.contents buf

let gauges t =
  let tot = totals t in
  let gs =
    List.concat_map
      (fun pt ->
        let n = Phase.name pt.pt_phase in
        [
          (* "ms", not "seconds": bench-diff's name convention would gate
             a "seconds" gauge as Lower_better, but attribution shares
             move with the workload mix — regressions surface through the
             run's committed_ops_per_sec instead. *)
          (Printf.sprintf "profile_self_ms.%s" n, float_of_int pt.pt_self_ns /. 1e6);
          (Printf.sprintf "profile_calls.%s" n, float_of_int pt.pt_calls);
          (Printf.sprintf "profile_minor_words.%s" n, pt.pt_minor_words);
        ])
      tot
  in
  gs @ [ ("profile_dropped_spans", float_of_int (dropped_spans t)) ]

let pp_summary ppf t =
  let tot = totals t in
  let total_ns = List.fold_left (fun acc pt -> acc + pt.pt_self_ns) 0 tot in
  let wall = wall_ns t in
  Format.fprintf ppf "@[<v>%-14s %12s %12s %6s %14s %14s@," "phase" "calls" "self ms"
    "%" "minor words" "major words";
  List.iter
    (fun pt ->
      Format.fprintf ppf "%-14s %12d %12.3f %5.1f%% %14.0f %14.0f@,"
        (Phase.name pt.pt_phase) pt.pt_calls
        (float_of_int pt.pt_self_ns /. 1e6)
        (if total_ns > 0 then 100. *. float_of_int pt.pt_self_ns /. float_of_int total_ns
         else 0.)
        pt.pt_minor_words pt.pt_major_words)
    tot;
  Format.fprintf ppf "profiled %.3f ms of %.3f ms wall across %d lane%s"
    (float_of_int total_ns /. 1e6)
    (float_of_int wall /. 1e6)
    (List.length (lanes t))
    (if List.length (lanes t) = 1 then "" else "s");
  (let d = dropped_spans t in
   if d > 0 then Format.fprintf ppf "@,(%d spans dropped at the buffer cap)" d);
  Format.fprintf ppf "@]"
