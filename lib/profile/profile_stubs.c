/* A monotonic nanosecond clock returned as an immediate tagged int, so
   the hot begin/end span path allocates nothing (Unix.gettimeofday both
   boxes a float and only resolves microseconds). Nanoseconds since boot
   fit comfortably in OCaml's 63-bit int (~292 years). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ftss_profile_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
