(** A span-based self-profiler: per-phase time and allocation attribution
    across the explorer, the simulator, the service tower and the fuzzer.

    The design follows the flight recorder's unboxed discipline: spans are
    begin/end monotonic-clock nanosecond ticks packed into preallocated
    flat int arrays, recorded on a per-{!lane} basis (one lane per domain
    or shard, single-writer, so the hot path takes no lock). The phase
    vocabulary is a closed registry ({!Phase}) — a fixed id per
    instrumented code path — so summaries, folded stacks and bench gauges
    have stable names across runs.

    Instrumented entry points take [?profile:Profile.lane] defaulting to
    [None], with the same zero-cost-when-unset contract as [?obs]: no
    clock reads, no allocation, nothing but a hoisted option test on the
    bare path. A lane whose profiler was created with [~enabled:false]
    additionally reduces every operation to one load-and-branch, which is
    what the E17 "profiler off" overhead gate measures.

    Two recording strategies, chosen per phase by {!Phase.coalesced}:

    - {e buffered} phases (explorer chunks, fuzz batches, audits,
      catch-up) record one span per {!enter}/{!leave} pair, with minor
      allocation words from [Gc.minor_words] and major words from
      [Gc.quick_stat] (quick_stat costs ~1 µs, affordable only on
      millisecond-scale spans);
    - {e coalesced} phases (the per-event simulator and tower paths)
      accumulate exact per-phase self-time/call/alloc counters and emit
      one aggregated timeline slice per phase per ~10 ms window, keeping
      the armed per-event cost to a few clock reads.

    Self-time bookkeeping is nesting-aware: a frame's children are
    subtracted, so per-lane self-times always sum to at most the lane's
    wall time ({!check} verifies this invariant; E17 and the unit tests
    gate on it). Spans self-include the profiler's own clock reads
    (~30 ns each, allocation-free via a [clock_gettime] stub).

    Export: {!chrome_json} (Chrome-trace/Perfetto, one process per track
    group, one thread per lane), {!folded} (flamegraph folded stacks),
    {!pp_summary} (self-time table) and {!gauges} (bench-envelope gauges,
    [profile_self_ms.<phase>] and friends, tracked informationally by
    bench-diff). Export flushes open windows and must only run
    after the instrumented work has quiesced (lanes are single-writer). *)

type t
(** A profiler: a registry of lanes plus the enabled flag. Lane creation
    serializes on an internal mutex; recording into distinct lanes from
    distinct domains is safe. *)

type lane
(** A single-writer span stream — one per domain, shard or subsystem. *)

type phase = private int
(** An id from the closed registry below. *)

module Phase : sig
  (** Explorer / sharded-runner chunk lifecycle. *)

  val chunk_claim : phase
  (** Claiming a chunk off the shared cursor ([Atomic.fetch_and_add]). *)

  val chunk_execute : phase
  (** Executing the claimed chunk's cases or shard thunks. *)

  val chunk_merge : phase
  (** Merging per-domain or per-shard results after the join. *)

  (** Simulator event loop. *)

  val sim_pop : phase  (** Popping the next event off the calendar queue. *)

  val sim_dispatch : phase  (** Tick and scramble handlers. *)

  val sim_deliver : phase  (** Message-delivery handlers. *)

  (** Service tower (Tob). *)

  val svc_slot : phase
  (** Driving the current slot's consensus engine (receive/tick/decide). *)

  val svc_integrity : phase  (** The per-entry integrity guard. *)

  val svc_audit : phase  (** The cyclic log/KV self-audit. *)

  val svc_catchup : phase  (** Pull-based catch-up and state transfer. *)

  val svc_gossip : phase  (** Tag heartbeat handling (checkpoint gossip). *)

  (** Fuzzer batches. *)

  val fuzz_seed : phase  (** Phase A: catalogue + corpus seed evaluation. *)

  val fuzz_mutate : phase  (** Generating a mutation batch. *)

  val fuzz_verify : phase  (** Evaluating a batch of genomes. *)

  val count : int
  val all : phase list
  val name : phase -> string

  val of_name : string -> phase option

  val coalesced : phase -> bool
  (** Whether the phase records aggregated window slices instead of one
      span per call (the per-event hot paths). *)
end

val create : ?enabled:bool -> ?max_spans_per_lane:int -> unit -> t
(** [create ()] makes an armed profiler. [~enabled:false] makes every
    lane operation a no-op until {!set_enabled}; lanes inherit the flag
    at creation and on every {!set_enabled}. [max_spans_per_lane]
    (default 65536) bounds each lane's span buffer — beyond it spans are
    dropped (counted in {!dropped_spans}) while the exact per-phase
    accumulators keep counting. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val lane : t -> string -> lane
(** [lane t name] gets or creates the lane [name] (serialized on the
    profiler mutex — create lanes at setup time, not on hot paths). Track
    grouping for the Chrome export uses the prefix before the first '.':
    lanes ["svc.shard0"] and ["svc.shard1"] share the ["svc"] process
    row. *)

val lane_name : lane -> string

val now_ns : unit -> int
(** Monotonic nanoseconds (allocation-free C stub). *)

val enter : lane -> phase -> unit
(** Open a frame. Frames nest (depth ≤ 64); a child's duration is
    subtracted from its parent's self-time. *)

val enter_at : lane -> phase -> at:int -> unit
(** [enter_at l p ~at] opens a frame whose begin tick is the
    already-read clock value [at] — lets adjacent spans chain off one
    clock read. *)

val leave : lane -> int
(** Close the innermost frame, record the span, and return the end tick
    (0 when disarmed) so the caller can chain it into a following
    {!lap}/{!enter_at} without re-reading the clock. *)

val span : lane -> phase -> (unit -> 'a) -> 'a
(** [span l p f] is [enter l p; f ()] with the frame closed on both
    normal return and exceptions. *)

val lap : lane -> phase -> since:int -> int
(** [lap l p ~since] records a leaf span [(since, now)] against [p] and
    returns [now] — the chained one-clock-read-per-transition form used
    by the simulator loop. Disarmed lanes return [since] unchanged. *)

(** {1 Export} *)

type phase_total = {
  pt_phase : phase;
  pt_calls : int;
  pt_self_ns : int;
  pt_minor_words : float;  (** minor-heap words allocated, self *)
  pt_major_words : float;  (** major-heap words, buffered phases only *)
}

val totals : t -> phase_total list
(** Aggregated over all lanes, phases with at least one call, largest
    self-time first. Flushes open windows. *)

val lanes : t -> string list
val dropped_spans : t -> int

val wall_ns : t -> int
(** Last activity minus first activity across all lanes. *)

val check : t -> (string * int * int) list
(** Per-lane invariant check: [(lane, sum_self_ns, lane_wall_ns)] for
    every lane whose phase self-times sum to {e more} than its wall time
    — always empty unless the bookkeeping is broken. *)

val chrome_json : t -> Ftss_obs.Json.t
(** The Chrome-trace/Perfetto JSON object ([traceEvents] with complete
    "X" events, µs timebase; process/thread metadata naming one process
    per track group and one thread per lane). Coalesced phases appear as
    aggregated window slices laid end to end inside their window. *)

val folded : t -> string
(** Folded stacks ("lane;parent;phase self_ns" per line) for
    flamegraph tools. *)

val gauges : t -> (string * float) list
(** Bench-envelope gauges: [profile_self_ms.<phase>] (exercised phases
    only), [profile_calls.<phase>], [profile_minor_words.<phase>], plus
    [profile_dropped_spans]. *)

val pp_summary : Format.formatter -> t -> unit
(** The self-time table: phase, calls, self time, share of profiled
    time, allocation. *)
