test/test_core.ml: Alcotest Canonical Compiler Faults Ftss_core Ftss_sync Ftss_util Impossibility List Pid Pidset Printf Protocol QCheck QCheck_alcotest Rng Round_agreement Runner Solve Spec Trace
