test/test_main.ml: Alcotest List Test_async Test_core Test_extensions Test_history Test_properties Test_protocols Test_sync Test_util
