test/test_history.ml: Alcotest Faults Ftss_history Ftss_sync Ftss_util List Pidset Protocol QCheck QCheck_alcotest Rng Runner
