test/test_util.ml: Alcotest Format Ftss_util Fun Gen List Pid Pidmap Pidset QCheck QCheck_alcotest Rng Stats String Table
