test/test_sync.ml: Alcotest Array Faults Format Ftss_sync Ftss_util List Pid Pidset Protocol QCheck QCheck_alcotest Rng Runner String Trace
