test/test_async.ml: Alcotest Array Consensus Esfd Event_queue Ewfd Ftss_async Ftss_util List Option Pid Printf QCheck QCheck_alcotest Rng Sim
