(* Cross-cutting property tests: algebraic invariants of the building
   blocks (compiler arithmetic, trace algebra, detector merges, event
   queue ordering, solving-definition monotonicity) checked with qcheck
   over randomized inputs. *)

open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Compiler arithmetic --- *)

let prop_normalize_range =
  QCheck.Test.make ~name:"normalize lands in 1..final_round" ~count:500
    QCheck.(pair (int_range 1 20) int)
    (fun (fr, c) ->
      let k = Compiler.normalize ~final_round:fr c in
      1 <= k && k <= fr)

let prop_normalize_cycles =
  QCheck.Test.make ~name:"normalize advances cyclically" ~count:500
    QCheck.(pair (int_range 1 20) (int_range (-10000) 10000))
    (fun (fr, c) ->
      let k = Compiler.normalize ~final_round:fr c in
      let k' = Compiler.normalize ~final_round:fr (c + 1) in
      if k = fr then k' = 1 else k' = k + 1)

let prop_iteration_increments_at_wrap =
  QCheck.Test.make ~name:"iteration index increments exactly at the wrap" ~count:500
    QCheck.(pair (int_range 1 20) (int_range (-10000) 10000))
    (fun (fr, c) ->
      let i = Compiler.iteration ~final_round:fr c in
      let i' = Compiler.iteration ~final_round:fr (c + 1) in
      if Compiler.normalize ~final_round:fr (c + 1) = 1 then i' = i + 1 else i' = i)

let prop_good_initial_round_is_one =
  QCheck.Test.make ~name:"the good initial state executes protocol round 1" ~count:100
    QCheck.(int_range 1 20)
    (fun fr -> Compiler.normalize ~final_round:fr 1 = 1)

(* --- Trace algebra --- *)

let counter : (int, int) Protocol.t =
  {
    Protocol.name = "counter";
    init = (fun _ -> 0);
    broadcast = (fun _ c -> c);
    step = (fun _ c _ -> c + 1);
  }

let random_trace seed =
  let rng = Rng.create seed in
  let n = Rng.int_in rng 2 6 in
  let rounds = Rng.int_in rng 4 20 in
  let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.4 ~rounds in
  Runner.run ~faults ~rounds counter

let prop_sub_composition =
  QCheck.Test.make ~name:"Trace.sub composes" ~count:200 QCheck.small_nat (fun seed ->
      let trace = random_trace seed in
      let len = Trace.length trace in
      if len < 4 then true
      else begin
        let outer = Trace.sub trace ~first:2 ~last:(len - 1) in
        let inner = Trace.sub outer ~first:2 ~last:(Trace.length outer) in
        let direct = Trace.sub trace ~first:3 ~last:(len - 1) in
        let states t =
          List.map
            (fun r -> Array.to_list (Trace.record t ~round:r).Trace.states_before)
            (List.init (Trace.length t) (fun i -> i + 1))
        in
        states inner = states direct && Trace.length inner = Trace.length direct
      end)

let prop_sub_preserves_omissions =
  QCheck.Test.make ~name:"Trace.sub keeps exactly the interval's omissions" ~count:200
    QCheck.small_nat (fun seed ->
      let trace = random_trace seed in
      let len = Trace.length trace in
      if len < 3 then true
      else begin
        let first = 2 and last = len - 1 in
        let sub = Trace.sub trace ~first ~last in
        let expected =
          List.filter (fun (r, _, _) -> first <= r && r <= last) trace.Trace.omissions
          |> List.length
        in
        List.length sub.Trace.omissions = expected
      end)

let prop_full_trace_blames_declared =
  QCheck.Test.make ~name:"runner traces always blame declared-faulty processes" ~count:200
    QCheck.small_nat (fun seed -> Trace.blames_declared (random_trace seed))

(* --- Causality --- *)

let prop_knowledge_monotone =
  QCheck.Test.make ~name:"knowledge sets grow monotonically" ~count:100 QCheck.small_nat
    (fun seed ->
      let trace = random_trace seed in
      let a = Ftss_history.Causality.analyze trace in
      let n = trace.Trace.n in
      List.for_all
        (fun p ->
          List.for_all
            (fun r ->
              Pidset.subset
                (Ftss_history.Causality.knows a ~round:r p)
                (Ftss_history.Causality.knows a ~round:(r + 1) p))
            (List.init (Trace.length trace) Fun.id))
        (Pid.all n))

let prop_coterie_subset_of_system =
  QCheck.Test.make ~name:"coterie members reach all correct processes" ~count:100
    QCheck.small_nat (fun seed ->
      let trace = random_trace seed in
      let a = Ftss_history.Causality.analyze trace in
      let correct = Trace.correct trace in
      let len = Trace.length trace in
      Pidset.for_all
        (fun u ->
          Pidset.for_all
            (fun q -> Ftss_history.Causality.happened_before a ~upto:len u q)
            correct)
        (Ftss_history.Causality.coterie a ~round:len))

(* --- Solving definitions --- *)

let prop_ftss_monotone_in_stabilization =
  QCheck.Test.make ~name:"ftss_solves is monotone in the stabilization time" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 31337) in
      let n = Rng.int_in rng 2 5 in
      let rounds = Rng.int_in rng 5 20 in
      let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.5 ~rounds in
      let trace =
        Runner.run
          ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:100)
          ~faults ~rounds Round_agreement.protocol
      in
      let holds r = Solve.ftss_solves Round_agreement.spec ~stabilization:r trace in
      (* If it holds with stabilization r, it holds with every r' >= r. *)
      List.for_all
        (fun r -> (not (holds r)) || (holds (r + 1) && holds (r + 3)))
        [ 0; 1; 2 ])

let prop_measured_stabilization_is_tight =
  QCheck.Test.make ~name:"measured stabilization is the least sufficient bound" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 977) in
      let n = Rng.int_in rng 2 5 in
      let rounds = Rng.int_in rng 5 20 in
      let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.5 ~rounds in
      let trace =
        Runner.run
          ~corrupt:(Round_agreement.corrupt_uniform rng ~bound:100)
          ~faults ~rounds Round_agreement.protocol
      in
      let d = Solve.measured_stabilization Round_agreement.spec trace in
      Solve.ftss_solves Round_agreement.spec ~stabilization:d trace
      && (d = 0 || not (Solve.ftss_solves Round_agreement.spec ~stabilization:(d - 1) trace)))

let prop_ft_implies_ftss_on_failure_free_suffixless =
  QCheck.Test.make ~name:"failure-free good-start histories satisfy all three notions"
    ~count:50 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 555) in
      let n = Rng.int_in rng 2 6 in
      let rounds = Rng.int_in rng 3 15 in
      let trace = Runner.run ~faults:(Faults.none n) ~rounds Round_agreement.protocol in
      Solve.ft_solves Round_agreement.spec trace
      && Solve.ss_solves Round_agreement.spec ~stabilization:1 trace
      && Solve.ftss_solves Round_agreement.spec ~stabilization:1 trace
      && ignore rng = ())

(* --- Simulator memorylessness (the engine-level fact behind Thm 1) --- *)

let prop_suffix_after_corruption_equals_fresh_run =
  QCheck.Test.make
    ~name:"suffix after mid-run corruption = fresh run from the corrupted state" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 424242) in
      let n = Rng.int_in rng 2 5 in
      let len = Rng.int_in rng 6 20 in
      let cut = Rng.int_in rng 2 (len - 1) in
      let offset = Rng.int rng 1000 in
      let corruption _ c = c + offset in
      let with_corruption =
        Runner.run
          ~corrupt_at:[ (cut, corruption) ]
          ~faults:(Faults.none n) ~rounds:len Round_agreement.protocol
      in
      let suffix = Trace.sub with_corruption ~first:cut ~last:len in
      (* The fresh history commencing in the corrupted state. *)
      let start p =
        match Trace.state_before with_corruption ~round:cut p with
        | Some c -> c
        | None -> assert false
      in
      let fresh =
        Runner.run
          ~corrupt:(fun p _ -> start p)
          ~faults:(Faults.none n)
          ~rounds:(len - cut + 1)
          Round_agreement.protocol
      in
      List.for_all
        (fun p -> Ftss_core.Impossibility.view suffix p = Ftss_core.Impossibility.view fresh p)
        (Pid.all n))

(* --- Event queue vs a sorted-list model --- *)

let prop_event_queue_model =
  QCheck.Test.make ~name:"event queue drains like a stable sort" ~count:300
    QCheck.(small_list (int_range 0 50))
    (fun times ->
      let open Ftss_async in
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t (i, t)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, e) -> drain (e :: acc)
      in
      let drained = drain [] in
      let model =
        List.mapi (fun i t -> (i, t)) times
        |> List.stable_sort (fun (_, a) (_, b) -> Int.compare a b)
      in
      drained = model)

(* --- Esfd merge algebra --- *)

let entry_gen =
  QCheck.Gen.(
    map3
      (fun subject num dead ->
        { Ftss_async.Esfd.subject; num; status = (if dead then Ftss_async.Esfd.Dead else Alive) })
      (int_range 0 3) (int_range 0 20) bool)

let msg_arb = QCheck.make QCheck.Gen.(list_size (int_range 0 8) entry_gen)

let esfd_obs t = List.map (fun s -> Ftss_async.Esfd.suspected t s) [ 0; 1; 2; 3 ]

let prop_esfd_receive_idempotent =
  QCheck.Test.make ~name:"Esfd.receive is idempotent" ~count:300 msg_arb (fun m ->
      let open Ftss_async in
      let t = Esfd.create ~n:4 in
      let once = Esfd.receive t m in
      let twice = Esfd.receive once m in
      esfd_obs once = esfd_obs twice)

let prop_esfd_receive_order_of_independent_msgs =
  QCheck.Test.make ~name:"Esfd.receive commutes on distinct-num messages" ~count:300
    QCheck.(pair msg_arb msg_arb)
    (fun (m1, m2) ->
      let open Ftss_async in
      (* Commutativity holds whenever no two entries carry the same num for
         the same subject (ties are resolved by arrival order). *)
      let nums m = List.map (fun e -> (e.Esfd.subject, e.Esfd.num)) m in
      let clash =
        List.exists (fun k -> List.mem k (nums m2)) (nums m1)
        || List.length (List.sort_uniq compare (nums m1)) <> List.length (nums m1)
        || List.length (List.sort_uniq compare (nums m2)) <> List.length (nums m2)
      in
      QCheck.assume (not clash);
      let t = Esfd.create ~n:4 in
      let a = Esfd.receive (Esfd.receive t m1) m2 in
      let b = Esfd.receive (Esfd.receive t m2) m1 in
      esfd_obs a = esfd_obs b)

(* --- Compiled protocols: end-to-end Theorem 4 on the other Πs --- *)

let theorem4_holds (type s d) ~seed ~n ~f (pi : (s, d) Canonical.t)
    ~(corrupt_s : Rng.t -> Pid.t -> s -> s) ~(valid : d -> bool) =
  let rng = Rng.create seed in
  let rounds = Rng.int_in rng 20 50 in
  let faults = Faults.random_omission rng ~n ~f ~p_drop:0.4 ~rounds in
  let corrupt = Compiler.corrupt rng ~pi ~n ~c_bound:1000 ~corrupt_s in
  let trace = Runner.run ~corrupt ~faults ~rounds (Compiler.compile ~n pi) in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace

let prop_theorem4_interactive_consistency =
  QCheck.Test.make ~name:"Theorem 4 end-to-end: interactive consistency" ~count:25
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed * 3 + 1) in
      let n = Rng.int_in rng 2 5 in
      let f = Rng.int rng n in
      theorem4_holds ~seed:(seed + 4000) ~n ~f
        (Interactive_consistency.make ~n ~f ~propose:(fun p -> 1000 + p))
        ~corrupt_s:(fun rng _ s ->
          if Rng.bool rng then
            { s with Interactive_consistency.vector = Pidmap.init n (fun p -> Rng.int rng 99 + p) }
          else s)
        ~valid:(fun vector ->
          List.for_all (function Some v -> v >= 1000 && v < 1000 + n | None -> true) vector))

let prop_theorem4_leader_election =
  QCheck.Test.make ~name:"Theorem 4 end-to-end: leader election" ~count:25
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed * 5 + 2) in
      let n = Rng.int_in rng 2 5 in
      let f = Rng.int rng n in
      theorem4_holds ~seed:(seed + 6000) ~n ~f
        (Leader_election.make ~n ~f)
        ~corrupt_s:(fun rng _ s ->
          { s with Leader_election.participants = Pidset.of_pred n (fun _ -> Rng.bool rng) })
        ~valid:(fun leader -> Pid.is_valid ~n leader))

let prop_theorem4_reliable_broadcast =
  QCheck.Test.make ~name:"Theorem 4 end-to-end: reliable broadcast" ~count:25
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed * 7 + 3) in
      let n = Rng.int_in rng 2 5 in
      let f = Rng.int rng n in
      let sender = Rng.int rng n in
      theorem4_holds ~seed:(seed + 8000) ~n ~f
        (Reliable_broadcast.make ~n ~f ~sender ~value:42)
        ~corrupt_s:(fun rng _ s ->
          if Rng.bool rng then { s with Reliable_broadcast.relayed = Some (Rng.int rng 1000) }
          else s)
        ~valid:(function Some 42 | None -> true | Some _ -> false))

let suite =
  [
    ( "properties",
      [
        to_alcotest prop_normalize_range;
        to_alcotest prop_normalize_cycles;
        to_alcotest prop_iteration_increments_at_wrap;
        to_alcotest prop_good_initial_round_is_one;
        to_alcotest prop_sub_composition;
        to_alcotest prop_sub_preserves_omissions;
        to_alcotest prop_full_trace_blames_declared;
        to_alcotest prop_knowledge_monotone;
        to_alcotest prop_coterie_subset_of_system;
        to_alcotest prop_ftss_monotone_in_stabilization;
        to_alcotest prop_measured_stabilization_is_tight;
        to_alcotest prop_ft_implies_ftss_on_failure_free_suffixless;
        to_alcotest prop_suffix_after_corruption_equals_fresh_run;
        to_alcotest prop_event_queue_model;
        to_alcotest prop_esfd_receive_idempotent;
        to_alcotest prop_esfd_receive_order_of_independent_msgs;
        to_alcotest prop_theorem4_interactive_consistency;
        to_alcotest prop_theorem4_leader_election;
        to_alcotest prop_theorem4_reliable_broadcast;
      ] );
  ]
