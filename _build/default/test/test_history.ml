(* Tests for happened-before / coterie analysis (Definition 2.3). *)

open Ftss_util
open Ftss_sync
module Causality = Ftss_history.Causality

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counter : (int, int) Protocol.t =
  {
    Protocol.name = "counter";
    init = (fun _ -> 0);
    broadcast = (fun _ c -> c);
    step = (fun _ c _ -> c + 1);
  }

let analyze ?corrupt ~faults ~rounds () =
  Causality.analyze (Runner.run ?corrupt ~faults ~rounds counter)

let test_failure_free_coterie_fills_in_one_round () =
  let a = analyze ~faults:(Faults.none 4) ~rounds:3 () in
  check "coterie at 0 is empty" true (Pidset.is_empty (Causality.coterie a ~round:0));
  check "coterie full after round 1" true
    (Pidset.equal (Pidset.full 4) (Causality.coterie a ~round:1))

let test_knowledge_base_case () =
  let a = analyze ~faults:(Faults.none 3) ~rounds:2 () in
  check "K_0(p) = {p}" true (Pidset.equal (Pidset.singleton 1) (Causality.knows a ~round:0 1))

let test_happened_before_through_relay () =
  (* 0 can reach 2 only through 1: 0->2 direct link is cut both ways. *)
  let faults =
    Faults.of_events ~n:3
      [
        Faults.Drop { src = 0; dst = 2; round = 1 };
        Faults.Drop { src = 0; dst = 2; round = 2 };
      ]
  in
  let a = analyze ~faults ~rounds:2 () in
  check "not direct in round 1" false (Causality.happened_before a ~upto:1 0 2);
  (* Round 2: 1 relays its round-1 knowledge (which includes 0) to 2. *)
  check "transitively by round 2" true (Causality.happened_before a ~upto:2 0 2)

let test_isolated_process_not_in_coterie () =
  let faults = Faults.of_events ~n:3 [ Faults.Isolate { pid = 2; first = 1; last = 10 } ] in
  let a = analyze ~faults ~rounds:10 () in
  check "never enters" true (Causality.entry_round a 2 = None);
  check "others do" true (Causality.entry_round a 0 = Some 1)

let test_late_revelation_enters_coterie () =
  (* Process 2 is mute for 4 rounds, then reveals itself. *)
  let faults = Faults.of_events ~n:3 [ Faults.Mute { pid = 2; first = 1; last = 4 } ] in
  let a = analyze ~faults ~rounds:8 () in
  check_int "enters when first heard" 5
    (match Causality.entry_round a 2 with Some r -> r | None -> -1);
  let changes = Causality.changes a in
  check_int "two destabilizing events" 2 (List.length changes);
  (match changes with
  | [ (r1, s1); (r2, s2) ] ->
    check_int "first change at round 1" 1 r1;
    check "first change adds the talkers" true (Pidset.equal s1 (Pidset.of_list [ 0; 1 ]));
    check_int "second change at reveal" 5 r2;
    check "second change adds the revealed" true (Pidset.equal s2 (Pidset.singleton 2))
  | _ -> Alcotest.fail "expected exactly two changes");
  check "coterie monotone" true (Causality.monotone a)

let test_stable_intervals_partition () =
  let faults = Faults.of_events ~n:3 [ Faults.Mute { pid = 2; first = 1; last = 4 } ] in
  let a = analyze ~faults ~rounds:8 () in
  let intervals = Causality.stable_intervals a in
  Alcotest.(check (list (pair int int))) "maximal intervals" [ (0, 0); (1, 4); (5, 8) ] intervals

let test_crashed_process_leaves_correct_set () =
  let faults = Faults.of_events ~n:3 [ Faults.Crash { pid = 1; round = 2 } ] in
  let a = analyze ~faults ~rounds:5 () in
  (* Coterie quantifies over correct processes only: {0, 2}. Process 1
     broadcast in round 1, so it reached everyone and is in the coterie
     even though it later crashed. *)
  check "correct set excludes crashed" true
    (Pidset.equal (Causality.correct a) (Pidset.of_list [ 0; 2 ]));
  check "crashed-but-heard process is in coterie" true
    (Pidset.mem 1 (Causality.coterie a ~round:1))

let test_partial_reveal_does_not_enter () =
  (* 2 reaches only process 0 in round 5; 0 relays in round 6, so 2 enters
     the coterie at round 6, not 5. *)
  let events =
    Faults.Mute { pid = 2; first = 1; last = 4 }
    :: Faults.Drop { src = 2; dst = 1; round = 5 }
    :: List.concat_map
         (fun r ->
           [ Faults.Drop { src = 2; dst = 0; round = r }; Faults.Drop { src = 2; dst = 1; round = r } ])
         [ 6; 7; 8 ]
  in
  let faults = Faults.of_events ~n:3 events in
  let a = analyze ~faults ~rounds:8 () in
  check_int "enters via relay" 6
    (match Causality.entry_round a 2 with Some r -> r | None -> -1)

let prop_coterie_monotone =
  QCheck.Test.make ~name:"prefix coterie is monotone under random omissions" ~count:60
    QCheck.(triple (int_range 2 7) (int_range 1 15) small_nat)
    (fun (n, rounds, seed) ->
      let rng = Rng.create seed in
      let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.5 ~rounds in
      let a = Causality.analyze (Runner.run ~faults ~rounds counter) in
      Causality.monotone a)

let prop_intervals_partition_range =
  QCheck.Test.make ~name:"stable intervals partition 0..rounds" ~count:60
    QCheck.(triple (int_range 2 7) (int_range 1 15) small_nat)
    (fun (n, rounds, seed) ->
      let rng = Rng.create seed in
      let faults = Faults.random_omission rng ~n ~f:(Rng.int rng n) ~p_drop:0.5 ~rounds in
      let a = Causality.analyze (Runner.run ~faults ~rounds counter) in
      let intervals = Causality.stable_intervals a in
      let rec contiguous expected = function
        | [] -> expected = rounds + 1
        | (x, y) :: rest -> x = expected && y >= x && contiguous (y + 1) rest
      in
      contiguous 0 intervals)

let prop_failure_free_everyone_enters_round_1 =
  QCheck.Test.make ~name:"failure-free: whole system enters coterie at round 1" ~count:30
    QCheck.(int_range 1 8)
    (fun n ->
      let a = Causality.analyze (Runner.run ~faults:(Faults.none n) ~rounds:3 counter) in
      Pidset.equal (Pidset.full n) (Causality.coterie a ~round:1))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "history",
      [
        tc "failure-free coterie fills in one round" `Quick test_failure_free_coterie_fills_in_one_round;
        tc "knowledge base case" `Quick test_knowledge_base_case;
        tc "happened-before through relay" `Quick test_happened_before_through_relay;
        tc "isolated process never enters coterie" `Quick test_isolated_process_not_in_coterie;
        tc "late revelation is a destabilizing event" `Quick test_late_revelation_enters_coterie;
        tc "stable intervals partition" `Quick test_stable_intervals_partition;
        tc "crashed process leaves correct set" `Quick test_crashed_process_leaves_correct_set;
        tc "partial reveal enters via relay" `Quick test_partial_reveal_does_not_enter;
        QCheck_alcotest.to_alcotest prop_coterie_monotone;
        QCheck_alcotest.to_alcotest prop_intervals_partition_range;
        QCheck_alcotest.to_alcotest prop_failure_free_everyone_enters_round_1;
      ] );
  ]
