open Ftss_util

type state = { hb : Heartbeat.t; fd : Esfd.t }

type msg = Hb of Heartbeat.msg | Fd of Esfd.msg

type observation = Suspects of Pidset.t

let process ~n ~initial_timeout ~backoff =
  {
    Sim.name = "detector-stack";
    init =
      (fun _ ->
        { hb = Heartbeat.create ~n ~initial_timeout ~backoff; fd = Esfd.create ~n });
    on_tick =
      (fun ctx st ->
        let self = Sim.self ctx and now = Sim.now ctx in
        Sim.broadcast ctx (Hb Heartbeat.Heartbeat);
        let hb = Heartbeat.tick st.hb ~self ~now in
        (* Figure 4's detect(s) predicate is the heartbeat layer's output. *)
        let fd, fd_msg = Esfd.tick st.fd ~self ~detect:(Heartbeat.suspected hb) in
        Sim.broadcast ctx (Fd fd_msg);
        Sim.observe ctx (Suspects (Esfd.suspects fd));
        { hb; fd });
    on_message =
      (fun ctx st ~src m ->
        match m with
        | Hb Heartbeat.Heartbeat ->
          { st with hb = Heartbeat.heard st.hb ~src ~now:(Sim.now ctx) }
        | Fd fm ->
          let fd = Esfd.receive st.fd fm in
          let before = Esfd.suspects st.fd and after = Esfd.suspects fd in
          if not (Pidset.equal before after) then Sim.observe ctx (Suspects after);
          { st with fd });
  }

let corrupt rng ~time_bound ~timeout_bound ~num_bound _pid st =
  {
    hb = Heartbeat.corrupt rng ~time_bound ~timeout_bound st.hb;
    fd = Esfd.corrupt rng ~num_bound st.fd;
  }

type report = {
  convergence_time : int option;
  completeness_from : int option;
  accuracy_from : int option;
}

let analyze (result : (state, observation) Sim.result) ~config =
  let n = config.Sim.n in
  let crashed = Sim.crashed_set config in
  let correct = Sim.correct_set config in
  let last_completeness_violation = ref (-1) in
  (* Weak accuracy wants one correct process clear of suspicion
     everywhere: track, per candidate, the last time any correct process
     suspected it. *)
  let last_suspected = Array.make n (-1) in
  List.iter
    (fun (time, pid, Suspects set) ->
      if Pidset.mem pid correct then begin
        if not (Pidset.subset crashed set) then
          last_completeness_violation := max !last_completeness_violation time;
        Pidset.iter (fun s -> last_suspected.(s) <- max last_suspected.(s) time) set
      end)
    result.Sim.log;
  let settle last = if last + 1 >= result.Sim.end_time then None else Some (last + 1) in
  let completeness_from = settle !last_completeness_violation in
  let accuracy_from =
    Pidset.fold
      (fun candidate best ->
        match (settle last_suspected.(candidate), best) with
        | Some t, Some b -> Some (min t b)
        | Some t, None -> Some t
        | None, best -> best)
      correct None
  in
  let convergence_time =
    match (completeness_from, accuracy_from) with
    | Some a, Some b -> Some (max a b)
    | None, _ | _, None -> None
  in
  { convergence_time; completeness_from; accuracy_from }
