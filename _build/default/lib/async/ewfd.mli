(** A scripted Eventually Weak failure detector (◇W) oracle.

    The paper's §3 protocol assumes "the Eventually Weak failure detector
    repeatedly sets the predicate detect(s) as long as s is suspected".
    This module supplies that predicate. Behaviour:

    - before [gst]: arbitrary — every observer suspects every other
      process independently at random (the detector may "erroneously
      suspect correct processes");
    - at and after [gst]:
      {ul
      {- {e weak completeness}: for each crashed process s, exactly one
         designated correct observer (the lowest-pid correct process)
         suspects s — "at least one", and deliberately no more, so the
         ◇W → ◇S transform has real work to do;}
      {- {e eventual weak accuracy}: the designated [trusted] correct
         process is suspected by no correct observer;}
      {- other correct processes may keep being falsely suspected at
         random — ◇W permits it, and it stresses the transform.}} *)

open Ftss_util

type t

(** [make rng ~n ~crashed ~gst ~trusted ~noise] builds the oracle.
    [crashed p] is the crash time of [p], if any; [trusted] must be a
    correct process; [noise] is the probability of a spurious suspicion
    (of a non-trusted process after gst; of anyone before). Raises
    [Invalid_argument] if [trusted] is crashed. *)
val make :
  Rng.t ->
  n:int ->
  crashed:(Pid.t -> int option) ->
  gst:int ->
  trusted:Pid.t ->
  noise:float ->
  t

(** [detect t ~at ~observer ~subject] — the paper's detect predicate, as
    sampled by [observer] at time [at]. *)
val detect : t -> at:int -> observer:Pid.t -> subject:Pid.t -> bool

(** The designated always-trusted process. *)
val trusted : t -> Pid.t
