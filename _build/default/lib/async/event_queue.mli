(** A deterministic priority queue of timed events.

    Events are ordered by (time, insertion sequence): ties in time resolve
    in insertion order, which makes every simulation replayable from its
    seed alone. *)

type 'e t

val create : unit -> 'e t
val is_empty : 'e t -> bool
val size : 'e t -> int

(** [push t ~time e] schedules [e]. Raises [Invalid_argument] on negative
    time. *)
val push : 'e t -> time:int -> 'e -> unit

(** [pop t] removes and returns the earliest event, [(time, e)]. *)
val pop : 'e t -> (int * 'e) option

(** [peek_time t] is the time of the earliest event without removing it. *)
val peek_time : 'e t -> int option
