(** Round agreement for synchronous-but-not-perfectly-synchronized
    systems — the adaptation §3's opening sentence claims is routine,
    made executable.

    Processes step on local timers with staggered phases (no two
    processes step at the same instant) and message delays are bounded
    but not constant. Each local step plays the role of a Figure 1 round:
    broadcast the round variable, then adopt [max(seen) + 1]. Because
    steps interleave, exact agreement is unattainable; the adapted
    guarantee is {e neighbourhood agreement}: once the system has been
    stable for one local round, the round variables of correct processes
    span at most [2 + ceil(max_delay / tick_interval)] consecutive values
    (one unit of adoption lag, the delay staleness, and one unit of phase
    stagger) and advance at one per local round — and this from arbitrary
    corrupted round variables, under crashes of the faulty processes.
    Perfectly synchronous lockstep delivery recovers Figure 1's exact
    agreement. *)

open Ftss_util

type state

type msg = int
(** The (ROUND: p, c) broadcast. *)

type observation = Round_variable of int
(** Each process's round variable, observed at every local step. *)

val process : (state, msg, observation) Sim.process

(** [corrupt rng ~bound] scrambles the round variable, as a systemic
    failure does. *)
val corrupt : Rng.t -> bound:int -> Pid.t -> state -> state

type report = {
  converged_from : int option;
      (** earliest time from which the correct processes' latest round
          variables always span at most [spread_bound] *)
  final_spread : int;  (** spread over the run's last samples *)
}

(** [spread_bound config] is the claimed neighbourhood bound
    [2 + ceil(max_delay / tick_interval)] for the config's parameters. *)
val spread_bound : Sim.config -> int

(** [analyze result ~config ?spread_bound] checks neighbourhood agreement
    over the run; [spread_bound] defaults to {!spread_bound}[ config]. *)
val analyze :
  ?spread_bound:int -> (state, observation) Sim.result -> config:Sim.config -> report
