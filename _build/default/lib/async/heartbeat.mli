(** An implemented (not scripted) Eventually Weak failure detector:
    heartbeats with adaptive timeouts, the standard construction under
    partial synchrony.

    Every process broadcasts a heartbeat on each tick and suspects s when
    no heartbeat from s has arrived within [timeout(s)]. When a suspicion
    proves false (a heartbeat from a suspected process arrives), the
    timeout for that process grows by [backoff]; after GST message delays
    are bounded, so each process makes only finitely many mistakes about
    each live peer and eventually suspects no correct process — giving
    eventual {e strong} accuracy, which implies the ◇W accuracy the
    paper's Figure 4 transform needs. Completeness is immediate: a
    crashed process stops heartbeating and times out everywhere.

    The detector is itself initialization-free: a corrupted [last_heard]
    entry is overwritten by the next heartbeat (or, if it pretends to be
    in the future, is clamped to the current time on the next tick); a
    corrupted oversized timeout merely delays completeness for that peer;
    a corrupted suspicion flag is recomputed continuously. *)

open Ftss_util

type t

type msg = Heartbeat

(** [create ~n ~initial_timeout ~backoff] is the good initial state. *)
val create : n:int -> initial_timeout:int -> backoff:int -> t

(** [corrupt rng ~time_bound ~timeout_bound t] draws arbitrary last-heard
    times, timeouts and suspicion flags. *)
val corrupt : Rng.t -> time_bound:int -> timeout_bound:int -> t -> t

(** [tick t ~self ~now] re-evaluates every peer's deadline; returns the
    new state. (The heartbeat broadcast itself is performed by the
    process wrapper.) *)
val tick : t -> self:Pid.t -> now:int -> t

(** [heard t ~src ~now] records a heartbeat: unsuspects [src], growing
    its timeout if it had been suspected. *)
val heard : t -> src:Pid.t -> now:int -> t

val suspected : t -> Pid.t -> bool
val suspects : t -> Pidset.t

type observation = Suspects of Pidset.t

(** [process ~n ~initial_timeout ~backoff] is the Sim process; suspect-set
    changes are observed. *)
val process :
  n:int -> initial_timeout:int -> backoff:int -> (t, msg, observation) Sim.process

type report = {
  completeness_from : int option;
      (** earliest time from which every correct process permanently
          suspects every crashed process *)
  accuracy_from : int option;
      (** earliest time from which no correct process ever suspects
          another correct process *)
}

(** [analyze result ~config] checks the ◇W/◇P properties on a run. *)
val analyze : (t, observation) Sim.result -> config:Sim.config -> report
