open Ftss_util

type state = { c : int; seen_max : int }

type msg = int

type observation = Round_variable of int

let process =
  {
    Sim.name = "drift-round-agreement";
    init = (fun _ -> { c = 1; seen_max = 1 });
    on_tick =
      (fun ctx st ->
        (* One local round: adopt max(seen)+1, then broadcast it. *)
        let c = max st.c st.seen_max + 1 in
        Sim.broadcast ctx c;
        Sim.observe ctx (Round_variable c);
        { c; seen_max = c });
    on_message =
      (fun _ st ~src:_ incoming -> { st with seen_max = max st.seen_max incoming });
  }

let corrupt rng ~bound _pid _st =
  let c = Rng.int rng bound in
  { c; seen_max = c }

type report = { converged_from : int option; final_spread : int }

(* One unit for the +1 adoption lag, ceil(delay/round) for message
   staleness, and one more for the phase stagger: processes step at
   different instants, so a late-phase process can leapfrog an
   early-phase one by a unit before the latter's next step. *)
let spread_bound (config : Sim.config) =
  let _, hi = config.Sim.delay_after_gst in
  2 + ((hi + config.Sim.tick_interval - 1) / config.Sim.tick_interval)

let analyze ?spread_bound:bound (result : (state, observation) Sim.result) ~config =
  let bound = match bound with Some b -> b | None -> spread_bound config in
  let correct = Sim.correct_set config in
  let latest = Hashtbl.create 8 in
  let last_violation = ref (-1) in
  let spread () =
    let values = Hashtbl.fold (fun _ v acc -> v :: acc) latest [] in
    match values with
    | [] -> 0
    | v :: rest ->
      let lo = List.fold_left min v rest and hi = List.fold_left max v rest in
      hi - lo
  in
  let final = ref 0 in
  List.iter
    (fun (time, pid, Round_variable c) ->
      if Pidset.mem pid correct then begin
        Hashtbl.replace latest pid c;
        (* Only judge once every correct process has reported. *)
        if Hashtbl.length latest = Pidset.cardinal correct then begin
          let s = spread () in
          final := s;
          if s > bound then last_violation := max !last_violation time
        end
      end)
    result.Sim.log;
  let converged_from =
    let t = !last_violation + 1 in
    if Hashtbl.length latest < Pidset.cardinal correct || t >= result.Sim.end_time then None
    else Some t
  in
  { converged_from; final_spread = !final }
