lib/async/drift.ml: Ftss_util Hashtbl List Pidset Rng Sim
