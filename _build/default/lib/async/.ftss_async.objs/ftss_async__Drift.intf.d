lib/async/drift.mli: Ftss_util Pid Rng Sim
