lib/async/esfd.mli: Ewfd Ftss_util Pid Pidset Rng Sim
