lib/async/ewfd.mli: Ftss_util Pid Rng
