lib/async/heartbeat.ml: Array Ftss_util List Pid Pidset Rng Sim
