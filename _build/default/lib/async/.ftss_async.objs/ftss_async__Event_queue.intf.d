lib/async/event_queue.mli:
