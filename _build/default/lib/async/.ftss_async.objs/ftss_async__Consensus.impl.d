lib/async/consensus.ml: Esfd Ewfd Ftss_util Hashtbl Heartbeat Int List Option Pid Pidmap Pidset Rng Sim
