lib/async/consensus.mli: Ewfd Ftss_util Pid Pidset Rng Sim
