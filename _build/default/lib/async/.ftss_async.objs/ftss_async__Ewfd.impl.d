lib/async/ewfd.ml: Ftss_util List Option Pid Rng
