lib/async/esfd.ml: Array Ewfd Ftss_util Hashtbl List Pid Pidset Rng Sim
