lib/async/sim.ml: Array Event_queue Ftss_util List Pid Pidset Rng
