lib/async/detector_stack.mli: Esfd Ftss_util Heartbeat Pid Pidset Rng Sim
