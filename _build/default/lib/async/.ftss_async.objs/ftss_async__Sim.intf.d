lib/async/sim.mli: Ftss_util Pid Pidset
