lib/async/detector_stack.ml: Array Esfd Ftss_util Heartbeat List Pidset Sim
