lib/async/heartbeat.mli: Ftss_util Pid Pidset Rng Sim
