lib/async/event_queue.ml: Array
