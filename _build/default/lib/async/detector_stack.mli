(** The full failure-detection stack, with no oracle anywhere:
    partial synchrony → heartbeat ◇W ({!Heartbeat}) → Figure 4 transform
    ({!Esfd}) → ◇S.

    The paper assumes an Eventually Weak detector is given ("detect(s) is
    managed by an Eventually Weak failure detector"); this module
    discharges that assumption inside the model, so Theorem 5 can be
    exercised end-to-end: every bit of detector state — the heartbeat
    deadlines {e and} the transform's num/state tables — may be corrupted
    by the systemic failure, and the stack still converges to strong
    completeness and eventual weak accuracy. *)

open Ftss_util

type state

type msg = Hb of Heartbeat.msg | Fd of Esfd.msg

type observation = Suspects of Pidset.t
(** The ◇S-level (transform output) suspect set, observed every tick. *)

val process :
  n:int -> initial_timeout:int -> backoff:int -> (state, msg, observation) Sim.process

(** [corrupt rng ~n ...] corrupts both layers. *)
val corrupt :
  Rng.t ->
  time_bound:int ->
  timeout_bound:int ->
  num_bound:int ->
  Pid.t ->
  state ->
  state

type report = {
  convergence_time : int option;
  completeness_from : int option;
  accuracy_from : int option;
}

(** [analyze result ~config] checks ◇S properties of the transform output:
    strong completeness, and eventual weak accuracy in its literal form —
    {e some} correct process is eventually never suspected by any correct
    process. *)
val analyze : (state, observation) Sim.result -> config:Sim.config -> report
