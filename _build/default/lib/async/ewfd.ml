open Ftss_util

type t = {
  rng : Rng.t;
  n : int;
  crashed : Pid.t -> int option;
  gst : int;
  trusted : Pid.t;
  noise : float;
  designated : Pid.t; (* the one correct observer that suspects crashed processes *)
}

let make rng ~n ~crashed ~gst ~trusted ~noise =
  if Option.is_some (crashed trusted) then
    invalid_arg "Ewfd.make: the trusted process must be correct";
  let designated =
    match List.find_opt (fun p -> crashed p = None) (Pid.all n) with
    | Some p -> p
    | None -> invalid_arg "Ewfd.make: no correct process"
  in
  { rng; n; crashed; gst; trusted; noise; designated }

let trusted t = t.trusted

let detect t ~at ~observer ~subject =
  if Pid.equal observer subject then false
  else if at < t.gst then
    (* Totally unreliable: random suspicion of anyone. *)
    Rng.chance t.rng t.noise
  else
    let subject_crashed =
      match t.crashed subject with Some ct -> ct <= at | None -> false
    in
    if subject_crashed then
      (* Weak completeness: only the designated observer suspects. *)
      Pid.equal observer t.designated
    else if Pid.equal subject t.trusted then
      (* Eventual weak accuracy: never suspected after gst. *)
      false
    else
      (* ◇W still allows false suspicion of other correct processes. *)
      Rng.chance t.rng t.noise
