type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf p = Format.fprintf ppf "p%d" p
let to_string p = Format.asprintf "%a" pp p

let all n =
  if n < 0 then invalid_arg "Pid.all: negative system size"
  else List.init n (fun i -> i)

let is_valid ~n p = 0 <= p && p < n
