(** Process identifiers.

    Processes in a system of size [n] are identified by the integers
    [0 .. n-1]. The type is kept abstract-by-convention (it is [= int]) so
    that call sites read as [Pid.t] rather than bare integers. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [all n] is the list of the [n] pids [0 .. n-1]. Raises
    [Invalid_argument] if [n < 0]. *)
val all : int -> t list

(** [is_valid ~n p] is true iff [p] identifies a process in a system of
    [n] processes. *)
val is_valid : n:int -> t -> bool
