(* Splitmix64 (Steele, Lea & Flood 2014): tiny, fast, and statistically
   strong enough for simulation workloads; crucially, fully deterministic
   across platforms, unlike [Stdlib.Random] whose algorithm changed between
   OCaml releases. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix (next_state t)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int without
     wrapping negative. Modulo is slightly biased but the bias is < 2^-38
     for every bound used in this repository (all far below 2^24). *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let sample t k xs =
  let len = List.length xs in
  if k >= len then xs
  else begin
    (* Select k distinct positions, then keep original order. *)
    let chosen = Hashtbl.create k in
    let rec draw remaining =
      if remaining = 0 then ()
      else begin
        let i = int t len in
        if Hashtbl.mem chosen i then draw remaining
        else begin
          Hashtbl.add chosen i ();
          draw (remaining - 1)
        end
      end
    in
    draw (max 0 k);
    List.filteri (fun i _ -> Hashtbl.mem chosen i) xs
  end
