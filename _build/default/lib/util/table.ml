type row = Cells of string list | Separator

type t = { title : string; headers : string list; mutable rows : row list }

let create ~title headers = { title; headers; rows = [] }

let normalize width cells =
  let len = List.length cells in
  if len >= width then List.filteri (fun i _ -> i < width) cells
  else cells @ List.init (width - len) (fun _ -> "")

let add_row t cells = t.rows <- Cells (normalize (List.length t.headers) cells) :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let column_widths t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let absorb = function
    | Separator -> ()
    | Cells cells ->
      List.iteri (fun i c -> widths.(i) <- Stdlib.max widths.(i) (String.length c)) cells
  in
  List.iter absorb rows;
  widths

let pad width s = s ^ String.make (width - String.length s) ' '

let pp ppf t =
  let widths = column_widths t in
  let total = Array.fold_left ( + ) 0 widths + (3 * Array.length widths) + 1 in
  let rule = String.make total '-' in
  let pp_cells cells =
    Format.fprintf ppf "|";
    List.iteri (fun i c -> Format.fprintf ppf " %s |" (pad widths.(i) c)) cells;
    Format.fprintf ppf "@\n"
  in
  Format.fprintf ppf "%s@\n" t.title;
  Format.fprintf ppf "%s@\n" rule;
  pp_cells t.headers;
  Format.fprintf ppf "%s@\n" rule;
  List.iter
    (function
      | Separator -> Format.fprintf ppf "%s@\n" rule
      | Cells cells -> pp_cells cells)
    (List.rev t.rows);
  Format.fprintf ppf "%s@\n" rule

let print t = Format.printf "%a@." pp t
