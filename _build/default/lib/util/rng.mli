(** Deterministic pseudo-random number generation (splitmix64).

    Every randomized experiment in this repository draws from an explicit
    [Rng.t] created from an integer seed, so that every adversary schedule,
    corruption and message delay is replayable. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent stream. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Raises
    [Invalid_argument] if [lo > hi]. *)
val int_in : t -> int -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [0,1]). *)
val chance : t -> float -> bool

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [pick t xs] is a uniformly random element of [xs]. Raises
    [Invalid_argument] on the empty list. *)
val pick : t -> 'a list -> 'a

(** [sample t k xs] is a uniformly random subset of [k] elements of [xs]
    (all of [xs] if [k >= List.length xs]), in stable order. *)
val sample : t -> int -> 'a list -> 'a list

(** [shuffle t xs] is a uniformly random permutation of [xs]. *)
val shuffle : t -> 'a list -> 'a list
