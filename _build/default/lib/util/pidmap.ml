include Map.Make (Pid)

let init n f = List.fold_left (fun acc p -> add p (f p) acc) empty (Pid.all n)

let pp pp_v ppf m =
  let pp_binding ppf (p, v) = Format.fprintf ppf "%a->%a" Pid.pp p pp_v v in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_binding)
    (bindings m)
