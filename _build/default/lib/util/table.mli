(** Fixed-width ASCII tables for the benchmark harness, in the style of the
    tables a systems paper would print. *)

type t

(** [create ~title headers] starts a table with the given column headers. *)
val create : title:string -> string list -> t

(** [add_row t cells] appends a row; the row is padded or truncated to the
    header width. *)
val add_row : t -> string list -> unit

(** [add_separator t] inserts a horizontal rule between row groups. *)
val add_separator : t -> unit

val pp : Format.formatter -> t -> unit
val print : t -> unit
