include Set.Make (Pid)

let pp ppf s =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Pid.pp) (elements s)

let to_string s = Format.asprintf "%a" pp s
let of_pred n pred = List.fold_left (fun acc p -> if pred p then add p acc else acc) empty (Pid.all n)
let full n = of_list (Pid.all n)
