(** Small descriptive-statistics helpers for experiment reports. *)

(** [mean xs] is the arithmetic mean. Raises [Invalid_argument] on []. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float list -> float

(** [percentile p xs] is the [p]-th percentile (nearest-rank), [p] in
    [0,100]. Raises [Invalid_argument] on [] or [p] out of range. *)
val percentile : float -> float list -> float

val min : float list -> float
val max : float list -> float

(** [histogram ~buckets xs] counts values per integer bucket key. *)
val histogram : buckets:(float -> int) -> float list -> (int * int) list
