lib/util/stats.ml: Float Hashtbl Int List Option Stdlib
