lib/util/stats.mli:
