lib/util/pidmap.ml: Format List Map Pid
