lib/util/pidset.mli: Format Pid Set
