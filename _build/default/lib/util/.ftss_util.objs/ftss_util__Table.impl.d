lib/util/table.ml: Array Format List Stdlib String
