lib/util/pidmap.mli: Format Map Pid
