lib/util/pid.ml: Format Int List
