lib/util/rng.mli:
