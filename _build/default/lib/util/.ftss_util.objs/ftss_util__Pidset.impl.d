lib/util/pidset.ml: Format List Pid Set
