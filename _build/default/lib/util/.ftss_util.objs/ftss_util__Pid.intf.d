lib/util/pid.mli: Format
