(** Sets of process identifiers. *)

include Set.S with type elt = Pid.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_pred n pred] is the set of pids in [0 .. n-1] satisfying [pred]. *)
val of_pred : int -> (Pid.t -> bool) -> t

(** [full n] is the set of all [n] pids. *)
val full : int -> t
