(** Maps keyed by process identifiers. *)

include Map.S with type key = Pid.t

(** [init n f] is the map binding each pid in [0 .. n-1] to [f pid]. *)
val init : int -> (Pid.t -> 'a) -> 'a t

(** [pp pp_v ppf m] prints [m] as [{p0->v; p1->v; ...}]. *)
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
