let require_nonempty name xs = if xs = [] then invalid_arg (name ^ ": empty sample")

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. float_of_int (List.length xs) in
  sqrt var

let percentile p xs =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = List.sort Float.compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
  List.nth sorted idx

let min xs =
  require_nonempty "Stats.min" xs;
  List.fold_left Float.min Float.infinity xs

let max xs =
  require_nonempty "Stats.max" xs;
  List.fold_left Float.max Float.neg_infinity xs

let histogram ~buckets xs =
  let tbl = Hashtbl.create 16 in
  let bump k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  List.iter (fun x -> bump (buckets x)) xs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
