(** Happened-before and coteries over recorded histories (paper §2.1, Def. 2.3).

    The paper defines the {e coterie} of a history H as the set of processes
    p such that p →_H q for every correct process q, where →_H is Lamport's
    happened-before relation. We compute →_H exactly from a trace by
    propagating {e knowledge sets}: K_r(p) is the set of processes that
    executed some event causally preceding p's state at the end of round r
    (p itself included — a process trivially reaches itself through its own
    events and its self-delivered broadcasts).

    Because a round-based full-mesh execution only ever adds causal paths,
    the coterie of a prefix is monotone non-decreasing in the prefix length;
    the {e destabilizing events} of §2.1 are exactly the rounds at which the
    coterie grows. *)

open Ftss_util

type t

(** [analyze trace] computes knowledge sets and prefix coteries for every
    round of [trace]. Runs in O(rounds * n^2) set operations. *)
val analyze : ('s, 'm) Ftss_sync.Trace.t -> t

(** Number of rounds of the underlying trace. *)
val length : t -> int

(** The correct set used for coterie computation (declared-correct of the
    trace). *)
val correct : t -> Pidset.t

(** [knows t ~round p] is K_round(p): everyone with an event
    happened-before p's state at the end of [round]. [round] ranges over
    [0 .. length t]; K_0(p) = {p}. *)
val knows : t -> round:int -> Pid.t -> Pidset.t

(** [happened_before t ~upto p q] is true iff p →_H' q where H' is the
    [upto]-round prefix. Reflexive by convention (see above). *)
val happened_before : t -> upto:int -> Pid.t -> Pid.t -> bool

(** [coterie t ~round] is the coterie of the [round]-prefix of the history
    (Def. 2.3): processes that happened-before every correct process.
    [coterie ~round:0] is the empty set for systems with >= 2 correct
    processes. *)
val coterie : t -> round:int -> Pidset.t

(** [entry_round t p] is the first prefix length at which [p] is in the
    coterie, if any. *)
val entry_round : t -> Pid.t -> int option

(** [changes t] lists the destabilizing events: rounds [r >= 1] where the
    coterie grew, together with the processes that entered. *)
val changes : t -> (int * Pidset.t) list

(** [stable_intervals t] partitions [0 .. length t] into the maximal
    intervals [(x, y)] on which the prefix coterie is constant. Intervals
    are returned earliest first and cover the whole range. *)
val stable_intervals : t -> (int * int) list

(** [monotone t] checks that the prefix coterie never shrinks — an
    internal invariant of the model, exposed for property tests. *)
val monotone : t -> bool
