lib/history/causality.ml: Array Ftss_sync Ftss_util List Pidset Printf
