lib/history/causality.mli: Ftss_sync Ftss_util Pid Pidset
