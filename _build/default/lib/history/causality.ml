open Ftss_util

type t = {
  length : int;
  n : int;
  correct : Pidset.t;
  know : Pidset.t array array; (* know.(r).(p) = K_r(p), r in 0..length *)
  coteries : Pidset.t array; (* coteries.(r), r in 0..length *)
}

let coterie_of_knowledge ~n ~correct know_r =
  (* Intersection of K_r(q) over correct q; the full set when no process is
     correct (vacuous universal quantification). *)
  if Pidset.is_empty correct then Pidset.full n
  else
    Pidset.fold
      (fun q acc -> Pidset.inter acc know_r.(q))
      correct
      (Pidset.full n)

let analyze (trace : ('s, 'm) Ftss_sync.Trace.t) =
  let n = trace.Ftss_sync.Trace.n in
  let len = Ftss_sync.Trace.length trace in
  let know = Array.init (len + 1) (fun _ -> Array.make n Pidset.empty) in
  Array.iteri (fun p _ -> know.(0).(p) <- Pidset.singleton p) know.(0);
  for round = 1 to len do
    let record = Ftss_sync.Trace.record trace ~round in
    for p = 0 to n - 1 do
      let base = know.(round - 1).(p) in
      let merged =
        List.fold_left
          (fun acc { Ftss_sync.Protocol.src; _ } ->
            Pidset.add src (Pidset.union acc know.(round - 1).(src)))
          base record.Ftss_sync.Trace.delivered.(p)
      in
      know.(round).(p) <- merged
    done
  done;
  let correct = Ftss_sync.Trace.correct trace in
  let coteries =
    Array.init (len + 1) (fun r -> coterie_of_knowledge ~n ~correct know.(r))
  in
  { length = len; n; correct; know; coteries }

let length t = t.length
let correct t = t.correct

let check_round t round =
  if round < 0 || round > t.length then
    invalid_arg (Printf.sprintf "Causality: round %d outside 0..%d" round t.length)

let knows t ~round p =
  check_round t round;
  t.know.(round).(p)

let happened_before t ~upto p q = Pidset.mem p (knows t ~round:upto q)

let coterie t ~round =
  check_round t round;
  t.coteries.(round)

let entry_round t p =
  let rec find r =
    if r > t.length then None
    else if Pidset.mem p t.coteries.(r) then Some r
    else find (r + 1)
  in
  find 0

let changes t =
  let rec collect r acc =
    if r > t.length then List.rev acc
    else
      let grew = Pidset.diff t.coteries.(r) t.coteries.(r - 1) in
      let acc = if Pidset.is_empty grew then acc else (r, grew) :: acc in
      collect (r + 1) acc
  in
  collect 1 []

let stable_intervals t =
  let rec walk start r acc =
    if r > t.length then List.rev ((start, t.length) :: acc)
    else if Pidset.equal t.coteries.(r) t.coteries.(start) then walk start (r + 1) acc
    else walk r (r + 1) ((start, r - 1) :: acc)
  in
  walk 0 1 []

let monotone t =
  let rec check r =
    if r > t.length then true
    else Pidset.subset t.coteries.(r - 1) t.coteries.(r) && check (r + 1)
  in
  check 1
