open Ftss_util
module Protocol = Ftss_sync.Protocol

type state = { relayed : int option; distrusted : Pidset.t }

let make ~n ~f ~sender ~value =
  if not (Pid.is_valid ~n sender) then
    invalid_arg "Reliable_broadcast.make: sender out of range";
  if f < 0 then invalid_arg "Reliable_broadcast.make: negative f";
  let everyone = Pidset.full n in
  {
    Ftss_core.Canonical.name = "reliable-broadcast";
    final_round = f + 2;
    s_init =
      (fun p ->
        {
          relayed = (if Pid.equal p sender then Some value else None);
          distrusted = Pidset.empty;
        });
    transition =
      (fun _ s deliveries _k ->
        let senders =
          List.fold_left
            (fun acc { Protocol.src; _ } -> Pidset.add src acc)
            Pidset.empty deliveries
        in
        let distrusted = Pidset.union s.distrusted (Pidset.diff everyone senders) in
        let relayed =
          List.fold_left
            (fun acc { Protocol.src; payload } ->
              if Pidset.mem src distrusted then acc
              else
                match (acc, payload.relayed) with
                | Some v, _ -> Some v
                | None, learned -> learned)
            s.relayed deliveries
        in
        { relayed; distrusted });
    decide = (fun s -> Some s.relayed);
  }
