(** Suspect-filtered flooding consensus — the general-omission-tolerant
    canonical protocol (f+2 rounds).

    Like {!Flooding_consensus}, but each process tracks (inside the
    full-information state, as Figure 2 permits) the processes from which
    it has ever missed an expected message, and ignores their messages
    from then on. With the filter, a correct process p accepts a message
    from q in protocol round k only if q delivered to p in every earlier
    round of the iteration; consequently a value first accepted by some
    correct process in round k must have travelled a chain of k-1
    {e distinct} faulty relays. With at most f faulty processes, running
    f+2 rounds guarantees every value held by a correct process at the end
    is held by all of them: they decide the common minimum.

    This is the intended input of the Figure 3 compiler under the paper's
    general-omission model, and mirrors the compiler's own suspect
    mechanism at the Π level. *)

open Ftss_util

type state = {
  values : Values.t;  (** values accepted so far *)
  distrusted : Pidset.t;
      (** processes that have missed an expected message; never listened
          to again within this iteration *)
}

(** [make ~n ~f ~propose] is the canonical protocol with
    [final_round = f + 2] for a system of [n] processes. *)
val make :
  n:int -> f:int -> propose:(Pid.t -> int) -> (state, int) Ftss_core.Canonical.t

(** [corrupt_state rng ~n ~value_bound] draws an arbitrary state: random
    values and a random distrusted set — the systemic-failure corruption
    used in experiments. *)
val corrupt_state : Rng.t -> n:int -> value_bound:int -> Pid.t -> state -> state
