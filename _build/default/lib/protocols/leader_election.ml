open Ftss_util
module Protocol = Ftss_sync.Protocol

type state = { participants : Pidset.t; distrusted : Pidset.t }

let make ~n ~f =
  if f < 0 then invalid_arg "Leader_election.make: negative f";
  let everyone = Pidset.full n in
  {
    Ftss_core.Canonical.name = "leader-election";
    final_round = f + 2;
    s_init = (fun p -> { participants = Pidset.singleton p; distrusted = Pidset.empty });
    transition =
      (fun _ s deliveries _k ->
        let senders =
          List.fold_left
            (fun acc { Protocol.src; _ } -> Pidset.add src acc)
            Pidset.empty deliveries
        in
        let distrusted = Pidset.union s.distrusted (Pidset.diff everyone senders) in
        let participants =
          List.fold_left
            (fun acc { Protocol.src; payload } ->
              if Pidset.mem src distrusted then acc
              else Pidset.union acc payload.participants)
            s.participants deliveries
        in
        { participants; distrusted });
    decide = (fun s -> Pidset.min_elt_opt s.participants);
  }
