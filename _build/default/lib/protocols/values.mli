(** Sets of proposal values (integers) exchanged by the consensus
    protocols. *)

include Set.S with type elt = int

val pp : Format.formatter -> t -> unit
