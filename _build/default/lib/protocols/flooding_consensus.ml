module Protocol = Ftss_sync.Protocol
module Faults = Ftss_sync.Faults

type state = Values.t

let make ~f ~propose =
  if f < 0 then invalid_arg "Flooding_consensus.make: negative f";
  {
    Ftss_core.Canonical.name = "flooding-consensus";
    final_round = f + 1;
    s_init = (fun p -> Values.singleton (propose p));
    transition =
      (fun _ s deliveries _k ->
        List.fold_left
          (fun acc { Protocol.payload; _ } -> Values.union acc payload)
          s deliveries);
    decide = (fun s -> Values.min_elt_opt s);
  }

let omission_counterexample () =
  (* n = 3, f = 1, final_round = 2. Process 2 proposes the minimum, stays
     mute in round 1 and delivers only to process 0 in round 2: process 0
     learns the minimum in the last round and decides it; process 1 never
     does. *)
  let faults =
    Faults.of_events ~n:3
      [
        Faults.Mute { pid = 2; first = 1; last = 1 };
        Faults.Drop { src = 2; dst = 1; round = 2 };
      ]
  in
  let propose p = if p = 2 then 0 else 10 + p in
  (faults, propose)
