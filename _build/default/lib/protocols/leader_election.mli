(** Leader election in canonical form: after f+2 suspect-filtered rounds,
    all correct processes elect the minimum pid among the processes whose
    participation they (commonly) witnessed. Agreement on the elected
    leader follows from agreement on the witnessed set, by the same chain
    argument as {!Omission_consensus}; the elected leader is always a
    process of the system, though it may be a faulty one (a faulty process
    that participated consistently enough to be witnessed by everyone is
    electable — the classic caveat). *)

open Ftss_util

type state = {
  participants : Pidset.t;  (** processes witnessed so far *)
  distrusted : Pidset.t;
}

val make : n:int -> f:int -> (state, Pid.t) Ftss_core.Canonical.t
