(** Terminating reliable broadcast in canonical (Figure 2) form, with the
    general-omission suspect filter.

    A designated sender starts with a value; after f+2 suspect-filtered
    full-information rounds every correct process delivers the same
    outcome: [Some v] (the sender's value) or [None] ("sender faulty",
    the ⊥ outcome). Agreement follows from the distinct-faulty-relay
    chain argument of {!Omission_consensus}; validity: if the sender is
    correct, its round-1 broadcast reaches every correct process, so all
    deliver [Some v]; integrity: in the omission model values cannot be
    forged, so a delivered value is the sender's (systemically corrupted
    relays are flushed at each iteration reset).

    Compiled with {!Ftss_core.Compiler}, the repetition is a
    self-stabilizing broadcast channel from the sender — the primitive
    the paper's reliable-broadcast references ([GT89]) study. *)

open Ftss_util

type state = {
  relayed : int option;  (** the sender's value, once learned *)
  distrusted : Pidset.t;
}

val make :
  n:int -> f:int -> sender:Pid.t -> value:int -> (state, int option) Ftss_core.Canonical.t
(** [make ~n ~f ~sender ~value] — [value] is what [sender] broadcasts.
    The decision is [Some value] or [None] (= ⊥). Raises
    [Invalid_argument] if [sender] is not a pid of the system. *)
