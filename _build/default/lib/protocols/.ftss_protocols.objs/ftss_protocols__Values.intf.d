lib/protocols/values.mli: Format Set
