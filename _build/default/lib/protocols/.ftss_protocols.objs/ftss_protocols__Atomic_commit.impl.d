lib/protocols/atomic_commit.ml: Ftss_core Ftss_sync Ftss_util List Pid Pidmap Pidset
