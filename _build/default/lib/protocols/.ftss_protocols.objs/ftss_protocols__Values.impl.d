lib/protocols/values.ml: Format Int Set
