lib/protocols/omission_consensus.mli: Ftss_core Ftss_util Pid Pidset Rng Values
