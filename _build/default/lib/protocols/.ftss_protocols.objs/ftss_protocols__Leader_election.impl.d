lib/protocols/leader_election.ml: Ftss_core Ftss_sync Ftss_util List Pidset
