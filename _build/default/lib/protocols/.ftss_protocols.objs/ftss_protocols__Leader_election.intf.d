lib/protocols/leader_election.mli: Ftss_core Ftss_util Pid Pidset
