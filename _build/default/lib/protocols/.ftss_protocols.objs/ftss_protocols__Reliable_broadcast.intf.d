lib/protocols/reliable_broadcast.mli: Ftss_core Ftss_util Pid Pidset
