lib/protocols/interactive_consistency.ml: Ftss_core Ftss_sync Ftss_util List Pid Pidmap Pidset
