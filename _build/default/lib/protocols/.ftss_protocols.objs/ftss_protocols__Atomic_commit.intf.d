lib/protocols/atomic_commit.mli: Ftss_core Ftss_util Pid Pidmap Pidset
