lib/protocols/interactive_consistency.mli: Ftss_core Ftss_util Pid Pidmap Pidset
