lib/protocols/flooding_consensus.ml: Ftss_core Ftss_sync List Values
