lib/protocols/omission_consensus.ml: Ftss_core Ftss_sync Ftss_util Fun List Pidset Rng Values
