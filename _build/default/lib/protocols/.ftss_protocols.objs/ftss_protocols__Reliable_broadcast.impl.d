lib/protocols/reliable_broadcast.ml: Ftss_core Ftss_sync Ftss_util List Pid Pidset
