lib/protocols/repeated.ml: Array Ftss_core Ftss_sync Ftss_util List Pid Pidset
