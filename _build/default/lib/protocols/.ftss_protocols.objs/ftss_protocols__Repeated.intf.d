lib/protocols/repeated.mli: Ftss_core Ftss_sync Ftss_util Pid Pidset
