lib/protocols/flooding_consensus.mli: Ftss_core Ftss_sync Ftss_util Pid Values
