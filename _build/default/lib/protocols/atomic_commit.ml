open Ftss_util
module Protocol = Ftss_sync.Protocol

type vote = Yes | No
type outcome = Commit | Abort

type state = { votes : vote Pidmap.t; distrusted : Pidset.t }

let make ~n ~f ~vote =
  if f < 0 then invalid_arg "Atomic_commit.make: negative f";
  let everyone = Pidset.full n in
  {
    Ftss_core.Canonical.name = "atomic-commit";
    final_round = f + 2;
    s_init = (fun p -> { votes = Pidmap.singleton p (vote p); distrusted = Pidset.empty });
    transition =
      (fun _ s deliveries _k ->
        let senders =
          List.fold_left
            (fun acc { Protocol.src; _ } -> Pidset.add src acc)
            Pidset.empty deliveries
        in
        let distrusted = Pidset.union s.distrusted (Pidset.diff everyone senders) in
        let votes =
          List.fold_left
            (fun acc { Protocol.src; payload } ->
              if Pidset.mem src distrusted then acc
              else
                (* In the omission model votes cannot conflict; after a
                   systemic failure they can — No wins, keeping the merge
                   deterministic and conservative. *)
                Pidmap.union
                  (fun _ a b -> if a = No || b = No then Some No else Some Yes)
                  acc payload.votes)
            s.votes deliveries
        in
        { votes; distrusted });
    decide =
      (fun s ->
        let all_yes =
          List.for_all (fun p -> Pidmap.find_opt p s.votes = Some Yes) (Pid.all n)
        in
        Some (if all_yes then Commit else Abort));
  }
