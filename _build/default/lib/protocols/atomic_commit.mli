(** Atomic commitment in canonical (Figure 2) form, with the
    general-omission suspect filter.

    Every process votes Yes or No on a transaction; after f+2
    suspect-filtered full-information rounds the correct processes agree
    on Commit or Abort. The decision is Commit exactly when the process
    witnessed a Yes vote from {e every} process in the system; a missing
    or withheld vote therefore forces Abort — the standard conservative
    (weak, non-blocking) commit rule for omission environments.

    Agreement follows because the witnessed vote-sets of correct
    processes are equal at the end (the {!Omission_consensus} chain
    argument applied to vote records); commit-validity: a failure-free
    all-Yes execution commits, and any No vote witnessed anywhere forces
    Abort everywhere. *)

open Ftss_util

type vote = Yes | No

type outcome = Commit | Abort

type state = {
  votes : vote Pidmap.t;  (** votes witnessed so far *)
  distrusted : Pidset.t;
}

val make :
  n:int -> f:int -> vote:(Pid.t -> vote) -> (state, outcome) Ftss_core.Canonical.t
