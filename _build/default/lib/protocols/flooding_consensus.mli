(** Min-value flooding consensus in canonical (Figure 2) form — the
    classic f+1-round protocol for {e crash} failures.

    Every process floods the set of values it has seen; after f+1 rounds
    all correct processes hold the same set (a new value surviving to the
    last round would require a chain of f+1 distinct crashed processes)
    and decide its minimum.

    This protocol ft-solves consensus under crash failures only. Under
    general omission it is {e incorrect}: a faulty process can withhold a
    small value from everyone and reveal it to a single correct process in
    the last round (see {!val:omission_counterexample} and the
    suspect-filtered {!Omission_consensus}, which closes the hole). We
    keep it both as the simplest compiler input and as an executable
    record of that boundary. *)

open Ftss_util

type state = Values.t

(** [make ~f ~propose] is the canonical protocol with
    [final_round = f + 1]; process [p] proposes [propose p]. *)
val make : f:int -> propose:(Pid.t -> int) -> (state, int) Ftss_core.Canonical.t

(** The general-omission schedule that defeats this protocol for [n = 3],
    [f = 1] (process 2 withholds its value from everyone, then reveals it
    to process 0 only, in the last round), paired with the proposal
    function giving process 2 the minimum. Running the ft-baseline under
    it yields disagreement — a negative reproduction of why the omission
    model needs the suspect filter. *)
val omission_counterexample : unit -> Ftss_sync.Faults.t * (Pid.t -> int)
