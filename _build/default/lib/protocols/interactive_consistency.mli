(** Interactive consistency (vector agreement) in canonical form, with the
    general-omission suspect filter.

    Every process tries to learn the initial value of every other process;
    after f+2 rounds the correct processes agree on a common vector,
    entries of unreachable (faulty) processes being [None]. Agreement on
    every entry follows from the same distinct-faulty-relay-chain argument
    as {!Omission_consensus}; the per-entry value is the one originated by
    the entry's owner (there is no forging in the omission model, and
    systemically corrupted vectors are discarded at iteration reset). *)

open Ftss_util

type state = {
  vector : int Pidmap.t;  (** entries learned so far: owner -> value *)
  distrusted : Pidset.t;
}

type decision = int option list
(** The agreed vector, index = pid; [None] for unlearned entries. *)

val make :
  n:int -> f:int -> propose:(Pid.t -> int) -> (state, decision) Ftss_core.Canonical.t
