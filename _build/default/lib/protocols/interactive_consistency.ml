open Ftss_util
module Protocol = Ftss_sync.Protocol

type state = { vector : int Pidmap.t; distrusted : Pidset.t }
type decision = int option list

let merge_vectors mine theirs =
  (* Entries are keyed by their originator; in the omission model two
     non-corrupted vectors can only disagree on presence, never on value.
     After a systemic failure they can conflict; keep the smaller value so
     the merge stays deterministic and commutative. *)
  Pidmap.union (fun _ a b -> Some (min a b)) mine theirs

let make ~n ~f ~propose =
  if f < 0 then invalid_arg "Interactive_consistency.make: negative f";
  let everyone = Pidset.full n in
  {
    Ftss_core.Canonical.name = "interactive-consistency";
    final_round = f + 2;
    s_init =
      (fun p -> { vector = Pidmap.singleton p (propose p); distrusted = Pidset.empty });
    transition =
      (fun _ s deliveries _k ->
        let senders =
          List.fold_left
            (fun acc { Protocol.src; _ } -> Pidset.add src acc)
            Pidset.empty deliveries
        in
        let distrusted = Pidset.union s.distrusted (Pidset.diff everyone senders) in
        let vector =
          List.fold_left
            (fun acc { Protocol.src; payload } ->
              if Pidset.mem src distrusted then acc
              else merge_vectors acc payload.vector)
            s.vector deliveries
        in
        { vector; distrusted });
    decide =
      (fun s -> Some (List.map (fun p -> Pidmap.find_opt p s.vector) (Pid.all n)));
  }
