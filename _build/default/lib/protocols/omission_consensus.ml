open Ftss_util
module Protocol = Ftss_sync.Protocol

type state = { values : Values.t; distrusted : Pidset.t }

let make ~n ~f ~propose =
  if f < 0 then invalid_arg "Omission_consensus.make: negative f";
  let everyone = Pidset.full n in
  {
    Ftss_core.Canonical.name = "omission-consensus";
    final_round = f + 2;
    s_init = (fun p -> { values = Values.singleton (propose p); distrusted = Pidset.empty });
    transition =
      (fun _ s deliveries _k ->
        let senders =
          List.fold_left
            (fun acc { Protocol.src; _ } -> Pidset.add src acc)
            Pidset.empty deliveries
        in
        let distrusted = Pidset.union s.distrusted (Pidset.diff everyone senders) in
        let values =
          List.fold_left
            (fun acc { Protocol.src; payload } ->
              if Pidset.mem src distrusted then acc
              else Values.union acc payload.values)
            s.values deliveries
        in
        { values; distrusted });
    decide = (fun s -> Values.min_elt_opt s.values);
  }

let corrupt_state rng ~n ~value_bound _pid _s =
  let size = Rng.int_in rng 1 3 in
  let values =
    List.fold_left
      (fun acc _ -> Values.add (Rng.int rng value_bound) acc)
      Values.empty
      (List.init size Fun.id)
  in
  let distrusted = Pidset.of_pred n (fun _ -> Rng.bool rng) in
  { values; distrusted }
