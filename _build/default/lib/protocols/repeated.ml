open Ftss_util
module Trace = Ftss_sync.Trace
module Compiler = Ftss_core.Compiler
module Spec = Ftss_core.Spec

type 'd completion = {
  round : int;
  pid : Pid.t;
  iteration : int;
  decision : 'd option;
}

let completions_of_record record =
  let found = ref [] in
  Array.iteri
    (fun p before ->
      match (before, record.Trace.states_after.(p)) with
      | Some b, Some a when a.Compiler.completed = b.Compiler.completed + 1 ->
        found :=
          {
            round = record.Trace.round;
            pid = p;
            iteration = a.Compiler.completed - 1;
            decision = a.Compiler.last_decision;
          }
          :: !found
      | Some _, Some _ | None, _ | _, None -> ())
    record.Trace.states_before;
  List.rev !found

let completions trace =
  let rec loop round acc =
    if round > Trace.length trace then List.concat (List.rev acc)
    else loop (round + 1) (completions_of_record (Trace.record trace ~round) :: acc)
  in
  loop 1 []

let decisions_by_round trace ~faulty =
  let correct_only cs = List.filter (fun c -> not (Pidset.mem c.pid faulty)) cs in
  let rec loop round acc =
    if round > Trace.length trace then List.rev acc
    else
      let cs = correct_only (completions_of_record (Trace.record trace ~round)) in
      let acc = if cs = [] then acc else (round, cs) :: acc in
      loop (round + 1) acc
  in
  loop 1 []

(* One round's completions satisfy Σ when every correct process alive
   through the round completed, every decision is present and equal, and
   the common decision is legal. *)
let round_satisfies_sigma trace ~faulty ~valid (round, cs) =
  let alive_correct =
    Pidset.of_pred trace.Trace.n (fun p ->
        (not (Pidset.mem p faulty)) && Trace.alive trace ~round p)
  in
  let completers = Pidset.of_list (List.map (fun c -> c.pid) cs) in
  Pidset.equal completers alive_correct
  &&
  match cs with
  | [] -> true
  | first :: _ -> (
    match first.decision with
    | None -> false
    | Some d ->
      valid d && List.for_all (fun c -> c.decision = Some d) cs)

let sigma_plus ~final_round:_ ~valid () =
  {
    Spec.name = "sigma-plus";
    holds =
      (fun trace ~faulty ->
        List.for_all
          (round_satisfies_sigma trace ~faulty ~valid)
          (decisions_by_round trace ~faulty));
  }

let round_and_sigma ~final_round ~valid () =
  Spec.conj "round+sigma-plus"
    [ Compiler.round_spec (); sigma_plus ~final_round ~valid () ]

let count_agreeing_iterations trace ~faulty ~valid =
  let grouped = decisions_by_round trace ~faulty in
  let agreeing =
    List.length (List.filter (round_satisfies_sigma trace ~faulty ~valid) grouped)
  in
  (List.length grouped, agreeing)
