(** Canonical fault-tolerant full-information protocols Π (Figure 2).

    The compiler (Figure 3 / {!Compiler}) consumes terminating round-based
    protocols presented in the paper's canonical form: in each round every
    process broadcasts its entire state, then applies a transition function
    to the received states and its current protocol round number
    k ∈ [1 .. final_round]; the protocol terminates (halts) after
    [final_round] rounds, at which point a decision can be extracted.

    Restrictions from §2.4 apply: the protocol must be full-information
    (the broadcast {e is} the state — enforced by this type), must not
    restrict the behaviour of faulty processes (Theorem 2), and round
    numbers are counted by an unbounded variable (OCaml's native [int]
    stands in; see DESIGN.md). *)

open Ftss_util

type ('s, 'd) t = {
  name : string;
  final_round : int;  (** duration of one iteration; >= 1 *)
  s_init : Pid.t -> 's;  (** the "good" initial state s_{p,init} *)
  transition : Pid.t -> 's -> 's Ftss_sync.Protocol.delivery list -> int -> 's;
      (** [transition p s M k] — the paper's [function(p, s_p^r, M, c_p^r)]
          where [M] is the set of received states and [k] the protocol
          round in [1 .. final_round]. *)
  decide : 's -> 'd option;
      (** Decision extracted from the state after round [final_round]. *)
}

(** Validates structural requirements ([final_round >= 1]); raises
    [Invalid_argument] otherwise. Returns its argument. *)
val check : ('s, 'd) t -> ('s, 'd) t

(** {2 Running Π on its own (the ft-only baseline)}

    [to_protocol pi] is the Figure 2 protocol verbatim: state [{s; c}]
    with c counting rounds from 1, halting (absorbing state, no further
    broadcasts are made visible to [step]) after [final_round] rounds.
    This is the process-failure-only baseline that Def. 2.1 speaks about:
    it is {e not} self-stabilizing (terminating protocols cannot be;
    [KP90]). *)

type 's ft_state = { s : 's; c : int; halted : bool }

val to_protocol : ('s, 'd) t -> ('s ft_state, 's option) Ftss_sync.Protocol.t

(** [ft_decision pi state] is the decision of a halted run, if any. *)
val ft_decision : ('s, 'd) t -> 's ft_state -> 'd option
