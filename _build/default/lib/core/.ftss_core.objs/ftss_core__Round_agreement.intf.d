lib/core/round_agreement.mli: Ftss_sync Ftss_util Pid Rng Spec
