lib/core/compiler.ml: Canonical Ftss_sync Ftss_util List Pidset Rng Spec
