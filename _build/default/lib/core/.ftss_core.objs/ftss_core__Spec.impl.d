lib/core/spec.ml: Array Ftss_sync Ftss_util Int List Pidset
