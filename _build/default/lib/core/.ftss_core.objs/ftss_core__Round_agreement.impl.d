lib/core/round_agreement.ml: Ftss_sync Ftss_util List Rng Spec
