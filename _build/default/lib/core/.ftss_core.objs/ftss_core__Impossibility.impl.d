lib/core/impossibility.ml: Array Canonical Compiler Ftss_sync Ftss_util Fun List Option Pid Pidset Round_agreement
