lib/core/canonical.mli: Ftss_sync Ftss_util Pid
