lib/core/canonical.ml: Ftss_sync Ftss_util List Option Pid
