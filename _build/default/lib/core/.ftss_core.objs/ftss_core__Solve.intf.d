lib/core/solve.mli: Ftss_sync Spec
