lib/core/spec.mli: Ftss_sync Ftss_util Pidset
