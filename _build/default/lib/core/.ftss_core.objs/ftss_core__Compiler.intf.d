lib/core/compiler.mli: Canonical Ftss_sync Ftss_util Pid Pidset Rng Spec
